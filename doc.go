// Package bddkit reproduces "Approximation and Decomposition of Binary
// Decision Diagrams" (Ravi, McMillan, Shiple, Somenzi — DAC 1998) as a
// complete Go library: a CUDD-style ROBDD manager with complement arcs and
// dynamic reordering (internal/bdd), the paper's approximation algorithms
// including remapUnderApprox (internal/approx), its decomposition
// algorithms (internal/decomp), a gate-level circuit substrate
// (internal/circuit, internal/model), a reachability engine with
// high-density traversal (internal/reach), and the benchmark harness that
// regenerates the paper's Tables 1–4 (internal/bench).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured comparison. The benchmarks in
// bench_test.go exercise one paper table each.
//
// Client algorithms memoize in the manager's shared computed table under
// operation codes obtained from Manager.CacheOp. Codes are never recycled:
// a manager hands out at most 2^32 or so codes over its lifetime and
// CacheOp panics rather than wrap into the built-in operation space, so
// algorithms that call it per invocation (the intended pattern — results
// become invisible to later calls with no explicit invalidation) get
// billions of invocations per manager, and callers that can reuse a code
// across calls should.
package bddkit
