package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

// TestConcurrentTenantStress hammers several tenants at once — some with
// generous quotas, some starved — and asserts the isolation contract:
// starved tenants degrade (and may shed), generous tenants never do, and
// every generous tenant's answers stay exact throughout. Run under -race
// this also exercises the admission/mutex layering for data races.
func TestConcurrentTenantStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	_, ts := newTestServer(t, Config{DefaultQueueDepth: 64})
	nl := multiplierNetlist(t, 4)

	type tenantCase struct {
		id     string
		quota  int
		expect string // "exact" or "degraded"
	}
	cases := []tenantCase{
		{"good-a", 1 << 22, "exact"},
		{"good-b", 1 << 22, "exact"},
		{"tiny-a", 24, "degraded"},
		{"tiny-b", 24, "degraded"},
	}
	for _, c := range cases {
		base := ts.URL + "/v1/tenants/" + c.id
		if st := call(t, "PUT", base, CreateTenantRequest{Quota: c.quota}, nil); st != http.StatusCreated {
			t.Fatalf("%s: create %d", c.id, st)
		}
		if st := call(t, "POST", base+"/netlist", nl, nil); st != http.StatusOK {
			t.Fatalf("%s: netlist %d", c.id, st)
		}
	}
	var funcs []FuncInfo
	call(t, "GET", ts.URL+"/v1/tenants/good-a/funcs", nil, &funcs)
	if len(funcs) < 2 {
		t.Fatalf("funcs: %+v", funcs)
	}
	x, y := funcs[len(funcs)-1].Name, funcs[len(funcs)-2].Name

	// Ground truth from a quiet tenant before the storm.
	type opEnv struct {
		Envelope
		Result FuncInfo `json:"result"`
	}
	type countEnv struct {
		Envelope
		Result CountResult `json:"result"`
	}
	var ce countEnv
	call(t, "POST", ts.URL+"/v1/tenants/good-a/ops",
		OpRequest{Op: "and", Args: []string{x, y}, Result: "truth"}, nil)
	call(t, "POST", ts.URL+"/v1/tenants/good-a/count",
		CountRequest{Target: "truth", Mode: "exact"}, &ce)
	wantExact := ce.Result.Exact
	if wantExact == "" {
		t.Fatal("no ground-truth count")
	}

	const workers = 4
	const iters = 15
	var (
		wg          sync.WaitGroup
		server5xx   atomic.Int64
		degradedOK  sync.Map // tenant id -> true once a degraded envelope arrived
		goodViolate atomic.Int64
	)
	for _, c := range cases {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(c tenantCase, w int) {
				defer wg.Done()
				base := ts.URL + "/v1/tenants/" + c.id
				for i := 0; i < iters; i++ {
					name := fmt.Sprintf("r_%d_%d", w, i)
					var oe opEnv
					st := call(t, "POST", base+"/ops",
						OpRequest{Op: "and", Args: []string{x, y}, Result: name}, &oe)
					switch {
					case st >= 500:
						server5xx.Add(1)
					case st == http.StatusTooManyRequests:
						// Shed under load: fine for any tenant.
					case st == http.StatusOK:
						if oe.Degraded {
							if c.expect == "exact" {
								goodViolate.Add(1)
							} else {
								degradedOK.Store(c.id, true)
							}
						}
						// Quota accounting holds for everyone.
						if oe.LiveNodes < 0 || oe.Quota != c.quota {
							goodViolate.Add(1)
						}
					}
					var cnt countEnv
					st = call(t, "POST", base+"/count",
						CountRequest{Target: x, Mode: "fraction"}, &cnt)
					if st >= 500 {
						server5xx.Add(1)
					}
				}
			}(c, w)
		}
	}
	wg.Wait()

	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d server errors under concurrent load", n)
	}
	if n := goodViolate.Load(); n > 0 {
		t.Fatalf("%d isolation violations on generous tenants", n)
	}
	for _, c := range cases {
		if c.expect != "degraded" {
			continue
		}
		if _, ok := degradedOK.Load(c.id); !ok {
			t.Errorf("starved tenant %s never produced a degraded envelope", c.id)
		}
	}

	// After the storm the generous tenants still answer exactly: the
	// starved tenants' degradation never leaked into their managers.
	for _, id := range []string{"good-a", "good-b"} {
		base := ts.URL + "/v1/tenants/" + id
		var oe opEnv
		if st := call(t, "POST", base+"/ops",
			OpRequest{Op: "and", Args: []string{x, y}, Result: "final"}, &oe); st != http.StatusOK || oe.Degraded {
			t.Fatalf("%s: post-storm op status %d degraded=%v", id, st, oe.Degraded)
		}
		var fc countEnv
		if st := call(t, "POST", base+"/count",
			CountRequest{Target: "final", Mode: "exact"}, &fc); st != http.StatusOK {
			t.Fatalf("%s: post-storm count %d", id, st)
		}
		if fc.Result.Exact != wantExact {
			t.Fatalf("%s: post-storm count %s, want %s — cross-tenant contamination",
				id, fc.Result.Exact, wantExact)
		}
	}
}

// TestConcurrentSnapshotAndDrop races snapshots, ops, and a tenant drop
// against each other; everything must resolve to clean statuses (2xx/4xx),
// never a crash or a race.
func TestConcurrentSnapshotAndDrop(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultQueueDepth: 64})
	var nlBuf bytes.Buffer
	if err := circuit.Write(&nlBuf, model.MultiplierNetlist(3)); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/tenants/victim"
	call(t, "PUT", base, nil, nil)
	call(t, "POST", base+"/netlist", nlBuf.String(), nil)

	var wg sync.WaitGroup
	var server5xx atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(base + "/snapshot")
				if err == nil {
					if resp.StatusCode >= 500 {
						server5xx.Add(1)
					}
					resp.Body.Close()
				}
				if st := call(t, "GET", base+"/funcs", nil, nil); st >= 500 {
					server5xx.Add(1)
				}
				if w == 0 && i == 5 {
					if st := call(t, "DELETE", base, nil, nil); st >= 500 {
						server5xx.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d server errors racing snapshot against drop", n)
	}
}
