package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/count"
	"bddkit/internal/decomp"
	"bddkit/internal/obs"
	"bddkit/internal/reach"
)

// maxSamplesPerRequest bounds one sample query (the sampler is cheap but
// the response body is not).
const maxSamplesPerRequest = 4096

// Handler builds the v1 API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.WritePrometheusMulti(w, s.labeledRegistries())
	})
	mux.HandleFunc("GET /v1/quality", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.L.Snapshot())
	})
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("PUT /v1/tenants/{id}", s.handleCreateTenant)
	mux.HandleFunc("GET /v1/tenants/{id}", s.handleTenantInfo)
	mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDropTenant)
	mux.HandleFunc("POST /v1/tenants/{id}/netlist", s.handleNetlist)
	mux.HandleFunc("POST /v1/tenants/{id}/restore", s.handleRestore)
	mux.HandleFunc("GET /v1/tenants/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/tenants/{id}/funcs", s.handleFuncs)
	mux.HandleFunc("POST /v1/tenants/{id}/ops", s.handleOps)
	mux.HandleFunc("POST /v1/tenants/{id}/approx", s.handleApprox)
	mux.HandleFunc("POST /v1/tenants/{id}/decomp", s.handleDecomp)
	mux.HandleFunc("POST /v1/tenants/{id}/reach", s.handleReach)
	mux.HandleFunc("POST /v1/tenants/{id}/count", s.handleCount)
	mux.HandleFunc("POST /v1/tenants/{id}/sample", s.handleSample)
	return s.countRequests(mux)
}

func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// writeError maps service errors onto HTTP statuses; shed requests carry
// Retry-After so well-behaved clients back off.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var shed *ShedError
	if errors.As(err, &shed) {
		s.sheds.Inc()
		w.Header().Set("Retry-After",
			strconv.Itoa(int((shed.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: shed.Error()})
		return
	}
	status := http.StatusBadRequest
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unknown tenant"),
		strings.Contains(msg, "unknown function"):
		status = http.StatusNotFound
	case errors.Is(err, errAlreadyCompiled), strings.Contains(msg, "already exists"),
		strings.Contains(msg, "already holds restored functions"):
		status = http.StatusConflict
	case errors.Is(err, errTenantClosed):
		status = http.StatusGone
	case errors.As(err, new(bdd.OpAborted)):
		// An abort the handler could not degrade soundly.
		status = http.StatusUnprocessableEntity
	case strings.Contains(msg, "pool full"):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ErrorBody{Error: msg})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// envelope assembles the standard success wrapper.
func (s *Server) envelope(t *Tenant, op string, out opOutcome, result any, start time.Time) Envelope {
	if out.degraded {
		s.degrades.Inc()
	}
	return Envelope{
		Tenant:        t.ID,
		Op:            op,
		Degraded:      out.degraded,
		DegradeReason: out.reason,
		Result:        result,
		LiveNodes:     t.liveNodes(),
		Quota:         t.quota,
		ElapsedNS:     time.Since(start).Nanoseconds(),
	}
}

// --- tenant lifecycle ---

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	infos := make([]TenantInfo, 0, len(tenants))
	for _, t := range tenants {
		infos = append(infos, t.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
	}
	t, err := s.createTenant(r.PathValue("id"), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.info())
}

func (s *Server) handleTenantInfo(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

func (s *Server) handleDropTenant(w http.ResponseWriter, r *http.Request) {
	if err := s.dropTenant(r.PathValue("id")); err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- function building ---

func (s *Server) handleNetlist(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Compilation is admitted like any other operation (it monopolizes the
	// tenant) but runs unbudgeted: the circuit is the tenant's working set.
	release, shed := t.adm.acquire()
	if shed != nil {
		t.sheds.Inc()
		s.writeError(w, shed)
		return
	}
	defer release()
	funcs, err := t.compile(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	t.ops.Inc()
	writeJSON(w, http.StatusOK, s.envelope(t, "netlist", opOutcome{}, funcs, start))
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	release, shed := t.adm.acquire()
	if shed != nil {
		t.sheds.Inc()
		s.writeError(w, shed)
		return
	}
	defer release()
	funcs, err := t.restore(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	t.ops.Inc()
	writeJSON(w, http.StatusOK,
		s.envelope(t, "restore", opOutcome{}, RestoreResult{Functions: funcs}, start))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := t.snapshot(w); err != nil {
		// Headers may already be out; best effort.
		s.writeError(w, err)
	}
}

func (s *Server) handleFuncs(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	t.mu.Lock()
	funcs := t.funcList()
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, funcs)
}

// handleOps applies a boolean combinator. AND and OR are monotone, so on
// a budget abort the operands are individually under-approximated to the
// tenant's headroom and the combinator re-run over the shrunken inputs —
// still an under-approximation of the exact result. XOR and NOT are not
// monotone; their aborts surface as errors.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req OpRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Result == "" {
		s.writeError(w, fmt.Errorf("ops: result name required"))
		return
	}
	switch req.Op {
	case "not":
		if len(req.Args) != 1 {
			s.writeError(w, fmt.Errorf("ops: not takes exactly 1 arg"))
			return
		}
	case "and", "or", "xor":
		if len(req.Args) < 2 {
			s.writeError(w, fmt.Errorf("ops: %s takes at least 2 args", req.Op))
			return
		}
	default:
		s.writeError(w, fmt.Errorf("ops: unknown op %q (want and|or|xor|not)", req.Op))
		return
	}

	combine := func(m *bdd.Manager, acc, g bdd.Ref) bdd.Ref {
		switch req.Op {
		case "and":
			return m.And(acc, g)
		case "or":
			return m.Or(acc, g)
		default:
			return m.Xor(acc, g)
		}
	}
	fold := func(m *bdd.Manager, args []bdd.Ref) bdd.Ref {
		if req.Op == "not" {
			return m.Not(args[0])
		}
		acc := m.Ref(args[0])
		for _, g := range args[1:] {
			nxt := combine(m, acc, g)
			m.Deref(acc)
			acc = nxt
		}
		return acc
	}
	resolve := func() ([]bdd.Ref, error) {
		args := make([]bdd.Ref, len(req.Args))
		for i, name := range req.Args {
			f, err := t.lookup(name)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		return args, nil
	}

	var info FuncInfo
	out, err := t.run(
		func(m *bdd.Manager, out *opOutcome) error {
			args, err := resolve()
			if err != nil {
				return err
			}
			res := fold(m, args)
			t.bind(req.Result, res)
			info = FuncInfo{Name: req.Result, Nodes: m.DagSize(res)}
			return nil
		},
		func(m *bdd.Manager, out *opOutcome, reason string) error {
			if req.Op == "xor" || req.Op == "not" {
				return bdd.OpAborted{Reason: reason}
			}
			args, err := resolve()
			if err != nil {
				return err
			}
			// Shrink each operand to the remaining headroom, recombine,
			// then squeeze the result under the quota.
			small := make([]bdd.Ref, len(args))
			for i, f := range args {
				small[i] = t.degradeToQuota(m, f)
			}
			res := fold(m, small)
			for _, f := range small {
				m.Deref(f)
			}
			final := t.degradeToQuota(m, res)
			m.Deref(res)
			t.bind(req.Result, final)
			info = FuncInfo{Name: req.Result, Nodes: m.DagSize(final)}
			out.degraded = true
			out.reason = fmt.Sprintf("%s; operands under-approximated and result squeezed to quota", reason)
			return nil
		})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.envelope(t, "ops/"+req.Op, out, info, start))
}

// handleApprox runs one of the paper's approximation operators. On a
// budget abort the target itself is degraded to the tenant's headroom —
// the caller asked for an under-approximation and gets one, just chosen
// by budget instead of threshold.
func (s *Server) handleApprox(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req ApproxRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	quality := req.Quality
	if quality <= 0 {
		quality = 1.0
	}
	alpha := req.Alpha
	if alpha <= 0 {
		alpha = 0.5
	}
	apply := func(m *bdd.Manager, f bdd.Ref) (bdd.Ref, error) {
		switch req.Op {
		case "rua":
			return approx.RemapUnderApprox(m, f, req.Threshold, quality), nil
		case "sp":
			return approx.ShortPaths(m, f, req.Threshold), nil
		case "hb":
			return approx.HeavyBranch(m, f, req.Threshold), nil
		case "ua":
			return approx.UnderApprox(m, f, req.Threshold, alpha), nil
		case "c1":
			return approx.Compound1(m, f, req.Threshold, quality), nil
		case "c2":
			return approx.Compound2(m, f, req.Threshold, quality), nil
		default:
			return 0, fmt.Errorf("approx: unknown op %q (want rua|sp|hb|ua|c1|c2)", req.Op)
		}
	}

	var res ApproxResult
	finish := func(m *bdd.Manager, f, r bdd.Ref) {
		massIn := count.Fraction(m, f)
		massOut := count.Fraction(m, r)
		retained := 0.0
		if massIn > 0 {
			retained = massOut / massIn
		}
		res = ApproxResult{
			Name:         req.Result,
			NodesIn:      m.DagSize(f),
			NodesOut:     m.DagSize(r),
			MassIn:       massIn,
			MassOut:      massOut,
			MassRetained: retained,
		}
		if req.Result != "" {
			t.bind(req.Result, r)
		} else {
			m.Deref(r)
		}
	}

	out, err := t.run(
		func(m *bdd.Manager, out *opOutcome) error {
			f, err := t.lookup(req.Target)
			if err != nil {
				return err
			}
			r, err := apply(m, f)
			if err != nil {
				return err
			}
			finish(m, f, r)
			return nil
		},
		func(m *bdd.Manager, out *opOutcome, reason string) error {
			f, err := t.lookup(req.Target)
			if err != nil {
				return err
			}
			r := t.degradeToQuota(m, f)
			finish(m, f, r)
			out.degraded = true
			out.reason = fmt.Sprintf("%s; served budget-driven under-approximation instead of %s", reason, req.Op)
			return nil
		})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.envelope(t, "approx/"+req.Op, out, res, start))
}

// handleDecomp factors a named function. Decomposition has no sound
// degraded form (the factors must reconstruct f exactly), so budget
// aborts surface as errors.
func (s *Server) handleDecomp(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req DecompRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	var res DecompResult
	out, err := t.run(func(m *bdd.Manager, out *opOutcome) error {
		f, err := t.lookup(req.Target)
		if err != nil {
			return err
		}
		res = DecompResult{Selector: req.Selector, NodesIn: m.DagSize(f)}
		switch req.Selector {
		case "cofactor":
			p := decomp.Cofactor(m, f)
			res.FactorNodes = []int{m.DagSize(p.G), m.DagSize(p.H)}
			res.SharedNodes = p.SharedSize(m)
			p.Deref(m)
		case "band":
			p := decomp.Decompose(m, f, decomp.BandPoints(m, f, decomp.DefaultBandConfig()))
			res.FactorNodes = []int{m.DagSize(p.G), m.DagSize(p.H)}
			res.SharedNodes = p.SharedSize(m)
			p.Deref(m)
		case "disjoint":
			p := decomp.Decompose(m, f, decomp.DisjointPoints(m, f, decomp.DefaultDisjointConfig()))
			res.FactorNodes = []int{m.DagSize(p.G), m.DagSize(p.H)}
			res.SharedNodes = p.SharedSize(m)
			p.Deref(m)
		case "mcmillan":
			fs := decomp.McMillan(m, f)
			res.FactorNodes = make([]int, len(fs))
			for i, g := range fs {
				res.FactorNodes[i] = m.DagSize(g)
			}
			res.SharedNodes = m.SharingSize(fs)
			for _, g := range fs {
				m.Deref(g)
			}
		default:
			return fmt.Errorf("decomp: unknown selector %q (want cofactor|band|disjoint|mcmillan)", req.Selector)
		}
		return nil
	}, nil)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.envelope(t, "decomp/"+req.Selector, out, res, start))
}

// handleReach traverses the uploaded netlist's state space. The engine
// absorbs budget aborts internally: a tripped node quota ends the
// traversal with the states found so far — a sound under-approximation of
// the reachable set — and the response is marked degraded.
func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req ReachRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "bfs"
	}
	if mode != "bfs" && mode != "hd" {
		s.writeError(w, fmt.Errorf("reach: unknown mode %q (want bfs|hd)", mode))
		return
	}
	var res ReachResult
	out, err := t.run(func(m *bdd.Manager, out *opOutcome) error {
		if t.c == nil {
			return fmt.Errorf("reach: tenant has no compiled netlist")
		}
		tr, err := reach.NewTR(t.c, reach.DefaultTROptions())
		if err != nil {
			return err
		}
		defer tr.Release()
		opts := reach.Options{
			Threshold:     req.Threshold,
			MaxIterations: req.MaxIterations,
		}
		var tres reach.Result
		if mode == "hd" {
			opts.Subset = reach.RUASubsetter(1.0)
			tres = tr.HighDensity(t.c.Init, opts)
		} else {
			tres = tr.BFS(t.c.Init, opts)
		}
		res = ReachResult{
			Name:       req.Result,
			States:     tres.States,
			Nodes:      tres.Nodes,
			Iterations: tres.Iterations,
			Completed:  tres.Completed,
		}
		if req.Result != "" {
			t.bind(req.Result, tres.Reached)
		} else {
			m.Deref(tres.Reached)
		}
		if tres.Abort != "" {
			out.degraded = true
			out.reason = fmt.Sprintf("%s; reached set is a partial (sound) under-approximation", tres.Abort)
		}
		return nil
	}, func(m *bdd.Manager, out *opOutcome, reason string) error {
		// The quota tripped before the traversal engine could absorb it
		// (building the clustered transition relation already exceeds the
		// budget). The soundest under-approximation still available is the
		// initial state set itself.
		if t.c == nil {
			return fmt.Errorf("reach: tenant has no compiled netlist")
		}
		states := 0.0
		if n, err := count.MintermsOver(m, t.c.Init, t.c.StateVars); err == nil {
			f, _ := new(big.Float).SetInt(n).Float64()
			states = f
		}
		res = ReachResult{
			Name:   req.Result,
			States: states,
			Nodes:  m.DagSize(t.c.Init),
		}
		if req.Result != "" {
			t.bind(req.Result, m.Ref(t.c.Init))
		}
		out.degraded = true
		out.reason = reason + "; served initial states only (sound floor)"
		return nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.envelope(t, "reach/"+mode, out, res, start))
}

// handleCount answers model-count queries (no node allocation, so no
// degradation path).
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req CountRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "exact"
	}
	bias := req.Bias
	if bias <= 0 {
		bias = 0.5
	}
	var res CountResult
	out, err := t.run(func(m *bdd.Manager, out *opOutcome) error {
		f, err := t.lookup(req.Target)
		if err != nil {
			return err
		}
		res = CountResult{Mode: mode}
		switch mode {
		case "exact":
			n, err := count.Minterms(m, f, m.NumVars())
			if err != nil {
				return err
			}
			res.Exact = n.String()
		case "fraction":
			res.Fraction = count.Fraction(m, f)
		case "weighted":
			res.Weighted = count.Weighted(m, f, func(v int) float64 { return bias })
		default:
			return fmt.Errorf("count: unknown mode %q (want exact|fraction|weighted)", mode)
		}
		return nil
	}, nil)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.envelope(t, "count/"+mode, out, res, start))
}

// handleSample draws uniform satisfying assignments.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	t, err := s.tenant(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req SampleRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	n := req.N
	if n <= 0 {
		n = 1
	}
	if n > maxSamplesPerRequest {
		s.writeError(w, fmt.Errorf("sample: n %d exceeds %d", n, maxSamplesPerRequest))
		return
	}
	var res SampleResult
	out, err := t.run(func(m *bdd.Manager, out *opOutcome) error {
		f, err := t.lookup(req.Target)
		if err != nil {
			return err
		}
		sampler, err := count.NewSampler(m, f, m.NumVars(), req.Seed)
		if err != nil {
			return err
		}
		res = SampleResult{Count: sampler.Count().String(), Samples: make([]string, n)}
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.Reset()
			for _, bit := range sampler.Sample() {
				if bit {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			res.Samples[i] = sb.String()
		}
		return nil
	}, nil)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.envelope(t, "sample", out, res, start))
}
