package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"bddkit/internal/circuit"
	"bddkit/internal/model"
	"bddkit/internal/obs"
)

// newTestServer spins up the full API on an ephemeral listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// call issues one JSON request and decodes the response body into out
// (unless out is nil). It returns the status code.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case string:
		rd = strings.NewReader(b)
	case []byte:
		rd = bytes.NewReader(b)
	default:
		buf, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// counterNetlist reads the repo's 3-bit counter fixture.
func counterNetlist(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/counter.net")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// multiplierNetlist serializes an n×n multiplier — a combinational model
// whose output BDDs are big enough to trip small node quotas.
func multiplierNetlist(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := circuit.Write(&buf, model.MultiplierNetlist(n)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTenantLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL + "/v1/tenants"

	var info TenantInfo
	if st := call(t, "PUT", base+"/alice", CreateTenantRequest{Quota: 5000}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if info.ID != "alice" || info.Quota != 5000 {
		t.Fatalf("create: info %+v", info)
	}
	if st := call(t, "PUT", base+"/alice", nil, nil); st != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", st)
	}
	if st := call(t, "GET", base+"/nosuch", nil, nil); st != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", st)
	}
	var listed []TenantInfo
	if st := call(t, "GET", base, nil, &listed); st != http.StatusOK || len(listed) != 1 {
		t.Fatalf("list: status %d, %d tenants", st, len(listed))
	}
	if st := call(t, "DELETE", base+"/alice", nil, nil); st != http.StatusNoContent {
		t.Fatalf("delete: status %d", st)
	}
	if st := call(t, "GET", base+"/alice", nil, nil); st != http.StatusNotFound {
		t.Fatalf("deleted tenant still answers: status %d", st)
	}
}

func TestBuildOpsCountSampleRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL + "/v1/tenants/alice"
	if st := call(t, "PUT", base, nil, nil); st != http.StatusCreated {
		t.Fatalf("create: %d", st)
	}
	var env Envelope
	if st := call(t, "POST", base+"/netlist", counterNetlist(t), &env); st != http.StatusOK {
		t.Fatalf("netlist: %d", st)
	}
	if env.Degraded || env.Tenant != "alice" {
		t.Fatalf("netlist envelope: %+v", env)
	}

	// tc = q0 & q1 & q2 over 7 variables (3 state + 3 next + 1 input):
	// 2^7 / 8 = 16 minterms.
	type countEnv struct {
		Envelope
		Result CountResult `json:"result"`
	}
	var ce countEnv
	if st := call(t, "POST", base+"/count",
		CountRequest{Target: "tc", Mode: "exact"}, &ce); st != http.StatusOK {
		t.Fatalf("count: %d", st)
	}
	if ce.Result.Exact != "16" {
		t.Fatalf("count exact = %q, want 16", ce.Result.Exact)
	}
	if st := call(t, "POST", base+"/count",
		CountRequest{Target: "tc", Mode: "fraction"}, &ce); st != http.StatusOK || ce.Result.Fraction != 0.125 {
		t.Fatalf("count fraction = %v (status %d), want 0.125", ce.Result.Fraction, st)
	}

	// NOT then AND with the complement: empty function.
	if st := call(t, "POST", base+"/ops",
		OpRequest{Op: "not", Args: []string{"tc"}, Result: "ntc"}, &env); st != http.StatusOK {
		t.Fatalf("not: %d", st)
	}
	if st := call(t, "POST", base+"/ops",
		OpRequest{Op: "and", Args: []string{"tc", "ntc"}, Result: "empty"}, &env); st != http.StatusOK {
		t.Fatalf("and: %d", st)
	}
	if st := call(t, "POST", base+"/count",
		CountRequest{Target: "empty", Mode: "exact"}, &ce); st != http.StatusOK || ce.Result.Exact != "0" {
		t.Fatalf("count of contradiction = %q (status %d), want 0", ce.Result.Exact, st)
	}

	// Bad requests are 4xx, not 5xx.
	if st := call(t, "POST", base+"/ops",
		OpRequest{Op: "nand", Args: []string{"tc", "ntc"}, Result: "x"}, nil); st != http.StatusBadRequest {
		t.Fatalf("unknown op: %d, want 400", st)
	}
	if st := call(t, "POST", base+"/count",
		CountRequest{Target: "nosuch"}, nil); st != http.StatusNotFound {
		t.Fatalf("unknown function: %d, want 404", st)
	}

	// Samples: 7 bits each, and every draw satisfies tc (assignment ends
	// up in the accepted set — spot-check the count field instead of the
	// variable mapping, which the wire format doesn't expose).
	type sampleEnv struct {
		Envelope
		Result SampleResult `json:"result"`
	}
	var se sampleEnv
	if st := call(t, "POST", base+"/sample",
		SampleRequest{Target: "tc", N: 5, Seed: 7}, &se); st != http.StatusOK {
		t.Fatalf("sample: %d", st)
	}
	if se.Result.Count != "16" || len(se.Result.Samples) != 5 {
		t.Fatalf("sample result: %+v", se.Result)
	}
	for _, smp := range se.Result.Samples {
		if len(smp) != 7 {
			t.Fatalf("sample %q has %d bits, want 7", smp, len(smp))
		}
	}
}

func TestApproxDecompReach(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL + "/v1/tenants/bob"
	call(t, "PUT", base, nil, nil)
	call(t, "POST", base+"/netlist", multiplierNetlist(t, 5), nil)

	var funcs []FuncInfo
	if st := call(t, "GET", base+"/funcs", nil, &funcs); st != http.StatusOK || len(funcs) == 0 {
		t.Fatalf("funcs: status %d, %d functions", st, len(funcs))
	}
	target := funcs[len(funcs)-1].Name // high product bit: widest BDD

	type approxEnv struct {
		Envelope
		Result ApproxResult `json:"result"`
	}
	for _, op := range []string{"rua", "sp", "hb", "ua", "c1", "c2"} {
		var ae approxEnv
		st := call(t, "POST", base+"/approx",
			ApproxRequest{Op: op, Target: target, Threshold: 10, Result: "approx_" + op}, &ae)
		if st != http.StatusOK {
			t.Fatalf("approx %s: status %d", op, st)
		}
		if ae.Result.NodesOut > ae.Result.NodesIn {
			t.Errorf("approx %s grew: %d -> %d nodes", op, ae.Result.NodesIn, ae.Result.NodesOut)
		}
		if ae.Result.MassRetained < 0 || ae.Result.MassRetained > 1+1e-9 {
			t.Errorf("approx %s mass retained %v outside [0,1]", op, ae.Result.MassRetained)
		}
	}

	type decompEnv struct {
		Envelope
		Result DecompResult `json:"result"`
	}
	for _, sel := range []string{"cofactor", "band", "disjoint", "mcmillan"} {
		var de decompEnv
		st := call(t, "POST", base+"/decomp",
			DecompRequest{Selector: sel, Target: target}, &de)
		if st != http.StatusOK {
			t.Fatalf("decomp %s: status %d", sel, st)
		}
		if len(de.Result.FactorNodes) == 0 {
			t.Errorf("decomp %s: no factors", sel)
		}
	}

	// Reachability needs latches; the multiplier has none, so this must be
	// a clean client error...
	if st := call(t, "POST", base+"/reach", ReachRequest{}, nil); st >= 500 || st == http.StatusOK {
		t.Fatalf("reach on combinational model: status %d, want 4xx", st)
	}

	// ...and the counter traverses fully: 8 states in 8 iterations or less.
	cbase := ts.URL + "/v1/tenants/carol"
	call(t, "PUT", cbase, nil, nil)
	call(t, "POST", cbase+"/netlist", counterNetlist(t), nil)
	type reachEnv struct {
		Envelope
		Result ReachResult `json:"result"`
	}
	for _, mode := range []string{"bfs", "hd"} {
		var re reachEnv
		if st := call(t, "POST", cbase+"/reach",
			ReachRequest{Mode: mode, Result: "reached_" + mode}, &re); st != http.StatusOK {
			t.Fatalf("reach %s: status %d", mode, st)
		}
		if !re.Result.Completed || re.Result.States != 8 {
			t.Fatalf("reach %s: %+v", mode, re.Result)
		}
		if re.Degraded {
			t.Fatalf("reach %s degraded without budget pressure", mode)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := ts.URL + "/v1/tenants/a"
	call(t, "PUT", a, nil, nil)
	call(t, "POST", a+"/netlist", counterNetlist(t), nil)
	call(t, "POST", a+"/ops", OpRequest{Op: "or", Args: []string{"tc", "tc"}, Result: "tc2"}, nil)

	resp, err := http.Get(a + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d err %v", resp.StatusCode, err)
	}

	b := ts.URL + "/v1/tenants/b"
	call(t, "PUT", b, nil, nil)
	type restoreEnv struct {
		Envelope
		Result RestoreResult `json:"result"`
	}
	var re restoreEnv
	if st := call(t, "POST", b+"/restore", snap, &re); st != http.StatusOK {
		t.Fatalf("restore: status %d", st)
	}
	if len(re.Result.Functions) != 2 {
		t.Fatalf("restore: functions %+v, want tc and tc2", re.Result.Functions)
	}
	type countEnv struct {
		Envelope
		Result CountResult `json:"result"`
	}
	var ce countEnv
	if st := call(t, "POST", b+"/count",
		CountRequest{Target: "tc", Mode: "exact"}, &ce); st != http.StatusOK || ce.Result.Exact != "16" {
		t.Fatalf("restored count = %q (status %d), want 16", ce.Result.Exact, st)
	}
	// A restored tenant can't also take a netlist.
	if st := call(t, "POST", b+"/netlist", counterNetlist(t), nil); st != http.StatusConflict {
		t.Fatalf("netlist after restore: status %d, want 409", st)
	}
}

// TestBudgetDegrade: a tenant whose quota is already saturated by its
// compiled circuit gets a degraded-but-sound answer for a budgeted op —
// with the degradation marker in the envelope, the loss in the quality
// ledger, and the metrics surface intact.
func TestBudgetDegrade(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	nl := multiplierNetlist(t, 5)

	// Generous tenant: exact answers, no degradation.
	big := ts.URL + "/v1/tenants/big"
	call(t, "PUT", big, CreateTenantRequest{Quota: 1 << 22}, nil)
	call(t, "POST", big+"/netlist", nl, nil)
	// Tiny tenant: compile is unbudgeted (the circuit is the working set),
	// but the quota is far below the compiled size, so the next budgeted
	// operation aborts immediately and must be degraded.
	tiny := ts.URL + "/v1/tenants/tiny"
	call(t, "PUT", tiny, CreateTenantRequest{Quota: 32}, nil)
	call(t, "POST", tiny+"/netlist", nl, nil)

	var funcs []FuncInfo
	call(t, "GET", big+"/funcs", nil, &funcs)
	if len(funcs) < 2 {
		t.Fatalf("multiplier funcs: %+v", funcs)
	}
	x, y := funcs[len(funcs)-1].Name, funcs[len(funcs)-2].Name
	op := OpRequest{Op: "and", Args: []string{x, y}, Result: "both"}

	type opEnv struct {
		Envelope
		Result FuncInfo `json:"result"`
	}
	var exact, degraded opEnv
	if st := call(t, "POST", big+"/ops", op, &exact); st != http.StatusOK || exact.Degraded {
		t.Fatalf("big tenant: status %d degraded=%v", st, exact.Degraded)
	}
	if st := call(t, "POST", tiny+"/ops", op, &degraded); st != http.StatusOK {
		t.Fatalf("tiny tenant: status %d", st)
	}
	if !degraded.Degraded || degraded.DegradeReason == "" {
		t.Fatalf("tiny tenant envelope not marked degraded: %+v", degraded.Envelope)
	}

	// Soundness proxy across tenants: an under-approximation never counts
	// more minterms than the exact answer.
	type countEnv struct {
		Envelope
		Result CountResult `json:"result"`
	}
	var ce, cd countEnv
	call(t, "POST", big+"/count", CountRequest{Target: "both", Mode: "fraction"}, &ce)
	call(t, "POST", tiny+"/count", CountRequest{Target: "both", Mode: "fraction"}, &cd)
	if cd.Result.Fraction > ce.Result.Fraction+1e-12 {
		t.Fatalf("degraded fraction %v exceeds exact %v — not an under-approximation",
			cd.Result.Fraction, ce.Result.Fraction)
	}

	// The loss is on the ledger as a "degrade" op record.
	var snap obs.LedgerSnapshot
	if st := call(t, "GET", ts.URL+"/v1/quality", nil, &snap); st != http.StatusOK {
		t.Fatalf("quality: status %d", st)
	}
	found := false
	for _, agg := range snap.PerOp {
		if agg.Key == "approx.degrade" && agg.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no degrade record on the quality ledger: %+v", snap.PerOp)
	}

	// The degradation shows up on /metrics, and the page lints clean.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape, err := obs.ParsePrometheus(bytes.NewReader(page))
	if err != nil {
		t.Fatalf("metrics unparseable: %v", err)
	}
	if problems := obs.LintPrometheus(scrape); len(problems) != 0 {
		t.Fatalf("metrics lint: %v", problems)
	}
	text := string(page)
	for _, want := range []string{
		`serve_tenant_degrades_total{tenant="tiny"} 1`,
		`serve_tenant_degrades_total{tenant="big"} 0`,
		"serve_degrades_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	_ = s
}

// TestReachDegradeUnderQuota: a traversal that trips the tenant's node
// quota still answers 200 with a partial, sound reached set and a
// degradation marker (the engine absorbs the abort).
func TestReachDegradeUnderQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	if err := circuit.Write(&buf, model.S5378(model.S5378Config{Units: 4, UnitWidth: 4})); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/tenants/t"
	call(t, "PUT", base, nil, nil)
	var env Envelope
	if st := call(t, "POST", base+"/netlist", buf.String(), &env); st != http.StatusOK {
		t.Fatalf("netlist: %d", st)
	}
	// Re-create the tenant with a quota just above the compiled size so
	// the traversal itself trips it: read the live count, then rebuild.
	var info TenantInfo
	call(t, "GET", base, nil, &info)
	call(t, "DELETE", base, nil, nil)
	call(t, "PUT", base, CreateTenantRequest{Quota: info.LiveNodes + 64}, nil)
	if st := call(t, "POST", base+"/netlist", buf.String(), nil); st != http.StatusOK {
		t.Fatal("recompile failed")
	}

	type reachEnv struct {
		Envelope
		Result ReachResult `json:"result"`
	}
	var re reachEnv
	if st := call(t, "POST", base+"/reach", ReachRequest{Mode: "bfs"}, &re); st != http.StatusOK {
		t.Fatalf("reach: status %d", st)
	}
	if re.Result.Completed {
		t.Fatal("traversal under a starved quota reported completion")
	}
	if !re.Degraded || re.DegradeReason == "" {
		t.Fatalf("starved traversal not marked degraded: %+v", re.Envelope)
	}
}

func TestAdmissionShedding(t *testing.T) {
	a := newAdmission(1, 50*time.Millisecond)
	release, shed := a.acquire()
	if shed != nil {
		t.Fatalf("first acquire shed: %v", shed)
	}
	// One waiter fits the queue and sheds on the deadline...
	done := make(chan *ShedError, 1)
	go func() {
		_, shed := a.acquire()
		done <- shed
	}()
	// ...and once it occupies the queue, the next request sheds instantly.
	time.Sleep(10 * time.Millisecond)
	if _, shed := a.acquire(); shed == nil || !strings.Contains(shed.Reason, "queue full") {
		t.Fatalf("overflow acquire: %v, want queue-full shed", shed)
	}
	if shed := <-done; shed == nil || !strings.Contains(shed.Reason, "wait deadline") {
		t.Fatalf("queued acquire: %v, want deadline shed", shed)
	}
	release()
	if release2, shed := a.acquire(); shed != nil {
		t.Fatalf("post-release acquire shed: %v", shed)
	} else {
		release2()
	}
}

func TestShedMapsTo429(t *testing.T) {
	// ShedError → 429 with Retry-After, independent of the handler path.
	s := New(Config{})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.writeError(rec, fmt.Errorf("wrapped: %w", &ShedError{Reason: "queue full", RetryAfter: 3 * time.Second}))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want 3", ra)
	}
}
