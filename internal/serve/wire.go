// Package serve implements the multi-tenant BDD service behind cmd/bddserve:
// per-tenant sessions (one bdd.Manager each), an HTTP/JSON API over the
// library's build/approximate/decompose/traverse/count surface, admission
// control with bounded queueing and deadline shedding, and budget-triggered
// degradation through the paper's under-approximation operators. A tenant
// that exceeds its live-node quota mid-operation receives a degraded but
// containment-sound answer, with the loss filed in the obs quality ledger
// and a degradation marker in the response envelope.
package serve

// Wire types: the JSON bodies of the v1 API. Every successful operation
// response is wrapped in Envelope; errors are {"error": "..."} with an
// HTTP status (429 carries Retry-After).

// Envelope wraps every operation result with tenancy and budget context.
type Envelope struct {
	Tenant string `json:"tenant"`
	Op     string `json:"op"`
	// Degraded marks a budget-degraded answer: the result is sound (an
	// under-approximation of the exact answer) but not exact.
	Degraded bool `json:"degraded,omitempty"`
	// DegradeReason says which limit tripped and how the answer was
	// degraded.
	DegradeReason string `json:"degrade_reason,omitempty"`
	Result        any    `json:"result,omitempty"`
	LiveNodes     int    `json:"live_nodes"`
	Quota         int    `json:"quota"`
	ElapsedNS     int64  `json:"elapsed_ns"`
}

// ErrorBody is the JSON error payload.
type ErrorBody struct {
	Error string `json:"error"`
}

// CreateTenantRequest configures a new tenant session. Zero values take
// the server defaults.
type CreateTenantRequest struct {
	// Quota is the live-node budget for this tenant's manager.
	Quota int `json:"quota,omitempty"`
	// Workers configures the tenant manager's worker goroutines
	// (0 = server default; 1 = serial).
	Workers int `json:"workers,omitempty"`
	// CacheBits sizes the tenant manager's computed table (1<<bits).
	CacheBits uint `json:"cache_bits,omitempty"`
	// QueueDepth bounds how many requests may wait for the tenant's
	// operation slot before new ones are shed with 429.
	QueueDepth int `json:"queue_depth,omitempty"`
	// DeadlineMS bounds each operation's wall-clock time.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// TenantInfo describes a tenant in responses.
type TenantInfo struct {
	ID         string `json:"id"`
	Quota      int    `json:"quota"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	DeadlineMS int64  `json:"deadline_ms"`
	LiveNodes  int    `json:"live_nodes"`
	Functions  int    `json:"functions"`
	Compiled   bool   `json:"compiled"`
}

// OpRequest applies a boolean combinator to named functions and stores
// the result under a new name.
type OpRequest struct {
	// Op is one of and, or, xor, not.
	Op string `json:"op"`
	// Args names the operand functions (1 for not, 2+ for the rest).
	Args []string `json:"args"`
	// Result is the name to bind the result to.
	Result string `json:"result"`
}

// FuncInfo describes one named function.
type FuncInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
}

// ApproxRequest runs one of the paper's under-approximation operators.
type ApproxRequest struct {
	// Op is one of rua, sp, hb, ua, c1, c2.
	Op     string `json:"op"`
	Target string `json:"target"`
	// Threshold is the operator's size threshold (0 = unrestricted).
	Threshold int `json:"threshold,omitempty"`
	// Quality is the remap quality factor (rua/c1/c2; 0 = 1.0).
	Quality float64 `json:"quality,omitempty"`
	// Alpha is the UA density parameter (ua only; 0 = 0.5).
	Alpha float64 `json:"alpha,omitempty"`
	// Result is the name to bind the approximation to ("" = don't bind).
	Result string `json:"result,omitempty"`
}

// ApproxResult reports the approximation's quality accounting.
type ApproxResult struct {
	Name         string  `json:"name,omitempty"`
	NodesIn      int     `json:"nodes_in"`
	NodesOut     int     `json:"nodes_out"`
	MassIn       float64 `json:"mass_in"`
	MassOut      float64 `json:"mass_out"`
	MassRetained float64 `json:"mass_retained"`
}

// DecompRequest decomposes a named function.
type DecompRequest struct {
	// Selector is one of cofactor, band, disjoint, mcmillan.
	Selector string `json:"selector"`
	Target   string `json:"target"`
}

// DecompResult reports the decomposition structure.
type DecompResult struct {
	Selector    string `json:"selector"`
	NodesIn     int    `json:"nodes_in"`
	FactorNodes []int  `json:"factor_nodes"`
	SharedNodes int    `json:"shared_nodes"`
}

// ReachRequest runs reachability over the uploaded netlist's transition
// relation.
type ReachRequest struct {
	// Mode is bfs or hd.
	Mode string `json:"mode,omitempty"`
	// Threshold is the HD frontier-subset threshold.
	Threshold int `json:"threshold,omitempty"`
	// MaxIterations bounds the traversal (0 = none).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Result binds the reached-state predicate to a name ("" = don't).
	Result string `json:"result,omitempty"`
}

// ReachResult reports a traversal.
type ReachResult struct {
	Name       string  `json:"name,omitempty"`
	States     float64 `json:"states"`
	Nodes      int     `json:"nodes"`
	Iterations int     `json:"iterations"`
	Completed  bool    `json:"completed"`
}

// CountRequest queries a named function's model count.
type CountRequest struct {
	Target string `json:"target"`
	// Mode is exact, fraction, or weighted.
	Mode string `json:"mode,omitempty"`
	// Bias is the per-variable true-probability for weighted counting.
	Bias float64 `json:"bias,omitempty"`
}

// CountResult reports a count query. Exact counts are decimal strings
// (they exceed float64 well before they exceed a served workload).
type CountResult struct {
	Mode     string  `json:"mode"`
	Exact    string  `json:"exact,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Weighted float64 `json:"weighted,omitempty"`
}

// SampleRequest draws uniform satisfying assignments.
type SampleRequest struct {
	Target string `json:"target"`
	N      int    `json:"n,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// SampleResult carries the drawn assignments as 0/1 strings, one
// character per variable.
type SampleResult struct {
	Count   string   `json:"count"`
	Samples []string `json:"samples"`
}

// RestoreResult reports a snapshot restore.
type RestoreResult struct {
	Functions []FuncInfo `json:"functions"`
}
