package serve

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Admission control: each tenant owns one operation slot (BDD managers
// serialize mutation anyway, so concurrent ops on one tenant would only
// contend), a bounded wait queue, and a deadline on how long a request
// may wait for the slot. A request that finds the queue full — or waits
// past the deadline — is shed with 429 and a Retry-After hint instead of
// piling onto a loaded tenant.

// ShedError reports a shed request and how long the client should back
// off before retrying.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: %s (retry after %v)", e.Reason, e.RetryAfter)
}

type admission struct {
	slot       chan struct{} // capacity 1: the tenant's operation slot
	waiting    atomic.Int64  // requests currently queued for the slot
	queueDepth int64
	waitMax    time.Duration
}

func newAdmission(queueDepth int, waitMax time.Duration) *admission {
	if queueDepth < 1 {
		queueDepth = 1
	}
	if waitMax <= 0 {
		waitMax = 5 * time.Second
	}
	a := &admission{
		slot:       make(chan struct{}, 1),
		queueDepth: int64(queueDepth),
		waitMax:    waitMax,
	}
	a.slot <- struct{}{}
	return a
}

// acquire claims the tenant's operation slot, queueing up to queueDepth
// waiters and shedding past the wait deadline. On success the returned
// release function must be called exactly once.
func (a *admission) acquire() (release func(), shed *ShedError) {
	if a.waiting.Add(1) > a.queueDepth {
		a.waiting.Add(-1)
		return nil, &ShedError{
			Reason:     fmt.Sprintf("queue full (%d waiting)", a.queueDepth),
			RetryAfter: a.waitMax,
		}
	}
	defer a.waiting.Add(-1)
	timer := time.NewTimer(a.waitMax)
	defer timer.Stop()
	select {
	case <-a.slot:
		return func() { a.slot <- struct{}{} }, nil
	case <-timer.C:
		return nil, &ShedError{
			Reason:     fmt.Sprintf("wait deadline %v exceeded", a.waitMax),
			RetryAfter: a.waitMax,
		}
	}
}
