package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/obs"
)

// Tenant is one isolated session: its own bdd.Manager (so node budgets
// and GC pressure never cross tenants), its own named-function namespace,
// its own metrics registry (merged into /metrics under a tenant label),
// and its own admission state.
type Tenant struct {
	ID string

	adm      *admission
	quota    int           // live-node budget for the manager
	deadline time.Duration // per-operation wall-clock budget
	workers  int
	cacheCfg bdd.Config

	reg      *obs.Registry
	ops      *obs.Counter // operations completed
	degrades *obs.Counter // budget-degraded answers served
	sheds    *obs.Counter // requests shed by admission control

	// mu serializes manager mutation; admission admits one operation at a
	// time, but teardown and informational reads take the lock too.
	mu     sync.Mutex
	m      *bdd.Manager
	c      *circuit.Compiled // non-nil after a netlist upload
	funcs  map[string]bdd.Ref
	closed bool
}

func newTenant(id string, quota, workers, queueDepth int, cacheBits uint, deadline time.Duration) *Tenant {
	reg := obs.NewRegistry()
	t := &Tenant{
		ID:       id,
		adm:      newAdmission(queueDepth, deadline),
		quota:    quota,
		deadline: deadline,
		workers:  workers,
		cacheCfg: bdd.Config{Workers: workers, CacheBits: cacheBits},
		reg:      reg,
		ops:      reg.Counter("serve_tenant_ops_total"),
		degrades: reg.Counter("serve_tenant_degrades_total"),
		sheds:    reg.Counter("serve_tenant_sheds_total"),
		funcs:    make(map[string]bdd.Ref),
	}
	reg.SetHelp("serve_tenant_ops_total", "operations completed for this tenant")
	reg.SetHelp("serve_tenant_degrades_total", "budget-degraded answers served to this tenant")
	reg.SetHelp("serve_tenant_sheds_total", "requests shed by admission control for this tenant")
	return t
}

// manager returns the tenant's manager, creating it on first use. Callers
// hold t.mu.
func (t *Tenant) manager() *bdd.Manager {
	if t.m == nil {
		t.m = bdd.NewWithConfig(0, t.cacheCfg)
		obs.RegisterManagerGauges(t.reg, t.m)
	}
	return t.m
}

// headroom is how many more nodes the tenant may allocate; degraded
// answers are shrunk to fit it (with a small floor so a tenant at its
// quota still gets a usable shape back).
func (t *Tenant) headroom() int {
	h := t.quota - t.manager().NodeCount()
	if h < 8 {
		h = 8
	}
	return h
}

// info snapshots the tenant for listings. Takes the lock; do not call
// with t.mu held.
func (t *Tenant) info() TenantInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	live := 0
	if t.m != nil {
		live = t.m.NodeCount()
	}
	return TenantInfo{
		ID:         t.ID,
		Quota:      t.quota,
		Workers:    t.workers,
		QueueDepth: int(t.adm.queueDepth),
		DeadlineMS: t.deadline.Milliseconds(),
		LiveNodes:  live,
		Functions:  len(t.funcs),
		Compiled:   t.c != nil,
	}
}

// lookup resolves a named function. Callers hold t.mu.
func (t *Tenant) lookup(name string) (bdd.Ref, error) {
	f, ok := t.funcs[name]
	if !ok {
		return 0, fmt.Errorf("unknown function %q", name)
	}
	return f, nil
}

// bind stores f under name, releasing any previous binding. Takes
// ownership of the reference. Callers hold t.mu.
func (t *Tenant) bind(name string, f bdd.Ref) {
	if old, ok := t.funcs[name]; ok {
		t.m.Deref(old)
	}
	t.funcs[name] = f
}

// funcList returns the sorted function inventory. Callers hold t.mu.
func (t *Tenant) funcList() []FuncInfo {
	out := make([]FuncInfo, 0, len(t.funcs))
	for name, f := range t.funcs {
		out = append(out, FuncInfo{Name: name, Nodes: t.m.DagSize(f)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// compile uploads a netlist into the tenant: the manager is created by
// circuit.Compile (honoring the tenant's worker/cache configuration) and
// every output becomes a named function. A second upload is an error —
// the function namespace and variable order belong to the first circuit.
func (t *Tenant) compile(r io.Reader) ([]FuncInfo, error) {
	nl, err := circuit.Parse(r)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errTenantClosed
	}
	if t.c != nil {
		return nil, errAlreadyCompiled
	}
	if t.m != nil && len(t.funcs) > 0 {
		return nil, fmt.Errorf("tenant already holds restored functions; create a fresh tenant for a netlist")
	}
	cfg := t.cacheCfg
	c, err := circuit.Compile(nl, circuit.CompileOptions{BDDConfig: &cfg})
	if err != nil {
		return nil, err
	}
	// The compiled manager replaces any lazily created empty one.
	t.c = c
	t.m = c.M
	obs.RegisterManagerGauges(t.reg, t.m)
	// Compilation ran unbudgeted (the circuit is the tenant's working set);
	// enforce the quota from here on via RunLimited in run().
	for i, name := range nl.OutName {
		t.bind(name, t.m.Ref(c.Outputs[i]))
	}
	return t.funcList(), nil
}

// restore loads a snapshot (fuzz-hardened Save/Load format) into the
// tenant's manager, binding every root by name.
func (t *Tenant) restore(r io.Reader) ([]FuncInfo, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errTenantClosed
	}
	m := t.manager()
	var roots map[string]bdd.Ref
	err := m.RunLimited(t.opDeadline(), t.quota, func() error {
		var lerr error
		roots, lerr = m.Load(r)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	for name, f := range roots {
		t.bind(name, f)
	}
	return t.funcList(), nil
}

// snapshot writes the tenant's whole function namespace in Save format.
func (t *Tenant) snapshot(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errTenantClosed
	}
	if len(t.funcs) == 0 {
		return fmt.Errorf("tenant holds no functions")
	}
	names := make([]string, 0, len(t.funcs))
	for name := range t.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	roots := make([]bdd.Ref, len(names))
	for i, name := range names {
		roots[i] = t.funcs[name]
	}
	return t.m.Save(w, names, roots)
}

// liveNodes reports the manager's current live-node count for envelopes.
func (t *Tenant) liveNodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		return 0
	}
	return t.m.NodeCount()
}

// opDeadline converts the per-op duration budget into a wall-clock
// deadline for RunLimited.
func (t *Tenant) opDeadline() time.Time {
	if t.deadline <= 0 {
		return time.Time{}
	}
	return time.Now().Add(t.deadline)
}

// close tears the tenant down: all function references dropped, the
// compiled circuit released. The manager itself is garbage once nothing
// points at it.
func (t *Tenant) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for name, f := range t.funcs {
		t.m.Deref(f)
		delete(t.funcs, name)
	}
	if t.c != nil {
		t.c.Release()
		t.c = nil
	}
	t.m = nil
}

// opOutcome is what run's callback reports besides an error: whether the
// operation degraded and why.
type opOutcome struct {
	degraded bool
	reason   string
}

// run admits one operation, serializes it against the tenant's manager,
// and executes fn under the tenant's node quota and wall-clock deadline.
// fn runs with t.mu held and must not retain the lock past its return.
//
// When fn trips the budget (bdd.OpAborted) and onAbort is non-nil, run
// invokes onAbort with the limits disarmed (RunLimited restored them on
// the way out) so it can compute a degraded-but-sound answer via the
// under-approximation path; onAbort should fill out.degraded/reason.
// With a nil onAbort the abort surfaces as the returned error.
func (t *Tenant) run(
	fn func(m *bdd.Manager, out *opOutcome) error,
	onAbort func(m *bdd.Manager, out *opOutcome, reason string) error,
) (opOutcome, error) {
	release, shed := t.adm.acquire()
	if shed != nil {
		t.sheds.Inc()
		return opOutcome{}, shed
	}
	defer release()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return opOutcome{}, errTenantClosed
	}
	m := t.manager()
	var out opOutcome
	err := m.RunLimited(t.opDeadline(), t.quota, func() error {
		return fn(m, &out)
	})
	if ab, ok := err.(bdd.OpAborted); ok && onAbort != nil {
		err = onAbort(m, &out, ab.Reason)
	}
	if err == nil {
		t.ops.Inc()
		if out.degraded {
			t.degrades.Inc()
		}
	}
	return out, err
}

// degradeToQuota shrinks f to the tenant's remaining headroom with the
// node limit disarmed (the under-approximation operators need working
// space), filing the loss in the quality ledger under op "degrade". The
// result is containment-sound: it implies f. Callers hold t.mu and run
// OUTSIDE RunLimited (its restore-on-exit would re-arm the tripped limit
// around the degrade work).
func (t *Tenant) degradeToQuota(m *bdd.Manager, f bdd.Ref) bdd.Ref {
	return approx.ToBudget(m, f, t.headroom())
}

var (
	errAlreadyCompiled = fmt.Errorf("tenant already compiled a netlist")
	errTenantClosed    = fmt.Errorf("tenant is closed")
)
