package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"bddkit/internal/obs"
)

// Config carries the server's knobs (each tenant can override the
// per-tenant ones at creation).
type Config struct {
	// DefaultQuota is the per-tenant live-node budget.
	DefaultQuota int
	// DefaultQueueDepth bounds each tenant's admission queue.
	DefaultQueueDepth int
	// DefaultDeadline bounds each operation (and each admission wait).
	DefaultDeadline time.Duration
	// Workers is the default per-tenant manager worker count.
	Workers int
	// CacheBits is the default per-tenant computed-table exponent.
	CacheBits uint
	// MaxTenants bounds the pool (0 = DefaultMaxTenants).
	MaxTenants int
	// MaxBodyBytes bounds request bodies — netlists and snapshots come
	// from the network (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// ShutdownDrain bounds how long Close waits for in-flight requests.
	ShutdownDrain time.Duration
}

// Defaults for the zero Config.
const (
	DefaultQuota         = 1 << 20
	DefaultQueueDepth    = 8
	DefaultDeadline      = 30 * time.Second
	DefaultMaxTenants    = 64
	DefaultMaxBodyBytes  = 64 << 20
	DefaultShutdownDrain = 5 * time.Second
)

func (c Config) withDefaults() Config {
	if c.DefaultQuota <= 0 {
		c.DefaultQuota = DefaultQuota
	}
	if c.DefaultQueueDepth <= 0 {
		c.DefaultQueueDepth = DefaultQueueDepth
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = DefaultDeadline
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = DefaultMaxTenants
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.ShutdownDrain <= 0 {
		c.ShutdownDrain = DefaultShutdownDrain
	}
	return c
}

// Server is the multi-tenant daemon: a tenant pool, the v1 HTTP API, and
// a Prometheus surface merging the server registry with every tenant's
// registry under a tenant label.
type Server struct {
	cfg Config

	reg      *obs.Registry
	requests *obs.Counter
	sheds    *obs.Counter
	degrades *obs.Counter

	mu      sync.Mutex
	tenants map[string]*Tenant

	httpSrv *http.Server
	// BoundAddr is the live listen address after Start (useful with :0).
	BoundAddr string
}

// New builds a Server (not yet listening) and arms the process-global
// quality ledger against the server registry so degraded answers file
// loss records even without an obs session.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		requests: reg.Counter("serve_requests_total"),
		sheds:    reg.Counter("serve_sheds_total"),
		degrades: reg.Counter("serve_degrades_total"),
		tenants:  make(map[string]*Tenant),
	}
	reg.SetHelp("serve_requests_total", "API requests received")
	reg.SetHelp("serve_sheds_total", "requests shed by admission control")
	reg.SetHelp("serve_degrades_total", "budget-degraded answers served")
	reg.GaugeFunc("serve_tenants", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.tenants))
	})
	reg.SetHelp("serve_tenants", "live tenant sessions")
	obs.ArmLedger(reg)
	return s
}

// tenant looks up a live tenant.
func (s *Server) tenant(id string) (*Tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return nil, fmt.Errorf("unknown tenant %q", id)
	}
	return t, nil
}

// createTenant adds a tenant with the request's overrides on top of the
// server defaults.
func (s *Server) createTenant(id string, req CreateTenantRequest) (*Tenant, error) {
	if id == "" {
		return nil, fmt.Errorf("empty tenant id")
	}
	quota := req.Quota
	if quota <= 0 {
		quota = s.cfg.DefaultQuota
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	queueDepth := req.QueueDepth
	if queueDepth <= 0 {
		queueDepth = s.cfg.DefaultQueueDepth
	}
	cacheBits := req.CacheBits
	if cacheBits == 0 {
		cacheBits = s.cfg.CacheBits
	}
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[id]; ok {
		return nil, fmt.Errorf("tenant %q already exists", id)
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, fmt.Errorf("tenant pool full (%d)", s.cfg.MaxTenants)
	}
	t := newTenant(id, quota, workers, queueDepth, cacheBits, deadline)
	s.tenants[id] = t
	return t, nil
}

// dropTenant closes and removes a tenant.
func (s *Server) dropTenant(id string) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	delete(s.tenants, id)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown tenant %q", id)
	}
	t.close()
	return nil
}

// labeledRegistries snapshots the exposition set: the server registry
// unlabeled, each tenant registry under tenant="id", in sorted order so
// scrapes are stable.
func (s *Server) labeledRegistries() []obs.LabeledRegistry {
	s.mu.Lock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	regs := make([]obs.LabeledRegistry, 0, len(ids)+1)
	regs = append(regs, obs.LabeledRegistry{R: s.reg})
	for _, id := range ids {
		regs = append(regs, obs.LabeledRegistry{
			Labels: fmt.Sprintf("tenant=%q", id),
			R:      s.tenants[id].reg,
		})
	}
	s.mu.Unlock()
	return regs
}

// Start listens on addr and serves until Close. It returns once the
// listener is bound; BoundAddr carries the resolved address.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.BoundAddr = ln.Addr().String()
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // closed by Close
	return nil
}

// Close drains in-flight requests (bounded by ShutdownDrain, hard-closing
// past it), tears down every tenant, and disarms the quality ledger.
func (s *Server) Close() error {
	var err error
	if s.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownDrain)
		err = s.httpSrv.Shutdown(ctx)
		cancel()
		if err != nil {
			if closeErr := s.httpSrv.Close(); closeErr != nil {
				err = fmt.Errorf("serve: shutdown: %w (hard close: %v)", err, closeErr)
			} else {
				err = fmt.Errorf("serve: shutdown: %w", err)
			}
		}
		s.httpSrv = nil
	}
	s.mu.Lock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for id, t := range s.tenants {
		tenants = append(tenants, t)
		delete(s.tenants, id)
	}
	s.mu.Unlock()
	for _, t := range tenants {
		t.close()
	}
	obs.DisarmLedger()
	return err
}
