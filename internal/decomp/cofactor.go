package decomp

import "bddkit/internal/bdd"

// Cofactor is the baseline decomposition of Cabodi et al. [6] and Narayan
// et al. [19] as re-implemented for the paper's Table 4: it chooses the
// single cofactoring variable that minimizes the size of the larger of the
// two cofactors (estimated in time linear in the product of the number of
// variables and |f|), and splits per Equation 1:
//
//	G = x + f_¬x,  H = ¬x + f_x   (conjunctive: G ∧ H = f)
func Cofactor(m *bdd.Manager, f bdd.Ref) Pair {
	defer m.PauseAutoReorder()()
	v, ok := bestSplitVar(m, f)
	if !ok {
		return Pair{G: m.Ref(f), H: bdd.One}
	}
	x := m.IthVar(v)
	fx := m.CofactorVar(f, v, true)
	fnx := m.CofactorVar(f, v, false)
	g := m.Or(x, fnx)
	h := m.Or(x.Complement(), fx)
	m.Deref(fx)
	m.Deref(fnx)
	return Pair{G: g, H: h}
}

// CofactorDisjunctive is the symmetric disjunctive split: G ∨ H = f with
// G = x·f_x and H = ¬x·f_¬x.
func CofactorDisjunctive(m *bdd.Manager, f bdd.Ref) Pair {
	defer m.PauseAutoReorder()()
	v, ok := bestSplitVar(m, f)
	if !ok {
		return Pair{G: m.Ref(f), H: bdd.Zero}
	}
	x := m.IthVar(v)
	fx := m.CofactorVar(f, v, true)
	fnx := m.CofactorVar(f, v, false)
	g := m.And(x, fx)
	h := m.And(x.Complement(), fnx)
	m.Deref(fx)
	m.Deref(fnx)
	return Pair{G: g, H: h}
}

// bestSplitVar returns the support variable minimizing
// max(|f_x|, |f_¬x|), using the linear-time cofactor size estimate.
func bestSplitVar(m *bdd.Manager, f bdd.Ref) (int, bool) {
	support := m.SupportVars(f)
	if len(support) == 0 {
		return 0, false
	}
	best, bestCost := support[0], int(^uint(0)>>1)
	for _, v := range support {
		c1 := EstimateCofactorSize(m, f, v, true)
		c0 := EstimateCofactorSize(m, f, v, false)
		cost := c1
		if c0 > cost {
			cost = c0
		}
		if cost < bestCost {
			bestCost = cost
			best = v
		}
	}
	return best, true
}

// EstimateCofactorSize estimates |f with variable v fixed to value| by
// counting the nodes reachable when arcs at v's level follow only the
// chosen branch. The estimate is exact up to the reductions the restricted
// graph would undergo, and costs one linear traversal.
func EstimateCofactorSize(m *bdd.Manager, f bdd.Ref, v int, value bool) int {
	lev := m.LevelOfVar(v)
	seen := make(map[uint32]bool)
	count := 0
	var walk func(r bdd.Ref)
	walk = func(r bdd.Ref) {
		if r.IsConstant() || seen[r.ID()] {
			return
		}
		seen[r.ID()] = true
		count++
		if m.Level(r) == lev {
			if value {
				walk(m.StructHi(r))
			} else {
				walk(m.StructLo(r))
			}
			count-- // the node itself disappears in the cofactor
			return
		}
		walk(m.StructHi(r))
		walk(m.StructLo(r))
	}
	walk(f)
	return count + 1 // count the constant, as DagSize does
}
