package decomp

import (
	"sort"

	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// Decomposition-point selection heuristics (Section 3, "Decomposition
// Points").

// BandConfig parameterizes Band: nodes whose distance from the constant
// falls within [Low·D, High·D], where D is the root's distance, become
// decomposition points. The paper motivates a "middle band": low enough to
// shrink the factors substantially, high enough not to destroy the
// recombination when the factors are rebuilt.
type BandConfig struct {
	Low, High float64
}

// DefaultBandConfig centers the band just below the middle of the BDD.
func DefaultBandConfig() BandConfig { return BandConfig{Low: 0.35, High: 0.6} }

// BandPoints selects decomposition points by distance from the constant
// (one bottom-up pass of the BDD, as in the paper).
func BandPoints(m *bdd.Manager, f bdd.Ref, cfg BandConfig) Points {
	if cfg.High <= 0 {
		cfg = DefaultBandConfig()
	}
	var sp *obs.Span
	if obs.T.Enabled() {
		sp = obs.T.Begin("decomp.band_points",
			obs.Int("size", m.DagSize(f)),
			obs.F64("low", cfg.Low), obs.F64("high", cfg.High))
	}
	dist := make(map[uint32]int)
	var depth func(r bdd.Ref) int
	depth = func(r bdd.Ref) int {
		if r.IsConstant() {
			return 0
		}
		if d, ok := dist[r.ID()]; ok {
			return d
		}
		dh := depth(m.StructHi(r))
		dl := depth(m.StructLo(r))
		d := dh
		if dl < d {
			d = dl
		}
		d++
		dist[r.ID()] = d
		return d
	}
	rootD := depth(f)
	lo := int(cfg.Low * float64(rootD))
	hi := int(cfg.High * float64(rootD))
	if hi < 1 {
		hi = 1
	}
	if lo < 1 {
		lo = 1
	}
	pts := make(Points)
	for id, d := range dist {
		if d >= lo && d <= hi {
			pts[id] = true
		}
	}
	if sp != nil {
		sp.End(obs.Int("points", len(pts)), obs.Int("root_depth", rootD))
	}
	return pts
}

// DisjointConfig parameterizes Disjoint point selection.
type DisjointConfig struct {
	// MaxCandidates bounds how many nodes are sampled for the (per-node
	// linear, hence globally quadratic) sharing measure; the paper notes
	// that in practice only a fraction of the nodes are sampled.
	MaxCandidates int
	// MaxPoints is the number of best-scoring nodes kept as
	// decomposition points.
	MaxPoints int
	// MinSubtree skips nodes whose children's subtrees are too small to
	// be worth cutting.
	MinSubtree int
}

// DefaultDisjointConfig returns the settings used by the Table 4
// experiments.
func DefaultDisjointConfig() DisjointConfig {
	return DisjointConfig{MaxCandidates: 256, MaxPoints: 12, MinSubtree: 8}
}

// DisjointPoints selects as decomposition points the nodes whose children
// are balanced in size and share little structure: cutting there shrinks
// the individual factors maximally while keeping the shared size small.
// Candidates are scored by balance × (1 − sharing) × cut mass, and the
// best MaxPoints survive; per the paper, measuring one candidate costs a
// pass of the BDD, so only a sample of the nodes is examined.
func DisjointPoints(m *bdd.Manager, f bdd.Ref, cfg DisjointConfig) Points {
	if cfg.MaxCandidates == 0 {
		cfg = DefaultDisjointConfig()
	}
	total := m.DagSize(f)
	var sp *obs.Span
	if obs.T.Enabled() {
		sp = obs.T.Begin("decomp.disjoint_points",
			obs.Int("size", total),
			obs.Int("max_candidates", cfg.MaxCandidates))
	}
	// Sample nodes breadth-first so cuts land in the upper-middle of the
	// BDD, where they split real mass.
	var order []bdd.Ref
	seen := map[uint32]bool{}
	queue := []bdd.Ref{f.Regular()}
	seen[f.ID()] = true
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		if r.IsConstant() {
			continue
		}
		order = append(order, r)
		for _, c := range [2]bdd.Ref{m.StructHi(r), m.StructLo(r)} {
			if !c.IsConstant() && !seen[c.ID()] {
				seen[c.ID()] = true
				queue = append(queue, c.Regular())
			}
		}
	}

	type scored struct {
		id    uint32
		score float64
	}
	var best []scored
	sampled := 0
	for _, r := range order {
		if sampled >= cfg.MaxCandidates {
			break
		}
		hi, lo := m.StructHi(r), m.StructLo(r)
		if hi.IsConstant() || lo.IsConstant() {
			continue
		}
		sampled++
		szHi := m.DagSize(hi)
		szLo := m.DagSize(lo)
		small, big := szHi, szLo
		if small > big {
			small, big = big, small
		}
		if small < cfg.MinSubtree {
			continue
		}
		union := m.SharingSize([]bdd.Ref{hi, lo})
		shared := szHi + szLo - union
		balance := float64(small) / float64(big)
		disjointness := 1 - float64(shared)/float64(small)
		if disjointness < 0 {
			disjointness = 0
		}
		// Cut mass: prefer cuts whose subtree is a substantial (but not
		// dominating) part of the whole BDD.
		mass := float64(union) / float64(total)
		if mass > 0.75 {
			mass = 1.5 - mass // penalize near-root cuts
		}
		best = append(best, scored{r.ID(), balance * disjointness * mass})
	}
	sort.Slice(best, func(i, j int) bool { return best[i].score > best[j].score })
	pts := make(Points)
	max := cfg.MaxPoints
	if max <= 0 {
		max = 12
	}
	for i := 0; i < len(best) && i < max; i++ {
		if best[i].score <= 0 && len(pts) > 0 {
			break
		}
		pts[best[i].id] = true
	}
	if sp != nil {
		sp.End(obs.Int("points", len(pts)), obs.Int("sampled", sampled))
	}
	return pts
}
