package decomp

import "bddkit/internal/bdd"

// McMillan computes the canonical conjunctive decomposition of McMillan
// (CAV'96, reference [18] of the paper): one factor per variable, with
// factor i depending only on the first i variables of the order, obtained
// by successive existential abstraction and generalized cofactoring.
//
// With p_i = ∃ x_{i+1}..x_n . f (projection on the first i order
// positions) and p_0 = 1, the factors are f_i = p_i ⇓ p_{i-1} (constrain).
// Since p_{i-1}·f_i = p_{i-1}·p_i and p_i ≤ p_{i-1}, the conjunction of
// the first i factors equals p_i, so the full conjunction is f. Trivial
// (constant One) factors are dropped.
//
// The size of the decomposed representation is linear in the number of
// factors times |f|, as noted in Section 3 of the paper.
func McMillan(m *bdd.Manager, f bdd.Ref) []bdd.Ref {
	defer m.PauseAutoReorder()()
	if f.IsConstant() {
		return []bdd.Ref{m.Ref(f)}
	}
	lg := beginLedger(m, "mcmillan", f)
	support := m.SupportVars(f)
	// Sort support by level so projections peel variables bottom-up.
	byLevel := make([]int, len(support))
	copy(byLevel, support)
	for i := 1; i < len(byLevel); i++ {
		for j := i; j > 0 && m.LevelOfVar(byLevel[j]) < m.LevelOfVar(byLevel[j-1]); j-- {
			byLevel[j], byLevel[j-1] = byLevel[j-1], byLevel[j]
		}
	}
	var factors []bdd.Ref
	p := m.Ref(f) // p_i, starting at p_n = f
	for i := len(byLevel) - 1; i >= 0; i-- {
		// p_{i-1} abstracts the deepest remaining variable.
		prev := m.Exists(p, []int{byLevel[i]})
		fi := m.Constrain(p, prev)
		if fi != bdd.One {
			factors = append(factors, fi)
		} else {
			m.Deref(fi)
		}
		m.Deref(p)
		p = prev
	}
	m.Deref(p) // p_0 == One
	// Factors were produced deepest-first; reverse to the paper's order.
	for i, j := 0, len(factors)-1; i < j; i, j = i+1, j-1 {
		factors[i], factors[j] = factors[j], factors[i]
	}
	if len(factors) == 0 {
		factors = append(factors, bdd.One)
	}
	lg.done(m.SharingSize(factors))
	return factors
}

// ConjoinAll conjoins a factor list back into a single function (test and
// verification helper).
func ConjoinAll(m *bdd.Manager, fs []bdd.Ref) bdd.Ref {
	r := m.Ref(bdd.One)
	for _, f := range fs {
		nr := m.And(r, f)
		m.Deref(r)
		r = nr
	}
	return r
}
