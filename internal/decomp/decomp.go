// Package decomp implements the BDD decomposition algorithms of Section 3
// of the DAC'98 paper "Approximation and Decomposition of Binary Decision
// Diagrams":
//
//   - the generic bottom-up two-way factoring over an arbitrary set of
//     decomposition points (Figure 5 of the paper), generalizing the
//     single-variable split of Equation 1;
//   - the Band and Disjoint heuristics for choosing decomposition points;
//   - the Cofactor baseline of Cabodi et al. [6] and Narayan et al. [19]:
//     split on the variable minimizing the larger cofactor;
//   - McMillan's canonical conjunctive decomposition (CAV'96, reference
//     [18]) as the related approach discussed in the paper.
//
// All factor pairs satisfy G ∧ H = f (conjunctive) or G ∨ H = f
// (disjunctive). Returned references are owned by the caller.
package decomp

import (
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// Points is a set of decomposition points, identified by node id (see
// bdd.Ref.ID); the factoring cuts the BDD at these nodes.
type Points map[uint32]bool

// Pair is a two-way factoring of a function.
type Pair struct {
	G, H bdd.Ref
}

// Deref releases both factors.
func (p Pair) Deref(m *bdd.Manager) {
	m.Deref(p.G)
	m.Deref(p.H)
}

// SharedSize returns the number of distinct nodes shared between the two
// factors' DAGs — the "Shared" column of Table 4.
func (p Pair) SharedSize(m *bdd.Manager) int {
	return m.SharingSize([]bdd.Ref{p.G, p.H})
}

// Decompose factors f conjunctively over the given decomposition points:
// it returns G, H with G ∧ H = f. At each decomposition point with top
// variable x and cofactors f_t, f_e the factors are seeded per Equation 1
// of the paper (g = x + f_e, h = ¬x + f_t); above the points the factors
// of the children are combined, choosing at every node the pairing
// (straight or crossed) that best balances the estimated factor sizes —
// the balance objective the paper's algorithm pursues.
func Decompose(m *bdd.Manager, f bdd.Ref, pts Points) Pair {
	return DecomposeConfig(m, f, pts, Config{})
}

// Config tunes the generic decomposition; the zero value is the default
// algorithm.
type Config struct {
	// SkewBalancing enables the estimate-driven choice between the
	// straight and crossed child-factor pairings (picking whichever
	// minimizes the estimated size skew). The ablation study in
	// internal/bench found straight pairing to produce smaller maximum
	// factors on the corpus (the size estimates ignore sharing and
	// mislead the crossing choice), so straight is the default and this
	// knob preserves the alternative for experiments.
	SkewBalancing bool
}

// DecomposeConfig is Decompose with explicit combine-step configuration.
func DecomposeConfig(m *bdd.Manager, f bdd.Ref, pts Points, cfg Config) Pair {
	defer m.PauseAutoReorder()()
	lg := beginLedger(m, "conj", f)
	d := &decomposer{
		m: m, pts: pts, cfg: cfg,
		opG: m.CacheOp(), opH: m.CacheOp(),
		est: make(map[bdd.Ref][2]int),
	}
	e := d.rec(f)
	p := Pair{G: e.g, H: e.h}
	lg.done(p.SharedSize(m))
	return p
}

// DecomposeDisjunctive factors f disjunctively (G ∨ H = f) by dualizing:
// the conjunctive factors of ¬f are complemented.
func DecomposeDisjunctive(m *bdd.Manager, f bdd.Ref, pts Points) Pair {
	lg := beginLedger(m, "disj", f)
	p := Decompose(m, f.Complement(), pts)
	p = Pair{G: p.G.Complement(), H: p.H.Complement()}
	lg.done(p.SharedSize(m))
	return p
}

// decompLedger captures the input side of a decomposition for the quality
// ledger. Decompositions are exact — G∧H (or G∨H, or the McMillan
// conjunction) equals f — so mass is retained by construction and the
// interesting quality signal is structural: how many shared nodes the
// factored form needs versus the monolithic input.
type decompLedger struct {
	m      *bdd.Manager
	op     string
	start  time.Time
	sizeIn int
	massIn float64
	gc0    time.Duration
	stw0   time.Duration
}

func beginLedger(m *bdd.Manager, op string, f bdd.Ref) *decompLedger {
	if !obs.L.Enabled() {
		return nil
	}
	st := m.Stats()
	return &decompLedger{
		m: m, op: op, start: time.Now(),
		sizeIn: m.DagSize(f), massIn: m.MintermFraction(f),
		gc0: st.GCTime, stw0: st.STWTime,
	}
}

// done files the record; sizeOut is the shared size of the factored form.
// Nil-safe (disabled path).
func (lg *decompLedger) done(sizeOut int) {
	if lg == nil {
		return
	}
	st := lg.m.Stats()
	rec := obs.OpRecord{
		Kind:         "decomp",
		Op:           lg.op,
		SizeIn:       lg.sizeIn,
		SizeOut:      sizeOut,
		MassIn:       lg.massIn,
		MassOut:      lg.massIn, // exact: factors reconstruct f
		MassRetained: 1,
		BudgetLimit:  lg.m.NodeLimit(),
		BudgetLive:   lg.m.NodeCount(),
		DurNS:        time.Since(lg.start).Nanoseconds(),
		GCNS:         (st.GCTime - lg.gc0).Nanoseconds(),
		STWNS:        (st.STWTime - lg.stw0).Nanoseconds(),
	}
	if rec.SizeIn > 0 {
		rec.DensityIn = rec.MassIn / float64(rec.SizeIn)
	}
	if rec.SizeOut > 0 {
		rec.DensityOut = rec.MassOut / float64(rec.SizeOut)
	}
	obs.L.Record(rec)
}

type entry struct {
	g, h   bdd.Ref
	cg, ch int // rough node-count estimates used for balancing
}

type decomposer struct {
	m   *bdd.Manager
	pts Points
	cfg Config
	// The per-node factor pairs are memoized in the manager's shared
	// computed table under two fresh per-invocation operation codes (one
	// per factor); a lossy cache is fine because an evicted pair is
	// simply recomputed. The size estimates ride in a plain side map —
	// they hold no node references, so they need no eviction handling.
	opG, opH uint32
	est      map[bdd.Ref][2]int
}

// rec implements the decomp procedure of Figure 5 on seen functions. The
// returned entry's g and h each carry one reference owned by the caller.
func (d *decomposer) rec(f bdd.Ref) entry {
	m := d.m
	if f.IsConstant() {
		return entry{g: f, h: bdd.One}
	}
	if g, ok := m.CacheLookup(d.opG, f, 0, 0); ok {
		if h, ok := m.CacheLookup(d.opH, f, 0, 0); ok {
			// Either factor may be dead on a hit; revive both before
			// any allocation can collect them.
			c := d.est[f]
			return entry{g: m.Ref(g), h: m.Ref(h), cg: c[0], ch: c[1]}
		}
	}
	x := m.IthVar(m.Var(f))
	ft, fe := m.Hi(f), m.Lo(f)
	var e entry
	if d.pts[f.ID()] {
		// Equation 1: g covers the else cofactor, h the then cofactor;
		// each factor has one cofactor forced to 1.
		e.g = m.Or(x, fe)
		e.h = m.Or(x.Complement(), ft)
		e.cg = m.DagSize(e.g)
		e.ch = m.DagSize(e.h)
	} else {
		et := d.rec(ft)
		ee := d.rec(fe)
		// Straight pairing: g = x·gt + ¬x·ge; crossed pairing swaps the
		// else-branch contributions. Both yield G·H = f; pick the one
		// with the better size balance.
		sg, sh := et.cg+ee.cg, et.ch+ee.ch
		cg, ch := et.cg+ee.ch, et.ch+ee.cg
		straightSkew := sg - sh
		if straightSkew < 0 {
			straightSkew = -straightSkew
		}
		crossedSkew := cg - ch
		if crossedSkew < 0 {
			crossedSkew = -crossedSkew
		}
		if !d.cfg.SkewBalancing || straightSkew <= crossedSkew {
			e.g = m.ITE(x, et.g, ee.g)
			e.h = m.ITE(x, et.h, ee.h)
			e.cg, e.ch = sg+1, sh+1
		} else {
			e.g = m.ITE(x, et.g, ee.h)
			e.h = m.ITE(x, et.h, ee.g)
			e.cg, e.ch = cg+1, ch+1
		}
		m.Deref(et.g)
		m.Deref(et.h)
		m.Deref(ee.g)
		m.Deref(ee.h)
	}
	m.CacheInsert(d.opG, f, 0, 0, e.g)
	m.CacheInsert(d.opH, f, 0, 0, e.h)
	d.est[f] = [2]int{e.cg, e.ch}
	return e
}
