package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bddkit/internal/bdd"
)

func buildRandom(m *bdd.Manager, rng *rand.Rand, n, depth int) bdd.Ref {
	if depth == 0 {
		v := m.Ref(m.IthVar(rng.Intn(n)))
		if rng.Intn(2) == 0 {
			return v.Complement()
		}
		return v
	}
	a := buildRandom(m, rng, n, depth-1)
	b := buildRandom(m, rng, n, depth-1)
	var r bdd.Ref
	switch rng.Intn(3) {
	case 0:
		r = m.And(a, b)
	case 1:
		r = m.Or(a, b)
	default:
		r = m.Xor(a, b)
	}
	m.Deref(a)
	m.Deref(b)
	return r
}

// checkConj verifies G ∧ H == f.
func checkConj(t *testing.T, m *bdd.Manager, f bdd.Ref, p Pair, name string) {
	t.Helper()
	gh := m.And(p.G, p.H)
	if gh != f {
		t.Fatalf("%s: G·H != f (|f|=%d |G|=%d |H|=%d)", name, m.DagSize(f), m.DagSize(p.G), m.DagSize(p.H))
	}
	m.Deref(gh)
}

func TestCofactorDecomposition(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 40; iter++ {
		f := buildRandom(m, rng, n, 7)
		p := Cofactor(m, f)
		checkConj(t, m, f, p, "Cofactor")
		p.Deref(m)
		d := CofactorDisjunctive(m, f)
		or := m.Or(d.G, d.H)
		if or != f {
			t.Fatal("CofactorDisjunctive: G+H != f")
		}
		m.Deref(or)
		d.Deref(m)
		m.Deref(f)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestBandDecomposition(t *testing.T) {
	const n = 14
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 8)
		pts := BandPoints(m, f, DefaultBandConfig())
		p := Decompose(m, f, pts)
		checkConj(t, m, f, p, "Band")
		p.Deref(m)
		m.Deref(f)
	}
}

func TestDisjointDecomposition(t *testing.T) {
	const n = 14
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 8)
		pts := DisjointPoints(m, f, DefaultDisjointConfig())
		p := Decompose(m, f, pts)
		checkConj(t, m, f, p, "Disjoint")
		p.Deref(m)
		m.Deref(f)
	}
}

func TestDisjunctiveDual(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 20; iter++ {
		f := buildRandom(m, rng, n, 7)
		pts := BandPoints(m, f.Complement(), DefaultBandConfig())
		p := DecomposeDisjunctive(m, f, pts)
		or := m.Or(p.G, p.H)
		if or != f {
			t.Fatal("disjunctive: G+H != f")
		}
		m.Deref(or)
		p.Deref(m)
		m.Deref(f)
	}
}

func TestDecomposeNoPoints(t *testing.T) {
	m := bdd.New(6)
	rng := rand.New(rand.NewSource(5))
	f := buildRandom(m, rng, 6, 5)
	p := Decompose(m, f, Points{})
	checkConj(t, m, f, p, "empty points")
	p.Deref(m)
	m.Deref(f)
}

func TestDecomposeConstants(t *testing.T) {
	m := bdd.New(4)
	for _, f := range []bdd.Ref{bdd.One, bdd.Zero} {
		p := Decompose(m, f, Points{})
		checkConj(t, m, f, p, "constant")
		p.Deref(m)
		c := Cofactor(m, f)
		checkConj(t, m, f, c, "cofactor constant")
		c.Deref(m)
	}
}

func TestMcMillanDecomposition(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 7)
		fs := McMillan(m, f)
		back := ConjoinAll(m, fs)
		if back != f {
			t.Fatal("McMillan factors do not conjoin to f")
		}
		// Each factor must depend only on a prefix of the (level-sorted)
		// support of f, and the factor count is bounded by the support.
		if len(fs) > n+1 {
			t.Fatalf("too many factors: %d", len(fs))
		}
		m.Deref(back)
		for _, fi := range fs {
			m.Deref(fi)
		}
		m.Deref(f)
	}
}

// TestEstimateCofactorSize: the estimate must be an upper bound on the true
// cofactor size and exact when no reductions cascade.
func TestEstimateCofactorSize(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 6)
		for _, v := range m.SupportVars(f) {
			for _, val := range []bool{false, true} {
				est := EstimateCofactorSize(m, f, v, val)
				cof := m.CofactorVar(f, v, val)
				real := m.DagSize(cof)
				if real > est {
					t.Fatalf("estimate %d below real size %d", est, real)
				}
				m.Deref(cof)
			}
		}
		m.Deref(f)
	}
}

// TestQuickDecomposition: property over random seeds — every method
// reconstructs f exactly.
func TestQuickDecomposition(t *testing.T) {
	const n = 10
	prop := func(seed int64) bool {
		m := bdd.New(n)
		rng := rand.New(rand.NewSource(seed))
		f := buildRandom(m, rng, n, 6)
		defer m.Deref(f)
		for _, pts := range []Points{
			BandPoints(m, f, DefaultBandConfig()),
			DisjointPoints(m, f, DefaultDisjointConfig()),
		} {
			p := Decompose(m, f, pts)
			gh := m.And(p.G, p.H)
			ok := gh == f
			m.Deref(gh)
			p.Deref(m)
			if !ok {
				return false
			}
		}
		c := Cofactor(m, f)
		gh := m.And(c.G, c.H)
		ok := gh == f
		m.Deref(gh)
		c.Deref(m)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBalancedSplit: on a function made of two independent halves, the
// generic decomposition with a point at the natural cut produces factors
// that are each smaller than f.
func TestBalancedSplit(t *testing.T) {
	const k = 6
	m := bdd.New(2 * k)
	// f = parity(x0..x5) AND majority-ish(x6..x11): conjunction of two
	// independent functions.
	par := m.Ref(bdd.Zero)
	for i := 0; i < k; i++ {
		np := m.Xor(par, m.IthVar(i))
		m.Deref(par)
		par = np
	}
	maj := m.Ref(bdd.Zero)
	for i := k; i < 2*k-1; i++ {
		p := m.And(m.IthVar(i), m.IthVar(i+1))
		nm := m.Or(maj, p)
		m.Deref(p)
		m.Deref(maj)
		maj = nm
	}
	f := m.And(par, maj)
	pts := BandPoints(m, f, DefaultBandConfig())
	p := Decompose(m, f, pts)
	checkConj(t, m, f, p, "balanced")
	if m.DagSize(p.G) >= m.DagSize(f) && m.DagSize(p.H) >= m.DagSize(f) {
		t.Log("warning: decomposition did not shrink either factor")
	}
	p.Deref(m)
	m.Deref(par)
	m.Deref(maj)
	m.Deref(f)
}
