package decomp_test

import (
	"fmt"

	"bddkit/internal/bdd"
	"bddkit/internal/decomp"
)

// Two-way conjunctive decomposition: G ∧ H = f.
func ExampleDecompose() {
	m := bdd.New(6)
	// f = parity(x0..x2) AND majority-ish over x3..x5.
	par := m.Xor(m.Xor(m.IthVar(0), m.IthVar(1)), m.IthVar(2))
	maj := m.Or(m.And(m.IthVar(3), m.IthVar(4)), m.IthVar(5))
	f := m.And(par, maj)

	pts := decomp.BandPoints(m, f, decomp.DefaultBandConfig())
	p := decomp.Decompose(m, f, pts)
	gh := m.And(p.G, p.H)
	fmt.Println("G·H == f:", gh == f)
	m.Deref(par)
	m.Deref(maj)
	m.Deref(f)
	m.Deref(gh)
	p.Deref(m)
	// Output:
	// G·H == f: true
}

// McMillan's canonical conjunctive decomposition produces one factor per
// support variable; conjoining them returns f.
func ExampleMcMillan() {
	m := bdd.New(4)
	// (x0 ∨ x1) ∧ (x2 ∨ x3): the two clauses are conditionally
	// independent, so the decomposition splits them.
	c1 := m.Or(m.IthVar(0), m.IthVar(1))
	c2 := m.Or(m.IthVar(2), m.IthVar(3))
	f := m.And(c1, c2)
	m.Deref(c1)
	m.Deref(c2)
	fs := decomp.McMillan(m, f)
	back := decomp.ConjoinAll(m, fs)
	fmt.Println("factors:", len(fs))
	fmt.Println("conjoin == f:", back == f)
	for _, fi := range fs {
		m.Deref(fi)
	}
	m.Deref(f)
	m.Deref(back)
	// Output:
	// factors: 3
	// conjoin == f: true
}
