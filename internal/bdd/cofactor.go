package bdd

// Generalized cofactors and interval minimization.
//
// Constrain (Coudert–Madre, the operator written f↓c in the DAC'98 paper's
// reference [8]) and Restrict (reference [9]) both return a function that
// agrees with f wherever c holds, choosing values off the care set so that
// sharing increases; Figure 1 of the paper illustrates the remapping step
// they are built on.

// Constrain returns the generalized cofactor f ⇓ c (Coudert–Madre
// "constrain"). c must not be Zero. The result agrees with f on c.
func (m *Manager) Constrain(f, c Ref) Ref {
	if c == Zero {
		panic("bdd: Constrain with empty care set")
	}
	var r Ref
	m.exclusive(func() { r = m.constrainRec(f, c) })
	return r
}

func (m *Manager) constrainRec(f, c Ref) Ref {
	if c == One || f.IsConstant() || f == c {
		return m.refS(f)
	}
	if f == c.Complement() {
		return Zero
	}
	if r, ok := m.cacheLookup(opConstrain, f, c, 0); ok {
		return m.refS(r)
	}
	lev := m.top2(f, c)
	f1, f0 := m.cofs(f, lev)
	c1, c0 := m.cofs(c, lev)
	var r Ref
	switch {
	case c1 == Zero:
		r = m.constrainRec(f0, c0)
	case c0 == Zero:
		r = m.constrainRec(f1, c1)
	default:
		t := m.constrainRec(f1, c1)
		e := m.constrainRec(f0, c0)
		r = m.makeNode(lev, t, e)
		m.derefS(t)
		m.derefS(e)
	}
	m.cacheInsert(opConstrain, f, c, 0, r)
	return r
}

// Restrict returns the Coudert–Madre "restrict" of f by care set c: a
// function agreeing with f wherever c = 1, heuristically smaller than f.
// Unlike Constrain it abstracts from c the variables that do not appear in
// f along each path, avoiding the variable-introduction blowup. c must not
// be Zero.
func (m *Manager) Restrict(f, c Ref) Ref {
	if c == Zero {
		panic("bdd: Restrict with empty care set")
	}
	var r Ref
	m.exclusive(func() { r = m.restrictRec(f, c) })
	return r
}

func (m *Manager) restrictRec(f, c Ref) Ref {
	if c == One || f.IsConstant() {
		return m.refS(f)
	}
	if f == c {
		return One
	}
	if f == c.Complement() {
		return Zero
	}
	lf := m.nodes[f.index()].level
	lc := m.nodes[c.index()].level
	if lc < lf {
		// The top variable of c does not appear at the top of f:
		// abstract it from the care set (c := c1 OR c0) and retry.
		c1, c0 := m.cofs(c, lc)
		cc := m.andRec(c1.Complement(), c0.Complement()).Complement()
		r := m.restrictRec(f, cc)
		m.derefS(cc)
		return r
	}
	if r, ok := m.cacheLookup(opRestrict, f, c, 0); ok {
		return m.refS(r)
	}
	f1, f0 := m.cofs(f, lf)
	c1, c0 := m.cofs(c, lf)
	var r Ref
	switch {
	case lc == lf && c1 == Zero:
		// The then branch is a don't care: remap to the else branch
		// (the transformation of Figure 1 in the paper).
		r = m.restrictRec(f0, c0)
	case lc == lf && c0 == Zero:
		r = m.restrictRec(f1, c1)
	default:
		t := m.restrictRec(f1, c1)
		e := m.restrictRec(f0, c0)
		r = m.makeNode(lf, t, e)
		m.derefS(t)
		m.derefS(e)
	}
	m.cacheInsert(opRestrict, f, c, 0, r)
	return r
}

// Minimize is a safe interval minimization µ(l, u): it returns a function r
// with l ≤ r ≤ u and |r| ≤ min(|l|, |u|). It implements the "safe
// minimization" contract of Hong et al. (DAC'97, reference [11] of the
// paper) by restricting both bounds against the care set l OR NOT u and
// keeping the smallest candidate that stays within the interval; l, u, and
// the interval squeeze (Squeeze) are always candidates, which guarantees
// safety.
func (m *Manager) Minimize(l, u Ref) Ref {
	if !m.Leq(l, u) {
		panic("bdd: Minimize requires l ≤ u")
	}
	var best Ref
	m.exclusive(func() { best = m.minimizeNow(l, u) })
	return best
}

func (m *Manager) minimizeNow(l, u Ref) Ref {
	best := m.refS(l)
	bestSize := m.dagSize(l)
	if sq := m.squeezeRec(l, u); m.dagSize(sq) < bestSize {
		m.derefS(best)
		best = sq
		bestSize = m.dagSize(sq)
	} else {
		m.derefS(sq)
	}
	if us := m.dagSize(u); us < bestSize {
		m.derefS(best)
		best = m.refS(u)
		bestSize = us
	}
	// care = l OR ¬u; don't-care region is u·¬l.
	care := m.andRec(l.Complement(), u).Complement()
	if care == One {
		return best // no don't-cares: l == u
	}
	if care == Zero {
		// Everything is a don't care (l = 0, u = 1): any function
		// qualifies; the constant is the smallest.
		m.derefS(best)
		return Zero
	}
	for _, bound := range [2]Ref{l, u} {
		// A restrict of either bound against the care set agrees with
		// the bound on care and is arbitrary elsewhere, hence always
		// stays inside [l, u]. Keep it if smaller.
		cand := m.restrictRec(bound, care)
		if cs := m.dagSize(cand); cs < bestSize {
			m.derefS(best)
			best = cand
			bestSize = cs
		} else {
			m.derefS(cand)
		}
	}
	m.derefS(care)
	return best
}

// CofactorVar returns f with variable v fixed to the given value.
func (m *Manager) CofactorVar(f Ref, v int, value bool) Ref {
	lit := m.vars[v]
	if !value {
		lit = lit.Complement()
	}
	return m.CofactorCube(f, lit)
}

// CofactorCube returns f restricted by a cube of literals (conjunction of
// possibly negated variables): each variable in the cube is fixed to the
// polarity it appears with.
func (m *Manager) CofactorCube(f, cube Ref) Ref {
	var r Ref
	m.exclusive(func() { r = m.cofCubeRec(f, cube) })
	return r
}

func (m *Manager) cofCubeRec(f, cube Ref) Ref {
	if cube == One || f.IsConstant() {
		return m.refS(f)
	}
	if cube == Zero {
		panic("bdd: CofactorCube with contradictory cube")
	}
	lc := m.nodes[cube.index()].level
	lf := m.nodes[f.index()].level
	if lc < lf {
		// Variable absent from f: skip it in the cube.
		c1, c0 := m.cofs(cube, lc)
		if c0 == Zero {
			return m.cofCubeRec(f, c1)
		}
		return m.cofCubeRec(f, c0)
	}
	if r, ok := m.cacheLookup(opCofCube, f, cube, 0); ok {
		return m.refS(r)
	}
	f1, f0 := m.cofs(f, lf)
	var r Ref
	if lc == lf {
		c1, c0 := m.cofs(cube, lf)
		if c0 == Zero { // positive literal
			r = m.cofCubeRec(f1, c1)
		} else { // negative literal
			r = m.cofCubeRec(f0, c0)
		}
	} else {
		t := m.cofCubeRec(f1, cube)
		e := m.cofCubeRec(f0, cube)
		r = m.makeNode(lf, t, e)
		m.derefS(t)
		m.derefS(e)
	}
	m.cacheInsert(opCofCube, f, cube, 0, r)
	return r
}

// Squeeze returns a heuristically small function inside the interval
// [l, u] by the classic interval-squeezing recursion: whenever the two
// branch intervals overlap, the result is made independent of the branch
// variable ([l1+l0, u1·u0] is a sub-interval of both). Unlike Minimize it
// does not guarantee |result| ≤ min(|l|, |u|), which is why Minimize uses
// it as one candidate among several.
func (m *Manager) Squeeze(l, u Ref) Ref {
	if !m.Leq(l, u) {
		panic("bdd: Squeeze requires l ≤ u")
	}
	var r Ref
	m.exclusive(func() { r = m.squeezeRec(l, u) })
	return r
}

func (m *Manager) squeezeRec(l, u Ref) Ref {
	if l == Zero {
		return Zero // the constant is the smallest member
	}
	if u == One {
		return One
	}
	if l == u {
		return m.refS(l)
	}
	if r, ok := m.cacheLookup(opSqueeze, l, u, 0); ok {
		return m.refS(r)
	}
	lev := m.top2(l, u)
	l1, l0 := m.cofs(l, lev)
	u1, u0 := m.cofs(u, lev)
	var r Ref
	// If the branch intervals intersect, drop the variable entirely:
	// any g with l1+l0 ≤ g ≤ u1·u0 lies in both branch intervals.
	meetL := m.andRec(l1.Complement(), l0.Complement()).Complement() // l1 OR l0
	meetU := m.andRec(u1, u0)
	if m.leqRec(meetL, meetU) {
		r = m.squeezeRec(meetL, meetU)
	} else {
		t := m.squeezeRec(l1, u1)
		e := m.squeezeRec(l0, u0)
		r = m.makeNode(lev, t, e)
		m.derefS(t)
		m.derefS(e)
	}
	m.derefS(meetL)
	m.derefS(meetU)
	m.cacheInsert(opSqueeze, l, u, 0, r)
	return r
}
