package bdd

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	const n = 10
	m := New(n)
	rng := rand.New(rand.NewSource(55))
	var names []string
	var roots []Ref
	for i := 0; i < 5; i++ {
		f := randFromTrees(m, rng, n, 6)
		names = append(names, string(rune('a'+i)))
		roots = append(roots, f)
	}
	roots = append(roots, One, Zero)
	names = append(names, "one", "zero")

	var buf bytes.Buffer
	if err := m.Save(&buf, names, roots); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh manager and compare truth tables.
	m2 := New(0)
	loaded, err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVars() != n {
		t.Fatalf("loaded manager has %d vars, want %d", m2.NumVars(), n)
	}
	for i, name := range names {
		g, ok := loaded[name]
		if !ok {
			t.Fatalf("root %q missing", name)
		}
		a, b := truthTable(m, roots[i], n), truthTable(m2, g, n)
		for x := range a {
			if a[x] != b[x] {
				t.Fatalf("root %q differs at minterm %d", name, x)
			}
		}
	}
	// Loading into the SAME manager must reproduce identical refs
	// (canonicity).
	loaded2, err := m.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if loaded2[name] != roots[i] {
			t.Fatalf("same-manager reload of %q is not canonical", name)
		}
	}
	for _, f := range loaded {
		m2.Deref(f)
	}
	for _, f := range loaded2 {
		m.Deref(f)
	}
	for _, f := range roots[:5] {
		m.Deref(f)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	m2.GarbageCollect()
	if got := m2.ReferencedNodeCount(); got != m2.PermanentNodeCount()-1 {
		t.Fatalf("load leaked: %d live internal nodes", got)
	}
}

func TestSaveLoadAcrossReorder(t *testing.T) {
	// Saving under one order and loading under another yields the same
	// functions.
	const n = 8
	m := New(n)
	rng := rand.New(rand.NewSource(66))
	f := randFromTrees(m, rng, n, 5)
	tt := truthTable(m, f, n)
	var buf bytes.Buffer
	if err := m.Save(&buf, []string{"f"}, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	m2 := New(n)
	// Scramble m2's order before loading.
	m2.Reorder(ReorderSift, SiftConfig{})
	g := m2.And(m2.IthVar(3), m2.IthVar(6)) // populate, then reorder
	m2.Reorder(ReorderSiftConverge, SiftConfig{})
	m2.Deref(g)
	loaded, err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := truthTable(m2, loaded["f"], n)
	for x := range tt {
		if tt[x] != got[x] {
			t.Fatalf("cross-order load differs at %d", x)
		}
	}
	m2.Deref(loaded["f"])
	m.Deref(f)
}

func TestLoadErrors(t *testing.T) {
	m := New(2)
	cases := map[string]string{
		"bad magic":   "nope v9\n",
		"no vars":     "bddkit-bdd v1\nnodes 0\n",
		"forward ref": "bddkit-bdd v1\nvars 2\nnodes 1\n1 0 +5 -0\nroots 0\n",
		"bad node":    "bddkit-bdd v1\nvars 2\nnodes 1\nxx\nroots 0\n",
		"bad var":     "bddkit-bdd v1\nvars 2\nnodes 1\n1 9 +0 -0\nroots 0\n",
		"truncated":   "bddkit-bdd v1\nvars 2\nnodes 2\n1 0 +0 -0\n",
	}
	for name, src := range cases {
		if _, err := m.Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	m.GarbageCollect()
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanDiff(t *testing.T) {
	const n = 6
	m := New(n)
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 20; iter++ {
		f := randFromTrees(m, rng, n, 4)
		for v := 0; v < n; v++ {
			d := m.BooleanDiff(f, v)
			tf, td := truthTable(m, f, n), truthTable(m, d, n)
			for x := range td {
				x1 := x | 1<<uint(v)
				x0 := x &^ (1 << uint(v))
				if td[x] != (tf[x1] != tf[x0]) {
					t.Fatal("BooleanDiff wrong")
				}
			}
			m.Deref(d)
		}
		m.Deref(f)
	}
}

func TestFindEssential(t *testing.T) {
	const n = 8
	m := New(n)
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		f := randFromTrees(m, rng, n, 5)
		if f == Zero {
			m.Deref(f)
			continue
		}
		ess := m.FindEssential(f)
		// Every literal in the cube must be implied by f.
		if !m.Leq(f, ess) {
			t.Fatal("essential cube not implied by f")
		}
		// Completeness: conjoin f with a fresh forced literal and check
		// the literal is detected.
		v := rng.Intn(n)
		lit := m.IthVar(v)
		if rng.Intn(2) == 0 {
			lit = lit.Complement()
		}
		g := m.And(f, lit)
		if g != Zero {
			ess2 := m.FindEssential(g)
			if !m.Leq(ess2, lit) {
				t.Fatal("forced literal not found essential")
			}
			m.Deref(ess2)
		}
		m.Deref(g)
		m.Deref(ess)
		m.Deref(f)
	}
	// A cube is entirely essential.
	c := m.CubeFromVars([]int{1, 3, 5})
	ess := m.FindEssential(c)
	if ess != c {
		t.Fatal("cube's essential set is not itself")
	}
	m.Deref(c)
	m.Deref(ess)
}

func TestIntersect(t *testing.T) {
	const n = 8
	m := New(n)
	rng := rand.New(rand.NewSource(88))
	for iter := 0; iter < 40; iter++ {
		f := randFromTrees(m, rng, n, 5)
		g := randFromTrees(m, rng, n, 5)
		and := m.And(f, g)
		want := and != Zero
		if got := m.Intersect(f, g); got != want {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
		m.Deref(f)
		m.Deref(g)
		m.Deref(and)
	}
	// Disjoint by construction.
	x := m.IthVar(0)
	if m.Intersect(x, x.Complement()) {
		t.Fatal("x intersects ¬x")
	}
}

// TestLoadRejectsOversizedHeaders: header counts are untrusted and must be
// range-checked before any allocation — "vars 2000000000" used to commit
// gigabytes of variable state before the first node line was even read.
func TestLoadRejectsOversizedHeaders(t *testing.T) {
	cases := map[string]string{
		"huge vars":      "bddkit-bdd v1\nvars 2000000000\nnodes 1\n",
		"negative vars":  "bddkit-bdd v1\nvars -1\nnodes 0\nroots 0\n",
		"huge nodes":     "bddkit-bdd v1\nvars 2\nnodes 2000000000\n1 0 +0 -0\n",
		"negative nodes": "bddkit-bdd v1\nvars 2\nnodes -1\nroots 0\n",
		"huge roots":     "bddkit-bdd v1\nvars 2\nnodes 0\nroots 2000000000\n",
		"negative roots": "bddkit-bdd v1\nvars 2\nnodes 0\nroots -5\n",
	}
	for name, src := range cases {
		m := New(2)
		if _, err := m.Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
		if m.NumVars() > MaxLoadVars {
			t.Errorf("%s: manager grew to %d variables", name, m.NumVars())
		}
		m.GarbageCollect()
		if err := m.DebugCheck(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestSaveLoadDeepChain round-trips a cube over many variables: the BDD is
// a chain as deep as it is large, so this fails with a stack overflow if
// Save's children-first walk ever goes back to being recursive.
func TestSaveLoadDeepChain(t *testing.T) {
	const n = 1 << 17
	m := New(n)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	cube := m.CubeFromVars(vars)
	var buf bytes.Buffer
	if err := m.Save(&buf, []string{"cube"}, []Ref{cube}); err != nil {
		t.Fatal(err)
	}
	m2 := New(n)
	loaded, err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := loaded["cube"]
	if m2.DagSize(got) != m.DagSize(cube) {
		t.Fatalf("round trip changed size: %d -> %d", m.DagSize(cube), m2.DagSize(got))
	}
	// Spot-check semantics without walking 2^n assignments: the all-ones
	// assignment satisfies the cube, flipping any single bit falsifies it.
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	if !m2.Eval(got, a) {
		t.Fatal("all-ones assignment no longer satisfies the cube")
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		a[i] = false
		if m2.Eval(got, a) {
			t.Fatalf("cube satisfied with variable %d false", i)
		}
		a[i] = true
	}
	m2.Deref(got)
	m.Deref(cube)
}

// TestLoadByteBudget: the deserializer charges every scanned byte against
// a budget derived from the declared header, so an untrusted snapshot
// cannot pad itself arbitrarily long. The failure is the typed
// *LoadSizeError so servers can distinguish hostile padding from parse
// errors.
func TestLoadByteBudget(t *testing.T) {
	pad := strings.Repeat("# padding line of no consequence\n", 400) // ~13KB

	t.Run("header padding rejected", func(t *testing.T) {
		m := New(2)
		before := m.NodeCount()
		in := "bddkit-bdd v1\n" + pad + "vars 2\nnodes 0\nroots 0\n"
		_, err := m.Load(strings.NewReader(in))
		var sz *LoadSizeError
		if !errors.As(err, &sz) {
			t.Fatalf("padded preamble: got %v, want *LoadSizeError", err)
		}
		if sz.Read <= sz.Limit {
			t.Fatalf("error reports read %d <= limit %d", sz.Read, sz.Limit)
		}
		if m.NodeCount() != before {
			t.Fatalf("aborted load leaked %d nodes", m.NodeCount()-before)
		}
	})

	t.Run("body padding rejected", func(t *testing.T) {
		m := New(2)
		before := m.NodeCount()
		in := "bddkit-bdd v1\nvars 2\nnodes 1\n" + pad + "1 0 +0 -0\nroots 0\n"
		_, err := m.Load(strings.NewReader(in))
		var sz *LoadSizeError
		if !errors.As(err, &sz) {
			t.Fatalf("padded body: got %v, want *LoadSizeError", err)
		}
		if m.NodeCount() != before {
			t.Fatalf("aborted load leaked %d nodes", m.NodeCount()-before)
		}
	})

	t.Run("modest comments still load", func(t *testing.T) {
		m := New(2)
		in := "bddkit-bdd v1\n# written by a tool\n# on some date\nvars 2\nnodes 1\n# the node\n1 0 +0 -0\nroots 1\nf +1\n"
		roots, err := m.Load(strings.NewReader(in))
		if err != nil {
			t.Fatalf("commented file rejected: %v", err)
		}
		if len(roots) != 1 {
			t.Fatalf("got %d roots, want 1", len(roots))
		}
	})
}
