package bdd

// Evaluation and satisfying-assignment extraction.

// Eval returns the value of f under the given assignment, indexed by
// variable (assignment[v] is the value of variable v). Variables beyond
// len(assignment) are treated as false.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	var res bool
	m.readLocked(func() {
		neg := f.IsComplement()
		idx := f.index()
		for {
			n := &m.nodes[idx]
			if n.level == terminalLevel {
				res = !neg
				return
			}
			v := int(m.levToVar[n.level])
			var child Ref
			if v < len(assignment) && assignment[v] {
				child = n.hi
			} else {
				child = n.lo
			}
			if child.IsComplement() {
				neg = !neg
			}
			idx = child.index()
		}
	})
	return res
}

// Literal polarity markers used in cube slices.
const (
	LitNeg      int8 = 0 // variable appears complemented
	LitPos      int8 = 1 // variable appears positive
	LitDontCare int8 = 2 // variable absent from the cube
)

// PickOneCube returns one satisfying cube of f as a slice indexed by
// variable (values LitNeg, LitPos, LitDontCare), or nil if f is Zero.
func (m *Manager) PickOneCube(f Ref) []int8 {
	if f == Zero {
		return nil
	}
	cube := make([]int8, m.NumVars())
	for i := range cube {
		cube[i] = LitDontCare
	}
	m.readLocked(func() {
		for !f.IsConstant() {
			v := m.Var(f)
			hi, lo := m.Hi(f), m.Lo(f)
			if hi != Zero {
				cube[v] = LitPos
				f = hi
			} else {
				cube[v] = LitNeg
				f = lo
			}
		}
	})
	return cube
}

// PickOneMinterm returns a full satisfying assignment of f over nVars
// variables (don't-care positions resolved to false), or nil if f is Zero.
func (m *Manager) PickOneMinterm(f Ref, nVars int) []bool {
	cube := m.PickOneCube(f)
	if cube == nil {
		return nil
	}
	a := make([]bool, nVars)
	for v := 0; v < nVars && v < len(cube); v++ {
		a[v] = cube[v] == LitPos
	}
	return a
}

// ForEachCube calls fn for every cube (prime-free path enumeration: one
// cube per BDD path to One). The slice passed to fn is reused between
// calls; copy it to retain. Iteration stops early if fn returns false.
//
// On a parallel manager the walk is not synchronized against concurrent
// operations (the callback may itself call back into the manager, so no
// lease can be held across it); do not run it while other goroutines
// mutate the same manager.
func (m *Manager) ForEachCube(f Ref, fn func(cube []int8) bool) {
	cube := make([]int8, m.NumVars())
	for i := range cube {
		cube[i] = LitDontCare
	}
	m.cubeRec(f, cube, fn)
}

func (m *Manager) cubeRec(f Ref, cube []int8, fn func([]int8) bool) bool {
	if f == Zero {
		return true
	}
	if f == One {
		return fn(cube)
	}
	v := m.Var(f)
	cube[v] = LitPos
	if !m.cubeRec(m.Hi(f), cube, fn) {
		cube[v] = LitDontCare
		return false
	}
	cube[v] = LitNeg
	if !m.cubeRec(m.Lo(f), cube, fn) {
		cube[v] = LitDontCare
		return false
	}
	cube[v] = LitDontCare
	return true
}

// CubeToRef converts a cube slice (as produced by PickOneCube) back to the
// BDD of the corresponding conjunction of literals.
func (m *Manager) CubeToRef(cube []int8) Ref {
	var out Ref
	m.exclusive(func() {
		r := One
		for v := len(cube) - 1; v >= 0; v-- {
			if v >= m.NumVars() || cube[v] == LitDontCare {
				continue
			}
			lit := m.vars[v]
			if cube[v] == LitNeg {
				lit = lit.Complement()
			}
			nr := m.andRec(r, lit)
			m.derefS(r)
			r = nr
		}
		out = r
	})
	return out
}
