package bdd

// Parallel-engine telemetry: sampled lock-wait and steal attribution, always-on
// stop-the-world (quiescence) accounting, and a stall watchdog.
//
// Design constraints (see DESIGN.md "Parallel observability"):
//
//   - Fine-grained instrumentation (lock waits, steal latency, deque depth,
//     stripe heat) is sampled: a package-wide power-of-two sampling mask is
//     checked with one atomic load per site, and a disabled mask (the
//     default) reduces every site to that single load plus a predictable
//     branch. Sampled sites pay two time.Now calls.
//   - All sampled counters are per-worker (parWorker owns its workerTelem;
//     the pool hands a worker to exactly one goroutine at a time), written
//     without contention and merged only at snapshot time (ParTelemetry).
//     Snapshot reads race the writers by design; the histograms use atomics,
//     so snapshots are internally consistent per counter and advisory across
//     counters.
//   - Stop-the-world accounting is always on: STW epochs are rare (orders of
//     magnitude below node operations), and they are exactly the serial
//     sections an Amdahl breakdown needs, so they are never sampled away.
//   - The watchdog never blocks on engine locks: it reads atomics and uses
//     TryLock on the deques, so it can still report when the engine is stuck.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultParSampleRate is the 1-in-N sampling rate obs sessions arm by
// default: dense enough for stable wait histograms on millions of node
// operations, sparse enough to stay inside the overhead budget.
const DefaultParSampleRate = 256

// parSampleMask is rate-1 for a power-of-two rate, or -1 when fine-grained
// sampling is off (the default). Package-wide, like defaultWorkers: the
// cmd wiring arms it once, managers are created deep inside compilation.
var parSampleMask atomic.Int64

func init() { parSampleMask.Store(-1) }

// SetParSampling arms 1-in-rate sampling of the parallel engine's
// fine-grained telemetry (lock waits, steal latency, deque depth, stripe
// heat). rate is rounded up to a power of two; rate <= 0 disables sampling.
// Coarse telemetry (stop-the-world accounting, per-worker task counts) is
// always on regardless.
func SetParSampling(rate int) {
	if rate <= 0 {
		parSampleMask.Store(-1)
		return
	}
	p := 1
	for p < rate {
		p <<= 1
	}
	parSampleMask.Store(int64(p - 1))
}

// ParSampling returns the current sampling rate (0 = disabled).
func ParSampling() int {
	m := parSampleMask.Load()
	if m < 0 {
		return 0
	}
	return int(m + 1)
}

// telemetryArmed reports whether fine-grained sampling is on at all; sites
// whose events are rare enough to measure unconditionally-when-armed (join
// blocking, thief idling) gate on this instead of the per-event tick.
func telemetryArmed() bool { return parSampleMask.Load() >= 0 }

// sampled is the per-event sampling decision: one atomic load, and on the
// armed path a per-worker tick counter masked against the rate.
func (w *parWorker) sampled() bool {
	mask := parSampleMask.Load()
	if mask < 0 {
		return false
	}
	w.telem.tick++
	return int64(w.telem.tick)&mask == 0
}

// waitHistBuckets spans 1ns..~2s in power-of-two buckets; the last bucket
// absorbs everything beyond.
const waitHistBuckets = 32

// waitHist is a lock-free duration histogram. One per subsystem per worker,
// so writes are uncontended; snapshots read racily (advisory).
type waitHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [waitHistBuckets]atomic.Int64
}

func (h *waitHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	b := 0
	for v := ns; v > 0 && b < waitHistBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// addTo folds this histogram racily into a plain bucket array (snapshot
// merging across workers).
func (h *waitHist) addTo(buckets *[waitHistBuckets]int64, ws *WaitStats) {
	ws.Count += h.count.Load()
	ws.SumNS += h.sum.Load()
	if m := h.max.Load(); m > ws.MaxNS {
		ws.MaxNS = m
	}
	for i := range h.buckets {
		buckets[i] += h.buckets[i].Load()
	}
}

// quantile returns the upper bound of the bucket holding the q-quantile,
// clamped to the maximum actually observed: the bucket bound is a
// power-of-two upper estimate, so with few samples it can exceed every
// observation (a single 100ns wait lands in the 64..128 bucket and would
// otherwise report P50 = P95 = 128ns — a latency no one ever paid).
func histQuantile(buckets *[waitHistBuckets]int64, count, max int64, q float64) int64 {
	if count == 0 {
		return 0
	}
	target := int64(q * float64(count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range buckets {
		seen += n
		if seen >= target {
			if i == 0 {
				return 0
			}
			bound := int64(1) << uint(i) // bucket i holds (2^(i-1), 2^i]
			if i == waitHistBuckets-1 || bound > max {
				// The final bucket absorbs everything beyond its nominal
				// range, so the observed max is its only honest bound.
				bound = max
			}
			return bound
		}
	}
	return max // last bucket absorbs everything beyond 2^(waitHistBuckets-1)
}

// WaitStats is the merged snapshot of one wait histogram across workers.
type WaitStats struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
}

// MeanNS returns the mean observed value (0 when empty).
func (ws WaitStats) MeanNS() int64 {
	if ws.Count == 0 {
		return 0
	}
	return ws.SumNS / ws.Count
}

// workerTelem holds one worker's sampled counters; embedded in parWorker so
// every write is goroutine-local.
type workerTelem struct {
	tick uint32 // sampling tick; single-goroutine, no atomicity needed

	uniqueWait waitHist // unique-table level-lock acquisition wait
	cacheWait  waitHist // computed-cache stripe-lock acquisition wait
	leaseWait  waitHist // memBarrier entry wait (stop-the-world parks)
	stealWait  waitHist // fork-to-claim latency of stolen tasks
	joinWait   waitHist // owner wall time blocked at a stolen join
	dequeLen   waitHist // deque depth observed at sampled forks

	ops    atomic.Int64 // public operations begun on this worker
	tasks  atomic.Int64 // stolen tasks executed on this worker
	busyNS atomic.Int64 // time inside operations / stolen tasks (armed only)
	idleNS atomic.Int64 // thief time parked waiting for work (armed only)
}

// heatCell accumulates sampled contention on one unique level or cache
// stripe.
type heatCell struct {
	hits   atomic.Int64
	waitNS atomic.Int64
}

func (c *heatCell) bump(ns int64) {
	c.hits.Add(1)
	c.waitNS.Add(ns)
}

// stwCause enumerates why the parallel engine excluded or parked its
// workers; index into parEngine.stw.
type stwCause int32

const (
	stwGC          stwCause = iota // stop-the-world garbage collection
	stwAlloc                       // arena pressure: GC-or-grow under allocation
	stwCacheResize                 // computed-cache epoch close / resize
	stwReorder                     // dynamic reordering (auto or explicit)
	stwSaveLoad                    // Load deserialization
	stwDebug                       // DebugCheck invariant sweep
	stwExclusive                   // other exclusive sections (AddVar, stats walks, ...)
	stwNumCauses
)

var stwCauseNames = [stwNumCauses]string{
	"gc", "alloc", "cache_resize", "reorder", "save_load", "debug_check", "exclusive",
}

func (c stwCause) String() string {
	if c < 0 || c >= stwNumCauses {
		return "unknown"
	}
	return stwCauseNames[c]
}

// stwCounter is the always-on per-cause accounting of one write-lease /
// stop-the-world epoch class.
type stwCounter struct {
	count   atomic.Int64
	waitNS  atomic.Int64 // drain / lock-acquisition time before exclusion held
	pauseNS atomic.Int64 // time the world stayed excluded (fn duration)
}

// recordSTW updates the per-cause totals and notifies a ParObserver, if the
// installed observer implements the extension. Runs after the world is
// released, so the observer may take its time.
func (e *parEngine) recordSTW(cause stwCause, wait, pause time.Duration) {
	c := &e.stw[cause]
	c.count.Add(1)
	c.waitNS.Add(wait.Nanoseconds())
	c.pauseNS.Add(pause.Nanoseconds())
	if po, ok := observer.(ParObserver); ok {
		po.STW(cause.String(), e.workers, wait, pause)
	}
}

// stwTotals sums the per-cause counters (for Stats snapshots).
func (e *parEngine) stwTotals() (count int64, total time.Duration) {
	var ns int64
	for i := range e.stw {
		count += e.stw[i].count.Load()
		ns += e.stw[i].waitNS.Load() + e.stw[i].pauseNS.Load()
	}
	return count, time.Duration(ns)
}

// Exported snapshot types ------------------------------------------------

// STWStat is the per-cause aggregate of write-lease / stop-the-world epochs.
type STWStat struct {
	Cause   string `json:"cause"`
	Count   int64  `json:"count"`
	WaitNS  int64  `json:"wait_ns"`
	PauseNS int64  `json:"pause_ns"`
}

// HeatEntry is one unique level or cache stripe with its sampled contention.
type HeatEntry struct {
	Index  int   `json:"index"`
	Hits   int64 `json:"hits"`
	WaitNS int64 `json:"wait_ns"`
}

// WorkerStat is one pooled worker's task/idle accounting.
type WorkerStat struct {
	Ops        int64  `json:"ops"`
	Tasks      int64  `json:"tasks"`
	BusyNS     int64  `json:"busy_ns"`
	IdleNS     int64  `json:"idle_ns"`
	DequeDepth int    `json:"deque_depth"` // current; -1 when the deque was busy
	OpAgeNS    int64  `json:"op_age_ns,omitempty"`
	Op         string `json:"op,omitempty"` // operation currently in flight
}

// ParTelemetry is a point-in-time snapshot of the parallel engine's
// telemetry: merged wait histograms, per-worker accounting, contention
// top-K, and the STW breakdown. Values are advisory while operations are in
// flight (counters are read without stopping the engine).
type ParTelemetry struct {
	Workers    int `json:"workers"`
	SampleRate int `json:"sample_rate"` // 0 = fine-grained sampling off

	UniqueWait   WaitStats `json:"unique_wait"`
	CacheWait    WaitStats `json:"cache_wait"`
	LeaseWait    WaitStats `json:"lease_wait"`
	StealLatency WaitStats `json:"steal_latency"`
	JoinWait     WaitStats `json:"join_wait"`
	DequeDepth   WaitStats `json:"deque_depth"`

	WorkerStats     []WorkerStat `json:"worker_stats,omitempty"`
	HotLevels       []HeatEntry  `json:"hot_levels,omitempty"`
	HotCacheStripes []HeatEntry  `json:"hot_cache_stripes,omitempty"`
	STW             []STWStat    `json:"stw,omitempty"`

	TasksLocal  int64 `json:"tasks_local"`
	TasksStolen int64 `json:"tasks_stolen"`
	PendingDead int64 `json:"pending_dead"` // deferred deaths awaiting GC reconcile
}

// heatTopK extracts the K hottest cells by sampled hits.
func heatTopK(cells []heatCell, k int) []HeatEntry {
	var out []HeatEntry
	for i := range cells {
		h := cells[i].hits.Load()
		if h == 0 {
			continue
		}
		out = append(out, HeatEntry{Index: i, Hits: h, WaitNS: cells[i].waitNS.Load()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Index < out[j].Index
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// heatTopK is bounded by this many entries per table.
const heatK = 8

// ParTelemetry snapshots the engine's telemetry without stopping it. On a
// serial manager it returns a zero snapshot with Workers = 1.
func (m *Manager) ParTelemetry() ParTelemetry {
	t := ParTelemetry{Workers: 1, SampleRate: ParSampling()}
	e := m.par
	if e == nil {
		return t
	}
	t.Workers = e.workers
	t.TasksLocal = e.tasksLocal.Load()
	t.TasksStolen = e.tasksStolen.Load()
	t.PendingDead = e.deadDelta.Load()

	var unique, cache, lease, steal, join, deque [waitHistBuckets]int64
	now := time.Now().UnixNano()
	for _, w := range e.all.Load().([]*parWorker) {
		w.telem.uniqueWait.addTo(&unique, &t.UniqueWait)
		w.telem.cacheWait.addTo(&cache, &t.CacheWait)
		w.telem.leaseWait.addTo(&lease, &t.LeaseWait)
		w.telem.stealWait.addTo(&steal, &t.StealLatency)
		w.telem.joinWait.addTo(&join, &t.JoinWait)
		w.telem.dequeLen.addTo(&deque, &t.DequeDepth)
		ws := WorkerStat{
			Ops:        w.telem.ops.Load(),
			Tasks:      w.telem.tasks.Load(),
			BusyNS:     w.telem.busyNS.Load(),
			IdleNS:     w.telem.idleNS.Load(),
			DequeDepth: w.deque.depth(),
		}
		if start := w.opStart.Load(); start != 0 {
			ws.OpAgeNS = now - start
			ws.Op = opCodeName(w.opCode.Load())
		}
		t.WorkerStats = append(t.WorkerStats, ws)
	}
	fill := func(ws *WaitStats, buckets *[waitHistBuckets]int64) {
		ws.P50NS = histQuantile(buckets, ws.Count, ws.MaxNS, 0.50)
		ws.P95NS = histQuantile(buckets, ws.Count, ws.MaxNS, 0.95)
		ws.P99NS = histQuantile(buckets, ws.Count, ws.MaxNS, 0.99)
	}
	fill(&t.UniqueWait, &unique)
	fill(&t.CacheWait, &cache)
	fill(&t.LeaseWait, &lease)
	fill(&t.StealLatency, &steal)
	fill(&t.JoinWait, &join)
	fill(&t.DequeDepth, &deque)

	if heat := e.levelHeat.Load(); heat != nil {
		t.HotLevels = heatTopK(*heat, heatK)
	}
	t.HotCacheStripes = heatTopK(e.stripeHeat[:], heatK)
	for i := range e.stw {
		c := &e.stw[i]
		if n := c.count.Load(); n > 0 {
			t.STW = append(t.STW, STWStat{
				Cause:   stwCause(i).String(),
				Count:   n,
				WaitNS:  c.waitNS.Load(),
				PauseNS: c.pauseNS.Load(),
			})
		}
	}
	return t
}

// depth returns the deque length, or -1 when its mutex is held (the
// watchdog and telemetry snapshots must never block on engine locks).
func (d *taskDeque) depth() int {
	if !d.mu.TryLock() {
		return -1
	}
	n := len(d.tasks)
	d.mu.Unlock()
	return n
}

// Operation codes for the watchdog's "op in flight" attribution -----------

const (
	opcNone int32 = iota
	opcAnd
	opcXor
	opcITE
	opcExists
	opcAndExists
	opcLeq
	opcCompose
	opcPermute
	opcCube
	opcStolen
)

var opCodeNames = [...]string{
	"none", "and", "xor", "ite", "exists", "and_exists",
	"leq", "compose", "permute", "cube", "stolen_task",
}

func opCodeName(c int32) string {
	if c < 0 || int(c) >= len(opCodeNames) {
		return "unknown"
	}
	return opCodeNames[c]
}

// Quiesce runs fn with the manager fully quiescent: the write lease held,
// no operation in flight, counters folded to their serial form. Exported
// for callers that need a stable cross-operation view (and for tests that
// hold the lease artificially to exercise the stall watchdog). On a serial
// manager fn just runs.
func (m *Manager) Quiesce(fn func()) { m.exclusiveCause(stwExclusive, fn) }

// Stall watchdog ----------------------------------------------------------

// StartStallWatchdog spawns a goroutine that checks every deadline/4
// whether the parallel engine looks stuck — a stop-the-world barrier
// draining for longer than deadline, the write lease held longer than
// deadline, or operations in flight with no task progress for longer than
// deadline — and reports a parallel-state dump through the installed
// ParObserver (once per stall episode; the latch re-arms when the condition
// clears). The watchdog never blocks on engine locks. It returns a stop
// function (idempotent); on a serial manager or with deadline <= 0 the stop
// function is a no-op and no goroutine starts.
func (m *Manager) StartStallWatchdog(deadline time.Duration) (stop func()) {
	e := m.par
	if e == nil || deadline <= 0 {
		return func() {}
	}
	interval := deadline / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		fired := false
		lastProgress := e.progressCounter()
		lastChange := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			now := time.Now()
			if cur := e.progressCounter(); cur != lastProgress {
				lastProgress = cur
				lastChange = now
			}
			desc, stuck := e.stallCondition(now, deadline, lastChange)
			if desc == "" {
				fired = false
				continue
			}
			if fired {
				continue
			}
			fired = true
			if po, ok := observer.(ParObserver); ok {
				po.Stall(m.parStallReport(desc, stuck), stuck)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// progressCounter is a cheap monotone counter that moves whenever the deque
// system makes progress.
func (e *parEngine) progressCounter() int64 {
	return e.tasksLocal.Load() + e.tasksStolen.Load() + e.opsDone.Load()
}

// stallCondition checks the three stall classes; it returns a description
// (empty = healthy) and how long the engine has been stuck.
func (e *parEngine) stallCondition(now time.Time, deadline time.Duration, lastChange time.Time) (string, time.Duration) {
	nowNS := now.UnixNano()
	if since := e.stwPendingSince.Load(); since != 0 {
		if age := time.Duration(nowNS - since); age > deadline {
			return fmt.Sprintf("stop-the-world barrier (cause %s) draining for %v",
				stwCause(e.stwPendingCause.Load()), age.Round(time.Millisecond)), age
		}
	}
	if since := e.leaseHeldSince.Load(); since != 0 {
		if age := time.Duration(nowNS - since); age > deadline {
			return fmt.Sprintf("write lease (cause %s) held for %v",
				stwCause(e.leaseCause.Load()), age.Round(time.Millisecond)), age
		}
	}
	// Deque system: an operation in flight past the deadline while no task
	// or operation completed anywhere in the same window.
	if idle := now.Sub(lastChange); idle > deadline {
		var oldest int64
		for _, w := range e.all.Load().([]*parWorker) {
			if s := w.opStart.Load(); s != 0 && (oldest == 0 || s < oldest) {
				oldest = s
			}
		}
		if oldest != 0 {
			if age := time.Duration(nowNS - oldest); age > deadline {
				return fmt.Sprintf("deque system stuck: oldest op in flight %v, no task progress for %v",
					age.Round(time.Millisecond), idle.Round(time.Millisecond)), age
			}
		}
	}
	return "", 0
}

// parStallReport renders the parallel state dump for a stall: lease holder
// by cause, per-worker in-flight ops and deque depths, steal counters, and
// the contention top-K. Lock-free except deque TryLocks.
func (m *Manager) parStallReport(desc string, stuck time.Duration) string {
	e := m.par
	var b strings.Builder
	fmt.Fprintf(&b, "bddkit parallel stall: %s\n", desc)
	fmt.Fprintf(&b, "workers=%d sample_rate=%d stuck=%v\n", e.workers, ParSampling(), stuck.Round(time.Millisecond))
	nowNS := time.Now().UnixNano()
	if since := e.stwPendingSince.Load(); since != 0 {
		fmt.Fprintf(&b, "stw pending: cause=%s for %v\n",
			stwCause(e.stwPendingCause.Load()), time.Duration(nowNS-since).Round(time.Millisecond))
	} else {
		fmt.Fprintf(&b, "stw pending: none\n")
	}
	if since := e.leaseHeldSince.Load(); since != 0 {
		fmt.Fprintf(&b, "write lease: cause=%s held %v\n",
			stwCause(e.leaseCause.Load()), time.Duration(nowNS-since).Round(time.Millisecond))
	} else {
		fmt.Fprintf(&b, "write lease: free\n")
	}
	all := e.all.Load().([]*parWorker)
	fmt.Fprintf(&b, "workers (%d pooled):\n", len(all))
	for i, w := range all {
		depth := w.deque.depth()
		if start := w.opStart.Load(); start != 0 {
			fmt.Fprintf(&b, "  [%d] op=%s in flight %v deque=%d ops=%d tasks=%d\n",
				i, opCodeName(w.opCode.Load()),
				time.Duration(nowNS-start).Round(time.Millisecond),
				depth, w.telem.ops.Load(), w.telem.tasks.Load())
		} else {
			fmt.Fprintf(&b, "  [%d] idle deque=%d ops=%d tasks=%d\n",
				i, depth, w.telem.ops.Load(), w.telem.tasks.Load())
		}
	}
	fmt.Fprintf(&b, "tasks: local=%d stolen=%d thieves=%d pending_dead=%d\n",
		e.tasksLocal.Load(), e.tasksStolen.Load(), e.thieves.Load(), e.deadDelta.Load())
	if heat := e.levelHeat.Load(); heat != nil {
		if top := heatTopK(*heat, heatK); len(top) > 0 {
			fmt.Fprintf(&b, "hot levels:")
			for _, h := range top {
				fmt.Fprintf(&b, " L%d(hits=%d wait=%v)", h.Index, h.Hits, time.Duration(h.WaitNS).Round(time.Microsecond))
			}
			fmt.Fprintln(&b)
		}
	}
	if top := heatTopK(e.stripeHeat[:], heatK); len(top) > 0 {
		fmt.Fprintf(&b, "hot cache stripes:")
		for _, h := range top {
			fmt.Fprintf(&b, " S%d(hits=%d wait=%v)", h.Index, h.Hits, time.Duration(h.WaitNS).Round(time.Microsecond))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
