package bdd

import "time"

// Observability hooks. The package deliberately does not import the obs
// layer: instead an Observer is installed process-wide (by obs.Session, or
// by tests) and receives the rare structural events — garbage collections,
// reorderings, limit aborts, invariant failures — that metrics and the
// flight recorder want attributed. Hot paths never call the observer; the
// per-operation counters stay in Stats and are published by snapshot-time
// gauges, so an absent observer costs a single nil check at each rare
// event site.

// Observer receives structural lifecycle events from every Manager in the
// process. Implementations must be cheap and must not call back into the
// reporting Manager (the table may be mid-surgery).
type Observer interface {
	// GC reports a completed garbage collection: nodes reclaimed, nodes
	// still live, and the collection pause.
	GC(reclaimed, live int, pause time.Duration)
	// Reorder reports a completed reordering pass with the live-node
	// counts before and after and the pass duration.
	Reorder(before, after int, dur time.Duration)
	// Abort reports that a live-node budget was exhausted; the OpAborted
	// panic is raised immediately after this hook returns. Deadline
	// aborts are routine under budgeted traversal and are not reported.
	Abort(reason string)
	// DebugFailure reports a DebugCheck invariant violation.
	DebugFailure(err error)
}

// ParObserver is an optional extension of Observer for parallel-engine
// events. The engine type-asserts the installed Observer at each event
// site, so serial-only observers need not implement it.
type ParObserver interface {
	// STW reports one completed write-lease / stop-the-world epoch on a
	// parallel manager: the cause (gc, alloc, cache_resize, reorder,
	// save_load, debug_check, exclusive), the manager's worker count, the
	// drain/acquisition wait before exclusion held, and the exclusion
	// duration itself. Called after the world is released.
	STW(cause string, workers int, wait, pause time.Duration)
	// Stall reports a stall-watchdog firing: the engine looked stuck for
	// stuck (a quiescence barrier draining past its deadline, the write
	// lease wedged, or a deque system with in-flight ops and no progress).
	// report is a multi-line parallel-state dump (lease holder by cause,
	// per-worker in-flight ops and deque depths, contention top-K) meant
	// for the flight recorder. Called from the watchdog goroutine; the
	// engine may still be live, so implementations must not call back into
	// the manager.
	Stall(report string, stuck time.Duration)
}

// observer is process-wide: one observability session watches every
// manager, which keeps wiring trivial for the cmd binaries (managers are
// created deep inside circuit compilation).
var observer Observer

// SetObserver installs the process-wide observer (nil uninstalls). Not
// safe for concurrent use with running BDD operations; install before
// starting work.
func SetObserver(o Observer) { observer = o }

// CurrentObserver returns the installed observer, if any.
func CurrentObserver() Observer { return observer }
