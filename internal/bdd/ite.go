package bdd

// Boolean connectives. ITE is the universal ternary operator; AND and XOR
// have dedicated recursions (they dominate real workloads and cache better),
// and the remaining connectives derive from them via complement arcs at zero
// cost.
//
// Every operation — public or recursive helper — returns a Ref that carries
// one reference owned by the caller; release it with Deref.

// Not returns the negation of f. It is free (complement arc) and, for
// symmetry with the other operations, transfers a reference to the caller.
func (m *Manager) Not(f Ref) Ref {
	return m.Ref(f.Complement())
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref {
	if m.par != nil {
		return m.parAnd(f, g)
	}
	m.maybeReorder()
	return m.andRec(f, g)
}

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref {
	if m.par != nil {
		return m.parAnd(f.Complement(), g.Complement()).Complement()
	}
	m.maybeReorder()
	return m.andRec(f.Complement(), g.Complement()).Complement()
}

// Nand returns NOT (f AND g).
func (m *Manager) Nand(f, g Ref) Ref {
	if m.par != nil {
		return m.parAnd(f, g).Complement()
	}
	return m.andRec(f, g).Complement()
}

// Nor returns NOT (f OR g).
func (m *Manager) Nor(f, g Ref) Ref {
	if m.par != nil {
		return m.parAnd(f.Complement(), g.Complement())
	}
	return m.andRec(f.Complement(), g.Complement())
}

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref {
	if m.par != nil {
		return m.parXor(f, g)
	}
	m.maybeReorder()
	return m.xorRec(f, g)
}

// Xnor returns NOT (f XOR g), i.e. f IFF g.
func (m *Manager) Xnor(f, g Ref) Ref {
	if m.par != nil {
		return m.parXor(f, g).Complement()
	}
	return m.xorRec(f, g).Complement()
}

// Implies returns f IMPLIES g, i.e. NOT f OR g.
func (m *Manager) Implies(f, g Ref) Ref {
	if m.par != nil {
		return m.parAnd(f, g.Complement()).Complement()
	}
	return m.andRec(f, g.Complement()).Complement()
}

// Diff returns f AND NOT g (set difference when BDDs encode sets).
func (m *Manager) Diff(f, g Ref) Ref {
	if m.par != nil {
		return m.parAnd(f, g.Complement())
	}
	return m.andRec(f, g.Complement())
}

// ITE returns if-then-else(f, g, h) = f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	if m.par != nil {
		return m.parITE(f, g, h)
	}
	m.maybeReorder()
	return m.iteRec(f, g, h, 1)
}

// top2 returns the minimum level among the two operands' top nodes.
func (m *Manager) top2(f, g Ref) int32 {
	lf, lg := m.nodes[f.index()].level, m.nodes[g.index()].level
	if lg < lf {
		return lg
	}
	return lf
}

// cofs returns the two cofactors of f with respect to the variable at level
// lev; if f's top node sits below lev both cofactors are f itself.
func (m *Manager) cofs(f Ref, lev int32) (hi, lo Ref) {
	n := &m.nodes[f.index()]
	if n.level != lev {
		return f, f
	}
	c := f & 1
	return n.hi ^ c, n.lo ^ c
}

func (m *Manager) andRec(f, g Ref) Ref {
	// Terminal cases.
	if f == Zero || g == Zero || f == g.Complement() {
		return Zero
	}
	if f == One || f == g {
		return m.refS(g)
	}
	if g == One {
		return m.refS(f)
	}
	// Commutative: order operands for cache coherence.
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opAnd, f, g, 0); ok {
		return m.refS(r)
	}
	lev := m.top2(f, g)
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	t := m.andRec(f1, g1)
	e := m.andRec(f0, g0)
	r := m.makeNode(lev, t, e)
	m.derefS(t)
	m.derefS(e)
	m.cacheInsert(opAnd, f, g, 0, r)
	return r
}

func (m *Manager) xorRec(f, g Ref) Ref {
	if f == g {
		return Zero
	}
	if f == g.Complement() {
		return One
	}
	if f == Zero {
		return m.refS(g)
	}
	if g == Zero {
		return m.refS(f)
	}
	if f == One {
		return m.refS(g.Complement())
	}
	if g == One {
		return m.refS(f.Complement())
	}
	// XOR is commutative and self-complementing: normalize both operands
	// to regular refs, pulling complements out of the recursion.
	out := Ref(0)
	if f.IsComplement() {
		f ^= 1
		out ^= 1
	}
	if g.IsComplement() {
		g ^= 1
		out ^= 1
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opXor, f, g, 0); ok {
		return m.refS(r) ^ out
	}
	lev := m.top2(f, g)
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	t := m.xorRec(f1, g1)
	e := m.xorRec(f0, g0)
	r := m.makeNode(lev, t, e)
	m.derefS(t)
	m.derefS(e)
	m.cacheInsert(opXor, f, g, 0, r)
	return r ^ out
}

// iteRec carries its recursion depth so the peak can be recorded with no
// decrement bookkeeping; Stats.PeakITEDepth feeds the obs registry.
func (m *Manager) iteRec(f, g, h Ref, depth int) Ref {
	if depth > m.stats.PeakITEDepth {
		m.stats.PeakITEDepth = depth
	}
	// Terminal cases.
	switch {
	case f == One:
		return m.refS(g)
	case f == Zero:
		return m.refS(h)
	case g == h:
		return m.refS(g)
	case g == h.Complement():
		// ITE(f,g,¬g) = f XNOR g = ¬(f XOR g); with h = ¬g this is
		// f XOR h.
		return m.xorRec(f, h)
	case f == g:
		g = One
	case f == g.Complement():
		g = Zero
	case f == h:
		h = Zero
	case f == h.Complement():
		h = One
	}
	if g == One && h == Zero {
		return m.refS(f)
	}
	if g == Zero && h == One {
		return m.refS(f.Complement())
	}
	if g == One {
		// f OR h
		return m.andRec(f.Complement(), h.Complement()).Complement()
	}
	if h == Zero {
		return m.andRec(f, g)
	}
	if g == Zero {
		// ¬f AND h
		return m.andRec(f.Complement(), h)
	}
	if h == One {
		// ¬f OR g = ¬(f AND ¬g)
		return m.andRec(f, g.Complement()).Complement()
	}
	// Normalize the triple: first make f regular, then make g regular,
	// pulling complements out so equivalent triples share cache entries.
	if f.IsComplement() {
		f ^= 1
		g, h = h, g
	}
	out := Ref(0)
	if g.IsComplement() {
		g ^= 1
		h ^= 1
		out = 1
	}
	if r, ok := m.cacheLookup(opIte, f, g, h); ok {
		return m.refS(r) ^ out
	}
	lev := m.top2(f, g)
	if lh := m.nodes[h.index()].level; lh < lev {
		lev = lh
	}
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	h1, h0 := m.cofs(h, lev)
	t := m.iteRec(f1, g1, h1, depth+1)
	e := m.iteRec(f0, g0, h0, depth+1)
	r := m.makeNode(lev, t, e)
	m.derefS(t)
	m.derefS(e)
	m.cacheInsert(opIte, f, g, h, r)
	return r ^ out
}

// Leq reports whether f implies g (f ≤ g as sets), without building the
// difference BDD.
func (m *Manager) Leq(f, g Ref) bool {
	if m.par != nil {
		return m.parLeq(f, g)
	}
	return m.leqRec(f, g)
}

func (m *Manager) leqRec(f, g Ref) bool {
	if f == Zero || g == One || f == g {
		return true
	}
	if f == One || g == Zero || f == g.Complement() {
		return false
	}
	if r, ok := m.cacheLookup(opLeq, f, g, 0); ok {
		return r == One
	}
	lev := m.top2(f, g)
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	res := m.leqRec(f1, g1) && m.leqRec(f0, g0)
	enc := Zero
	if res {
		enc = One
	}
	m.cacheInsert(opLeq, f, g, 0, enc)
	return res
}
