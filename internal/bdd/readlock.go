package bdd

// ReadLocked runs fn under the engine's read lease plus the memory lease:
// the same protection the manager's own read-only traversals
// (DagSize, MintermFraction, Save, ...) take, exported for sibling
// packages that sweep the arena through the structural accessors
// (Level/Var/Hi/Lo/StructHi/StructLo) — internal/count's exact counting
// sweeps are the canonical caller. On a serial manager (Workers <= 1) it
// is free.
//
// fn must only read: it must not allocate nodes or change reference
// counts (doing so can stop the world while fn holds the barrier, which
// deadlocks), and it must not call ReadLocked re-entrantly (the read
// lease is not re-entrant across a concurrent writer). Heap allocation
// (maps, big.Ints) is fine; only BDD node allocation is off-limits.
func (m *Manager) ReadLocked(fn func()) { m.readLocked(fn) }
