package bdd

// Parallel engine: lock-striped shared tables plus a work-stealing fork/join
// layer, gated by Config.Workers. With Workers <= 1 the manager runs the
// original single-threaded code paths untouched (bit-identical behaviour,
// which the differential oracle depends on). With Workers > 1 the manager
// becomes safe for concurrent public operations and splits large recursions
// across cores.
//
// Concurrency architecture (see DESIGN.md "Parallel engine" for the long
// form):
//
//   - opLease (RWMutex): every public operation holds the read side for its
//     whole duration. Reordering, Save/Load, DebugCheck, and the other
//     serial-only algorithms take the write side, so they observe a fully
//     quiescent manager and can run the unmodified serial code.
//   - memBarrier: a cooperative stop-the-world latch *within* operations.
//     Garbage collection, arena growth, and computed-cache resizing need
//     every in-flight recursion parked at a safe point (not finished, just
//     parked); workers poll one atomic flag at recursion entries and yield.
//   - Unique table: one mutex per level (the subtable is already per-level,
//     so striping falls out of the existing layout). makeNode probes and
//     inserts under the level lock only; allocation is lock-free against it.
//   - Computed cache: one mutex per group of sets (cacheStripes stripes).
//     Hit-rate-driven resizing remains a stop-the-world epoch event.
//   - Allocation: free slots are carved into per-worker chunks, either off
//     the global free list (freeMu) or from the arena's virgin-slot cursor
//     (atomic CAS on nodesUsed). The arena is cursor-based — len == cap at
//     all times — so a slice header never changes outside a stop-the-world.
//   - Reference counts: atomic CAS. A node whose count drops to zero in
//     parallel mode keeps the references it holds on its children (deferred
//     death); the pending-death set is reconciled to the serial invariant
//     ("dead nodes hold no references") at the start of every GC, when the
//     world is stopped anyway. Resurrection is then a bare 0->1 CAS.
//   - Work stealing: recursions fork one cofactor subproblem per level into
//     a per-worker deque while above a depth cutoff; idle thief goroutines
//     (spawned on demand, exiting when idle) and joiners waiting on a stolen
//     task steal from the front (oldest = largest). The shared computed
//     cache doubles as the duplicate-work suppressor: two workers racing to
//     the same subproblem meet in the cache, so at most one recomputes.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// defaultWorkers is the package-wide default for Config.Workers == 0,
// settable by command-line wiring (cmd binaries expose -workers). The
// initial value 1 keeps every manager serial unless explicitly configured.
var defaultWorkers atomic.Int32

func init() { defaultWorkers.Store(1) }

// SetDefaultWorkers sets the worker count used by managers created with
// Config.Workers == 0 (including every bdd.New call). n <= 0 selects
// runtime.GOMAXPROCS(0). It only affects managers created afterwards.
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the current package-wide default worker count.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// Workers returns the manager's configured worker count (1 = serial).
func (m *Manager) Workers() int {
	if m.par == nil {
		return 1
	}
	return m.par.workers
}

const (
	// cacheStripes is the number of computed-cache locks; sets map to
	// stripes by low bits, so the mapping survives resizes.
	cacheStripes = 256
	// allocChunk is how many free slots a worker carves off the shared
	// allocator at a time.
	allocChunk = 64
	// parForkDepth is the task-granularity cutoff: recursions fork
	// subproblems into the deque only above this depth from the operation
	// root, bounding tasks per operation to roughly 2^parForkDepth while
	// keeping the forked subproblems large.
	parForkDepth = 8
	// thiefIdleTimeout is how long a thief goroutine waits for work before
	// exiting (thieves are respawned on demand, so an idle manager holds no
	// goroutines).
	thiefIdleTimeout = 2 * time.Millisecond
)

// Task lifecycle states.
const (
	taskQueued int32 = iota
	taskClaimed
	taskDone
)

// Task kinds (which parallel recursion a stolen task runs).
const (
	taskAnd uint8 = iota
	taskXor
	taskIte
	taskExists
	taskAndExists
)

// padMutex keeps striped locks on separate cache lines.
type padMutex struct {
	sync.Mutex
	_ [56]byte
}

// opCtx is the per-operation context shared by the operation's forked tasks.
type opCtx struct {
	outstanding atomic.Int64 // forked tasks not yet done
	aborted     atomic.Bool  // an OpAborted unwound part of this operation
	reason      string       // abort reason; written before aborted is set
}

func (c *opCtx) abort(reason string) {
	if !c.aborted.Load() {
		c.reason = reason
		c.aborted.Store(true)
	}
}

// parTask is one forked subproblem. The result carries one reference owned
// by whoever joins the task.
type parTask struct {
	ctx     *opCtx
	kind    uint8
	aborted bool
	depth   int32
	f, g, h Ref
	res     Ref
	state   atomic.Int32
	// forkAt is set only on sampled forks (before the push, so the deque
	// mutex orders it before any claim); a thief that claims the task
	// derives its steal latency from it.
	forkAt time.Time
}

// taskDeque is a mutex-protected spawn registry: owners push forked tasks at
// the back; thieves claim from the front (oldest first, which is the largest
// granularity). Claiming is a CAS on the task state, so an owner can also
// claim its own task directly at the join point without touching the deque.
type taskDeque struct {
	mu    sync.Mutex
	tasks []*parTask
}

// push appends t and returns the resulting depth (for sampled deque-depth
// telemetry).
func (d *taskDeque) push(t *parTask) int {
	d.mu.Lock()
	// Compact claimed/done entries opportunistically so the slice does not
	// grow without bound across operations.
	if len(d.tasks) >= 16 {
		live := d.tasks[:0]
		for _, q := range d.tasks {
			if q.state.Load() == taskQueued {
				live = append(live, q)
			}
		}
		d.tasks = live
	}
	d.tasks = append(d.tasks, t)
	n := len(d.tasks)
	d.mu.Unlock()
	return n
}

// steal claims the oldest queued task, preferring tasks of ctx when ctx is
// non-nil (used by the abort drain); with ctx == nil any task qualifies.
func (d *taskDeque) steal(ctx *opCtx) *parTask {
	d.mu.Lock()
	for i := 0; i < len(d.tasks); i++ {
		t := d.tasks[i]
		if t.state.Load() != taskQueued {
			continue
		}
		if ctx != nil && t.ctx != ctx {
			continue
		}
		if t.state.CompareAndSwap(taskQueued, taskClaimed) {
			d.tasks = append(d.tasks[:i], d.tasks[i+1:]...)
			d.mu.Unlock()
			return t
		}
	}
	d.mu.Unlock()
	return nil
}

// parWorker is the per-goroutine execution context: a private allocation
// chunk, a task deque, and local statistics merged into the manager under
// statsMu at operation exit.
type parWorker struct {
	m         *Manager
	e         *parEngine
	ctx       *opCtx // context of the operation currently executing
	deque     taskDeque
	chunk     []int32 // private free arena slots
	stats     Stats   // local deltas, flushed at endOp
	allocTick int

	telem workerTelem // sampled telemetry; goroutine-local writes

	// Watchdog attribution: the operation (or stolen task) currently in
	// flight on this worker, readable without locks.
	opStart atomic.Int64 // unix nanos; 0 = idle
	opCode  atomic.Int32
}

// yield parks the worker at a safe point while a stop-the-world is pending.
// Callers must hold the memory lease and no engine locks, and must hold no
// pointers into the node arena across the call (the arena may be swapped).
// The re-entry wait is the time this worker spends parked for the
// stop-the-world, so it is attributed to leaseWait when telemetry is armed.
func (w *parWorker) yield() {
	w.e.mem.exit()
	if telemetryArmed() {
		t0 := time.Now()
		w.e.mem.enter()
		w.telem.leaseWait.observe(time.Since(t0).Nanoseconds())
		return
	}
	w.e.mem.enter()
}

// checkpoint is the safe-point poll placed at recursion entries: one atomic
// load in the common case.
func (w *parWorker) checkpoint() {
	if w.e.mem.stwFlag.Load() {
		w.yield()
	}
}

// memBarrier implements the cooperative stop-the-world latch. Lease holders
// (enter/exit) are operations in flight; a stop-the-world request parks new
// entries, waits for the active count to drain to zero (in-flight holders
// reach yield points and exit/re-enter), runs its critical function, and
// releases everyone.
type memBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	active  int
	stw     int
	stwFlag atomic.Bool // fast-path mirror of stw > 0
}

func (b *memBarrier) init() { b.cond = sync.NewCond(&b.mu) }

func (b *memBarrier) enter() {
	b.mu.Lock()
	for b.stw > 0 {
		b.cond.Wait()
	}
	b.active++
	b.mu.Unlock()
}

func (b *memBarrier) exit() {
	b.mu.Lock()
	b.active--
	if b.active == 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// stopTheWorld runs fn with every lease holder parked. haveLease tells
// whether the caller itself holds the lease (it is released around fn and
// reacquired after). fn runs under b.mu, so concurrent stop-the-world
// requests serialize; fn must not acquire the lease itself.
func (b *memBarrier) stopTheWorld(haveLease bool, fn func()) {
	b.mu.Lock()
	b.stw++
	b.stwFlag.Store(true)
	if haveLease {
		b.active--
		if b.active == 0 {
			b.cond.Broadcast()
		}
	}
	for b.active > 0 {
		b.cond.Wait()
	}
	fn()
	b.stw--
	if b.stw == 0 {
		b.stwFlag.Store(false)
		b.cond.Broadcast()
	}
	if haveLease {
		for b.stw > 0 {
			b.cond.Wait()
		}
		b.active++
	}
	b.mu.Unlock()
}

// parEngine holds all concurrency state of a parallel manager.
type parEngine struct {
	workers int

	opLease sync.RWMutex
	mem     memBarrier

	tableMu []padMutex // one per level, index = level
	cacheMu []padMutex // cacheStripes stripes over cache sets

	freeMu sync.Mutex // global free list + virgin-cursor refills

	deadMu      sync.Mutex
	deadPending map[int32]struct{} // indices whose count hit zero in parallel

	// Counter mirrors: during parallel phases m.liveCount / m.deadCount are
	// frozen at base and all movement accumulates in the atomic deltas;
	// stop-the-world and exclusive sections fold the deltas back into the
	// plain fields (syncEnter) and re-publish them (syncExit).
	liveBase  atomic.Int64
	deadBase  atomic.Int64
	liveDelta atomic.Int64
	deadDelta atomic.Int64
	peakLive  atomic.Int64

	// Atomic mirrors of reordering tunables, readable before the lease is
	// taken (the serial fields are only touched under the write lease).
	autoReorderA      atomic.Bool
	reorderThresholdA atomic.Int64

	cacheTick atomic.Uint32 // shared age clock for striped cache updates

	statsMu sync.Mutex // guards m.stats merges against Stats() snapshots

	// Counters with no worker context (public Ref/Deref, CacheLookup from
	// client algorithms), merged at Stats() time.
	resurrected      atomic.Int64
	extraCacheLooks  atomic.Int64
	extraCacheHits   atomic.Int64
	extraCacheIns    atomic.Int64
	extraCacheEvicts atomic.Int64
	tasksLocal       atomic.Int64
	tasksStolen      atomic.Int64

	poolMu  sync.Mutex
	idle    []*parWorker
	all     atomic.Value // []*parWorker snapshot for steal scans
	thieves atomic.Int32 // live thief goroutines
	wake    chan struct{}

	// Telemetry (see partelem.go). STW accounting is always on; the heat
	// tables fill only on sampled acquisitions. The pending/held stamps are
	// what the stall watchdog reads, so they are plain atomics settable
	// without any engine lock.
	stw             [stwNumCauses]stwCounter
	stwPendingSince atomic.Int64 // unix nanos a stop-the-world began draining; 0 = none
	stwPendingCause atomic.Int32
	leaseHeldSince  atomic.Int64 // unix nanos the write lease was acquired; 0 = free
	leaseCause      atomic.Int32
	opsDone         atomic.Int64               // completed operations (watchdog progress signal)
	levelHeat       atomic.Pointer[[]heatCell] // per-level sampled contention; grown under the write lease
	stripeHeat      [cacheStripes]heatCell     // per-cache-stripe sampled contention
}

func newParEngine(m *Manager, workers int) *parEngine {
	e := &parEngine{
		workers:     workers,
		deadPending: make(map[int32]struct{}),
		wake:        make(chan struct{}, 1),
	}
	e.mem.init()
	e.tableMu = make([]padMutex, len(m.subtables))
	e.cacheMu = make([]padMutex, cacheStripes)
	e.liveBase.Store(int64(m.liveCount))
	e.deadBase.Store(int64(m.deadCount))
	e.peakLive.Store(int64(m.stats.PeakLive))
	e.reorderThresholdA.Store(int64(m.reorderThreshold))
	e.autoReorderA.Store(m.autoReorder)
	e.all.Store([]*parWorker{})
	heat := make([]heatCell, len(m.subtables))
	e.levelHeat.Store(&heat)
	return e
}

// growLevelHeat extends the per-level heat table alongside tableMu (AddVar
// under the write lease); existing cells carry over so history survives.
func (e *parEngine) growLevelHeat(levels int) {
	old := *e.levelHeat.Load()
	if len(old) >= levels {
		return
	}
	grown := make([]heatCell, levels)
	for i := range old {
		grown[i].hits.Store(old[i].hits.Load())
		grown[i].waitNS.Store(old[i].waitNS.Load())
	}
	e.levelHeat.Store(&grown)
}

// syncEnter folds the atomic counter deltas into the manager's plain fields.
// Callers own a quiescent manager (stop-the-world or the write lease).
func (e *parEngine) syncEnter(m *Manager) {
	m.liveCount = int(e.liveBase.Load() + e.liveDelta.Swap(0))
	m.deadCount = int(e.deadBase.Load() + e.deadDelta.Swap(0))
	e.liveBase.Store(int64(m.liveCount))
	e.deadBase.Store(int64(m.deadCount))
	if p := int(e.peakLive.Load()); p > m.stats.PeakLive {
		m.stats.PeakLive = p
	}
}

// syncExit re-publishes the plain counters into the atomic mirrors after a
// quiescent section that may have changed them.
func (e *parEngine) syncExit(m *Manager) {
	e.liveBase.Store(int64(m.liveCount))
	e.deadBase.Store(int64(m.deadCount))
	e.liveDelta.Store(0)
	e.deadDelta.Store(0)
	if int64(m.stats.PeakLive) > e.peakLive.Load() {
		e.peakLive.Store(int64(m.stats.PeakLive))
	}
	if int64(m.reorderThreshold) != e.reorderThresholdA.Load() {
		e.reorderThresholdA.Store(int64(m.reorderThreshold))
	}
}

// liveApprox is the advisory live-node count readable from any goroutine.
func (e *parEngine) liveApprox() int64 { return e.liveBase.Load() + e.liveDelta.Load() }

func (e *parEngine) bumpPeak() {
	live := e.liveApprox()
	for {
		cur := e.peakLive.Load()
		if live <= cur || e.peakLive.CompareAndSwap(cur, live) {
			return
		}
	}
}

// stopTheWorldSynced wraps a stop-the-world with counter folding and the
// stats lock (fn may read or write m.stats, racing Stats() snapshots
// otherwise). cause feeds the quiescence accountant: the drain time (wait)
// and exclusion time (pause) are attributed per cause, and the pending
// stamp makes a stuck barrier visible to the stall watchdog.
func (e *parEngine) stopTheWorldSynced(m *Manager, haveLease bool, cause stwCause, fn func()) {
	start := time.Now()
	e.stwPendingCause.Store(int32(cause))
	e.stwPendingSince.Store(start.UnixNano())
	var wait, pause time.Duration
	e.mem.stopTheWorld(haveLease, func() {
		wait = time.Since(start)
		t0 := time.Now()
		e.statsMu.Lock()
		defer func() {
			e.statsMu.Unlock()
			pause = time.Since(t0)
		}()
		e.syncEnter(m)
		fn()
		e.syncExit(m)
	})
	e.stwPendingSince.Store(0)
	e.recordSTW(cause, wait, pause)
}

// exclusive runs fn with the manager fully quiescent: no operation in
// flight, counters folded to their serial form. The serial code paths are
// valid inside fn. On a serial manager fn just runs.
func (m *Manager) exclusive(fn func()) { m.exclusiveCause(stwExclusive, fn) }

// exclusiveCause is exclusive with quiescence accounting: the write-lease
// acquisition wait and the held duration are attributed to cause, and the
// held stamp makes a wedged exclusive section visible to the stall
// watchdog.
func (m *Manager) exclusiveCause(cause stwCause, fn func()) {
	if m.par == nil {
		fn()
		return
	}
	e := m.par
	start := time.Now()
	e.opLease.Lock()
	wait := time.Since(start)
	held := time.Now()
	e.leaseCause.Store(int32(cause))
	e.leaseHeldSince.Store(held.UnixNano())
	// statsMu: serial code inside fn writes m.stats bare, and an idle
	// thief may still be flushing its worker-local counters after the op
	// that spawned it ended (the flush is not tied to any lease).
	e.statsMu.Lock()
	e.syncEnter(m)
	defer func() {
		e.syncExit(m)
		e.statsMu.Unlock()
		e.leaseHeldSince.Store(0)
		e.opLease.Unlock()
		e.recordSTW(cause, wait, time.Since(held))
	}()
	fn()
}

// readLocked runs fn under the read lease plus the memory lease: enough
// for read-only traversals of live nodes (reordering is excluded; GC never
// frees or rewrites the children of live nodes). The memory lease is not
// optional: a concurrent operation can stop the world mid-traversal to
// grow the arena — it holds the read lease itself, so only barrier
// participants are drained — and the m.nodes header swap would race a
// bare traversal. fn must not allocate nodes (it would try to stop the
// world while holding the barrier).
func (m *Manager) readLocked(fn func()) {
	if m.par == nil {
		fn()
		return
	}
	m.par.opLease.RLock()
	defer m.par.opLease.RUnlock()
	m.par.mem.enter()
	defer m.par.mem.exit()
	fn()
}

// reconcileDeaths restores the serial reference-counting invariant: every
// node whose count hit zero on a parallel manager still holds its child
// references; drop them so the following sweep sees the same state a serial
// manager would. The drops cascade (children dying here re-enter the
// pending set), so the loop runs to fixpoint. Runs on a quiescent manager,
// at the start of every gc.
func (m *Manager) reconcileDeaths() {
	e := m.par
	for {
		e.deadMu.Lock()
		pend := e.deadPending
		e.deadPending = make(map[int32]struct{})
		e.deadMu.Unlock()
		if len(pend) == 0 {
			return
		}
		for idx := range pend {
			n := &m.nodes[idx]
			if n.ref != 0 || n.level < 0 {
				continue // resurrected (or already freed) since it was recorded
			}
			m.dropChildRefs(idx)
		}
	}
}

// dropChildRefs releases the references a dead node holds on its children.
// The pattern (load children, then deref) is shared by reconcileDeaths and
// the reordering sweeps that free dead nodes directly.
func (m *Manager) dropChildRefs(idx int32) {
	hi, lo := m.nodes[idx].hi, m.nodes[idx].lo
	m.derefIndex(hi.index())
	m.derefIndex(lo.index())
}

// refParIndex atomically adds one reference. Resurrection of a dead node is
// a bare 0->1 transition: in parallel mode dead nodes keep their child
// references, so only the counters move. Callers hold the memory lease.
func (m *Manager) refParIndex(idx int32) {
	n := &m.nodes[idx]
	for {
		old := atomic.LoadInt32(&n.ref)
		if old == refSaturated {
			return
		}
		if atomic.CompareAndSwapInt32(&n.ref, old, old+1) {
			if old == 0 {
				e := m.par
				e.deadMu.Lock()
				delete(e.deadPending, idx)
				e.deadMu.Unlock()
				e.deadDelta.Add(-1)
				e.liveDelta.Add(1)
				e.resurrected.Add(1)
				e.bumpPeak()
			}
			return
		}
	}
}

func (m *Manager) refPar(f Ref) Ref {
	m.refParIndex(f.index())
	return f
}

// derefParIndex atomically drops one reference. A 1->0 transition records
// the node in the pending-death set without touching its children (deferred
// death; see reconcileDeaths). Callers hold the memory lease.
func (m *Manager) derefParIndex(idx int32) {
	n := &m.nodes[idx]
	for {
		old := atomic.LoadInt32(&n.ref)
		if old == refSaturated {
			return
		}
		if old <= 0 {
			panic("bdd: Deref of unreferenced node")
		}
		if atomic.CompareAndSwapInt32(&n.ref, old, old-1) {
			if old == 1 {
				e := m.par
				e.deadMu.Lock()
				e.deadPending[idx] = struct{}{}
				e.deadMu.Unlock()
				e.liveDelta.Add(-1)
				e.deadDelta.Add(1)
			}
			return
		}
	}
}

// refPublic / derefPublic are the Manager.Ref / Manager.Deref paths on a
// parallel manager: they take both leases briefly so they can run while
// other operations are in flight yet stay excluded from reordering and GC.
func (m *Manager) refPublic(f Ref) Ref {
	e := m.par
	e.opLease.RLock()
	e.mem.enter()
	m.refParIndex(f.index())
	e.mem.exit()
	e.opLease.RUnlock()
	return f
}

func (m *Manager) derefPublic(f Ref) {
	e := m.par
	e.opLease.RLock()
	e.mem.enter()
	m.derefParIndex(f.index())
	e.mem.exit()
	e.opLease.RUnlock()
}

// acquireWorker hands out a worker context (pooled; the pool grows with the
// number of concurrently initiated operations, not just Config.Workers).
func (e *parEngine) acquireWorker(m *Manager) *parWorker {
	e.poolMu.Lock()
	var w *parWorker
	if n := len(e.idle); n > 0 {
		w = e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.poolMu.Unlock()
		return w
	}
	w = &parWorker{m: m, e: e}
	all := e.all.Load().([]*parWorker)
	grown := make([]*parWorker, len(all)+1)
	copy(grown, all)
	grown[len(all)] = w
	e.all.Store(grown)
	e.poolMu.Unlock()
	return w
}

func (e *parEngine) releaseWorker(w *parWorker) {
	w.ctx = nil
	e.poolMu.Lock()
	e.idle = append(e.idle, w)
	e.poolMu.Unlock()
}

// flushStats merges the worker's local counters into the manager.
func (w *parWorker) flushStats() {
	e := w.e
	e.statsMu.Lock()
	w.m.stats.merge(&w.stats)
	e.statsMu.Unlock()
	w.stats = Stats{}
}

// merge adds the operation counters of o into s (durations and maxima fold
// accordingly).
func (s *Stats) merge(o *Stats) {
	s.UniqueLookups += o.UniqueLookups
	s.UniqueHits += o.UniqueHits
	s.UniqueGrows += o.UniqueGrows
	s.CacheLookups += o.CacheLookups
	s.CacheHits += o.CacheHits
	s.CacheInserts += o.CacheInserts
	s.CacheEvictions += o.CacheEvictions
	s.Resurrected += o.Resurrected
	if o.PeakITEDepth > s.PeakITEDepth {
		s.PeakITEDepth = o.PeakITEDepth
	}
}

// signalWork nudges the thief pool after a fork: wake a sleeper and spawn a
// new thief if the pool is below strength.
func (e *parEngine) signalWork(m *Manager) {
	select {
	case e.wake <- struct{}{}:
	default:
	}
	if int(e.thieves.Load()) < e.workers-1 {
		e.thieves.Add(1)
		go e.thiefLoop(m)
	}
}

// stealAny scans every worker deque for a queued task. skip is the caller's
// own worker (its deque is scanned too — the owner may have stranded work —
// but last).
func (e *parEngine) stealAny(skip *parWorker) *parTask {
	all := e.all.Load().([]*parWorker)
	for _, w := range all {
		if w == skip {
			continue
		}
		if t := w.deque.steal(nil); t != nil {
			return t
		}
	}
	if skip != nil {
		return skip.deque.steal(nil)
	}
	return nil
}

// thiefLoop is the body of a background worker: steal, execute, sleep,
// expire. Thieves never hold the operation lease — tasks are only in flight
// while their owner's operation holds it.
func (e *parEngine) thiefLoop(m *Manager) {
	defer e.thieves.Add(-1)
	w := e.acquireWorker(m)
	defer e.releaseWorker(w)
	idle := time.NewTimer(thiefIdleTimeout)
	defer idle.Stop()
	for {
		if t := e.stealAny(w); t != nil {
			e.runStolen(w, t, false)
			e.tasksStolen.Add(1)
			continue
		}
		w.flushStats()
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(thiefIdleTimeout)
		var idleStart time.Time
		if telemetryArmed() {
			idleStart = time.Now()
		}
		select {
		case <-e.wake:
			if !idleStart.IsZero() {
				w.telem.idleNS.Add(time.Since(idleStart).Nanoseconds())
			}
		case <-idle.C:
			if !idleStart.IsZero() {
				w.telem.idleNS.Add(time.Since(idleStart).Nanoseconds())
			}
			return
		}
	}
}

// runStolen executes a claimed task on behalf of its owner. OpAborted
// panics are absorbed into the task (the owner re-raises them at its join
// point); other panics are genuine bugs and propagate. haveLease tells
// whether the caller already holds the memory lease (a joiner helping out
// does; a thief does not — and must not nest enter, or it deadlocks against
// a pending stop-the-world).
func (e *parEngine) runStolen(w *parWorker, t *parTask, haveLease bool) {
	if !haveLease {
		e.mem.enter()
		defer e.mem.exit()
	}
	if !t.forkAt.IsZero() {
		w.telem.stealWait.observe(time.Since(t.forkAt).Nanoseconds())
	}
	w.telem.tasks.Add(1)
	var runStart time.Time
	if telemetryArmed() {
		runStart = time.Now()
	}
	savedCtx := w.ctx
	savedStart := w.opStart.Load()
	savedCode := w.opCode.Load()
	w.ctx = t.ctx
	w.opStart.Store(time.Now().UnixNano())
	w.opCode.Store(opcStolen)
	defer func() {
		if !runStart.IsZero() {
			w.telem.busyNS.Add(time.Since(runStart).Nanoseconds())
		}
		w.opStart.Store(savedStart)
		w.opCode.Store(savedCode)
		w.ctx = savedCtx
		if r := recover(); r != nil {
			ab, ok := r.(OpAborted)
			if !ok {
				t.ctx.abort("panic")
				t.aborted = true
				t.state.Store(taskDone)
				t.ctx.outstanding.Add(-1)
				panic(r)
			}
			t.ctx.abort(ab.Reason)
			t.aborted = true
		}
		t.state.Store(taskDone)
		t.ctx.outstanding.Add(-1)
	}()
	if t.ctx.aborted.Load() {
		t.aborted = true
		return
	}
	t.res = w.m.runTaskBody(w, t)
}

// runTaskBody dispatches a task to its recursion.
func (m *Manager) runTaskBody(w *parWorker, t *parTask) Ref {
	switch t.kind {
	case taskAnd:
		return m.parAndRec(w, t.f, t.g, t.depth)
	case taskXor:
		return m.parXorRec(w, t.f, t.g, t.depth)
	case taskIte:
		return m.parIteRec(w, t.f, t.g, t.h, t.depth)
	case taskExists:
		return m.parExistsRec(w, t.f, t.g, t.depth)
	default: // taskAndExists
		return m.parAndExistsRec(w, t.f, t.g, t.h, t.depth)
	}
}

// fork queues a subproblem and wakes the thief pool. Sampled forks stamp
// the task (steal-latency attribution downstream) and record the resulting
// deque depth.
func (w *parWorker) fork(kind uint8, f, g, h Ref, depth int32) *parTask {
	t := &parTask{ctx: w.ctx, kind: kind, f: f, g: g, h: h, depth: depth}
	sampled := w.sampled()
	if sampled {
		t.forkAt = time.Now()
	}
	w.ctx.outstanding.Add(1)
	n := w.deque.push(t)
	if sampled {
		w.telem.dequeLen.observe(int64(n))
	}
	w.e.signalWork(w.m)
	return t
}

// shouldFork is the granularity test at a fork site.
func (w *parWorker) shouldFork(depth int32) bool {
	return depth < parForkDepth && !w.ctx.aborted.Load()
}

// join retrieves a forked task's result, running it inline when it has not
// been stolen and helping with other tasks while waiting when it has. An
// aborted task re-raises OpAborted in the owner.
func (m *Manager) join(w *parWorker, t *parTask) Ref {
	if t.state.CompareAndSwap(taskQueued, taskClaimed) {
		w.e.tasksLocal.Add(1)
		defer func() {
			t.state.Store(taskDone)
			t.ctx.outstanding.Add(-1)
		}()
		return m.runTaskBody(w, t)
	}
	var waitStart time.Time
	if telemetryArmed() {
		waitStart = time.Now()
	}
	spins := 0
	for {
		if t.state.Load() == taskDone {
			if !waitStart.IsZero() {
				// Includes help-work executed while blocked: joinWait is the
				// owner's wall time at the join point, not pure idling.
				w.telem.joinWait.observe(time.Since(waitStart).Nanoseconds())
			}
			if t.aborted {
				panic(OpAborted{Reason: t.ctx.reason})
			}
			return t.res
		}
		w.checkpoint()
		if st := w.e.stealAny(w); st != nil {
			w.e.runStolen(w, st, true)
			w.e.tasksStolen.Add(1)
			spins = 0
			continue
		}
		spins++
		if spins < 32 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// beginOp opens a parallel operation: read lease, worker, context, memory
// lease. code names the operation for watchdog attribution. Callers pair it
// with endOp via defer.
func (m *Manager) beginOp(code int32) (*parWorker, *opCtx) {
	e := m.par
	w := e.acquireWorker(m)
	w.ctx = &opCtx{}
	if telemetryArmed() {
		t0 := time.Now()
		e.mem.enter()
		w.telem.leaseWait.observe(time.Since(t0).Nanoseconds())
	} else {
		e.mem.enter()
	}
	w.telem.ops.Add(1)
	w.opCode.Store(code)
	w.opStart.Store(time.Now().UnixNano())
	return w, w.ctx
}

// endOp closes a parallel operation: releases the memory lease, drains any
// tasks the operation still owns (only on abort paths — the normal path
// joins everything), flushes stats, and runs a pending cache-resize epoch.
// It must run under the operation's read lease, deferred before the body.
func (m *Manager) endOp(w *parWorker, ctx *opCtx) {
	e := m.par
	e.mem.exit()
	if ctx.outstanding.Load() != 0 {
		m.drainCtx(w, ctx)
	}
	if telemetryArmed() {
		if start := w.opStart.Load(); start != 0 {
			w.telem.busyNS.Add(time.Now().UnixNano() - start)
		}
	}
	w.opStart.Store(0)
	w.opCode.Store(opcNone)
	e.opsDone.Add(1)
	w.flushStats()
	e.releaseWorker(w)
	m.maybeCacheEpochPar()
}

// drainCtx claims and cancels the context's queued tasks and waits out its
// running ones. Called without the memory lease, so running tasks remain
// free to stop the world while finishing.
func (m *Manager) drainCtx(w *parWorker, ctx *opCtx) {
	ctx.abort("operation unwound")
	e := m.par
	for ctx.outstanding.Load() != 0 {
		claimed := false
		all := e.all.Load().([]*parWorker)
		for _, o := range all {
			for {
				t := o.deque.steal(ctx)
				if t == nil {
					break
				}
				t.aborted = true
				t.state.Store(taskDone)
				ctx.outstanding.Add(-1)
				claimed = true
			}
		}
		if !claimed {
			runtime.Gosched()
		}
	}
}

// maybeCacheEpochPar closes a computed-cache resize epoch at operation exit
// when the lookup budget has elapsed; the resize itself (and the epoch
// bookkeeping) is a stop-the-world event.
func (m *Manager) maybeCacheEpochPar() {
	e := m.par
	e.statsMu.Lock()
	due := m.stats.CacheLookups+e.extraCacheLooks.Load()-m.cache.epochLookups >=
		int64(cacheEpochFactor)<<m.cache.bits
	e.statsMu.Unlock()
	if !due {
		return
	}
	e.stopTheWorldSynced(m, false, stwCacheResize, func() {
		// Re-check under the lock: another exit may have closed the epoch.
		m.foldExtraCacheStats()
		if m.stats.CacheLookups-m.cache.epochLookups >= int64(cacheEpochFactor)<<m.cache.bits {
			m.cacheEpoch()
		}
	})
}

// foldExtraCacheStats merges the workerless cache counters into m.stats.
// Callers hold statsMu (or a quiescent manager).
func (m *Manager) foldExtraCacheStats() {
	e := m.par
	m.stats.CacheLookups += e.extraCacheLooks.Swap(0)
	m.stats.CacheHits += e.extraCacheHits.Swap(0)
	m.stats.CacheInserts += e.extraCacheIns.Swap(0)
	m.stats.CacheEvictions += e.extraCacheEvicts.Swap(0)
	m.stats.Resurrected += e.resurrected.Swap(0)
}

// checkLimitsPar is the parallel-mode limit check at allocation sites.
func (m *Manager) checkLimitsPar(w *parWorker) {
	e := m.par
	if m.nodeLimit > 0 && e.liveApprox() > int64(m.nodeLimit) {
		reason := "live nodes exceed limit"
		if observer != nil {
			observer.Abort(reason)
		}
		w.ctx.abort(reason)
		panic(OpAborted{Reason: reason})
	}
	if !m.deadline.IsZero() {
		w.allocTick++
		if w.allocTick >= deadlineCheckInterval {
			w.allocTick = 0
			if time.Now().After(m.deadline) {
				w.ctx.abort("deadline exceeded")
				panic(OpAborted{Reason: "deadline exceeded"})
			}
		}
	}
}

// allocNodePar returns a fresh arena slot for a parallel worker: private
// chunk first, then a chunk carved off the global free list, then a chunk of
// virgin slots claimed by CAS on the arena cursor, and as a last resort a
// stop-the-world garbage collection or arena growth.
func (m *Manager) allocNodePar(w *parWorker) int32 {
	w.checkpoint()
	m.checkLimitsPar(w)
	for {
		if n := len(w.chunk); n > 0 {
			idx := w.chunk[n-1]
			w.chunk = w.chunk[:n-1]
			return idx
		}
		e := m.par
		e.freeMu.Lock()
		for len(w.chunk) < allocChunk && m.free != nilIndex {
			idx := m.free
			m.free = m.nodes[idx].next
			w.chunk = append(w.chunk, idx)
		}
		e.freeMu.Unlock()
		if len(w.chunk) > 0 {
			continue
		}
		claimed := false
		for {
			used := atomic.LoadInt64(&m.nodesUsed)
			limit := int64(len(m.nodes))
			if used >= limit {
				break
			}
			n := int64(allocChunk)
			if used+n > limit {
				n = limit - used
			}
			if atomic.CompareAndSwapInt64(&m.nodesUsed, used, used+n) {
				for i := used; i < used+n; i++ {
					w.chunk = append(w.chunk, int32(i))
				}
				claimed = true
				break
			}
		}
		if claimed {
			continue
		}
		// Arena exhausted: stop the world, then collect or grow. Another
		// worker may have resolved the pressure while we waited.
		e.stopTheWorldSynced(m, true, stwAlloc, func() {
			if atomic.LoadInt64(&m.nodesUsed) < int64(len(m.nodes)) || m.free != nilIndex {
				return
			}
			if m.deadCount > 2048 && float64(m.deadCount) > m.gcFraction*float64(len(m.nodes)) {
				m.gc(true)
			}
			if m.free == nilIndex && m.nodesUsed == int64(len(m.nodes)) {
				m.growArena()
			}
		})
	}
}

// putBackSlot returns an unused slot claimed by a lost insertion race. The
// slot was never published, so plain writes suffice; the free-slot stamp
// (level -1, ref 0) keeps diagnostics from mistaking it for a live node.
func (w *parWorker) putBackSlot(idx int32) {
	n := &w.m.nodes[idx]
	n.level = -1
	n.ref = 0
	w.chunk = append(w.chunk, idx)
}

// makeNodePar is makeNode under per-level locking: probe under the level
// mutex, allocate outside it, re-probe and publish under it again (the
// insertion race loser returns its slot to the private chunk).
func (m *Manager) makeNodePar(w *parWorker, level int32, hi, lo Ref) Ref {
	if hi == lo {
		return m.refPar(hi)
	}
	complement := hi.IsComplement()
	if complement {
		hi ^= 1
		lo ^= 1
	}
	w.stats.UniqueLookups++
	e := m.par
	mu := &e.tableMu[level]
	if w.sampled() {
		t0 := time.Now()
		mu.Lock()
		ns := time.Since(t0).Nanoseconds()
		w.telem.uniqueWait.observe(ns)
		if heat := *e.levelHeat.Load(); int(level) < len(heat) {
			heat[level].bump(ns)
		}
	} else {
		mu.Lock()
	}
	st := &m.subtables[level]
	b := hash3(level, hi, lo) & st.mask
	for idx := st.buckets[b]; idx != nilIndex; idx = m.nodes[idx].next {
		n := &m.nodes[idx]
		if n.hi == hi && n.lo == lo {
			mu.Unlock()
			w.stats.UniqueHits++
			m.refParIndex(idx)
			return makeRef(idx, complement)
		}
	}
	mu.Unlock()
	idx := m.allocNodePar(w) // safe point: may stop the world
	n := &m.nodes[idx]
	n.level = level
	n.hi = hi
	n.lo = lo
	n.next = nilIndex
	atomic.StoreInt32(&n.ref, 1)
	mu.Lock()
	st = &m.subtables[level]
	b = hash3(level, hi, lo) & st.mask
	chain := 0
	for probe := st.buckets[b]; probe != nilIndex; probe = m.nodes[probe].next {
		chain++
		pn := &m.nodes[probe]
		if pn.hi == hi && pn.lo == lo {
			mu.Unlock()
			w.putBackSlot(idx)
			w.stats.UniqueHits++
			m.refParIndex(probe)
			return makeRef(probe, complement)
		}
	}
	n.next = st.buckets[b]
	st.buckets[b] = idx
	st.count++
	if st.count > loadFactor*len(st.buckets) ||
		(chain >= longChain && 2*st.count > len(st.buckets)) {
		w.stats.UniqueGrows++
		m.growSubtable(level)
	}
	mu.Unlock()
	e.liveDelta.Add(1)
	e.bumpPeak()
	m.refChildPar(hi)
	m.refChildPar(lo)
	return makeRef(idx, complement)
}

// refChildPar adds the reference a freshly published parent holds on child.
func (m *Manager) refChildPar(child Ref) {
	n := &m.nodes[child.index()]
	for {
		old := atomic.LoadInt32(&n.ref)
		if old == refSaturated {
			return
		}
		if atomic.CompareAndSwapInt32(&n.ref, old, old+1) {
			return
		}
	}
}

// cacheStripe returns the lock covering a set.
func (e *parEngine) cacheStripe(set uint32) *padMutex {
	return &e.cacheMu[set&(cacheStripes-1)]
}

// cacheLookupPar probes the computed table under the set's stripe lock. A
// hit result may be dead; callers revive it (refPar) while still holding
// the memory lease. w may be nil (workerless callers); stats then go to the
// engine's atomic side counters.
func (m *Manager) cacheLookupPar(w *parWorker, op uint32, a, b, c Ref) (Ref, bool) {
	e := m.par
	if w != nil {
		w.stats.CacheLookups++
	} else {
		e.extraCacheLooks.Add(1)
	}
	cc := &m.cache
	set := cacheHash(op, a, b, c) & cc.setMask
	base := set * cacheWays
	mu := e.cacheStripe(set)
	if w != nil && w.sampled() {
		t0 := time.Now()
		mu.Lock()
		ns := time.Since(t0).Nanoseconds()
		w.telem.cacheWait.observe(ns)
		e.stripeHeat[set&(cacheStripes-1)].bump(ns)
	} else {
		mu.Lock()
	}
	for i := uint32(0); i < cacheWays; i++ {
		ent := &cc.entries[base+i]
		if ent.op == op && ent.a == a && ent.b == b && ent.c == c &&
			ent.gen == cc.gen && ent.res != invalidRef {
			ent.age = e.cacheTick.Add(1)
			res := ent.res
			mu.Unlock()
			if w != nil {
				w.stats.CacheHits++
			} else {
				e.extraCacheHits.Add(1)
			}
			return res, true
		}
	}
	mu.Unlock()
	return invalidRef, false
}

// cacheInsertPar records a result under the set's stripe lock. Epoch
// closing is deferred to operation exit (maybeCacheEpochPar).
func (m *Manager) cacheInsertPar(w *parWorker, op uint32, a, b, c Ref, res Ref) {
	e := m.par
	cc := &m.cache
	set := cacheHash(op, a, b, c) & cc.setMask
	base := set * cacheWays
	mu := e.cacheStripe(set)
	mu.Lock()
	var free, oldest, match *cacheEntry
	for i := uint32(0); i < cacheWays; i++ {
		ent := &cc.entries[base+i]
		if ent.res == invalidRef || ent.gen != cc.gen {
			if free == nil {
				free = ent
			}
			continue
		}
		if ent.op == op && ent.a == a && ent.b == b && ent.c == c {
			match = ent
			break
		}
		if oldest == nil || ent.age < oldest.age {
			oldest = ent
		}
	}
	slot := match
	evicted := false
	if slot == nil {
		slot = free
	}
	if slot == nil {
		slot = oldest
		evicted = true
	}
	*slot = cacheEntry{a: a, b: b, c: c, op: op, res: res, gen: cc.gen, age: e.cacheTick.Add(1)}
	mu.Unlock()
	if w != nil {
		w.stats.CacheInserts++
		if evicted {
			w.stats.CacheEvictions++
		}
	} else {
		e.extraCacheIns.Add(1)
		if evicted {
			e.extraCacheEvicts.Add(1)
		}
	}
}
