package bdd

// Window permutation reordering (Fujita / Ishiura; the companion to
// sifting in CUDD): slide a window of adjacent levels across the order and
// exhaustively try every permutation of the variables inside the window,
// keeping the best. Complements sifting, which moves a single variable
// globally; windows optimize local clusters.

// ReorderWindow3 runs window permutation with window size 3 across all
// levels, repeating while it improves. It is invoked through Reorder.
const ReorderWindow3 ReorderMethod = 100

// windowPass slides a 3-window over every level once; returns true if any
// window improved the size.
func (m *Manager) windowPass() bool {
	improved := false
	n := len(m.subtables)
	for lev := 0; lev+2 < n; lev++ {
		if m.window3(lev) {
			improved = true
		}
	}
	return improved
}

// window3 exhaustively permutes the three variables at lev..lev+2 and
// keeps the best arrangement. All six permutations are reachable through
// a fixed sequence of adjacent swaps (the classic "bubble" walk):
//
//	abc -s0-> bac -s1-> bca -s0-> cba -s1-> cab -s0-> acb -s1-> abc
//
// After the walk the order is restored; the best prefix of the walk is
// then replayed.
func (m *Manager) window3(lev int) bool {
	s0 := lev     // swap levels lev, lev+1
	s1 := lev + 1 // swap levels lev+1, lev+2
	walk := [6]int{s0, s1, s0, s1, s0, s1}
	bestSize := m.liveCount
	bestStep := -1 // -1 = original arrangement
	for i, s := range walk[:5] {
		size := m.swapInPlace(s)
		if size < bestSize {
			bestSize = size
			bestStep = i
		}
	}
	// Final swap returns to the original arrangement.
	m.swapInPlace(walk[5])
	if bestStep < 0 {
		return false
	}
	for _, s := range walk[:bestStep+1] {
		m.swapInPlace(s)
	}
	return true
}
