package bdd

import (
	"fmt"
	"sort"
	"time"
)

// Dynamic variable reordering by sifting (Rudell, ICCAD'93), built on an
// in-place swap of adjacent levels. External Refs remain valid across
// reordering: a node keeps its arena index and denotes the same function;
// only levels, subtable membership, and (for nodes that interact with the
// swapped variable) children change.
//
// The Table 1 experiments of the paper run with dynamic reordering always
// on; clients get the same effect by enabling auto-reordering, which
// triggers at the entry of node-creating operations once the live node
// count crosses a threshold.

// ReorderMethod selects a reordering algorithm.
type ReorderMethod int

const (
	// ReorderSift sifts each variable (most populous first) to its
	// locally optimal level.
	ReorderSift ReorderMethod = iota
	// ReorderSiftConverge repeats sifting until no improvement.
	ReorderSiftConverge
)

// SiftConfig bounds the work done by one sifting pass.
type SiftConfig struct {
	// MaxVars bounds how many variables are sifted (0 = all).
	MaxVars int
	// MaxGrowth aborts a directional sweep when the size exceeds
	// MaxGrowth times the size at the start of the variable's sift
	// (0 = use the manager default).
	MaxGrowth float64
}

// EnableAutoReorder arms automatic sifting: whenever a node-creating
// operation starts and the live node count exceeds threshold, the manager
// sifts and doubles the threshold. Refs held by callers stay valid.
func (m *Manager) EnableAutoReorder(threshold int) {
	m.exclusive(func() {
		if threshold > 0 {
			m.reorderThreshold = threshold
		}
		m.autoReorder = true
		m.syncReorderMirrors()
	})
}

// DisableAutoReorder turns automatic sifting off.
func (m *Manager) DisableAutoReorder() {
	m.exclusive(func() {
		m.autoReorder = false
		m.syncReorderMirrors()
	})
}

// PauseAutoReorder disables automatic sifting and returns a function that
// restores the previous setting. Algorithms that hold a structural view of
// a BDD across operation calls (the approximation and decomposition passes)
// must pause reordering, because an in-place swap rewrites node children
// under them.
func (m *Manager) PauseAutoReorder() (restore func()) {
	var prev bool
	m.exclusive(func() {
		prev = m.autoReorder
		m.autoReorder = false
		m.syncReorderMirrors()
	})
	return func() {
		m.exclusive(func() {
			m.autoReorder = prev
			m.syncReorderMirrors()
		})
	}
}

// syncReorderMirrors re-publishes the reordering tunables into the parallel
// engine's pre-lease atomics. Callers own a quiescent manager.
func (m *Manager) syncReorderMirrors() {
	if m.par == nil {
		return
	}
	m.par.autoReorderA.Store(m.autoReorder)
	m.par.reorderThresholdA.Store(int64(m.reorderThreshold))
}

// autoSiftMaxVars bounds how many variables one automatic sifting pass
// examines: unbounded sifting on a very large table can dwarf the work it
// saves (CUDD bounds automatic sifting the same way).
const autoSiftMaxVars = 64

// maybeReorder is called at the entry of public node-creating operations
// (serial path; parallel operations use parMaybeReorder).
func (m *Manager) maybeReorder() {
	if m.autoReorder && m.liveCount > m.reorderThreshold {
		m.reorderNow(ReorderSift, SiftConfig{MaxVars: autoSiftMaxVars})
		next := 2 * m.liveCount
		if next < m.reorderThreshold {
			next = m.reorderThreshold
		}
		m.reorderThreshold = next
	}
}

// Reorder runs the given reordering method now. It returns the live node
// count after reordering. On a parallel manager the pass waits for every
// in-flight operation to finish and runs with the manager to itself.
func (m *Manager) Reorder(method ReorderMethod, cfg SiftConfig) int {
	var n int
	m.exclusiveCause(stwReorder, func() { n = m.reorderNow(method, cfg) })
	return n
}

// reorderNow is the reordering body; callers own a quiescent manager.
func (m *Manager) reorderNow(method ReorderMethod, cfg SiftConfig) int {
	if cfg.MaxGrowth <= 1 {
		cfg.MaxGrowth = m.maxGrowth
	}
	start := time.Now()
	before := m.liveCount
	// Reordering must not race a garbage collection triggered by its own
	// makeNode calls: sweep first, then forbid GC for the duration. The
	// cache is not swept here — swapInPlace rewrites children and frees
	// nodes without cache maintenance, so the whole table is invalidated
	// at the end with an O(1) generation bump instead.
	m.gc(false)
	m.noGC = true
	defer func() { m.noGC = false }()

	switch method {
	case ReorderSift:
		m.siftAll(cfg)
	case ReorderSiftConverge:
		prev := m.liveCount
		for {
			m.siftAll(cfg)
			if m.liveCount >= prev {
				break
			}
			prev = m.liveCount
		}
	case ReorderWindow3:
		for m.windowPass() {
		}
	case ReorderExact:
		m.exactReorder()
	}
	// Sweep the dead left behind by the swaps, then invalidate every
	// cached result at once: node children were rewritten in place, so no
	// pre-reorder entry can be trusted. The generation bump costs O(1);
	// no walk over the cache happens on this path.
	saved := m.noGC
	m.noGC = false
	m.gc(false)
	m.noGC = saved
	m.cache.invalidateAll()
	m.stats.CacheGenerations++
	m.stats.Reorderings++
	dur := time.Since(start)
	m.stats.ReorderTime += dur
	if observer != nil {
		observer.Reorder(before, m.liveCount, dur)
	}
	return m.liveCount
}

// SetOrder rearranges the variable order so that order[lev] is the
// variable index sitting at level lev afterwards. order must be a
// permutation of 0..NumVars-1. External Refs remain valid, exactly as
// under Reorder; the computed cache is wholesale-invalidated at the end.
// Differential tests use this to reload a saved forest under a
// deliberately different order; clients can use it to restore a known
// good order.
func (m *Manager) SetOrder(order []int) error {
	var err error
	m.exclusiveCause(stwReorder, func() { err = m.setOrderNow(order) })
	return err
}

// setOrderNow is the SetOrder body; callers own a quiescent manager.
func (m *Manager) setOrderNow(order []int) error {
	if len(order) != len(m.vars) {
		return fmt.Errorf("bdd: SetOrder: %d entries for %d variables", len(order), len(m.vars))
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			return fmt.Errorf("bdd: SetOrder: not a permutation of 0..%d", len(order)-1)
		}
		seen[v] = true
	}
	start := time.Now()
	before := m.liveCount
	m.gc(false)
	m.noGC = true
	defer func() { m.noGC = false }()
	// Fix levels top-down: bubble each target variable up to its slot
	// with adjacent swaps (levels above lev are already final).
	for lev := 0; lev < len(order); lev++ {
		for cur := int(m.varToLev[order[lev]]); cur > lev; cur-- {
			m.swapInPlace(cur - 1)
		}
	}
	saved := m.noGC
	m.noGC = false
	m.gc(false)
	m.noGC = saved
	m.cache.invalidateAll()
	m.stats.CacheGenerations++
	m.stats.Reorderings++
	dur := time.Since(start)
	m.stats.ReorderTime += dur
	if observer != nil {
		observer.Reorder(before, m.liveCount, dur)
	}
	return nil
}

// GarbageCollectDeferred sweeps dead nodes even while noGC blocks
// collection inside allocation; used when the table is consistent again
// after a pass that suspended collection.
func (m *Manager) GarbageCollectDeferred() {
	m.exclusiveCause(stwGC, func() {
		saved := m.noGC
		m.noGC = false
		m.gc(true)
		m.noGC = saved
	})
}

// siftAll sifts variables in decreasing order of subtable population.
func (m *Manager) siftAll(cfg SiftConfig) {
	n := len(m.vars)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa := m.subtables[m.varToLev[order[a]]].count
		sb := m.subtables[m.varToLev[order[b]]].count
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	limit := n
	if cfg.MaxVars > 0 && cfg.MaxVars < limit {
		limit = cfg.MaxVars
	}
	for i := 0; i < limit; i++ {
		m.siftVar(order[i], cfg.MaxGrowth)
	}
}

// siftVar moves variable v through the order, first toward the closer end,
// then all the way to the other end, and finally parks it at the best level
// seen.
func (m *Manager) siftVar(v int, maxGrowth float64) {
	start := int(m.varToLev[v])
	n := len(m.subtables)
	bestSize := m.liveCount
	bestLev := start
	bound := int(maxGrowth * float64(m.liveCount))

	down := func() {
		for int(m.varToLev[v]) < n-1 {
			size := m.swapInPlace(int(m.varToLev[v]))
			if size < bestSize {
				bestSize = size
				bestLev = int(m.varToLev[v])
			}
			if size > bound {
				break
			}
		}
	}
	up := func() {
		for m.varToLev[v] > 0 {
			size := m.swapInPlace(int(m.varToLev[v]) - 1)
			if size < bestSize {
				bestSize = size
				bestLev = int(m.varToLev[v])
			}
			if size > bound {
				break
			}
		}
	}
	// Go to the closer end first to halve the expected swap count.
	if start <= n-1-start {
		up()
		down()
	} else {
		down()
		up()
	}
	// Park at the best level.
	for int(m.varToLev[v]) < bestLev {
		m.swapInPlace(int(m.varToLev[v]))
	}
	for int(m.varToLev[v]) > bestLev {
		m.swapInPlace(int(m.varToLev[v]) - 1)
	}
}

// swapInPlace exchanges the variables at levels lev and lev+1 and returns
// the live node count afterwards. All Refs keep denoting the same
// functions.
func (m *Manager) swapInPlace(lev int) int {
	l0, l1 := int32(lev), int32(lev+1)
	m.sweepDeadAtLevel(l0)
	m.sweepDeadAtLevel(l1)

	stX := &m.subtables[l0]
	stY := &m.subtables[l1]

	// Detach every x node (level lev) and y node (level lev+1). The y
	// nodes must be invisible to the unique-table lookups performed while
	// rewriting, because new x-labeled nodes are created at level lev+1.
	xs := m.detachAll(stX)
	ys := m.detachAll(stY)

	// Non-interacting x nodes move down to level lev+1 unchanged.
	var rewrite []int32
	for _, idx := range xs {
		n := &m.nodes[idx]
		if m.nodes[n.hi.index()].level == l1 || m.nodes[n.lo.index()].level == l1 {
			rewrite = append(rewrite, idx)
		} else {
			n.level = l1
			m.insertNode(stY, l1, idx)
		}
	}

	// Rewrite interacting x nodes in place: they become y-labeled nodes
	// at level lev whose children are (possibly fresh) x-labeled nodes at
	// level lev+1.
	for _, idx := range rewrite {
		hi, lo := m.nodes[idx].hi, m.nodes[idx].lo
		var f11, f10, f01, f00 Ref
		if m.nodes[hi.index()].level == l1 {
			f11, f10 = m.nodes[hi.index()].hi, m.nodes[hi.index()].lo
		} else {
			f11, f10 = hi, hi
		}
		if m.nodes[lo.index()].level == l1 {
			c := lo & 1
			f01, f00 = m.nodes[lo.index()].hi^c, m.nodes[lo.index()].lo^c
		} else {
			f01, f00 = lo, lo
		}
		// f11 and f01-reachability keep the grandchildren alive through
		// hi and lo until the new children hold them.
		newHi := m.makeNode(l1, f11, f01)
		newLo := m.makeNode(l1, f10, f00)
		// The then edge of the rewritten node must stay regular; f11 is
		// regular (then edges are never complemented), so newHi is too.
		if newHi.IsComplement() {
			panic("bdd: swapInPlace produced complemented then edge")
		}
		// The node pointer must be taken only now: makeNode may have
		// grown the arena, invalidating earlier pointers into it.
		n := &m.nodes[idx]
		n.hi = newHi
		n.lo = newLo
		// Release the parental references on the old children; cascades
		// may kill detached y nodes or deeper nodes, which is fine.
		m.derefIndex(hi.index())
		m.derefIndex(lo.index())
		m.insertNode(stX, l0, idx)
	}

	// Surviving y nodes move up to level lev; dead ones are freed. On a
	// parallel manager a dead node still holds its child references
	// (deferred death) — drop them now, since the slot is going away.
	freed := 0
	for _, idx := range ys {
		if m.nodes[idx].ref == 0 {
			if m.par != nil {
				m.dropChildRefs(idx)
			}
			n := &m.nodes[idx]
			n.next = m.free
			n.level = -1
			m.free = idx
			freed++
			continue
		}
		n := &m.nodes[idx]
		n.level = l0
		m.insertNode(stX, l0, idx)
	}
	m.deadCount -= freed

	// Swap the order bookkeeping.
	vx, vy := m.levToVar[l0], m.levToVar[l1]
	m.levToVar[l0], m.levToVar[l1] = vy, vx
	m.varToLev[vx], m.varToLev[vy] = l1, l0
	return m.liveCount
}

// sweepDeadAtLevel removes dead nodes from one subtable and frees them
// (dropping the child references parallel-dead nodes still hold).
func (m *Manager) sweepDeadAtLevel(lev int32) {
	st := &m.subtables[lev]
	freed := 0
	for b, head := range st.buckets {
		var keep int32 = nilIndex
		for idx := head; idx != nilIndex; {
			next := m.nodes[idx].next
			if m.nodes[idx].ref == 0 {
				if m.par != nil {
					m.dropChildRefs(idx)
				}
				m.nodes[idx].next = m.free
				m.nodes[idx].level = -1
				m.free = idx
				st.count--
				freed++
			} else {
				m.nodes[idx].next = keep
				keep = idx
			}
			idx = next
		}
		st.buckets[b] = keep
	}
	m.deadCount -= freed
}

// detachAll empties a subtable and returns the indices it contained.
func (m *Manager) detachAll(st *subtable) []int32 {
	out := make([]int32, 0, st.count)
	for b, head := range st.buckets {
		for idx := head; idx != nilIndex; idx = m.nodes[idx].next {
			out = append(out, idx)
		}
		st.buckets[b] = nilIndex
	}
	st.count = 0
	return out
}

// insertNode hashes an existing node into a subtable.
func (m *Manager) insertNode(st *subtable, lev int32, idx int32) {
	n := &m.nodes[idx]
	b := hash3(lev, n.hi, n.lo) & st.mask
	n.next = st.buckets[b]
	st.buckets[b] = idx
	st.count++
	if st.count > loadFactor*len(st.buckets) {
		m.stats.UniqueGrows++
		m.growSubtable(lev)
	}
}
