package bdd

// Exact variable ordering for small managers: enumerate every permutation
// of the levels with the Steinhaus–Johnson–Trotter sequence, whose steps
// are single adjacent transpositions — exactly what swapInPlace provides —
// and park the order at the global minimum. Cost is n!·(swap cost), so it
// is gated to small variable counts; its role here is as the ground truth
// the sifting heuristic is tested against.

// ReorderExact selects exact minimization (variable counts up to
// ExactReorderMaxVars; larger managers fall back to converging sifting).
const ReorderExact ReorderMethod = 101

// ExactReorderMaxVars bounds exact reordering (9! = 362880 swaps).
const ExactReorderMaxVars = 9

func (m *Manager) exactReorder() {
	n := len(m.subtables)
	if n > ExactReorderMaxVars {
		prev := m.liveCount
		for {
			m.siftAll(SiftConfig{MaxGrowth: m.maxGrowth})
			if m.liveCount >= prev {
				return
			}
			prev = m.liveCount
		}
	}
	if n < 2 {
		return
	}
	// Steinhaus–Johnson–Trotter with directions: perm tracks element
	// positions abstractly; every emitted step is the level index of an
	// adjacent transposition applied to the manager.
	perm := make([]int, n) // perm[pos] = element id
	dir := make([]int, n)  // -1 left, +1 right, per element id
	pos := make([]int, n)  // pos[element] = position
	for i := range perm {
		perm[i] = i
		pos[i] = i
		dir[i] = -1
	}
	bestSize := m.liveCount
	bestStep := -1
	var seq []int
	for {
		// Find the largest mobile element.
		mobile := -1
		for e := n - 1; e >= 0; e-- {
			p := pos[e]
			q := p + dir[e]
			if q < 0 || q >= n {
				continue
			}
			if perm[q] < e {
				mobile = e
				break
			}
		}
		if mobile < 0 {
			break
		}
		p := pos[mobile]
		q := p + dir[mobile]
		lev := p
		if q < p {
			lev = q
		}
		size := m.swapInPlace(lev)
		seq = append(seq, lev)
		// Update the abstract permutation.
		other := perm[q]
		perm[p], perm[q] = perm[q], perm[p]
		pos[mobile], pos[other] = q, p
		if size < bestSize {
			bestSize = size
			bestStep = len(seq) - 1
		}
		// Reverse the direction of all elements larger than mobile.
		for e := mobile + 1; e < n; e++ {
			dir[e] = -dir[e]
		}
	}
	// Walk back from the final permutation to the best one: adjacent
	// transpositions are self-inverse, so undoing the tail of the
	// sequence in reverse order restores the best arrangement.
	for i := len(seq) - 1; i > bestStep; i-- {
		m.swapInPlace(seq[i])
	}
}
