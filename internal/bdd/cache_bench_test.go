package bdd

import (
	"math/rand"
	"testing"
)

// BenchmarkCacheChurn exercises the computed table under the workload the
// selective GC sweep is designed for: a working set of conjunctions
// recomputed over and over while garbage collections fire between rounds.
// With wholesale invalidation every GC forced a full recomputation of the
// working set; with the selective sweep the surviving entries keep the
// recomputation rounds cheap.
func BenchmarkCacheChurn(b *testing.B) {
	const nVars = 24
	cfg := DefaultConfig()
	cfg.CacheBits = 10 // small enough that aging and eviction matter
	cfg.CacheMaxBits = 14
	m := NewWithConfig(nVars, cfg)
	rng := rand.New(rand.NewSource(7))

	// A pool of live random functions; the hot working set. Each is a
	// random expression over the variables (cheap to build, unlike a
	// minterm enumeration, and structurally diverse).
	pool := make([]Ref, 32)
	for i := range pool {
		pool[i] = randomExpr(m, rng, nVars, 12)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One round of pairwise conjunctions: mostly repeat work that the
		// cache should absorb, plus dead temporaries that pile up.
		for j := 0; j+1 < len(pool); j++ {
			r := m.And(pool[j], pool[j+1])
			m.Deref(r)
		}
		if i%8 == 7 {
			m.GarbageCollect()
		}
	}
	b.StopTimer()
	s := m.CacheStats()
	if s.Lookups > 0 {
		b.ReportMetric(100*float64(s.Hits)/float64(s.Lookups), "hit%")
	}
}

// randomExpr builds a random function by folding random literals into an
// accumulator with random connectives.
func randomExpr(m *Manager, rng *rand.Rand, nVars, steps int) Ref {
	acc := m.Ref(m.IthVar(rng.Intn(nVars)))
	for i := 0; i < steps; i++ {
		lit := m.IthVar(rng.Intn(nVars))
		if rng.Intn(2) == 0 {
			lit = lit.Complement()
		}
		var next Ref
		switch rng.Intn(3) {
		case 0:
			next = m.And(acc, lit)
		case 1:
			next = m.Or(acc, lit)
		default:
			next = m.Xor(acc, lit)
		}
		m.Deref(acc)
		acc = next
	}
	return acc
}

// BenchmarkUniqueTable stresses makeNode with fresh-node-heavy work: parity
// functions over rotating variable windows never repeat, so nearly every
// level-by-level construction probes and inserts into the unique table,
// measuring hash-chain behavior and the chain-aware growth policy.
func BenchmarkUniqueTable(b *testing.B) {
	const (
		nVars  = 64
		window = 20
	)
	m := New(nVars)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// XOR chain over a rotating window, alternating polarity by round
		// so consecutive iterations build distinct node cohorts.
		start := i % (nVars - window)
		acc := m.Ref(Zero)
		if i&1 == 1 {
			acc = m.Ref(One)
		}
		for v := start; v < start+window; v++ {
			next := m.Xor(acc, m.IthVar(v))
			m.Deref(acc)
			acc = next
		}
		m.Deref(acc)
	}
	b.StopTimer()
	s := m.UniqueStats()
	if s.Lookups > 0 {
		b.ReportMetric(float64(s.MaxChain), "maxchain")
	}
}
