package bdd

import (
	"sync"
	"testing"
)

// probe: readLocked traversal vs stop-the-world growArena.
func TestProbeReadLockedVsGrow(t *testing.T) {
	m := NewWithConfig(24, Config{InitialNodes: 256, Workers: 4})
	// a stable function to traverse
	f := m.And(m.vars[0], m.vars[1])
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.SupportVars(f)
			m.DagSize(f)
		}
	}()
	// builder: force many allocations -> growArena
	g := m.Ref(One)
	for i := 0; i < 24; i++ {
		ng := m.Xor(g, m.vars[i])
		h := m.And(ng, m.vars[(i+5)%24])
		m.Deref(h)
		m.Deref(g)
		g = ng
	}
	for r := 0; r < 200; r++ {
		a := m.Xor(g, m.vars[r%24])
		b := m.And(a, m.vars[(r+7)%24])
		c := m.ITE(a, b, g)
		m.Deref(c)
		m.Deref(b)
		m.Deref(a)
	}
	close(stop)
	wg.Wait()
}
