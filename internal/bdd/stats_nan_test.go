package bdd

import (
	"math"
	"strings"
	"testing"
)

// Regression: CacheStats on a freshly created manager (zero computed-table
// lookups) must report a zero hit rate, not NaN, and every epoch rate must
// be finite.
func TestCacheStatsZeroLookupsNoNaN(t *testing.T) {
	m := New(4)
	s := m.CacheStats()
	if s.Lookups != 0 {
		t.Fatalf("fresh manager reports %d cache lookups, want 0", s.Lookups)
	}
	if math.IsNaN(s.HitRate) || math.IsInf(s.HitRate, 0) {
		t.Fatalf("hit rate on zero lookups = %v, want 0", s.HitRate)
	}
	if s.HitRate != 0 {
		t.Fatalf("hit rate on zero lookups = %v, want 0", s.HitRate)
	}
	if out := s.String(); strings.Contains(out, "NaN") {
		t.Fatalf("CacheStats.String contains NaN:\n%s", out)
	}
	for i, r := range s.EpochHitRates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("epoch %d hit rate = %v", i, r)
		}
	}
}

// PeakLive must track the high-water mark of live nodes, surviving both
// Deref and garbage collection.
func TestPeakLiveHighWaterMark(t *testing.T) {
	m := New(8)
	var f Ref = One
	for i := 0; i < 8; i++ {
		nf := m.And(f, m.IthVar(i))
		m.Deref(f)
		f = nf
	}
	peakAt := m.Stats().PeakLive
	if peakAt < m.NodeCount() {
		t.Fatalf("PeakLive %d < live %d", peakAt, m.NodeCount())
	}
	m.Deref(f)
	m.GarbageCollect()
	if got := m.Stats().PeakLive; got != peakAt {
		t.Fatalf("PeakLive changed across GC: %d -> %d", peakAt, got)
	}
}

// PeakITEDepth must grow with the depth of the ITE recursion.
func TestPeakITEDepth(t *testing.T) {
	m := New(12)
	// Three functions over interleaved variables so no terminal shortcut
	// fires and the ITE recursion descends through several levels.
	f := m.Xor(m.IthVar(0), m.IthVar(3))
	g := m.And(m.IthVar(1), m.IthVar(4))
	h := m.Or(m.IthVar(2), m.IthVar(5))
	r := m.ITE(f, g, h)
	if d := m.Stats().PeakITEDepth; d < 2 {
		t.Fatalf("PeakITEDepth = %d, want >= 2", d)
	}
	m.Deref(f)
	m.Deref(g)
	m.Deref(h)
	m.Deref(r)
}
