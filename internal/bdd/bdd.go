// Package bdd implements Reduced Ordered Binary Decision Diagrams (ROBDDs)
// with complement arcs, in the style of the CUDD package that the DAC'98
// paper "Approximation and Decomposition of Binary Decision Diagrams"
// (Ravi, McMillan, Shiple, Somenzi) builds on.
//
// The package provides:
//
//   - A Manager holding a node arena, per-level unique subtables, a computed
//     (operation) cache, reference counting with deferred garbage
//     collection, and dynamic variable reordering by sifting.
//   - The classic operations: ITE, AND/OR/XOR and friends, existential and
//     universal quantification, the relational product (AndExists),
//     generalized cofactors (Constrain, Restrict), composition, variable
//     permutation, minterm and path counting, satisfying-assignment
//     extraction, and structural introspection used by the approximation
//     and decomposition algorithms built on top.
//
// Functions are identified by Ref handles. A Ref packs a node index and a
// complement bit; negation is therefore O(1) and the diagram for f and ¬f is
// shared. The canonical form follows CUDD: the "then" (high) edge of a node
// is never complemented, complementation appears only on "else" edges and on
// external references.
//
// Reference counting follows the CUDD discipline: operations return a Ref
// whose reference count has already been incremented on behalf of the
// caller, and the caller releases it with Manager.Deref when done. Nodes
// whose count drops to zero become dead but remain valid (and resurrectable)
// until the manager decides to garbage collect, which only happens inside
// allocation or when explicitly requested.
package bdd

import (
	"fmt"
	"math"
	"time"
)

// Ref is a handle to a BDD function: a node index shifted left by one, with
// the complement flag in bit 0. The zero value is the constant function One.
type Ref uint32

// Terminal and sentinel references.
const (
	// One is the constant true function (the single terminal node).
	One Ref = 0
	// Zero is the constant false function (the complement of One).
	Zero Ref = 1
	// invalidRef marks "no value" slots in caches.
	invalidRef Ref = math.MaxUint32
)

const (
	// terminalLevel orders the constant node below every variable.
	terminalLevel = int32(math.MaxInt32)
	// refSaturated is the reference count at which a node becomes
	// permanent: saturated counts are never decremented again.
	refSaturated = math.MaxInt32
	// nilIndex terminates unique-table hash chains and the free list.
	nilIndex = int32(-1)
)

// node is one vertex of the shared DAG. The then edge (hi) is never
// complemented; the else edge (lo) may be. next chains nodes within a
// unique-subtable bucket and doubles as the free-list link for dead nodes
// that have been reclaimed.
type node struct {
	level int32 // position of the node's variable in the current order
	hi    Ref   // then child (regular, never complemented)
	lo    Ref   // else child (possibly complemented)
	next  int32 // unique-table chain / free-list link
	ref   int32 // reference count (0 = dead but resurrectable)
}

// Complement returns the negation of f. With complement arcs this is free.
func (f Ref) Complement() Ref { return f ^ 1 }

// IsComplement reports whether f is a complemented reference.
func (f Ref) IsComplement() bool { return f&1 != 0 }

// Regular returns f with the complement bit cleared.
func (f Ref) Regular() Ref { return f &^ 1 }

// index returns the arena index of the node f points to.
func (f Ref) index() int32 { return int32(f >> 1) }

// IsConstant reports whether f is One or Zero.
func (f Ref) IsConstant() bool { return f.Regular() == One }

// ID returns a stable identifier for the node f points to, shared by f and
// its complement. Client algorithms use it to key per-node side tables.
// IDs remain stable across reordering but may be recycled after a node is
// garbage collected, so side tables must not outlive the functions they
// describe.
func (f Ref) ID() uint32 { return uint32(f.index()) }

// makeRef assembles a Ref from an arena index and a complement flag.
func makeRef(idx int32, complement bool) Ref {
	r := Ref(idx) << 1
	if complement {
		r |= 1
	}
	return r
}

// Config collects the tunables of a Manager. The zero value selects
// reasonable defaults via DefaultConfig.
type Config struct {
	// InitialNodes sizes the node arena at startup.
	InitialNodes int
	// CacheBits sets the initial computed-table size to 1<<CacheBits
	// entries.
	CacheBits uint
	// CacheMaxBits caps the computed table's adaptive growth at
	// 1<<CacheMaxBits entries; the table doubles when a resize epoch
	// sustains a high hit rate under heavy insert traffic. Zero selects
	// the default ceiling; a nonzero value at or below CacheBits pins the
	// cache at its initial size.
	CacheMaxBits uint
	// GCFraction triggers garbage collection when dead nodes exceed this
	// fraction of the arena (checked on allocation pressure).
	GCFraction float64
	// MaxGrowth bounds how much the arena may grow between reorderings
	// when automatic reordering is enabled.
	MaxGrowth float64
	// Workers sets how many OS threads operations may use. 1 runs the
	// original serial engine (bit-identical behaviour, the differential
	// oracle's reference); larger values enable the lock-striped parallel
	// engine and work-stealing Apply/ITE. Zero selects the package default
	// (see SetDefaultWorkers), which starts at 1; set it to
	// runtime.GOMAXPROCS(0) to use every core.
	Workers int
}

// DefaultConfig returns the default Manager configuration.
func DefaultConfig() Config {
	return Config{
		InitialNodes: 1 << 14,
		CacheBits:    18,
		CacheMaxBits: 22,
		GCFraction:   0.25,
		MaxGrowth:    2.0,
	}
}

// Manager owns the node arena, the unique subtables (one per variable
// level), the computed cache, and the variable order. All operations on Refs
// are methods of the Manager that created them; Refs from different
// managers must never be mixed.
type Manager struct {
	nodes     []node
	nodesUsed int64 // arena cursor: slots [0, nodesUsed) have been handed out
	free      int32 // head of the free list (chained via node.next)

	par *parEngine // nil on serial managers (Workers <= 1)

	subtables []subtable // one per level, index = level
	varToLev  []int32    // variable index -> level
	levToVar  []int32    // level -> variable index
	vars      []Ref      // variable index -> projection function (saturated)

	cache  computedCache
	userOp uint32

	deadCount  int
	liveCount  int
	gcFraction float64
	noGC       bool // blocks GC inside allocation (set during reordering)

	autoReorder      bool
	reorderThreshold int
	maxGrowth        float64

	deadline  time.Time // operation deadline (zero = none)
	allocTick int       // allocations since the last deadline check
	nodeLimit int       // live-node ceiling (0 = none)

	stats Stats
}

// subtable is the unique table for one variable level: open hashing with
// chains threaded through the node arena.
type subtable struct {
	buckets []int32
	mask    uint32
	count   int // nodes (live or dead) currently stored at this level
}

// Stats accumulates operation counters for reporting and benchmarking.
type Stats struct {
	UniqueLookups    int64 // makeNode calls
	UniqueHits       int64 // makeNode found an existing node
	UniqueGrows      int64 // unique-subtable doublings (load or chain driven)
	CacheLookups     int64 // computed-table probes
	CacheHits        int64 // computed-table hits
	CacheInserts     int64 // computed-table insertions
	CacheEvictions   int64 // live entries displaced by in-set aging
	CacheResizes     int64 // adaptive computed-table doublings
	CacheSweeps      int64 // selective invalidation passes (one per GC)
	CacheSurvived    int64 // entries preserved across selective sweeps
	CacheDropped     int64 // entries dropped by selective sweeps
	CacheGenerations int64 // O(1) wholesale invalidations (reordering)
	GCs              int64 // garbage collections
	GCNodes          int64 // nodes reclaimed by GC
	Reorderings      int64 // sifting passes
	Resurrected      int64 // dead nodes brought back by a unique-table hit

	GCTime       time.Duration // total wall time spent in garbage collection
	ReorderTime  time.Duration // total wall time spent in reordering passes
	PeakLive     int           // high-water mark of live nodes
	PeakITEDepth int           // deepest ITE recursion observed

	TasksStolen int64 // parallel subproblems executed by a different worker
	TasksLocal  int64 // forked subproblems reclaimed by their owner at join

	// Quiescence accounting on a parallel manager: write-lease /
	// stop-the-world epochs (GC, reorder, cache resize, load, ...) and the
	// total wall time the engine spent excluded (drain wait + exclusion);
	// this is the serial fraction an Amdahl breakdown attributes speedup
	// loss to. Always zero on a serial manager. Per-cause detail is in
	// Manager.ParTelemetry.
	STWCount int64
	STWTime  time.Duration
}

// New creates a Manager with numVars variables (indexed 0..numVars-1, with
// the identity order) and the default configuration.
func New(numVars int) *Manager {
	return NewWithConfig(numVars, DefaultConfig())
}

// NewWithConfig creates a Manager with numVars variables and cfg tunables.
func NewWithConfig(numVars int, cfg Config) *Manager {
	def := DefaultConfig()
	if cfg.InitialNodes <= 0 {
		cfg.InitialNodes = def.InitialNodes
	}
	if cfg.CacheBits == 0 {
		cfg.CacheBits = def.CacheBits
	}
	if cfg.CacheMaxBits == 0 {
		cfg.CacheMaxBits = def.CacheMaxBits
	}
	if cfg.GCFraction <= 0 {
		cfg.GCFraction = def.GCFraction
	}
	if cfg.MaxGrowth <= 1 {
		cfg.MaxGrowth = def.MaxGrowth
	}
	m := &Manager{
		// The arena is cursor-based: full length from the start, with
		// nodesUsed marking the first virgin slot. A fixed len==cap slice
		// never reallocates outside growArena, which parallel mode runs
		// only at stop-the-world points.
		nodes:            make([]node, cfg.InitialNodes),
		nodesUsed:        1,
		free:             nilIndex,
		gcFraction:       cfg.GCFraction,
		maxGrowth:        cfg.MaxGrowth,
		reorderThreshold: 4096,
	}
	// Node 0 is the terminal. It is permanently referenced.
	m.nodes[0] = node{level: terminalLevel, hi: One, lo: One, next: nilIndex, ref: refSaturated}
	m.cache.init(cfg.CacheBits, cfg.CacheMaxBits)
	m.liveCount = 1
	for i := 0; i < numVars; i++ {
		m.addVarS()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > 1 {
		m.par = newParEngine(m, workers)
	}
	return m
}

// NumVars returns the number of variables known to the manager.
func (m *Manager) NumVars() int { return len(m.vars) }

// AddVar appends a new variable at the bottom of the current order and
// returns its projection function. The projection function is permanently
// referenced.
func (m *Manager) AddVar() Ref {
	var v Ref
	m.exclusive(func() { v = m.addVarLocked() })
	return v
}

// addVarLocked is AddVar on a quiescent manager; it also grows the parallel
// engine's per-level lock array in step with the subtables.
func (m *Manager) addVarLocked() Ref {
	v := m.addVarS()
	if m.par != nil {
		m.par.tableMu = append(m.par.tableMu, padMutex{})
		m.par.growLevelHeat(len(m.subtables))
	}
	return v
}

// addVarS is the serial AddVar body.
func (m *Manager) addVarS() Ref {
	idx := int32(len(m.vars))
	lev := int32(len(m.subtables))
	m.subtables = append(m.subtables, newSubtable())
	m.varToLev = append(m.varToLev, lev)
	m.levToVar = append(m.levToVar, idx)
	v := m.makeNode(lev, One, Zero)
	m.nodes[v.index()].ref = refSaturated
	m.vars = append(m.vars, v)
	return v
}

// IthVar returns the projection function of variable i (created by AddVar or
// at construction time).
func (m *Manager) IthVar(i int) Ref {
	if i < 0 || i >= len(m.vars) {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, len(m.vars)))
	}
	return m.vars[i]
}

// LevelOfVar returns the current level (order position) of variable i.
func (m *Manager) LevelOfVar(i int) int { return int(m.varToLev[i]) }

// VarAtLevel returns the variable index sitting at order position lev.
func (m *Manager) VarAtLevel(lev int) int { return int(m.levToVar[lev]) }

// Level returns the level of f's top node; constants return a level larger
// than that of any variable.
func (m *Manager) Level(f Ref) int { return int(m.nodes[f.index()].level) }

// Var returns the variable index labeling f's top node. It panics on
// constants.
func (m *Manager) Var(f Ref) int {
	lev := m.nodes[f.index()].level
	if lev == terminalLevel {
		panic("bdd: Var called on constant")
	}
	return int(m.levToVar[lev])
}

// Hi returns the then-cofactor of f with respect to its own top variable,
// as a function (f's complement bit is applied). Hi of a constant panics.
func (m *Manager) Hi(f Ref) Ref {
	n := &m.nodes[f.index()]
	if n.level == terminalLevel {
		panic("bdd: Hi called on constant")
	}
	return n.hi ^ (f & 1)
}

// Lo returns the else-cofactor of f with respect to its own top variable,
// as a function (f's complement bit is applied). Lo of a constant panics.
func (m *Manager) Lo(f Ref) Ref {
	n := &m.nodes[f.index()]
	if n.level == terminalLevel {
		panic("bdd: Lo called on constant")
	}
	return n.lo ^ (f & 1)
}

// StructHi returns the raw (structural) then edge of f's node, without
// applying f's complement bit. Together with StructLo it exposes the shared
// DAG to traversal algorithms (approximation, decomposition).
func (m *Manager) StructHi(f Ref) Ref { return m.nodes[f.index()].hi }

// StructLo returns the raw (structural) else edge of f's node, without
// applying f's complement bit.
func (m *Manager) StructLo(f Ref) Ref { return m.nodes[f.index()].lo }

// Ref increments the external reference count of f and returns f. Constants
// and projection functions are permanent and unaffected.
func (m *Manager) Ref(f Ref) Ref {
	if m.par != nil {
		return m.refPublic(f)
	}
	return m.refS(f)
}

// refS is the serial Ref body; internal serial code (and exclusive sections
// on a parallel manager) must use it instead of the public dispatcher.
func (m *Manager) refS(f Ref) Ref {
	n := &m.nodes[f.index()]
	if n.ref == refSaturated {
		return f
	}
	if n.ref == 0 {
		// Resurrect a dead node the caller got from a cache or by
		// structural traversal.
		m.reclaim(f)
		return f
	}
	n.ref++
	return f
}

// Deref releases one reference to f. When the count reaches zero the node
// becomes dead: it remains structurally valid until the next garbage
// collection, and is resurrected if looked up again before that.
func (m *Manager) Deref(f Ref) {
	if m.par != nil {
		m.derefPublic(f)
		return
	}
	m.derefIndex(f.index())
}

// derefS is the serial Deref body, the counterpart of refS.
func (m *Manager) derefS(f Ref) {
	m.derefIndex(f.index())
}

func (m *Manager) derefIndex(idx int32) {
	n := &m.nodes[idx]
	if n.ref == refSaturated {
		return
	}
	if n.ref <= 0 {
		panic("bdd: Deref of unreferenced node")
	}
	n.ref--
	if n.ref == 0 && n.level != terminalLevel {
		m.deadCount++
		m.liveCount--
		if m.par != nil {
			// Parallel managers defer death uniformly: the node keeps
			// the references it holds on its children until the next
			// reconcile (see reconcileDeaths), even when the deref
			// happens in a serial exclusive section.
			e := m.par
			e.deadMu.Lock()
			e.deadPending[idx] = struct{}{}
			e.deadMu.Unlock()
			return
		}
		// Recursively release the internal references this node holds
		// on its children.
		m.derefIndex(n.hi.index())
		m.derefIndex(n.lo.index())
	}
}

// reclaim resurrects a dead node (ref count zero): it restores the
// references the node holds on its children, recursively resurrecting them
// as needed. Callers ensure the node's count becomes 1 (one new owner).
// On a parallel manager dead nodes never dropped their child references,
// so resurrection is just the count flip.
func (m *Manager) reclaim(f Ref) {
	idx := f.index()
	n := &m.nodes[idx]
	if n.ref != 0 {
		if n.ref != refSaturated {
			n.ref++
		}
		return
	}
	n.ref = 1
	m.deadCount--
	m.liveCount++
	if m.liveCount > m.stats.PeakLive {
		m.stats.PeakLive = m.liveCount
	}
	m.stats.Resurrected++
	if m.par != nil {
		e := m.par
		e.deadMu.Lock()
		delete(e.deadPending, idx)
		e.deadMu.Unlock()
		return
	}
	m.reclaim(n.hi)
	m.reclaim(n.lo)
}

// NodeCount returns the number of live (externally or internally referenced)
// nodes, including the terminal. On a parallel manager the count is
// advisory while operations are in flight (it reads atomic mirrors) and
// exact at quiescence.
func (m *Manager) NodeCount() int {
	if m.par != nil {
		return int(m.par.liveApprox())
	}
	return m.liveCount
}

// DeadCount returns the number of dead nodes awaiting collection (advisory
// on a parallel manager, like NodeCount).
func (m *Manager) DeadCount() int {
	if m.par != nil {
		return int(m.par.deadBase.Load() + m.par.deadDelta.Load())
	}
	return m.deadCount
}

// Stats returns a snapshot of the manager's operation counters. On a
// parallel manager the snapshot excludes worker-local counters of
// operations still in flight (they merge at operation exit).
func (m *Manager) Stats() Stats {
	if m.par == nil {
		return m.stats
	}
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	m.foldExtraCacheStats()
	s := m.stats
	s.TasksStolen = e.tasksStolen.Load()
	s.TasksLocal = e.tasksLocal.Load()
	s.STWCount, s.STWTime = e.stwTotals()
	if p := int(e.peakLive.Load()); p > s.PeakLive {
		s.PeakLive = p
	}
	return s
}

// checkArgs panics if any argument Ref is out of range; cheap insurance
// against cross-manager mixups in debug paths.
func (m *Manager) checkArgs(refs ...Ref) {
	for _, f := range refs {
		if int(f.index()) >= len(m.nodes) {
			panic(fmt.Sprintf("bdd: ref %d out of range", f))
		}
	}
}
