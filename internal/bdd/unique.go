package bdd

import "time"

// This file implements the unique table (one subtable per variable level),
// node allocation, and garbage collection.
//
// Reference-counting invariants:
//
//   - node.ref counts live parents (one per live parent node) plus
//     references owned by callers (taken with Manager.Ref or granted by an
//     operation's return value).
//   - A node with ref == 0 is dead. Dead nodes hold NO references on their
//     children: the references are dropped when the count reaches zero
//     (derefIndex) and restored by reclaim when the node comes back to life.
//   - makeNode requires its children to be alive (the caller owns
//     references on them) and returns a Ref carrying one reference owned by
//     the caller. Every recursive operation helper follows the same
//     convention, so freshly built results stay alive throughout and die as
//     a whole when the user releases the root.
//   - Garbage collection only runs inside allocation or on explicit
//     request; at those points everything reachable from the recursion
//     stacks is referenced, so GC is always safe.

const (
	initialBucketBits = 6
	// A subtable doubles when its population exceeds loadFactor times the
	// bucket count.
	loadFactor = 4
	// A subtable also doubles early when a makeNode probe walks a chain of
	// at least longChain nodes while the table is at least half full: the
	// chain-length tail degrades lookups well before the average load
	// does, so growth is triggered before the tail forms rather than
	// after.
	longChain = 8
)

func newSubtable() subtable {
	n := 1 << initialBucketBits
	st := subtable{buckets: make([]int32, n), mask: uint32(n - 1)}
	for i := range st.buckets {
		st.buckets[i] = nilIndex
	}
	return st
}

// hash3 mixes a level and two refs into a bucket index.
func hash3(level int32, hi, lo Ref) uint32 {
	h := uint64(uint32(level))*0x9e3779b97f4a7c15 + uint64(hi)*0xbf58476d1ce4e5b9 + uint64(lo)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

// makeNode returns the canonical node (level, hi, lo), creating it if
// needed. It implements the two ROBDD reduction rules and the
// complement-arc normalization (the then edge is never complemented).
//
// Contract: hi and lo must be alive (the caller owns references on them, or
// they are permanent). The returned Ref carries one reference owned by the
// caller.
func (m *Manager) makeNode(level int32, hi, lo Ref) Ref {
	if hi == lo {
		return m.refS(hi)
	}
	// Normalize: the then edge must be regular.
	complement := hi.IsComplement()
	if complement {
		hi ^= 1
		lo ^= 1
	}
	m.stats.UniqueLookups++
	st := &m.subtables[level]
	b := hash3(level, hi, lo) & st.mask
	chain := 0
	for idx := st.buckets[b]; idx != nilIndex; idx = m.nodes[idx].next {
		chain++
		n := &m.nodes[idx]
		if n.hi == hi && n.lo == lo {
			m.stats.UniqueHits++
			return m.refS(makeRef(idx, complement))
		}
	}
	idx := m.allocNode() // may GC; hi and lo are protected by the caller
	st = &m.subtables[level]
	b = hash3(level, hi, lo) & st.mask
	n := &m.nodes[idx]
	n.level = level
	n.hi = hi
	n.lo = lo
	n.ref = 1 // the caller's reference
	n.next = st.buckets[b]
	st.buckets[b] = idx
	st.count++
	m.liveCount++
	if m.liveCount > m.stats.PeakLive {
		m.stats.PeakLive = m.liveCount
	}
	// The new live node holds references on its children.
	m.refChild(hi)
	m.refChild(lo)
	if st.count > loadFactor*len(st.buckets) ||
		(chain >= longChain && 2*st.count > len(st.buckets)) {
		m.stats.UniqueGrows++
		m.growSubtable(level)
	}
	return makeRef(idx, complement)
}

// refAlive reports whether f's arena slot currently holds a live node.
// Freed slots are identified by the level -1 stamp set when a node goes on
// the free list. This is the cheap liveness check behind the computed
// cache's selective invalidation (cacheSweepDead).
func (m *Manager) refAlive(f Ref) bool {
	idx := f.index()
	if int64(idx) >= int64(len(m.nodes)) {
		return false
	}
	n := &m.nodes[idx]
	return n.level >= 0 && n.ref != 0
}

// refChild adds the reference a newly created (or revived) parent holds on
// child. The child is known to be alive.
func (m *Manager) refChild(child Ref) {
	n := &m.nodes[child.index()]
	if n.ref != refSaturated {
		n.ref++
	}
}

// allocNode returns a fresh arena slot, reusing the free list when possible
// and garbage collecting under pressure. GC is only attempted when the
// arena would have to grow, so cache locality is preserved between
// collections.
func (m *Manager) allocNode() int32 {
	m.checkLimits()
	if m.free != nilIndex {
		idx := m.free
		m.free = m.nodes[idx].next
		return idx
	}
	if m.nodesUsed < int64(len(m.nodes)) {
		idx := int32(m.nodesUsed)
		m.nodesUsed++
		return idx
	}
	if !m.noGC &&
		m.deadCount > 2048 && float64(m.deadCount) > m.gcFraction*float64(len(m.nodes)) {
		m.gc(true)
		if m.free != nilIndex {
			idx := m.free
			m.free = m.nodes[idx].next
			return idx
		}
	}
	m.growArena()
	idx := int32(m.nodesUsed)
	m.nodesUsed++
	return idx
}

// growArena doubles the node arena. The slice header swap invalidates every
// *node pointer into the old backing array, so callers must own a quiescent
// manager (the serial path trivially does; parallel mode grows only inside
// a stop-the-world).
func (m *Manager) growArena() {
	grown := make([]node, 2*len(m.nodes))
	copy(grown, m.nodes)
	m.nodes = grown
}

// growSubtable doubles a level's bucket array and rehashes its chains.
// Stats are the caller's job (the parallel path counts into worker-local
// stats instead of the shared struct).
func (m *Manager) growSubtable(level int32) {
	st := &m.subtables[level]
	nb := len(st.buckets) * 2
	buckets := make([]int32, nb)
	for i := range buckets {
		buckets[i] = nilIndex
	}
	mask := uint32(nb - 1)
	for _, head := range st.buckets {
		for idx := head; idx != nilIndex; {
			next := m.nodes[idx].next
			n := &m.nodes[idx]
			b := hash3(level, n.hi, n.lo) & mask
			n.next = buckets[b]
			buckets[b] = idx
			idx = next
		}
	}
	st.buckets = buckets
	st.mask = mask
}

// GarbageCollect removes all dead nodes from the unique table, returns them
// to the free list, and selectively invalidates the computed cache: only
// entries that mention a reclaimed node are dropped, the rest stay valid.
// Refs to live nodes are unaffected. It returns the number of nodes
// reclaimed. On a parallel manager this is a stop-the-world event that may
// run while other operations are in flight (they park at safe points).
func (m *Manager) GarbageCollect() int {
	if m.par == nil {
		return m.gc(true)
	}
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	var n int
	e.stopTheWorldSynced(m, false, stwGC, func() { n = m.gc(true) })
	return n
}

// gc is GarbageCollect with control over the cache sweep. Reordering
// passes sweepCache=false: it invalidates the whole cache afterwards with
// a generation bump, so walking it entry by entry would be wasted work.
func (m *Manager) gc(sweepCache bool) int {
	if m.par != nil {
		// Restore the serial invariant (dead nodes hold no child
		// references) before sweeping; parallel mode defers those drops.
		m.reconcileDeaths()
	}
	if m.deadCount == 0 {
		return 0
	}
	start := time.Now()
	collected := 0
	for lev := range m.subtables {
		st := &m.subtables[lev]
		for b, head := range st.buckets {
			var keep int32 = nilIndex
			for idx := head; idx != nilIndex; {
				next := m.nodes[idx].next
				if m.nodes[idx].ref == 0 {
					m.nodes[idx].next = m.free
					m.nodes[idx].level = -1
					m.free = idx
					st.count--
					collected++
				} else {
					m.nodes[idx].next = keep
					keep = idx
				}
				idx = next
			}
			st.buckets[b] = keep
		}
	}
	m.deadCount -= collected
	if sweepCache {
		m.cacheSweepDead()
	}
	pause := time.Since(start)
	m.stats.GCs++
	m.stats.GCNodes += int64(collected)
	m.stats.GCTime += pause
	if observer != nil {
		observer.GC(collected, m.liveCount, pause)
	}
	return collected
}
