package bdd

import "fmt"

// DebugCheck verifies the structural invariants of the manager: canonical
// form of every stored node, consistency of the unique table, and sanity of
// the reference counts. It returns the first violation found, or nil. It is
// meant for tests; it takes time linear in the arena. A violation is also
// reported to the installed Observer, which lets the flight recorder dump
// the trace events leading up to the corruption.
func (m *Manager) DebugCheck() error {
	var err error
	m.exclusiveCause(stwDebug, func() { err = m.debugCheck() })
	if err != nil && observer != nil {
		observer.DebugFailure(err)
	}
	return err
}

func (m *Manager) debugCheck() error {
	// Parent reference counts recomputed from live nodes.
	parentRefs := make([]int64, len(m.nodes))
	live := 0
	for lev := range m.subtables {
		st := &m.subtables[lev]
		seen := 0
		for b, head := range st.buckets {
			for idx := head; idx != nilIndex; idx = m.nodes[idx].next {
				seen++
				n := &m.nodes[idx]
				if n.level != int32(lev) {
					return fmt.Errorf("node %d stored at level %d but labeled %d", idx, lev, n.level)
				}
				if n.hi.IsComplement() {
					return fmt.Errorf("node %d has complemented then edge", idx)
				}
				if n.hi == n.lo {
					return fmt.Errorf("node %d is redundant (hi == lo)", idx)
				}
				for _, c := range [2]Ref{n.hi, n.lo} {
					cl := m.nodes[c.index()].level
					if cl <= n.level {
						return fmt.Errorf("node %d at level %d has child at level %d", idx, n.level, cl)
					}
				}
				if h := hash3(n.level, n.hi, n.lo) & st.mask; h != uint32(b) {
					return fmt.Errorf("node %d in wrong bucket", idx)
				}
				if n.ref > 0 {
					live++
					parentRefs[n.hi.index()]++
					parentRefs[n.lo.index()]++
				}
			}
		}
		if seen != st.count {
			return fmt.Errorf("level %d count %d but %d nodes chained", lev, st.count, seen)
		}
	}
	// Live internal nodes plus the terminal.
	if live+1 != m.liveCount {
		return fmt.Errorf("liveCount %d but %d live nodes found", m.liveCount, live+1)
	}
	// Every live parent reference must be covered by the child's count;
	// the surplus is the number of external references, which cannot be
	// negative. Dead nodes must hold no counted references.
	for idx := range m.nodes {
		n := &m.nodes[idx]
		if n.level == terminalLevel || n.level < 0 {
			continue // terminal or free-listed
		}
		if n.ref != refSaturated && int64(n.ref) < parentRefs[idx] {
			return fmt.Errorf("node %d has ref %d < %d live parents", idx, n.ref, parentRefs[idx])
		}
	}
	// No visible computed-cache entry may mention a freed arena slot
	// (selective invalidation must have dropped it).
	return m.checkCache()
}

// ReferencedNodeCount returns the number of live internal nodes (excludes
// the terminal), for tests that assert on leak-freedom. Advisory on a
// parallel manager while operations are in flight.
func (m *Manager) ReferencedNodeCount() int {
	if m.par != nil {
		return int(m.par.liveApprox()) - 1
	}
	return m.liveCount - 1
}

// PermanentNodeCount returns the number of nodes that can never be
// reclaimed: the terminal plus one projection node per variable.
func (m *Manager) PermanentNodeCount() int { return 1 + len(m.vars) }
