package bdd

// Sensitivity operators used by verification front ends.

// BooleanDiff returns the boolean difference ∂f/∂v = f|v=1 ⊕ f|v=0: the set
// of assignments to the other variables on which f is sensitive to v.
func (m *Manager) BooleanDiff(f Ref, v int) Ref {
	f1 := m.CofactorVar(f, v, true)
	f0 := m.CofactorVar(f, v, false)
	r := m.Xor(f1, f0)
	m.Deref(f1)
	m.Deref(f0)
	return r
}

// Smoothing is existential quantification of one variable (the smoothing
// operator of the unate-recursive paradigm): S_v f = f|v=1 + f|v=0.
func (m *Manager) Smoothing(f Ref, v int) Ref {
	return m.Exists(f, []int{v})
}

// Consensus is universal quantification of one variable: C_v f = f|v=1 ·
// f|v=0.
func (m *Manager) Consensus(f Ref, v int) Ref {
	return m.ForAll(f, []int{v})
}

// Intersect reports whether f and g share at least one minterm, without
// building f AND g (it stops at the first witness).
func (m *Manager) Intersect(f, g Ref) bool {
	var res bool
	m.readLocked(func() {
		res = m.intersectRec(f, g, make(map[[2]Ref]bool))
	})
	return res
}

func (m *Manager) intersectRec(f, g Ref, seen map[[2]Ref]bool) bool {
	if f == Zero || g == Zero || f == g.Complement() {
		return false
	}
	if f == One || g == One || f == g {
		return true
	}
	if f > g {
		f, g = g, f
	}
	key := [2]Ref{f, g}
	if seen[key] {
		return false // already explored and found empty
	}
	seen[key] = true
	lev := m.top2(f, g)
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	return m.intersectRec(f1, g1, seen) || m.intersectRec(f0, g0, seen)
}
