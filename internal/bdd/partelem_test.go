package bdd

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// parTestObserver implements both Observer and ParObserver, recording every
// STW and stall notification for assertions.
type parTestObserver struct {
	mu     sync.Mutex
	stw    []string // causes, in order
	stalls []string // stall reports
	stuck  []time.Duration
}

func (o *parTestObserver) GC(reclaimed, live int, pause time.Duration) {}
func (o *parTestObserver) Reorder(before, after int, d time.Duration)  {}
func (o *parTestObserver) Abort(reason string)                         {}
func (o *parTestObserver) DebugFailure(err error)                      {}

func (o *parTestObserver) STW(cause string, workers int, wait, pause time.Duration) {
	o.mu.Lock()
	o.stw = append(o.stw, cause)
	o.mu.Unlock()
}

func (o *parTestObserver) Stall(report string, stuck time.Duration) {
	o.mu.Lock()
	o.stalls = append(o.stalls, report)
	o.stuck = append(o.stuck, stuck)
	o.mu.Unlock()
}

func (o *parTestObserver) stallCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.stalls)
}

func (o *parTestObserver) firstStall() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.stalls) == 0 {
		return ""
	}
	return o.stalls[0]
}

func withObserver(t *testing.T, o Observer) {
	t.Helper()
	prev := CurrentObserver()
	SetObserver(o)
	t.Cleanup(func() { SetObserver(prev) })
}

func withSampling(t *testing.T, rate int) {
	t.Helper()
	prev := ParSampling()
	SetParSampling(rate)
	t.Cleanup(func() { SetParSampling(prev) })
}

func TestSetParSampling(t *testing.T) {
	withSampling(t, 0)
	if got := ParSampling(); got != 0 {
		t.Fatalf("ParSampling() = %d after disable, want 0", got)
	}
	SetParSampling(100) // rounds up to next power of two
	if got := ParSampling(); got != 128 {
		t.Fatalf("ParSampling() = %d, want 128", got)
	}
	SetParSampling(1)
	if got := ParSampling(); got != 1 {
		t.Fatalf("ParSampling() = %d, want 1", got)
	}
	SetParSampling(-5)
	if got := ParSampling(); got != 0 {
		t.Fatalf("ParSampling() = %d, want 0", got)
	}
}

func TestWaitHistQuantiles(t *testing.T) {
	var h waitHist
	for i := 0; i < 100; i++ {
		h.observe(100) // bucket for 100ns
	}
	h.observe(1 << 20) // one outlier ~1ms
	var buckets [waitHistBuckets]int64
	var ws WaitStats
	h.addTo(&buckets, &ws)
	if ws.Count != 101 {
		t.Fatalf("Count = %d, want 101", ws.Count)
	}
	if ws.MaxNS != 1<<20 {
		t.Fatalf("MaxNS = %d, want %d", ws.MaxNS, 1<<20)
	}
	p50 := histQuantile(&buckets, ws.Count, ws.MaxNS, 0.50)
	if p50 < 100 || p50 > 256 {
		t.Fatalf("P50 = %d, want bucket bound covering 100ns", p50)
	}
	p99 := histQuantile(&buckets, ws.Count, ws.MaxNS, 0.99)
	if p99 > 1<<21 {
		t.Fatalf("P99 = %d, unexpectedly above the outlier bucket", p99)
	}
	if ws.MeanNS() <= 0 {
		t.Fatalf("MeanNS() = %d, want positive", ws.MeanNS())
	}
}

// TestWaitHistSingleObservation is the regression test for the
// single-sample quantile edge case: one observation of 100ns used to
// report P50 = P95 = 128 (the raw bucket bound) instead of the value
// actually observed.
func TestWaitHistSingleObservation(t *testing.T) {
	var h waitHist
	h.observe(100)
	var buckets [waitHistBuckets]int64
	var ws WaitStats
	h.addTo(&buckets, &ws)
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if got := histQuantile(&buckets, ws.Count, ws.MaxNS, q); got != 100 {
			t.Fatalf("quantile(%.2f) of single 100ns observation = %d, want 100", q, got)
		}
	}
	// An observation beyond the last bucket's range must still report
	// itself, not the (smaller) final bucket bound.
	var h2 waitHist
	big := int64(1) << 40 // waitHistBuckets = 32, so 2^40 overflows the table
	h2.observe(big)
	var b2 [waitHistBuckets]int64
	var ws2 WaitStats
	h2.addTo(&b2, &ws2)
	if got := histQuantile(&b2, ws2.Count, ws2.MaxNS, 0.50); got != big {
		t.Fatalf("quantile(0.50) of single 2^40 observation = %d, want %d", got, big)
	}
}

// TestParTelemetrySampled drives parallel operations with sampling at
// 1-in-1 and checks the fine-grained counters actually populate.
func TestParTelemetrySampled(t *testing.T) {
	withSampling(t, 1)
	m := newPar(t, 32, 4)

	f := buildAdder(m, 16)
	tel := m.ParTelemetry()
	if tel.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", tel.Workers)
	}
	if tel.SampleRate != 1 {
		t.Fatalf("SampleRate = %d, want 1", tel.SampleRate)
	}
	if tel.UniqueWait.Count == 0 {
		t.Errorf("UniqueWait.Count = 0, want sampled unique-table waits")
	}
	if tel.CacheWait.Count == 0 {
		t.Errorf("CacheWait.Count = 0, want sampled cache-stripe waits")
	}
	if len(tel.HotLevels) == 0 {
		t.Errorf("HotLevels empty, want level heat with sampling at 1")
	}
	if len(tel.HotCacheStripes) == 0 {
		t.Errorf("HotCacheStripes empty, want stripe heat with sampling at 1")
	}
	if len(tel.WorkerStats) == 0 {
		t.Fatalf("WorkerStats empty, want per-worker accounting")
	}
	var ops int64
	for _, ws := range tel.WorkerStats {
		ops += ws.Ops
	}
	if ops == 0 {
		t.Errorf("total worker ops = 0, want public operations accounted")
	}
	m.Deref(f)
}

// TestParTelemetrySerialManager checks the zero snapshot shape on a serial
// manager.
func TestParTelemetrySerialManager(t *testing.T) {
	m := New(4)
	tel := m.ParTelemetry()
	if tel.Workers != 1 {
		t.Fatalf("Workers = %d on serial manager, want 1", tel.Workers)
	}
	if len(tel.WorkerStats) != 0 || tel.TasksStolen != 0 {
		t.Fatalf("serial manager reported parallel telemetry: %+v", tel)
	}
}

// TestSTWAccounting checks that stop-the-world epochs land in the per-cause
// totals, in Stats, and at a ParObserver.
func TestSTWAccounting(t *testing.T) {
	obs := &parTestObserver{}
	withObserver(t, obs)
	m := newPar(t, 16, 2)

	f := buildAdder(m, 8)
	m.Deref(f)
	m.GarbageCollect()
	if err := m.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck: %v", err)
	}

	st := m.Stats()
	if st.STWCount == 0 {
		t.Fatalf("Stats().STWCount = 0 after GC + DebugCheck, want > 0")
	}
	if st.STWTime < 0 {
		t.Fatalf("Stats().STWTime = %v, want >= 0", st.STWTime)
	}

	tel := m.ParTelemetry()
	causes := map[string]bool{}
	for _, s := range tel.STW {
		causes[s.Cause] = true
		if s.Count <= 0 {
			t.Errorf("cause %q with Count %d in snapshot, want > 0", s.Cause, s.Count)
		}
	}
	if !causes["gc"] {
		t.Errorf("STW causes %v, want gc attributed", causes)
	}
	if !causes["debug_check"] {
		t.Errorf("STW causes %v, want debug_check attributed", causes)
	}

	obs.mu.Lock()
	seen := map[string]bool{}
	for _, c := range obs.stw {
		seen[c] = true
	}
	obs.mu.Unlock()
	if !seen["gc"] || !seen["debug_check"] {
		t.Errorf("ParObserver saw causes %v, want gc and debug_check", seen)
	}
}

// TestStallWatchdogFires wedges the write lease on purpose and checks the
// watchdog reports it, exactly once per episode, with the parallel-state
// dump naming the lease.
func TestStallWatchdogFires(t *testing.T) {
	obs := &parTestObserver{}
	withObserver(t, obs)
	m := newPar(t, 8, 2)

	stop := m.StartStallWatchdog(20 * time.Millisecond)
	defer stop()

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Quiesce(func() { <-release })
	}()

	deadline := time.Now().Add(5 * time.Second)
	for obs.stallCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if obs.stallCount() == 0 {
		close(release)
		wg.Wait()
		t.Fatalf("watchdog never fired while the write lease was held")
	}

	report := obs.firstStall()
	if !strings.Contains(report, "write lease") {
		t.Errorf("stall report does not name the write lease:\n%s", report)
	}
	if !strings.Contains(report, "exclusive") {
		t.Errorf("stall report does not carry the lease cause:\n%s", report)
	}

	// The once-per-episode latch: holding the lease longer must not
	// produce a second report.
	n := obs.stallCount()
	time.Sleep(100 * time.Millisecond)
	if got := obs.stallCount(); got != n {
		t.Errorf("watchdog fired %d more times within one episode", got-n)
	}

	close(release)
	wg.Wait()

	// After the episode clears and progress resumes, the engine must be
	// fully usable.
	f := buildAdder(m, 4)
	m.Deref(f)
}

// TestStallWatchdogQuietWhenHealthy runs real work under an aggressive
// deadline and checks the watchdog stays silent (no false positives while
// ops are completing).
func TestStallWatchdogQuietWhenHealthy(t *testing.T) {
	obs := &parTestObserver{}
	withObserver(t, obs)
	m := newPar(t, 32, 4)

	stop := m.StartStallWatchdog(250 * time.Millisecond)
	defer stop()

	f := buildAdder(m, 16)
	m.Deref(f)
	m.GarbageCollect()

	if n := obs.stallCount(); n != 0 {
		t.Fatalf("watchdog fired %d times on a healthy engine:\n%s", n, obs.firstStall())
	}
}

// TestStallWatchdogSerialNoop checks the watchdog is a no-op on serial
// managers and with a zero deadline.
func TestStallWatchdogSerialNoop(t *testing.T) {
	m := New(4)
	stop := m.StartStallWatchdog(time.Millisecond)
	stop() // must not panic
	mp := newPar(t, 4, 2)
	stop = mp.StartStallWatchdog(0)
	stop()
}

// TestQuiesceRunsExclusively checks Quiesce actually excludes operations:
// while the quiesced section runs, no operation can retire (operations hold
// the read lease for their whole duration, so opsDone is frozen).
func TestQuiesceRunsExclusively(t *testing.T) {
	m := newPar(t, 16, 4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			f := buildAdder(m, 4)
			m.Deref(f)
		}
	}()
	for i := 0; i < 20; i++ {
		m.Quiesce(func() {
			before := m.par.opsDone.Load()
			time.Sleep(100 * time.Microsecond)
			if after := m.par.opsDone.Load(); after != before {
				t.Errorf("%d operations retired while Quiesce held the write lease", after-before)
			}
		})
	}
	close(done)
	wg.Wait()
}

func TestOpCodeNames(t *testing.T) {
	if got := opCodeName(opcITE); got != "ite" {
		t.Fatalf("opCodeName(opcITE) = %q, want ite", got)
	}
	if got := opCodeName(999); got != "unknown" {
		t.Fatalf("opCodeName(999) = %q, want unknown", got)
	}
	for c := stwCause(0); c < stwNumCauses; c++ {
		if c.String() == "unknown" || c.String() == "" {
			t.Fatalf("stwCause %d has no name", c)
		}
	}
}
