package bdd

import (
	"math/rand"
	"testing"
)

func TestWindow3PreservesFunctions(t *testing.T) {
	const n = 7
	m := New(n)
	rng := rand.New(rand.NewSource(91))
	var fs []Ref
	var tts [][]bool
	for i := 0; i < 6; i++ {
		f := randFromTrees(m, rng, n, 5)
		fs = append(fs, f)
		tts = append(tts, truthTable(m, f, n))
	}
	before := m.liveCount
	m.Reorder(ReorderWindow3, SiftConfig{})
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	if m.liveCount > before {
		t.Fatalf("window reorder grew the table: %d -> %d", before, m.liveCount)
	}
	for i, f := range fs {
		got := truthTable(m, f, n)
		for x := range got {
			if got[x] != tts[i][x] {
				t.Fatalf("window reorder changed function %d", i)
			}
		}
		m.Deref(f)
	}
}

// TestExactOrderingOptimal: on the pairable function whose optimal order
// is known exactly, exact reordering must reach 2k+2 nodes.
func TestExactOrderingOptimal(t *testing.T) {
	const k = 3 // 6 variables: 720 permutations
	m := New(2 * k)
	f := Zero
	for i := 0; i < k; i++ {
		p := m.And(m.IthVar(i), m.IthVar(k+i))
		nf := m.Or(f, p)
		m.Deref(p)
		m.Deref(f)
		f = nf
	}
	m.Reorder(ReorderExact, SiftConfig{})
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	// Optimum: one node per variable in the interleaved order plus the
	// single (complement-arc) terminal.
	if got := m.DagSize(f); got != 2*k+1 {
		t.Fatalf("exact reorder reached %d nodes, optimum is %d", got, 2*k+1)
	}
	// The function itself is intact.
	a := make([]bool, 2*k)
	a[1], a[k+1] = true, true
	if !m.Eval(f, a) {
		t.Fatal("function corrupted")
	}
	m.Deref(f)
}

// TestSiftingNearExact: sifting (a heuristic) must land within a factor of
// the exact optimum on random small functions — the quality anchor.
func TestSiftingNearExact(t *testing.T) {
	const n = 7
	rng := rand.New(rand.NewSource(501))
	worst := 0.0
	for iter := 0; iter < 10; iter++ {
		seed := rng.Int63()
		sizeWith := func(method ReorderMethod) int {
			m := New(n)
			r2 := rand.New(rand.NewSource(seed))
			f := randFromTrees(m, r2, n, 6)
			m.Reorder(method, SiftConfig{})
			sz := m.DagSize(f)
			m.Deref(f)
			return sz
		}
		exact := sizeWith(ReorderExact)
		sift := sizeWith(ReorderSiftConverge)
		if sift < exact {
			t.Fatalf("sifting (%d) beat the exact optimum (%d)?", sift, exact)
		}
		ratio := float64(sift) / float64(exact)
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.6 {
		t.Fatalf("sifting strayed %.2fx from the exact optimum", worst)
	}
	t.Logf("worst sift/exact ratio over the sample: %.3f", worst)
}
