package bdd_test

import (
	"fmt"

	"bddkit/internal/bdd"
)

// The basic workflow: build functions, combine, count, release.
func Example() {
	m := bdd.New(3)
	x, y, z := m.IthVar(0), m.IthVar(1), m.IthVar(2)

	xy := m.And(x, y)
	f := m.Or(xy, z)
	m.Deref(xy)

	fmt.Println("size:", m.DagSize(f))
	fmt.Println("minterms:", m.CountMinterm(f, 3))
	fmt.Println("f(1,1,0):", m.Eval(f, []bool{true, true, false}))
	m.Deref(f)
	// Output:
	// size: 4
	// minterms: 5
	// f(1,1,0): true
}

// Complementation is free: f and ¬f share the same nodes.
func ExampleRef_Complement() {
	m := bdd.New(2)
	f := m.And(m.IthVar(0), m.IthVar(1))
	g := f.Complement()
	fmt.Println("same node:", f.Regular() == g.Regular())
	fmt.Println("minterms f:", m.CountMinterm(f, 2), "g:", m.CountMinterm(g, 2))
	m.Deref(f)
	// Output:
	// same node: true
	// minterms f: 1 g: 3
}

// Restrict minimizes a function against a care set (Figure 1 of the DAC'98
// paper): where the care set is false the function is remapped to increase
// sharing.
func ExampleManager_Restrict() {
	m := bdd.New(3)
	x, y, z := m.IthVar(0), m.IthVar(1), m.IthVar(2)
	yz := m.And(y, z)
	f := m.ITE(x, yz, z) // x ? y·z : z
	r := m.Restrict(f, x)
	fmt.Println("|f| =", m.DagSize(f), "|f⇓x| =", m.DagSize(r))
	// On the care set x=1 they agree.
	both := m.Xnor(f, r)
	agree := m.Leq(x, both)
	fmt.Println("agree on care set:", agree)
	m.Deref(yz)
	m.Deref(f)
	m.Deref(r)
	m.Deref(both)
	// Output:
	// |f| = 4 |f⇓x| = 3
	// agree on care set: true
}

// Quantification and the relational product.
func ExampleManager_AndExists() {
	m := bdd.New(4)
	// R(x0,x1) = x0 XOR x1; F(x0) = x0. ∃x0. F·R = ¬x1... x1 must be the
	// complement of a satisfying x0=1, so the product is ¬x1? No: x0=1
	// and x0 XOR x1 forces x1=0, so the result is ¬x1.
	r := m.Xor(m.IthVar(0), m.IthVar(1))
	cube := m.CubeFromVars([]int{0})
	img := m.AndExists(m.IthVar(0), r, cube)
	fmt.Println("image is ¬x1:", img == m.IthVar(1).Complement())
	m.Deref(r)
	m.Deref(cube)
	m.Deref(img)
	// Output:
	// image is ¬x1: true
}
