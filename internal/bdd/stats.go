package bdd

import (
	"fmt"
	"strings"
)

// This file exposes the memory-subsystem statistics behind the computed
// cache and the unique table. The raw counters live in Stats; CacheStats
// and UniqueStats package them (plus structural snapshots that require a
// walk, like the chain-length histogram) for reporting by cmd/bddlab,
// cmd/reach, and internal/bench.

// chainHistBuckets is the number of chain-length buckets reported by
// UniqueStats; the last bucket aggregates every longer chain.
const chainHistBuckets = 9

// CacheStats is a snapshot of the computed (operation) table.
type CacheStats struct {
	Entries    int    // current table size (total entries across all sets)
	Ways       int    // set associativity
	Bits       uint   // log2(Entries)
	MaxBits    uint   // adaptive-resize ceiling (log2 entries)
	Generation uint32 // current generation (bumped by each reordering)

	Lookups int64   // probes since manager creation
	Hits    int64   // hits since manager creation
	HitRate float64 // Hits / Lookups

	Inserts   int64 // insertions
	Evictions int64 // live entries displaced by in-set aging
	Resizes   int64 // adaptive doublings performed

	Sweeps   int64 // selective invalidation passes (one per GC)
	Survived int64 // entries preserved across all sweeps
	Dropped  int64 // entries dropped across all sweeps

	LastSweepSurvived int // entries preserved by the most recent sweep
	LastSweepDropped  int // entries dropped by the most recent sweep

	EpochHitRates []float64 // recent per-epoch hit rates, oldest first
}

// CacheStats returns a snapshot of the computed-table statistics.
func (m *Manager) CacheStats() CacheStats {
	if m.par == nil {
		return m.cacheStatsNow()
	}
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	// Epoch events (resize, generation bump) run under statsMu, so holding
	// it here yields a consistent snapshot without stopping the world.
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	m.foldExtraCacheStats()
	return m.cacheStatsNow()
}

func (m *Manager) cacheStatsNow() CacheStats {
	c := &m.cache
	s := CacheStats{
		Entries:    len(c.entries),
		Ways:       cacheWays,
		Bits:       c.bits,
		MaxBits:    c.maxBits,
		Generation: c.gen,

		Lookups: m.stats.CacheLookups,
		Hits:    m.stats.CacheHits,

		Inserts:   m.stats.CacheInserts,
		Evictions: m.stats.CacheEvictions,
		Resizes:   m.stats.CacheResizes,

		Sweeps:   m.stats.CacheSweeps,
		Survived: m.stats.CacheSurvived,
		Dropped:  m.stats.CacheDropped,

		LastSweepSurvived: c.lastSurvived,
		LastSweepDropped:  c.lastDropped,

		EpochHitRates: append([]float64(nil), c.epochRates...),
	}
	if s.Lookups > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Lookups)
	}
	return s
}

// String formats the snapshot as a short multi-line report.
func (s CacheStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "computed cache: %d entries (%d-way, 2^%d, ceiling 2^%d), generation %d\n",
		s.Entries, s.Ways, s.Bits, s.MaxBits, s.Generation)
	fmt.Fprintf(&b, "  lookups %d, hits %d (%.1f%%), inserts %d, evictions %d, resizes %d\n",
		s.Lookups, s.Hits, 100*s.HitRate, s.Inserts, s.Evictions, s.Resizes)
	fmt.Fprintf(&b, "  GC sweeps %d: survived %d, dropped %d (last sweep %d/%d)",
		s.Sweeps, s.Survived, s.Dropped, s.LastSweepSurvived, s.LastSweepDropped)
	if len(s.EpochHitRates) > 0 {
		b.WriteString("\n  epoch hit rates:")
		for _, r := range s.EpochHitRates {
			fmt.Fprintf(&b, " %.0f%%", 100*r)
		}
	}
	return b.String()
}

// ArenaStats is a snapshot of node-arena occupancy: how much of the
// allocated slot capacity is live, dead (awaiting collection), or free.
type ArenaStats struct {
	Capacity int // allocated node slots (including the unused slot 0)
	Live     int // live nodes, including the terminal
	Dead     int // dead nodes awaiting collection
}

// Occupancy returns (Live+Dead)/Capacity, the fraction of arena slots in
// use — the gauge a long-running traversal watches to anticipate GC and
// arena growth.
func (s ArenaStats) Occupancy() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.Live+s.Dead) / float64(s.Capacity)
}

// ArenaStats returns the arena-occupancy snapshot. On a parallel manager
// the counts are advisory (like NodeCount), but the capacity read holds
// the memory lease so a concurrent arena growth cannot swap the slice
// header mid-read.
func (m *Manager) ArenaStats() ArenaStats {
	var s ArenaStats
	m.readLocked(func() { s.Capacity = len(m.nodes) })
	s.Live = m.NodeCount()
	s.Dead = m.DeadCount()
	return s
}

// UniqueStats is a snapshot of the unique table across all levels,
// including the bucket-chain length distribution that the growth policy
// keeps short.
type UniqueStats struct {
	Subtables int // one per variable level
	Buckets   int // total buckets across all subtables
	Stored    int // nodes currently chained (live or dead)
	Live      int // live nodes (including the terminal)
	Dead      int // dead nodes awaiting collection

	Lookups int64 // makeNode probes
	Hits    int64 // probes that found an existing node
	Grows   int64 // subtable doublings

	MaxChain  int     // longest bucket chain found
	ChainHist []int64 // bucket count by chain length; last entry = longer
}

// LiveLevelCounts returns the number of live inner nodes at each level
// (index = level) by walking the arena — the manager-truth level widths
// that a structural profile over every live root must reproduce. Linear in
// the arena; intended for reporting and cross-checks, not hot paths.
func (m *Manager) LiveLevelCounts() []int {
	var counts []int
	m.exclusive(func() {
		counts = make([]int, len(m.subtables))
		for idx := 1; idx < len(m.nodes); idx++ {
			n := &m.nodes[idx]
			if n.ref != 0 && n.level >= 0 && n.level != terminalLevel {
				counts[n.level]++
			}
		}
	})
	return counts
}

// UniqueStats walks the unique table and returns a snapshot. The walk is
// linear in the number of buckets plus stored nodes; intended for
// reporting, not hot paths.
func (m *Manager) UniqueStats() UniqueStats {
	var s UniqueStats
	m.exclusive(func() { s = m.uniqueStatsNow() })
	return s
}

func (m *Manager) uniqueStatsNow() UniqueStats {
	s := UniqueStats{
		Subtables: len(m.subtables),
		Live:      m.liveCount,
		Dead:      m.deadCount,
		Lookups:   m.stats.UniqueLookups,
		Hits:      m.stats.UniqueHits,
		Grows:     m.stats.UniqueGrows,
		ChainHist: make([]int64, chainHistBuckets),
	}
	for lev := range m.subtables {
		st := &m.subtables[lev]
		s.Buckets += len(st.buckets)
		s.Stored += st.count
		for _, head := range st.buckets {
			chain := 0
			for idx := head; idx != nilIndex; idx = m.nodes[idx].next {
				chain++
			}
			if chain > s.MaxChain {
				s.MaxChain = chain
			}
			bucket := chain
			if bucket >= chainHistBuckets {
				bucket = chainHistBuckets - 1
			}
			s.ChainHist[bucket]++
		}
	}
	return s
}

// String formats the snapshot as a short multi-line report.
func (s UniqueStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "unique table: %d subtables, %d buckets, %d stored (%d live, %d dead)\n",
		s.Subtables, s.Buckets, s.Stored, s.Live, s.Dead)
	fmt.Fprintf(&b, "  lookups %d, hits %d, grows %d, max chain %d\n",
		s.Lookups, s.Hits, s.Grows, s.MaxChain)
	b.WriteString("  chain lengths:")
	for i, n := range s.ChainHist {
		if i == len(s.ChainHist)-1 {
			fmt.Fprintf(&b, " %d+:%d", i, n)
		} else {
			fmt.Fprintf(&b, " %d:%d", i, n)
		}
	}
	return b.String()
}
