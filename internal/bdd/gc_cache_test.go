package bdd

import (
	"math"
	"math/rand"
	"testing"
)

// TestGCSweepPreservesLiveEntries checks the selective invalidation
// contract: a garbage collection drops only computed-table entries that
// mention freed slots, so results whose operands and result all survive
// remain cached across the GC.
func TestGCSweepPreservesLiveEntries(t *testing.T) {
	const nVars = 12
	m := New(nVars)
	rng := rand.New(rand.NewSource(42))

	// Live results: conjunction pairs kept referenced through the GC.
	live := make([]Ref, 0, 8)
	operands := make([]Ref, 0, 16)
	for i := 0; i < 8; i++ {
		f := randomOnSet(m, rng, nVars, 0.4)
		g := randomOnSet(m, rng, nVars, 0.4)
		live = append(live, m.And(f, g))
		operands = append(operands, f, g)
	}
	// Dead clutter: results dropped before the GC, whose nodes the
	// collection will free (and whose cache entries must go with them).
	for i := 0; i < 8; i++ {
		f := randomOnSet(m, rng, nVars, 0.3)
		g := randomOnSet(m, rng, nVars, 0.3)
		m.Deref(m.Xor(f, g))
		m.Deref(f)
		m.Deref(g)
	}

	m.GarbageCollect()
	s := m.CacheStats()
	if s.Sweeps == 0 {
		t.Fatalf("GC did not run a selective cache sweep: %+v", s)
	}
	if s.LastSweepSurvived == 0 {
		t.Fatalf("no cache entries survived the GC sweep (wholesale invalidation?): %+v", s)
	}
	if s.LastSweepDropped == 0 {
		t.Fatalf("no cache entries were dropped despite dead operands: %+v", s)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck after GC sweep: %v", err)
	}

	// The surviving entries must still denote the same functions: repeating
	// the live conjunctions yields the identical Refs.
	for i := range live {
		r := m.And(operands[2*i], operands[2*i+1])
		if r != live[i] {
			t.Fatalf("conjunction %d changed across GC: got %v want %v", i, r, live[i])
		}
		m.Deref(r)
	}
}

// TestCacheHitRevivesDeadResult pins the dead-but-revivable contract: a
// computed-table hit may return a Ref whose nodes are dead (refcount zero),
// and the operation wrappers must revive it into a valid caller-owned
// reference.
func TestCacheHitRevivesDeadResult(t *testing.T) {
	const nVars = 10
	m := New(nVars)
	rng := rand.New(rand.NewSource(7))
	f := randomOnSet(m, rng, nVars, 0.5)
	g := randomOnSet(m, rng, nVars, 0.5)

	r1 := m.And(f, g)
	tt := truthTable(m, r1, nVars)
	m.Deref(r1) // r1's nodes are now dead but still cached

	// No GC has run, so the recomputation must hit the cache, revive the
	// dead nodes, and hand back the same canonical Ref.
	before := m.Stats().CacheHits
	r2 := m.And(f, g)
	if r2 != r1 {
		t.Fatalf("recomputation returned %v, want revived %v", r2, r1)
	}
	if m.Stats().CacheHits == before {
		t.Fatalf("recomputation missed the cache")
	}
	tt2 := truthTable(m, r2, nVars)
	for i, want := range tt {
		if tt2[i] != want {
			t.Fatalf("revived result differs at minterm %d", i)
		}
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck after revival: %v", err)
	}
}

// TestReorderInvalidatesByGeneration checks that reordering invalidates the
// computed table through a generation bump — entries inserted before the
// reorder become invisible — and that the bump is counted.
func TestReorderInvalidatesByGeneration(t *testing.T) {
	const nVars = 8
	m := New(nVars)
	rng := rand.New(rand.NewSource(11))
	fns := make([]Ref, 6)
	for i := range fns {
		fns[i] = randomOnSet(m, rng, nVars, 0.5)
	}

	op := m.CacheOp()
	key := m.IthVar(0)
	m.CacheInsert(op, key, 0, 0, m.IthVar(1))
	if _, ok := m.CacheLookup(op, key, 0, 0); !ok {
		t.Fatalf("freshly inserted entry not found")
	}

	genBefore := m.CacheStats().Generation
	bumpsBefore := m.Stats().CacheGenerations
	m.Reorder(ReorderSift, SiftConfig{})
	if g := m.CacheStats().Generation; g == genBefore {
		t.Fatalf("reordering did not bump the cache generation (still %d)", g)
	}
	if b := m.Stats().CacheGenerations; b != bumpsBefore+1 {
		t.Fatalf("CacheGenerations = %d, want %d", b, bumpsBefore+1)
	}
	if _, ok := m.CacheLookup(op, key, 0, 0); ok {
		t.Fatalf("pre-reorder cache entry still visible after generation bump")
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck after reorder: %v", err)
	}
	for _, f := range fns {
		m.Deref(f)
	}
}

// TestAdaptiveCacheResize drives the cache with a hot working set plus cold
// insert traffic so a resize epoch sustains a high hit rate under heavy
// insertion, and checks the table doubles up to (and not beyond) its
// ceiling.
func TestAdaptiveCacheResize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBits = 8
	cfg.CacheMaxBits = 12
	m := NewWithConfig(4, cfg)

	start := m.CacheStats()
	if start.Entries != 1<<8 {
		t.Fatalf("initial cache size %d, want %d", start.Entries, 1<<8)
	}

	// Keys are projection-variable Refs (permanently live), so the pattern
	// drives only the cache, not allocation. Two hot probes per cold
	// insert+probe keeps the epoch hit rate around 2/3 while the insert
	// traffic exceeds a full table per epoch.
	op := m.CacheOp()
	hot := m.IthVar(0)
	m.CacheInsert(op, hot, 0, 0, hot)
	res := m.IthVar(1)
	for i := uint32(1); i < 1<<16; i++ {
		m.CacheLookup(op, hot, 0, 0)
		m.CacheLookup(op, hot, 0, 0)
		cold := Ref(i << 8) // distinct keys, never repeated
		m.CacheLookup(op, cold, cold, 0)
		m.CacheInsert(op, cold, cold, 0, res)
	}
	s := m.CacheStats()
	if s.Resizes == 0 {
		t.Fatalf("cache never resized: %+v", s)
	}
	if s.Entries <= start.Entries {
		t.Fatalf("cache did not grow: %d -> %d", start.Entries, s.Entries)
	}
	if s.Entries > 1<<12 {
		t.Fatalf("cache grew past its ceiling: %d > %d", s.Entries, 1<<12)
	}
	if _, ok := m.CacheLookup(op, hot, 0, 0); !ok {
		t.Fatalf("hot entry lost across resizes")
	}
}

// TestCacheOpOverflowPanics checks the code-space exhaustion contract.
func TestCacheOpOverflowPanics(t *testing.T) {
	m := New(1)
	m.userOp = math.MaxUint32 - opUser + 1 // next code would wrap
	defer func() {
		if recover() == nil {
			t.Fatalf("CacheOp did not panic on code-space exhaustion")
		}
	}()
	m.CacheOp()
}
