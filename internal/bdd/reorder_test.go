package bdd

import (
	"math/rand"
	"testing"
)

func TestSwapInPlacePreservesFunctions(t *testing.T) {
	const n = 6
	m := New(n)
	rng := rand.New(rand.NewSource(31))
	var fs []Ref
	var tts [][]bool
	for i := 0; i < 8; i++ {
		f := randomOnSet(m, rng, n, 0.5)
		fs = append(fs, f)
		tts = append(tts, truthTable(m, f, n))
	}
	m.GarbageCollect()
	m.cache.clear()
	m.noGC = true
	for lev := 0; lev < n-1; lev++ {
		m.swapInPlace(lev)
		if err := m.DebugCheck(); err != nil {
			t.Fatalf("after swap %d: %v", lev, err)
		}
		for i, f := range fs {
			got := truthTable(m, f, n)
			for x := range got {
				if got[x] != tts[i][x] {
					t.Fatalf("swap %d changed function %d at minterm %d", lev, i, x)
				}
			}
		}
	}
	m.noGC = false
	for _, f := range fs {
		m.Deref(f)
	}
}

func TestReorderPreservesFunctions(t *testing.T) {
	const n = 8
	m := New(n)
	rng := rand.New(rand.NewSource(77))
	var fs []Ref
	var tts [][]bool
	for i := 0; i < 10; i++ {
		f := randomOnSet(m, rng, n, 0.45)
		fs = append(fs, f)
		tts = append(tts, truthTable(m, f, n))
	}
	m.Reorder(ReorderSift, SiftConfig{})
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		got := truthTable(m, f, n)
		for x := range got {
			if got[x] != tts[i][x] {
				t.Fatalf("reorder changed function %d at minterm %d", i, x)
			}
		}
	}
	// The level maps must remain inverse permutations.
	for v := 0; v < n; v++ {
		if int(m.levToVar[m.varToLev[v]]) != v {
			t.Fatal("varToLev/levToVar inconsistent")
		}
	}
	for _, f := range fs {
		m.Deref(f)
	}
}

// TestSiftingImprovesBadOrder checks that sifting recovers the linear-size
// order for the function x0·x_k + x1·x_{k+1} + ... whose interleaved order
// is exponential.
func TestSiftingImprovesBadOrder(t *testing.T) {
	const k = 7
	m := New(2 * k)
	// Deliberately bad pairing under the identity order: pair i with k+i.
	f := Zero
	for i := 0; i < k; i++ {
		p := m.And(m.IthVar(i), m.IthVar(k+i))
		nf := m.Or(f, p)
		m.Deref(p)
		m.Deref(f)
		f = nf
	}
	before := m.DagSize(f)
	m.Reorder(ReorderSiftConverge, SiftConfig{})
	after := m.DagSize(f)
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	// The optimal size is 2k+2 nodes (including the constant); allow a
	// small amount of slack since sifting is a local search.
	if after > 4*k {
		t.Fatalf("sifting left %d nodes (before %d, optimal ~%d)", after, before, 2*k+2)
	}
	if after >= before {
		t.Fatalf("sifting did not improve: before %d after %d", before, after)
	}
	m.Deref(f)
}

func TestAutoReorderTriggers(t *testing.T) {
	const k = 6
	m := New(2 * k)
	m.EnableAutoReorder(30)
	f := Zero
	for i := 0; i < k; i++ {
		p := m.And(m.IthVar(i), m.IthVar(k+i))
		nf := m.Or(f, p)
		m.Deref(p)
		m.Deref(f)
		f = nf
	}
	if m.Stats().Reorderings == 0 {
		t.Fatal("auto reorder never triggered")
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	// f must still be the intended function.
	a := make([]bool, 2*k)
	a[0], a[k] = true, true
	if !m.Eval(f, a) {
		t.Fatal("function corrupted by auto reorder")
	}
	m.Deref(f)
}

func TestReorderKeepsMintermCounts(t *testing.T) {
	const n = 10
	m := New(n)
	rng := rand.New(rand.NewSource(123))
	var fs []Ref
	var counts []float64
	for i := 0; i < 6; i++ {
		f := randFromTrees(m, rng, n, 5)
		fs = append(fs, f)
		counts = append(counts, m.CountMinterm(f, n))
	}
	m.Reorder(ReorderSift, SiftConfig{})
	for i, f := range fs {
		if got := m.CountMinterm(f, n); got != counts[i] {
			t.Fatalf("minterm count changed: %v -> %v", counts[i], got)
		}
		m.Deref(f)
	}
}

// TestReorderWithArenaGrowth forces the node arena to grow during sifting
// (regression test: node pointers must not be held across makeNode calls
// inside swapInPlace, since the arena may be reallocated).
func TestReorderWithArenaGrowth(t *testing.T) {
	const n = 12
	cfg := DefaultConfig()
	cfg.InitialNodes = 2 // grow almost immediately
	m := NewWithConfig(n, cfg)
	rng := rand.New(rand.NewSource(5150))
	var fs []Ref
	var tts [][]bool
	for i := 0; i < 6; i++ {
		f := randFromTrees(m, rng, n, 6)
		fs = append(fs, f)
		tts = append(tts, truthTable(m, f, n))
	}
	m.Reorder(ReorderSiftConverge, SiftConfig{})
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		got := truthTable(m, f, n)
		for x := range got {
			if got[x] != tts[i][x] {
				t.Fatalf("function %d corrupted at %d", i, x)
			}
		}
		m.Deref(f)
	}
}

// randFromTrees builds a random function as a depth-d expression tree.
func randFromTrees(m *Manager, rng *rand.Rand, n, d int) Ref {
	if d == 0 {
		v := m.Ref(m.IthVar(rng.Intn(n)))
		if rng.Intn(2) == 0 {
			return v.Complement()
		}
		return v
	}
	a := randFromTrees(m, rng, n, d-1)
	b := randFromTrees(m, rng, n, d-1)
	var r Ref
	switch rng.Intn(3) {
	case 0:
		r = m.And(a, b)
	case 1:
		r = m.Or(a, b)
	default:
		r = m.Xor(a, b)
	}
	m.Deref(a)
	m.Deref(b)
	return r
}

// TestForAllCubeTriggersAutoReorder is the regression test for the missing
// maybeReorder entry hook: a loop doing nothing but ForAllCube on an
// over-threshold manager must still trip automatic sifting, like every
// other public node-creating operation.
func TestForAllCubeTriggersAutoReorder(t *testing.T) {
	const k = 6
	m := New(2 * k)
	// Build a function whose live count exceeds the threshold while auto
	// reordering is still off, plus the cubes to quantify, so the only
	// operation that can possibly trigger a reorder below is ForAllCube.
	f := Zero
	for i := 0; i < k; i++ {
		p := m.And(m.IthVar(i), m.IthVar(k+i))
		nf := m.Or(f, p)
		m.Deref(p)
		m.Deref(f)
		f = nf
	}
	cubes := make([]Ref, k)
	for i := range cubes {
		cubes[i] = m.CubeFromVars([]int{i, k + i})
	}
	m.EnableAutoReorder(1) // live count is already far above this
	before := m.Stats().Reorderings
	for _, cube := range cubes {
		m.Deref(m.ForAllCube(f, cube))
	}
	if m.Stats().Reorderings == before {
		t.Fatal("ForAllCube never entered maybeReorder on an over-threshold manager")
	}
	// The quantification results must be unaffected by the sifting.
	m.DisableAutoReorder()
	g := m.ForAllCube(f, cubes[0])
	want := m.ForAll(f, []int{0, k})
	if g != want {
		t.Fatal("ForAllCube result diverges from ForAll over the same variables")
	}
	m.Deref(g)
	m.Deref(want)
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}
