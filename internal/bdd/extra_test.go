package bdd

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestIteIdentitiesQuick(t *testing.T) {
	const n = 7
	prop := func(seed int64) bool {
		m := New(n)
		rng := rand.New(rand.NewSource(seed))
		f := randFromTrees(m, rng, n, 4)
		g := randFromTrees(m, rng, n, 4)
		h := randFromTrees(m, rng, n, 4)
		defer func() {
			m.Deref(f)
			m.Deref(g)
			m.Deref(h)
		}()
		// ITE(f,g,h) == (f∧g) ∨ (¬f∧h)
		ite := m.ITE(f, g, h)
		fg := m.And(f, g)
		nfh := m.And(f.Complement(), h)
		or := m.Or(fg, nfh)
		ok := ite == or
		// f ∧ ¬f == 0, f ∨ ¬f == 1, f ⊕ f == 0
		a := m.And(f, f.Complement())
		o := m.Or(f, f.Complement())
		x := m.Xor(f, f)
		ok = ok && a == Zero && o == One && x == Zero
		// De Morgan
		nand := m.Nand(f, g)
		orn := m.Or(f.Complement(), g.Complement())
		ok = ok && nand == orn
		// Xnor(f,g) == ¬Xor(f,g)
		ok = ok && m.Xnor(f, g) == m.Xor(f, g).Complement()
		for _, r := range []Ref{ite, fg, nfh, or, a, o, x, nand, orn} {
			m.Deref(r)
		}
		// Two extra Derefs for the Xnor/Xor pair created above.
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShannonExpansionQuick(t *testing.T) {
	const n = 7
	prop := func(seed int64) bool {
		m := New(n)
		rng := rand.New(rand.NewSource(seed))
		f := randFromTrees(m, rng, n, 5)
		defer m.Deref(f)
		for v := 0; v < n; v++ {
			f1 := m.CofactorVar(f, v, true)
			f0 := m.CofactorVar(f, v, false)
			back := m.ITE(m.IthVar(v), f1, f0)
			ok := back == f
			m.Deref(f1)
			m.Deref(f0)
			m.Deref(back)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExistsMonotoneQuick(t *testing.T) {
	const n = 8
	prop := func(seed int64) bool {
		m := New(n)
		rng := rand.New(rand.NewSource(seed))
		f := randFromTrees(m, rng, n, 5)
		defer m.Deref(f)
		vars := []int{rng.Intn(n), rng.Intn(n)}
		ex := m.Exists(f, vars)
		fa := m.ForAll(f, vars)
		ok := m.Leq(f, ex) && m.Leq(fa, f)
		// ∃ and ∀ are idempotent over the same variables.
		ex2 := m.Exists(ex, vars)
		ok = ok && ex2 == ex
		m.Deref(ex)
		m.Deref(fa)
		m.Deref(ex2)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountPathVsCubes(t *testing.T) {
	const n = 6
	m := New(n)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		f := randFromTrees(m, rng, n, 4)
		cubes := 0
		m.ForEachCube(f, func([]int8) bool { cubes++; return true })
		if got := m.CountPath(f); got != float64(cubes) {
			t.Fatalf("CountPath = %v, enumeration = %d", got, cubes)
		}
		m.Deref(f)
	}
}

func TestDensityOfCube(t *testing.T) {
	m := New(8)
	// An 8-variable positive cube has 1 minterm... no: x0·x1·…·x7 has
	// exactly one satisfying assignment and 9 nodes (8 internal + 1
	// constant) under DagSize.
	cube := m.CubeFromVars([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if got := m.CountMinterm(cube, 8); got != 1 {
		t.Fatalf("cube minterms = %v", got)
	}
	if got := m.DagSize(cube); got != 9 {
		t.Fatalf("cube size = %d", got)
	}
	if d := m.Density(cube, 8); math.Abs(d-1.0/9) > 1e-12 {
		t.Fatalf("cube density = %v", d)
	}
	m.Deref(cube)
}

func TestCubeFromVarsDuplicates(t *testing.T) {
	m := New(4)
	a := m.CubeFromVars([]int{2, 0, 2, 0})
	b := m.CubeFromVars([]int{0, 2})
	if a != b {
		t.Fatal("duplicate variables changed the cube")
	}
	m.Deref(a)
	m.Deref(b)
}

func TestPow2(t *testing.T) {
	if pow2(0) != 1 || pow2(1) != 2 || pow2(53) != float64(uint64(1)<<53) {
		t.Fatal("small powers wrong")
	}
	if got, want := pow2(100), math.Pow(2, 100); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("pow2(100) = %g want %g", got, want)
	}
	if got, want := pow2(300), math.Pow(2, 300); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("pow2(300) = %g want %g", got, want)
	}
}

func TestClientCacheOps(t *testing.T) {
	m := New(4)
	op1 := m.CacheOp()
	op2 := m.CacheOp()
	if op1 == op2 {
		t.Fatal("CacheOp returned duplicate codes")
	}
	f := m.And(m.IthVar(0), m.IthVar(1))
	m.CacheInsert(op1, f, One, Zero, f)
	if r, ok := m.CacheLookup(op1, f, One, Zero); !ok || r != f {
		t.Fatal("client cache lookup failed")
	}
	if _, ok := m.CacheLookup(op2, f, One, Zero); ok {
		t.Fatal("client cache collided across op codes")
	}
	// GC with nothing to collect leaves the cache intact (all entries
	// still reference live nodes).
	m.GarbageCollect()
	if _, ok := m.CacheLookup(op1, f, One, Zero); !ok {
		t.Fatal("no-op GC dropped a valid cache entry")
	}
	// Once nodes can actually be freed the cache must be invalidated.
	m.Deref(f)
	if m.GarbageCollect() == 0 {
		t.Fatal("expected nodes to be collected")
	}
	if _, ok := m.CacheLookup(op1, f, One, Zero); ok {
		t.Fatal("cache survived a real garbage collection")
	}
}

func TestDumpDotSmoke(t *testing.T) {
	m := New(3)
	f := m.And(m.IthVar(0), m.Not(m.IthVar(1)))
	var sb strings.Builder
	if err := m.DumpDot(&sb, []string{"f"}, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph BDD", "x0", "x1", "c1", "style=dotted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q:\n%s", want, out)
		}
	}
	if err := m.DumpDot(&sb, []string{"f"}, []Ref{f, One}); err == nil {
		t.Fatal("mismatched names/roots not rejected")
	}
	m.Deref(f)
}

func TestDumpDotStyledFillsColors(t *testing.T) {
	m := New(3)
	f := m.And(m.IthVar(0), m.IthVar(1))
	var sb strings.Builder
	err := m.DumpDotStyled(&sb, []string{"f"}, []Ref{f}, DotOptions{
		NodeColor: func(id uint32) string {
			if id == f.ID() {
				return "/blues9/7"
			}
			return "" // other nodes stay unstyled
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `style=filled, fillcolor="/blues9/7"`) {
		t.Fatalf("styled dot output missing fillcolor:\n%s", out)
	}
	if strings.Count(out, "fillcolor") != 1 {
		t.Fatalf("exactly one node should be filled:\n%s", out)
	}
	m.Deref(f)
}

func TestPanics(t *testing.T) {
	m := New(3)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Var(constant)", func() { m.Var(One) })
	expectPanic("Hi(constant)", func() { m.Hi(One) })
	expectPanic("IthVar out of range", func() { m.IthVar(17) })
	expectPanic("Constrain by Zero", func() { m.Constrain(m.IthVar(0), Zero) })
	expectPanic("Restrict by Zero", func() { m.Restrict(m.IthVar(0), Zero) })
	expectPanic("Minimize inverted interval", func() {
		m.Minimize(One, Zero)
	})
	expectPanic("Deref unreferenced", func() {
		f := m.And(m.IthVar(0), m.IthVar(1))
		m.Deref(f)
		m.Deref(f)
	})
}

func TestStatsProgress(t *testing.T) {
	m := New(6)
	before := m.Stats()
	f := m.And(m.IthVar(0), m.IthVar(1))
	g := m.And(m.IthVar(0), m.IthVar(1)) // cache hit
	after := m.Stats()
	if after.UniqueLookups <= before.UniqueLookups {
		t.Fatal("unique lookups not counted")
	}
	if after.CacheHits <= before.CacheHits {
		t.Fatal("cache hit not counted")
	}
	m.Deref(f)
	m.Deref(g)
}

func TestAddVarAfterOps(t *testing.T) {
	m := New(2)
	f := m.Xor(m.IthVar(0), m.IthVar(1))
	v := m.AddVar()
	if m.NumVars() != 3 {
		t.Fatal("AddVar did not grow the variable count")
	}
	g := m.And(f, v)
	if m.SupportSize(g) != 3 {
		t.Fatal("new variable not usable")
	}
	if got := m.CountMinterm(g, 3); got != 2 {
		t.Fatalf("minterms with new var = %v", got)
	}
	m.Deref(f)
	m.Deref(g)
}

func TestGCUnderSmallArena(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialNodes = 4
	m := NewWithConfig(10, cfg)
	rng := rand.New(rand.NewSource(8))
	// Heavy churn: build and drop many functions, forcing repeated arena
	// growth and collection; the structure must stay consistent.
	for i := 0; i < 200; i++ {
		f := randFromTrees(m, rng, 10, 5)
		m.Deref(f)
	}
	m.GarbageCollect()
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	if m.ReferencedNodeCount() != m.PermanentNodeCount()-1 {
		t.Fatalf("leak after churn: %d live, want %d",
			m.ReferencedNodeCount(), m.PermanentNodeCount()-1)
	}
}

func TestRunLimitedNodeCeiling(t *testing.T) {
	m := New(24)
	// Build a function that needs far more than the ceiling allows.
	err := m.RunLimited(time.Time{}, m.NodeCount()+50, func() error {
		f := m.Ref(Zero)
		for i := 0; i < 12; i++ {
			p := m.And(m.IthVar(i), m.IthVar(12+i))
			nf := m.Or(f, p)
			m.Deref(p)
			m.Deref(f)
			f = nf
		}
		m.Deref(f)
		return nil
	})
	if err == nil {
		t.Fatal("node ceiling never tripped")
	}
	if _, ok := err.(OpAborted); !ok {
		t.Fatalf("unexpected error type %T", err)
	}
	// The manager must remain usable and structurally sound (stranded
	// references are allowed, corruption is not).
	if derr := m.DebugCheck(); derr != nil {
		t.Fatal(derr)
	}
	g := m.And(m.IthVar(0), m.IthVar(1))
	m.Deref(g)
	// Limits must be restored: the same construction now succeeds.
	f := m.Ref(Zero)
	for i := 0; i < 12; i++ {
		p := m.And(m.IthVar(i), m.IthVar(12+i))
		nf := m.Or(f, p)
		m.Deref(p)
		m.Deref(f)
		f = nf
	}
	m.Deref(f)
}

func TestRunLimitedDeadline(t *testing.T) {
	m := New(40)
	err := m.RunLimited(time.Now().Add(-time.Second), 0, func() error {
		// Already past the deadline: the first few thousand allocations
		// must trip it.
		f := m.Ref(Zero)
		for i := 0; i < 20; i++ {
			p := m.And(m.IthVar(i), m.IthVar(20+i))
			nf := m.Or(f, p)
			m.Deref(p)
			m.Deref(f)
			f = nf
		}
		m.Deref(f)
		return nil
	})
	if err == nil {
		t.Fatal("expired deadline never tripped")
	}
}

func TestApproxAfterManualReorder(t *testing.T) {
	// Refs survive reordering; structural algorithms may then run on the
	// new order.
	const n = 10
	m := New(n)
	rng := rand.New(rand.NewSource(15))
	f := randFromTrees(m, rng, n, 6)
	before := m.CountMinterm(f, n)
	m.Reorder(ReorderSift, SiftConfig{})
	if got := m.CountMinterm(f, n); got != before {
		t.Fatal("reorder changed f")
	}
	r := m.Restrict(f, f) // must be One
	if r != One {
		t.Fatal("Restrict(f,f) != One after reorder")
	}
	m.Deref(f)
	m.Deref(r)
}
