package bdd

// Quantification and the relational product. Sets of variables to quantify
// are passed as positive cubes: BDDs that are conjunctions of positive
// literals, built with CubeFromVars.

// CubeFromVars returns the conjunction of the projection functions of the
// given variable indices (a positive cube). An empty set yields One.
func (m *Manager) CubeFromVars(vars []int) Ref {
	if m.par != nil {
		return m.parCubeFromVars(vars)
	}
	// Build bottom-up in level order so each makeNode is O(1).
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.varToLev[v])
	}
	// Insertion sort: var sets are small.
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] < levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	r := One
	for i := len(levels) - 1; i >= 0; i-- {
		if i < len(levels)-1 && levels[i] == levels[i+1] {
			continue // duplicate variable
		}
		nr := m.makeNode(levels[i], r, Zero)
		m.derefS(r)
		r = nr
	}
	return r
}

// Exists returns ∃vars. f.
func (m *Manager) Exists(f Ref, vars []int) Ref {
	cube := m.CubeFromVars(vars)
	r := m.ExistsCube(f, cube)
	m.Deref(cube)
	return r
}

// ExistsCube returns ∃cube. f where cube is a positive cube of the
// variables to abstract.
func (m *Manager) ExistsCube(f, cube Ref) Ref {
	if m.par != nil {
		return m.parExistsCube(f, cube)
	}
	m.maybeReorder()
	return m.existsRec(f, cube)
}

// ForAll returns ∀vars. f.
func (m *Manager) ForAll(f Ref, vars []int) Ref {
	cube := m.CubeFromVars(vars)
	r := m.ForAllCube(f, cube)
	m.Deref(cube)
	return r
}

// ForAllCube returns ∀cube. f.
func (m *Manager) ForAllCube(f, cube Ref) Ref {
	if m.par != nil {
		return m.parExistsCube(f.Complement(), cube).Complement()
	}
	m.maybeReorder()
	return m.existsRec(f.Complement(), cube).Complement()
}

// AndExists returns ∃cube. (f AND g) without building f AND g first — the
// relational-product operation at the heart of image computation.
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	if m.par != nil {
		return m.parAndExists(f, g, cube)
	}
	m.maybeReorder()
	return m.andExistsRec(f, g, cube)
}

// skipCube advances cube past quantified variables that sit above level
// lev in the order (they cannot occur in the operand below).
func (m *Manager) skipCube(cube Ref, lev int32) Ref {
	for cube != One && m.nodes[cube.index()].level < lev {
		cube = m.nodes[cube.index()].hi // positive cube: hi continues the chain
	}
	return cube
}

func (m *Manager) existsRec(f, cube Ref) Ref {
	if f.IsConstant() || cube == One {
		return m.refS(f)
	}
	lev := m.nodes[f.index()].level
	cube = m.skipCube(cube, lev)
	if cube == One {
		return m.refS(f)
	}
	if r, ok := m.cacheLookup(opExists, f, cube, 0); ok {
		return m.refS(r)
	}
	f1, f0 := m.cofs(f, lev)
	var r Ref
	if m.nodes[cube.index()].level == lev {
		rest := m.nodes[cube.index()].hi
		t := m.existsRec(f1, rest)
		if t == One {
			r = One
		} else {
			e := m.existsRec(f0, rest)
			r = m.andRec(t.Complement(), e.Complement()).Complement() // t OR e
			m.derefS(t)
			m.derefS(e)
		}
	} else {
		t := m.existsRec(f1, cube)
		e := m.existsRec(f0, cube)
		r = m.makeNode(lev, t, e)
		m.derefS(t)
		m.derefS(e)
	}
	m.cacheInsert(opExists, f, cube, 0, r)
	return r
}

func (m *Manager) andExistsRec(f, g, cube Ref) Ref {
	// Terminal cases.
	if f == Zero || g == Zero || f == g.Complement() {
		return Zero
	}
	if f == g {
		return m.existsRec(f, cube)
	}
	if f == One {
		return m.existsRec(g, cube)
	}
	if g == One {
		return m.existsRec(f, cube)
	}
	lev := m.top2(f, g)
	cube = m.skipCube(cube, lev)
	if cube == One {
		return m.andRec(f, g)
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opAndExists, f, g, cube); ok {
		return m.refS(r)
	}
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	var r Ref
	if m.nodes[cube.index()].level == lev {
		rest := m.nodes[cube.index()].hi
		t := m.andExistsRec(f1, g1, rest)
		if t == One {
			r = One
		} else {
			e := m.andExistsRec(f0, g0, rest)
			r = m.andRec(t.Complement(), e.Complement()).Complement()
			m.derefS(t)
			m.derefS(e)
		}
	} else {
		t := m.andExistsRec(f1, g1, cube)
		e := m.andExistsRec(f0, g0, cube)
		r = m.makeNode(lev, t, e)
		m.derefS(t)
		m.derefS(e)
	}
	m.cacheInsert(opAndExists, f, g, cube, r)
	return r
}

// Permute returns f with each variable v replaced by variable perm[v].
// perm must be a permutation of 0..NumVars-1 (entries for variables outside
// f's support are ignored). A per-call memo table is used because the cache
// key would otherwise have to identify perm.
func (m *Manager) Permute(f Ref, perm []int) Ref {
	if m.par != nil {
		return m.parPermute(f, perm)
	}
	memo := make(map[Ref]Ref)
	r := m.permuteRec(f, perm, memo)
	// The memo owns one reference per entry; the result picked up an
	// extra one to survive the release below.
	m.refS(r)
	for _, v := range memo {
		m.derefS(v)
	}
	return r
}

func (m *Manager) permuteRec(f Ref, perm []int, memo map[Ref]Ref) Ref {
	if f.IsConstant() {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	v := m.Var(f)
	t := m.permuteRec(m.Hi(f), perm, memo)
	e := m.permuteRec(m.Lo(f), perm, memo)
	// The new variable may sit anywhere in the order, so compose with ITE
	// rather than makeNode.
	r := m.iteRec(m.vars[perm[v]], t, e, 1)
	memo[f] = r
	return r
}

// Compose returns f with variable v substituted by function g.
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	if m.par != nil {
		return m.parCompose(f, v, g)
	}
	return m.composeRec(f, m.varToLev[v], g)
}

func (m *Manager) composeRec(f Ref, lev int32, g Ref) Ref {
	fl := m.nodes[f.index()].level
	if fl > lev {
		return m.refS(f) // v not in f's remaining support
	}
	if r, ok := m.cacheLookup(opCompose, f, g, Ref(lev)); ok {
		return m.refS(r)
	}
	var r Ref
	if fl == lev {
		f1, f0 := m.cofs(f, lev)
		r = m.iteRec(g, f1, f0, 1)
	} else {
		f1, f0 := m.cofs(f, fl)
		t := m.composeRec(f1, lev, g)
		e := m.composeRec(f0, lev, g)
		// The top variable of f stays in place; g may contain
		// variables above it, in which case ITE is required.
		v := m.vars[m.levToVar[fl]]
		r = m.iteRec(v, t, e, 1)
		m.derefS(t)
		m.derefS(e)
	}
	m.cacheInsert(opCompose, f, g, Ref(lev), r)
	return r
}
