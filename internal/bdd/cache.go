package bdd

// computedCache is the operation (computed) table: a 4-way set-associative,
// lossy cache keyed by an operation code and up to three operand Refs,
// modeled on CUDD's adaptively sized cache.
//
// Three mechanisms keep the cache useful under memory pressure:
//
//   - Within a set, entries carry age bits (a last-touch tick); an insert
//     into a full set evicts the oldest entry instead of clobbering an
//     arbitrary one, so hot results survive hash neighbors.
//   - Entries are stamped with a generation number. Reordering, which
//     invalidates every cached result (node children are rewritten in
//     place), bumps the generation: an O(1) wholesale invalidation with no
//     walk over the table.
//   - Garbage collection invalidates selectively: one walk over the table
//     drops only the entries that mention a freed arena slot (see
//     Manager.cacheSweepDead); the typically large live fraction survives,
//     exactly when recomputing it would hurt most.
//
// The cache also resizes itself: per resize epoch (a fixed multiple of the
// table size in lookups) the hit rate is measured, and a table that is
// hitting well while still absorbing heavy insert traffic doubles, up to
// the ceiling set by Config.CacheMaxBits.

import "fmt"

// Operation codes for the computed table. Distinct operations with the same
// operand tuple must use distinct codes.
const (
	opIte uint32 = iota + 1
	opAnd
	opXor
	opExists
	opForAll
	opAndExists
	opConstrain
	opRestrict
	opCompose
	opPermute
	opLeq
	opCofCube
	opSqueeze
	opUser // first code available to client packages (see CacheOp)
)

const (
	// cacheWays is the set associativity: entries per set.
	cacheWays = 4
	// minCacheBits keeps the table at least one full set.
	minCacheBits = 4
	// cacheEpochFactor: a resize epoch ends once the table has seen
	// cacheEpochFactor * size lookups since the previous epoch.
	cacheEpochFactor = 4
	// cacheResizeHitRate is the minimum per-epoch hit rate at which
	// doubling the table is considered worthwhile (CUDD's minHit).
	cacheResizeHitRate = 0.30
	// cacheEpochHistory bounds the per-epoch hit rates retained for
	// reporting.
	cacheEpochHistory = 16
)

type cacheEntry struct {
	a, b, c Ref
	res     Ref
	op      uint32
	gen     uint32 // generation stamp; older generations are invisible
	age     uint32 // last-touch tick; the smallest in a set is evicted
}

type computedCache struct {
	entries []cacheEntry // cacheWays consecutive entries per set
	setMask uint32       // number of sets - 1
	bits    uint         // log2(len(entries))
	maxBits uint         // resize ceiling (log2 entries)
	gen     uint32       // current generation
	tick    uint32       // age clock; wraps harmlessly (eviction quality only)

	// Resize-epoch bookkeeping: snapshots of the manager's cumulative
	// counters at the epoch and last-resize boundaries.
	epochLookups  int64
	epochHits     int64
	resizeInserts int64
	epochRates    []float64 // recent per-epoch hit rates, oldest first

	// Outcome of the most recent selective sweep (see cacheSweepDead).
	lastSurvived int
	lastDropped  int
}

func (c *computedCache) init(bits, maxBits uint) {
	if bits < minCacheBits {
		bits = minCacheBits
	}
	if maxBits < bits {
		maxBits = bits
	}
	c.bits = bits
	c.maxBits = maxBits
	n := 1 << bits
	c.entries = make([]cacheEntry, n)
	c.setMask = uint32(n/cacheWays - 1)
	c.clear()
}

// clear erases every entry. Used at initialization and when the generation
// counter wraps; normal invalidation goes through the generation stamp.
func (c *computedCache) clear() {
	for i := range c.entries {
		c.entries[i].res = invalidRef
	}
}

// invalidateAll makes every current entry invisible in O(1) by starting a
// new generation. On the (astronomically rare) wraparound the table is
// scrubbed so stamps from the previous epoch of the counter cannot alias.
func (c *computedCache) invalidateAll() {
	c.gen++
	if c.gen == 0 {
		c.clear()
	}
}

func (c *computedCache) nextTick() uint32 {
	c.tick++
	return c.tick
}

func cacheHash(op uint32, a, b, cc Ref) uint32 {
	h := uint64(op)*0x2545f4914f6cdd1d + uint64(a)*0x9e3779b97f4a7c15 +
		uint64(b)*0xbf58476d1ce4e5b9 + uint64(cc)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 32
	return uint32(h)
}

// lookup probes the cache; ok reports a hit. The result Ref may be dead and
// must be revived with Manager.Ref by the caller before any allocation.
func (m *Manager) cacheLookup(op uint32, a, b, c Ref) (Ref, bool) {
	m.stats.CacheLookups++
	cc := &m.cache
	base := (cacheHash(op, a, b, c) & cc.setMask) * cacheWays
	for i := uint32(0); i < cacheWays; i++ {
		e := &cc.entries[base+i]
		if e.op == op && e.a == a && e.b == b && e.c == c &&
			e.gen == cc.gen && e.res != invalidRef {
			m.stats.CacheHits++
			e.age = cc.nextTick()
			return e.res, true
		}
	}
	return invalidRef, false
}

// cacheInsert records op(a,b,c) = res. Within the target set it overwrites
// a same-key entry if present, else fills a free (or stale-generation) way,
// else evicts the least recently touched entry.
func (m *Manager) cacheInsert(op uint32, a, b, c Ref, res Ref) {
	cc := &m.cache
	base := (cacheHash(op, a, b, c) & cc.setMask) * cacheWays
	var free, oldest *cacheEntry
	var match *cacheEntry
	for i := uint32(0); i < cacheWays; i++ {
		e := &cc.entries[base+i]
		if e.res == invalidRef || e.gen != cc.gen {
			if free == nil {
				free = e
			}
			continue
		}
		if e.op == op && e.a == a && e.b == b && e.c == c {
			match = e
			break
		}
		if oldest == nil || e.age < oldest.age {
			oldest = e
		}
	}
	slot := match
	if slot == nil {
		slot = free
	}
	if slot == nil {
		slot = oldest
		m.stats.CacheEvictions++
	}
	*slot = cacheEntry{a: a, b: b, c: c, op: op, res: res, gen: cc.gen, age: cc.nextTick()}
	m.stats.CacheInserts++
	if m.stats.CacheLookups-cc.epochLookups >= int64(cacheEpochFactor)<<cc.bits {
		m.cacheEpoch()
	}
}

// cacheEpoch closes a resize epoch: it records the epoch's hit rate and
// doubles the table when the rate clears cacheResizeHitRate, the insert
// traffic since the last resize has been at least a full table's worth
// (so a bigger table would actually absorb misses), and the ceiling
// allows it.
func (m *Manager) cacheEpoch() {
	cc := &m.cache
	lookups := m.stats.CacheLookups - cc.epochLookups
	hits := m.stats.CacheHits - cc.epochHits
	rate := 0.0
	if lookups > 0 { // guard: a zero-lookup epoch must not record NaN
		rate = float64(hits) / float64(lookups)
	}
	cc.epochRates = append(cc.epochRates, rate)
	if len(cc.epochRates) > cacheEpochHistory {
		cc.epochRates = cc.epochRates[len(cc.epochRates)-cacheEpochHistory:]
	}
	inserts := m.stats.CacheInserts - cc.resizeInserts
	if cc.bits < cc.maxBits && rate >= cacheResizeHitRate && inserts >= int64(1)<<cc.bits {
		m.cacheResize(cc.bits + 1)
	}
	cc.epochLookups = m.stats.CacheLookups
	cc.epochHits = m.stats.CacheHits
}

// cacheResize rebuilds the table at 1<<bits entries, rehashing the live
// entries of the current generation into the new set layout.
func (m *Manager) cacheResize(bits uint) {
	cc := &m.cache
	old := cc.entries
	n := 1 << bits
	cc.entries = make([]cacheEntry, n)
	cc.setMask = uint32(n/cacheWays - 1)
	cc.bits = bits
	for i := range cc.entries {
		cc.entries[i].res = invalidRef
	}
	for i := range old {
		e := &old[i]
		if e.res == invalidRef || e.gen != cc.gen {
			continue
		}
		base := (cacheHash(e.op, e.a, e.b, e.c) & cc.setMask) * cacheWays
		var slot, oldest *cacheEntry
		for w := uint32(0); w < cacheWays; w++ {
			t := &cc.entries[base+w]
			if t.res == invalidRef {
				slot = t
				break
			}
			if oldest == nil || t.age < oldest.age {
				oldest = t
			}
		}
		if slot == nil {
			slot = oldest
		}
		*slot = *e
	}
	cc.resizeInserts = m.stats.CacheInserts
	m.stats.CacheResizes++
}

// cacheSweepDead is the selective invalidation run after a garbage
// collection: one walk over the table drops exactly the entries that
// mention a freed arena slot (operands or result), because those slots may
// be recycled into unrelated functions. Entries whose nodes all survived
// the collection remain valid — their Refs still denote the same functions
// — and are preserved, so a GC no longer costs the entire computed table.
func (m *Manager) cacheSweepDead() {
	cc := &m.cache
	survived, dropped := 0, 0
	for i := range cc.entries {
		e := &cc.entries[i]
		if e.res == invalidRef {
			continue
		}
		if e.gen != cc.gen {
			// Stale generation: already invisible; scrub it so later
			// sweeps and the debug checker skip it cheaply.
			e.res = invalidRef
			continue
		}
		if m.refAlive(e.a) && m.refAlive(e.b) && m.refAlive(e.c) && m.refAlive(e.res) {
			survived++
		} else {
			e.res = invalidRef
			dropped++
		}
	}
	cc.lastSurvived = survived
	cc.lastDropped = dropped
	m.stats.CacheSweeps++
	m.stats.CacheSurvived += int64(survived)
	m.stats.CacheDropped += int64(dropped)
}

// checkCache verifies the cache invariant used by DebugCheck: no visible
// entry may mention a freed arena slot.
func (m *Manager) checkCache() error {
	cc := &m.cache
	for i := range cc.entries {
		e := &cc.entries[i]
		if e.res == invalidRef || e.gen != cc.gen {
			continue
		}
		for _, f := range [4]Ref{e.a, e.b, e.c, e.res} {
			idx := f.index()
			if int(idx) >= len(m.nodes) || m.nodes[idx].level < 0 {
				return fmt.Errorf("cache entry %d references freed node ref %d", i, f)
			}
		}
	}
	return nil
}

// CacheOp returns a fresh operation code for use with CacheLookup and
// CacheInsert by client packages (e.g. the approximation and decomposition
// algorithms), so they can share the manager's computed table without
// colliding with the built-in operations or each other.
//
// Code-space contract: codes are never recycled. A Manager can hand out at
// most 2^32 - opUser codes over its lifetime; exceeding that would wrap
// client codes into the built-in operation space and silently corrupt
// results, so CacheOp panics instead. Algorithms that need a private memo
// table per invocation (the intended pattern: results become invisible to
// later calls without any explicit invalidation) consume one or two codes
// per call, which allows billions of calls per manager — but callers that
// can reuse a code across calls should.
func (m *Manager) CacheOp() uint32 {
	if m.par != nil {
		m.par.statsMu.Lock()
		defer m.par.statsMu.Unlock()
	}
	code := opUser + m.userOp
	if code < opUser {
		panic("bdd: CacheOp code space exhausted (2^32 codes allocated); " +
			"reuse codes across calls or create a new Manager")
	}
	m.userOp++
	return code
}

// CacheLookup probes the computed table under a client operation code
// obtained from CacheOp. The returned Ref, on a hit, may be dead: revive it
// with Ref before creating any node. On a parallel manager the
// lookup-then-revive protocol is only safe while no other goroutine runs
// operations on the manager (a concurrent allocation could trigger a
// collection that frees the dead node in between) — client algorithms are
// single-threaded over their manager, so this holds in practice.
func (m *Manager) CacheLookup(op uint32, a, b, c Ref) (Ref, bool) {
	if m.par != nil {
		e := m.par
		e.opLease.RLock()
		e.mem.enter()
		r, ok := m.cacheLookupPar(nil, op, a, b, c)
		e.mem.exit()
		e.opLease.RUnlock()
		return r, ok
	}
	return m.cacheLookup(op, a, b, c)
}

// CacheInsert records a client-computed result in the computed table.
func (m *Manager) CacheInsert(op uint32, a, b, c Ref, res Ref) {
	if m.par != nil {
		e := m.par
		e.opLease.RLock()
		e.mem.enter()
		m.cacheInsertPar(nil, op, a, b, c, res)
		e.mem.exit()
		m.maybeCacheEpochPar()
		e.opLease.RUnlock()
		return
	}
	m.cacheInsert(op, a, b, c, res)
}

// ClearCache invalidates every computed-table entry with an O(1) generation
// bump. Benchmarks use it to measure cold-cache operation cost; client
// algorithms can use it to drop memoized results wholesale.
func (m *Manager) ClearCache() {
	m.exclusiveCause(stwCacheResize, func() {
		m.cache.invalidateAll()
		m.stats.CacheGenerations++
	})
}
