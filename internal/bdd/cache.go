package bdd

// computedCache is the operation (computed) table: a direct-mapped,
// lossy cache keyed by an operation code and up to three operand Refs.
// Entries are invalidated wholesale on garbage collection and reordering,
// since collected nodes may be recycled into unrelated functions.

// Operation codes for the computed table. Distinct operations with the same
// operand tuple must use distinct codes.
const (
	opIte uint32 = iota + 1
	opAnd
	opXor
	opExists
	opForAll
	opAndExists
	opConstrain
	opRestrict
	opCompose
	opPermute
	opLeq
	opCofCube
	opSqueeze
	opUser // first code available to client packages (see CacheOp)
)

type cacheEntry struct {
	a, b, c Ref
	op      uint32
	res     Ref
}

type computedCache struct {
	entries []cacheEntry
	mask    uint32
}

func (c *computedCache) init(bits uint) {
	n := 1 << bits
	c.entries = make([]cacheEntry, n)
	c.mask = uint32(n - 1)
	c.clear()
}

func (c *computedCache) clear() {
	for i := range c.entries {
		c.entries[i].res = invalidRef
	}
}

func cacheHash(op uint32, a, b, cc Ref) uint32 {
	h := uint64(op)*0x2545f4914f6cdd1d + uint64(a)*0x9e3779b97f4a7c15 +
		uint64(b)*0xbf58476d1ce4e5b9 + uint64(cc)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 32
	return uint32(h)
}

// lookup probes the cache; ok reports a hit. The result Ref may be dead and
// must be revived with Manager.Ref by the caller before any allocation.
func (m *Manager) cacheLookup(op uint32, a, b, c Ref) (Ref, bool) {
	m.stats.CacheLookups++
	e := &m.cache.entries[cacheHash(op, a, b, c)&m.cache.mask]
	if e.op == op && e.a == a && e.b == b && e.c == c && e.res != invalidRef {
		m.stats.CacheHits++
		return e.res, true
	}
	return invalidRef, false
}

// cacheInsert records op(a,b,c) = res, overwriting whatever shared the slot.
func (m *Manager) cacheInsert(op uint32, a, b, c Ref, res Ref) {
	e := &m.cache.entries[cacheHash(op, a, b, c)&m.cache.mask]
	*e = cacheEntry{a: a, b: b, c: c, op: op, res: res}
}

// CacheOp returns a fresh operation code for use with CacheLookup and
// CacheInsert by client packages (e.g. the approximation algorithms), so
// they can share the manager's computed table without colliding with the
// built-in operations or each other.
func (m *Manager) CacheOp() uint32 {
	m.userOp++
	return opUser + m.userOp - 1
}

// CacheLookup probes the computed table under a client operation code
// obtained from CacheOp. The returned Ref, on a hit, may be dead: revive it
// with Ref before creating any node.
func (m *Manager) CacheLookup(op uint32, a, b, c Ref) (Ref, bool) {
	return m.cacheLookup(op, a, b, c)
}

// CacheInsert records a client-computed result in the computed table.
func (m *Manager) CacheInsert(op uint32, a, b, c Ref, res Ref) {
	m.cacheInsert(op, a, b, c, res)
}
