package bdd

import "time"

// Parallel counterparts of the recursive operation kernels, plus the public
// entry points that dispatch to them when the manager runs with Workers > 1.
//
// The recursions mirror their serial twins line for line — same terminal
// cases, same operand normalization, same cache keys — so parallel and
// serial (and exclusive-section serial code on a parallel manager) share the
// computed table and produce identical canonical results. The differences:
//
//   - reference counts move through atomic CAS (refPar/derefPar),
//   - unique-table and computed-cache access go through the striped locks
//     (makeNodePar, cacheLookupPar, cacheInsertPar),
//   - a checkpoint at each entry parks the worker when a stop-the-world
//     (GC, arena growth, cache resize) is pending,
//   - above the granularity cutoff one cofactor subproblem is forked into
//     the worker's deque and joined after the other is computed inline.
//
// The shared computed cache doubles as the duplicate-work suppressor: when
// two workers race toward the same subproblem, the first to finish inserts
// the result and the other hits it on the way down, so duplicated in-flight
// work is bounded and rare.

// parMaybeReorder is maybeReorder for parallel managers: the fast path reads
// two atomics; arming takes the write lease and re-checks, then runs the
// serial sifting code on the quiescent manager. The write-lease epoch is
// attributed to the reorder cause (even when the re-check declines, the
// exclusion really happened and ops really waited).
func (m *Manager) parMaybeReorder() {
	e := m.par
	if !e.autoReorderA.Load() || e.liveApprox() <= e.reorderThresholdA.Load() {
		return
	}
	start := time.Now()
	e.opLease.Lock()
	wait := time.Since(start)
	held := time.Now()
	e.leaseCause.Store(int32(stwReorder))
	e.leaseHeldSince.Store(held.UnixNano())
	e.statsMu.Lock() // see exclusive: serial code vs. lingering thief flushes
	e.syncEnter(m)
	if m.autoReorder && m.liveCount > m.reorderThreshold {
		m.reorderNow(ReorderSift, SiftConfig{MaxVars: autoSiftMaxVars})
		next := 2 * m.liveCount
		if next < m.reorderThreshold {
			next = m.reorderThreshold
		}
		m.reorderThreshold = next
	}
	e.syncExit(m)
	e.statsMu.Unlock()
	e.leaseHeldSince.Store(0)
	e.opLease.Unlock()
	e.recordSTW(stwReorder, wait, time.Since(held))
}

// parAnd is the parallel And entry point.
func (m *Manager) parAnd(f, g Ref) Ref {
	m.parMaybeReorder()
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcAnd)
	defer m.endOp(w, ctx)
	return m.parAndRec(w, f, g, 1)
}

// parXor is the parallel Xor entry point.
func (m *Manager) parXor(f, g Ref) Ref {
	m.parMaybeReorder()
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcXor)
	defer m.endOp(w, ctx)
	return m.parXorRec(w, f, g, 1)
}

// parITE is the parallel ITE entry point.
func (m *Manager) parITE(f, g, h Ref) Ref {
	m.parMaybeReorder()
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcITE)
	defer m.endOp(w, ctx)
	return m.parIteRec(w, f, g, h, 1)
}

// parExistsCube is the parallel ExistsCube entry point.
func (m *Manager) parExistsCube(f, cube Ref) Ref {
	m.parMaybeReorder()
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcExists)
	defer m.endOp(w, ctx)
	return m.parExistsRec(w, f, cube, 1)
}

// parAndExists is the parallel AndExists entry point.
func (m *Manager) parAndExists(f, g, cube Ref) Ref {
	m.parMaybeReorder()
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcAndExists)
	defer m.endOp(w, ctx)
	return m.parAndExistsRec(w, f, g, cube, 1)
}

// parLeq is the parallel Leq entry point.
func (m *Manager) parLeq(f, g Ref) bool {
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcLeq)
	defer m.endOp(w, ctx)
	return m.parLeqRec(w, f, g)
}

// parCompose is the parallel Compose entry point.
func (m *Manager) parCompose(f Ref, v int, g Ref) Ref {
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcCompose)
	defer m.endOp(w, ctx)
	return m.parComposeRec(w, f, m.varToLev[v], g)
}

// parPermute is the parallel Permute entry point.
func (m *Manager) parPermute(f Ref, perm []int) Ref {
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcPermute)
	defer m.endOp(w, ctx)
	memo := make(map[Ref]Ref)
	r := m.parPermuteRec(w, f, perm, memo)
	m.refPar(r)
	for _, v := range memo {
		m.derefParIndex(v.index())
	}
	return r
}

// parCubeFromVars is the parallel CubeFromVars entry point.
func (m *Manager) parCubeFromVars(vars []int) Ref {
	e := m.par
	e.opLease.RLock()
	defer e.opLease.RUnlock()
	w, ctx := m.beginOp(opcCube)
	defer m.endOp(w, ctx)
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.varToLev[v])
	}
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] < levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	r := One
	for i := len(levels) - 1; i >= 0; i-- {
		if i < len(levels)-1 && levels[i] == levels[i+1] {
			continue
		}
		nr := m.makeNodePar(w, levels[i], r, Zero)
		m.derefParIndex(r.index())
		r = nr
	}
	return r
}

func (m *Manager) parAndRec(w *parWorker, f, g Ref, depth int32) Ref {
	if f == Zero || g == Zero || f == g.Complement() {
		return Zero
	}
	if f == One || f == g {
		return m.refPar(g)
	}
	if g == One {
		return m.refPar(f)
	}
	if f > g {
		f, g = g, f
	}
	w.checkpoint()
	if r, ok := m.cacheLookupPar(w, opAnd, f, g, 0); ok {
		return m.refPar(r)
	}
	lev := m.top2(f, g)
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	var t, e Ref
	if w.shouldFork(depth) && !f0.IsConstant() && !g0.IsConstant() {
		task := w.fork(taskAnd, f0, g0, 0, depth+1)
		t = m.parAndRec(w, f1, g1, depth+1)
		e = m.join(w, task)
	} else {
		t = m.parAndRec(w, f1, g1, depth+1)
		e = m.parAndRec(w, f0, g0, depth+1)
	}
	r := m.makeNodePar(w, lev, t, e)
	m.derefParIndex(t.index())
	m.derefParIndex(e.index())
	m.cacheInsertPar(w, opAnd, f, g, 0, r)
	return r
}

func (m *Manager) parXorRec(w *parWorker, f, g Ref, depth int32) Ref {
	if f == g {
		return Zero
	}
	if f == g.Complement() {
		return One
	}
	if f == Zero {
		return m.refPar(g)
	}
	if g == Zero {
		return m.refPar(f)
	}
	if f == One {
		return m.refPar(g.Complement())
	}
	if g == One {
		return m.refPar(f.Complement())
	}
	out := Ref(0)
	if f.IsComplement() {
		f ^= 1
		out ^= 1
	}
	if g.IsComplement() {
		g ^= 1
		out ^= 1
	}
	if f > g {
		f, g = g, f
	}
	w.checkpoint()
	if r, ok := m.cacheLookupPar(w, opXor, f, g, 0); ok {
		return m.refPar(r) ^ out
	}
	lev := m.top2(f, g)
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	var t, e Ref
	if w.shouldFork(depth) && !f0.IsConstant() && !g0.IsConstant() {
		task := w.fork(taskXor, f0, g0, 0, depth+1)
		t = m.parXorRec(w, f1, g1, depth+1)
		e = m.join(w, task)
	} else {
		t = m.parXorRec(w, f1, g1, depth+1)
		e = m.parXorRec(w, f0, g0, depth+1)
	}
	r := m.makeNodePar(w, lev, t, e)
	m.derefParIndex(t.index())
	m.derefParIndex(e.index())
	m.cacheInsertPar(w, opXor, f, g, 0, r)
	return r ^ out
}

func (m *Manager) parIteRec(w *parWorker, f, g, h Ref, depth int32) Ref {
	if int(depth) > w.stats.PeakITEDepth {
		w.stats.PeakITEDepth = int(depth)
	}
	switch {
	case f == One:
		return m.refPar(g)
	case f == Zero:
		return m.refPar(h)
	case g == h:
		return m.refPar(g)
	case g == h.Complement():
		return m.parXorRec(w, f, h, depth)
	case f == g:
		g = One
	case f == g.Complement():
		g = Zero
	case f == h:
		h = Zero
	case f == h.Complement():
		h = One
	}
	if g == One && h == Zero {
		return m.refPar(f)
	}
	if g == Zero && h == One {
		return m.refPar(f.Complement())
	}
	if g == One {
		return m.parAndRec(w, f.Complement(), h.Complement(), depth).Complement()
	}
	if h == Zero {
		return m.parAndRec(w, f, g, depth)
	}
	if g == Zero {
		return m.parAndRec(w, f.Complement(), h, depth)
	}
	if h == One {
		return m.parAndRec(w, f, g.Complement(), depth).Complement()
	}
	if f.IsComplement() {
		f ^= 1
		g, h = h, g
	}
	out := Ref(0)
	if g.IsComplement() {
		g ^= 1
		h ^= 1
		out = 1
	}
	w.checkpoint()
	if r, ok := m.cacheLookupPar(w, opIte, f, g, h); ok {
		return m.refPar(r) ^ out
	}
	lev := m.top2(f, g)
	if lh := m.nodes[h.index()].level; lh < lev {
		lev = lh
	}
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	h1, h0 := m.cofs(h, lev)
	var t, e Ref
	if w.shouldFork(depth) && !f0.IsConstant() {
		task := w.fork(taskIte, f0, g0, h0, depth+1)
		t = m.parIteRec(w, f1, g1, h1, depth+1)
		e = m.join(w, task)
	} else {
		t = m.parIteRec(w, f1, g1, h1, depth+1)
		e = m.parIteRec(w, f0, g0, h0, depth+1)
	}
	r := m.makeNodePar(w, lev, t, e)
	m.derefParIndex(t.index())
	m.derefParIndex(e.index())
	m.cacheInsertPar(w, opIte, f, g, h, r)
	return r ^ out
}

func (m *Manager) parLeqRec(w *parWorker, f, g Ref) bool {
	if f == Zero || g == One || f == g {
		return true
	}
	if f == One || g == Zero || f == g.Complement() {
		return false
	}
	w.checkpoint()
	if r, ok := m.cacheLookupPar(w, opLeq, f, g, 0); ok {
		return r == One
	}
	lev := m.top2(f, g)
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	res := m.parLeqRec(w, f1, g1) && m.parLeqRec(w, f0, g0)
	enc := Zero
	if res {
		enc = One
	}
	m.cacheInsertPar(w, opLeq, f, g, 0, enc)
	return res
}

func (m *Manager) parExistsRec(w *parWorker, f, cube Ref, depth int32) Ref {
	if f.IsConstant() || cube == One {
		return m.refPar(f)
	}
	lev := m.nodes[f.index()].level
	cube = m.skipCube(cube, lev)
	if cube == One {
		return m.refPar(f)
	}
	w.checkpoint()
	if r, ok := m.cacheLookupPar(w, opExists, f, cube, 0); ok {
		return m.refPar(r)
	}
	f1, f0 := m.cofs(f, lev)
	var r Ref
	if m.nodes[cube.index()].level == lev {
		rest := m.nodes[cube.index()].hi
		if w.shouldFork(depth) && !f0.IsConstant() {
			task := w.fork(taskExists, f0, rest, 0, depth+1)
			t := m.parExistsRec(w, f1, rest, depth+1)
			e := m.join(w, task)
			r = m.parAndRec(w, t.Complement(), e.Complement(), depth+1).Complement()
			m.derefParIndex(t.index())
			m.derefParIndex(e.index())
		} else {
			t := m.parExistsRec(w, f1, rest, depth+1)
			if t == One {
				r = One
			} else {
				e := m.parExistsRec(w, f0, rest, depth+1)
				r = m.parAndRec(w, t.Complement(), e.Complement(), depth+1).Complement()
				m.derefParIndex(t.index())
				m.derefParIndex(e.index())
			}
		}
	} else {
		var t, e Ref
		if w.shouldFork(depth) && !f0.IsConstant() {
			task := w.fork(taskExists, f0, cube, 0, depth+1)
			t = m.parExistsRec(w, f1, cube, depth+1)
			e = m.join(w, task)
		} else {
			t = m.parExistsRec(w, f1, cube, depth+1)
			e = m.parExistsRec(w, f0, cube, depth+1)
		}
		r = m.makeNodePar(w, lev, t, e)
		m.derefParIndex(t.index())
		m.derefParIndex(e.index())
	}
	m.cacheInsertPar(w, opExists, f, cube, 0, r)
	return r
}

func (m *Manager) parAndExistsRec(w *parWorker, f, g, cube Ref, depth int32) Ref {
	if f == Zero || g == Zero || f == g.Complement() {
		return Zero
	}
	if f == g {
		return m.parExistsRec(w, f, cube, depth)
	}
	if f == One {
		return m.parExistsRec(w, g, cube, depth)
	}
	if g == One {
		return m.parExistsRec(w, f, cube, depth)
	}
	lev := m.top2(f, g)
	cube = m.skipCube(cube, lev)
	if cube == One {
		return m.parAndRec(w, f, g, depth)
	}
	if f > g {
		f, g = g, f
	}
	w.checkpoint()
	if r, ok := m.cacheLookupPar(w, opAndExists, f, g, cube); ok {
		return m.refPar(r)
	}
	f1, f0 := m.cofs(f, lev)
	g1, g0 := m.cofs(g, lev)
	var r Ref
	if m.nodes[cube.index()].level == lev {
		rest := m.nodes[cube.index()].hi
		if w.shouldFork(depth) && !f0.IsConstant() && !g0.IsConstant() {
			task := w.fork(taskAndExists, f0, g0, rest, depth+1)
			t := m.parAndExistsRec(w, f1, g1, rest, depth+1)
			e := m.join(w, task)
			r = m.parAndRec(w, t.Complement(), e.Complement(), depth+1).Complement()
			m.derefParIndex(t.index())
			m.derefParIndex(e.index())
		} else {
			t := m.parAndExistsRec(w, f1, g1, rest, depth+1)
			if t == One {
				r = One
			} else {
				e := m.parAndExistsRec(w, f0, g0, rest, depth+1)
				r = m.parAndRec(w, t.Complement(), e.Complement(), depth+1).Complement()
				m.derefParIndex(t.index())
				m.derefParIndex(e.index())
			}
		}
	} else {
		var t, e Ref
		if w.shouldFork(depth) && !f0.IsConstant() && !g0.IsConstant() {
			task := w.fork(taskAndExists, f0, g0, cube, depth+1)
			t = m.parAndExistsRec(w, f1, g1, cube, depth+1)
			e = m.join(w, task)
		} else {
			t = m.parAndExistsRec(w, f1, g1, cube, depth+1)
			e = m.parAndExistsRec(w, f0, g0, cube, depth+1)
		}
		r = m.makeNodePar(w, lev, t, e)
		m.derefParIndex(t.index())
		m.derefParIndex(e.index())
	}
	m.cacheInsertPar(w, opAndExists, f, g, cube, r)
	return r
}

func (m *Manager) parComposeRec(w *parWorker, f Ref, lev int32, g Ref) Ref {
	fl := m.nodes[f.index()].level
	if fl > lev {
		return m.refPar(f)
	}
	w.checkpoint()
	if r, ok := m.cacheLookupPar(w, opCompose, f, g, Ref(lev)); ok {
		return m.refPar(r)
	}
	var r Ref
	if fl == lev {
		f1, f0 := m.cofs(f, lev)
		r = m.parIteRec(w, g, f1, f0, 1)
	} else {
		f1, f0 := m.cofs(f, fl)
		t := m.parComposeRec(w, f1, lev, g)
		e := m.parComposeRec(w, f0, lev, g)
		v := m.vars[m.levToVar[fl]]
		r = m.parIteRec(w, v, t, e, 1)
		m.derefParIndex(t.index())
		m.derefParIndex(e.index())
	}
	m.cacheInsertPar(w, opCompose, f, g, Ref(lev), r)
	return r
}

func (m *Manager) parPermuteRec(w *parWorker, f Ref, perm []int, memo map[Ref]Ref) Ref {
	if f.IsConstant() {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	w.checkpoint()
	v := m.Var(f)
	hi, lo := m.Hi(f), m.Lo(f)
	t := m.parPermuteRec(w, hi, perm, memo)
	e := m.parPermuteRec(w, lo, perm, memo)
	r := m.parIteRec(w, m.vars[perm[v]], t, e, 1)
	memo[f] = r
	return r
}
