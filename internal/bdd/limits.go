package bdd

import (
	"fmt"
	"time"
)

// Operation limits. Symbolic operations can blow up unpredictably (a
// single relational product may dwarf the rest of a traversal), so callers
// running under budgets can arm a wall-clock deadline and/or a live-node
// ceiling. When a limit trips inside node allocation the manager panics
// with OpAborted; the public helper RunLimited (or any caller-side recover)
// converts that into an error at a clean boundary.
//
// After an aborted operation the manager remains structurally valid —
// every node is intact and all previously returned Refs keep working — but
// references owned by the interrupted recursion are stranded (a bounded
// memory leak until the manager is discarded). Budgeted drivers such as
// the reachability engine treat an abort as "this traversal is over",
// which is exactly the paper's usage.

// OpAborted is the panic value raised when an armed limit trips.
type OpAborted struct {
	// Reason describes which limit tripped.
	Reason string
}

func (e OpAborted) Error() string { return "bdd: operation aborted: " + e.Reason }

// deadlineCheckInterval balances abort latency against the cost of reading
// the clock on every allocation.
const deadlineCheckInterval = 4096

// SetDeadline arms a wall-clock limit for subsequent operations; the zero
// time disarms it. The deadline is checked every few thousand node
// allocations, so abort latency is microseconds, not relational products.
func (m *Manager) SetDeadline(t time.Time) {
	m.exclusive(func() {
		m.deadline = t
		m.allocTick = 0
	})
}

// SetNodeLimit arms a live-node ceiling for subsequent operations;
// 0 disarms it.
func (m *Manager) SetNodeLimit(n int) {
	m.exclusive(func() { m.nodeLimit = n })
}

// NodeLimit returns the armed live-node ceiling (0 = none). The read is
// advisory: limits are configured between operations, so instrumentation
// reading it mid-run (budget-pressure gauges) sees the value that governs
// the current operation.
func (m *Manager) NodeLimit() int { return m.nodeLimit }

// Deadline returns the armed wall-clock limit (zero time = none), advisory
// like NodeLimit.
func (m *Manager) Deadline() time.Time { return m.deadline }

// checkLimits is called from node allocation.
func (m *Manager) checkLimits() {
	if m.noGC {
		// Reordering is in flight: the unique table is mid-surgery and
		// must never be abandoned by a panic, so limits are suspended
		// until the swap sequence completes.
		return
	}
	if m.nodeLimit > 0 && m.liveCount > m.nodeLimit {
		reason := fmt.Sprintf("live nodes %d exceed limit %d", m.liveCount, m.nodeLimit)
		if observer != nil {
			// Node-budget exhaustion is a diagnosis-worthy event (unlike
			// routine deadline aborts): give the flight recorder a chance
			// to dump before the stack unwinds.
			observer.Abort(reason)
		}
		panic(OpAborted{Reason: reason})
	}
	if !m.deadline.IsZero() {
		m.allocTick++
		if m.allocTick >= deadlineCheckInterval {
			m.allocTick = 0
			if time.Now().After(m.deadline) {
				panic(OpAborted{Reason: "deadline exceeded"})
			}
		}
	}
}

// RunLimited executes fn under the given deadline and node limit and
// converts an OpAborted panic into an error. Other panics propagate. The
// previous limits are restored afterwards.
func (m *Manager) RunLimited(deadline time.Time, nodeLimit int, fn func() error) (err error) {
	var prevDeadline time.Time
	var prevLimit int
	m.exclusive(func() {
		prevDeadline, prevLimit = m.deadline, m.nodeLimit
		m.deadline = deadline
		m.allocTick = 0
		m.nodeLimit = nodeLimit
	})
	defer func() {
		m.exclusive(func() {
			m.deadline, m.nodeLimit = prevDeadline, prevLimit
		})
		if r := recover(); r != nil {
			if ab, ok := r.(OpAborted); ok {
				err = ab
				return
			}
			panic(r)
		}
	}()
	return fn()
}
