package bdd

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization: a line-oriented text format for persisting BDD forests.
// Nodes are written children-first with local identifiers, so loading is a
// single bottom-up pass; complement arcs are preserved as signed ids. The
// format is order-independent: loading rebuilds canonical nodes under the
// destination manager's current variable order.
//
//	bddkit-bdd v1
//	vars 12
//	nodes 3
//	1 4 +0 -0        # node 1: var 4, hi = One, lo = Zero
//	2 2 +1 -1
//	3 0 +2 -0
//	roots 1
//	f +3
//
// References are +id (regular) or -id (complemented); id 0 is the constant
// One, so -0 is written for Zero and parsed specially.

const ioMagic = "bddkit-bdd v1"

// Load treats its input as untrusted: header counts are validated against
// these caps before any allocation or variable growth, so a malformed
// "vars 2000000000" line is an error, not an OOM. The caps are far above
// anything this package can process in practice, yet small enough that a
// hostile header cannot commit unbounded memory.
const (
	// MaxLoadVars bounds the "vars N" header (and therefore how many
	// variables Load may add to the destination manager).
	MaxLoadVars = 1 << 20
	// MaxLoadNodes bounds the "nodes N" header.
	MaxLoadNodes = 1 << 26
	// maxLoadPrealloc bounds how much of the node index is allocated up
	// front on the strength of the header alone; beyond it the index
	// grows only as node lines actually arrive.
	maxLoadPrealloc = 1 << 16
	// maxLoadRoots bounds the "roots N" header.
	maxLoadRoots = 1 << 20

	// loadHeaderAllowance is the byte budget before the nodes header has
	// declared a size: magic, vars/nodes headers, and a little slack for
	// blank lines and comments.
	loadHeaderAllowance = 4096
	// maxNodeLineBytes is the per-declared-node byte allowance. A node line
	// is four small integers ("67108863 1048575 +67108862 -67108861" ≈ 35
	// bytes); 128 leaves room for formatting slack without letting a
	// hostile stream pad megabytes between nodes.
	maxNodeLineBytes = 128
	// maxRootLineBytes is the per-declared-root byte allowance; root names
	// are caller-chosen, so the line budget is generous.
	maxRootLineBytes = 4096
)

// LoadSizeError reports an input stream that exceeded the byte budget
// derived from its own declared header: either the header preamble was
// padded past loadHeaderAllowance, or the body overran the per-node /
// per-root allowances. A server restoring an untrusted tenant snapshot
// matches it with errors.As to distinguish hostile padding from ordinary
// parse failures.
type LoadSizeError struct {
	Read  int64 // bytes consumed when the budget tripped
	Limit int64 // budget the declared header had earned
}

func (e *LoadSizeError) Error() string {
	return fmt.Sprintf("bdd: Load: input exceeds byte budget (%d read, %d allowed by declared header)", e.Read, e.Limit)
}

// Save writes the forest rooted at the named functions.
func (m *Manager) Save(w io.Writer, names []string, roots []Ref) error {
	if len(names) != len(roots) {
		return fmt.Errorf("bdd: Save: %d names for %d roots", len(names), len(roots))
	}
	var err error
	m.readLocked(func() { err = m.saveLocked(w, names, roots) })
	return err
}

func (m *Manager) saveLocked(w io.Writer, names []string, roots []Ref) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, ioMagic)
	fmt.Fprintf(bw, "vars %d\n", m.NumVars())

	// Assign local ids in children-first order. The walk uses an explicit
	// worklist rather than recursion: a chain-shaped BDD (a cube over a
	// million variables) is as deep as it is large, and must not exhaust
	// the goroutine stack.
	local := map[uint32]int{One.ID(): 0}
	var order []Ref // regular refs, children first
	var stack []Ref // regular refs pending a post-order visit
	visit := func(r Ref) {
		stack = append(stack, r.Regular())
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if _, ok := local[top.ID()]; ok {
				stack = stack[:len(stack)-1]
				continue
			}
			hi, lo := m.StructHi(top), m.StructLo(top)
			_, hiDone := local[hi.ID()]
			_, loDone := local[lo.ID()]
			if hiDone && loDone {
				stack = stack[:len(stack)-1]
				local[top.ID()] = len(order) + 1
				order = append(order, top)
				continue
			}
			if !hiDone {
				stack = append(stack, hi.Regular())
			}
			if !loDone {
				stack = append(stack, lo.Regular())
			}
		}
	}
	for _, r := range roots {
		if !r.IsConstant() {
			visit(r)
		}
	}
	enc := func(r Ref) string {
		sign := "+"
		if r.IsComplement() {
			sign = "-"
		}
		return fmt.Sprintf("%s%d", sign, local[r.ID()])
	}
	fmt.Fprintf(bw, "nodes %d\n", len(order))
	for _, r := range order {
		fmt.Fprintf(bw, "%d %d %s %s\n", local[r.ID()], m.Var(r), enc(m.StructHi(r)), enc(m.StructLo(r)))
	}
	fmt.Fprintf(bw, "roots %d\n", len(roots))
	for i, r := range roots {
		if strings.ContainsAny(names[i], " \t\n") {
			return fmt.Errorf("bdd: Save: root name %q contains whitespace", names[i])
		}
		fmt.Fprintf(bw, "%s %s\n", names[i], enc(r))
	}
	return bw.Flush()
}

// Load reads a forest saved by Save into this manager, growing the variable
// set if the file needs more variables. It returns the roots by name, each
// carrying one reference owned by the caller.
func (m *Manager) Load(r io.Reader) (map[string]Ref, error) {
	var out map[string]Ref
	var err error
	m.exclusiveCause(stwSaveLoad, func() { out, err = m.loadLocked(r) })
	return out, err
}

func (m *Manager) loadLocked(r io.Reader) (map[string]Ref, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	// The stream earns its byte budget from its own header: a small
	// allowance up front, then nnodes/nroots line allowances once those
	// headers are parsed. Every scanned byte — including comments and
	// blank lines — is charged, so a payload cannot pad itself past what
	// its declared shape justifies.
	var read int64
	budget := int64(loadHeaderAllowance)
	line := func() (string, error) {
		for sc.Scan() {
			read += int64(len(sc.Bytes())) + 1
			if read > budget {
				return "", &LoadSizeError{Read: read, Limit: budget}
			}
			s := strings.TrimSpace(sc.Text())
			if s != "" && !strings.HasPrefix(s, "#") {
				return s, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if hdr != ioMagic {
		return nil, fmt.Errorf("bdd: Load: bad magic %q", hdr)
	}
	var nvars int
	if s, err := line(); err != nil {
		return nil, err
	} else if !scan1(s, "vars %d", &nvars) {
		return nil, fmt.Errorf("bdd: Load: missing vars header")
	}
	if nvars < 0 || nvars > MaxLoadVars {
		return nil, fmt.Errorf("bdd: Load: vars %d outside [0,%d]", nvars, MaxLoadVars)
	}
	for m.NumVars() < nvars {
		m.addVarLocked()
	}
	var nnodes int
	if s, err := line(); err != nil {
		return nil, err
	} else if !scan1(s, "nodes %d", &nnodes) {
		return nil, fmt.Errorf("bdd: Load: missing nodes header")
	}
	if nnodes < 0 || nnodes > MaxLoadNodes {
		return nil, fmt.Errorf("bdd: Load: nodes %d outside [0,%d]", nnodes, MaxLoadNodes)
	}
	budget += int64(nnodes) * maxNodeLineBytes
	// byID[i] holds the regular function for local id i; all are owned
	// here and released on return. The header alone commits only a small
	// allocation — the index grows with the node lines actually read, so
	// an inflated count costs nothing.
	prealloc := nnodes + 1
	if prealloc > maxLoadPrealloc {
		prealloc = maxLoadPrealloc
	}
	byID := make([]Ref, 1, prealloc)
	byID[0] = One
	// release drops the construction references (only filled slots exist).
	release := func() {
		for _, f := range byID[1:] {
			m.derefS(f)
		}
	}
	filled := 0
	dec := func(tok string) (Ref, error) {
		if len(tok) < 2 || (tok[0] != '+' && tok[0] != '-') {
			return 0, fmt.Errorf("bdd: Load: bad ref %q", tok)
		}
		id, err := strconv.Atoi(tok[1:])
		if err != nil || id < 0 || id > filled {
			return 0, fmt.Errorf("bdd: Load: forward or invalid ref %q", tok)
		}
		f := byID[id]
		if tok[0] == '-' {
			f = f.Complement()
		}
		return f, nil
	}
	for i := 1; i <= nnodes; i++ {
		s, err := line()
		if err != nil {
			release()
			return nil, err
		}
		fields := strings.Fields(s)
		if len(fields) != 4 {
			release()
			return nil, fmt.Errorf("bdd: Load: bad node line %q", s)
		}
		id, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || id != i || v < 0 || v >= m.NumVars() {
			release()
			return nil, fmt.Errorf("bdd: Load: bad node header in %q", s)
		}
		hi, err := dec(fields[2])
		if err != nil {
			release()
			return nil, err
		}
		lo, err := dec(fields[3])
		if err != nil {
			release()
			return nil, err
		}
		byID = append(byID, m.iteRec(m.IthVar(v), hi, lo, 1))
		filled = i
	}
	var nroots int
	if s, err := line(); err != nil {
		release()
		return nil, err
	} else if !scan1(s, "roots %d", &nroots) {
		release()
		return nil, fmt.Errorf("bdd: Load: missing roots header")
	}
	if nroots < 0 || nroots > maxLoadRoots {
		release()
		return nil, fmt.Errorf("bdd: Load: roots %d outside [0,%d]", nroots, maxLoadRoots)
	}
	budget += int64(nroots) * maxRootLineBytes
	out := make(map[string]Ref, min(nroots, maxLoadPrealloc))
	for i := 0; i < nroots; i++ {
		s, err := line()
		if err != nil {
			for _, f := range out {
				m.derefS(f)
			}
			release()
			return nil, err
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			for _, f := range out {
				m.derefS(f)
			}
			release()
			return nil, fmt.Errorf("bdd: Load: bad root line %q", s)
		}
		f, err := dec(fields[1])
		if err != nil {
			for _, fr := range out {
				m.derefS(fr)
			}
			release()
			return nil, err
		}
		out[fields[0]] = m.refS(f)
	}
	release()
	return out, nil
}

// scan1 parses one integer with the given format.
func scan1(s, format string, v *int) bool {
	n, err := fmt.Sscanf(s, format, v)
	return err == nil && n == 1
}
