package bdd

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization: a line-oriented text format for persisting BDD forests.
// Nodes are written children-first with local identifiers, so loading is a
// single bottom-up pass; complement arcs are preserved as signed ids. The
// format is order-independent: loading rebuilds canonical nodes under the
// destination manager's current variable order.
//
//	bddkit-bdd v1
//	vars 12
//	nodes 3
//	1 4 +0 -0        # node 1: var 4, hi = One, lo = Zero
//	2 2 +1 -1
//	3 0 +2 -0
//	roots 1
//	f +3
//
// References are +id (regular) or -id (complemented); id 0 is the constant
// One, so -0 is written for Zero and parsed specially.

const ioMagic = "bddkit-bdd v1"

// Save writes the forest rooted at the named functions.
func (m *Manager) Save(w io.Writer, names []string, roots []Ref) error {
	if len(names) != len(roots) {
		return fmt.Errorf("bdd: Save: %d names for %d roots", len(names), len(roots))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, ioMagic)
	fmt.Fprintf(bw, "vars %d\n", m.NumVars())

	// Assign local ids in children-first order.
	local := map[uint32]int{One.ID(): 0}
	var order []Ref // regular refs, children first
	var visit func(r Ref)
	visit = func(r Ref) {
		if _, ok := local[r.ID()]; ok {
			return
		}
		visit(m.StructHi(r))
		visit(m.StructLo(r))
		local[r.ID()] = len(order) + 1
		order = append(order, r.Regular())
	}
	for _, r := range roots {
		if !r.IsConstant() {
			visit(r.Regular())
		}
	}
	enc := func(r Ref) string {
		sign := "+"
		if r.IsComplement() {
			sign = "-"
		}
		return fmt.Sprintf("%s%d", sign, local[r.ID()])
	}
	fmt.Fprintf(bw, "nodes %d\n", len(order))
	for _, r := range order {
		fmt.Fprintf(bw, "%d %d %s %s\n", local[r.ID()], m.Var(r), enc(m.StructHi(r)), enc(m.StructLo(r)))
	}
	fmt.Fprintf(bw, "roots %d\n", len(roots))
	for i, r := range roots {
		if strings.ContainsAny(names[i], " \t\n") {
			return fmt.Errorf("bdd: Save: root name %q contains whitespace", names[i])
		}
		fmt.Fprintf(bw, "%s %s\n", names[i], enc(r))
	}
	return bw.Flush()
}

// Load reads a forest saved by Save into this manager, growing the variable
// set if the file needs more variables. It returns the roots by name, each
// carrying one reference owned by the caller.
func (m *Manager) Load(r io.Reader) (map[string]Ref, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := func() (string, error) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s != "" && !strings.HasPrefix(s, "#") {
				return s, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if hdr != ioMagic {
		return nil, fmt.Errorf("bdd: Load: bad magic %q", hdr)
	}
	var nvars int
	if s, err := line(); err != nil || !scan1(s, "vars %d", &nvars) {
		return nil, fmt.Errorf("bdd: Load: missing vars header")
	}
	for m.NumVars() < nvars {
		m.AddVar()
	}
	var nnodes int
	if s, err := line(); err != nil || !scan1(s, "nodes %d", &nnodes) {
		return nil, fmt.Errorf("bdd: Load: missing nodes header")
	}
	// byID[i] holds the regular function for local id i; all are owned
	// here and released on return.
	byID := make([]Ref, nnodes+1)
	byID[0] = One
	// release drops the construction references; unfilled slots hold the
	// constant One, for which Deref is a no-op.
	release := func() {
		for _, f := range byID[1:] {
			m.Deref(f)
		}
	}
	filled := 0
	dec := func(tok string) (Ref, error) {
		if len(tok) < 2 || (tok[0] != '+' && tok[0] != '-') {
			return 0, fmt.Errorf("bdd: Load: bad ref %q", tok)
		}
		id, err := strconv.Atoi(tok[1:])
		if err != nil || id < 0 || id > filled {
			return 0, fmt.Errorf("bdd: Load: forward or invalid ref %q", tok)
		}
		f := byID[id]
		if tok[0] == '-' {
			f = f.Complement()
		}
		return f, nil
	}
	for i := 1; i <= nnodes; i++ {
		s, err := line()
		if err != nil {
			release()
			return nil, err
		}
		fields := strings.Fields(s)
		if len(fields) != 4 {
			release()
			return nil, fmt.Errorf("bdd: Load: bad node line %q", s)
		}
		id, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || id != i || v < 0 || v >= m.NumVars() {
			release()
			return nil, fmt.Errorf("bdd: Load: bad node header in %q", s)
		}
		hi, err := dec(fields[2])
		if err != nil {
			release()
			return nil, err
		}
		lo, err := dec(fields[3])
		if err != nil {
			release()
			return nil, err
		}
		byID[i] = m.ITE(m.IthVar(v), hi, lo)
		filled = i
	}
	var nroots int
	if s, err := line(); err != nil || !scan1(s, "roots %d", &nroots) {
		release()
		return nil, fmt.Errorf("bdd: Load: missing roots header")
	}
	out := make(map[string]Ref, nroots)
	for i := 0; i < nroots; i++ {
		s, err := line()
		if err != nil {
			for _, f := range out {
				m.Deref(f)
			}
			release()
			return nil, err
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			for _, f := range out {
				m.Deref(f)
			}
			release()
			return nil, fmt.Errorf("bdd: Load: bad root line %q", s)
		}
		f, err := dec(fields[1])
		if err != nil {
			for _, fr := range out {
				m.Deref(fr)
			}
			release()
			return nil, err
		}
		out[fields[0]] = m.Ref(f)
	}
	release()
	return out, nil
}

// scan1 parses one integer with the given format.
func scan1(s, format string, v *int) bool {
	n, err := fmt.Sscanf(s, format, v)
	return err == nil && n == 1
}
