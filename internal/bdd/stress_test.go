package bdd

import (
	"math/rand"
	"testing"
)

// TestStressRandomOps is the torture test: a long random sequence of
// operations — boolean connectives, quantification, cofactors,
// minimization, reordering, garbage collection, save/load — over a pool of
// live functions, interleaved with structural checks and truth-table
// verification of a designated witness function. It shakes out interaction
// bugs no targeted test reaches (reordering × cache × GC × resurrection).
func TestStressRandomOps(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped with -short")
	}
	const (
		nVars = 9
		steps = 4000
	)
	cfg := DefaultConfig()
	cfg.InitialNodes = 8 // force constant arena churn
	cfg.CacheBits = 8    // force cache collisions
	m := NewWithConfig(nVars, cfg)
	m.EnableAutoReorder(2000)
	rng := rand.New(rand.NewSource(20260705))

	type fn struct {
		ref Ref
		tt  []bool
	}
	ttOf := func(f Ref) []bool { return truthTable(m, f, nVars) }
	ttEq := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	pool := []fn{{ref: m.Ref(One)}, {ref: m.Ref(Zero)}}
	pool[0].tt = ttOf(One)
	pool[1].tt = ttOf(Zero)
	for i := 0; i < nVars; i++ {
		v := m.Ref(m.IthVar(i))
		pool = append(pool, fn{ref: v, tt: ttOf(v)})
	}
	pick := func() fn { return pool[rng.Intn(len(pool))] }
	push := func(r Ref, tt []bool) {
		pool = append(pool, fn{ref: r, tt: tt})
		// Keep the pool bounded: evict a random non-constant entry.
		if len(pool) > 40 {
			k := 2 + rng.Intn(len(pool)-2)
			m.Deref(pool[k].ref)
			pool[k] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		}
	}
	combine := func(a, b []bool, op func(bool, bool) bool) []bool {
		out := make([]bool, len(a))
		for i := range a {
			out[i] = op(a[i], b[i])
		}
		return out
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(12) {
		case 0:
			a, b := pick(), pick()
			r := m.And(a.ref, b.ref)
			push(r, combine(a.tt, b.tt, func(x, y bool) bool { return x && y }))
		case 1:
			a, b := pick(), pick()
			r := m.Or(a.ref, b.ref)
			push(r, combine(a.tt, b.tt, func(x, y bool) bool { return x || y }))
		case 2:
			a, b := pick(), pick()
			r := m.Xor(a.ref, b.ref)
			push(r, combine(a.tt, b.tt, func(x, y bool) bool { return x != y }))
		case 3:
			a := pick()
			r := m.Not(a.ref)
			push(r, combine(a.tt, a.tt, func(x, _ bool) bool { return !x }))
		case 4:
			a, b, c := pick(), pick(), pick()
			r := m.ITE(a.ref, b.ref, c.ref)
			tt := make([]bool, len(a.tt))
			for i := range tt {
				if a.tt[i] {
					tt[i] = b.tt[i]
				} else {
					tt[i] = c.tt[i]
				}
			}
			push(r, tt)
		case 5:
			a := pick()
			v := rng.Intn(nVars)
			r := m.Exists(a.ref, []int{v})
			tt := make([]bool, len(a.tt))
			for i := range tt {
				tt[i] = a.tt[i|1<<uint(v)] || a.tt[i&^(1<<uint(v))]
			}
			push(r, tt)
		case 6:
			a := pick()
			v := rng.Intn(nVars)
			val := rng.Intn(2) == 1
			r := m.CofactorVar(a.ref, v, val)
			tt := make([]bool, len(a.tt))
			for i := range tt {
				j := i &^ (1 << uint(v))
				if val {
					j |= 1 << uint(v)
				}
				tt[i] = a.tt[j]
			}
			push(r, tt)
		case 7:
			// Restrict against a non-empty care set: only check care
			// agreement, then drop the result.
			a, c := pick(), pick()
			if c.ref == Zero {
				continue
			}
			r := m.Restrict(a.ref, c.ref)
			rt := ttOf(r)
			for i := range rt {
				if c.tt[i] && rt[i] != a.tt[i] {
					t.Fatalf("step %d: restrict disagrees on care set", step)
				}
			}
			m.Deref(r)
		case 8:
			m.GarbageCollect()
		case 9:
			if rng.Intn(4) == 0 { // reordering is expensive; do it rarely
				method := []ReorderMethod{ReorderSift, ReorderWindow3}[rng.Intn(2)]
				m.Reorder(method, SiftConfig{})
			}
		case 10:
			// Minimize between two comparable functions.
			a, b := pick(), pick()
			l := m.And(a.ref, b.ref)
			u := m.Or(a.ref, b.ref)
			r := m.Minimize(l, u)
			if !m.Leq(l, r) || !m.Leq(r, u) {
				t.Fatalf("step %d: Minimize left the interval", step)
			}
			m.Deref(l)
			m.Deref(u)
			m.Deref(r)
		case 11:
			// Spot-check one pool entry against its recorded table.
			a := pick()
			if !ttEq(ttOf(a.ref), a.tt) {
				t.Fatalf("step %d: pool function corrupted", step)
			}
		}
		if step%500 == 499 {
			if err := m.DebugCheck(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			// Full pool verification at checkpoints.
			for k, e := range pool {
				if !ttEq(ttOf(e.ref), e.tt) {
					t.Fatalf("step %d: pool[%d] corrupted", step, k)
				}
			}
		}
	}
	for _, e := range pool {
		m.Deref(e.ref)
	}
	m.GarbageCollect()
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	if got := m.ReferencedNodeCount(); got != m.PermanentNodeCount()-1 {
		t.Fatalf("stress leak: %d live internal nodes, want %d",
			got, m.PermanentNodeCount()-1)
	}
}
