package bdd

// Essential variables: literals implied by a function. A positive literal
// x is essential for f when f ≤ x (every satisfying assignment sets x);
// dually a negative literal when f ≤ ¬x. CUDD exposes this as
// Cudd_FindEssential; it is used to peel forced literals off reached sets
// and constraints cheaply.

// FindEssential returns the cube of literals implied by f: the conjunction
// of every variable (or negation) that all satisfying assignments of f
// agree on. For f = Zero the answer is undefined and One is returned; for
// tautologies the cube is One.
func (m *Manager) FindEssential(f Ref) Ref {
	if f.IsConstant() {
		return m.Ref(One)
	}
	// A literal at level L is essential iff it dominates every path: x is
	// essential for f iff f's node has the form (x, t, 0) at every... the
	// direct characterization is simpler: test containment per support
	// variable. Containment tests against literals short-circuit fast
	// (Leq walks one branch), so this stays near-linear in practice.
	cube := m.Ref(One)
	for _, v := range m.SupportVars(f) {
		lit := m.IthVar(v)
		var chosen Ref
		if m.Leq(f, lit) {
			chosen = lit
		} else if m.Leq(f, lit.Complement()) {
			chosen = lit.Complement()
		} else {
			continue
		}
		nc := m.And(cube, chosen)
		m.Deref(cube)
		cube = nc
	}
	return cube
}
