package bdd

import (
	"sync"
	"testing"
)

// newPar returns a manager with the work-stealing engine armed, regardless
// of GOMAXPROCS, so the parallel code paths run even under -cpu 1.
func newPar(t *testing.T, vars, workers int) *Manager {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	m := NewWithConfig(vars, cfg)
	if m.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", m.Workers(), workers)
	}
	return m
}

// buildAdder builds the carry chain of an n-bit adder: a function family
// with heavy sharing and enough depth to trigger forking.
func buildAdder(m *Manager, n int) Ref {
	carry := Zero
	for i := 0; i < n; i++ {
		a := m.IthVar(2 * i)
		b := m.IthVar(2*i + 1)
		ab := m.And(a, b)
		axb := m.Xor(a, b)
		ac := m.And(axb, carry)
		nc := m.Or(ab, ac)
		m.Deref(ab)
		m.Deref(axb)
		m.Deref(ac)
		if carry != Zero {
			m.Deref(carry)
		}
		carry = nc
	}
	return carry
}

func TestParallelMatchesSerialAdder(t *testing.T) {
	const bits = 8
	ms := New(2 * bits)
	mp := newPar(t, 2*bits, 4)

	fs := buildAdder(ms, bits)
	fp := buildAdder(mp, bits)

	a := make([]bool, 2*bits)
	for i := 0; i < 1<<12; i++ {
		for j := range a {
			a[j] = i>>uint(j)&1 == 1
		}
		if ms.Eval(fs, a) != mp.Eval(fp, a) {
			t.Fatalf("parallel adder diverges from serial at assignment %d", i)
		}
	}
	if got, want := mp.DagSize(fp), ms.DagSize(fs); got != want {
		t.Fatalf("parallel DagSize %d, serial %d", got, want)
	}
	if err := mp.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck: %v", err)
	}
}

func TestParallelCanonicity(t *testing.T) {
	m := newPar(t, 16, 4)

	f1 := buildAdder(m, 8)
	f2 := buildAdder(m, 8)
	if f1 != f2 {
		t.Fatalf("same function built twice got different refs %v and %v", f1, f2)
	}
	m.Deref(f1)
	m.Deref(f2)
	m.GarbageCollect()
	if got := m.ReferencedNodeCount(); got != 16 {
		t.Fatalf("after release %d nodes referenced, want 16 projections", got)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck: %v", err)
	}
}

func TestParallelQuantifyComposePermute(t *testing.T) {
	const vars = 12
	ms := New(vars)
	mp := newPar(t, vars, 4)

	build := func(m *Manager) (f, g Ref) {
		f = buildAdder(m, vars/2)
		x, y := m.IthVar(1), m.IthVar(4)
		xy := m.Xor(x, y)
		g = m.And(f, xy)
		m.Deref(xy)
		return f, g
	}
	fs, gs := build(ms)
	fp, gp := build(mp)

	perm := make([]int, vars)
	for i := range perm {
		perm[i] = (i + 3) % vars
	}
	type result struct{ s, p Ref }
	cases := map[string]result{
		"exists":  {ms.Exists(fs, []int{0, 3}), mp.Exists(fp, []int{0, 3})},
		"forall":  {ms.ForAll(gs, []int{2}), mp.ForAll(gp, []int{2})},
		"compose": {ms.Compose(fs, 2, gs), mp.Compose(fp, 2, gp)},
		"permute": {ms.Permute(fs, perm), mp.Permute(fp, perm)},
		"diff":    {ms.Diff(gs, fs), mp.Diff(gp, fp)},
	}
	cube2s := ms.CubeFromVars([]int{1, 5})
	cube2p := mp.CubeFromVars([]int{1, 5})
	cases["relprod"] = result{ms.AndExists(fs, gs, cube2s), mp.AndExists(fp, gp, cube2p)}
	ms.Deref(cube2s)
	mp.Deref(cube2p)

	a := make([]bool, vars)
	for name, r := range cases {
		for i := 0; i < 1<<vars; i++ {
			for j := range a {
				a[j] = i>>uint(j)&1 == 1
			}
			if ms.Eval(r.s, a) != mp.Eval(r.p, a) {
				t.Fatalf("%s: parallel result diverges from serial at assignment %d", name, i)
			}
		}
	}
	if !mp.Leq(fp, fp) || mp.Leq(One, Zero) {
		t.Fatalf("parallel Leq is broken")
	}
	if err := mp.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck: %v", err)
	}
}

func TestParallelConcurrentClients(t *testing.T) {
	const vars = 14
	const clients = 8
	m := newPar(t, vars, 4)
	m.EnableAutoReorder(8192)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				f := buildAdder(m, vars/2)
				g := m.Exists(f, []int{c % vars, (c + 3) % vars})
				h := m.ITE(f, g, m.IthVar(c%vars))
				and := m.And(g, h)
				if !m.Leq(and, g) {
					errs <- errLeqViolated
					return
				}
				m.Deref(and)
				m.Deref(h)
				m.Deref(g)
				m.Deref(f)
			}
		}(c)
	}
	gcDone := make(chan struct{})
	go func() {
		defer close(gcDone)
		for i := 0; i < 10; i++ {
			m.GarbageCollect()
		}
	}()
	wg.Wait()
	<-gcDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatalf("DebugCheck after concurrent clients: %v", err)
	}
	m.GarbageCollect()
	if got := m.ReferencedNodeCount(); got != vars {
		t.Fatalf("after release %d nodes referenced, want %d projections", got, vars)
	}
}

var errLeqViolated = errLeq{}

type errLeq struct{}

func (errLeq) Error() string { return "Leq(g AND h, g) must hold" }
