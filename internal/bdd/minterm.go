package bdd

// Counting: DAG sizes, minterm counts, and the density measure δ(g) =
// ‖g‖/|g| that Section 2 of the paper ranks approximations by.

// DagSize returns |f|: the number of distinct nodes in the BDD rooted at f,
// including the constant node (the CUDD convention).
func (m *Manager) DagSize(f Ref) int {
	var n int
	m.readLocked(func() { n = m.dagSize(f) })
	return n
}

// dagSize is the lock-free body of DagSize, for internal use under a lease
// the caller already holds.
func (m *Manager) dagSize(f Ref) int {
	seen := make(map[int32]struct{})
	m.dagSizeRec(f.index(), seen)
	return len(seen)
}

func (m *Manager) dagSizeRec(idx int32, seen map[int32]struct{}) {
	if _, ok := seen[idx]; ok {
		return
	}
	seen[idx] = struct{}{}
	n := &m.nodes[idx]
	if n.level == terminalLevel {
		return
	}
	m.dagSizeRec(n.hi.index(), seen)
	m.dagSizeRec(n.lo.index(), seen)
}

// SharingSize returns the number of distinct nodes in the forest rooted at
// the given functions — the "shared size" reported in Table 4 of the paper.
func (m *Manager) SharingSize(fs []Ref) int {
	seen := make(map[int32]struct{})
	m.readLocked(func() {
		for _, f := range fs {
			m.dagSizeRec(f.index(), seen)
		}
	})
	return len(seen)
}

// CountMinterm returns ‖f‖: the number of minterms of f over nVars
// variables, as a float64 (exact for counts below 2^53, the CUDD
// convention).
func (m *Manager) CountMinterm(f Ref, nVars int) float64 {
	return m.MintermFraction(f) * pow2(nVars)
}

// MintermFraction returns ‖f‖ / 2^n: the fraction of the full variable
// space on which f is 1. It is independent of the number of variables.
func (m *Manager) MintermFraction(f Ref) float64 {
	var p float64
	m.readLocked(func() {
		memo := make(map[int32]float64)
		p = m.fracOf(f, memo)
	})
	return p
}

// fracOf returns the minterm fraction of the function denoted by ref,
// memoizing on regular node indices (the fraction of the complemented
// function is 1 - p).
func (m *Manager) fracOf(f Ref, memo map[int32]float64) float64 {
	p := m.fracRec(f.index(), memo)
	if f.IsComplement() {
		return 1 - p
	}
	return p
}

func (m *Manager) fracRec(idx int32, memo map[int32]float64) float64 {
	n := &m.nodes[idx]
	if n.level == terminalLevel {
		return 1 // the regular constant is One
	}
	if p, ok := memo[idx]; ok {
		return p
	}
	ph := m.fracRec(n.hi.index(), memo) // hi edge is regular by canonicity
	pl := m.fracRec(n.lo.index(), memo)
	if n.lo.IsComplement() {
		pl = 1 - pl
	}
	p := 0.5*ph + 0.5*pl
	memo[idx] = p
	return p
}

// Density returns δ(f) = ‖f‖ / |f| over nVars variables (Definition in
// Section 2 of the paper, after Ravi–Somenzi ICCAD'95).
func (m *Manager) Density(f Ref, nVars int) float64 {
	return m.CountMinterm(f, nVars) / float64(m.DagSize(f))
}

// CountPath returns the number of paths from f's root to the constant One
// (the number of cubes an AllSat enumeration would produce), as float64.
func (m *Manager) CountPath(f Ref) float64 {
	type key struct {
		idx int32
		neg bool
	}
	memo := make(map[key]float64)
	var rec func(r Ref) float64
	rec = func(r Ref) float64 {
		if r == One {
			return 1
		}
		if r == Zero {
			return 0
		}
		k := key{r.index(), r.IsComplement()}
		if v, ok := memo[k]; ok {
			return v
		}
		n := &m.nodes[r.index()]
		c := r & 1
		v := rec(n.hi^c) + rec(n.lo^c)
		memo[k] = v
		return v
	}
	var out float64
	m.readLocked(func() { out = rec(f) })
	return out
}

// pow2 returns 2^n as a float64 (n may exceed 63).
func pow2(n int) float64 {
	p := 1.0
	for n >= 60 {
		p *= float64(uint64(1) << 60)
		n -= 60
	}
	return p * float64(uint64(1)<<uint(n))
}
