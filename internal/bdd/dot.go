package bdd

import (
	"fmt"
	"io"
	"sort"
)

// DotOptions customizes DumpDotStyled output.
type DotOptions struct {
	// NodeColor, when non-nil, returns a Graphviz fillcolor for the node
	// with the given id ("" leaves the node unstyled). Profilers use it to
	// grade nodes by minterm density so the plot shows where approximation
	// will cut (see internal/prof.Profile.DotColor).
	NodeColor func(id uint32) string
}

// DumpDot writes the forest rooted at the named functions in Graphviz dot
// format, in the visual style of Figure 1 of the paper: solid lines for
// then arcs, dashed lines for regular else arcs, dotted lines for
// complemented else arcs.
func (m *Manager) DumpDot(w io.Writer, names []string, roots []Ref) error {
	return m.DumpDotStyled(w, names, roots, DotOptions{})
}

// DumpDotStyled is DumpDot with per-node styling.
func (m *Manager) DumpDotStyled(w io.Writer, names []string, roots []Ref, opts DotOptions) error {
	if len(names) != len(roots) {
		return fmt.Errorf("bdd: DumpDot: %d names for %d roots", len(names), len(roots))
	}
	if _, err := fmt.Fprintln(w, "digraph BDD {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir = TB;")
	// Collect nodes grouped by level for rank constraints.
	seen := make(map[int32]struct{})
	byLevel := make(map[int32][]int32)
	var collect func(idx int32)
	collect = func(idx int32) {
		if _, ok := seen[idx]; ok {
			return
		}
		seen[idx] = struct{}{}
		n := &m.nodes[idx]
		if n.level == terminalLevel {
			return
		}
		byLevel[n.level] = append(byLevel[n.level], idx)
		collect(n.hi.index())
		collect(n.lo.index())
	}
	for _, r := range roots {
		collect(r.index())
	}
	// Root pointers.
	for i, name := range names {
		fmt.Fprintf(w, "  %q [shape=plaintext];\n", name)
		style := "solid"
		if roots[i].IsComplement() {
			style = "dotted"
		}
		fmt.Fprintf(w, "  %q -> n%d [style=%s];\n", name, roots[i].index(), style)
	}
	// Nodes, one rank per level.
	levels := make([]int32, 0, len(byLevel))
	for lev := range byLevel {
		levels = append(levels, lev)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	for _, lev := range levels {
		fmt.Fprintf(w, "  { rank = same;")
		for _, idx := range byLevel[lev] {
			fmt.Fprintf(w, " n%d;", idx)
		}
		fmt.Fprintln(w, " }")
		for _, idx := range byLevel[lev] {
			style := ""
			if opts.NodeColor != nil {
				if c := opts.NodeColor(uint32(idx)); c != "" {
					style = fmt.Sprintf(", style=filled, fillcolor=%q", c)
				}
			}
			fmt.Fprintf(w, "  n%d [label=\"x%d\"%s];\n", idx, m.levToVar[lev], style)
		}
	}
	fmt.Fprintln(w, "  c1 [shape=box, label=\"1\"];")
	// Arcs.
	for idx := range seen {
		n := &m.nodes[idx]
		if n.level == terminalLevel {
			continue
		}
		fmt.Fprintf(w, "  n%d -> %s [style=solid];\n", idx, dotTarget(n.hi))
		style := "dashed"
		if n.lo.IsComplement() {
			style = "dotted"
		}
		fmt.Fprintf(w, "  n%d -> %s [style=%s];\n", idx, dotTarget(n.lo), style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func dotTarget(r Ref) string {
	if r.Regular() == One {
		return "c1"
	}
	return fmt.Sprintf("n%d", r.index())
}
