package bdd

import "sort"

// Support computation.

// SupportVars returns the indices of the variables f depends on, in
// increasing index order.
func (m *Manager) SupportVars(f Ref) []int {
	levels := make(map[int32]struct{})
	seen := make(map[int32]struct{})
	var vars []int
	m.readLocked(func() {
		m.supportRec(f.index(), seen, levels)
		vars = make([]int, 0, len(levels))
		for lev := range levels {
			vars = append(vars, int(m.levToVar[lev]))
		}
	})
	sort.Ints(vars)
	return vars
}

func (m *Manager) supportRec(idx int32, seen map[int32]struct{}, levels map[int32]struct{}) {
	if _, ok := seen[idx]; ok {
		return
	}
	seen[idx] = struct{}{}
	n := &m.nodes[idx]
	if n.level == terminalLevel {
		return
	}
	levels[n.level] = struct{}{}
	m.supportRec(n.hi.index(), seen, levels)
	m.supportRec(n.lo.index(), seen, levels)
}

// SupportSize returns the number of variables f depends on.
func (m *Manager) SupportSize(f Ref) int {
	levels := make(map[int32]struct{})
	seen := make(map[int32]struct{})
	m.readLocked(func() {
		m.supportRec(f.index(), seen, levels)
	})
	return len(levels)
}

// SupportCube returns the positive cube of f's support variables.
func (m *Manager) SupportCube(f Ref) Ref {
	return m.CubeFromVars(m.SupportVars(f))
}

// VectorSupport returns the union of the supports of the given functions.
func (m *Manager) VectorSupport(fs []Ref) []int {
	levels := make(map[int32]struct{})
	seen := make(map[int32]struct{})
	var vars []int
	m.readLocked(func() {
		for _, f := range fs {
			m.supportRec(f.index(), seen, levels)
		}
		vars = make([]int, 0, len(levels))
		for lev := range levels {
			vars = append(vars, int(m.levToVar[lev]))
		}
	})
	sort.Ints(vars)
	return vars
}
