package bdd

import (
	"math/rand"
	"testing"
)

// evalBrute evaluates a reference truth table built over n variables by
// exhaustive enumeration, for cross-checking BDD operations.
func truthTable(m *Manager, f Ref, n int) []bool {
	tt := make([]bool, 1<<uint(n))
	a := make([]bool, n)
	for x := range tt {
		for v := 0; v < n; v++ {
			a[v] = x>>uint(v)&1 == 1
		}
		tt[x] = m.Eval(f, a)
	}
	return tt
}

func TestConstants(t *testing.T) {
	m := New(4)
	if One.IsComplement() || !Zero.IsComplement() {
		t.Fatal("constant complement bits wrong")
	}
	if !One.IsConstant() || !Zero.IsConstant() {
		t.Fatal("constants not constant")
	}
	if One.Complement() != Zero || Zero.Complement() != One {
		t.Fatal("complement of constants wrong")
	}
	if m.Eval(One, nil) != true || m.Eval(Zero, nil) != false {
		t.Fatal("Eval of constants wrong")
	}
}

func TestVariables(t *testing.T) {
	m := New(3)
	for i := 0; i < 3; i++ {
		v := m.IthVar(i)
		if m.Var(v) != i {
			t.Fatalf("Var(IthVar(%d)) = %d", i, m.Var(v))
		}
		if m.Hi(v) != One || m.Lo(v) != Zero {
			t.Fatalf("projection structure wrong for var %d", i)
		}
		a := make([]bool, 3)
		if m.Eval(v, a) {
			t.Fatal("var true under all-false assignment")
		}
		a[i] = true
		if !m.Eval(v, a) {
			t.Fatal("var false when set")
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	x, y := m.IthVar(0), m.IthVar(1)
	a := m.And(x, y)
	b := m.And(y, x)
	if a != b {
		t.Fatal("AND not canonical under argument order")
	}
	// De Morgan: ¬(x·y) == ¬x + ¬y
	na := m.Not(a)
	nb := m.Or(m.Not(x), m.Not(y))
	// Or returns an owned ref; Not(x) above leaked a ref but tests may.
	if na != nb {
		t.Fatal("De Morgan violated")
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestOpsAgainstBruteForce(t *testing.T) {
	const n = 5
	m := New(n)
	rng := rand.New(rand.NewSource(42))
	// Build 40 random functions via random expression trees and check
	// every operator against truth tables.
	randFunc := func(depth int) Ref {
		var rec func(d int) Ref
		rec = func(d int) Ref {
			if d == 0 {
				v := m.IthVar(rng.Intn(n))
				if rng.Intn(2) == 0 {
					return m.Not(v)
				}
				return m.Ref(v)
			}
			a := rec(d - 1)
			b := rec(d - 1)
			var r Ref
			switch rng.Intn(3) {
			case 0:
				r = m.And(a, b)
			case 1:
				r = m.Or(a, b)
			default:
				r = m.Xor(a, b)
			}
			m.Deref(a)
			m.Deref(b)
			return r
		}
		return rec(depth)
	}
	for i := 0; i < 40; i++ {
		f := randFunc(3)
		g := randFunc(3)
		tf, tg := truthTable(m, f, n), truthTable(m, g, n)

		and := m.And(f, g)
		or := m.Or(f, g)
		xor := m.Xor(f, g)
		imp := m.Implies(f, g)
		ta, to, tx, ti := truthTable(m, and, n), truthTable(m, or, n), truthTable(m, xor, n), truthTable(m, imp, n)
		for x := range tf {
			if ta[x] != (tf[x] && tg[x]) {
				t.Fatalf("AND wrong at %d", x)
			}
			if to[x] != (tf[x] || tg[x]) {
				t.Fatalf("OR wrong at %d", x)
			}
			if tx[x] != (tf[x] != tg[x]) {
				t.Fatalf("XOR wrong at %d", x)
			}
			if ti[x] != (!tf[x] || tg[x]) {
				t.Fatalf("IMPLIES wrong at %d", x)
			}
		}
		// ITE(f, g, ¬g) == XNOR? sanity via identity ITE(f,g,h).
		h := randFunc(2)
		th := truthTable(m, h, n)
		ite := m.ITE(f, g, h)
		tite := truthTable(m, ite, n)
		for x := range tf {
			want := th[x]
			if tf[x] {
				want = tg[x]
			}
			if tite[x] != want {
				t.Fatalf("ITE wrong at %d", x)
			}
		}
		// Leq agrees with the truth tables.
		leq := true
		for x := range tf {
			if tf[x] && !tg[x] {
				leq = false
				break
			}
		}
		if m.Leq(f, g) != leq {
			t.Fatal("Leq wrong")
		}
		for _, r := range []Ref{and, or, xor, imp, ite, f, g, h} {
			m.Deref(r)
		}
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestMintermCount(t *testing.T) {
	const n = 6
	m := New(n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		// Random function over n vars via random on-set.
		f := Zero
		for x := 0; x < 1<<n; x++ {
			if rng.Intn(4) != 0 {
				continue
			}
			cube := make([]int8, n)
			for v := 0; v < n; v++ {
				if x>>uint(v)&1 == 1 {
					cube[v] = LitPos
				} else {
					cube[v] = LitNeg
				}
			}
			c := m.CubeToRef(cube)
			nf := m.Or(f, c)
			m.Deref(c)
			m.Deref(f)
			f = nf
		}
		tt := truthTable(m, f, n)
		want := 0
		for _, b := range tt {
			if b {
				want++
			}
		}
		if got := m.CountMinterm(f, n); got != float64(want) {
			t.Fatalf("CountMinterm = %v, brute force = %d", got, want)
		}
		m.Deref(f)
	}
}

func TestQuantification(t *testing.T) {
	const n = 5
	m := New(n)
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		f := randomOnSet(m, rng, n, 0.4)
		v := rng.Intn(n)
		ex := m.Exists(f, []int{v})
		fa := m.ForAll(f, []int{v})
		tf := truthTable(m, f, n)
		te := truthTable(m, ex, n)
		ta := truthTable(m, fa, n)
		for x := 0; x < 1<<n; x++ {
			x1 := x | 1<<uint(v)
			x0 := x &^ (1 << uint(v))
			if te[x] != (tf[x1] || tf[x0]) {
				t.Fatal("Exists wrong")
			}
			if ta[x] != (tf[x1] && tf[x0]) {
				t.Fatal("ForAll wrong")
			}
		}
		// AndExists == Exists(And).
		g := randomOnSet(m, rng, n, 0.4)
		cube := m.CubeFromVars([]int{v, (v + 2) % n})
		ae := m.AndExists(f, g, cube)
		fg := m.And(f, g)
		exfg := m.ExistsCube(fg, cube)
		if ae != exfg {
			t.Fatal("AndExists != Exists∘And")
		}
		for _, r := range []Ref{f, g, ex, fa, cube, ae, fg, exfg} {
			m.Deref(r)
		}
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// randomOnSet builds a random function where each minterm is in the on-set
// with probability p.
func randomOnSet(m *Manager, rng *rand.Rand, n int, p float64) Ref {
	f := Zero
	cube := make([]int8, n)
	for x := 0; x < 1<<uint(n); x++ {
		if rng.Float64() >= p {
			continue
		}
		for v := 0; v < n; v++ {
			if x>>uint(v)&1 == 1 {
				cube[v] = LitPos
			} else {
				cube[v] = LitNeg
			}
		}
		c := m.CubeToRef(cube)
		nf := m.Or(f, c)
		m.Deref(c)
		m.Deref(f)
		f = nf
	}
	return f
}

func TestGarbageCollection(t *testing.T) {
	m := New(8)
	base := m.ReferencedNodeCount()
	var fs []Ref
	for i := 0; i < 7; i++ {
		f := m.And(m.IthVar(i), m.IthVar(i+1))
		fs = append(fs, f)
	}
	for _, f := range fs {
		m.Deref(f)
	}
	m.GarbageCollect()
	if got := m.ReferencedNodeCount(); got != base {
		t.Fatalf("leak: %d live internal nodes, want %d", got, base)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadNodeResurrection(t *testing.T) {
	m := New(4)
	f := m.And(m.IthVar(0), m.IthVar(1))
	m.Deref(f) // f is now dead but still in the table
	g := m.And(m.IthVar(0), m.IthVar(1))
	if f != g {
		t.Fatal("dead node not reused")
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	m.Deref(g)
}

func TestRestrictAgreesOnCareSet(t *testing.T) {
	const n = 5
	m := New(n)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		f := randomOnSet(m, rng, n, 0.5)
		c := randomOnSet(m, rng, n, 0.6)
		if c == Zero {
			m.Deref(f)
			continue
		}
		for name, op := range map[string]func(Ref, Ref) Ref{
			"restrict":  m.Restrict,
			"constrain": m.Constrain,
		} {
			r := op(f, c)
			// r·c == f·c
			rc := m.And(r, c)
			fc := m.And(f, c)
			if rc != fc {
				t.Fatalf("%s does not agree with f on care set", name)
			}
			m.Deref(r)
			m.Deref(rc)
			m.Deref(fc)
		}
		m.Deref(f)
		m.Deref(c)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRestrictRemapFigure1 reproduces the remapping example of Figure 1 of
// the paper: when one child of the care set is Zero, restrict replaces the
// corresponding subgraph of f with the sibling, making the parent node
// redundant.
func TestRestrictRemapFigure1(t *testing.T) {
	m := New(3)
	x, y, z := m.IthVar(0), m.IthVar(1), m.IthVar(2)
	// f = x·(y·z) + ¬x·(y+z); c = x (else branch of c is 0).
	ft := m.And(y, z)
	fe := m.Or(y, z)
	f := m.ITE(x, ft, fe)
	r := m.Restrict(f, x)
	// The result must agree with f where x=1, i.e. equal f_t, and must not
	// contain x.
	if r != ft {
		t.Fatalf("Restrict did not remap to the then child: got %d nodes", m.DagSize(r))
	}
	for _, v := range m.SupportVars(r) {
		if v == 0 {
			t.Fatal("restricted function still depends on x")
		}
	}
	for _, ref := range []Ref{ft, fe, f, r} {
		m.Deref(ref)
	}
}

func TestMinimizeInterval(t *testing.T) {
	const n = 5
	m := New(n)
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		a := randomOnSet(m, rng, n, 0.3)
		b := randomOnSet(m, rng, n, 0.5)
		l := m.And(a, b) // l ≤ u by construction
		u := m.Or(a, b)
		r := m.Minimize(l, u)
		if !m.Leq(l, r) || !m.Leq(r, u) {
			t.Fatal("Minimize left the interval")
		}
		if sz := m.DagSize(r); sz > m.DagSize(l) || sz > m.DagSize(u) {
			t.Fatal("Minimize not safe")
		}
		for _, ref := range []Ref{a, b, l, u, r} {
			m.Deref(ref)
		}
	}
}

func TestSqueezeInterval(t *testing.T) {
	const n = 6
	m := New(n)
	rng := rand.New(rand.NewSource(211))
	for iter := 0; iter < 40; iter++ {
		a := randomOnSet(m, rng, n, 0.35)
		b := randomOnSet(m, rng, n, 0.5)
		l := m.And(a, b)
		u := m.Or(a, b)
		r := m.Squeeze(l, u)
		if !m.Leq(l, r) || !m.Leq(r, u) {
			t.Fatal("Squeeze left the interval")
		}
		// Squeeze should exploit don't cares: never bigger than what
		// Minimize (which includes it as a candidate) settles on.
		mu := m.Minimize(l, u)
		if m.DagSize(mu) > m.DagSize(l) || m.DagSize(mu) > m.DagSize(u) {
			t.Fatal("Minimize not safe with Squeeze candidate")
		}
		for _, x := range []Ref{a, b, l, u, r, mu} {
			m.Deref(x)
		}
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestPermute(t *testing.T) {
	const n = 4
	m := New(n)
	rng := rand.New(rand.NewSource(5))
	perm := []int{2, 3, 0, 1}
	for iter := 0; iter < 20; iter++ {
		f := randomOnSet(m, rng, n, 0.5)
		g := m.Permute(f, perm)
		tf, tg := truthTable(m, f, n), truthTable(m, g, n)
		for x := 0; x < 1<<n; x++ {
			// assignment for g: variable perm[v] gets x's bit v.
			y := 0
			for v := 0; v < n; v++ {
				if x>>uint(v)&1 == 1 {
					y |= 1 << uint(perm[v])
				}
			}
			if tg[y] != tf[x] {
				t.Fatal("Permute wrong")
			}
		}
		m.Deref(f)
		m.Deref(g)
	}
}

func TestComposeDefinition(t *testing.T) {
	const n = 5
	m := New(n)
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 20; iter++ {
		f := randomOnSet(m, rng, n, 0.5)
		g := randomOnSet(m, rng, n, 0.5)
		v := rng.Intn(n)
		got := m.Compose(f, v, g)
		// Shannon: f[v<-g] = g·f|v=1 + ¬g·f|v=0
		f1 := m.CofactorVar(f, v, true)
		f0 := m.CofactorVar(f, v, false)
		want := m.ITE(g, f1, f0)
		if got != want {
			t.Fatal("Compose disagrees with Shannon expansion")
		}
		for _, r := range []Ref{f, g, got, f1, f0, want} {
			m.Deref(r)
		}
	}
}

func TestSupportAndCubes(t *testing.T) {
	m := New(6)
	x0, x2, x5 := m.IthVar(0), m.IthVar(2), m.IthVar(5)
	t1 := m.And(x0, x2)
	f := m.Xor(t1, x5)
	vars := m.SupportVars(f)
	if len(vars) != 3 || vars[0] != 0 || vars[1] != 2 || vars[2] != 5 {
		t.Fatalf("support = %v", vars)
	}
	cube := m.PickOneCube(f)
	if cube == nil {
		t.Fatal("no cube for satisfiable function")
	}
	c := m.CubeToRef(cube)
	if !m.Leq(c, f) {
		t.Fatal("picked cube not contained in f")
	}
	m.Deref(t1)
	m.Deref(f)
	m.Deref(c)
}

func TestForEachCubeCoversFunction(t *testing.T) {
	const n = 4
	m := New(n)
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 10; iter++ {
		f := randomOnSet(m, rng, n, 0.4)
		union := Zero
		m.ForEachCube(f, func(cube []int8) bool {
			c := m.CubeToRef(cube)
			nu := m.Or(union, c)
			m.Deref(c)
			m.Deref(union)
			union = nu
			return true
		})
		if union != f {
			t.Fatal("cube enumeration does not reconstruct f")
		}
		m.Deref(union)
		m.Deref(f)
	}
}
