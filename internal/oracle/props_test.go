package oracle

import (
	"fmt"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/reach"
)

// TestApproxSafetyOracle is the table-driven safety sweep demanded by the
// paper's Section 2 invariants: across ≥200 seeded random functions and
// several thresholds, every one of the six approximation methods must
// return a subset (oracle-checked implication) that never grows the DAG.
func TestApproxSafetyOracle(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		vars  int
		depth int
		funcs int
	}{
		{"small-dense", 11, 8, 5, 70},
		{"mid", 22, 12, 6, 70},
		{"wide", 33, 14, 7, 60},
	}
	thresholds := []int{0, 4, 16, 64}
	total := 0
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := bdd.New(tc.vars)
			g := NewGen(tc.seed, tc.vars)
			c := NewChecker(tc.seed + 1)
			for i := 0; i < tc.funcs; i++ {
				f := g.Expr(tc.depth).Build(m)
				for _, th := range thresholds {
					if err := c.CheckApproxMethods(m, f, th); err != nil {
						t.Fatalf("function %d threshold %d: %v", i, th, err)
					}
				}
				m.Deref(f)
			}
			if err := m.DebugCheck(); err != nil {
				t.Fatal(err)
			}
		})
		total += tc.funcs
	}
	if total < 200 {
		t.Fatalf("sweep covers %d functions, want ≥ 200", total)
	}
}

// TestDecompRecompositionOracle: every decomposition selector must
// recompose exactly — structurally and against truth-table semantics —
// on seeded random functions.
func TestDecompRecompositionOracle(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	g := NewGen(77, n)
	c := NewChecker(78)
	for i := 0; i < 80; i++ {
		f := g.Expr(6).Build(m)
		if err := c.CheckDecompSelectors(m, f); err != nil {
			t.Fatalf("function %d: %v", i, err)
		}
		m.Deref(f)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripDifferentOrder: serialization must survive reloading under
// a reversed variable order (the format is order-independent) and reloads
// into the source manager must be canonical.
func TestRoundTripDifferentOrder(t *testing.T) {
	const n = 11
	m := bdd.New(n)
	g := NewGen(88, n)
	c := NewChecker(89)
	for i := 0; i < 30; i++ {
		names := make([]string, 3)
		roots := make([]bdd.Ref, 3)
		for j := range roots {
			names[j] = fmt.Sprintf("f%d", j)
			roots[j] = g.Expr(5).Build(m)
		}
		if err := c.CheckRoundTrip(m, names, roots); err != nil {
			t.Fatalf("forest %d: %v", i, err)
		}
		for _, r := range roots {
			m.Deref(r)
		}
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSetOrderPreservesSemantics: SetOrder is the order scrambler the
// round-trip check depends on; it must keep every external Ref denoting
// the same function.
func TestSetOrderPreservesSemantics(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	g := NewGen(99, n)
	c := NewChecker(100)
	var fs []bdd.Ref
	var tabs []Table
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	for i := 0; i < 8; i++ {
		f := g.Expr(5).Build(m)
		fs = append(fs, f)
		tabs = append(tabs, TableOf(m, f, vars))
	}
	if err := m.SetOrder(reverseOrder(n)); err != nil {
		t.Fatal(err)
	}
	for lev := 0; lev < n; lev++ {
		if got, want := m.VarAtLevel(lev), n-1-lev; got != want {
			t.Fatalf("level %d holds variable %d, want %d", lev, got, want)
		}
	}
	for i, f := range fs {
		if idx, ok := tabs[i].Equal(TableOf(m, f, vars)); !ok {
			t.Fatalf("function %d changed at assignment %d after SetOrder", i, idx)
		}
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	// A second scramble back to identity must also round-trip.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if err := m.SetOrder(order); err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		if idx, ok := tabs[i].Equal(TableOf(m, f, vars)); !ok {
			t.Fatalf("function %d changed at assignment %d after restoring order", i, idx)
		}
		m.Deref(f)
	}
	if err := c.Equal(m, bdd.One, bdd.One); err != nil {
		t.Fatal(err)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// counterNetlist builds the k-bit enabled counter used across the repo's
// reachability tests.
func counterNetlist(k int) *circuit.Netlist {
	b := circuit.NewBuilder("counter")
	en := b.Input("en")
	q := b.LatchBus("q", k, 0)
	inc, _ := b.Incrementer(q)
	next := b.MuxBus(en, inc, q)
	b.SetNextBus(q, next)
	b.Output("tc", b.EqConst(q, uint64(1<<uint(k)-1)))
	return b.MustBuild()
}

// lfsrNetlist builds a k-bit linear feedback shift register with an
// enable input — a sequential circuit whose reachable set is not an
// interval, unlike the counter's.
func lfsrNetlist(k int) *circuit.Netlist {
	b := circuit.NewBuilder("lfsr")
	en := b.Input("en")
	q := b.LatchBus("q", k, 1)
	fb := b.Xor(q[0], q[k-1])
	shifted := make([]circuit.Sig, k)
	for i := 0; i < k-1; i++ {
		shifted[i] = q[i+1]
	}
	shifted[k-1] = fb
	next := b.MuxBus(en, shifted, q)
	b.SetNextBus(q, next)
	b.Output("z", q[0])
	return b.MustBuild()
}

// TestReachFixedPointOracle: BFS and high-density traversal must agree on
// the exact fixed point for every subsetter, on two different circuit
// shapes.
func TestReachFixedPointOracle(t *testing.T) {
	subsetters := map[string]reach.Subsetter{
		"rua": reach.RUASubsetter(1.0),
		"sp":  reach.SPSubsetter(),
		"hb":  reach.HBSubsetter(),
	}
	nets := map[string]*circuit.Netlist{
		"counter5": counterNetlist(5),
		"lfsr5":    lfsrNetlist(5),
	}
	for nname, nl := range nets {
		for sname, sub := range subsetters {
			t.Run(nname+"/"+sname, func(t *testing.T) {
				cmp, err := circuit.Compile(nl, circuit.CompileOptions{})
				if err != nil {
					t.Fatal(err)
				}
				defer cmp.Release()
				c := NewChecker(123)
				for _, th := range []int{0, 8, 30} {
					if err := c.CheckReachFixedPoint(cmp, sub, th); err != nil {
						t.Fatalf("threshold %d: %v", th, err)
					}
				}
				if err := cmp.M.DebugCheck(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
