package oracle

import "testing"

// TestStress1000Steps is the acceptance run of the op-sequence driver:
// 1000 seeded steps with GC, dynamic reordering, and save/load round trips
// interleaved, DebugCheck after every step, and reference accounting at
// the end. The Makefile also runs this package under -race.
func TestStress1000Steps(t *testing.T) {
	res, err := RunStress(StressConfig{Seed: 1, Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1000 {
		t.Fatalf("ran %d steps, want 1000", res.Steps)
	}
	// The run is only meaningful if the lifecycle events actually fired.
	if res.GCs == 0 {
		t.Fatal("no garbage collection happened during the stress run")
	}
	if res.Reorderings == 0 {
		t.Fatal("no reordering happened during the stress run")
	}
	for _, op := range []string{"ite", "exists", "compose", "saveload"} {
		if res.Ops[op] == 0 {
			t.Fatalf("operation %q never executed in 1000 steps", op)
		}
	}
}

// TestStressSeeds runs shorter sweeps across several seeds so a latent
// ordering- or GC-dependent bug has more distinct schedules to hide in.
func TestStressSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stress skipped in -short mode")
	}
	for seed := int64(2); seed <= 6; seed++ {
		if _, err := RunStress(StressConfig{Seed: seed, Steps: 300, Vars: 8}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestStressDeterminism: identical configurations must perform the exact
// same operation mix — the reproducibility a fuzz-failure report needs.
func TestStressDeterminism(t *testing.T) {
	a, err := RunStress(StressConfig{Seed: 9, Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStress(StressConfig{Seed: 9, Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op mixes differ: %v vs %v", a.Ops, b.Ops)
	}
	for op, n := range a.Ops {
		if b.Ops[op] != n {
			t.Fatalf("op %q ran %d vs %d times under the same seed", op, n, b.Ops[op])
		}
	}
}
