package oracle

import (
	"bytes"
	"fmt"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/decomp"
	"bddkit/internal/reach"
)

// Property checkers wiring the truth-table oracle to the paper's
// invariants. Each checker returns nil when the property holds and an
// error naming the violated invariant (with a counterexample assignment
// where one exists) otherwise, so tests and the stress driver can share
// them.

// ApproxMethod names one of the paper's subset algorithms and how to run
// it; the returned reference is owned by the caller.
type ApproxMethod struct {
	Name string
	Run  func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref
}

// ApproxMethods enumerates all six approximation methods of Section 2
// with the parameter settings used by the paper's experiments (quality 1
// for the remap family, balanced alpha for UA).
func ApproxMethods() []ApproxMethod {
	return []ApproxMethod{
		{"RUA", func(m *bdd.Manager, f bdd.Ref, th int) bdd.Ref { return approx.RemapUnderApprox(m, f, th, 1.0) }},
		{"HB", func(m *bdd.Manager, f bdd.Ref, th int) bdd.Ref { return approx.HeavyBranch(m, f, th) }},
		{"SP", func(m *bdd.Manager, f bdd.Ref, th int) bdd.Ref { return approx.ShortPaths(m, f, th) }},
		{"UA", func(m *bdd.Manager, f bdd.Ref, th int) bdd.Ref { return approx.UnderApprox(m, f, th, 0.5) }},
		{"C1", func(m *bdd.Manager, f bdd.Ref, th int) bdd.Ref { return approx.Compound1(m, f, th, 1.0) }},
		{"C2", func(m *bdd.Manager, f bdd.Ref, th int) bdd.Ref { return approx.Compound2(m, f, th, 1.0) }},
	}
}

// CheckUnderApprox validates the two safety invariants every
// under-approximation must satisfy (Section 2 of the paper): sub ⇒ f
// checked both against brute-force semantics and the structural Leq, and
// |sub| ≤ |f| (a subset that grew the DAG defeats its purpose).
func (c *Checker) CheckUnderApprox(m *bdd.Manager, f, sub bdd.Ref, name string) error {
	if err := c.Implies(m, sub, f); err != nil {
		return fmt.Errorf("%s: not an under-approximation: %w", name, err)
	}
	if !m.Leq(sub, f) {
		return fmt.Errorf("%s: oracle accepts sub ⇒ f but structural Leq rejects it", name)
	}
	if ns, nf := m.DagSize(sub), m.DagSize(f); ns > nf {
		return fmt.Errorf("%s: subset has %d nodes > original %d", name, ns, nf)
	}
	return nil
}

// CheckApproxMethods runs every approximation method on f at the given
// threshold and validates the safety invariants of each result.
func (c *Checker) CheckApproxMethods(m *bdd.Manager, f bdd.Ref, threshold int) error {
	for _, am := range ApproxMethods() {
		sub := am.Run(m, f, threshold)
		err := c.CheckUnderApprox(m, f, sub, am.Name)
		m.Deref(sub)
		if err != nil {
			return err
		}
	}
	return nil
}

// CheckConjPair validates an exact conjunctive recomposition: G ∧ H must
// rebuild f — structurally (canonical Refs must be identical) and against
// brute-force semantics.
func (c *Checker) CheckConjPair(m *bdd.Manager, f bdd.Ref, p decomp.Pair, name string) error {
	r := m.And(p.G, p.H)
	defer m.Deref(r)
	if r != f {
		return fmt.Errorf("%s: G∧H is not structurally f", name)
	}
	if err := c.Equal(m, r, f); err != nil {
		return fmt.Errorf("%s: G∧H differs from f: %w", name, err)
	}
	return nil
}

// CheckDisjPair validates an exact disjunctive recomposition G ∨ H = f.
func (c *Checker) CheckDisjPair(m *bdd.Manager, f bdd.Ref, p decomp.Pair, name string) error {
	r := m.Or(p.G, p.H)
	defer m.Deref(r)
	if r != f {
		return fmt.Errorf("%s: G∨H is not structurally f", name)
	}
	if err := c.Equal(m, r, f); err != nil {
		return fmt.Errorf("%s: G∨H differs from f: %w", name, err)
	}
	return nil
}

// CheckDecompSelectors runs all four decomposition-point selectors of
// Section 3 — Band, Disjoint, the Cofactor baseline, and McMillan's
// canonical conjunctive decomposition — plus the disjunctive duals, and
// validates exact recomposition for each.
func (c *Checker) CheckDecompSelectors(m *bdd.Manager, f bdd.Ref) error {
	band := decomp.BandPoints(m, f, decomp.DefaultBandConfig())
	p := decomp.Decompose(m, f, band)
	if err := c.CheckConjPair(m, f, p, "Band"); err != nil {
		p.Deref(m)
		return err
	}
	p.Deref(m)
	p = decomp.DecomposeDisjunctive(m, f, decomp.BandPoints(m, f.Complement(), decomp.DefaultBandConfig()))
	if err := c.CheckDisjPair(m, f, p, "Band-disjunctive"); err != nil {
		p.Deref(m)
		return err
	}
	p.Deref(m)

	disj := decomp.DisjointPoints(m, f, decomp.DefaultDisjointConfig())
	p = decomp.Decompose(m, f, disj)
	if err := c.CheckConjPair(m, f, p, "Disjoint"); err != nil {
		p.Deref(m)
		return err
	}
	p.Deref(m)

	p = decomp.Cofactor(m, f)
	if err := c.CheckConjPair(m, f, p, "Cofactor"); err != nil {
		p.Deref(m)
		return err
	}
	p.Deref(m)
	p = decomp.CofactorDisjunctive(m, f)
	if err := c.CheckDisjPair(m, f, p, "Cofactor-disjunctive"); err != nil {
		p.Deref(m)
		return err
	}
	p.Deref(m)

	factors := decomp.McMillan(m, f)
	conj := decomp.ConjoinAll(m, factors)
	err := func() error {
		if conj != f {
			return fmt.Errorf("McMillan: conjunction of %d factors is not structurally f", len(factors))
		}
		return c.Equal(m, conj, f)
	}()
	m.Deref(conj)
	for _, fi := range factors {
		m.Deref(fi)
	}
	return err
}

// reverseOrder is the scramble applied by CheckRoundTrip: the destination
// manager puts the variables in exactly the opposite order of the source.
func reverseOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	return order
}

// CheckRoundTrip validates Save/Load: the forest is serialized, reloaded
// into a fresh manager whose variable order has been reversed (the format
// is declared order-independent, so this must still reconstruct the same
// functions), and every root is compared across managers against
// brute-force semantics. The forest is also reloaded into the source
// manager, where canonicity demands bit-identical Refs.
func (c *Checker) CheckRoundTrip(m *bdd.Manager, names []string, roots []bdd.Ref) error {
	var buf bytes.Buffer
	if err := m.Save(&buf, names, roots); err != nil {
		return fmt.Errorf("save: %w", err)
	}
	data := buf.Bytes()

	m2 := bdd.New(m.NumVars())
	if m2.NumVars() > 1 {
		if err := m2.SetOrder(reverseOrder(m2.NumVars())); err != nil {
			return err
		}
	}
	loaded, err := m2.Load(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("load into reversed-order manager: %w", err)
	}
	for i, name := range names {
		g, ok := loaded[name]
		if !ok {
			return fmt.Errorf("root %q lost in round trip", name)
		}
		if err := c.EqualAcross(m, roots[i], m2, g); err != nil {
			return fmt.Errorf("root %q: %w", name, err)
		}
	}
	for _, g := range loaded {
		m2.Deref(g)
	}
	if err := m2.DebugCheck(); err != nil {
		return fmt.Errorf("destination manager corrupt after load: %w", err)
	}

	reloaded, err := m.Load(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("reload into source manager: %w", err)
	}
	for i, name := range names {
		if g := reloaded[name]; g != roots[i] {
			for _, h := range reloaded {
				m.Deref(h)
			}
			return fmt.Errorf("root %q: reload into source manager broke canonicity", name)
		}
	}
	for _, g := range reloaded {
		m.Deref(g)
	}
	return nil
}

// CheckReachFixedPoint runs BFS and high-density traversal on the same
// compiled circuit and validates that both reach the identical fixed
// point: bit-identical reached sets (one shared manager makes canonical
// equality exact), equal state counts, and brute-force-equal semantics.
func (c *Checker) CheckReachFixedPoint(cmp *circuit.Compiled, subset reach.Subsetter, threshold int) error {
	tr, err := reach.NewTR(cmp, reach.DefaultTROptions())
	if err != nil {
		return err
	}
	defer tr.Release()
	m := cmp.M

	bfs := tr.BFS(cmp.Init, reach.Options{})
	defer m.Deref(bfs.Reached)
	if !bfs.Completed {
		return fmt.Errorf("BFS did not converge")
	}
	hd := tr.HighDensity(cmp.Init, reach.Options{Subset: subset, Threshold: threshold})
	defer m.Deref(hd.Reached)
	if !hd.Completed {
		return fmt.Errorf("high-density traversal did not converge")
	}
	if bfs.Reached != hd.Reached {
		return fmt.Errorf("BFS and high-density reached sets are not structurally equal")
	}
	if bfs.States != hd.States {
		return fmt.Errorf("state counts differ: BFS %v vs HD %v", bfs.States, hd.States)
	}
	if err := c.Equal(m, bfs.Reached, hd.Reached); err != nil {
		return fmt.Errorf("reached sets differ semantically: %w", err)
	}
	return nil
}
