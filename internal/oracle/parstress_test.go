package oracle

import (
	"testing"
	"time"

	"bddkit/internal/bdd"
)

// TestParallelStress is the concurrent acceptance run: 8 client goroutines
// build, quantify, and compose on one Workers=4 manager while GC and
// reordering fire from a lifecycle goroutine. The Makefile runs this
// package under -race, which turns the run into the memory-model check.
func TestParallelStress(t *testing.T) {
	cfg := ParStressConfig{Seed: 1}
	if testing.Short() {
		cfg.Rounds = 8
	}
	res, err := RunParallelStress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GCs == 0 {
		t.Fatal("no garbage collection happened during the concurrent run")
	}
	if res.Reorderings == 0 {
		t.Fatal("no reordering happened during the concurrent run")
	}
}

// TestSerialStressOnParallelManager replays the full differential
// op-sequence driver (GC, reordering, save/load interleaved, DebugCheck
// every step) against a Workers=4 manager from a single client. Every
// divergence here is a bug in the parallel entry points or the exclusive
// sections, with none of the scheduling noise of the concurrent run.
func TestSerialStressOnParallelManager(t *testing.T) {
	steps := 600
	if testing.Short() {
		steps = 150
	}
	if _, err := RunStress(StressConfig{Seed: 3, Steps: steps, Workers: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkersDeterminism: the parallel engine must compute the same
// functions as the serial reference engine across the expression corpus,
// and rebuilding a function on the same parallel manager must return the
// identical Ref (canonicity is scheduling-independent).
func TestWorkersDeterminism(t *testing.T) {
	const vars = 12
	const exprs = 40
	m1 := bdd.New(vars)
	cfg4 := bdd.DefaultConfig()
	cfg4.Workers = 4
	m4 := bdd.NewWithConfig(vars, cfg4)
	chk := NewChecker(11)

	gen := NewGen(17, vars)
	for i := 0; i < exprs; i++ {
		e := gen.Expr(6)
		f1 := e.Build(m1)
		f4 := e.Build(m4)
		if err := chk.EqualAcross(m1, f1, m4, f4); err != nil {
			t.Fatalf("expr %d: Workers=1 and Workers=4 disagree: %v", i, err)
		}
		again := e.Build(m4)
		if again != f4 {
			t.Fatalf("expr %d: rebuilding on the parallel manager gave ref %v, first build %v", i, again, f4)
		}
		m4.Deref(again)
		m1.Deref(f1)
		m4.Deref(f4)
	}
	if err := m4.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelStressWithTelemetry re-runs the concurrent hammer with the
// sampled instrumentation armed and a snapshot goroutine polling the
// merged telemetry throughout — under -race (make race / make vet) this is
// the memory-model check for the observability paths: per-worker counter
// writes, the level-heat table swap at AddVar/STW, and racy snapshot
// merges must all coexist with GC and reordering. The watchdog runs with a
// generous deadline; a healthy run must never trip it.
func TestParallelStressWithTelemetry(t *testing.T) {
	cfg := ParStressConfig{Seed: 7, SampleRate: 4, StallDeadline: 10 * time.Second}
	if testing.Short() {
		cfg.Rounds = 8
	}
	res, err := RunParallelStress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots == 0 {
		t.Fatal("snapshot hammer never ran")
	}
	if res.Telemetry.Workers != 4 {
		t.Fatalf("telemetry workers = %d, want 4", res.Telemetry.Workers)
	}
	if res.Telemetry.UniqueWait.Count == 0 {
		t.Error("no sampled unique-table waits at rate 4 under full load")
	}
	if len(res.Telemetry.STW) == 0 {
		t.Error("no STW causes recorded despite GC and reordering firing")
	}
	if res.Telemetry.SampleRate != 4 {
		t.Errorf("telemetry sample rate = %d, want 4", res.Telemetry.SampleRate)
	}
}
