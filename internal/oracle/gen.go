package oracle

import (
	"math/rand"

	"bddkit/internal/bdd"
)

// Random boolean functions for differential testing, adapted from
// Clément's exhaustive small-n ROBDD enumeration idea: a seeded generator
// produces expression trees whose semantics are defined independently of
// the BDD package (Expr.Eval walks the tree), and whose BDD form is built
// through the public operation API (Expr.Build). Comparing the two is the
// differential oracle for the kernel.

// ExprKind labels a node of a random expression tree.
type ExprKind int

const (
	ExprVar ExprKind = iota // leaf: a literal (variable or its negation)
	ExprAnd
	ExprOr
	ExprXor
	ExprIte // three-way: if L then R else E
)

// Expr is a boolean expression tree with reference semantics independent
// of any BDD machinery.
type Expr struct {
	Kind    ExprKind
	Var     int  // leaf variable index
	Neg     bool // leaf polarity
	L, R, E *Expr
}

// Eval evaluates the expression directly on an assignment (the reference
// semantics; no BDD code is involved).
func (e *Expr) Eval(a []bool) bool {
	switch e.Kind {
	case ExprVar:
		v := e.Var < len(a) && a[e.Var]
		return v != e.Neg
	case ExprAnd:
		return e.L.Eval(a) && e.R.Eval(a)
	case ExprOr:
		return e.L.Eval(a) || e.R.Eval(a)
	case ExprXor:
		return e.L.Eval(a) != e.R.Eval(a)
	case ExprIte:
		if e.L.Eval(a) {
			return e.R.Eval(a)
		}
		return e.E.Eval(a)
	}
	panic("oracle: bad expression kind")
}

// Build constructs the BDD of the expression through the public operation
// API; the caller owns the returned reference.
func (e *Expr) Build(m *bdd.Manager) bdd.Ref {
	switch e.Kind {
	case ExprVar:
		v := m.Ref(m.IthVar(e.Var))
		if e.Neg {
			return v.Complement()
		}
		return v
	case ExprIte:
		f := e.L.Build(m)
		g := e.R.Build(m)
		h := e.E.Build(m)
		r := m.ITE(f, g, h)
		m.Deref(f)
		m.Deref(g)
		m.Deref(h)
		return r
	}
	l := e.L.Build(m)
	r := e.R.Build(m)
	var out bdd.Ref
	switch e.Kind {
	case ExprAnd:
		out = m.And(l, r)
	case ExprOr:
		out = m.Or(l, r)
	case ExprXor:
		out = m.Xor(l, r)
	}
	m.Deref(l)
	m.Deref(r)
	return out
}

// Vars returns the sorted distinct variables mentioned by the expression.
func (e *Expr) Vars() []int {
	seen := make(map[int]bool)
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x == nil {
			return
		}
		if x.Kind == ExprVar {
			seen[x.Var] = true
			return
		}
		walk(x.L)
		walk(x.R)
		walk(x.E)
	}
	walk(e)
	vars := make([]int, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	return vars
}

// Gen generates seeded random expressions over a fixed variable count.
type Gen struct {
	Rng *rand.Rand
	N   int // variables are drawn from 0..N-1
}

// NewGen returns a generator over n variables.
func NewGen(seed int64, n int) *Gen {
	return &Gen{Rng: rand.New(rand.NewSource(seed)), N: n}
}

// Expr returns a random expression tree of the given depth.
func (g *Gen) Expr(depth int) *Expr {
	if depth <= 0 {
		return &Expr{Kind: ExprVar, Var: g.Rng.Intn(g.N), Neg: g.Rng.Intn(2) == 0}
	}
	switch g.Rng.Intn(8) {
	case 0, 1:
		return &Expr{Kind: ExprAnd, L: g.Expr(depth - 1), R: g.Expr(depth - 1)}
	case 2, 3:
		return &Expr{Kind: ExprOr, L: g.Expr(depth - 1), R: g.Expr(depth - 1)}
	case 4, 5:
		return &Expr{Kind: ExprXor, L: g.Expr(depth - 1), R: g.Expr(depth - 1)}
	case 6:
		return &Expr{Kind: ExprIte, L: g.Expr(depth - 1), R: g.Expr(depth - 1), E: g.Expr(depth - 1)}
	default:
		return g.Expr(0)
	}
}

// Assignment draws a uniform random assignment over the generator's
// variables.
func (g *Gen) Assignment() []bool {
	a := make([]bool, g.N)
	for i := range a {
		a[i] = g.Rng.Intn(2) == 1
	}
	return a
}
