package oracle

import (
	"math"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/count"
	"bddkit/internal/model/gauntlet"
)

// TestQueensSequenceOracle: counts for n = 1..8 must reproduce the
// published sequence, with boards up to 16 variables double-checked by
// exhaustive truth-table evaluation.
func TestQueensSequenceOracle(t *testing.T) {
	maxN := 8
	if testing.Short() {
		maxN = 6
	}
	if err := CheckQueensSequence(maxN); err != nil {
		t.Fatal(err)
	}
}

// TestSamplerUniformity: 10k fixed-seed draws over the 10 solutions of
// queens5 must pass the Pearson chi-squared test at p = 0.01 (df = 9,
// critical value ~21.67).
func TestSamplerUniformity(t *testing.T) {
	p := gauntlet.Params{Family: gauntlet.FamilyQueens, N: 5}
	m, f, err := gauntlet.New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Deref(f)
	if err := CheckSamplerUniform(m, f, p.Vars(), 10000, 1); err != nil {
		t.Fatal(err)
	}
	// A second seed: one lucky stream is not evidence.
	if err := CheckSamplerUniform(m, f, p.Vars(), 10000, 2); err != nil {
		t.Fatal(err)
	}
}

// TestCountInvarianceGauntlet runs the full invariance battery (ground
// truth, reorder, GC, Save/Load, Workers=4 rebuild) on every smoke
// instance.
func TestCountInvarianceGauntlet(t *testing.T) {
	for _, p := range gauntlet.SmallInstances() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			if testing.Short() && p.Vars() > 40 {
				t.Skip("large instance in -short mode")
			}
			if err := CheckCountInvariance(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEnumerateMinterms(t *testing.T) {
	m := bdd.New(4)
	f := m.Or(m.IthVar(0), m.IthVar(1))
	defer m.Deref(f)
	sols, err := EnumerateMinterms(m, f, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 12 {
		t.Fatalf("x0∨x1 over 4 vars has %d enumerated minterms, want 12", len(sols))
	}
	seen := map[[4]bool]bool{}
	for _, a := range sols {
		var k [4]bool
		copy(k[:], a)
		if seen[k] {
			t.Fatalf("minterm %v enumerated twice", a)
		}
		seen[k] = true
		if !Eval(m, f, a) {
			t.Fatalf("enumerated non-minterm %v", a)
		}
	}
	if _, err := EnumerateMinterms(m, f, 4, 5); err == nil {
		t.Fatal("enumeration past the cap must fail")
	}
	if _, err := EnumerateMinterms(m, f, 2, 64); err == nil {
		t.Fatal("a space below the manager's variable count must fail")
	}
}

// TestChiSquaredCritical pins the Wilson–Hilferty approximation against
// published table values at p = 0.01.
func TestChiSquaredCritical(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 6.635}, {4, 13.277}, {9, 21.666}, {99, 134.642},
	}
	for _, tc := range cases {
		got := chiSquaredCritical(tc.df)
		if math.Abs(got-tc.want) > 0.02*tc.want+0.05 {
			t.Errorf("chi2 crit df=%d: %v, table %v", tc.df, got, tc.want)
		}
	}
}

// FuzzGauntletParams drives Params decoding from arbitrary values:
// Validate must reject pathological boards with an error (never a panic
// or a monster allocation), and anything it accepts that is small enough
// must build, count to a value in [0, 2^vars], and match the family's
// ground truth when one is in range.
func FuzzGauntletParams(f *testing.F) {
	f.Add(uint8(0), 6, 0, 0, false, uint64(0))
	f.Add(uint8(1), 0, 3, 3, false, uint64(1))
	f.Add(uint8(2), 0, 2, 3, false, uint64(0))
	f.Add(uint8(3), 0, 3, 3, false, uint64(0))
	f.Add(uint8(4), 8, 0, 0, true, uint64(0))
	f.Add(uint8(0), -5, 1<<30, -9, true, uint64(9))
	f.Add(uint8(1), 0, 3, 3074457345618258603, false, uint64(3))
	f.Fuzz(func(t *testing.T, fam uint8, n, rows, cols int, fault bool, targetBits uint64) {
		fams := gauntlet.Families()
		p := gauntlet.Params{
			Family: fams[int(fam)%len(fams)],
			N:      n,
			Rows:   rows,
			Cols:   cols,
			Fault:  fault,
		}
		// Odd targetBits selects an explicit life target from the
		// remaining bits (possibly of the wrong length — Validate's job).
		if targetBits&1 == 1 {
			cells := int(targetBits >> 58 & 63)
			tgt := make([]bool, cells)
			for i := range tgt {
				tgt[i] = targetBits&(1<<uint(i+1)) != 0
			}
			p.Target = tgt
		}
		if err := p.Validate(); err != nil {
			return // graceful rejection is the contract for garbage
		}
		if p.Vars() > 30 {
			return // accepted but too big for a fuzz iteration
		}
		m, fn, err := gauntlet.New(p)
		if err != nil {
			t.Fatalf("%s: validated params failed to build: %v", p.Name(), err)
		}
		c, err := count.Minterms(m, fn, p.Vars())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if c.Sign() < 0 || c.BitLen() > p.Vars()+1 {
			t.Fatalf("%s: absurd count %v over %d variables", p.Name(), c, p.Vars())
		}
		if want, ok := ExpectedCount(p); ok && c.Cmp(want) != 0 {
			t.Fatalf("%s: counted %v, ground truth %v", p.Name(), c, want)
		}
		m.Deref(fn)
		if err := m.DebugCheck(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	})
}
