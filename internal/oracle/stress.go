package oracle

import (
	"bytes"
	"fmt"
	"math/rand"

	"bddkit/internal/bdd"
)

// Random op-sequence stress driver: every manager operation is shadowed by
// the same operation on brute-force truth tables, and the two worlds are
// compared after each step. Garbage collection, dynamic reordering, and
// save/load round trips are interleaved with the functional operations, so
// the canonicity and reference-count checks of Manager.DebugCheck run
// against a manager in every phase of its lifecycle, not just a freshly
// built one.

// StressConfig parameterizes a stress run. The zero value selects the
// defaults via normalize.
type StressConfig struct {
	// Seed drives every random choice; equal seeds give equal runs.
	Seed int64
	// Steps is the number of operations performed (default 1000).
	Steps int
	// Vars is the number of manager variables; must stay within
	// MaxExhaustiveVars so the shadow tables remain exact (default 10).
	Vars int
	// Pool is the number of live functions maintained (default 24).
	Pool int
	// CheckEvery runs Manager.DebugCheck every k steps (default 1:
	// after every step, as the invariants demand).
	CheckEvery int
	// ReorderThreshold arms automatic sifting at this live-node count
	// (default 256, low enough to fire many times per run).
	ReorderThreshold int
	// Workers configures the manager's parallel engine (default 0: the
	// serial reference engine). The driver itself stays single-threaded,
	// so with Workers > 1 it exercises the parallel entry points and the
	// quiescence interop of GC/reorder/save-load without scheduling
	// nondeterminism.
	Workers int
}

func (cfg *StressConfig) normalize() {
	if cfg.Steps <= 0 {
		cfg.Steps = 1000
	}
	if cfg.Vars <= 0 {
		cfg.Vars = 10
	}
	if cfg.Vars > MaxExhaustiveVars {
		cfg.Vars = MaxExhaustiveVars
	}
	if cfg.Pool <= 0 {
		cfg.Pool = 24
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	if cfg.ReorderThreshold <= 0 {
		cfg.ReorderThreshold = 256
	}
}

// StressResult summarizes a completed run.
type StressResult struct {
	Steps       int
	Ops         map[string]int // operation name -> times performed
	Reorderings int64          // sifting passes observed (auto + explicit)
	GCs         int64          // garbage collections observed
	PeakLive    int            // high-water mark of live nodes
}

// poolEntry pairs a live function with its exact shadow semantics.
type poolEntry struct {
	ref   bdd.Ref
	table Table
}

// RunStress executes the randomized operation sequence and returns an
// error at the first divergence between the manager and the shadow
// semantics, the first DebugCheck violation, or a reference-count leak at
// the end of the run.
func RunStress(cfg StressConfig) (StressResult, error) {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bcfg := bdd.DefaultConfig()
	bcfg.Workers = cfg.Workers
	m := bdd.NewWithConfig(cfg.Vars, bcfg)
	m.EnableAutoReorder(cfg.ReorderThreshold)
	res := StressResult{Ops: make(map[string]int)}

	vars := make([]int, cfg.Vars)
	for i := range vars {
		vars[i] = i
	}
	varTable := func(v int) Table {
		t := NewTable(vars)
		bit := 1 << uint(v)
		for i := 0; i < t.Len(); i++ {
			t.Set(i, i&bit != 0)
		}
		return t
	}

	// verify compares a function against its shadow table exhaustively.
	verify := func(step int, op string, f bdd.Ref, want Table) error {
		a := make([]bool, cfg.Vars)
		for i := 0; i < want.Len(); i++ {
			for j := range vars {
				a[j] = i>>uint(j)&1 == 1
			}
			if Eval(m, f, a) != want.Get(i) {
				return fmt.Errorf("step %d: %s diverges from shadow semantics at %s",
					step, op, formatAssignment(a, vars))
			}
		}
		return nil
	}

	// Seed the pool with literals and small combinations.
	pool := make([]poolEntry, 0, cfg.Pool)
	for i := 0; i < cfg.Pool; i++ {
		v := rng.Intn(cfg.Vars)
		e := poolEntry{ref: m.Ref(m.IthVar(v)), table: varTable(v)}
		if rng.Intn(2) == 0 {
			e.ref = e.ref.Complement()
			e.table = e.table.Not()
		}
		pool = append(pool, e)
	}
	pick := func() *poolEntry { return &pool[rng.Intn(len(pool))] }

	// replace installs a fresh (ref, table) over a random pool slot,
	// releasing the previous occupant.
	replace := func(ref bdd.Ref, t Table) {
		slot := &pool[rng.Intn(len(pool))]
		m.Deref(slot.ref)
		slot.ref, slot.table = ref, t
	}

	for step := 1; step <= cfg.Steps; step++ {
		var (
			op       string
			ref      bdd.Ref
			want     Table
			produced bool
		)
		switch k := rng.Intn(16); {
		case k < 3: // ITE
			op = "ite"
			f, g, h := pick(), pick(), pick()
			ref = m.ITE(f.ref, g.ref, h.ref)
			want = f.table.Ite(g.table, h.table)
			produced = true
		case k < 5:
			op = "and"
			f, g := pick(), pick()
			ref = m.And(f.ref, g.ref)
			want = f.table.And(g.table)
			produced = true
		case k < 7:
			op = "xor"
			f, g := pick(), pick()
			ref = m.Xor(f.ref, g.ref)
			want = f.table.Xor(g.table)
			produced = true
		case k < 8:
			op = "not"
			f := pick()
			ref = m.Ref(f.ref.Complement())
			want = f.table.Not()
			produced = true
		case k < 10: // quantification over 1-2 variables
			forall := rng.Intn(2) == 0
			nq := 1 + rng.Intn(2)
			qvars := make([]int, nq)
			for i := range qvars {
				qvars[i] = rng.Intn(cfg.Vars)
			}
			f := pick()
			want = f.table
			for _, v := range qvars {
				want = want.Quant(v, forall)
			}
			if forall {
				op = "forall"
				ref = m.ForAll(f.ref, qvars)
			} else {
				op = "exists"
				ref = m.Exists(f.ref, qvars)
			}
			produced = true
		case k < 11: // relational product
			op = "andexists"
			f, g := pick(), pick()
			v := rng.Intn(cfg.Vars)
			cube := m.CubeFromVars([]int{v})
			ref = m.AndExists(f.ref, g.ref, cube)
			m.Deref(cube)
			want = f.table.And(g.table).Quant(v, false)
			produced = true
		case k < 13: // composition
			op = "compose"
			f, g := pick(), pick()
			v := rng.Intn(cfg.Vars)
			ref = m.Compose(f.ref, v, g.ref)
			want = f.table.Compose(v, g.table)
			produced = true
		case k < 14: // explicit GC interleaving
			op = "gc"
			m.GarbageCollect()
		case k < 15: // explicit reordering interleaving
			op = "reorder"
			if rng.Intn(2) == 0 {
				m.Reorder(bdd.ReorderSift, bdd.SiftConfig{})
			} else {
				m.Reorder(bdd.ReorderWindow3, bdd.SiftConfig{})
			}
		default: // save/load round trip of a pool sample
			op = "saveload"
			n := 1 + rng.Intn(3)
			names := make([]string, n)
			roots := make([]bdd.Ref, n)
			idx := make([]int, n)
			for i := 0; i < n; i++ {
				j := rng.Intn(len(pool))
				idx[i] = j
				names[i] = fmt.Sprintf("f%d", i)
				roots[i] = pool[j].ref
			}
			var buf bytes.Buffer
			if err := m.Save(&buf, names, roots); err != nil {
				return res, fmt.Errorf("step %d: save: %w", step, err)
			}
			loaded, err := m.Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				return res, fmt.Errorf("step %d: load: %w", step, err)
			}
			for i, name := range names {
				g := loaded[name]
				if g != roots[i] {
					return res, fmt.Errorf("step %d: save/load broke canonicity of %s", step, name)
				}
				if err := verify(step, "saveload", g, pool[idx[i]].table); err != nil {
					return res, err
				}
			}
			for _, g := range loaded {
				m.Deref(g)
			}
		}
		res.Ops[op]++
		if produced {
			if err := verify(step, op, ref, want); err != nil {
				return res, err
			}
			replace(ref, want)
		}
		if step%cfg.CheckEvery == 0 {
			if err := m.DebugCheck(); err != nil {
				return res, fmt.Errorf("step %d (%s): DebugCheck: %w", step, op, err)
			}
		}
	}

	// Reference accounting: releasing the pool must leave exactly the
	// permanent nodes (the projection function of each variable) live.
	for i := range pool {
		m.Deref(pool[i].ref)
	}
	m.GarbageCollect()
	if got, want := m.ReferencedNodeCount(), cfg.Vars; got != want {
		return res, fmt.Errorf("after releasing the pool %d nodes stay referenced, want %d (leak or double free)", got, want)
	}
	if err := m.DebugCheck(); err != nil {
		return res, fmt.Errorf("final DebugCheck: %w", err)
	}

	st := m.Stats()
	res.Steps = cfg.Steps
	res.Reorderings = st.Reorderings
	res.GCs = st.GCs
	res.PeakLive = st.PeakLive
	return res, nil
}
