package oracle

import (
	"math/rand"
	"testing"

	"bddkit/internal/bdd"
)

// TestEvaluatorsAgree: the oracle's evaluator and the kernel's Eval are
// independent code paths; they must agree on random functions under random
// assignments (a differential test of the evaluators themselves).
func TestEvaluatorsAgree(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	g := NewGen(101, n)
	for iter := 0; iter < 50; iter++ {
		e := g.Expr(5)
		f := e.Build(m)
		for s := 0; s < 200; s++ {
			a := g.Assignment()
			if Eval(m, f, a) != m.Eval(f, a) {
				t.Fatalf("oracle and kernel evaluators disagree (iter %d)", iter)
			}
		}
		m.Deref(f)
	}
}

// TestBDDMatchesExpr: the differential core — a BDD built through the
// operation API must realize exactly the semantics of the expression tree
// it was built from, on every assignment.
func TestBDDMatchesExpr(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	g := NewGen(202, n)
	c := NewChecker(303)
	for iter := 0; iter < 100; iter++ {
		e := g.Expr(6)
		f := e.Build(m)
		if err := c.EqualFunc(m, f, e.Eval, e.Vars()); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		m.Deref(f)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestTableCombinators: the shadow-table algebra agrees with tables
// recomputed from the BDD results.
func TestTableCombinators(t *testing.T) {
	const n = 8
	m := bdd.New(n)
	g := NewGen(404, n)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	rng := rand.New(rand.NewSource(505))
	for iter := 0; iter < 40; iter++ {
		ea, eb := g.Expr(4), g.Expr(4)
		fa, fb := ea.Build(m), eb.Build(m)
		ta, tb := TableOf(m, fa, vars), TableOf(m, fb, vars)

		and := m.And(fa, fb)
		if i, ok := ta.And(tb).Equal(TableOf(m, and, vars)); !ok {
			t.Fatalf("iter %d: And tables differ at %d", iter, i)
		}
		m.Deref(and)

		xor := m.Xor(fa, fb)
		if i, ok := ta.Xor(tb).Equal(TableOf(m, xor, vars)); !ok {
			t.Fatalf("iter %d: Xor tables differ at %d", iter, i)
		}
		m.Deref(xor)

		v := rng.Intn(n)
		ex := m.Exists(fa, []int{v})
		if i, ok := ta.Quant(v, false).Equal(TableOf(m, ex, vars)); !ok {
			t.Fatalf("iter %d: Exists tables differ at %d", iter, i)
		}
		m.Deref(ex)

		fa2 := m.ForAll(fa, []int{v})
		if i, ok := ta.Quant(v, true).Equal(TableOf(m, fa2, vars)); !ok {
			t.Fatalf("iter %d: ForAll tables differ at %d", iter, i)
		}
		m.Deref(fa2)

		co := m.Compose(fa, v, fb)
		if i, ok := ta.Compose(v, tb).Equal(TableOf(m, co, vars)); !ok {
			t.Fatalf("iter %d: Compose tables differ at %d", iter, i)
		}
		m.Deref(co)

		m.Deref(fa)
		m.Deref(fb)
	}
}

// TestCheckerDetectsDifference: the oracle must actually flag functions
// that differ (a sanity test that the harness can fail).
func TestCheckerDetectsDifference(t *testing.T) {
	m := bdd.New(4)
	c := NewChecker(1)
	x0, x1 := m.IthVar(0), m.IthVar(1)
	f := m.And(x0, x1)
	g := m.Or(x0, x1)
	if err := c.Equal(m, f, g); err == nil {
		t.Fatal("oracle failed to distinguish AND from OR")
	}
	if err := c.Implies(m, g, f); err == nil {
		t.Fatal("oracle failed to refute OR ⇒ AND")
	}
	if err := c.Implies(m, f, g); err != nil {
		t.Fatalf("AND ⇒ OR should hold: %v", err)
	}
	m.Deref(f)
	m.Deref(g)
}

// TestGenDeterminism: equal seeds must generate equal expressions — the
// reproducibility contract every failure report relies on.
func TestGenDeterminism(t *testing.T) {
	m := bdd.New(10)
	g1 := NewGen(42, 10)
	g2 := NewGen(42, 10)
	for i := 0; i < 20; i++ {
		f1 := g1.Expr(6).Build(m)
		f2 := g2.Expr(6).Build(m)
		if f1 != f2 {
			t.Fatalf("iteration %d: same seed, different functions", i)
		}
		m.Deref(f1)
		m.Deref(f2)
	}
}

// TestSamplingFallback: joint supports beyond MaxExhaustiveVars take the
// sampling path and still detect planted differences.
func TestSamplingFallback(t *testing.T) {
	const n = MaxExhaustiveVars + 8
	m := bdd.New(n)
	c := NewChecker(7)
	// f = x0 ⊕ x1 ⊕ ... over all n variables: wide support, and any
	// single-bit perturbation flips every assignment's value.
	f := m.Ref(bdd.Zero)
	for i := 0; i < n; i++ {
		nf := m.Xor(f, m.IthVar(i))
		m.Deref(f)
		f = nf
	}
	if err := c.Equal(m, f, f); err != nil {
		t.Fatalf("self-equality under sampling: %v", err)
	}
	if err := c.Equal(m, f, f.Complement()); err == nil {
		t.Fatal("sampling failed to distinguish f from ¬f")
	}
	m.Deref(f)
}
