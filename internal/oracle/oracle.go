// Package oracle is the differential-testing and fuzzing harness of the
// repository: it validates every layer of the stack — the BDD kernel, the
// approximation algorithms of Section 2 of the paper, the decomposition
// algorithms of Section 3, serialization, and the reachability engine —
// against brute-force truth-table semantics.
//
// The design follows the semantic-crosscheck idea of Sølvsten & van de
// Pol's external-memory BDD work (differential validation against a
// reference evaluator) combined with exhaustive small-n enumeration: any
// function whose support fits in MaxExhaustiveVars variables is compared
// on every one of its ≤ 2^16 assignments, and larger functions fall back
// to seeded random-assignment sampling. Three layers build on this core:
//
//   - property checkers (props.go) for the paper's invariants — every
//     under-approximation implies the original and never grows the DAG,
//     every decomposition conjoins/disjoins back exactly, save/load
//     round-trips are semantics-preserving even under a different
//     variable order, and BFS and high-density traversal reach the same
//     fixed point;
//   - a random op-sequence stress driver (stress.go) that shadows every
//     manager operation with a truth-table interpreter and cross-checks
//     after each step, with GC, dynamic reordering, and save/load
//     interleaved;
//   - native Go fuzz targets (fuzz_test.go) for the untrusted-input
//     surfaces: the BDD file format, the netlist parser, and byte-driven
//     ITE sequences.
package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"bddkit/internal/bdd"
)

// MaxExhaustiveVars is the largest support size checked exhaustively; a
// function over more variables is checked on random samples instead.
const MaxExhaustiveVars = 16

// DefaultSamples is the number of random assignments drawn when a check
// falls back to sampling.
const DefaultSamples = 4096

// Eval evaluates f under the given assignment by walking the diagram with
// the public cofactor accessors. It is deliberately a separate code path
// from bdd.Manager.Eval (which walks structural edges tracking complement
// parity): the two evaluators crosscheck each other in the oracle's own
// tests.
func Eval(m *bdd.Manager, f bdd.Ref, assign []bool) bool {
	for !f.IsConstant() {
		v := m.Var(f)
		if v < len(assign) && assign[v] {
			f = m.Hi(f)
		} else {
			f = m.Lo(f)
		}
	}
	return f == bdd.One
}

// Table is a brute-force truth table over an explicit variable list:
// entry i holds the function value under the assignment where variable
// Vars[j] takes bit j of i and every other variable is false. Tables are
// the reference semantics the BDD layers are checked against; all
// combinators are plain bit manipulation with no BDD involvement.
type Table struct {
	Vars []int
	bits []uint64
}

// NewTable returns an all-false table over the given variables.
func NewTable(vars []int) Table {
	if len(vars) > MaxExhaustiveVars {
		panic(fmt.Sprintf("oracle: table over %d > %d variables", len(vars), MaxExhaustiveVars))
	}
	n := 1 << len(vars)
	return Table{Vars: append([]int(nil), vars...), bits: make([]uint64, (n+63)/64)}
}

// Len returns the number of assignments the table covers.
func (t Table) Len() int { return 1 << len(t.Vars) }

// Get returns the value under assignment index i.
func (t Table) Get(i int) bool { return t.bits[i>>6]>>(uint(i)&63)&1 == 1 }

// Set sets the value under assignment index i.
func (t *Table) Set(i int, v bool) {
	if v {
		t.bits[i>>6] |= 1 << (uint(i) & 63)
	} else {
		t.bits[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Assignment expands assignment index i into a dense assignment slice of
// length nvars (variables outside t.Vars are false).
func (t Table) Assignment(i, nvars int) []bool {
	a := make([]bool, nvars)
	for j, v := range t.Vars {
		a[v] = i>>uint(j)&1 == 1
	}
	return a
}

// TableOf computes the truth table of f over the given variables by
// exhaustive evaluation.
func TableOf(m *bdd.Manager, f bdd.Ref, vars []int) Table {
	t := NewTable(vars)
	a := make([]bool, m.NumVars())
	for i := 0; i < t.Len(); i++ {
		for j, v := range vars {
			a[v] = i>>uint(j)&1 == 1
		}
		t.Set(i, Eval(m, f, a))
	}
	return t
}

// TableOfFunc computes the truth table of an arbitrary reference function
// over the given variables; fn receives a dense assignment of nvars values.
func TableOfFunc(fn func([]bool) bool, vars []int, nvars int) Table {
	t := NewTable(vars)
	a := make([]bool, nvars)
	for i := 0; i < t.Len(); i++ {
		for j, v := range vars {
			a[v] = i>>uint(j)&1 == 1
		}
		t.Set(i, fn(a))
	}
	return t
}

// binop applies a pointwise combinator; both tables must share Vars.
func (t Table) binop(u Table, f func(a, b uint64) uint64) Table {
	t.mustMatch(u)
	r := NewTable(t.Vars)
	for i := range r.bits {
		r.bits[i] = f(t.bits[i], u.bits[i])
	}
	r.maskTail()
	return r
}

func (t Table) mustMatch(u Table) {
	if len(t.Vars) != len(u.Vars) {
		panic("oracle: table variable lists differ")
	}
	for i := range t.Vars {
		if t.Vars[i] != u.Vars[i] {
			panic("oracle: table variable lists differ")
		}
	}
}

// maskTail clears the bits beyond Len() so word-level comparisons work.
func (t Table) maskTail() {
	n := t.Len()
	if n&63 != 0 {
		t.bits[len(t.bits)-1] &= 1<<(uint(n)&63) - 1
	}
}

// And returns the pointwise conjunction.
func (t Table) And(u Table) Table { return t.binop(u, func(a, b uint64) uint64 { return a & b }) }

// Or returns the pointwise disjunction.
func (t Table) Or(u Table) Table { return t.binop(u, func(a, b uint64) uint64 { return a | b }) }

// Xor returns the pointwise exclusive or.
func (t Table) Xor(u Table) Table { return t.binop(u, func(a, b uint64) uint64 { return a ^ b }) }

// Not returns the pointwise complement.
func (t Table) Not() Table {
	r := NewTable(t.Vars)
	for i := range r.bits {
		r.bits[i] = ^t.bits[i]
	}
	r.maskTail()
	return r
}

// Ite returns pointwise if-t-then-u-else-v.
func (t Table) Ite(u, v Table) Table {
	t.mustMatch(u)
	t.mustMatch(v)
	r := NewTable(t.Vars)
	for i := range r.bits {
		r.bits[i] = t.bits[i]&u.bits[i] | ^t.bits[i]&v.bits[i]
	}
	r.maskTail()
	return r
}

// varPos returns the position of variable v in t.Vars, or -1.
func (t Table) varPos(v int) int {
	for j, w := range t.Vars {
		if w == v {
			return j
		}
	}
	return -1
}

// Quant existentially (forall=false) or universally (forall=true)
// quantifies variable v: the result no longer depends on v but keeps the
// same variable list.
func (t Table) Quant(v int, forall bool) Table {
	j := t.varPos(v)
	if j < 0 {
		return t
	}
	r := NewTable(t.Vars)
	bit := 1 << uint(j)
	for i := 0; i < t.Len(); i++ {
		a, b := t.Get(i|bit), t.Get(i&^bit)
		if forall {
			r.Set(i, a && b)
		} else {
			r.Set(i, a || b)
		}
	}
	return r
}

// Compose substitutes function g for variable v: result(a) = t(a[v←g(a)]).
func (t Table) Compose(v int, g Table) Table {
	t.mustMatch(g)
	j := t.varPos(v)
	if j < 0 {
		return t
	}
	r := NewTable(t.Vars)
	bit := 1 << uint(j)
	for i := 0; i < t.Len(); i++ {
		if g.Get(i) {
			r.Set(i, t.Get(i|bit))
		} else {
			r.Set(i, t.Get(i&^bit))
		}
	}
	return r
}

// Equal reports whether two tables agree on every assignment, returning a
// counterexample index otherwise.
func (t Table) Equal(u Table) (int, bool) {
	t.mustMatch(u)
	for i := range t.bits {
		if d := t.bits[i] ^ u.bits[i]; d != 0 {
			base := i * 64
			for b := 0; b < 64; b++ {
				if d>>uint(b)&1 == 1 {
					return base + b, false
				}
			}
		}
	}
	return 0, true
}

// Checker compares functions against brute-force semantics: exhaustively
// when the joint support fits in MaxExhaustiveVars variables, otherwise on
// a seeded random sample of assignments. The zero value is not ready;
// use NewChecker.
type Checker struct {
	// Rng drives the sampling fallback; seeding it makes failures
	// reproducible.
	Rng *rand.Rand
	// Samples is the number of random assignments drawn per check when
	// sampling.
	Samples int
}

// NewChecker returns a Checker with a seeded sampling fallback.
func NewChecker(seed int64) *Checker {
	return &Checker{Rng: rand.New(rand.NewSource(seed)), Samples: DefaultSamples}
}

// jointSupport returns the sorted union of the supports of the given
// functions.
func jointSupport(m *bdd.Manager, fs ...bdd.Ref) []int {
	seen := make(map[int]bool)
	var vars []int
	for _, f := range fs {
		for _, v := range m.SupportVars(f) {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	return vars
}

// forEachAssignment runs fn on every assignment of vars (exhaustive mode)
// or on c.Samples random assignments (sampling mode). fn returns false to
// stop early.
func (c *Checker) forEachAssignment(vars []int, nvars int, fn func(a []bool) bool) {
	a := make([]bool, nvars)
	if len(vars) <= MaxExhaustiveVars {
		for i := 0; i < 1<<len(vars); i++ {
			for j, v := range vars {
				a[v] = i>>uint(j)&1 == 1
			}
			if !fn(a) {
				return
			}
		}
		return
	}
	for s := 0; s < c.Samples; s++ {
		for _, v := range vars {
			a[v] = c.Rng.Intn(2) == 1
		}
		if !fn(a) {
			return
		}
	}
}

// formatAssignment renders a counterexample assignment restricted to vars.
func formatAssignment(a []bool, vars []int) string {
	var b strings.Builder
	for _, v := range vars {
		val := 0
		if a[v] {
			val = 1
		}
		fmt.Fprintf(&b, "x%d=%d ", v, val)
	}
	return strings.TrimSpace(b.String())
}

// Equal checks f ≡ g against brute-force evaluation and returns an error
// carrying a counterexample assignment on disagreement.
func (c *Checker) Equal(m *bdd.Manager, f, g bdd.Ref) error {
	vars := jointSupport(m, f, g)
	var err error
	c.forEachAssignment(vars, m.NumVars(), func(a []bool) bool {
		if Eval(m, f, a) != Eval(m, g, a) {
			err = fmt.Errorf("oracle: functions differ at %s", formatAssignment(a, vars))
			return false
		}
		return true
	})
	return err
}

// Implies checks f ⇒ g against brute-force evaluation.
func (c *Checker) Implies(m *bdd.Manager, f, g bdd.Ref) error {
	vars := jointSupport(m, f, g)
	var err error
	c.forEachAssignment(vars, m.NumVars(), func(a []bool) bool {
		if Eval(m, f, a) && !Eval(m, g, a) {
			err = fmt.Errorf("oracle: implication fails at %s", formatAssignment(a, vars))
			return false
		}
		return true
	})
	return err
}

// EqualFunc checks a BDD against an arbitrary reference function over the
// given variables — the differential core: fn is evaluated directly (for
// example on an expression tree), never through the BDD package.
func (c *Checker) EqualFunc(m *bdd.Manager, f bdd.Ref, fn func([]bool) bool, vars []int) error {
	var err error
	c.forEachAssignment(vars, m.NumVars(), func(a []bool) bool {
		want := fn(a)
		if got := Eval(m, f, a); got != want {
			err = fmt.Errorf("oracle: BDD=%v reference=%v at %s", got, want, formatAssignment(a, vars))
			return false
		}
		return true
	})
	return err
}

// EqualAcross checks that f1 under m1 and f2 under m2 denote the same
// function of the shared variable indices — the property a save/load
// round-trip must preserve even when the two managers order the variables
// differently.
func (c *Checker) EqualAcross(m1 *bdd.Manager, f1 bdd.Ref, m2 *bdd.Manager, f2 bdd.Ref) error {
	vars := jointSupport(m1, f1)
	for _, v := range jointSupport(m2, f2) {
		found := false
		for _, w := range vars {
			if v == w {
				found = true
				break
			}
		}
		if !found {
			vars = append(vars, v)
		}
	}
	nvars := m1.NumVars()
	if n2 := m2.NumVars(); n2 > nvars {
		nvars = n2
	}
	var err error
	c.forEachAssignment(vars, nvars, func(a []bool) bool {
		if Eval(m1, f1, a) != Eval(m2, f2, a) {
			err = fmt.Errorf("oracle: managers disagree at %s", formatAssignment(a, vars))
			return false
		}
		return true
	})
	return err
}
