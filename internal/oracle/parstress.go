package oracle

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bddkit/internal/bdd"
)

// Concurrent stress driver for the parallel BDD engine: several client
// goroutines hammer one shared manager with builds, ITE, quantification,
// and composition while garbage collection and dynamic reordering fire
// from a separate goroutine. Every produced function is cross-checked
// against the expression tree's reference semantics on sampled
// assignments, so a lost update in the lock-striped unique table or a
// torn cache entry shows up as a semantic divergence, not just a race
// report. Run under -race for the memory-model half of the check.

// ParStressConfig parameterizes a concurrent stress run. The zero value
// selects the defaults via normalize.
type ParStressConfig struct {
	// Seed drives every random choice; equal seeds give equal op mixes.
	Seed int64
	// Goroutines is the number of concurrent clients (default 8).
	Goroutines int
	// Rounds is the number of build/quantify/compose rounds per client
	// (default 30).
	Rounds int
	// Vars is the number of manager variables (default 12).
	Vars int
	// Workers configures the manager's parallel engine (default 4).
	Workers int
	// Depth is the generated expression depth (default 5).
	Depth int
	// Samples is the number of assignments checked per produced function
	// (default 32).
	Samples int
	// ReorderThreshold arms automatic sifting (default 4096).
	ReorderThreshold int
	// SampleRate, when positive, arms bdd.SetParSampling(SampleRate) for
	// the run (restored afterwards) and starts a snapshot hammer that
	// polls ParTelemetry and Stats concurrently with the clients — the
	// race check for the sampled instrumentation paths. The guard that
	// makes this safe: sampled counters are written per-worker and only
	// merged (racily, through atomics) at snapshot time.
	SampleRate int
	// StallDeadline, when positive, runs the stall watchdog for the whole
	// stress run; a healthy run must never trip it.
	StallDeadline time.Duration
}

func (cfg *ParStressConfig) normalize() {
	if cfg.Goroutines <= 0 {
		cfg.Goroutines = 8
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 30
	}
	if cfg.Vars <= 0 {
		cfg.Vars = 12
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 5
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 32
	}
	if cfg.ReorderThreshold <= 0 {
		cfg.ReorderThreshold = 4096
	}
}

// ParStressResult summarizes a completed concurrent run.
type ParStressResult struct {
	Rounds      int   // total rounds completed across all clients
	GCs         int64 // garbage collections observed by the manager
	Reorderings int64 // reordering passes observed by the manager
	TasksStolen int64 // parallel subproblems executed by thief workers
	TasksLocal  int64 // forked subproblems reclaimed at join
	Snapshots   int64 // telemetry snapshots taken by the hammer (SampleRate > 0)

	// Telemetry is the final snapshot of the run (populated when
	// SampleRate > 0).
	Telemetry bdd.ParTelemetry
}

// RunParallelStress executes the concurrent hammer and returns the first
// semantic divergence, DebugCheck violation, or leak found.
func RunParallelStress(cfg ParStressConfig) (ParStressResult, error) {
	cfg.normalize()
	bcfg := bdd.DefaultConfig()
	bcfg.Workers = cfg.Workers
	m := bdd.NewWithConfig(cfg.Vars, bcfg)
	m.EnableAutoReorder(cfg.ReorderThreshold)

	var snapshots int64
	telemetryDone := make(chan struct{})
	if cfg.SampleRate > 0 {
		prevRate := bdd.ParSampling()
		bdd.SetParSampling(cfg.SampleRate)
		defer bdd.SetParSampling(prevRate)
	}
	if cfg.StallDeadline > 0 {
		stop := m.StartStallWatchdog(cfg.StallDeadline)
		defer stop()
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
		rounds  int
	)
	report := func(err error) {
		mu.Lock()
		if firstEr == nil {
			firstEr = err
		}
		mu.Unlock()
	}

	for c := 0; c < cfg.Goroutines; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := NewGen(cfg.Seed+int64(c)*7919, cfg.Vars)
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(c)<<32))
			for round := 0; round < cfg.Rounds; round++ {
				if err := parStressRound(m, gen, rng, cfg); err != nil {
					report(fmt.Errorf("client %d round %d: %w", c, round, err))
					return
				}
				mu.Lock()
				rounds++
				mu.Unlock()
			}
		}(c)
	}

	// Lifecycle hammer: explicit GC and reordering interleave with the
	// clients, forcing the quiescence barrier while operations are in
	// flight. Throttled — every event stops the world, and an unthrottled
	// loop would serialize the clients into a crawl.
	lifecycleDone := make(chan struct{})
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()

	// Snapshot hammer: polls the merged telemetry and Stats while clients,
	// GC, and reordering are all in flight. Its purpose is the race check —
	// snapshot reads must coexist with per-worker counter writes and with
	// stop-the-world epochs swapping the level-heat table.
	if cfg.SampleRate > 0 {
		go func() {
			defer close(telemetryDone)
			for {
				select {
				case <-clientsDone:
					return
				case <-time.After(time.Millisecond):
				}
				t := m.ParTelemetry()
				st := m.Stats()
				_ = t.UniqueWait.MeanNS()
				_ = st.STWTime
				snapshots++
			}
		}()
	} else {
		close(telemetryDone)
	}
	go func() {
		defer close(lifecycleDone)
		for i := 0; ; i++ {
			select {
			case <-clientsDone:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if i%3 == 2 {
				m.Reorder(bdd.ReorderSift, bdd.SiftConfig{MaxVars: 4})
			} else {
				m.GarbageCollect()
			}
		}
	}()
	<-clientsDone
	<-lifecycleDone
	<-telemetryDone
	// One reordering on the quiet manager so the result counters are
	// populated even when the clients outpace the throttled hammer.
	m.Reorder(bdd.ReorderSift, bdd.SiftConfig{})

	res := ParStressResult{Rounds: rounds, Snapshots: snapshots}
	if cfg.SampleRate > 0 {
		res.Telemetry = m.ParTelemetry()
	}
	if firstEr != nil {
		return res, firstEr
	}
	if err := m.DebugCheck(); err != nil {
		return res, fmt.Errorf("DebugCheck after concurrent run: %w", err)
	}
	m.GarbageCollect()
	if got, want := m.ReferencedNodeCount(), cfg.Vars; got != want {
		return res, fmt.Errorf("after the run %d nodes stay referenced, want %d (leak or double free)", got, want)
	}
	st := m.Stats()
	res.GCs = st.GCs
	res.Reorderings = st.Reorderings
	res.TasksStolen = st.TasksStolen
	res.TasksLocal = st.TasksLocal
	return res, nil
}

// parStressRound builds one random expression and derives quantified and
// composed functions from it, verifying each against the expression's
// reference semantics on sampled assignments.
func parStressRound(m *bdd.Manager, gen *Gen, rng *rand.Rand, cfg ParStressConfig) error {
	e1 := gen.Expr(cfg.Depth)
	f1 := e1.Build(m)
	defer m.Deref(f1)

	check := func(op string, f bdd.Ref, ref func(a []bool) bool) error {
		a := make([]bool, cfg.Vars)
		for s := 0; s < cfg.Samples; s++ {
			for i := range a {
				a[i] = rng.Intn(2) == 1
			}
			if m.Eval(f, a) != ref(a) {
				return fmt.Errorf("%s diverges from reference semantics at %v", op, a)
			}
		}
		return nil
	}
	if err := check("build", f1, e1.Eval); err != nil {
		return err
	}

	v := rng.Intn(cfg.Vars)
	ex := m.Exists(f1, []int{v})
	defer m.Deref(ex)
	if err := check("exists", ex, func(a []bool) bool {
		b := append([]bool(nil), a...)
		b[v] = false
		if e1.Eval(b) {
			return true
		}
		b[v] = true
		return e1.Eval(b)
	}); err != nil {
		return err
	}

	e2 := gen.Expr(cfg.Depth - 2)
	f2 := e2.Build(m)
	defer m.Deref(f2)
	cp := m.Compose(f1, v, f2)
	err := check("compose", cp, func(a []bool) bool {
		b := append([]bool(nil), a...)
		b[v] = e2.Eval(a)
		return e1.Eval(b)
	})
	m.Deref(cp)
	if err != nil {
		return err
	}

	ite := m.ITE(f1, f2, ex)
	err = check("ite", ite, func(a []bool) bool {
		if e1.Eval(a) {
			return e2.Eval(a)
		}
		b := append([]bool(nil), a...)
		b[v] = false
		if e1.Eval(b) {
			return true
		}
		b[v] = true
		return e1.Eval(b)
	})
	m.Deref(ite)
	return err
}
