package oracle

import (
	"bytes"
	"fmt"
	"math"
	"math/big"

	"bddkit/internal/bdd"
	"bddkit/internal/count"
	"bddkit/internal/model/gauntlet"
)

// Closed-form checkers for the gauntlet generator families: every family
// in internal/model/gauntlet has an independently computable exact answer
// (a published sequence, explicit DFS/simulation enumeration, or plain
// integer arithmetic), which turns exact counting and uniform sampling
// into end-to-end-verifiable operations rather than trusted ones.

// QueensCounts is the number of solutions to the n-queens problem,
// indexed by n (OEIS A000170; index 0 is the empty board's single
// solution).
var QueensCounts = []int64{1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724}

// ExpectedCount returns the instance's ground-truth solution count when
// one is computable without BDDs: the published sequence for queens,
// explicit DFS for Hamiltonian cycles, brute-force simulation for life
// boards up to 16 cells, and closed-form arithmetic for the adder miter
// up to width 10. The second result is false when no independent ground
// truth is in range.
func ExpectedCount(p gauntlet.Params) (*big.Int, bool) {
	if p.Validate() != nil {
		return nil, false
	}
	switch p.Family {
	case gauntlet.FamilyQueens:
		if p.N < len(QueensCounts) {
			return big.NewInt(QueensCounts[p.N]), true
		}
	case gauntlet.FamilyLife:
		cells := p.Rows * p.Cols
		if cells > 16 {
			return nil, false
		}
		target := p.Target
		if target == nil {
			target = gauntlet.DefaultLifeTarget(p.Rows, p.Cols)
		}
		var n int64
		board := make([]bool, cells)
		for bits := 0; bits < 1<<uint(cells); bits++ {
			for i := range board {
				board[i] = bits&(1<<uint(i)) != 0
			}
			next := gauntlet.LifeStep(p.Rows, p.Cols, board)
			match := true
			for i := range next {
				if next[i] != target[i] {
					match = false
					break
				}
			}
			if match {
				n++
			}
		}
		return big.NewInt(n), true
	case gauntlet.FamilyHamiltonGrid:
		return big.NewInt(gauntlet.GridGraph(p.Rows, p.Cols).CountHamiltonianCycles()), true
	case gauntlet.FamilyHamiltonKnight:
		return big.NewInt(gauntlet.KnightGraph(p.Rows, p.Cols).CountHamiltonianCycles()), true
	case gauntlet.FamilyEquivAdder:
		if p.N > 10 { // 2^(2n) enumeration
			return nil, false
		}
		return big.NewInt(gauntlet.DistinguishingCount(p.N, p.Fault)), true
	}
	return nil, false
}

// CheckQueensSequence builds the n-queens function for every n in
// [1, maxN], counts it exactly, and compares against the published
// sequence; boards small enough for exhaustive evaluation (n*n <=
// MaxExhaustiveVars) are additionally counted by truth-table enumeration
// through the oracle's independent evaluator.
func CheckQueensSequence(maxN int) error {
	if maxN >= len(QueensCounts) {
		return fmt.Errorf("oracle: no published count for queens%d", maxN)
	}
	for n := 1; n <= maxN; n++ {
		p := gauntlet.Params{Family: gauntlet.FamilyQueens, N: n}
		m, f, err := gauntlet.New(p)
		if err != nil {
			return err
		}
		c, err := count.Minterms(m, f, p.Vars())
		if err != nil {
			return fmt.Errorf("queens%d: %v", n, err)
		}
		if c.Int64() != QueensCounts[n] {
			return fmt.Errorf("queens%d: counted %v, published %d", n, c, QueensCounts[n])
		}
		if vars := p.Vars(); vars <= MaxExhaustiveVars {
			var brute int64
			a := make([]bool, vars)
			for bits := 0; bits < 1<<uint(vars); bits++ {
				for v := 0; v < vars; v++ {
					a[v] = bits&(1<<uint(v)) != 0
				}
				if Eval(m, f, a) {
					brute++
				}
			}
			if brute != QueensCounts[n] {
				return fmt.Errorf("queens%d: truth table counts %d, published %d", n, brute, QueensCounts[n])
			}
		}
		m.Deref(f)
		if err := m.DebugCheck(); err != nil {
			return fmt.Errorf("queens%d: %v", n, err)
		}
	}
	return nil
}

// EnumerateMinterms expands f's cube cover into explicit minterms over
// nVars variables (nVars must not be below the manager's variable count).
// Enumeration aborts with an error beyond max minterms — it exists to
// index the small solution sets the uniformity check bins samples into.
func EnumerateMinterms(m *bdd.Manager, f bdd.Ref, nVars, max int) ([][]bool, error) {
	n := m.NumVars()
	if nVars < n {
		return nil, fmt.Errorf("oracle: minterm space %d below the manager's %d variables", nVars, n)
	}
	var out [][]bool
	overflow := false
	m.ForEachCube(f, func(cube []int8) bool {
		// Expand don't-cares (including the nVars-n free tail).
		free := make([]int, 0, nVars)
		base := make([]bool, nVars)
		for v := 0; v < nVars; v++ {
			switch {
			case v >= n || cube[v] == bdd.LitDontCare:
				free = append(free, v)
			case cube[v] == bdd.LitPos:
				base[v] = true
			}
		}
		if len(free) > 20 || len(out)+(1<<uint(len(free))) > max {
			overflow = true
			return false
		}
		for bits := 0; bits < 1<<uint(len(free)); bits++ {
			a := make([]bool, nVars)
			copy(a, base)
			for i, v := range free {
				a[v] = bits&(1<<uint(i)) != 0
			}
			out = append(out, a)
		}
		return true
	})
	if overflow {
		return nil, fmt.Errorf("oracle: function has more than %d minterms", max)
	}
	return out, nil
}

// chiSquaredCritical approximates the upper-tail critical value of the
// chi-squared distribution with df degrees of freedom at significance
// p = 0.01, via the Wilson–Hilferty cube transformation (accurate to a
// fraction of a percent for df >= 1).
func chiSquaredCritical(df int) float64 {
	const z99 = 2.326348 // Φ⁻¹(0.99)
	d := float64(df)
	t := 1 - 2/(9*d) + z99*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// CheckSamplerUniform draws the given number of samples from a fresh
// fixed-seed Sampler over f and performs a Pearson chi-squared test
// against the uniform distribution over f's minterms at significance
// 0.01. Every sample must satisfy f; the solution set must have between
// 2 and 512 minterms (enumeration-indexed binning).
func CheckSamplerUniform(m *bdd.Manager, f bdd.Ref, nVars, samples int, seed int64) error {
	sols, err := EnumerateMinterms(m, f, nVars, 512)
	if err != nil {
		return err
	}
	if len(sols) < 2 {
		return fmt.Errorf("oracle: uniformity needs >= 2 solutions, have %d", len(sols))
	}
	index := make(map[string]int, len(sols))
	key := func(a []bool) string {
		b := make([]byte, len(a))
		for i, bit := range a {
			if bit {
				b[i] = '1'
			} else {
				b[i] = '0'
			}
		}
		return string(b)
	}
	for i, a := range sols {
		index[key(a)] = i
	}
	s, err := count.NewSampler(m, f, nVars, seed)
	if err != nil {
		return err
	}
	if s.Count().Cmp(big.NewInt(int64(len(sols)))) != 0 {
		return fmt.Errorf("oracle: count %v disagrees with %d enumerated minterms", s.Count(), len(sols))
	}
	obs := make([]int, len(sols))
	for i := 0; i < samples; i++ {
		a := s.Sample()
		if !Eval(m, f, a) {
			return fmt.Errorf("oracle: sample %d does not satisfy the function", i)
		}
		j, ok := index[key(a)]
		if !ok {
			return fmt.Errorf("oracle: sample %d is not an enumerated minterm", i)
		}
		obs[j]++
	}
	expected := float64(samples) / float64(len(sols))
	var chi2 float64
	for _, o := range obs {
		d := float64(o) - expected
		chi2 += d * d / expected
	}
	if crit := chiSquaredCritical(len(sols) - 1); chi2 > crit {
		return fmt.Errorf("oracle: chi-squared %.2f exceeds the p=0.01 critical value %.2f over %d cells (non-uniform sampling)", chi2, crit, len(sols))
	}
	return nil
}

// CheckCountInvariance pins down that the exact count is a function of
// the Boolean function alone: building the instance serially and with
// Workers=4, sifting to a reversed variable order, garbage-collecting,
// and a Save/Load round trip into a reversed-order manager must all
// report the bit-identical count — which must also equal the family's
// independent ground truth when one is in range.
func CheckCountInvariance(p gauntlet.Params) error {
	m, f, err := gauntlet.New(p)
	if err != nil {
		return err
	}
	name := p.Name()
	base, err := count.Minterms(m, f, p.Vars())
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if want, ok := ExpectedCount(p); ok && base.Cmp(want) != 0 {
		return fmt.Errorf("%s: counted %v, ground truth %v", name, base, want)
	}

	check := func(stage string, c *big.Int, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %s: %v", name, stage, err)
		}
		if c.Cmp(base) != 0 {
			return fmt.Errorf("%s: count drifted after %s: %v -> %v", name, stage, base, c)
		}
		return nil
	}

	// Reorder to the reversed order, then collect garbage.
	if n := m.NumVars(); n > 1 {
		if err := m.SetOrder(reverseOrder(n)); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
	}
	c, err := count.Minterms(m, f, p.Vars())
	if err := check("reorder", c, err); err != nil {
		return err
	}
	m.GarbageCollect()
	c, err = count.Minterms(m, f, p.Vars())
	if err := check("GC", c, err); err != nil {
		return err
	}

	// Save/Load round trip into a fresh manager on the original order.
	var buf bytes.Buffer
	if err := m.Save(&buf, []string{"f"}, []bdd.Ref{f}); err != nil {
		return fmt.Errorf("%s: save: %v", name, err)
	}
	m2 := bdd.New(m.NumVars())
	loaded, err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("%s: load: %v", name, err)
	}
	c, err = count.Minterms(m2, loaded["f"], p.Vars())
	if err := check("save/load", c, err); err != nil {
		return err
	}
	m2.Deref(loaded["f"])
	m.Deref(f)
	if err := m.DebugCheck(); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}

	// Rebuild with the parallel engine.
	cfg := bdd.DefaultConfig()
	cfg.Workers = 4
	m4 := bdd.NewWithConfig(p.Vars(), cfg)
	f4, err := gauntlet.Build(m4, p)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	c, err = count.Minterms(m4, f4, p.Vars())
	if err := check("Workers=4 rebuild", c, err); err != nil {
		return err
	}
	m4.Deref(f4)
	return m4.DebugCheck()
}
