package oracle

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
)

// Native Go fuzz targets for the untrusted-input surfaces of the stack.
// Seed corpora live under testdata/fuzz/<Target>/ (including the
// malformed-header Load inputs that used to drive unbounded allocation);
// `make fuzz-smoke` runs each target briefly on every check.

// FuzzLoad feeds arbitrary bytes to the BDD deserializer. Whatever the
// input, Load must either fail cleanly or produce a manager that passes
// DebugCheck, never grows past the documented caps, and round-trips the
// loaded forest canonically.
func FuzzLoad(f *testing.F) {
	// A well-formed forest as a coverage seed.
	{
		m := bdd.New(4)
		a := m.And(m.IthVar(0), m.IthVar(1))
		x := m.Xor(a, m.IthVar(3))
		var buf bytes.Buffer
		if err := m.Save(&buf, []string{"a", "x"}, []bdd.Ref{a, x}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("bddkit-bdd v1\nvars 2000000000\nnodes 1\n"))
	f.Add([]byte("bddkit-bdd v1\nvars 2\nnodes 2000000000\n1 0 +0 -0\n"))
	f.Add([]byte("bddkit-bdd v1\nvars 2\nnodes -1\nroots 0\n"))
	f.Add([]byte("bddkit-bdd v1\nvars 2\nnodes 1\n1 1 +0 -0\nroots 1\nf +1\n"))
	// Byte-budget seed: a shape-valid stream padded far past what its
	// declared header justifies must fail with the typed size error.
	f.Add([]byte("bddkit-bdd v1\nvars 2\nnodes 0\n" + strings.Repeat("# pad\n", 900) + "roots 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m := bdd.New(2)
		roots, err := m.Load(bytes.NewReader(data))
		if m.NumVars() > bdd.MaxLoadVars {
			t.Fatalf("Load grew the manager to %d variables, cap is %d", m.NumVars(), bdd.MaxLoadVars)
		}
		if err == nil {
			// A successfully loaded forest must re-serialize and reload
			// onto bit-identical references (canonicity).
			names := make([]string, 0, len(roots))
			for name := range roots {
				names = append(names, name)
			}
			sort.Strings(names)
			rs := make([]bdd.Ref, len(names))
			for i, name := range names {
				rs[i] = roots[name]
			}
			var buf bytes.Buffer
			if err := m.Save(&buf, names, rs); err == nil {
				again, err := m.Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("reload of saved forest failed: %v", err)
				}
				for i, name := range names {
					if again[name] != rs[i] {
						t.Fatalf("root %q not canonical across save/load", name)
					}
				}
				for _, r := range again {
					m.Deref(r)
				}
			}
			for _, r := range roots {
				m.Deref(r)
			}
		}
		if err := m.DebugCheck(); err != nil {
			t.Fatalf("manager corrupt after Load: %v", err)
		}
	})
}

// FuzzNetlistParse feeds arbitrary bytes to the netlist parser. Accepted
// netlists must validate, simulate, and survive a Write/Parse round trip
// with their structure intact; rejected ones must fail with an error, not
// a panic.
func FuzzNetlistParse(f *testing.F) {
	f.Add([]byte(`.model counter2
.inputs en
.latch q0 n0 0
t0 = XOR(q0, en)
n0 = BUF(t0)
y = AND(q0, en)
.outputs y
.end
`))
	f.Add([]byte(".inputs a a\n"))
	f.Add([]byte(".latch q q 0\nq = AND(a, b)\n"))
	f.Add([]byte("x = CONST1\ny = NOT(x)\n.outputs y\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		nl, err := circuit.Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("Parse accepted a netlist that fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := circuit.Write(&buf, nl); err != nil {
			t.Fatalf("Write failed on parsed netlist: %v", err)
		}
		nl2, err := circuit.Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written netlist failed: %v\n%s", err, buf.String())
		}
		if nl2.NumGates() != nl.NumGates() ||
			len(nl2.Inputs) != len(nl.Inputs) ||
			len(nl2.Latches) != len(nl.Latches) ||
			len(nl2.Outputs) != len(nl.Outputs) {
			t.Fatalf("structure lost in Write/Parse round trip")
		}
	})
}

// FuzzITESequence interprets the input bytes as an operation program over
// a small manager, shadowing every step with truth-table semantics —
// a byte-driven variant of the stress driver, letting the fuzzer search
// for operation interleavings (including GC and reordering) that break
// canonicity or diverge from brute force.
func FuzzITESequence(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77})
	f.Add([]byte{0x07, 0x07, 0x07, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Add(bytes.Repeat([]byte{0x13, 0x37}, 64))

	f.Fuzz(func(t *testing.T, data []byte) { iteSequenceBody(t, data) })
}

// iteSequenceBody is the FuzzITESequence harness, split out so ordinary
// tests can drive it with chosen inputs.
func iteSequenceBody(t testing.TB, data []byte) {
	{
		const nv = 6
		if len(data) > 512 {
			data = data[:512]
		}
		// A tiny pinned computed table keeps each exec fast: DebugCheck
		// scans the whole cache, and at the default 2^18 entries that scan
		// would dominate the harness and starve the fuzzer of throughput.
		m := bdd.NewWithConfig(nv, bdd.Config{CacheBits: 8, CacheMaxBits: 8})
		m.EnableAutoReorder(64)
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = i
		}
		pool := make([]poolEntry, 0, 16)
		for v := 0; v < nv; v++ {
			tab := NewTable(vars)
			for i := 0; i < tab.Len(); i++ {
				tab.Set(i, i>>uint(v)&1 == 1)
			}
			pool = append(pool, poolEntry{ref: m.Ref(m.IthVar(v)), table: tab})
		}
		verify := func(r bdd.Ref, want Table) {
			a := make([]bool, nv)
			for i := 0; i < want.Len(); i++ {
				for j := 0; j < nv; j++ {
					a[j] = i>>uint(j)&1 == 1
				}
				if Eval(m, r, a) != want.Get(i) {
					t.Fatalf("operation diverges from shadow semantics at %s", formatAssignment(a, vars))
				}
			}
		}
		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}
		for pos < len(data) {
			op := next()
			var (
				r        bdd.Ref
				want     Table
				produced bool
			)
			switch op % 8 {
			case 0:
				x, y, z := pool[next()%len(pool)], pool[next()%len(pool)], pool[next()%len(pool)]
				r = m.ITE(x.ref, y.ref, z.ref)
				want = x.table.Ite(y.table, z.table)
				produced = true
			case 1:
				x, y := pool[next()%len(pool)], pool[next()%len(pool)]
				r = m.And(x.ref, y.ref)
				want = x.table.And(y.table)
				produced = true
			case 2:
				x, y := pool[next()%len(pool)], pool[next()%len(pool)]
				r = m.Xor(x.ref, y.ref)
				want = x.table.Xor(y.table)
				produced = true
			case 3:
				x := pool[next()%len(pool)]
				r = m.Ref(x.ref.Complement())
				want = x.table.Not()
				produced = true
			case 4:
				x := pool[next()%len(pool)]
				v := next() % nv
				if op>>3&1 == 0 {
					r = m.Exists(x.ref, []int{v})
					want = x.table.Quant(v, false)
				} else {
					r = m.ForAll(x.ref, []int{v})
					want = x.table.Quant(v, true)
				}
				produced = true
			case 5:
				x, y := pool[next()%len(pool)], pool[next()%len(pool)]
				v := next() % nv
				r = m.Compose(x.ref, v, y.ref)
				want = x.table.Compose(v, y.table)
				produced = true
			case 6:
				m.GarbageCollect()
			default:
				m.Reorder(bdd.ReorderSift, bdd.SiftConfig{})
			}
			if produced {
				verify(r, want)
				if len(pool) < cap(pool) {
					pool = append(pool, poolEntry{ref: r, table: want})
				} else {
					slot := &pool[next()%len(pool)]
					m.Deref(slot.ref)
					slot.ref, slot.table = r, want
				}
			}
			if pos&7 == 0 {
				if err := m.DebugCheck(); err != nil {
					t.Fatalf("DebugCheck after byte %d: %v", pos, err)
				}
			}
		}
		for i := range pool {
			m.Deref(pool[i].ref)
		}
		m.GarbageCollect()
		if got := m.ReferencedNodeCount(); got != nv {
			t.Fatalf("%d nodes stay referenced after release, want %d", got, nv)
		}
		if err := m.DebugCheck(); err != nil {
			t.Fatal(err)
		}
	}
}
