package model

import (
	"fmt"

	"bddkit/internal/circuit"
)

// S1269Config sizes the multiplier-datapath FSM standing in for s1269
// (a multiplier-based ISCAS'89 addendum circuit with 37 flip-flops).
type S1269Config struct {
	Width int // operand width
}

// S1269Small is a scaled-down instance for tests.
func S1269Small() S1269Config { return S1269Config{Width: 3} }

// S1269Full approximates the original's register count: with Width 8 the
// model has 8+8+16+2 = 34 state bits (s1269 has 37).
func S1269Full() S1269Config { return S1269Config{Width: 8} }

// S1269 builds a sequential shift-add multiplier: in the LOAD phase the
// operand registers capture the data inputs; then Width MULT steps
// accumulate partial products (the accumulator holds A·B after the last);
// the DONE phase holds the result until restarted. The accumulator makes
// the reachable-state BDD multiplier-shaped — the property that makes
// s1269 hard for breadth-first traversal.
func S1269(cfg S1269Config) *circuit.Netlist {
	w := cfg.Width
	b := circuit.NewBuilder(fmt.Sprintf("s1269_w%d", w))

	start := b.Input("start")
	da := b.InputBus("da", w)
	db := b.InputBus("db", w)

	a := b.LatchBus("a", w, 0)  // multiplicand (shifts left)
	bb := b.LatchBus("b", w, 0) // multiplier (shifts right)
	acc := b.LatchBus("acc", 2*w, 0)
	// Phase: 00 idle/load, 01 multiply, 10 done.
	phase := b.LatchBus("ph", 2, 0)
	// Step counter for the multiply phase.
	cntBits := 1
	for 1<<uint(cntBits) < w {
		cntBits++
	}
	cnt := b.LatchBus("cnt", cntBits, 0)

	idle := b.EqConst(phase, 0)
	mult := b.EqConst(phase, 1)
	done := b.EqConst(phase, 2)

	// Datapath (classic shift-add with a fixed multiplicand): each MULT
	// step adds A into the high half of the accumulator when the current
	// multiplier bit is 1, then shifts the accumulator right together
	// with the multiplier: acc ← (acc + (b₀ ? A·2^w : 0)) >> 1. After w
	// steps the accumulator holds A·B.
	addend := make([]circuit.Sig, 2*w)
	zero := b.Const(false)
	for i := 0; i < w; i++ {
		addend[i] = zero
		addend[w+i] = b.And(a[i], bb[0])
	}
	sum, cout := b.Adder(acc, addend, zero)
	accShift := make([]circuit.Sig, 2*w)
	copy(accShift, sum[1:])
	accShift[2*w-1] = cout

	bShift := make([]circuit.Sig, w)
	copy(bShift, bb[1:])
	bShift[w-1] = zero

	lastStep := b.EqConst(cnt, uint64(w-1))
	cntInc, _ := b.Incrementer(cnt)

	loading := b.And(idle, start)
	aNext := b.MuxBus(loading, da, a)
	bNext := b.MuxBus(loading, db, b.MuxBus(mult, bShift, bb))
	accNext := b.MuxBus(loading, b.ConstBus(0, 2*w), b.MuxBus(mult, accShift, acc))
	cntNext := b.MuxBus(loading, b.ConstBus(0, cntBits),
		b.MuxBus(mult, cntInc, cnt))

	// Phase transitions: idle -start-> mult -last-> done -start-> idle
	// (restart loads immediately).
	ph0 := phase[0]
	ph1 := phase[1]
	ph0Next := b.Or(loading, b.And(mult, b.Not(lastStep)))
	ph1Next := b.Or(b.And(mult, lastStep), b.And(done, b.Not(start)))
	b.SetNext(ph0, ph0Next)
	b.SetNext(ph1, ph1Next)

	b.SetNextBus(a, aNext)
	b.SetNextBus(bb, bNext)
	b.SetNextBus(acc, accNext)
	b.SetNextBus(cnt, cntNext)

	b.OutputBus("p", acc)
	b.Output("rdy", done)
	return b.MustBuild()
}
