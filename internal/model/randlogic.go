package model

import (
	"fmt"
	"math/rand"

	"bddkit/internal/circuit"
)

// RandomLogicConfig sizes a random logic cone.
type RandomLogicConfig struct {
	Inputs int   // number of primary inputs
	Gates  int   // number of random gates
	Seed   int64 // deterministic seed
}

// RandomLogicNetlist generates a layered random logic cone: each gate picks
// a random operation over fan-ins drawn from earlier signals with a bias
// toward recent ones (mimicking the locality of synthesized logic). The
// last few gates become outputs. The same seed always produces the same
// netlist, keeping the Table 2–4 corpus deterministic.
func RandomLogicNetlist(cfg RandomLogicConfig) *circuit.Netlist {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := circuit.NewBuilder(fmt.Sprintf("rlog_i%d_g%d_s%d", cfg.Inputs, cfg.Gates, cfg.Seed))
	sigs := b.InputBus("x", cfg.Inputs)
	pick := func() circuit.Sig {
		// Geometric bias toward recent signals.
		n := len(sigs)
		k := n - 1 - rng.Intn(n-rng.Intn(n))
		return sigs[k]
	}
	for g := 0; g < cfg.Gates; g++ {
		a, c := pick(), pick()
		for c == a {
			c = pick()
		}
		var s circuit.Sig
		switch rng.Intn(6) {
		case 0:
			s = b.And(a, c)
		case 1:
			s = b.Or(a, c)
		case 2:
			s = b.Xor(a, c)
		case 3:
			s = b.Nand(a, c)
		case 4:
			s = b.Nor(a, c)
		default:
			d := pick()
			s = b.Mux(a, c, d)
		}
		sigs = append(sigs, s)
	}
	outs := 4
	if outs > cfg.Gates {
		outs = cfg.Gates
	}
	for i := 0; i < outs; i++ {
		b.Output(fmt.Sprintf("y%d", i), sigs[len(sigs)-1-i])
	}
	return b.MustBuild()
}
