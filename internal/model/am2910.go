// Package model provides the synthetic benchmark circuits standing in for
// the ISCAS'89 / industrial designs of the paper's experiments (see
// DESIGN.md for the substitution rationale):
//
//   - Am2910: a microprogram sequencer modeled on the AMD Am2910 datasheet
//     behavior (µPC, register/counter, hardware stack, 16 instructions) —
//     the "am2910" row of Table 1.
//   - S1269: a multiplier-datapath FSM (s1269 is a multiplier-based
//     circuit) — the "s1269" row.
//   - S3330: a serial link controller with FIFOs, CRC, and handshake FSMs —
//     the "s3330" row.
//   - S5378: loosely coupled control logic (LFSRs, counters, arbiters) —
//     the "s5378opt" row.
//   - Combinational families (array multipliers, hidden-weighted-bit,
//     ALUs, comparators) for the Table 2–4 function corpus.
//
// Every sequential model is parameterized by a size preset so tests can run
// on scaled-down instances while the benchmark harness uses paper-scale
// register counts.
package model

import (
	"fmt"
	"math/rand"

	"bddkit/internal/circuit"
)

// Am2910Config sizes the microprogram sequencer.
type Am2910Config struct {
	Width      int // address width (12 in the real part)
	StackDepth int // hardware stack depth (5 in the real part)
	// WithROM closes the sequencer in its natural environment: the
	// instruction and pipeline data inputs come from a synthetic
	// microprogram ROM addressed by the current address (as on a real
	// board, where the Am2910 reads the microword it just addressed).
	// Only the condition input and DitherBits of the branch target stay
	// free. This is what makes the paper's am2910 reachability deep:
	// reachable states are strongly correlated through the microprogram.
	WithROM bool
	// RomSeed varies the synthetic microprogram.
	RomSeed int64
	// DitherBits XORs this many free inputs into the low bits of the
	// ROM's branch-target field, widening the branching factor of the
	// closed model (the board-level analogue is a mapping PROM driven by
	// external status).
	DitherBits int
}

// Am2910Small is a scaled-down instance for unit tests and quick runs.
func Am2910Small() Am2910Config { return Am2910Config{Width: 4, StackDepth: 3} }

// Am2910Full approximates the real part: 12-bit addresses, 5-deep stack
// (87 state bits; the paper's am2910 has 99 flip-flops including fabric
// registers we do not replicate).
func Am2910Full() Am2910Config { return Am2910Config{Width: 12, StackDepth: 5} }

// Am2910 instruction opcodes (I3..I0 of the datasheet).
const (
	opJZ   = 0  // jump zero, clear stack
	opCJS  = 1  // conditional jump subroutine
	opJMAP = 2  // jump map
	opCJP  = 3  // conditional jump pipeline
	opPUSH = 4  // push µPC, conditionally load counter
	opJSRP = 5  // conditional jump subroutine via R or pipeline
	opCJV  = 6  // conditional jump vector
	opJRP  = 7  // conditional jump via R or pipeline
	opRFCT = 8  // repeat loop if counter ≠ 0 (file = stack)
	opRPCT = 9  // repeat pipeline if counter ≠ 0
	opCRTN = 10 // conditional return
	opCJPP = 11 // conditional jump pipeline and pop
	opLDCT = 12 // load counter
	opLOOP = 13 // test end of loop
	opCONT = 14 // continue
	opTWB  = 15 // three-way branch
)

// Am2910 builds the sequencer netlist. Inputs: i0..i3 (instruction), pass
// (condition code, already combined with its enable), d0..d{w-1} (pipeline
// data). Outputs: y0..y{w-1} (the microprogram address). State: µPC,
// register/counter R, a shift-register stack of cfg.StackDepth words, and a
// saturating stack pointer.
func Am2910(cfg Am2910Config) *circuit.Netlist {
	w := cfg.Width
	depth := cfg.StackDepth
	name := fmt.Sprintf("am2910_w%d_d%d", w, depth)
	if cfg.WithROM {
		name += "_rom"
	}
	b := circuit.NewBuilder(name)

	var instr, d []circuit.Sig
	var pass circuit.Sig
	var upc []circuit.Sig
	if cfg.WithROM {
		// Microword = rom(µPC): 4 instruction bits of mixed logic over
		// the current address, and a branch-target field with regular
		// structure (rotate + XOR + add), as microprogram branch
		// targets have — this keeps the reachable set representable
		// while the traversal itself stays deep.
		pass = b.Input("pass")
		var dither []circuit.Sig
		if cfg.DitherBits > 0 {
			dither = b.InputBus("dx", cfg.DitherBits)
		}
		upc = b.LatchBus("upc", w, 0)
		instr = romField(b, upc, 4, cfg.RomSeed+1)
		d = romTarget(b, upc, cfg.RomSeed+2)
		for i := 0; i < len(dither) && i < w; i++ {
			d[i] = b.Xor(d[i], dither[i])
		}
	} else {
		// Input order i, pass, d matches the documented interface.
		instr = b.InputBus("i", 4)
		pass = b.Input("pass")
		d = b.InputBus("d", w)
		upc = b.LatchBus("upc", w, 0)
	}
	r := b.LatchBus("r", w, 0)
	stack := make([][]circuit.Sig, depth)
	for k := range stack {
		stack[k] = b.LatchBus(fmt.Sprintf("st%d", k), w, 0)
	}
	spBits := 2
	for 1<<uint(spBits) < depth+1 {
		spBits++
	}
	sp := b.LatchBus("sp", spBits, 0)

	fail := b.Not(pass)
	top := stack[0]
	rZero := b.IsZero(r)
	rNot0 := b.Not(rZero)

	zeroW := b.ConstBus(0, w)

	// Per-instruction next-address selection (the Y output).
	yBus := make([][]circuit.Sig, 16)
	yBus[opJZ] = zeroW
	yBus[opCJS] = b.MuxBus(pass, d, upc)
	yBus[opJMAP] = d
	yBus[opCJP] = b.MuxBus(pass, d, upc)
	yBus[opPUSH] = upc
	yBus[opJSRP] = b.MuxBus(pass, d, r)
	yBus[opCJV] = b.MuxBus(pass, d, upc)
	yBus[opJRP] = b.MuxBus(pass, d, r)
	yBus[opRFCT] = b.MuxBus(rNot0, top, upc)
	yBus[opRPCT] = b.MuxBus(rNot0, d, upc)
	yBus[opCRTN] = b.MuxBus(pass, top, upc)
	yBus[opCJPP] = b.MuxBus(pass, d, upc)
	yBus[opLDCT] = upc
	yBus[opLOOP] = b.MuxBus(pass, upc, top)
	yBus[opCONT] = upc
	yBus[opTWB] = b.MuxBus(pass, upc, b.MuxBus(rNot0, top, d))
	y := b.MuxN(instr, yBus)
	b.OutputBus("y", y)

	// µPC follows Y+1 (carry-in fixed at 1, as microprograms run with
	// CI = 1).
	upcNext, _ := b.Incrementer(y)
	b.SetNextBus(upc, upcNext)

	// Stack control: push on CJS/JSRP (and PUSH unconditionally for
	// CJS/JSRP only when the subroutine is taken), pop on returns/loop
	// exits, clear on JZ.
	one := b.Const(true)
	pushSel := b.Or(
		b.And(b.EqConst(instr, opCJS), pass),
		b.EqConst(instr, opJSRP),
		b.EqConst(instr, opPUSH),
	)
	popSel := b.Or(
		b.And(b.EqConst(instr, opCRTN), pass),
		b.And(b.EqConst(instr, opCJPP), pass),
		b.And(b.EqConst(instr, opLOOP), pass),
		b.And(b.EqConst(instr, opRFCT), rZero),
		b.And(b.EqConst(instr, opTWB), b.Or(pass, b.And(fail, rZero))),
	)
	clearSel := b.EqConst(instr, opJZ)

	spEmpty := b.IsZero(sp)
	spFull := b.EqConst(sp, uint64(depth))
	spInc, _ := b.Incrementer(sp)
	spDec := b.Decrementer(sp)
	spPush := b.MuxBus(spFull, sp, spInc)
	spPop := b.MuxBus(spEmpty, sp, spDec)
	spNext := b.MuxBus(clearSel, b.ConstBus(0, spBits),
		b.MuxBus(pushSel, spPush, b.MuxBus(popSel, spPop, sp)))
	b.SetNextBus(sp, spNext)

	// Shift-register stack: push shifts down (top = st0 ← µPC), pop
	// shifts up, otherwise hold. Clearing zeroes every word.
	for k := 0; k < depth; k++ {
		var pushVal, popVal []circuit.Sig
		if k == 0 {
			pushVal = upc
		} else {
			pushVal = stack[k-1]
		}
		if k == depth-1 {
			popVal = zeroW
		} else {
			popVal = stack[k+1]
		}
		next := b.MuxBus(clearSel, zeroW,
			b.MuxBus(pushSel, pushVal, b.MuxBus(popSel, popVal, stack[k])))
		b.SetNextBus(stack[k], next)
	}
	_ = one

	// Register/counter: load on LDCT (and PUSH when the condition
	// passes), decrement during the repeat instructions while non-zero.
	loadSel := b.Or(
		b.EqConst(instr, opLDCT),
		b.And(b.EqConst(instr, opPUSH), pass),
	)
	decSel := b.And(rNot0, b.Or(
		b.EqConst(instr, opRFCT),
		b.EqConst(instr, opRPCT),
		b.And(b.EqConst(instr, opTWB), fail),
	))
	rDec := b.Decrementer(r)
	rNext := b.MuxBus(loadSel, d, b.MuxBus(decSel, rDec, r))
	b.SetNextBus(r, rNext)

	return b.MustBuild()
}

// romTarget synthesizes the branch-target field of the microprogram ROM
// with the regular structure real branch targets have: a rotation of the
// current address, XORed with a constant, plus a small constant — an
// affine-ish map that keeps reachable address sets compact as BDDs.
func romTarget(b *circuit.Builder, addr []circuit.Sig, seed int64) []circuit.Sig {
	rng := rand.New(rand.NewSource(seed))
	w := len(addr)
	rot := 1 + rng.Intn(w-1)
	xorMask := uint64(rng.Int63()) & (1<<uint(w) - 1)
	addConst := uint64(rng.Int63()) & (1<<uint(w) - 1)
	rotated := make([]circuit.Sig, w)
	for i := range rotated {
		rotated[i] = addr[(i+rot)%w]
	}
	masked := make([]circuit.Sig, w)
	for i := range masked {
		if xorMask>>uint(i)&1 == 1 {
			masked[i] = b.Not(rotated[i])
		} else {
			masked[i] = rotated[i]
		}
	}
	sum, _ := b.Adder(masked, b.ConstBus(addConst, w), b.Const(false))
	return sum
}

// romField synthesizes one field of the microprogram ROM as seeded random
// logic over the address bus: each output bit is a XOR/AND mix of a few
// address bits, which is what a minimized dense ROM looks like and keeps
// the BDDs of the next-state functions nontrivial without blowing them up.
func romField(b *circuit.Builder, addr []circuit.Sig, width int, seed int64) []circuit.Sig {
	rng := rand.New(rand.NewSource(seed))
	out := make([]circuit.Sig, width)
	pick := func() circuit.Sig { return addr[rng.Intn(len(addr))] }
	for i := range out {
		a, c, d := pick(), pick(), pick()
		term := b.And(a, c)
		if rng.Intn(2) == 0 {
			term = b.Or(a, b.Not(c))
		}
		out[i] = b.Xor(term, d)
		if rng.Intn(3) == 0 {
			out[i] = b.Xor(out[i], b.And(pick(), pick()))
		}
	}
	return out
}
