package model

import (
	"math/bits"
	"math/rand"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
)

func TestModelsBuildAndValidate(t *testing.T) {
	for name, nl := range map[string]*circuit.Netlist{
		"am2910-small": Am2910(Am2910Small()),
		"am2910-full":  Am2910(Am2910Full()),
		"s1269-small":  S1269(S1269Small()),
		"s1269-full":   S1269(S1269Full()),
		"s3330-small":  S3330(S3330Small()),
		"s3330-full":   S3330(S3330Full()),
		"s5378-small":  S5378(S5378Small()),
		"s5378-full":   S5378(S5378Full()),
	} {
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Paper-scale register counts (Table 1 column "FF"): the full models
	// must land in the same regime as the originals.
	checks := []struct {
		nl       *circuit.Netlist
		min, max int
	}{
		{Am2910(Am2910Full()), 80, 110}, // paper: 99
		{S1269(S1269Full()), 30, 45},    // paper: 37
		{S3330(S3330Full()), 100, 145},  // paper: 132
		{S5378(S5378Full()), 110, 135},  // paper: 121
	}
	for _, c := range checks {
		if ff := len(c.nl.Latches); ff < c.min || ff > c.max {
			t.Errorf("%s: %d flip-flops, want within [%d,%d]", c.nl.Name, ff, c.min, c.max)
		}
	}
}

// TestAm2910StackDiscipline drives the sequencer through a subroutine
// call/return and a counted loop, checking the observable address stream.
func TestAm2910StackDiscipline(t *testing.T) {
	cfg := Am2910Small()
	nl := Am2910(cfg)
	sim, err := circuit.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	w := cfg.Width
	step := func(op int, pass bool, d int) int {
		in := make([]bool, 4+1+w)
		for i := 0; i < 4; i++ {
			in[i] = op>>uint(i)&1 == 1
		}
		in[4] = pass
		for i := 0; i < w; i++ {
			in[5+i] = d>>uint(i)&1 == 1
		}
		out := sim.Step(in)
		y := 0
		for i := 0; i < w; i++ {
			if out[i] {
				y |= 1 << uint(i)
			}
		}
		return y
	}
	// Reset: µPC = 0. JZ forces address 0.
	if y := step(opJZ, true, 0); y != 0 {
		t.Fatalf("JZ: y = %d", y)
	}
	// CONT advances: y = µPC = 1.
	if y := step(opCONT, true, 0); y != 1 {
		t.Fatalf("CONT: y = %d", y)
	}
	// CJS taken to 9: y = 9, µPC(2) pushed.
	if y := step(opCJS, true, 9); y != 9 {
		t.Fatalf("CJS: y = %d", y)
	}
	// CONT at 9: y = 10.
	if y := step(opCONT, true, 0); y != 10 {
		t.Fatalf("CONT: y = %d", y)
	}
	// CRTN taken: return to pushed µPC (2).
	if y := step(opCRTN, true, 0); y != 2 {
		t.Fatalf("CRTN: y = %d", y)
	}
	// LDCT loads the counter with 2, then RPCT repeats D while counting
	// down: two repeats at address 5, then fall-through.
	step(opLDCT, true, 2)
	if y := step(opRPCT, true, 5); y != 5 {
		t.Fatalf("RPCT first: y = %d", y)
	}
	if y := step(opRPCT, true, 5); y != 5 {
		t.Fatalf("RPCT second: y = %d", y)
	}
	y := step(opRPCT, true, 5)
	if y == 5 {
		t.Fatalf("RPCT did not terminate: y = %d", y)
	}
}

// TestS1269Multiplies runs full multiply sequences and checks the product.
func TestS1269Multiplies(t *testing.T) {
	cfg := S1269Small()
	nl := S1269(cfg)
	sim, err := circuit.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	w := cfg.Width
	mkIn := func(start bool, a, b int) []bool {
		in := make([]bool, 1+2*w)
		in[0] = start
		for i := 0; i < w; i++ {
			in[1+i] = a>>uint(i)&1 == 1
			in[1+w+i] = b>>uint(i)&1 == 1
		}
		return in
	}
	for a := 0; a < 1<<w; a++ {
		for b := 0; b < 1<<w; b++ {
			sim.Reset()
			sim.Step(mkIn(true, a, b)) // load
			var out []bool
			for i := 0; i < w+2; i++ {
				out = sim.Step(mkIn(false, 0, 0))
				if out[2*w] { // rdy
					break
				}
			}
			if !out[2*w] {
				t.Fatalf("%d*%d: never ready", a, b)
			}
			p := 0
			for i := 0; i < 2*w; i++ {
				if out[i] {
					p |= 1 << uint(i)
				}
			}
			if p != a*b {
				t.Fatalf("%d*%d = %d", a, b, p)
			}
		}
	}
}

// TestS3330FifoFlow pushes words and watches the serializer drain them.
func TestS3330FifoFlow(t *testing.T) {
	cfg := S3330Small()
	nl := S3330(cfg)
	sim, err := circuit.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	w := cfg.Word
	mkIn := func(push bool, d int, rxrdy bool) []bool {
		in := make([]bool, 1+w+1)
		in[0] = push
		for i := 0; i < w; i++ {
			in[1+i] = d>>uint(i)&1 == 1
		}
		in[1+w] = rxrdy
		return in
	}
	// Push two words; the fill counter must track them.
	sim.Step(mkIn(true, 5, false))
	out := sim.Step(mkIn(true, 3, false))
	fill := 0
	for i := 0; i < len(out)-3; i++ {
		if out[3+i] {
			fill |= 1 << uint(i)
		}
	}
	if fill == 0 {
		t.Fatal("fill did not advance after pushes")
	}
	// Drain: run many cycles with the receiver ready; the FIFO must
	// eventually empty.
	drained := false
	for i := 0; i < 20*w; i++ {
		out = sim.Step(mkIn(false, 0, true))
		f := 0
		for j := 0; j < len(out)-3; j++ {
			if out[3+j] {
				f |= 1 << uint(j)
			}
		}
		if f == 0 {
			drained = true
			break
		}
	}
	if !drained {
		t.Fatal("FIFO never drained")
	}
}

// TestS5378Progress: with the enable held high the first counter unit
// cycles through all its values.
func TestS5378Progress(t *testing.T) {
	cfg := S5378Small()
	nl := S5378(cfg)
	sim, err := circuit.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	w := cfg.UnitWidth
	u := cfg.Units
	seen := map[int]bool{}
	for i := 0; i < 1<<uint(w)*8; i++ {
		in := make([]bool, 1+u)
		in[0] = true
		out := sim.Step(in)
		v := 0
		base := len(out) - w
		for j := 0; j < w; j++ {
			if out[base+j] {
				v |= 1 << uint(j)
			}
		}
		seen[v] = true
	}
	if len(seen) < 1<<uint(w)/2 {
		t.Fatalf("unit 0 visited only %d values", len(seen))
	}
}

// TestHWBAgainstDefinition checks the BDD against the definition
// HWB(x) = x_{wt(x)}.
func TestHWBAgainstDefinition(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	f := HWB(m, vars)
	a := make([]bool, n)
	for x := 0; x < 1<<n; x++ {
		for i := 0; i < n; i++ {
			a[i] = x>>uint(i)&1 == 1
		}
		wt := bits.OnesCount(uint(x))
		want := wt > 0 && x>>uint(wt-1)&1 == 1
		if got := m.Eval(f, a); got != want {
			t.Fatalf("HWB(%b) = %v, want %v", x, got, want)
		}
	}
	m.Deref(f)
}

// TestMajorityThreshold checks the threshold builder exhaustively.
func TestMajorityThreshold(t *testing.T) {
	const n = 8
	m := bdd.New(n)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	for k := 0; k <= n; k++ {
		f := MajorityThreshold(m, vars, k)
		a := make([]bool, n)
		for x := 0; x < 1<<n; x++ {
			for i := 0; i < n; i++ {
				a[i] = x>>uint(i)&1 == 1
			}
			want := bits.OnesCount(uint(x)) >= k
			if got := m.Eval(f, a); got != want {
				t.Fatalf("≥%d(%b) = %v", k, x, got)
			}
		}
		m.Deref(f)
	}
}

// TestMultiplierNetlistCompiles compiles an 6x6 multiplier and spot-checks
// product bits against integer multiplication.
func TestMultiplierNetlistCompiles(t *testing.T) {
	const n = 6
	nl := MultiplierNetlist(n)
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release()
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		a, b := rng.Intn(1<<n), rng.Intn(1<<n)
		in := make([]bool, 2*n)
		for i := 0; i < n; i++ {
			in[i] = a>>uint(i)&1 == 1
			in[n+i] = b>>uint(i)&1 == 1
		}
		out := c.EvalOutputs(nil, in)
		p := 0
		for i, bit := range out {
			if bit {
				p |= 1 << uint(i)
			}
		}
		if p != a*b {
			t.Fatalf("%d*%d = %d", a, b, p)
		}
	}
	// The middle product bit must be a reasonably large BDD even at 6x6.
	mid := c.Outputs[n]
	if sz := c.M.DagSize(mid); sz < 30 {
		t.Fatalf("middle product bit suspiciously small: %d nodes", sz)
	}
}

// TestAluComparator compiles and spot-checks the remaining corpus families.
func TestAluComparator(t *testing.T) {
	const n = 4
	alu, err := circuit.Compile(AluNetlist(n), circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		t.Fatal(err)
	}
	defer alu.Release()
	cmp, err := circuit.Compile(ComparatorNetlist(n), circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Release()
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			for op := 0; op < 4; op++ {
				in := make([]bool, 2+2*n)
				in[0] = op&1 == 1
				in[1] = op&2 == 2
				for i := 0; i < n; i++ {
					in[2+i] = a>>uint(i)&1 == 1
					in[2+n+i] = b>>uint(i)&1 == 1
				}
				out := alu.EvalOutputs(nil, in)
				r := 0
				for i := 0; i < n; i++ {
					if out[i] {
						r |= 1 << uint(i)
					}
				}
				var want int
				switch op {
				case 0:
					want = (a + b) % (1 << n)
				case 1:
					want = (a - b + 1<<n) % (1 << n)
				case 2:
					want = a & b
				default:
					want = a ^ b
				}
				if r != want {
					t.Fatalf("alu op %d: %d,%d -> %d want %d", op, a, b, r, want)
				}
			}
			in := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				in[i] = a>>uint(i)&1 == 1
				in[n+i] = b>>uint(i)&1 == 1
			}
			out := cmp.EvalOutputs(nil, in)
			if out[0] != (a < b) || out[1] != (a == b) || out[2] != (a > b) {
				t.Fatalf("cmp(%d,%d) = %v", a, b, out)
			}
		}
	}
}
