package model

import (
	"fmt"

	"bddkit/internal/circuit"
)

// S3330Config sizes the serial-link controller standing in for s3330
// (a communication chip with 132 flip-flops).
type S3330Config struct {
	Word      int // data word width
	FifoDepth int // transmit FIFO depth (words)
	CrcBits   int // CRC register width
	// InternalSource drives the FIFO input from an on-chip scrambler
	// (LFSR) instead of free primary inputs, the way a link controller
	// transmits scrambled payload. The FIFO then holds windows of the
	// scrambler sequence, which correlates the state bits and gives the
	// traversal the mid-flight BDD hump that high-density traversal is
	// designed to cut through.
	InternalSource bool
}

// S3330Small is a scaled-down instance for tests.
func S3330Small() S3330Config { return S3330Config{Word: 3, FifoDepth: 2, CrcBits: 3} }

// S3330Full approximates the original's register count: with 8-bit words,
// an 8-deep FIFO and CRC-16 the model has 8 + 64 + 4 + 16 + 8 + 3 + 4 + 3
// + 8 + 4 ≈ 122 state bits plus handshake bits, near s3330's 132.
func S3330Full() S3330Config { return S3330Config{Word: 8, FifoDepth: 8, CrcBits: 16} }

// S3330 builds a serial transmitter: words enter a FIFO, a shifter
// serializes the head word LSB-first while a CRC register folds every
// transmitted bit; a frame counter inserts a CRC flush after each word and
// a handshake FSM paces an (abstracted) receiver. The loosely coupled
// counters and shifters give the model the "many weakly interacting
// controllers" topology of communication chips.
func S3330(cfg S3330Config) *circuit.Netlist {
	w := cfg.Word
	depth := cfg.FifoDepth
	cw := cfg.CrcBits
	name := fmt.Sprintf("s3330_w%d_f%d_c%d", w, depth, cw)
	if cfg.InternalSource {
		name += "_src"
	}
	b := circuit.NewBuilder(name)

	push := b.Input("push")
	var din []circuit.Sig
	if !cfg.InternalSource {
		din = b.InputBus("din", w)
	}
	rxReady := b.Input("rxrdy")
	if cfg.InternalSource {
		// Scrambler: a maximal-ish LFSR of 2w bits; the FIFO captures
		// its low word. It advances every cycle.
		scr := b.LatchBus("scr", 2*w, 1)
		fb := b.Xor(scr[2*w-1], scr[2*w-3])
		scrNext := make([]circuit.Sig, 2*w)
		scrNext[0] = fb
		copy(scrNext[1:], scr[:2*w-1])
		b.SetNextBus(scr, scrNext)
		din = scr[:w]
	}

	// Transmit FIFO: shift-register implementation with a fill counter.
	fifo := make([][]circuit.Sig, depth)
	for k := range fifo {
		fifo[k] = b.LatchBus(fmt.Sprintf("fifo%d", k), w, 0)
	}
	fillBits := 1
	for 1<<uint(fillBits) < depth+1 {
		fillBits++
	}
	fill := b.LatchBus("fill", fillBits, 0)

	// Serializer: current word, bit counter, busy flag.
	sh := b.LatchBus("sh", w, 0)
	bcBits := 1
	for 1<<uint(bcBits) < w {
		bcBits++
	}
	bitCnt := b.LatchBus("bc", bcBits, 0)
	busy := b.Latch("busy", false)

	// CRC over the serial stream (Galois LFSR with a fixed taps mask).
	crc := b.LatchBus("crc", cw, 0)
	// Handshake FSM with the receiver: 2 bits.
	hs := b.LatchBus("hs", 2, 0)
	// Frame counter: words since the last CRC flush.
	frame := b.LatchBus("fr", 2, 0)

	empty := b.IsZero(fill)
	full := b.EqConst(fill, uint64(depth))
	notBusy := b.Not(busy)

	hsIdle := b.EqConst(hs, 0)
	// Start a new word when the FIFO has data, the serializer is free,
	// and the receiver handshake is idle.
	start := b.And(b.Not(empty), notBusy, hsIdle)
	lastBit := b.EqConst(bitCnt, uint64(w-1))
	sendDone := b.And(busy, lastBit)

	doPush := b.And(push, b.Not(full))
	doPop := start

	// FIFO shifts toward index 0 on pop; new words enter at the fill
	// position — modeled as: on pop every slot takes the next; on push
	// the slot addressed by fill takes din (when both, pop happens first
	// conceptually; the combined case writes at fill-1).
	fillDec := b.Decrementer(fill)
	fillInc, _ := b.Incrementer(fill)
	fillNext := b.MuxBus(doPop,
		b.MuxBus(doPush, fill, fillDec),
		b.MuxBus(doPush, fillInc, fill))
	b.SetNextBus(fill, fillNext)

	for k := 0; k < depth; k++ {
		var popVal []circuit.Sig
		if k == depth-1 {
			popVal = b.ConstBus(0, w)
		} else {
			popVal = fifo[k+1]
		}
		afterPop := b.MuxBus(doPop, popVal, fifo[k])
		// Write position after the optional pop.
		writeIdx := b.MuxBus(doPop, fillDec, fill)
		atK := b.EqConst(writeIdx, uint64(k))
		next := b.MuxBus(b.And(doPush, atK), din, afterPop)
		b.SetNextBus(fifo[k], next)
	}

	// Serializer datapath.
	shShift := make([]circuit.Sig, w)
	copy(shShift, sh[1:])
	shShift[w-1] = b.Const(false)
	shNext := b.MuxBus(start, fifo[0], b.MuxBus(busy, shShift, sh))
	b.SetNextBus(sh, shNext)
	bcInc, _ := b.Incrementer(bitCnt)
	bcNext := b.MuxBus(start, b.ConstBus(0, bcBits),
		b.MuxBus(busy, bcInc, bitCnt))
	b.SetNextBus(bitCnt, bcNext)
	busyNext := b.Or(start, b.And(busy, b.Not(lastBit)))
	b.SetNext(busy, busyNext)

	// CRC folds the transmitted bit while busy.
	txBit := sh[0]
	fb := b.Xor(crc[cw-1], txBit)
	crcNext := make([]circuit.Sig, cw)
	// Taps at positions 0, 1, and cw-1 (CRC-style polynomial sketch).
	for i := 0; i < cw; i++ {
		var shifted circuit.Sig
		if i == 0 {
			shifted = fb
		} else {
			shifted = crc[i-1]
		}
		if i == 1 || i == cw-1 {
			shifted = b.Xor(shifted, fb)
		}
		crcNext[i] = shifted
	}
	crcHold := b.MuxBus(busy, crcNext, crc)
	// CRC clears when a frame (4 words) completes.
	frameWrap := b.EqConst(frame, 3)
	crcFinal := b.MuxBus(b.And(sendDone, frameWrap), b.ConstBus(0, cw), crcHold)
	b.SetNextBus(crc, crcFinal)

	frameInc, _ := b.Incrementer(frame)
	frameNext := b.MuxBus(sendDone, frameInc, frame)
	b.SetNextBus(frame, frameNext)

	// Handshake FSM: idle -> wait (word sent) -> ack (receiver ready) ->
	// idle; a third state guards against spurious rxReady.
	hsWait := b.EqConst(hs, 1)
	hsAck := b.EqConst(hs, 2)
	hs0Next := b.Or(b.And(hsIdle, sendDone), b.And(hsWait, b.Not(rxReady)))
	hs1Next := b.Or(b.And(hsWait, rxReady), b.And(hsAck, b.Not(rxReady)))
	b.SetNext(hs[0], hs0Next)
	b.SetNext(hs[1], hs1Next)

	b.Output("tx", txBit)
	b.Output("crcmsb", crc[cw-1])
	b.Output("overflow", b.And(push, full))
	b.OutputBus("fillq", fill)
	return b.MustBuild()
}
