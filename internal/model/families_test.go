package model

import (
	"testing"

	"bddkit/internal/circuit"
)

// TestFamilyCompiledShape pins the compiled shape of every benchmark
// family at its small configuration: interface widths, manager variable
// counts, the support of the compiled functions, and the shared live-node
// total of Compiled.LiveRoots. These are exact values, not ranges — the
// generators are deterministic, so any drift here means a generator or
// the compiler changed behaviour and Tables 1–4 are no longer comparable
// against recorded runs.
func TestFamilyCompiledShape(t *testing.T) {
	cases := []struct {
		name    string
		nl      *circuit.Netlist
		inputs  int
		latches int
		outputs int
		vars    int // manager variables (x,y interleaved + inputs)
		support int // distinct vars in the support of outputs ∪ next
		live    int // SharingSize(LiveRoots) after GC
	}{
		{"am2910", Am2910(Am2910Small()), 9, 22, 4, 53, 31, 1114},
		{"s1269", S1269(S1269Small()), 7, 16, 7, 39, 23, 202},
		{"s3330", S3330(S3330Small()), 5, 21, 5, 47, 26, 306},
		{"s5378", S5378(S5378Small()), 3, 7, 5, 17, 10, 70},
		{"comb", MultiplierNetlist(5), 10, 0, 10, 10, 10, 419},
		{"randlogic", RandomLogicNetlist(RandomLogicConfig{Inputs: 12, Gates: 60, Seed: 3}), 12, 0, 4, 12, 5, 25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(tc.nl.Inputs); got != tc.inputs {
				t.Errorf("inputs = %d, want %d", got, tc.inputs)
			}
			if got := len(tc.nl.Latches); got != tc.latches {
				t.Errorf("latches = %d, want %d", got, tc.latches)
			}
			if got := len(tc.nl.Outputs); got != tc.outputs {
				t.Errorf("outputs = %d, want %d", got, tc.outputs)
			}
			c, err := circuit.Compile(tc.nl, circuit.CompileOptions{
				SkipNextVars: len(tc.nl.Latches) == 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Release()
			if got := c.M.NumVars(); got != tc.vars {
				t.Errorf("manager vars = %d, want %d", got, tc.vars)
			}
			supp := map[int]bool{}
			for _, o := range c.Outputs {
				for _, v := range c.M.SupportVars(o) {
					supp[v] = true
				}
			}
			for _, nx := range c.Next {
				for _, v := range c.M.SupportVars(nx) {
					supp[v] = true
				}
			}
			if got := len(supp); got != tc.support {
				t.Errorf("support = %d vars, want %d", got, tc.support)
			}
			c.M.GarbageCollect()
			live := c.M.SharingSize(c.LiveRoots())
			if live != tc.live {
				t.Errorf("SharingSize(LiveRoots) = %d, want %d", live, tc.live)
			}
			// After GC the compile intermediates are gone, so the union of
			// the live-root DAGs must be exactly the manager's node set.
			if nc := c.M.NodeCount(); live != nc {
				t.Errorf("LiveRoots covers %d nodes but manager holds %d", live, nc)
			}
		})
	}
}
