package gauntlet

import "bddkit/internal/bdd"

// queens builds the N-Queens characteristic function over n*n variables
// (cell (r,c) is variable r*n+c, row-major): exactly one queen per row,
// and no two queens share a column or diagonal. Its satisfying
// assignments are exactly the solutions, so its minterm count is the
// classic sequence 1, 0, 0, 2, 10, 4, 40, 92, 352, 724 (OEIS A000170).
func queens(m *bdd.Manager, n int) bdd.Ref {
	cell := func(r, c int) bdd.Ref { return m.IthVar(r*n + c) }

	f := m.Ref(bdd.One)
	// Exactly one queen per row. (Together with the column exclusions
	// this forces exactly n queens, one per column too.)
	row := make([]bdd.Ref, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			row[c] = cell(r, c)
		}
		f = conj(m, f, exactlyOne(m, row))
	}
	// Pairwise attack exclusions between distinct rows: same column or
	// same diagonal.
	for r1 := 0; r1 < n; r1++ {
		for r2 := r1 + 1; r2 < n; r2++ {
			d := r2 - r1
			for c1 := 0; c1 < n; c1++ {
				for _, c2 := range []int{c1, c1 - d, c1 + d} {
					if c2 < 0 || c2 >= n {
						continue
					}
					f = conj(m, f, m.Nand(cell(r1, c1), cell(r2, c2)))
				}
			}
		}
	}
	return f
}
