package gauntlet

import "bddkit/internal/bdd"

// DefaultLifeTarget returns the pattern lifePredecessor steps to when
// Params.Target is nil: a horizontal blinker segment through the board's
// center (clipped to the board), the smallest still-interesting
// oscillator. On a 3x3 board this is the three middle cells of the
// center row.
func DefaultLifeTarget(rows, cols int) []bool {
	t := make([]bool, rows*cols)
	r := rows / 2
	c0 := cols/2 - 1
	for dc := 0; dc < 3; dc++ {
		if c := c0 + dc; c >= 0 && c < cols {
			t[r*cols+c] = true
		}
	}
	return t
}

// LifeStep advances a rows x cols Game of Life board one generation with
// a dead boundary (cells outside the board are permanently dead) — the
// explicit-simulation oracle the BDD construction below is cross-checked
// against.
func LifeStep(rows, cols int, board []bool) []bool {
	next := make([]bool, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sum := 0
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					rr, cc := r+dr, c+dc
					if rr >= 0 && rr < rows && cc >= 0 && cc < cols && board[rr*cols+cc] {
						sum++
					}
				}
			}
			alive := board[r*cols+c]
			next[r*cols+c] = sum == 3 || (alive && sum == 2)
		}
	}
	return next
}

// lifePredecessor builds, over rows*cols variables encoding a pre-state
// board (cell (r,c) is variable r*cols+c), the predicate "this board
// steps to target in one Game of Life generation" under a dead boundary.
// Its minterm count is the number of predecessors of target; zero means
// target is a garden of Eden on this board.
func lifePredecessor(m *bdd.Manager, rows, cols int, target []bool) bdd.Ref {
	cell := func(r, c int) bdd.Ref { return m.IthVar(r*cols + c) }
	f := m.Ref(bdd.One)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var nbrs []bdd.Ref
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					rr, cc := r+dr, c+dc
					if rr >= 0 && rr < rows && cc >= 0 && cc < cols {
						nbrs = append(nbrs, cell(rr, cc))
					}
				}
			}
			// exactly-2 / exactly-3 neighbor counts via the symmetric DP;
			// the cap-4 overflow slot keeps them exact.
			cnt := exactCounts(m, nbrs, 4)
			alive := m.And(cell(r, c), cnt[2])
			next := m.Or(cnt[3], alive) // B3/S23: born on 3, survives on 2 or 3
			m.Deref(alive)
			for _, x := range cnt {
				m.Deref(x)
			}
			if !target[r*cols+c] {
				notNext := m.Not(next)
				m.Deref(next)
				next = notNext
			}
			f = conj(m, f, next)
		}
	}
	return f
}
