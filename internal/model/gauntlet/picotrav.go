package gauntlet

import (
	"fmt"
	"strconv"
	"strings"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
)

// Picotrav-style netlist equivalence: two structurally different
// implementations of the same n-bit adder — a ripple-carry chain and an
// expanded carry-lookahead — checked against each other through a miter.
// With Fault set, the lookahead's middle carry signal is stuck at 0, and
// the miter's minterm count is the exact number of distinguishing input
// pairs (the carry into that bit being 1), another closed-form ground
// truth.

// rippleInto emits the n-bit ripple-carry adder over the given input
// buses, returning the sum bits and carry-out.
func rippleInto(b *circuit.Builder, a, bb []circuit.Sig) ([]circuit.Sig, circuit.Sig) {
	n := len(a)
	c := b.Const(false)
	sums := make([]circuit.Sig, n)
	for i := 0; i < n; i++ {
		p := b.Xor(a[i], bb[i])
		sums[i] = b.Xor(p, c)
		c = b.Or(b.And(a[i], bb[i]), b.And(p, c))
	}
	return sums, c
}

// RippleAdderNetlist builds the n-bit ripple-carry adder: inputs a0..,
// b0.., outputs s0..s{n-1} and cout.
func RippleAdderNetlist(n int) *circuit.Netlist {
	b := circuit.NewBuilder(fmt.Sprintf("radd%d", n))
	sums, c := rippleInto(b, b.InputBus("a", n), b.InputBus("b", n))
	b.OutputBus("s", sums)
	b.Output("cout", c)
	return b.MustBuild()
}

// LookaheadAdderNetlist builds the same adder as an expanded
// carry-lookahead: every carry c_{i+1} = OR_{j<=i} (g_j AND p_{j+1}..p_i)
// is computed directly from the generate/propagate signals rather than
// rippled. faultCarry, when in [1,n], sticks carry signal c_k at 0 (k=n
// faults the carry-out): a classic stuck-at fault that makes the pair
// inequivalent. Pass 0 for a correct adder.
func LookaheadAdderNetlist(n, faultCarry int) *circuit.Netlist {
	name := fmt.Sprintf("cla%d", n)
	if faultCarry > 0 {
		name = fmt.Sprintf("cla%df%d", n, faultCarry)
	}
	b := circuit.NewBuilder(name)
	sums, c := lookaheadInto(b, b.InputBus("a", n), b.InputBus("b", n), faultCarry)
	b.OutputBus("s", sums)
	b.Output("cout", c)
	return b.MustBuild()
}

// lookaheadInto emits the expanded carry-lookahead adder over the given
// input buses, returning the sum bits and carry-out.
func lookaheadInto(b *circuit.Builder, a, bb []circuit.Sig, faultCarry int) ([]circuit.Sig, circuit.Sig) {
	n := len(a)
	g := make([]circuit.Sig, n)
	p := make([]circuit.Sig, n)
	for i := 0; i < n; i++ {
		g[i] = b.And(a[i], bb[i])
		p[i] = b.Xor(a[i], bb[i])
	}
	// carry[i] = carry into bit i; carry[n] = carry out.
	carry := make([]circuit.Sig, n+1)
	carry[0] = b.Const(false)
	for i := 1; i <= n; i++ {
		// OR over j < i of g_j ∧ p_{j+1} ∧ ... ∧ p_{i-1}.
		terms := make([]circuit.Sig, 0, i)
		for j := 0; j < i; j++ {
			term := g[j]
			for k := j + 1; k < i; k++ {
				term = b.And(term, p[k])
			}
			terms = append(terms, term)
		}
		if len(terms) == 1 {
			carry[i] = terms[0]
		} else {
			carry[i] = b.Or(terms...)
		}
	}
	if faultCarry >= 1 && faultCarry <= n {
		carry[faultCarry] = b.Const(false)
	}
	sums := make([]circuit.Sig, n)
	for i := 0; i < n; i++ {
		sums[i] = b.Xor(p[i], carry[i])
	}
	return sums, carry[n]
}

// MiterNetlist builds both adder implementations into one combinational
// netlist sharing the input buses, with a single output "neq" that is 1
// exactly on distinguishing inputs. With fault set its on-set count is
// DistinguishingCount(n, true); without, it is the constant-zero cone —
// the latch-free Table 1 circuit that exercises the zero-iteration row
// path in internal/bench.
func MiterNetlist(n int, fault bool) *circuit.Netlist {
	name := fmt.Sprintf("equiv-adder%d", n)
	if fault {
		name += "f"
	}
	b := circuit.NewBuilder(name)
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	k := 0
	if fault {
		k = FaultCarry(n)
	}
	s1, c1 := rippleInto(b, a, bb)
	s2, c2 := lookaheadInto(b, a, bb, k)
	diff := b.Xor(c1, c2)
	for i := 0; i < n; i++ {
		diff = b.Or(diff, b.Xor(s1[i], s2[i]))
	}
	b.Output("neq", diff)
	return b.MustBuild()
}

// FaultCarry returns the carry index the Fault flag sticks at 0 for an
// n-bit instance: the middle of the chain, or the carry-out for n = 1.
func FaultCarry(n int) int {
	if k := n / 2; k >= 1 {
		return k
	}
	return n
}

// AdderPairNetlists returns the ripple/lookahead implementation pair —
// equivalent unless fault is set. Feed them to circuit.Equivalent for the
// combinational-equivalence view of the same instance.
func AdderPairNetlists(n int, fault bool) (*circuit.Netlist, *circuit.Netlist) {
	k := 0
	if fault {
		k = FaultCarry(n)
	}
	return RippleAdderNetlist(n), LookaheadAdderNetlist(n, k)
}

// DistinguishingCount enumerates, in plain integer arithmetic, the number
// of input pairs on which the faulty lookahead disagrees with the ripple
// adder: exactly those where the true carry into bit FaultCarry(n) is 1.
// The independent oracle for the equiv-adder family; n must be small
// enough that 2^(2n) enumeration is feasible (tests use n <= 8). For
// fault = false the answer is 0 by construction.
func DistinguishingCount(n int, fault bool) int64 {
	if !fault {
		return 0
	}
	k := FaultCarry(n)
	var count int64
	for a := uint64(0); a < 1<<uint(n); a++ {
		for b := uint64(0); b < 1<<uint(n); b++ {
			// carry into bit k = the k-bit prefixes of a and b overflowing
			mask := uint64(1)<<uint(k) - 1
			if (a&mask)+(b&mask) >= 1<<uint(k) {
				count++
			}
		}
	}
	return count
}

// adderMiter evaluates the miter of the pair on m over 2n interleaved
// input variables (a_i at 2i, b_i at 2i+1 — the order that keeps adder
// BDDs linear): the result is 1 exactly on distinguishing inputs, so the
// instance counts to 0 iff the pair is equivalent.
func adderMiter(m *bdd.Manager, n int, fault bool) (bdd.Ref, error) {
	ra, cla := AdderPairNetlists(n, fault)
	srcRef := func(nl *circuit.Netlist) func(circuit.Sig, circuit.Op) bdd.Ref {
		return func(s circuit.Sig, _ circuit.Op) bdd.Ref {
			name := nl.NameOf(s)
			i, err := strconv.Atoi(name[1:])
			if err != nil {
				panic("gauntlet: unexpected adder input name " + name)
			}
			if strings.HasPrefix(name, "a") {
				return m.IthVar(2 * i)
			}
			return m.IthVar(2*i + 1)
		}
	}
	outs := make([][]bdd.Ref, 2)
	for i, nl := range []*circuit.Netlist{ra, cla} {
		vals, err := EvalOutputs(m, nl, srcRef(nl))
		if err != nil {
			return bdd.Zero, err
		}
		outs[i] = vals
	}
	miter := m.Ref(bdd.Zero)
	for i := range outs[0] {
		d := m.Xor(outs[0][i], outs[1][i])
		miter = conj2(m, miter, d, m.Or)
	}
	for _, vals := range outs {
		for _, r := range vals {
			m.Deref(r)
		}
	}
	return miter, nil
}

// EvalOutputs compiles a combinational netlist's outputs on m with the
// given input mapping, returning one owned ref per output (in OutName
// order).
func EvalOutputs(m *bdd.Manager, nl *circuit.Netlist, srcRef func(circuit.Sig, circuit.Op) bdd.Ref) ([]bdd.Ref, error) {
	vals, err := circuit.EvalNetlistBDD(m, nl, srcRef)
	if err != nil {
		return nil, err
	}
	outs := make([]bdd.Ref, len(nl.Outputs))
	for i, s := range nl.Outputs {
		outs[i] = m.Ref(vals[s])
	}
	for _, r := range vals {
		m.Deref(r)
	}
	return outs, nil
}

// conj2 folds g into f with the given binary op, consuming both.
func conj2(m *bdd.Manager, f, g bdd.Ref, op func(bdd.Ref, bdd.Ref) bdd.Ref) bdd.Ref {
	h := op(f, g)
	m.Deref(f)
	m.Deref(g)
	return h
}
