package gauntlet

import (
	"fmt"

	"bddkit/internal/bdd"
)

// Graph is a small undirected graph, the substrate for the Hamiltonian
// cycle family.
type Graph struct {
	Name string
	V    int
	Adj  [][]int // adjacency lists, symmetric
}

// GridGraph returns the rows x cols king-less grid graph (4-neighbor).
func GridGraph(rows, cols int) Graph {
	g := Graph{Name: fmt.Sprintf("grid%dx%d", rows, cols), V: rows * cols, Adj: make([][]int, rows*cols)}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for _, d := range [][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}} {
				rr, cc := r+d[0], c+d[1]
				if rr >= 0 && rr < rows && cc >= 0 && cc < cols {
					g.Adj[id(r, c)] = append(g.Adj[id(r, c)], id(rr, cc))
				}
			}
		}
	}
	return g
}

// KnightGraph returns the rows x cols knight's-move graph (the closed
// knight's tour substrate; boards below 5x6 admit no closed tour, a
// classic zero ground truth).
func KnightGraph(rows, cols int) Graph {
	g := Graph{Name: fmt.Sprintf("knight%dx%d", rows, cols), V: rows * cols, Adj: make([][]int, rows*cols)}
	id := func(r, c int) int { return r*cols + c }
	moves := [][2]int{{1, 2}, {2, 1}, {-1, 2}, {-2, 1}, {1, -2}, {2, -1}, {-1, -2}, {-2, -1}}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for _, d := range moves {
				rr, cc := r+d[0], c+d[1]
				if rr >= 0 && rr < rows && cc >= 0 && cc < cols {
					g.Adj[id(r, c)] = append(g.Adj[id(r, c)], id(rr, cc))
				}
			}
		}
	}
	return g
}

// CountHamiltonianCycles enumerates directed Hamiltonian cycles anchored
// at vertex 0 by explicit DFS over vertex permutations — the independent
// ground truth for the BDD construction (each undirected cycle on ≥3
// vertices is counted twice, once per direction). Exponential; only for
// the small boards Validate admits.
func (g Graph) CountHamiltonianCycles() int64 {
	if g.V == 0 {
		return 0
	}
	adj := make([][]bool, g.V)
	for v := range adj {
		adj[v] = make([]bool, g.V)
		for _, u := range g.Adj[v] {
			adj[v][u] = true
		}
	}
	used := make([]bool, g.V)
	used[0] = true
	var count int64
	var dfs func(v, depth int)
	dfs = func(v, depth int) {
		if depth == g.V {
			if adj[v][0] {
				count++
			}
			return
		}
		for u := 0; u < g.V; u++ {
			if !used[u] && adj[v][u] {
				used[u] = true
				dfs(u, depth+1)
				used[u] = false
			}
		}
	}
	dfs(0, 1)
	return count
}

// hamiltonian builds the directed-Hamiltonian-cycle predicate over V*V
// time-slot variables: x[t][v] (variable t*V+v) means "the cycle visits
// vertex v at step t". Constraints: vertex 0 is visited at step 0 (anchor,
// killing rotational symmetry), every step visits exactly one vertex,
// every vertex is visited at exactly one step, and consecutive steps
// (wrapping V-1 -> 0) move along an edge. The minterm count is the number
// of directed Hamiltonian cycles through vertex 0, i.e. twice the
// undirected count for V >= 3.
func hamiltonian(m *bdd.Manager, g Graph) bdd.Ref {
	V := g.V
	x := func(t, v int) bdd.Ref { return m.IthVar(t*V + v) }

	f := m.Ref(m.IthVar(0)) // x[0][0]: the cycle starts at vertex 0
	slot := make([]bdd.Ref, V)
	for t := 0; t < V; t++ {
		for v := 0; v < V; v++ {
			slot[v] = x(t, v)
		}
		f = conj(m, f, exactlyOne(m, slot))
	}
	for v := 0; v < V; v++ {
		for t := 0; t < V; t++ {
			slot[t] = x(t, v)
		}
		f = conj(m, f, exactlyOne(m, slot))
	}
	// Moves follow edges: x[t][u] -> OR of x[t+1][v] over v adjacent to u.
	for t := 0; t < V; t++ {
		next := (t + 1) % V
		for u := 0; u < V; u++ {
			succ := m.Ref(bdd.Zero)
			for _, v := range g.Adj[u] {
				s2 := m.Or(succ, x(next, v))
				m.Deref(succ)
				succ = s2
			}
			imp := m.ITE(x(t, u), succ, bdd.One)
			m.Deref(succ)
			f = conj(m, f, imp)
		}
	}
	return f
}
