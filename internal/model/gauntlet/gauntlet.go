// Package gauntlet generates the classic combinatorial BDD benchmark
// families (after the bdd-benchmark suite; SNIPPETS.md §3): N-Queens
// boards, Game of Life predecessor/garden-of-eden instances, Hamiltonian
// cycles on grid and knight's-move graphs, and Picotrav-style netlist
// equivalence miters. Each family yields diagram topologies genuinely
// different from the repo's sequential circuit models — and each has an
// independently computable exact answer (solution counts), which turns
// the whole gauntlet into a self-verifying fixture for internal/count
// and internal/oracle.
package gauntlet

import (
	"fmt"
	"strings"

	"bddkit/internal/bdd"
)

// Family names accepted in Params.Family.
const (
	FamilyQueens         = "queens"
	FamilyLife           = "life"
	FamilyHamiltonGrid   = "hamilton-grid"
	FamilyHamiltonKnight = "hamilton-knight"
	FamilyEquivAdder     = "equiv-adder"
)

// Families lists every generator family, in a stable order.
func Families() []string {
	return []string{FamilyQueens, FamilyLife, FamilyHamiltonGrid, FamilyHamiltonKnight, FamilyEquivAdder}
}

// Params selects and sizes one gauntlet instance.
type Params struct {
	Family string

	// N is the board size for queens and the operand width for
	// equiv-adder.
	N int

	// Rows and Cols size the life board and the hamilton-* graphs.
	Rows, Cols int

	// Target is the life pattern the predecessors must step to, row-major
	// Rows*Cols cells; nil selects DefaultLifeTarget.
	Target []bool

	// Fault injects a carry stuck-at-0 fault into the second adder of the
	// equiv-adder miter, making the pair inequivalent.
	Fault bool
}

// Name returns a stable instance label, e.g. "queens6" or "life3x3".
func (p Params) Name() string {
	switch p.Family {
	case FamilyQueens:
		return fmt.Sprintf("queens%d", p.N)
	case FamilyLife:
		return fmt.Sprintf("life%dx%d", p.Rows, p.Cols)
	case FamilyHamiltonGrid, FamilyHamiltonKnight:
		return fmt.Sprintf("%s%dx%d", p.Family, p.Rows, p.Cols)
	case FamilyEquivAdder:
		s := fmt.Sprintf("equiv-adder%d", p.N)
		if p.Fault {
			s += "f"
		}
		return s
	default:
		return "invalid"
	}
}

// Limits rejecting pathological instances: the BDD constructions below
// are polynomial per constraint but the diagrams themselves grow fast,
// and the fuzz target (oracle.FuzzGauntletParams) leans on Validate to
// refuse boards that would eat the machine.
const (
	maxQueens        = 10 // 100 variables, 724 solutions
	maxLifeCells     = 36 // 6x6 board
	maxHamiltonVerts = 12 // 144 time-slot variables
	maxAdderWidth    = 64 // 128 input variables
)

// Validate rejects unknown families and pathological sizes with a
// descriptive error; Build and Vars require a validated Params.
func (p Params) Validate() error {
	switch p.Family {
	case FamilyQueens:
		if p.N < 1 || p.N > maxQueens {
			return fmt.Errorf("gauntlet: queens board size %d outside [1,%d]", p.N, maxQueens)
		}
	case FamilyLife:
		if p.Rows < 1 || p.Cols < 1 {
			return fmt.Errorf("gauntlet: life board %dx%d has no cells", p.Rows, p.Cols)
		}
		// Per-dimension caps first, so the product below cannot overflow.
		if p.Rows > maxLifeCells || p.Cols > maxLifeCells || p.Rows*p.Cols > maxLifeCells {
			return fmt.Errorf("gauntlet: life board %dx%d exceeds %d cells", p.Rows, p.Cols, maxLifeCells)
		}
		if p.Target != nil && len(p.Target) != p.Rows*p.Cols {
			return fmt.Errorf("gauntlet: life target has %d cells, want %d", len(p.Target), p.Rows*p.Cols)
		}
	case FamilyHamiltonGrid, FamilyHamiltonKnight:
		if p.Rows < 1 || p.Cols < 1 {
			return fmt.Errorf("gauntlet: hamilton board %dx%d has no vertices", p.Rows, p.Cols)
		}
		if p.Rows > maxHamiltonVerts || p.Cols > maxHamiltonVerts {
			return fmt.Errorf("gauntlet: hamilton board %dx%d exceeds %d vertices", p.Rows, p.Cols, maxHamiltonVerts)
		}
		if v := p.Rows * p.Cols; v < 2 || v > maxHamiltonVerts {
			return fmt.Errorf("gauntlet: hamilton board %dx%d has %d vertices, want [2,%d]", p.Rows, p.Cols, v, maxHamiltonVerts)
		}
	case FamilyEquivAdder:
		if p.N < 1 || p.N > maxAdderWidth {
			return fmt.Errorf("gauntlet: adder width %d outside [1,%d]", p.N, maxAdderWidth)
		}
	default:
		return fmt.Errorf("gauntlet: unknown family %q (have %s)", p.Family, strings.Join(Families(), ", "))
	}
	return nil
}

// Vars returns the number of BDD variables the instance's characteristic
// function ranges over.
func (p Params) Vars() int {
	switch p.Family {
	case FamilyQueens:
		return p.N * p.N
	case FamilyLife:
		return p.Rows * p.Cols
	case FamilyHamiltonGrid, FamilyHamiltonKnight:
		v := p.Rows * p.Cols
		return v * v
	case FamilyEquivAdder:
		return 2 * p.N
	default:
		return 0
	}
}

// Build constructs the instance's characteristic function on m, which
// must already have at least p.Vars() variables. The caller owns the
// returned reference. Satisfying assignments are, per family: queen
// placements, life predecessor boards, directed Hamiltonian cycles
// anchored at vertex 0, and adder-miter distinguishing input pairs.
func Build(m *bdd.Manager, p Params) (bdd.Ref, error) {
	if err := p.Validate(); err != nil {
		return bdd.Zero, err
	}
	if m.NumVars() < p.Vars() {
		return bdd.Zero, fmt.Errorf("gauntlet: manager has %d variables, instance needs %d", m.NumVars(), p.Vars())
	}
	switch p.Family {
	case FamilyQueens:
		return queens(m, p.N), nil
	case FamilyLife:
		target := p.Target
		if target == nil {
			target = DefaultLifeTarget(p.Rows, p.Cols)
		}
		return lifePredecessor(m, p.Rows, p.Cols, target), nil
	case FamilyHamiltonGrid:
		return hamiltonian(m, GridGraph(p.Rows, p.Cols)), nil
	case FamilyHamiltonKnight:
		return hamiltonian(m, KnightGraph(p.Rows, p.Cols)), nil
	case FamilyEquivAdder:
		return adderMiter(m, p.N, p.Fault)
	}
	return bdd.Zero, fmt.Errorf("gauntlet: unknown family %q", p.Family)
}

// New builds the instance on a fresh manager sized to fit.
func New(p Params) (*bdd.Manager, bdd.Ref, error) {
	if err := p.Validate(); err != nil {
		return nil, bdd.Zero, err
	}
	m := bdd.New(p.Vars())
	f, err := Build(m, p)
	if err != nil {
		return nil, bdd.Zero, err
	}
	return m, f, nil
}

// SmallInstances is the smoke set `make gauntlet-smoke` and the bench
// per-family report run: one cheap instance of every family, each with a
// closed-form or explicit-enumeration oracle in range.
func SmallInstances() []Params {
	return []Params{
		{Family: FamilyQueens, N: 6},
		{Family: FamilyLife, Rows: 3, Cols: 3},
		{Family: FamilyHamiltonGrid, Rows: 2, Cols: 3},
		{Family: FamilyHamiltonKnight, Rows: 3, Cols: 3},
		{Family: FamilyEquivAdder, N: 8},
		{Family: FamilyEquivAdder, N: 8, Fault: true},
	}
}

// conj returns f AND g, consuming both owned references.
func conj(m *bdd.Manager, f, g bdd.Ref) bdd.Ref {
	h := m.And(f, g)
	m.Deref(f)
	m.Deref(g)
	return h
}

// exactlyOne builds "exactly one of vars is 1" (vars are projection
// functions, not owned). The caller owns the result.
func exactlyOne(m *bdd.Manager, vars []bdd.Ref) bdd.Ref {
	none := m.Ref(bdd.One)
	one := m.Ref(bdd.Zero)
	for _, x := range vars {
		// new one = x·none + ¬x·one ; new none = ¬x·none
		n1 := m.ITE(x, none, one)
		n0 := m.ITE(x, bdd.Zero, none)
		m.Deref(one)
		m.Deref(none)
		one, none = n1, n0
	}
	m.Deref(none)
	return one
}

// exactCounts builds, over the given variables, the family of symmetric
// functions "exactly k variables are 1" for k < cap, plus "at least cap"
// in the final slot (so the exact-k entries are not polluted by
// overflow). The caller owns every returned reference.
func exactCounts(m *bdd.Manager, vars []bdd.Ref, capK int) []bdd.Ref {
	cnt := make([]bdd.Ref, capK+1)
	cnt[0] = m.Ref(bdd.One)
	for k := 1; k <= capK; k++ {
		cnt[k] = m.Ref(bdd.Zero)
	}
	for _, x := range vars {
		// Overflow slot absorbs both "was already ≥cap" and "reaches cap".
		nOver := m.ITE(x, cnt[capK-1], cnt[capK])
		nOver2 := m.Or(nOver, cnt[capK])
		m.Deref(nOver)
		for k := capK - 1; k >= 1; k-- {
			nk := m.ITE(x, cnt[k-1], cnt[k])
			m.Deref(cnt[k])
			cnt[k] = nk
		}
		n0 := m.ITE(x, bdd.Zero, cnt[0])
		m.Deref(cnt[0])
		cnt[0] = n0
		m.Deref(cnt[capK])
		cnt[capK] = nOver2
	}
	return cnt
}
