package gauntlet_test

import (
	"math/big"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/count"
	"bddkit/internal/model/gauntlet"
)

func countOf(t *testing.T, p gauntlet.Params) *big.Int {
	t.Helper()
	m, f, err := gauntlet.New(p)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	defer m.Deref(f)
	c, err := count.Minterms(m, f, p.Vars())
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return c
}

// TestQueensSequence: the minterm counts must reproduce OEIS A000170.
func TestQueensSequence(t *testing.T) {
	want := []int64{1, 0, 0, 2, 10, 4, 40, 92}
	for n := 1; n <= len(want); n++ {
		c := countOf(t, gauntlet.Params{Family: gauntlet.FamilyQueens, N: n})
		if c.Int64() != want[n-1] {
			t.Errorf("queens%d count = %v, want %d", n, c, want[n-1])
		}
	}
}

// TestLifePredecessors: every minterm of the predecessor predicate must
// step to the target under explicit simulation, and the counts must match
// brute-force enumeration of all boards.
func TestLifePredecessors(t *testing.T) {
	const rows, cols = 3, 3
	target := gauntlet.DefaultLifeTarget(rows, cols)
	// Brute force: every 9-cell board that steps to the target.
	var want int64
	for bits := 0; bits < 1<<(rows*cols); bits++ {
		board := make([]bool, rows*cols)
		for i := range board {
			board[i] = bits&(1<<uint(i)) != 0
		}
		next := gauntlet.LifeStep(rows, cols, board)
		match := true
		for i := range next {
			if next[i] != target[i] {
				match = false
				break
			}
		}
		if match {
			want++
		}
	}
	p := gauntlet.Params{Family: gauntlet.FamilyLife, Rows: rows, Cols: cols}
	if c := countOf(t, p); c.Int64() != want {
		t.Fatalf("life%dx%d predecessors = %v, brute force = %d", rows, cols, c, want)
	}

	// Sampled predecessors must actually step to the target.
	m, f, err := gauntlet.New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Deref(f)
	s, err := count.NewSampler(m, f, p.Vars(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		board := s.Sample()
		next := gauntlet.LifeStep(rows, cols, board)
		for j := range next {
			if next[j] != target[j] {
				t.Fatalf("sampled board %d does not step to the target", i)
			}
		}
	}
}

// TestLifeGardenOfEden: a full 3x3 block has every cell overcrowded or
// newly born in ways no dead-boundary predecessor can produce — the count
// must be zero, flagging a garden of Eden.
func TestLifeGardenOfEden(t *testing.T) {
	target := make([]bool, 9)
	for i := range target {
		target[i] = true
	}
	p := gauntlet.Params{Family: gauntlet.FamilyLife, Rows: 3, Cols: 3, Target: target}
	if c := countOf(t, p); c.Sign() != 0 {
		t.Fatalf("full 3x3 block has %v predecessors, want 0 (garden of Eden)", c)
	}
}

// TestHamiltonianCounts: BDD minterm counts against explicit DFS cycle
// enumeration on the same graphs.
func TestHamiltonianCounts(t *testing.T) {
	cases := []struct {
		family     string
		rows, cols int
	}{
		{gauntlet.FamilyHamiltonGrid, 2, 2},
		{gauntlet.FamilyHamiltonGrid, 2, 3},
		{gauntlet.FamilyHamiltonGrid, 3, 3}, // odd grid: no cycle
		{gauntlet.FamilyHamiltonKnight, 3, 3},
	}
	for _, tc := range cases {
		var g gauntlet.Graph
		if tc.family == gauntlet.FamilyHamiltonGrid {
			g = gauntlet.GridGraph(tc.rows, tc.cols)
		} else {
			g = gauntlet.KnightGraph(tc.rows, tc.cols)
		}
		want := g.CountHamiltonianCycles()
		p := gauntlet.Params{Family: tc.family, Rows: tc.rows, Cols: tc.cols}
		if c := countOf(t, p); c.Int64() != want {
			t.Errorf("%s: BDD count = %v, DFS count = %d", p.Name(), c, want)
		}
	}
}

// TestEquivAdder: the fault-free miter must be identically zero (the two
// adders are equivalent — also confirmed via circuit.Equivalent), and the
// faulty miter's count must equal the closed-form distinguishing-pair
// count.
func TestEquivAdder(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		good := countOf(t, gauntlet.Params{Family: gauntlet.FamilyEquivAdder, N: n})
		if good.Sign() != 0 {
			t.Errorf("equiv-adder%d miter count = %v, want 0", n, good)
		}
		want := gauntlet.DistinguishingCount(n, true)
		bad := countOf(t, gauntlet.Params{Family: gauntlet.FamilyEquivAdder, N: n, Fault: true})
		if bad.Int64() != want {
			t.Errorf("equiv-adder%df miter count = %v, closed form = %d", n, bad, want)
		}
	}
	ra, cla := gauntlet.AdderPairNetlists(4, false)
	eq, _, err := circuit.Equivalent(ra, cla)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("circuit.Equivalent disagrees: fault-free adder pair reported inequivalent")
	}
	ra, cla = gauntlet.AdderPairNetlists(4, true)
	eq, mis, err := circuit.Equivalent(ra, cla)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("circuit.Equivalent disagrees: faulty adder pair reported equivalent")
	}
	if mis == nil {
		t.Fatal("inequivalent pair came back without a witness mismatch")
	}
}

func TestValidateRejectsPathological(t *testing.T) {
	bad := []gauntlet.Params{
		{Family: "nonesuch"},
		{Family: gauntlet.FamilyQueens, N: 0},
		{Family: gauntlet.FamilyQueens, N: 11},
		{Family: gauntlet.FamilyLife, Rows: 0, Cols: 3},
		{Family: gauntlet.FamilyLife, Rows: 7, Cols: 7},
		{Family: gauntlet.FamilyLife, Rows: 2, Cols: 2, Target: make([]bool, 3)},
		{Family: gauntlet.FamilyHamiltonGrid, Rows: 1, Cols: 1},
		{Family: gauntlet.FamilyHamiltonKnight, Rows: 4, Cols: 4},
		{Family: gauntlet.FamilyEquivAdder, N: 0},
		{Family: gauntlet.FamilyEquivAdder, N: 65},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: Validate accepted a pathological instance", p)
		}
	}
	for _, p := range gauntlet.SmallInstances() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: Validate rejected a smoke instance: %v", p.Name(), err)
		}
	}
}

func TestBuildRequiresRoom(t *testing.T) {
	m := bdd.New(3)
	if _, err := gauntlet.Build(m, gauntlet.Params{Family: gauntlet.FamilyQueens, N: 4}); err == nil {
		t.Fatal("Build on an undersized manager must fail")
	}
}
