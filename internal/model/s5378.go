package model

import (
	"fmt"

	"bddkit/internal/circuit"
)

// S5378Config sizes the random-control-logic model standing in for
// s5378opt (121 flip-flops after optimization).
type S5378Config struct {
	Units     int // number of counter/LFSR units
	UnitWidth int // width of each unit
}

// S5378Small is a scaled-down instance for tests.
func S5378Small() S5378Config { return S5378Config{Units: 2, UnitWidth: 3} }

// S5378Full approximates the original's register count: 15 units of width
// 8 give 120 state bits plus an arbiter, near s5378opt's 121.
func S5378Full() S5378Config { return S5378Config{Units: 15, UnitWidth: 8} }

// S5378 builds a bank of weakly coupled units — alternating binary
// counters and LFSRs — chained by enable signals (a unit advances when its
// predecessor is at a magic value), plus a round-robin arbiter that grants
// one unit's request per cycle. The coupling keeps the product state space
// large while the per-unit behavior stays simple, mimicking optimized
// random control logic.
func S5378(cfg S5378Config) *circuit.Netlist {
	u := cfg.Units
	w := cfg.UnitWidth
	b := circuit.NewBuilder(fmt.Sprintf("s5378_u%d_w%d", u, w))

	en := b.Input("en")
	kick := b.InputBus("kick", u) // per-unit external nudge

	units := make([][]circuit.Sig, u)
	for k := range units {
		units[k] = b.LatchBus(fmt.Sprintf("u%d_", k), w, uint64(k)%2)
	}
	// Arbiter: one-hot-ish grant pointer (binary-encoded).
	grBits := 1
	for 1<<uint(grBits) < u {
		grBits++
	}
	grant := b.LatchBus("gr", grBits, 0)

	prevMagic := en
	for k := 0; k < u; k++ {
		reg := units[k]
		advance := b.Or(b.And(prevMagic, en), kick[k])
		var nextVal []circuit.Sig
		if k%2 == 0 {
			// Binary counter unit.
			inc, _ := b.Incrementer(reg)
			nextVal = inc
		} else {
			// Fibonacci LFSR unit: shift left, feedback from the two
			// top bits.
			fbSrc := reg[w-1]
			if w > 1 {
				fbSrc = b.Xor(reg[w-1], reg[w-2])
			}
			nextVal = make([]circuit.Sig, w)
			nextVal[0] = fbSrc
			copy(nextVal[1:], reg[:w-1])
		}
		granted := b.EqConst(grant, uint64(k))
		step := b.And(advance, b.Or(granted, en))
		b.SetNextBus(reg, b.MuxBus(step, nextVal, reg))
		// Magic value: all-ones for counters, 1 for LFSRs.
		if k%2 == 0 {
			prevMagic = b.EqConst(reg, uint64(1<<uint(w)-1))
		} else {
			prevMagic = b.EqConst(reg, 1)
		}
	}

	// Round-robin grant: advance whenever the granted unit is at its
	// magic value or the enable toggles it.
	grInc, _ := b.Incrementer(grant)
	wrap := b.EqConst(grant, uint64(u-1))
	grNext := b.MuxBus(wrap, b.ConstBus(0, grBits), grInc)
	b.SetNextBus(grant, b.MuxBus(en, grNext, grant))

	b.Output("magic", prevMagic)
	b.OutputBus("grq", grant)
	b.OutputBus("u0q", units[0])
	return b.MustBuild()
}
