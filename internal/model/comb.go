package model

import (
	"fmt"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
)

// Combinational families for the Table 2–4 function corpus. Array
// multipliers are the classic source of large BDDs under any variable
// order; the hidden-weighted-bit function has exponential BDDs for every
// order; ALU and comparator slices provide the medium-size population.

// MultiplierNetlist returns an n×n array multiplier with all 2n product
// bits as outputs.
func MultiplierNetlist(n int) *circuit.Netlist {
	b := circuit.NewBuilder(fmt.Sprintf("mult%dx%d", n, n))
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	p := b.Multiplier(a, bb)
	b.OutputBus("p", p)
	return b.MustBuild()
}

// AdderNetlist returns an n-bit ripple-carry adder with sum and carry
// outputs.
func AdderNetlist(n int) *circuit.Netlist {
	b := circuit.NewBuilder(fmt.Sprintf("add%d", n))
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	sum, cout := b.Adder(a, bb, b.Const(false))
	b.OutputBus("s", sum)
	b.Output("cout", cout)
	return b.MustBuild()
}

// AluNetlist returns an n-bit 4-function ALU (add, subtract, and, xor)
// with zero and carry flags.
func AluNetlist(n int) *circuit.Netlist {
	b := circuit.NewBuilder(fmt.Sprintf("alu%d", n))
	op := b.InputBus("op", 2)
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	sum, cAdd := b.Adder(a, bb, b.Const(false))
	diff, cSub := b.Subtractor(a, bb)
	andv := make([]circuit.Sig, n)
	xorv := make([]circuit.Sig, n)
	for i := 0; i < n; i++ {
		andv[i] = b.And(a[i], bb[i])
		xorv[i] = b.Xor(a[i], bb[i])
	}
	res := b.MuxN(op, [][]circuit.Sig{sum, diff, andv, xorv})
	b.OutputBus("r", res)
	b.Output("zero", b.IsZero(res))
	b.Output("carry", b.Mux(op[0], cSub, cAdd))
	return b.MustBuild()
}

// ComparatorNetlist returns an n-bit magnitude comparator (lt, eq, gt).
func ComparatorNetlist(n int) *circuit.Netlist {
	b := circuit.NewBuilder(fmt.Sprintf("cmp%d", n))
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	lt := b.Less(a, bb)
	eq := b.Eq(a, bb)
	b.Output("lt", lt)
	b.Output("eq", eq)
	b.Output("gt", b.Nor(lt, eq))
	return b.MustBuild()
}

// HWB builds the hidden-weighted-bit function over n fresh variables of m:
// HWB(x) = x_{wt(x)} (1-indexed; 0 when the weight is 0). Its BDD is
// exponential under every variable order (Bryant 1991), which makes it a
// reliable large-BDD source for the corpus. The construction uses the
// exactly-k symmetric functions, built by dynamic programming.
func HWB(m *bdd.Manager, vars []int) bdd.Ref {
	n := len(vars)
	// exact[k] = BDD of "weight of x equals k" over the given vars.
	exact := make([]bdd.Ref, n+1)
	exact[0] = m.Ref(bdd.One)
	for k := 1; k <= n; k++ {
		exact[k] = m.Ref(bdd.Zero)
	}
	for i := 0; i < n; i++ {
		x := m.IthVar(vars[i])
		for k := i + 1; k >= 1; k-- {
			// new exact[k] = x·exact[k-1] + ¬x·exact[k]
			nk := m.ITE(x, exact[k-1], exact[k])
			m.Deref(exact[k])
			exact[k] = nk
		}
		nk0 := m.ITE(x, bdd.Zero, exact[0])
		m.Deref(exact[0])
		exact[0] = nk0
	}
	f := m.Ref(bdd.Zero)
	for k := 1; k <= n; k++ {
		term := m.And(exact[k], m.IthVar(vars[k-1]))
		nf := m.Or(f, term)
		m.Deref(term)
		m.Deref(f)
		f = nf
	}
	for _, e := range exact {
		m.Deref(e)
	}
	return f
}

// MajorityThreshold builds "at least k of the given variables are 1".
func MajorityThreshold(m *bdd.Manager, vars []int, k int) bdd.Ref {
	n := len(vars)
	// atLeast[j] over processed prefix; DP like HWB.
	ge := make([]bdd.Ref, k+1)
	ge[0] = m.Ref(bdd.One)
	for j := 1; j <= k; j++ {
		ge[j] = m.Ref(bdd.Zero)
	}
	for i := 0; i < n; i++ {
		x := m.IthVar(vars[i])
		for j := k; j >= 1; j-- {
			nj := m.ITE(x, ge[j-1], ge[j])
			m.Deref(ge[j])
			ge[j] = nj
		}
	}
	r := m.Ref(ge[k])
	for _, g := range ge {
		m.Deref(g)
	}
	return r
}
