package bench

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean(1,100) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{0, 4, 9}); math.Abs(g-6) > 1e-9 {
		t.Fatalf("GeoMean(0,4,9) = %v", g)
	}
}

func TestWinsTies(t *testing.T) {
	scores := [][]float64{
		{3, 1, 5}, // method 0
		{2, 1, 5}, // method 1
	}
	wins, ties := WinsTies(scores)
	if wins[0] != 1 || wins[1] != 0 {
		t.Fatalf("wins = %v", wins)
	}
	if ties[0] != 2 || ties[1] != 2 {
		t.Fatalf("ties = %v", ties)
	}
}

func TestSmallCorpusBuilds(t *testing.T) {
	fns, err := Build(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) == 0 {
		t.Fatal("small corpus is empty")
	}
	gauntletFns := 0
	for _, fn := range fns {
		if strings.HasPrefix(fn.Name, "gauntlet/") {
			// Family fixtures join unconditionally; the size filter only
			// prunes the random pool.
			gauntletFns++
			continue
		}
		if fn.Nodes < SmallCorpus().MinNodes {
			t.Fatalf("%s below threshold: %d", fn.Name, fn.Nodes)
		}
	}
	if want := len(SmallCorpus().Gauntlet); gauntletFns != want {
		t.Fatalf("corpus kept %d gauntlet fixtures, want %d", gauntletFns, want)
	}
	Release(fns)
}

// TestTable2Shape runs the Table 2 protocol on the small corpus and checks
// the qualitative shape the paper reports: every approximation produces
// fewer nodes than F, RUA's density at least matches F's (safety), and RUA
// accumulates the most density wins among the simple methods.
func TestTable2Shape(t *testing.T) {
	fns, err := Build(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	defer Release(fns)
	res := Table2(fns)
	byName := map[string]ApproxRow{}
	for _, r := range res.Rows {
		byName[r.Method] = r
	}
	f := byName["F"]
	for _, name := range []string{"HB", "SP", "UA", "RUA"} {
		if byName[name].Nodes >= f.Nodes {
			t.Errorf("%s did not shrink the corpus (%.1f vs %.1f nodes)", name, byName[name].Nodes, f.Nodes)
		}
	}
	if byName["RUA"].Density < f.Density {
		t.Errorf("RUA mean density below F: %g < %g", byName["RUA"].Density, f.Density)
	}
	best := "F"
	for _, name := range []string{"HB", "SP", "UA", "RUA"} {
		if byName[name].Wins > byName[best].Wins {
			best = name
		}
	}
	if best != "RUA" {
		t.Errorf("RUA is not the most frequent density winner (best = %s)", best)
	}
}

// TestTable3Shape: C1 must dominate RUA and C2 must dominate SP in the
// aggregate (the paper's "never loses" property).
func TestTable3Shape(t *testing.T) {
	fns, err := Build(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	defer Release(fns)
	t2 := Table2(fns)
	t3 := Table3(fns)
	get := func(res ApproxResult, name string) ApproxRow {
		for _, r := range res.Rows {
			if r.Method == name {
				return r
			}
		}
		t.Fatalf("row %s missing", name)
		return ApproxRow{}
	}
	c1, rua := get(t3, "C1"), get(t2, "RUA")
	if c1.Nodes > rua.Nodes*1.0001 {
		t.Errorf("C1 mean nodes %f exceed RUA's %f", c1.Nodes, rua.Nodes)
	}
	if c1.Minterms < rua.Minterms*0.9999 {
		t.Errorf("C1 mean minterms %g below RUA's %g", c1.Minterms, rua.Minterms)
	}
	c2, sp := get(t3, "C2"), get(t2, "SP")
	if c2.Nodes > sp.Nodes*1.0001 {
		t.Errorf("C2 mean nodes %f exceed SP's %f", c2.Nodes, sp.Nodes)
	}
}

// TestTable4Shape: every method's factors must multiply back to f (checked
// inside decomp's own tests); here we check the harness produces sane
// aggregates and that all methods actually decompose.
func TestTable4Shape(t *testing.T) {
	fns, err := Build(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	defer Release(fns)
	res := Table4(fns, SmallCorpus().MinNodes)
	if res.Cases == 0 {
		t.Fatal("no corpus functions entered Table 4")
	}
	totalWins := 0
	for _, r := range res.Rows {
		if r.G <= 0 || r.H <= 0 || r.Shared <= 0 {
			t.Errorf("%s has degenerate aggregates: %+v", r.Method, r)
		}
		totalWins += r.Wins + r.Ties
	}
	if totalWins == 0 {
		t.Error("no wins or ties recorded")
	}
}

// TestAblationRUA: the full algorithm must not lose density to any
// crippled variant in the aggregate.
func TestAblationRUA(t *testing.T) {
	fns, err := Build(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	defer Release(fns)
	res := AblationRUA(fns)
	full := res.Rows[0]
	if full.Method != "RUA (full)" {
		t.Fatalf("unexpected row order: %v", res.Rows)
	}
	for _, r := range res.Rows[1:] {
		if r.Density > full.Density*1.0001 {
			t.Errorf("variant %s beats the full algorithm: %g > %g",
				r.Method, r.Density, full.Density)
		}
	}
	// Every variant is still a valid, safe underapproximation (checked in
	// the approx tests); here, the zero-only variant must be strictly
	// worse than full on this corpus, demonstrating that the new
	// replacement types contribute.
	zero := res.Rows[3]
	if zero.Density >= full.Density {
		t.Logf("warning: zero-only matches full density on this corpus (%g)", zero.Density)
	}
}

// TestAblationDecompPairing: the balanced pairing must win at least as
// often as straight pairing on the max-factor objective.
func TestAblationDecompPairing(t *testing.T) {
	fns, err := Build(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	defer Release(fns)
	rows := AblationDecompPairing(fns)
	if rows[0].Method != "straight" {
		t.Fatal("unexpected row order")
	}
	// The default (straight) must not be noticeably worse than the
	// skew-balancing variant — this is the measurement that made it the
	// default.
	if rows[0].Larger > rows[1].Larger*1.05 {
		t.Errorf("straight pairing noticeably worse: %g vs %g", rows[0].Larger, rows[1].Larger)
	}
}

// TestTable1SmallRuns executes the scaled-down Table 1 and checks that the
// high-density traversals complete and agree on the state counts.
func TestTable1SmallRuns(t *testing.T) {
	rows, err := RunTable1(Table1Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if !r.RUA.Done {
			t.Errorf("%s: HD+RUA did not complete", r.Ckt)
		}
		if !r.SP.Done {
			t.Errorf("%s: HD+SP did not complete", r.Ckt)
		}
		if r.States <= 0 {
			t.Errorf("%s: no states reported", r.Ckt)
		}
	}
}
