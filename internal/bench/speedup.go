package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// ---------------------------------------------------------------------------
// Scaling harness: BENCH_reach.json records are tagged with the worker
// count that produced them, so the history holds one trajectory per engine
// mode. SpeedupCurves pairs the latest parallel record of each worker count
// against the latest serial record of the same suite and reports the
// speedup curve — wall-time ratio, parallel efficiency, and how much of the
// gap to perfect scaling the engine's own stop-the-world accounting
// explains (the rest is contention, stealing overhead, or Amdahl's
// residue that was never instrumented).
// ---------------------------------------------------------------------------

// SpeedupPoint is one circuit/method measured at W workers against its
// 1-worker baseline from the same suite.
type SpeedupPoint struct {
	Ckt        string        `json:"ckt"`
	Method     string        `json:"method"` // bfs, rua, sp
	Workers    int           `json:"workers"`
	SerialTime time.Duration `json:"serial_ns"`
	ParTime    time.Duration `json:"par_ns"`
	Speedup    float64       `json:"speedup"`    // SerialTime / ParTime
	Efficiency float64       `json:"efficiency"` // Speedup / Workers
	STWTime    time.Duration `json:"stw_ns"`     // serial sections inside the parallel run
	// Gap is the run's shortfall against perfect scaling:
	// ParTime - SerialTime/Workers. STWShare is the fraction of that gap
	// covered by measured stop-the-world time (capped at 1; zero when the
	// run beat perfect scaling).
	Gap      time.Duration `json:"gap_ns"`
	STWShare float64       `json:"stw_share"`
}

// latestBySuiteWorkers returns the most recent record for every
// (suite, workers) pair, preserving nothing older.
func latestBySuiteWorkers(h *History) map[string]map[int]*HistoryRecord {
	out := make(map[string]map[int]*HistoryRecord)
	for i := range h.Records {
		rec := &h.Records[i]
		byW, ok := out[rec.Suite]
		if !ok {
			byW = make(map[int]*HistoryRecord)
			out[rec.Suite] = byW
		}
		byW[rec.normWorkers()] = rec // newest record last wins
	}
	return out
}

// SpeedupCurves derives the speedup curve from a history: for every suite
// with both a serial (workers=1) record and at least one multi-worker
// record, every circuit/method completed by both runs contributes one
// point per worker count. An empty result means the history holds no
// comparable serial/parallel pair.
func SpeedupCurves(h *History) []SpeedupPoint {
	var points []SpeedupPoint
	for _, byW := range latestBySuiteWorkers(h) {
		base, ok := byW[1]
		if !ok {
			continue
		}
		baseRows := make(map[string]Table1Row, len(base.Rows))
		for _, r := range base.Rows {
			baseRows[r.Ckt] = r
		}
		for w, rec := range byW {
			if w == 1 {
				continue
			}
			for _, cur := range rec.Rows {
				prev, ok := baseRows[cur.Ckt]
				if !ok {
					continue
				}
				for _, m := range []struct {
					name string
					s, p MethodResult
				}{
					{"bfs", prev.BFS, cur.BFS},
					{"rua", prev.RUA, cur.RUA},
					{"sp", prev.SP, cur.SP},
				} {
					if !m.s.Done || !m.p.Done || m.s.Time <= 0 || m.p.Time <= 0 {
						continue
					}
					pt := SpeedupPoint{
						Ckt: cur.Ckt, Method: m.name, Workers: w,
						SerialTime: m.s.Time, ParTime: m.p.Time,
						Speedup: float64(m.s.Time) / float64(m.p.Time),
						STWTime: m.p.STWTime,
					}
					pt.Efficiency = pt.Speedup / float64(w)
					if gap := m.p.Time - m.s.Time/time.Duration(w); gap > 0 {
						pt.Gap = gap
						share := float64(m.p.STWTime) / float64(gap)
						if share > 1 {
							share = 1
						}
						pt.STWShare = share
					}
					points = append(points, pt)
				}
			}
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Workers != points[j].Workers {
			return points[i].Workers < points[j].Workers
		}
		if points[i].Ckt != points[j].Ckt {
			return points[i].Ckt < points[j].Ckt
		}
		return points[i].Method < points[j].Method
	})
	return points
}

// WriteSpeedup renders the speedup-curve report and returns the number of
// points. Zero points is the caller's cue to fail loudly — it means the
// history has no serial/parallel pair to compare (satellite CI runs
// `tables -speedup` against the committed baselines).
func WriteSpeedup(w io.Writer, points []SpeedupPoint) int {
	if len(points) == 0 {
		fmt.Fprintln(w, "speedup: no comparable serial/parallel record pair in history")
		fmt.Fprintln(w, "record baselines with: tables -table 1 -bench-save FILE (at workers 1 and N)")
		return 0
	}
	fmt.Fprintf(w, "%-10s %-4s %8s %12s %12s %9s %6s %12s %9s\n",
		"ckt", "meth", "workers", "serial", "parallel", "speedup", "eff", "stw", "gap-stw")
	curW := -1
	var sumSpeed, sumEff float64
	var n int
	flush := func() {
		if n > 0 {
			fmt.Fprintf(w, "  -- %d workers: mean speedup %.2fx, efficiency %.0f%%\n",
				curW, sumSpeed/float64(n), 100*sumEff/float64(n))
		}
		sumSpeed, sumEff, n = 0, 0, 0
	}
	for _, p := range points {
		if p.Workers != curW {
			flush()
			curW = p.Workers
		}
		fmt.Fprintf(w, "%-10s %-4s %8d %12v %12v %8.2fx %5.0f%% %12v %8.0f%%\n",
			p.Ckt, p.Method, p.Workers,
			p.SerialTime.Round(time.Millisecond), p.ParTime.Round(time.Millisecond),
			p.Speedup, 100*p.Efficiency,
			p.STWTime.Round(time.Millisecond), 100*p.STWShare)
		sumSpeed += p.Speedup
		sumEff += p.Efficiency
		n++
	}
	flush()
	return len(points)
}
