// Package bench is the experiment harness that regenerates the paper's
// evaluation: Table 1 (reachability with approximate traversal), Tables 2
// and 3 (simple and compound approximation methods over a corpus of large
// BDDs), and Table 4 (two-way decomposition methods). Each table has a
// runner that prints rows shaped like the paper's, plus machine-readable
// result structs consumed by the testing.B benchmarks and the EXPERIMENTS
// log.
package bench

import "math"

// GeoMean returns the geometric mean of xs, ignoring non-positive entries
// the way CUDD's reporting does (a zero would zero the whole mean).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// WinsTies scores one comparison group: for each case (outer index),
// scores[method][case] holds the figure of merit; higher is better. A
// method "wins" a case when it is strictly best, and "ties" when it shares
// the best value with at least one other method (the paper's Table 2–4
// convention).
func WinsTies(scores [][]float64) (wins, ties []int) {
	if len(scores) == 0 {
		return nil, nil
	}
	nm := len(scores)
	nc := len(scores[0])
	wins = make([]int, nm)
	ties = make([]int, nm)
	const rel = 1e-9
	for c := 0; c < nc; c++ {
		best := math.Inf(-1)
		for m := 0; m < nm; m++ {
			if scores[m][c] > best {
				best = scores[m][c]
			}
		}
		var holders []int
		for m := 0; m < nm; m++ {
			if scores[m][c] >= best-rel*math.Abs(best) {
				holders = append(holders, m)
			}
		}
		if len(holders) == 1 {
			wins[holders[0]]++
		} else {
			for _, m := range holders {
				ties[m]++
			}
		}
	}
	return wins, ties
}

// LowerIsBetter flips a score table so WinsTies can rank minimization
// objectives (e.g. Table 4's "size of the larger factor").
func LowerIsBetter(scores [][]float64) [][]float64 {
	out := make([][]float64, len(scores))
	for i, row := range scores {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = -v
		}
	}
	return out
}
