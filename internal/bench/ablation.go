package bench

import (
	"fmt"
	"io"
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/decomp"
	"bddkit/internal/reach"
)

// Ablation studies for the design choices DESIGN.md calls out: RUA's three
// replacement types (Section 2.1.1 of the paper) and the decomposition
// combine step's balance-driven pairing.

// AblationRUA compares RUA variants with replacement types disabled. Each
// row reports the geometric-mean density over the corpus; the full
// algorithm should dominate, and the drop per disabled transformation
// quantifies that transformation's contribution.
func AblationRUA(fns []Fn) ApproxResult {
	variants := []struct {
		name string
		cfg  approx.RemapConfig
	}{
		{"RUA (full)", approx.RemapConfig{}},
		{"no-remap", approx.RemapConfig{DisableRemap: true}},
		{"no-grandchild", approx.RemapConfig{DisableGrandchild: true}},
		{"zero-only", approx.RemapConfig{DisableRemap: true, DisableGrandchild: true}},
	}
	methods := make([]string, len(variants))
	for i, v := range variants {
		methods[i] = v.name
	}
	return approxTable(fns, methods, func(m *bdd.Manager, f bdd.Ref) []bdd.Ref {
		out := make([]bdd.Ref, len(variants))
		for i, v := range variants {
			out[i] = approx.RemapUnderApproxConfig(m, f, 0, 1.0, v.cfg)
		}
		return out
	})
}

// AblationPairing compares the balanced combine step of the generic
// decomposition against always-straight pairing, on Band points. The
// score is the size of the larger factor (smaller is better).
type PairingRow struct {
	Method string
	G, H   float64
	Larger float64
	Wins   int
	Ties   int
}

// AblationDecompPairing runs the pairing ablation over the corpus.
func AblationDecompPairing(fns []Fn) []PairingRow {
	names := []string{"straight", "skew-balanced"}
	gs := make([][]float64, 2)
	hs := make([][]float64, 2)
	larger := make([][]float64, 2)
	for i := range gs {
		gs[i] = make([]float64, len(fns))
		hs[i] = make([]float64, len(fns))
		larger[i] = make([]float64, len(fns))
	}
	for c, fn := range fns {
		m := fn.M
		pts := decomp.BandPoints(m, fn.F, decomp.DefaultBandConfig())
		pairs := []decomp.Pair{
			decomp.DecomposeConfig(m, fn.F, pts, decomp.Config{}),
			decomp.DecomposeConfig(m, fn.F, pts, decomp.Config{SkewBalancing: true}),
		}
		for i, p := range pairs {
			gs[i][c] = float64(m.DagSize(p.G))
			hs[i][c] = float64(m.DagSize(p.H))
			larger[i][c] = gs[i][c]
			if hs[i][c] > larger[i][c] {
				larger[i][c] = hs[i][c]
			}
			p.Deref(m)
		}
	}
	wins, ties := WinsTies(LowerIsBetter(larger))
	rows := make([]PairingRow, 2)
	for i, name := range names {
		rows[i] = PairingRow{
			Method: name,
			G:      GeoMean(gs[i]),
			H:      GeoMean(hs[i]),
			Larger: GeoMean(larger[i]),
			Wins:   wins[i],
			Ties:   ties[i],
		}
	}
	return rows
}

// ClusterRow is one row of the transition-relation clustering ablation.
type ClusterRow struct {
	ClusterSize int
	Clusters    int
	ImageTime   time.Duration
	PeakProduct int
}

// AblationClusterSize measures image-computation cost across
// transition-relation cluster thresholds on one model — the partitioned-TR
// design choice of Burch–Clarke–Long that the reachability engine builds
// on. The workload is a fixed number of BFS iterations from the initial
// state.
func AblationClusterSize(nl *circuit.Netlist, sizes []int, iterations int) ([]ClusterRow, error) {
	var rows []ClusterRow
	for _, cs := range sizes {
		c, err := circuit.Compile(nl, circuit.CompileOptions{})
		if err != nil {
			return nil, err
		}
		tr, err := reach.NewTR(c, reach.TROptions{ClusterSize: cs})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := tr.BFS(c.Init, reach.Options{MaxIterations: iterations})
		rows = append(rows, ClusterRow{
			ClusterSize: cs,
			Clusters:    len(tr.Clusters),
			ImageTime:   time.Since(start),
			PeakProduct: res.Stats.PeakProduct,
		})
		c.M.Deref(res.Reached)
		tr.Release()
		c.Release()
	}
	return rows, nil
}

// PrintClusters writes the clustering-ablation rows.
func PrintClusters(w io.Writer, rows []ClusterRow) {
	fmt.Fprintf(w, "%-12s %9s %12s %13s\n", "ClusterSize", "clusters", "time", "peak product")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %9d %12s %13d\n",
			r.ClusterSize, r.Clusters, r.ImageTime.Round(time.Millisecond), r.PeakProduct)
	}
}

// PrintPairing writes the pairing-ablation rows.
func PrintPairing(w io.Writer, rows []PairingRow) {
	fmt.Fprintf(w, "%-10s %12s %12s %12s %6s %6s\n", "Pairing", "G", "H", "max(G,H)", "wins", "ties")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f %6d %6d\n", r.Method, r.G, r.H, r.Larger, r.Wins, r.Ties)
	}
}
