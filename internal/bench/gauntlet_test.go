package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunGauntlet: the per-family report must reproduce every closed-form
// count and report sane exact mass ratios for the subset operators.
func TestRunGauntlet(t *testing.T) {
	rows, err := RunGauntlet(DefaultGauntletConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"queens6":            "4",
		"life3x3":            "1",
		"hamilton-grid2x3":   "2",
		"hamilton-knight3x3": "0",
		"equiv-adder8":       "0",
		"equiv-adder8f":      "30720",
	}
	if len(rows) != len(want) {
		t.Fatalf("report has %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected row %q", r.Name)
			continue
		}
		if r.Count != w {
			t.Errorf("%s: count %s, want %s", r.Name, r.Count, w)
		}
		if r.MassRUA < 0 || r.MassRUA > 1 || r.MassSP < 0 || r.MassSP > 1 {
			t.Errorf("%s: mass ratios out of [0,1]: rua %v sp %v", r.Name, r.MassRUA, r.MassSP)
		}
		if r.RUANodes > r.Nodes || r.SPNodes > r.Nodes {
			t.Errorf("%s: an under-approximation grew the DAG (%d/%d vs %d)", r.Name, r.RUANodes, r.SPNodes, r.Nodes)
		}
	}
	var buf bytes.Buffer
	if err := WriteGauntletJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"table": "gauntlet"`) {
		t.Fatalf("JSON report missing table tag:\n%s", buf.String())
	}
	var txt bytes.Buffer
	PrintGauntlet(&txt, rows)
	if !strings.Contains(txt.String(), "queens6") {
		t.Fatal("text report missing instances")
	}
}
