package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/count"
	"bddkit/internal/decomp"
	"bddkit/internal/model"
	"bddkit/internal/model/gauntlet"
	"bddkit/internal/obs"
	"bddkit/internal/reach"
)

// ---------------------------------------------------------------------------
// Tables 2 and 3: approximation method comparison.
// ---------------------------------------------------------------------------

// ApproxRow is one row of Table 2 or 3: geometric means over the corpus
// plus density wins/ties.
type ApproxRow struct {
	Method   string
	Nodes    float64
	Minterms float64
	Density  float64
	Wins     int
	Ties     int
}

// ApproxResult bundles the rows with the corpus size.
type ApproxResult struct {
	Rows  []ApproxRow
	Cases int
}

// Table2 reproduces the paper's Table 2 protocol on the given corpus:
// thresholds for UA and RUA are 0 with quality 1 (their most favorable
// settings), and |RUA(f)| becomes the threshold for HB and SP so no method
// is disadvantaged. Rows report the geometric means of nodes, minterms and
// density plus density wins/ties, in the paper's order (F, HB, SP, UA,
// RUA).
func Table2(fns []Fn) ApproxResult {
	methods := []string{"F", "HB", "SP", "UA", "RUA"}
	return approxTable(fns, methods, func(m *bdd.Manager, f bdd.Ref) []bdd.Ref {
		rua := approx.RemapUnderApprox(m, f, 0, 1.0)
		th := m.DagSize(rua)
		hb := approx.HeavyBranch(m, f, th)
		sp := approx.ShortPaths(m, f, th)
		ua := approx.UnderApprox(m, f, 0, 0.5)
		return []bdd.Ref{m.Ref(f), hb, sp, ua, rua}
	})
}

// Table3 reproduces Table 3: the compound methods C1 (RUA followed by safe
// minimization) and C2 (SP, then RUA, then minimization), scored against
// each other as in the paper ("C1 never loses to RUA, and C2 never loses
// to SP", so simple and compound methods are kept separate).
func Table3(fns []Fn) ApproxResult {
	methods := []string{"C1", "C2"}
	return approxTable(fns, methods, func(m *bdd.Manager, f bdd.Ref) []bdd.Ref {
		rua := approx.RemapUnderApprox(m, f, 0, 1.0)
		th := m.DagSize(rua)
		m.Deref(rua)
		c1 := approx.Compound1(m, f, 0, 1.0)
		c2 := approx.Compound2(m, f, th, 1.0)
		return []bdd.Ref{c1, c2}
	})
}

func approxTable(fns []Fn, methods []string, run func(*bdd.Manager, bdd.Ref) []bdd.Ref) ApproxResult {
	nm := len(methods)
	nodes := make([][]float64, nm)
	minterms := make([][]float64, nm)
	density := make([][]float64, nm)
	for i := range nodes {
		nodes[i] = make([]float64, len(fns))
		minterms[i] = make([]float64, len(fns))
		density[i] = make([]float64, len(fns))
	}
	for c, fn := range fns {
		m := fn.M
		results := run(m, fn.F)
		nVars := m.NumVars()
		for i, g := range results {
			nodes[i][c] = float64(m.DagSize(g))
			minterms[i][c] = m.CountMinterm(g, nVars)
			density[i][c] = minterms[i][c] / nodes[i][c]
			m.Deref(g)
		}
	}
	wins, ties := WinsTies(density)
	res := ApproxResult{Cases: len(fns)}
	for i, name := range methods {
		res.Rows = append(res.Rows, ApproxRow{
			Method:   name,
			Nodes:    GeoMean(nodes[i]),
			Minterms: GeoMean(minterms[i]),
			Density:  GeoMean(density[i]),
			Wins:     wins[i],
			Ties:     ties[i],
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// Table 4: decomposition method comparison.
// ---------------------------------------------------------------------------

// DecompRow is one row of Table 4.
type DecompRow struct {
	Method string
	Shared float64
	G      float64
	H      float64
	Wins   int
	Ties   int
}

// DecompResult bundles the rows with the population statistics the paper
// prints in the sub-headers (|f| mean, number of BDDs).
type DecompResult struct {
	Rows     []DecompRow
	Cases    int
	MeanSize float64
}

// Table4 reproduces Table 4 on the corpus functions of at least minNodes
// nodes: two-way conjunctive decomposition by Cofactor, Disjoint, and
// Band, reporting mean shared size and factor sizes; wins/ties rank the
// size of the larger factor (smaller is better).
func Table4(fns []Fn, minNodes int) DecompResult {
	sub := Filter(fns, minNodes)
	methods := []string{"Cofactor", "Disjoint", "Band"}
	shared := make([][]float64, 3)
	gs := make([][]float64, 3)
	hs := make([][]float64, 3)
	larger := make([][]float64, 3)
	for i := range shared {
		shared[i] = make([]float64, len(sub))
		gs[i] = make([]float64, len(sub))
		hs[i] = make([]float64, len(sub))
		larger[i] = make([]float64, len(sub))
	}
	var sizes []float64
	for c, fn := range sub {
		m := fn.M
		sizes = append(sizes, float64(fn.Nodes))
		pairs := []decomp.Pair{
			decomp.Cofactor(m, fn.F),
			decomp.Decompose(m, fn.F, decomp.DisjointPoints(m, fn.F, decomp.DefaultDisjointConfig())),
			decomp.Decompose(m, fn.F, decomp.BandPoints(m, fn.F, decomp.DefaultBandConfig())),
		}
		for i, p := range pairs {
			shared[i][c] = float64(p.SharedSize(m))
			gs[i][c] = float64(m.DagSize(p.G))
			hs[i][c] = float64(m.DagSize(p.H))
			larger[i][c] = gs[i][c]
			if hs[i][c] > larger[i][c] {
				larger[i][c] = hs[i][c]
			}
			p.Deref(m)
		}
	}
	wins, ties := WinsTies(LowerIsBetter(larger))
	res := DecompResult{Cases: len(sub), MeanSize: GeoMean(sizes)}
	for i, name := range methods {
		res.Rows = append(res.Rows, DecompRow{
			Method: name,
			Shared: GeoMean(shared[i]),
			G:      GeoMean(gs[i]),
			H:      GeoMean(hs[i]),
			Wins:   wins[i],
			Ties:   ties[i],
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// Table 1: reachability analysis with approximate traversal.
// ---------------------------------------------------------------------------

// MethodResult is one traversal's outcome within a Table 1 row, including
// the per-phase breakdown behind the timing column (serialized into the
// BENCH_*.json snapshots by WriteTable1JSON).
type MethodResult struct {
	Time      time.Duration `json:"time_ns"`
	Done      bool          `json:"done"`
	States    float64       `json:"states"`         // states found (exact when Done, explored otherwise)
	Nodes     int           `json:"nodes"`          // |reached| at the end
	PeakNodes int           `json:"peak_nodes"`     // manager live-node high-water mark
	CacheHit  float64       `json:"cache_hit_rate"` // computed-table hit rate over the run

	// Phase breakdown: where Time went and how much work each phase did.
	Iterations  int           `json:"iterations"`
	Closures    int           `json:"closures,omitempty"` // exact closure checks (HD only)
	Images      int           `json:"images"`
	AndExists   int           `json:"and_exists"`
	PImgCuts    int           `json:"pimg_cuts,omitempty"`
	PeakProduct int           `json:"peak_product"`
	ImageTime   time.Duration `json:"image_time_ns"`
	SubsetTime  time.Duration `json:"subset_time_ns,omitempty"`
	ClosureTime time.Duration `json:"closure_time_ns,omitempty"`

	// Stop-the-world accounting (parallel engine only; absent on serial
	// runs): how much of Time was spent in the engine's serial sections.
	// Additive to the record layout, so HistorySchema stays at 1.
	STWCount int64         `json:"stw_count,omitempty"`
	STWTime  time.Duration `json:"stw_ns,omitempty"`

	// Quality-ledger summary over the run (absent when the obs quality
	// ledger is disarmed): how many ledger operations the traversal filed,
	// how many aborted, and the mean/worst mass-retained ratio among them.
	// Additive to the record layout, so HistorySchema stays at 1.
	QualityOps    int64   `json:"quality_ops,omitempty"`
	QualityAborts int64   `json:"quality_aborts,omitempty"`
	MassMean      float64 `json:"mass_retained_mean,omitempty"`
	MassMin       float64 `json:"mass_retained_min,omitempty"`
}

// qualityDelta summarizes what the quality ledger recorded between two
// snapshots (taken around one traversal). The mean is exact over the
// delta; the minimum is the worst per-operator minimum among operators
// that recorded in the window, which can under-report if an earlier run
// of the same operator was worse — per-method Table 1 runs are the only
// caller, and their managers are fresh, so in practice the window owns
// its operators.
func qualityDelta(before, after obs.LedgerSnapshot) (ops, aborts int64, mean, min float64) {
	prevCount := make(map[string]int64, len(before.PerOp))
	prevSum := make(map[string]float64, len(before.PerOp))
	for _, a := range before.PerOp {
		prevCount[a.Key] = a.Count
		prevSum[a.Key] = a.MassSum
	}
	var massSum float64
	min = 1
	for _, a := range after.PerOp {
		dc := a.Count - prevCount[a.Key]
		if dc <= 0 {
			continue
		}
		ops += dc
		massSum += a.MassSum - prevSum[a.Key]
		if a.MassMin < min {
			min = a.MassMin
		}
	}
	aborts = after.Aborts - before.Aborts
	if ops > 0 {
		mean = massSum / float64(ops)
	}
	return ops, aborts, mean, min
}

// Table1Row mirrors one row of the paper's Table 1, extended with the
// exploration statistics that tell the story for budget-limited runs.
type Table1Row struct {
	Ckt    string  `json:"ckt"`
	FF     int     `json:"ff"`
	States float64 `json:"states"` // exact reachable states (from the best completed run)

	BFS MethodResult `json:"bfs"`

	RUATh   int          `json:"rua_threshold"`
	RUAQual float64      `json:"rua_quality"`
	RUAPImg string       `json:"rua_pimg"`
	RUA     MethodResult `json:"rua"`

	SPTh   int          `json:"sp_threshold"`
	SPPImg string       `json:"sp_pimg"`
	SP     MethodResult `json:"sp"`
}

// Table1Circuit configures one row's circuit and method parameters (the
// paper tuned these by trial and error per circuit; see EXPERIMENTS.md for
// how ours were chosen).
type Table1Circuit struct {
	Name    string
	Netlist *circuit.Netlist

	RUAThreshold int
	RUAQuality   float64
	RUAPImg      *reach.PImg

	SPThreshold int
	SPPImg      *reach.PImg

	// Budget caps each traversal (the stand-in for the paper's ">2
	// weeks" entry: a run that exhausts its budget reports not
	// completed).
	Budget time.Duration
}

// Table1Config lists the circuits to run.
type Table1Config struct {
	Circuits []Table1Circuit

	// Observe, when non-nil, is called with each freshly compiled manager
	// before its traversal runs. cmd/tables wires this to the observability
	// session's ObserveManager so the -obs endpoint's gauges and time
	// sampler follow the manager actually doing the work (each method runs
	// on a fresh manager).
	Observe func(*bdd.Manager)
}

// Table1Small is a fast configuration for tests and testing.B benchmarks.
func Table1Small() Table1Config {
	return Table1Config{Circuits: []Table1Circuit{
		{
			Name:         "s3330",
			Netlist:      model.S3330(model.S3330Config{Word: 4, FifoDepth: 2, CrcBits: 4}),
			RUAThreshold: 0, RUAQuality: 1.0,
			SPThreshold: 200,
			Budget:      30 * time.Second,
		},
		{
			Name:         "s1269",
			Netlist:      model.S1269(model.S1269Config{Width: 4}),
			RUAThreshold: 0, RUAQuality: 1.0,
			SPThreshold: 200,
			Budget:      30 * time.Second,
		},
		{
			Name:         "am2910",
			Netlist:      model.Am2910(model.Am2910Config{Width: 4, StackDepth: 2}),
			RUAThreshold: 0, RUAQuality: 1.0,
			SPThreshold: 100,
			Budget:      30 * time.Second,
		},
		{
			// Latch-free: exercises the zero-iteration combinational row.
			Name:         "equiv-adder8f",
			Netlist:      gauntlet.MiterNetlist(8, true),
			RUAThreshold: 0, RUAQuality: 1.0,
			SPThreshold: 20,
			Budget:      30 * time.Second,
		},
	}}
}

// Table1Paper is the laptop-scale analogue of the paper's Table 1 runs:
// the four circuit models at the scales and parameter settings recorded in
// EXPERIMENTS.md (found, as in the paper, by trial and error). budget caps
// each traversal; a run that exhausts it reports "not completed", the
// stand-in for the paper's ">2 weeks" BFS entry on am2910.
func Table1Paper(budget time.Duration) Table1Config {
	pimgRUA := &reach.PImg{Limit: 20000, Threshold: 10000, Subset: reach.RUASubsetter(1.0)}
	pimgSP := &reach.PImg{Limit: 20000, Threshold: 10000, Subset: reach.SPSubsetter()}
	return Table1Config{Circuits: []Table1Circuit{
		{
			Name:         "s3330",
			Netlist:      model.S3330(model.S3330Full()),
			RUAThreshold: 0, RUAQuality: 1.0, RUAPImg: pimgRUA,
			SPThreshold: 2000, SPPImg: pimgSP,
			Budget: budget,
		},
		{
			Name:         "s1269",
			Netlist:      model.S1269(model.S1269Full()),
			RUAThreshold: 0, RUAQuality: 0.5, RUAPImg: pimgRUA,
			SPThreshold: 2000, SPPImg: pimgSP,
			Budget: budget,
		},
		{
			Name:         "s5378opt",
			Netlist:      model.S5378(model.S5378Config{Units: 6, UnitWidth: 5}),
			RUAThreshold: 0, RUAQuality: 1.0, RUAPImg: pimgRUA,
			SPThreshold: 2000, SPPImg: pimgSP,
			Budget: budget,
		},
		{
			Name: "am2910",
			Netlist: model.Am2910(model.Am2910Config{
				Width: 8, StackDepth: 3, WithROM: true, RomSeed: 7, DitherBits: 3,
			}),
			RUAThreshold: 0, RUAQuality: 1.0, RUAPImg: pimgRUA,
			SPThreshold: 2000, SPPImg: pimgSP,
			Budget: budget,
		},
		{
			Name:         "equiv-adder16f",
			Netlist:      gauntlet.MiterNetlist(16, true),
			RUAThreshold: 0, RUAQuality: 1.0,
			SPThreshold: 200,
			Budget:      budget,
		},
	}}
}

// RunTable1 executes BFS, HD+RUA, and HD+SP per circuit, each on a fresh
// manager (so caches and reordering cannot leak across methods, as in the
// paper's separate runs).
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, ckt := range cfg.Circuits {
		if len(ckt.Netlist.Latches) == 0 {
			// Latch-free circuit: there is no transition relation to
			// traverse (NewTR would refuse it), but the row must still be
			// emitted — with zero iterations — rather than silently
			// dropped from -json output.
			row, err := runTable1Combinational(cfg, ckt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			continue
		}
		row := Table1Row{Ckt: ckt.Name, FF: len(ckt.Netlist.Latches)}
		row.RUATh = ckt.RUAThreshold
		row.RUAQual = ckt.RUAQuality
		row.RUAPImg = pimgLabel(ckt.RUAPImg)
		row.SPTh = ckt.SPThreshold
		row.SPPImg = pimgLabel(ckt.SPPImg)

		// quality carries the ledger delta of the most recent run into
		// toMethod; zero when the ledger is disarmed.
		var quality struct {
			ops, aborts int64
			mean, min   float64
		}
		run := func(f func(tr *reach.TR, init bdd.Ref) reach.Result) (reach.Result, error) {
			c, err := circuit.Compile(ckt.Netlist, circuit.CompileOptions{AutoReorder: true})
			if err != nil {
				return reach.Result{}, err
			}
			tr, err := reach.NewTR(c, reach.DefaultTROptions())
			if err != nil {
				return reach.Result{}, err
			}
			if cfg.Observe != nil {
				cfg.Observe(c.M)
			}
			before := obs.L.Snapshot()
			res := f(tr, c.Init)
			quality.ops, quality.aborts, quality.mean, quality.min =
				qualityDelta(before, obs.L.Snapshot())
			c.M.Deref(res.Reached)
			tr.Release()
			c.Release()
			return res, nil
		}

		toMethod := func(r reach.Result) MethodResult {
			mr := MethodResult{
				Time:        r.Elapsed,
				Done:        r.Completed,
				States:      r.States,
				Nodes:       r.Nodes,
				PeakNodes:   r.Stats.PeakLiveNodes,
				Iterations:  r.Iterations,
				Closures:    r.Closure,
				Images:      r.Stats.Images,
				AndExists:   r.Stats.AndExists,
				PImgCuts:    r.Stats.PImgCuts,
				PeakProduct: r.Stats.PeakProduct,
				ImageTime:   r.Stats.ImageTime,
				SubsetTime:  r.Stats.SubsetTime,
				ClosureTime: r.Stats.ClosureTime,
				STWCount:    r.Stats.STWCount,
				STWTime:     r.Stats.STWTime,
			}
			if r.Stats.CacheLookups > 0 {
				mr.CacheHit = float64(r.Stats.CacheHits) / float64(r.Stats.CacheLookups)
			}
			if quality.ops > 0 {
				mr.QualityOps = quality.ops
				mr.QualityAborts = quality.aborts
				mr.MassMean = quality.mean
				mr.MassMin = quality.min
			}
			return mr
		}

		bfs, err := run(func(tr *reach.TR, init bdd.Ref) reach.Result {
			return tr.BFS(init, reach.Options{Budget: ckt.Budget})
		})
		if err != nil {
			return nil, err
		}
		row.BFS = toMethod(bfs)
		if bfs.Completed {
			row.States = bfs.States
		}

		rua, err := run(func(tr *reach.TR, init bdd.Ref) reach.Result {
			return tr.HighDensity(init, reach.Options{
				Subset:    reach.RUASubsetter(ckt.RUAQuality),
				Threshold: ckt.RUAThreshold,
				PImg:      ckt.RUAPImg,
				Budget:    ckt.Budget,
			})
		})
		if err != nil {
			return nil, err
		}
		row.RUA = toMethod(rua)
		if rua.Completed && row.States == 0 {
			row.States = rua.States
		}

		sp, err := run(func(tr *reach.TR, init bdd.Ref) reach.Result {
			return tr.HighDensity(init, reach.Options{
				Subset:    reach.SPSubsetter(),
				Threshold: ckt.SPThreshold,
				PImg:      ckt.SPPImg,
				Budget:    ckt.Budget,
			})
		})
		if err != nil {
			return nil, err
		}
		row.SP = toMethod(sp)
		if sp.Completed && row.States == 0 {
			row.States = sp.States
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runTable1Combinational fills the row for a latch-free circuit. The
// methods degenerate to one image-less step each: the "BFS" column is the
// exact minterm count of the disjunction of the outputs (for a miter
// netlist, the number of distinguishing inputs), and the RUA/SP columns
// apply the corresponding subset operator to that function at the
// circuit's thresholds — filing quality-ledger records exactly as a
// traversal's subset phase would — and report the subset's count. Every
// method completes with Iterations 0.
func runTable1Combinational(cfg Table1Config, ckt Table1Circuit) (Table1Row, error) {
	row := Table1Row{
		Ckt: ckt.Name, FF: 0,
		RUATh: ckt.RUAThreshold, RUAQual: ckt.RUAQuality, RUAPImg: pimgLabel(ckt.RUAPImg),
		SPTh: ckt.SPThreshold, SPPImg: pimgLabel(ckt.SPPImg),
	}
	run := func(subset func(m *bdd.Manager, f bdd.Ref) bdd.Ref) (MethodResult, error) {
		start := time.Now()
		c, err := circuit.Compile(ckt.Netlist, circuit.CompileOptions{SkipNextVars: true, AutoReorder: true})
		if err != nil {
			return MethodResult{}, err
		}
		defer c.Release()
		if cfg.Observe != nil {
			cfg.Observe(c.M)
		}
		before := obs.L.Snapshot()
		f := c.M.Ref(bdd.Zero)
		for _, o := range c.Outputs {
			g := c.M.Or(f, o)
			c.M.Deref(f)
			f = g
		}
		sub := f
		if subset != nil {
			sub = subset(c.M, f)
		}
		cnt, err := count.Minterms(c.M, sub, c.M.NumVars())
		if err != nil {
			return MethodResult{}, err
		}
		states, _ := new(big.Float).SetInt(cnt).Float64()
		mr := MethodResult{
			Time:       time.Since(start),
			Done:       true,
			States:     states,
			Nodes:      c.M.DagSize(sub),
			PeakNodes:  c.M.NodeCount(),
			Iterations: 0,
		}
		if ops, aborts, mean, min := qualityDelta(before, obs.L.Snapshot()); ops > 0 {
			mr.QualityOps, mr.QualityAborts, mr.MassMean, mr.MassMin = ops, aborts, mean, min
		}
		if sub != f {
			c.M.Deref(sub)
		}
		c.M.Deref(f)
		return mr, nil
	}
	var err error
	if row.BFS, err = run(nil); err != nil {
		return row, err
	}
	row.States = row.BFS.States
	if row.RUA, err = run(func(m *bdd.Manager, f bdd.Ref) bdd.Ref {
		return approx.RemapUnderApprox(m, f, ckt.RUAThreshold, ckt.RUAQuality)
	}); err != nil {
		return row, err
	}
	if row.SP, err = run(func(m *bdd.Manager, f bdd.Ref) bdd.Ref {
		return approx.ShortPaths(m, f, ckt.SPThreshold)
	}); err != nil {
		return row, err
	}
	return row, nil
}

func pimgLabel(p *reach.PImg) string {
	if p == nil {
		return "NA"
	}
	return fmt.Sprintf("%d/%d", p.Limit, p.Threshold)
}

// WriteTable1JSON writes Table 1 rows — including each method's per-phase
// breakdown (image/subset/closure time, relational-product counts, peak
// intermediate product) — as indented JSON, the format of the BENCH_*.json
// snapshots kept at the repo root.
func WriteTable1JSON(w io.Writer, rows []Table1Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Table string      `json:"table"`
		Rows  []Table1Row `json:"rows"`
	}{Table: "table1", Rows: rows})
}

// ---------------------------------------------------------------------------
// Printing, in the shape of the paper's tables.
// ---------------------------------------------------------------------------

// PrintApprox writes Table 2/3 rows.
func PrintApprox(w io.Writer, title string, res ApproxResult) {
	fmt.Fprintf(w, "%s (%d BDDs)\n", title, res.Cases)
	fmt.Fprintf(w, "%-8s %12s %14s %14s %6s %6s\n", "Method", "nodes", "minterms", "density", "wins", "ties")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8s %12.1f %14.4g %14.4g %6d %6d\n",
			r.Method, r.Nodes, r.Minterms, r.Density, r.Wins, r.Ties)
	}
}

// PrintDecomp writes Table 4 rows.
func PrintDecomp(w io.Writer, minNodes int, res DecompResult) {
	fmt.Fprintf(w, "Min. Nodes = %d, |f| = %.1f, %d BDDs\n", minNodes, res.MeanSize, res.Cases)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %6s %6s\n", "Method", "Shared", "G", "H", "wins", "ties")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f %6d %6d\n",
			r.Method, r.Shared, r.G, r.H, r.Wins, r.Ties)
	}
}

// PrintTable1 writes Table 1 rows in the paper's layout, followed by an
// exploration footnote for any run that exhausted its budget (the paper's
// am2910 BFS entry is ">2 weeks"; ours report how far each method got).
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-8s %4s %12s | %10s | %6s %5s %13s %10s | %6s %13s %10s\n",
		"Ckt", "FF", "States", "BFS time", "Th", "Qual", "PImg", "RUA time", "Th", "PImg", "SP time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %12.4g | %10s | %6d %5.1f %13s %10s | %6d %13s %10s\n",
			r.Ckt, r.FF, r.States, fmtDur(r.BFS.Time, r.BFS.Done),
			r.RUATh, r.RUAQual, r.RUAPImg, fmtDur(r.RUA.Time, r.RUA.Done),
			r.SPTh, r.SPPImg, fmtDur(r.SP.Time, r.SP.Done))
	}
	for _, r := range rows {
		if r.BFS.Done && r.RUA.Done && r.SP.Done {
			continue
		}
		fmt.Fprintf(w, "  %s (budget exhausted): ", r.Ckt)
		for _, m := range []struct {
			name string
			mr   MethodResult
		}{{"BFS", r.BFS}, {"HD+RUA", r.RUA}, {"HD+SP", r.SP}} {
			status := "done"
			if !m.mr.Done {
				status = "partial"
			}
			fmt.Fprintf(w, "%s %s %.3g states, peak %d nodes, cache %.0f%%; ",
				m.name, status, m.mr.States, m.mr.PeakNodes, 100*m.mr.CacheHit)
		}
		fmt.Fprintln(w)
	}
}

func fmtDur(d time.Duration, completed bool) string {
	s := d.Round(time.Millisecond).String()
	if !completed {
		return "> " + s
	}
	return s
}
