package bench

import (
	"fmt"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
	"bddkit/internal/model/gauntlet"
)

// Fn is one corpus function: a BDD together with the manager that owns it.
// Functions from the same source circuit share a manager, mirroring the
// paper's setup (outputs and next-state functions of a circuit collection).
type Fn struct {
	Name  string
	M     *bdd.Manager
	F     bdd.Ref
	Nodes int
}

// CorpusConfig controls corpus generation. The paper's pool is "outputs
// and next state functions of a collection of circuits": 7157 functions of
// which the 336 with ≥5000 nodes enter Tables 2–4. Ours is drawn from
// array multipliers, hidden-weighted-bit functions, ALU/comparator slices,
// seeded random logic cones, and the next-state functions of the four
// Table 1 models.
type CorpusConfig struct {
	MinNodes    int   // size filter (the paper's 5000)
	MultSizes   []int // array multiplier operand widths
	HWBSizes    []int // hidden-weighted-bit variable counts
	RandCones   int   // number of seeded random logic cones
	RandInputs  int   // inputs per random cone
	RandGates   int   // gates per random cone
	WithModels  bool  // include sequential model next-state functions
	MaxPerGroup int   // cap functions kept per source (0 = all)

	// Gauntlet instances join the corpus unconditionally (the MinNodes
	// filter prunes the random pool, not the per-family fixtures — each
	// gauntlet function carries an independent exact solution count that
	// Tables 2–4 and the approximation-loss ledger are scored against).
	Gauntlet []gauntlet.Params
}

// SmallCorpus is sized for unit tests and the testing.B benchmarks.
func SmallCorpus() CorpusConfig {
	return CorpusConfig{
		MinNodes:   300,
		MultSizes:  []int{7},
		HWBSizes:   []int{18},
		RandCones:  6,
		RandInputs: 24,
		RandGates:  80,
		Gauntlet: []gauntlet.Params{
			{Family: gauntlet.FamilyQueens, N: 6},
			{Family: gauntlet.FamilyEquivAdder, N: 8, Fault: true},
		},
	}
}

// PaperCorpus approximates the paper's population at laptop scale: every
// function with at least 2000 nodes from the full source mix (the paper's
// 5000-node threshold over its 7157-function pool kept 336 BDDs; see
// EXPERIMENTS.md for the measured counts here).
func PaperCorpus() CorpusConfig {
	return CorpusConfig{
		MinNodes:   2000,
		MultSizes:  []int{8, 9, 10},
		HWBSizes:   []int{24, 26, 28, 30, 32},
		RandCones:  120,
		RandInputs: 36,
		RandGates:  150,
		WithModels: true,
		Gauntlet: []gauntlet.Params{
			{Family: gauntlet.FamilyQueens, N: 8},
			{Family: gauntlet.FamilyLife, Rows: 4, Cols: 4},
			{Family: gauntlet.FamilyHamiltonGrid, Rows: 3, Cols: 4},
			{Family: gauntlet.FamilyEquivAdder, N: 16, Fault: true},
		},
	}
}

// BigCorpusThreshold is the second filter of Table 4 (the paper's 20000).
const BigCorpusThreshold = 20000

// Build generates the corpus, keeping only functions whose BDDs meet the
// size threshold. Functions are deterministic across runs.
func Build(cfg CorpusConfig) ([]Fn, error) {
	var fns []Fn
	keep := func(name string, m *bdd.Manager, f bdd.Ref) {
		sz := m.DagSize(f)
		if sz < cfg.MinNodes {
			m.Deref(f)
			return
		}
		fns = append(fns, Fn{Name: name, M: m, F: m.Ref(f), Nodes: sz})
		m.Deref(f)
	}
	fromNetlistOrdered := func(nl *circuit.Netlist, outputs, static bool) error {
		c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: !outputs, StaticOrder: static})
		if err != nil {
			return err
		}
		suffix := ""
		if static {
			suffix = "/static"
		}
		kept := 0
		if outputs {
			for i, f := range c.Next {
				if cfg.MaxPerGroup > 0 && kept >= cfg.MaxPerGroup {
					break
				}
				keep(fmt.Sprintf("%s/ns%d%s", nl.Name, i, suffix), c.M, c.M.Ref(f))
				kept++
			}
		}
		for i, f := range c.Outputs {
			if cfg.MaxPerGroup > 0 && kept >= cfg.MaxPerGroup {
				break
			}
			keep(fmt.Sprintf("%s/%s%s", nl.Name, nl.OutName[i], suffix), c.M, c.M.Ref(f))
			kept++
		}
		c.Release()
		return nil
	}
	fromNetlist := func(nl *circuit.Netlist, outputs bool) error {
		return fromNetlistOrdered(nl, outputs, false)
	}
	for _, n := range cfg.MultSizes {
		// Both variable orders: the declaration order and the DFS static
		// order give structurally different BDDs of the same functions,
		// widening the corpus the way differently synthesized cones do.
		if err := fromNetlist(model.MultiplierNetlist(n), false); err != nil {
			return nil, err
		}
		if err := fromNetlistOrdered(model.MultiplierNetlist(n), false, true); err != nil {
			return nil, err
		}
	}
	for _, n := range cfg.HWBSizes {
		m := bdd.New(n)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = i
		}
		keep(fmt.Sprintf("hwb%d", n), m, model.HWB(m, vars))
	}
	for s := 0; s < cfg.RandCones; s++ {
		nl := model.RandomLogicNetlist(model.RandomLogicConfig{
			Inputs: cfg.RandInputs, Gates: cfg.RandGates, Seed: int64(1000 + s),
		})
		if err := fromNetlist(nl, false); err != nil {
			return nil, err
		}
	}
	for _, p := range cfg.Gauntlet {
		m, f, err := gauntlet.New(p)
		if err != nil {
			return nil, err
		}
		fns = append(fns, Fn{Name: "gauntlet/" + p.Name(), M: m, F: f, Nodes: m.DagSize(f)})
	}
	if cfg.WithModels {
		for _, nl := range []*circuit.Netlist{
			model.Am2910(model.Am2910Full()),
			model.S1269(model.S1269Full()),
			model.S3330(model.S3330Full()),
			model.S5378(model.S5378Full()),
		} {
			if err := fromNetlist(nl, true); err != nil {
				return nil, err
			}
		}
	}
	return fns, nil
}

// Release frees every corpus function.
func Release(fns []Fn) {
	for _, fn := range fns {
		fn.M.Deref(fn.F)
	}
}

// Filter returns the subset of fns with at least minNodes nodes.
func Filter(fns []Fn, minNodes int) []Fn {
	var out []Fn
	for _, fn := range fns {
		if fn.Nodes >= minNodes {
			out = append(out, fn)
		}
	}
	return out
}
