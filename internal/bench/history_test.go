package bench

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// syntheticRow builds a fully populated Table1Row scaled by k, so doubling
// k models a uniform 2x regression.
func syntheticRow(ckt string, k float64) Table1Row {
	mr := func(base time.Duration, peak int) MethodResult {
		return MethodResult{
			Time:        time.Duration(float64(base) * k),
			Done:        true,
			States:      65536,
			Nodes:       40,
			PeakNodes:   int(float64(peak) * k),
			CacheHit:    0.75,
			Iterations:  12,
			Images:      12,
			AndExists:   36,
			PeakProduct: 900,
			ImageTime:   time.Duration(float64(base) * k * 0.6),
			SubsetTime:  time.Duration(float64(base) * k * 0.1),
		}
	}
	return Table1Row{
		Ckt: ckt, FF: 16, States: 65536,
		BFS:   mr(2*time.Second, 50000),
		RUATh: 100, RUAQual: 1.0, RUAPImg: "NA", RUA: mr(1500*time.Millisecond, 30000),
		SPTh: 100, SPPImg: "NA", SP: mr(1800*time.Millisecond, 40000),
	}
}

func record(when string, k float64) HistoryRecord {
	return HistoryRecord{
		When:  when,
		Suite: "table1-test",
		Rows:  []Table1Row{syntheticRow("counter", k)},
	}
}

func TestHistoryAppendLoadCompare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_reach.json")

	// Missing file loads as empty history with nothing to compare.
	h, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := h.Latest2(); ok {
		t.Fatal("empty history claims two records")
	}

	if err := AppendHistory(path, record("2026-08-06T10:00:00Z", 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, record("2026-08-06T11:00:00Z", 1.05)); err != nil {
		t.Fatal(err)
	}
	h, err = LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 2 {
		t.Fatalf("history holds %d records, want 2", len(h.Records))
	}
	for i, rec := range h.Records {
		if rec.Schema != HistorySchema {
			t.Fatalf("record %d schema = %d, want %d", i, rec.Schema, HistorySchema)
		}
	}
	prev, cur, ok := h.Latest2()
	if !ok || prev.When != "2026-08-06T10:00:00Z" || cur.When != "2026-08-06T11:00:00Z" {
		t.Fatalf("Latest2 = %v, %v, %v", prev, cur, ok)
	}

	// A 5% drift is within tolerance: bench-cmp must pass.
	if regs := CompareRecords(prev, cur); len(regs) != 0 {
		t.Fatalf("5%% drift flagged as regression: %v", regs)
	}
	var buf bytes.Buffer
	if n := WriteComparison(&buf, prev, cur); n != 0 {
		t.Fatalf("WriteComparison reports %d regressions:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions beyond tolerance") {
		t.Fatalf("comparison report missing OK line:\n%s", buf.String())
	}
}

// TestCompareDetectsSyntheticRegression is the acceptance check: injecting
// a uniform 2x slowdown (and 2x peak-node growth) must trip every method's
// time and peak-node thresholds.
func TestCompareDetectsSyntheticRegression(t *testing.T) {
	prev := record("2026-08-06T10:00:00Z", 1.0)
	cur := record("2026-08-06T11:00:00Z", 2.0)
	regs := CompareRecords(&prev, &cur)
	byMetric := map[string]int{}
	for _, r := range regs {
		byMetric[r.Metric]++
		if r.Ratio < 1.9 || r.Ratio > 2.1 {
			t.Errorf("%s/%s %s ratio = %.2f, want ~2", r.Ckt, r.Method, r.Metric, r.Ratio)
		}
	}
	if byMetric["time"] != 3 || byMetric["peak_nodes"] != 3 {
		t.Fatalf("regression breakdown = %v, want 3 time + 3 peak_nodes", byMetric)
	}
	var buf bytes.Buffer
	if n := WriteComparison(&buf, &prev, &cur); n != len(regs) {
		t.Fatalf("WriteComparison count %d != %d", n, len(regs))
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("report missing REGRESSION lines:\n%s", buf.String())
	}
}

func TestCompareEdgeCases(t *testing.T) {
	prev := record("a", 1.0)
	cur := record("b", 1.0)

	// completed -> not-completed is a regression even with a faster time.
	cur.Rows[0].BFS.Done = false
	cur.Rows[0].BFS.Time = time.Second
	regs := CompareRecords(&prev, &cur)
	if len(regs) != 1 || regs[0].Metric != "completed" || regs[0].Method != "bfs" {
		t.Fatalf("completed->partial regressions = %v", regs)
	}

	// A 3x blowup under the absolute floors is noise, not a regression.
	prev = record("a", 1.0)
	cur = record("b", 1.0)
	prev.Rows[0].SP.Time = 40 * time.Millisecond
	cur.Rows[0].SP.Time = 120 * time.Millisecond
	prev.Rows[0].SP.PeakNodes = 100
	cur.Rows[0].SP.PeakNodes = 300
	if regs := CompareRecords(&prev, &cur); len(regs) != 0 {
		t.Fatalf("sub-floor deltas flagged: %v", regs)
	}

	// Circuits without a baseline are skipped.
	cur = record("b", 5.0)
	cur.Rows[0].Ckt = "brand-new"
	if regs := CompareRecords(&prev, &cur); len(regs) != 0 {
		t.Fatalf("unmatched circuit compared: %v", regs)
	}
}

// TestWriteTable1JSONRoundTrip round-trips rows through the BENCH_*.json
// encoding and checks the per-phase breakdown survives with sane values.
func TestWriteTable1JSONRoundTrip(t *testing.T) {
	rows := []Table1Row{syntheticRow("counter", 1.0), syntheticRow("am2910", 1.3)}
	var buf bytes.Buffer
	if err := WriteTable1JSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Table string      `json:"table"`
		Rows  []Table1Row `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Table != "table1" || len(snap.Rows) != len(rows) {
		t.Fatalf("snapshot = %q/%d rows, want table1/%d", snap.Table, len(snap.Rows), len(rows))
	}
	for i, got := range snap.Rows {
		want := rows[i]
		if got != want {
			t.Fatalf("row %d changed across round trip:\ngot  %+v\nwant %+v", i, got, want)
		}
		for _, m := range []MethodResult{got.BFS, got.RUA, got.SP} {
			if m.Iterations <= 0 || m.Images <= 0 || m.AndExists <= 0 || m.PeakProduct <= 0 {
				t.Fatalf("row %d: phase counters not populated: %+v", i, m)
			}
			if m.ImageTime < 0 || m.SubsetTime < 0 || m.ClosureTime < 0 || m.Time < 0 {
				t.Fatalf("row %d: negative phase time: %+v", i, m)
			}
			if m.ImageTime+m.SubsetTime+m.ClosureTime > m.Time {
				t.Fatalf("row %d: phase times exceed total: %+v", i, m)
			}
		}
	}
}

// TestLatestComparablePairsByWorkers: serial and parallel bench-save
// records form two interleaved trajectories; the comparison must pair like
// with like (a parallel image tree legitimately peaks higher than the
// serial cluster chain, so cross-mode deltas are not regressions).
func TestLatestComparablePairsByWorkers(t *testing.T) {
	r1 := record("2026-08-07T10:00:00Z", 1.0) // workers absent = serial
	r2 := record("2026-08-07T11:00:00Z", 1.3)
	r2.Workers = 4
	r3 := record("2026-08-07T12:00:00Z", 1.32)
	r3.Workers = 4

	h := &History{Records: []HistoryRecord{r1, r2, r3}}
	prev, cur, ok := h.LatestComparable()
	if !ok || prev.When != r2.When || cur.When != r3.When {
		t.Fatalf("parallel pair = %v, %v, %v; want r2, r3", prev, cur, ok)
	}

	// A serial record appended after the parallel pair must reach back to
	// the serial baseline, skipping the parallel records in between.
	r4 := record("2026-08-07T13:00:00Z", 1.02)
	r4.Workers = 1
	h.Records = append(h.Records, r4)
	prev, cur, ok = h.LatestComparable()
	if !ok || prev.When != r1.When || cur.When != r4.When {
		t.Fatalf("serial pair = %v, %v, %v; want r1, r4", prev, cur, ok)
	}

	// A lone parallel record has no baseline yet.
	h2 := &History{Records: []HistoryRecord{r1, r2}}
	if p, c, ok := h2.LatestComparable(); ok {
		t.Fatalf("lone parallel record claims baseline %v vs %v", p, c)
	} else if c == nil || c.When != r2.When {
		t.Fatalf("cur = %v, want the latest record", c)
	}
}
