package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func speedupHistory() *History {
	mk := func(t time.Duration, stw time.Duration) MethodResult {
		return MethodResult{Time: t, Done: true, STWTime: stw}
	}
	return &History{Records: []HistoryRecord{
		{Schema: 1, Suite: "table1-small", Workers: 0, Rows: []Table1Row{ // pre-parallel record: workers omitted = serial
			{Ckt: "s3330", BFS: mk(400*time.Millisecond, 0), RUA: mk(300*time.Millisecond, 0), SP: mk(200*time.Millisecond, 0)},
		}},
		{Schema: 1, Suite: "table1-small", Workers: 1, Rows: []Table1Row{ // newer serial baseline wins
			{Ckt: "s3330", BFS: mk(800*time.Millisecond, 0), RUA: mk(600*time.Millisecond, 0), SP: mk(400*time.Millisecond, 0)},
		}},
		{Schema: 1, Suite: "table1-small", Workers: 4, Rows: []Table1Row{
			{Ckt: "s3330",
				BFS: mk(400*time.Millisecond, 100*time.Millisecond),           // 2x speedup, gap 200ms, stw explains half
				RUA: mk(150*time.Millisecond, 0),                              // perfect 4x: no gap
				SP:  MethodResult{Time: 100 * time.Millisecond, Done: false}}, // incomplete: excluded
		}},
		{Schema: 1, Suite: "other-suite", Workers: 4, Rows: []Table1Row{ // no serial baseline: excluded
			{Ckt: "x", BFS: mk(time.Second, 0)},
		}},
	}}
}

func TestSpeedupCurves(t *testing.T) {
	points := SpeedupCurves(speedupHistory())
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2 (bfs + rua): %+v", len(points), points)
	}
	bfs, rua := points[0], points[1]
	if bfs.Method != "bfs" || rua.Method != "rua" {
		t.Fatalf("points out of order: %+v", points)
	}

	if math.Abs(bfs.Speedup-2.0) > 1e-9 || math.Abs(bfs.Efficiency-0.5) > 1e-9 {
		t.Errorf("bfs speedup %.2f eff %.2f, want 2.00 / 0.50", bfs.Speedup, bfs.Efficiency)
	}
	// Perfect scaling would be 800ms/4 = 200ms; the run took 400ms, so the
	// gap is 200ms and the 100ms of STW explains half of it.
	if bfs.Gap != 200*time.Millisecond {
		t.Errorf("bfs gap = %v, want 200ms", bfs.Gap)
	}
	if math.Abs(bfs.STWShare-0.5) > 1e-9 {
		t.Errorf("bfs STWShare = %.2f, want 0.50", bfs.STWShare)
	}

	if math.Abs(rua.Speedup-4.0) > 1e-9 || rua.Gap != 0 || rua.STWShare != 0 {
		t.Errorf("rua = %+v, want perfect 4x with zero gap", rua)
	}

	var buf bytes.Buffer
	if n := WriteSpeedup(&buf, points); n != 2 {
		t.Fatalf("WriteSpeedup = %d, want 2", n)
	}
	out := buf.String()
	for _, want := range []string{"s3330", "2.00x", "4 workers: mean speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedupCurvesEmpty(t *testing.T) {
	h := &History{Records: []HistoryRecord{
		{Schema: 1, Suite: "table1-small", Workers: 1, Rows: []Table1Row{{Ckt: "s3330"}}},
	}}
	if points := SpeedupCurves(h); len(points) != 0 {
		t.Fatalf("serial-only history produced points: %+v", points)
	}
	var buf bytes.Buffer
	if n := WriteSpeedup(&buf, nil); n != 0 {
		t.Fatalf("WriteSpeedup(nil) = %d, want 0", n)
	}
	if !strings.Contains(buf.String(), "no comparable serial/parallel record pair") {
		t.Errorf("empty report should explain itself:\n%s", buf.String())
	}
}
