package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// ---------------------------------------------------------------------------
// Benchmark trajectory tracking: BENCH_reach.json is an append-only history
// of Table 1 runs, so a perf regression shows up as a delta between the two
// most recent records instead of a vague "it feels slower".
// ---------------------------------------------------------------------------

// HistorySchema versions the on-disk record layout; bump it when
// HistoryRecord changes incompatibly. Loading rejects newer schemas rather
// than misreading them.
const HistorySchema = 1

// HistoryRecord is one benchmark run appended by `make bench-save`
// (tables -table 1 -bench-save).
type HistoryRecord struct {
	Schema  int         `json:"schema"`
	When    string      `json:"when"`              // RFC3339 timestamp of the run
	Suite   string      `json:"suite"`             // e.g. "table1-small", "table1-paper"
	Workers int         `json:"workers,omitempty"` // BDD engine workers (0/absent = 1, the serial engine)
	Rows    []Table1Row `json:"rows"`
}

// normWorkers maps the omitted/zero workers of pre-parallel records to the
// serial engine they ran on.
func (r *HistoryRecord) normWorkers() int {
	if r.Workers <= 0 {
		return 1
	}
	return r.Workers
}

// History is the whole trajectory file: newest record last.
type History struct {
	Records []HistoryRecord `json:"records"`
}

// LoadHistory reads a trajectory file; a missing file is an empty history.
func LoadHistory(path string) (*History, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &History{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var h History
	if err := json.NewDecoder(f).Decode(&h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, rec := range h.Records {
		if rec.Schema > HistorySchema {
			return nil, fmt.Errorf("%s: record %d has schema %d, this build reads <= %d",
				path, i, rec.Schema, HistorySchema)
		}
	}
	return &h, nil
}

// AppendHistory loads path (or starts fresh), appends rec and writes the
// file back atomically (temp file + rename).
func AppendHistory(path string, rec HistoryRecord) error {
	h, err := LoadHistory(path)
	if err != nil {
		return err
	}
	rec.Schema = HistorySchema
	if rec.When == "" {
		rec.When = time.Now().UTC().Format(time.RFC3339)
	}
	h.Records = append(h.Records, rec)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Latest2 returns the two most recent records. ok is false with fewer than
// two records — nothing to compare against yet.
func (h *History) Latest2() (prev, cur *HistoryRecord, ok bool) {
	n := len(h.Records)
	if n < 2 {
		return nil, nil, false
	}
	return &h.Records[n-2], &h.Records[n-1], true
}

// LatestComparable returns the most recent record paired with the latest
// earlier record of the same suite and worker count. Serial and parallel
// runs have genuinely different peak-node profiles (the concurrent image
// tree trades peak product for overlap, and deferred death keeps nodes
// alive across a parallel section), so a regression gate only means
// something within one engine mode; histories that alternate
// serial/parallel records therefore track two interleaved trajectories.
func (h *History) LatestComparable() (prev, cur *HistoryRecord, ok bool) {
	n := len(h.Records)
	if n < 2 {
		return nil, nil, false
	}
	cur = &h.Records[n-1]
	for i := n - 2; i >= 0; i-- {
		p := &h.Records[i]
		if p.Suite == cur.Suite && p.normWorkers() == cur.normWorkers() {
			return p, cur, true
		}
	}
	return nil, cur, false
}

// Regression tolerance: wall time may grow 15% and peak live nodes 25%
// before bench-cmp complains. Sub-floor absolute deltas never count —
// a 40ms run that doubles to 80ms is scheduler noise, not a regression.
const (
	timeTolerance  = 1.15
	nodesTolerance = 1.25
	timeFloor      = 250 * time.Millisecond
	peakNodesFloor = 1024
)

// Regression is one metric of one method of one circuit that got worse
// beyond tolerance between two records.
type Regression struct {
	Ckt    string  `json:"ckt"`
	Method string  `json:"method"` // bfs, rua, sp
	Metric string  `json:"metric"` // time, peak_nodes, completed
	Prev   float64 `json:"prev"`
	Cur    float64 `json:"cur"`
	Ratio  float64 `json:"ratio"`
}

func (r Regression) String() string {
	switch r.Metric {
	case "time":
		return fmt.Sprintf("%s/%s: time %v -> %v (%.2fx, tolerance %.2fx)",
			r.Ckt, r.Method, time.Duration(r.Prev).Round(time.Millisecond),
			time.Duration(r.Cur).Round(time.Millisecond), r.Ratio, timeTolerance)
	case "peak_nodes":
		return fmt.Sprintf("%s/%s: peak nodes %.0f -> %.0f (%.2fx, tolerance %.2fx)",
			r.Ckt, r.Method, r.Prev, r.Cur, r.Ratio, nodesTolerance)
	default:
		return fmt.Sprintf("%s/%s: run no longer completes within budget", r.Ckt, r.Method)
	}
}

// CompareRecords diffs cur against prev circuit by circuit, method by
// method, and returns every regression beyond tolerance. Circuits present
// in only one record are skipped (the suite changed; nothing comparable).
// Wall time is only compared when both runs completed — a budget-bound run
// reports its budget, not its speed — and completed -> not-completed is
// itself flagged.
func CompareRecords(prev, cur *HistoryRecord) []Regression {
	prevRows := make(map[string]Table1Row, len(prev.Rows))
	for _, r := range prev.Rows {
		prevRows[r.Ckt] = r
	}
	var regs []Regression
	for _, curRow := range cur.Rows {
		prevRow, ok := prevRows[curRow.Ckt]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name string
			p, c MethodResult
		}{
			{"bfs", prevRow.BFS, curRow.BFS},
			{"rua", prevRow.RUA, curRow.RUA},
			{"sp", prevRow.SP, curRow.SP},
		} {
			regs = append(regs, compareMethod(curRow.Ckt, m.name, m.p, m.c)...)
		}
	}
	return regs
}

func compareMethod(ckt, method string, p, c MethodResult) []Regression {
	var regs []Regression
	if p.Done && !c.Done {
		regs = append(regs, Regression{Ckt: ckt, Method: method, Metric: "completed", Prev: 1, Cur: 0, Ratio: 0})
	}
	if p.Done && c.Done && p.Time > 0 &&
		c.Time-p.Time > timeFloor && float64(c.Time) > timeTolerance*float64(p.Time) {
		regs = append(regs, Regression{
			Ckt: ckt, Method: method, Metric: "time",
			Prev: float64(p.Time), Cur: float64(c.Time),
			Ratio: float64(c.Time) / float64(p.Time),
		})
	}
	if p.PeakNodes > 0 && c.PeakNodes-p.PeakNodes > peakNodesFloor &&
		float64(c.PeakNodes) > nodesTolerance*float64(p.PeakNodes) {
		regs = append(regs, Regression{
			Ckt: ckt, Method: method, Metric: "peak_nodes",
			Prev: float64(p.PeakNodes), Cur: float64(c.PeakNodes),
			Ratio: float64(c.PeakNodes) / float64(p.PeakNodes),
		})
	}
	return regs
}

// WriteComparison renders a bench-cmp report: the records compared, each
// regression (if any), and a per-circuit one-line trajectory so improvements
// are visible too. Returns the number of regressions.
func WriteComparison(w io.Writer, prev, cur *HistoryRecord) int {
	regs := CompareRecords(prev, cur)
	fmt.Fprintf(w, "bench-cmp: %s (%s, workers=%d) vs %s (%s, workers=%d)\n",
		prev.When, prev.Suite, prev.normWorkers(), cur.When, cur.Suite, cur.normWorkers())
	prevRows := make(map[string]Table1Row, len(prev.Rows))
	for _, r := range prev.Rows {
		prevRows[r.Ckt] = r
	}
	for _, c := range cur.Rows {
		p, ok := prevRows[c.Ckt]
		if !ok {
			fmt.Fprintf(w, "  %-10s (new circuit, no baseline)\n", c.Ckt)
			continue
		}
		fmt.Fprintf(w, "  %-10s bfs %v->%v  rua %v->%v  sp %v->%v  peak %d->%d\n",
			c.Ckt,
			p.BFS.Time.Round(time.Millisecond), c.BFS.Time.Round(time.Millisecond),
			p.RUA.Time.Round(time.Millisecond), c.RUA.Time.Round(time.Millisecond),
			p.SP.Time.Round(time.Millisecond), c.SP.Time.Round(time.Millisecond),
			maxPeak(p), maxPeak(c))
	}
	if len(regs) == 0 {
		fmt.Fprintln(w, "no regressions beyond tolerance")
		return 0
	}
	for _, r := range regs {
		fmt.Fprintln(w, "REGRESSION", r.String())
	}
	return len(regs)
}

func maxPeak(r Table1Row) int {
	peak := r.BFS.PeakNodes
	if r.RUA.PeakNodes > peak {
		peak = r.RUA.PeakNodes
	}
	if r.SP.PeakNodes > peak {
		peak = r.SP.PeakNodes
	}
	return peak
}
