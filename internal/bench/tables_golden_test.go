package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bddkit/internal/model/gauntlet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTable1CombinationalGolden pins the -json shape of a latch-free
// Table 1 row: the row must be emitted (not dropped) with "iterations": 0
// in every method, exact distinguishing-input counts in the states
// columns, and stable keys. Wall-clock fields are normalized; everything
// else in the row is deterministic.
func TestTable1CombinationalGolden(t *testing.T) {
	cfg := Table1Config{Circuits: []Table1Circuit{{
		Name:         "equiv-adder8f",
		Netlist:      gauntlet.MiterNetlist(8, true),
		RUAThreshold: 0, RUAQuality: 1.0,
		SPThreshold: 20,
		Budget:      30 * time.Second,
	}}}
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("combinational circuit produced %d rows, want 1", len(rows))
	}
	for i := range rows {
		for _, mr := range []*MethodResult{&rows[i].BFS, &rows[i].RUA, &rows[i].SP} {
			mr.Time = 0
			mr.PeakNodes = 0
		}
	}
	var buf bytes.Buffer
	if err := WriteTable1JSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"iterations": 0`)) {
		t.Fatalf("serialized row lacks an explicit zero iterations field:\n%s", buf.Bytes())
	}
	golden := filepath.Join("testdata", "table1_combinational.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("golden mismatch (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
