package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/count"
	"bddkit/internal/model/gauntlet"
	"bddkit/internal/obs"
)

// ---------------------------------------------------------------------------
// Gauntlet report: per-family exact counts and approximation loss.
// ---------------------------------------------------------------------------

// GauntletRow is one generator family instance scored end to end: the
// exact solution count (as a decimal string — queens10 already busts
// float64 exactness budgets on bigger boards, and the hamilton encoding
// runs over 144 variables), and how much of that solution mass the two
// Table 1 subset operators retain at the configured threshold. MassRUA
// and MassSP are exact ratios computed from big.Int counts, not the
// float64 estimates the quality ledger carries.
type GauntletRow struct {
	Name  string `json:"name"`
	Vars  int    `json:"vars"`
	Nodes int    `json:"nodes"`
	Count string `json:"count"`

	BuildTime time.Duration `json:"build_ns"`
	CountTime time.Duration `json:"count_ns"`

	RUANodes int     `json:"rua_nodes"`
	MassRUA  float64 `json:"mass_rua"`
	SPNodes  int     `json:"sp_nodes"`
	MassSP   float64 `json:"mass_sp"`

	// Quality-ledger delta over the two subset calls (zero when the
	// ledger is disarmed).
	QualityOps    int64   `json:"quality_ops,omitempty"`
	QualityAborts int64   `json:"quality_aborts,omitempty"`
	MassMean      float64 `json:"mass_retained_mean,omitempty"`
	MassMin       float64 `json:"mass_retained_min,omitempty"`
}

// GauntletConfig sizes the per-family report run.
type GauntletConfig struct {
	Instances []gauntlet.Params

	// Threshold caps the approximated DAG size; 0 derives a per-instance
	// threshold of half the function's node count (so every instance
	// actually loses something and the mass columns are informative).
	Threshold int

	// Quality is the RUA quality factor (Table 2 uses 1.0).
	Quality float64

	// Observe follows each instance's manager, as in Table1Config.
	Observe func(*bdd.Manager)
}

// DefaultGauntletConfig runs every small instance at derived thresholds.
func DefaultGauntletConfig() GauntletConfig {
	return GauntletConfig{Instances: gauntlet.SmallInstances(), Quality: 1.0}
}

// RunGauntlet builds each instance on a fresh manager, counts it exactly,
// applies RUA and SP at the configured threshold, and reports the exact
// solution mass each approximation retains (plus the quality-ledger delta
// when armed — the per-family view of the PR-8 loss ledger).
func RunGauntlet(cfg GauntletConfig) ([]GauntletRow, error) {
	var rows []GauntletRow
	for _, p := range cfg.Instances {
		start := time.Now()
		m, f, err := gauntlet.New(p)
		if err != nil {
			return nil, err
		}
		if cfg.Observe != nil {
			cfg.Observe(m)
		}
		row := GauntletRow{
			Name:      p.Name(),
			Vars:      p.Vars(),
			Nodes:     m.DagSize(f),
			BuildTime: time.Since(start),
		}

		start = time.Now()
		total, err := count.Minterms(m, f, p.Vars())
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.Name(), err)
		}
		row.CountTime = time.Since(start)
		row.Count = total.String()

		th := cfg.Threshold
		if th == 0 {
			th = row.Nodes / 2
		}
		before := obs.L.Snapshot()
		rua := approx.RemapUnderApprox(m, f, th, cfg.Quality)
		sp := approx.ShortPaths(m, f, th)
		if ops, aborts, mean, min := qualityDelta(before, obs.L.Snapshot()); ops > 0 {
			row.QualityOps, row.QualityAborts, row.MassMean, row.MassMin = ops, aborts, mean, min
		}
		row.RUANodes = m.DagSize(rua)
		row.SPNodes = m.DagSize(sp)
		if row.MassRUA, err = massRatio(m, rua, p.Vars(), total); err != nil {
			return nil, fmt.Errorf("%s: %v", p.Name(), err)
		}
		if row.MassSP, err = massRatio(m, sp, p.Vars(), total); err != nil {
			return nil, fmt.Errorf("%s: %v", p.Name(), err)
		}
		m.Deref(rua)
		m.Deref(sp)
		m.Deref(f)
		rows = append(rows, row)
	}
	return rows, nil
}

// massRatio returns ‖sub‖/total exactly (1 when the function was empty to
// begin with: an under-approximation of nothing loses nothing).
func massRatio(m *bdd.Manager, sub bdd.Ref, nVars int, total *big.Int) (float64, error) {
	if total.Sign() == 0 {
		return 1, nil
	}
	c, err := count.Minterms(m, sub, nVars)
	if err != nil {
		return 0, err
	}
	r, _ := new(big.Float).Quo(new(big.Float).SetInt(c), new(big.Float).SetInt(total)).Float64()
	return r, nil
}

// WriteGauntletJSON writes the report in the BENCH_*.json house format.
func WriteGauntletJSON(w io.Writer, rows []GauntletRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Table string        `json:"table"`
		Rows  []GauntletRow `json:"rows"`
	}{Table: "gauntlet", Rows: rows})
}

// PrintGauntlet renders the report as a text table.
func PrintGauntlet(w io.Writer, rows []GauntletRow) {
	fmt.Fprintf(w, "%-22s %6s %8s %14s %9s %9s %9s %9s\n",
		"instance", "vars", "nodes", "count", "ruaN", "ruaMass", "spN", "spMass")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %6d %8d %14s %9d %9.4f %9d %9.4f\n",
			r.Name, r.Vars, r.Nodes, r.Count, r.RUANodes, r.MassRUA, r.SPNodes, r.MassSP)
	}
}
