// Package cliutil holds the flag-validation helpers shared by the cmd
// binaries. Every command accepts some mix of -workers, -cache-bits, and
// budget/threshold values; validating them in one place means a typo like
// "-workers -3" or "-cache-bits 99" fails fast with the same message
// everywhere instead of silently misconfiguring the engine (fuzzing of the
// gauntlet Validate found exactly this class of bug).
package cliutil

import (
	"fmt"
	"time"
)

// MaxCacheBits caps -cache-bits and -cache-max-bits: a 1<<30-entry
// computed table is already tens of gigabytes, so anything larger is a
// typo, not a tuning choice.
const MaxCacheBits = 30

// Workers validates a -workers flag: 0 means GOMAXPROCS, positive is a
// worker count, negative is nonsense.
func Workers(n int) error {
	if n < 0 {
		return fmt.Errorf("-workers %d is negative (0 = GOMAXPROCS, 1 = serial)", n)
	}
	return nil
}

// CacheBits validates a computed-table size exponent (0 = default).
func CacheBits(name string, b uint) error {
	if b > MaxCacheBits {
		return fmt.Errorf("-%s %d exceeds %d (table size is 1<<bits entries)", name, b, MaxCacheBits)
	}
	return nil
}

// NonNegative validates a count or threshold where 0 means "off".
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s %d is negative (0 disables it)", name, v)
	}
	return nil
}

// Positive validates a value that must be at least 1 (sizes, widths).
func Positive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("-%s %d must be positive", name, v)
	}
	return nil
}

// NonNegativeDuration validates a budget/interval where 0 means
// "unbounded" or "default".
func NonNegativeDuration(name string, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-%s %v is negative (0 = unbounded)", name, d)
	}
	return nil
}

// PositiveDuration validates an interval that must actually elapse.
func PositiveDuration(name string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-%s %v must be positive", name, d)
	}
	return nil
}

// Fraction validates a probability-like value in [0, 1].
func Fraction(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("-%s %v is outside [0, 1]", name, v)
	}
	return nil
}

// Check returns the first non-nil error, so a command validates its whole
// flag profile in one expression.
func Check(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
