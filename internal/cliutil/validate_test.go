package cliutil

import (
	"strings"
	"testing"
	"time"
)

// TestCommandFlagProfiles mirrors each command's validation expression
// one row per binary, so the audit of "which cmd validates what" lives in
// a test the next flag addition has to keep honest.
func TestCommandFlagProfiles(t *testing.T) {
	type flags struct {
		workers                        int
		cacheBits, cacheMaxBits        uint
		threshold, pimgLimit, pimgTh   int
		samples, frames, topK, cluster int
		bias                           float64
		budget, interval               time.Duration
	}
	good := flags{workers: 1, samples: 10, bias: 0.5, budget: time.Minute,
		interval: time.Second, topK: 5, cluster: 2500}

	profile := map[string]func(f flags) error{
		"bddlab": func(f flags) error {
			return Check(Workers(f.workers), CacheBits("cache-bits", f.cacheBits),
				CacheBits("cache-max-bits", f.cacheMaxBits), NonNegative("threshold", f.threshold))
		},
		"bddcount": func(f flags) error {
			return Check(Workers(f.workers), NonNegative("samples", f.samples), Fraction("bias", f.bias))
		},
		"bddtop": func(f flags) error {
			return Check(PositiveDuration("interval", f.interval),
				NonNegative("frames", f.frames), NonNegative("topk", f.topK))
		},
		"equiv": func(f flags) error { return Workers(f.workers) },
		"mc": func(f flags) error {
			return Check(Workers(f.workers), NonNegativeDuration("budget", f.budget))
		},
		"reach": func(f flags) error {
			return Check(Workers(f.workers), NonNegative("threshold", f.threshold),
				NonNegative("pimg-limit", f.pimgLimit), NonNegative("pimg-threshold", f.pimgTh),
				NonNegativeDuration("budget", f.budget), Positive("cluster", f.cluster))
		},
		"tables": func(f flags) error {
			return Check(Workers(f.workers), NonNegativeDuration("budget", f.budget))
		},
		"bddserve": func(f flags) error {
			return Check(Workers(f.workers), CacheBits("cache-bits", f.cacheBits),
				Positive("quota", f.cluster), NonNegativeDuration("deadline", f.budget))
		},
	}

	cases := []struct {
		name   string
		cmds   []string // profiles the mutation must fail under
		mutate func(*flags)
		want   string
	}{
		{"negative workers",
			[]string{"bddlab", "bddcount", "equiv", "mc", "reach", "tables", "bddserve"},
			func(f *flags) { f.workers = -3 }, "-workers -3 is negative"},
		{"oversized cache bits",
			[]string{"bddlab", "bddserve"},
			func(f *flags) { f.cacheBits = 99 }, "-cache-bits 99 exceeds"},
		{"oversized cache max bits",
			[]string{"bddlab"},
			func(f *flags) { f.cacheMaxBits = 31 }, "-cache-max-bits 31 exceeds"},
		{"negative threshold",
			[]string{"bddlab", "reach"},
			func(f *flags) { f.threshold = -1 }, "-threshold -1 is negative"},
		{"negative budget",
			[]string{"mc", "reach", "tables"},
			func(f *flags) { f.budget = -time.Second }, "is negative"},
		{"negative samples",
			[]string{"bddcount"},
			func(f *flags) { f.samples = -5 }, "-samples -5 is negative"},
		{"bias above one",
			[]string{"bddcount"},
			func(f *flags) { f.bias = 1.5 }, "outside [0, 1]"},
		{"zero interval",
			[]string{"bddtop"},
			func(f *flags) { f.interval = 0 }, "must be positive"},
		{"negative pimg limit",
			[]string{"reach"},
			func(f *flags) { f.pimgLimit = -2 }, "-pimg-limit -2 is negative"},
		{"non-positive cluster",
			[]string{"reach", "bddserve"},
			func(f *flags) { f.cluster = 0 }, "must be positive"},
	}

	// Sane defaults pass everywhere.
	for cmd, validate := range profile {
		if err := validate(good); err != nil {
			t.Errorf("%s rejected sane flags: %v", cmd, err)
		}
	}
	for _, tc := range cases {
		for _, cmd := range tc.cmds {
			validate, ok := profile[cmd]
			if !ok {
				t.Fatalf("%s: unknown command %q", tc.name, cmd)
			}
			f := good
			tc.mutate(&f)
			err := validate(f)
			if err == nil {
				t.Errorf("%s: %s accepted bad flags", tc.name, cmd)
				continue
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: %s: got %q, want substring %q", tc.name, cmd, err, tc.want)
			}
		}
	}
}

// TestCheckShortCircuits: Check returns the first failure in order.
func TestCheckShortCircuits(t *testing.T) {
	if err := Check(nil, Workers(-1), Positive("x", 0)); err == nil ||
		!strings.Contains(err.Error(), "-workers") {
		t.Fatalf("Check returned %v, want the first failure (-workers)", err)
	}
	if err := Check(nil, nil); err != nil {
		t.Fatalf("Check of nils returned %v", err)
	}
}
