package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// buildCounter returns an en-gated k-bit counter with a terminal-count
// output.
func buildCounter(k int) *Netlist {
	b := NewBuilder("counter")
	en := b.Input("en")
	q := b.LatchBus("q", k, 0)
	inc, _ := b.Incrementer(q)
	next := b.MuxBus(en, inc, q)
	b.SetNextBus(q, next)
	tc := b.EqConst(q, uint64(1<<uint(k)-1))
	b.Output("tc", tc)
	return b.MustBuild()
}

func TestCounterSimulation(t *testing.T) {
	const k = 4
	nl := buildCounter(k)
	sim, err := NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Count 2^k steps with enable high; tc must pulse at value 2^k-1.
	for step := 0; step < 1<<k; step++ {
		want := step == 1<<k-1
		out := sim.Step([]bool{true})
		if out[0] != want {
			t.Fatalf("step %d: tc = %v, want %v", step, out[0], want)
		}
	}
	// Back at zero.
	for _, bit := range sim.State() {
		if bit {
			t.Fatal("counter did not wrap to zero")
		}
	}
	// With enable low the state freezes.
	before := sim.State()
	sim.Step([]bool{false})
	after := sim.State()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("counter moved with enable low")
		}
	}
}

func TestCompileMatchesSimulator(t *testing.T) {
	nl := buildCounter(5)
	c, err := Compile(nl, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release()
	sim, _ := NewSimulator(nl)
	rng := rand.New(rand.NewSource(42))
	state := make([]bool, len(nl.Latches))
	for iter := 0; iter < 200; iter++ {
		for i := range state {
			state[i] = rng.Intn(2) == 1
		}
		in := []bool{rng.Intn(2) == 1}
		sim.SetState(state)
		wantOut := sim.Step(in)
		wantNext := sim.State()
		gotOut := c.EvalOutputs(state, in)
		gotNext := c.EvalNext(state, in)
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("output %d mismatch", i)
			}
		}
		for i := range wantNext {
			if gotNext[i] != wantNext[i] {
				t.Fatalf("next-state %d mismatch", i)
			}
		}
	}
	if err := c.M.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestAdderMultiplier checks the arithmetic helpers against integers.
func TestAdderMultiplier(t *testing.T) {
	const n = 5
	b := NewBuilder("arith")
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	sum, cout := b.Adder(a, bb, b.Const(false))
	b.OutputBus("s", sum)
	b.Output("cout", cout)
	prod := b.Multiplier(a, bb)
	b.OutputBus("p", prod)
	diff, _ := b.Subtractor(a, bb)
	b.OutputBus("d", diff)
	lt := b.Less(a, bb)
	b.Output("lt", lt)
	nl := b.MustBuild()
	sim, err := NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	toBits := func(x, w int) []bool {
		out := make([]bool, w)
		for i := range out {
			out[i] = x>>uint(i)&1 == 1
		}
		return out
	}
	fromBits := func(bits []bool) int {
		v := 0
		for i, b := range bits {
			if b {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	for x := 0; x < 1<<n; x += 3 {
		for y := 0; y < 1<<n; y += 5 {
			in := append(toBits(x, n), toBits(y, n)...)
			out := sim.Step(in)
			s := fromBits(out[:n])
			carry := out[n]
			p := fromBits(out[n+1 : n+1+2*n])
			d := fromBits(out[n+1+2*n : n+1+3*n])
			less := out[n+1+3*n]
			if got := s + boolToInt(carry)<<n; got != x+y {
				t.Fatalf("adder: %d+%d = %d", x, y, got)
			}
			if p != x*y {
				t.Fatalf("multiplier: %d*%d = %d", x, y, p)
			}
			if d != (x-y+1<<n)%(1<<n) {
				t.Fatalf("subtractor: %d-%d = %d", x, y, d)
			}
			if less != (x < y) {
				t.Fatalf("less: %d<%d = %v", x, y, less)
			}
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestMuxN(t *testing.T) {
	b := NewBuilder("muxn")
	sel := b.InputBus("s", 2)
	buses := make([][]Sig, 4)
	for i := range buses {
		buses[i] = b.ConstBus(uint64(i), 2)
	}
	out := b.MuxN(sel, buses)
	b.OutputBus("y", out)
	nl := b.MustBuild()
	sim, err := NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		out := sim.Step([]bool{s&1 == 1, s&2 == 2})
		got := boolToInt(out[0]) | boolToInt(out[1])<<1
		if got != s {
			t.Fatalf("MuxN(%d) = %d", s, got)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
.model counter2
.inputs en
.latch q0 n0 0
.latch q1 n1 1
t0 = XOR(q0, en)
c0 = AND(q0, en)
t1 = XOR(q1, c0)
n0 = BUF(t0)
n1 = BUF(t1)
y = AND(q0, q1)
.outputs y
.end
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "counter2" || len(nl.Latches) != 2 || len(nl.Inputs) != 1 {
		t.Fatalf("parsed structure wrong: %+v", nl)
	}
	if !nl.Latches[1].Init {
		t.Fatal("latch init lost")
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	// Same behavior: simulate both for a few cycles.
	s1, _ := NewSimulator(nl)
	s2, _ := NewSimulator(nl2)
	for i := 0; i < 10; i++ {
		en := i%3 != 0
		o1 := s1.Step([]bool{en})
		o2 := s2.Step([]bool{en})
		if o1[0] != o2[0] {
			t.Fatalf("round-trip changed behavior at step %d", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"undefined fanin":  ".model m\na = AND(x, y)\n.end",
		"bad latch":        ".model m\n.latch q 0\n.end",
		"unknown op":       ".model m\n.inputs a\nb = FROB(a)\n.end",
		"missing next":     ".model m\n.latch q nx 0\n.end",
		"undefined output": ".model m\n.inputs a\n.outputs zz\n.end",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	b := NewBuilder("cyc")
	a := b.Input("a")
	// Manually wire a cycle: g1 = AND(a, g2), g2 = BUF(g1).
	g1 := b.add(Node{Op: OpAnd, Name: "g1", In: []Sig{a, 0}})
	g2 := b.add(Node{Op: OpBuf, Name: "g2", In: []Sig{g1}})
	b.nl.Nodes[g1].In[1] = g2
	b.Output("y", g2)
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestCompileOutputsOverInputsOnly(t *testing.T) {
	// Pure combinational circuit: no latches, outputs over input vars.
	b := NewBuilder("comb")
	a := b.InputBus("a", 3)
	x := b.Xor(a[0], a[1], a[2])
	b.Output("par", x)
	nl := b.MustBuild()
	c, err := Compile(nl, CompileOptions{SkipNextVars: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release()
	if c.M.NumVars() != 3 {
		t.Fatalf("expected 3 vars, got %d", c.M.NumVars())
	}
	for x := 0; x < 8; x++ {
		state := []bool{}
		in := []bool{x&1 == 1, x&2 == 2, x&4 == 4}
		got := c.EvalOutputs(state, in)[0]
		want := (x&1 ^ x>>1&1 ^ x>>2&1) == 1
		if got != want {
			t.Fatalf("parity(%d) = %v", x, got)
		}
	}
}
