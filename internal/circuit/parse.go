package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Text netlist format, a BLIF-flavored line format small enough to write by
// hand:
//
//	.model counter2
//	.inputs en
//	.latch q0 n0 0
//	.latch q1 n1 0
//	t0 = XOR(q0, en)
//	c0 = AND(q0, en)
//	t1 = XOR(q1, c0)
//	n0 = BUF(t0)
//	n1 = BUF(t1)
//	y  = AND(q0, q1)
//	.outputs y
//	.end
//
// A `.latch Q NEXT INIT` line declares a state bit whose next value is the
// signal named NEXT (which may be defined later in the file). Gate lines
// are `name = OP(a, b, ...)`; CONST0/CONST1 take no arguments.

// Parse reads a netlist in the text format.
func Parse(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	b := NewBuilder("")
	type pendingLatch struct {
		q    Sig
		next string
	}
	var pend []pendingLatch
	type pendingOut struct{ name string }
	var outs []pendingOut
	lineNo := 0
	ended := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fmt.Errorf("line %d: content after .end", lineNo)
		}
		switch {
		case strings.HasPrefix(line, ".model"):
			b.nl.Name = strings.TrimSpace(strings.TrimPrefix(line, ".model"))
		case strings.HasPrefix(line, ".inputs"):
			for _, name := range strings.Fields(line)[1:] {
				// The builder panics on duplicate names (a programming
				// error for generated models); file input is untrusted
				// and must get an error instead.
				if _, dup := b.nl.byName[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate signal %q", lineNo, name)
				}
				b.Input(name)
			}
		case strings.HasPrefix(line, ".latch"):
			f := strings.Fields(line)
			if len(f) != 4 {
				return nil, fmt.Errorf("line %d: .latch needs Q NEXT INIT", lineNo)
			}
			init := false
			switch f[3] {
			case "0":
			case "1":
				init = true
			default:
				return nil, fmt.Errorf("line %d: bad latch init %q", lineNo, f[3])
			}
			if _, dup := b.nl.byName[f[1]]; dup {
				return nil, fmt.Errorf("line %d: duplicate signal %q", lineNo, f[1])
			}
			q := b.Latch(f[1], init)
			pend = append(pend, pendingLatch{q: q, next: f[2]})
		case strings.HasPrefix(line, ".outputs"):
			for _, name := range strings.Fields(line)[1:] {
				outs = append(outs, pendingOut{name})
			}
		case line == ".end":
			ended = true
		case strings.Contains(line, "="):
			if err := parseGate(b, line, lineNo); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("line %d: cannot parse %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, p := range pend {
		s, ok := b.nl.byName[p.next]
		if !ok {
			return nil, fmt.Errorf("latch next-state signal %q undefined", p.next)
		}
		b.SetNext(p.q, s)
	}
	for _, o := range outs {
		s, ok := b.nl.byName[o.name]
		if !ok {
			return nil, fmt.Errorf("output signal %q undefined", o.name)
		}
		b.Output(o.name, s)
	}
	return b.Build()
}

func parseGate(b *Builder, line string, lineNo int) error {
	eq := strings.Index(line, "=")
	name := strings.TrimSpace(line[:eq])
	if name != "" {
		if _, dup := b.nl.byName[name]; dup {
			return fmt.Errorf("line %d: duplicate signal %q", lineNo, name)
		}
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.Index(rhs, "(")
	var opName string
	var args []string
	if open < 0 {
		opName = rhs // e.g. CONST0
	} else {
		opName = strings.TrimSpace(rhs[:open])
		close := strings.LastIndex(rhs, ")")
		if close < open {
			return fmt.Errorf("line %d: unbalanced parentheses", lineNo)
		}
		inner := strings.TrimSpace(rhs[open+1 : close])
		if inner != "" {
			for _, a := range strings.Split(inner, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
	}
	op, ok := opByName[strings.ToUpper(opName)]
	if !ok {
		return fmt.Errorf("line %d: unknown op %q", lineNo, opName)
	}
	in := make([]Sig, len(args))
	for i, a := range args {
		s, ok := b.nl.byName[a]
		if !ok {
			return fmt.Errorf("line %d: undefined signal %q", lineNo, a)
		}
		in[i] = s
	}
	switch op {
	case OpInput, OpLatch:
		return fmt.Errorf("line %d: %v cannot appear as a gate", lineNo, op)
	}
	b.add(Node{Op: op, Name: name, In: in})
	return nil
}

// Write emits the netlist in the text format; Parse(Write(nl)) round-trips
// modulo anonymous-signal naming. Declared output names that alias an
// internally named signal (a Builder's OutputBus does this) are preserved
// by emitting a BUF gate under the alias, since the text format's
// .outputs line can only reference signal names.
func Write(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nl.Name)
	if len(nl.Inputs) > 0 {
		fmt.Fprint(bw, ".inputs")
		for _, s := range nl.Inputs {
			fmt.Fprintf(bw, " %s", nl.NameOf(s))
		}
		fmt.Fprintln(bw)
	}
	for _, l := range nl.Latches {
		init := 0
		if l.Init {
			init = 1
		}
		fmt.Fprintf(bw, ".latch %s %s %d\n", nl.NameOf(l.Q), nl.NameOf(l.Next), init)
	}
	// Emit gates in topological order so the file reads top-down.
	order, err := nl.TopoOrder()
	if err != nil {
		return err
	}
	for _, s := range order {
		nd := &nl.Nodes[s]
		switch nd.Op {
		case OpInput, OpLatch:
			continue
		case OpConst0, OpConst1:
			fmt.Fprintf(bw, "%s = %v\n", nl.NameOf(s), nd.Op)
		default:
			names := make([]string, len(nd.In))
			for i, in := range nd.In {
				names[i] = nl.NameOf(in)
			}
			fmt.Fprintf(bw, "%s = %v(%s)\n", nl.NameOf(s), nd.Op, strings.Join(names, ", "))
		}
	}
	if len(nl.Outputs) > 0 {
		outNames := make([]string, len(nl.Outputs))
		for i, s := range nl.Outputs {
			name := nl.NameOf(s)
			if i < len(nl.OutName) && nl.OutName[i] != "" && nl.OutName[i] != name {
				if _, taken := nl.byName[nl.OutName[i]]; !taken {
					fmt.Fprintf(bw, "%s = BUF(%s)\n", nl.OutName[i], name)
					name = nl.OutName[i]
				}
			}
			outNames[i] = name
		}
		fmt.Fprint(bw, ".outputs")
		for _, name := range outNames {
			fmt.Fprintf(bw, " %s", name)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}
