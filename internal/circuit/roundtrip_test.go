package circuit

import (
	"bytes"
	"testing"
)

// TestWriteParseBehavior: writing and reparsing an arbitrary generated
// netlist preserves its sequential behavior (checked by co-simulation).
func TestWriteParseBehavior(t *testing.T) {
	// A register file exercise: two registers, swap/load/hold control.
	b := NewBuilder("regswap")
	op := b.InputBus("op", 2)
	din := b.InputBus("din", 4)
	ra := b.LatchBus("ra", 4, 5)
	rb := b.LatchBus("rb", 4, 10)
	load := b.EqConst(op, 1)
	swap := b.EqConst(op, 2)
	raNext := b.MuxBus(load, din, b.MuxBus(swap, rb, ra))
	rbNext := b.MuxBus(swap, ra, rb)
	b.SetNextBus(ra, raNext)
	b.SetNextBus(rb, rbNext)
	b.OutputBus("ya", ra)
	b.Output("eq", b.Eq(ra, rb))
	nl := b.MustBuild()

	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, buf.String())
	}
	if len(nl2.Latches) != len(nl.Latches) || len(nl2.Inputs) != len(nl.Inputs) {
		t.Fatal("structure lost in round trip")
	}
	s1, err := NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSimulator(nl2)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic input pattern covering all ops.
	for i := 0; i < 64; i++ {
		in := make([]bool, 6)
		in[0] = i&1 == 1
		in[1] = i&2 == 2
		for j := 0; j < 4; j++ {
			in[2+j] = (i>>uint(j+2))&1 == 1
		}
		o1 := s1.Step(in)
		o2 := s2.Step(in)
		for k := range o1 {
			if o1[k] != o2[k] {
				t.Fatalf("behavior diverged at step %d output %d", i, k)
			}
		}
	}
}

// TestSimulatorSetStateRoundTrip: State/SetState are inverses.
func TestSimulatorSetStateRoundTrip(t *testing.T) {
	b := NewBuilder("tiny")
	in := b.Input("in")
	q := b.LatchBus("q", 3, 0)
	next := b.MuxBus(in, b.ConstBus(7, 3), q)
	b.SetNextBus(q, next)
	b.Output("o", q[0])
	nl := b.MustBuild()
	sim, err := NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	sim.SetState(want)
	got := sim.State()
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("SetState/State mismatch")
		}
	}
	// State() must be a copy, not an alias.
	got[0] = !got[0]
	if sim.State()[0] == got[0] {
		t.Fatal("State returned an aliased slice")
	}
}

// TestBuilderPanics: misuse is rejected loudly.
func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("duplicate name", func() {
		b := NewBuilder("x")
		b.Input("a")
		b.Input("a")
	})
	expectPanic("SetNext on non-latch", func() {
		b := NewBuilder("x")
		a := b.Input("a")
		b.SetNext(a, a)
	})
	expectPanic("adder width mismatch", func() {
		b := NewBuilder("x")
		b.Adder(b.InputBus("a", 2), b.InputBus("c", 3), b.Const(false))
	})
	expectPanic("MuxN bus count", func() {
		b := NewBuilder("x")
		sel := b.InputBus("s", 2)
		b.MuxN(sel, [][]Sig{b.InputBus("a", 1)})
	})
	expectPanic("unary And", func() {
		b := NewBuilder("x")
		b.And(b.Input("a"))
	})
}

// TestCompileReleasesCleanly: Release leaves only permanent nodes.
func TestCompileReleasesCleanly(t *testing.T) {
	nl := buildCounter(5)
	c, err := Compile(nl, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	c.M.GarbageCollect()
	if got := c.M.ReferencedNodeCount(); got != c.M.PermanentNodeCount()-1 {
		t.Fatalf("leak after Release: %d live internal nodes, want %d",
			got, c.M.PermanentNodeCount()-1)
	}
}

// TestWriteParsePreservesOutputNames: a builder netlist whose outputs are
// bus aliases (OutputBus names like p0..p3 over internal gate signals)
// keeps those names through Write/Parse. Regression test: Write used to
// emit the internal signal names on the .outputs line, so every consumer
// of a serialized netlist saw n-numbered outputs instead of the declared
// interface.
func TestWriteParsePreservesOutputNames(t *testing.T) {
	b := NewBuilder("aliased")
	a := b.InputBus("a", 2)
	c := b.InputBus("b", 2)
	var sum []Sig
	for i := range a {
		sum = append(sum, b.Xor(a[i], c[i]))
	}
	b.OutputBus("p", sum)
	nl := b.MustBuild()

	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, buf.String())
	}
	if len(nl2.OutName) != len(nl.OutName) {
		t.Fatalf("output count %d, want %d", len(nl2.OutName), len(nl.OutName))
	}
	for i, name := range nl.OutName {
		if nl2.OutName[i] != name {
			t.Errorf("output %d named %q after round trip, want %q\n%s",
				i, nl2.OutName[i], name, buf.String())
		}
	}
	// Idempotence: writing the reparsed netlist adds no second BUF layer.
	var buf2 bytes.Buffer
	if err := Write(&buf2, nl2); err != nil {
		t.Fatal(err)
	}
	if nl2.NumGates() != nl.NumGates()+len(nl.OutName) {
		t.Fatalf("gate count %d after round trip, want %d + %d aliases",
			nl2.NumGates(), nl.NumGates(), len(nl.OutName))
	}
	nl3, err := Parse(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if nl3.NumGates() != nl2.NumGates() {
		t.Fatalf("second round trip grew the netlist: %d -> %d gates",
			nl2.NumGates(), nl3.NumGates())
	}
}
