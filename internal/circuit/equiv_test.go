package circuit

import "testing"

// shiftAddMultiplier builds an n-bit multiplier as unrolled shift-and-add
// — a structurally different implementation of the array multiplier.
func shiftAddMultiplier(n int) *Netlist {
	b := NewBuilder("mult_sa")
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	zero := b.Const(false)
	acc := make([]Sig, 2*n)
	for i := range acc {
		acc[i] = zero
	}
	for i := 0; i < n; i++ {
		// acc += (b_i ? a << i : 0)
		addend := make([]Sig, 2*n)
		for k := range addend {
			addend[k] = zero
		}
		for j := 0; j < n; j++ {
			addend[i+j] = b.And(a[j], bb[i])
		}
		acc, _ = b.Adder(acc, addend, zero)
	}
	b.OutputBus("p", acc)
	return b.MustBuild()
}

func arrayMultiplier(n int) *Netlist {
	b := NewBuilder("mult_arr")
	a := b.InputBus("a", n)
	bb := b.InputBus("b", n)
	b.OutputBus("p", b.Multiplier(a, bb))
	return b.MustBuild()
}

func TestEquivalentMultipliers(t *testing.T) {
	ok, mm, err := Equivalent(arrayMultiplier(6), shiftAddMultiplier(6))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("equivalent multipliers reported different: %v", mm)
	}
}

func TestEquivalenceCounterexample(t *testing.T) {
	// A buggy adder: carry chain uses OR instead of XOR on the last bit.
	good := NewBuilder("good")
	a := good.InputBus("a", 4)
	b := good.InputBus("b", 4)
	s, _ := good.Adder(a, b, good.Const(false))
	good.OutputBus("s", s)
	g := good.MustBuild()

	bad := NewBuilder("good") // same interface names
	a2 := bad.InputBus("a", 4)
	b2 := bad.InputBus("b", 4)
	s2, _ := bad.Adder(a2, b2, bad.Const(false))
	s2[3] = bad.Or(a2[3], b2[3]) // inject the bug
	bad.OutputBus("s", s2)
	bg := bad.MustBuild()

	ok, mm, err := Equivalent(g, bg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("buggy adder reported equivalent")
	}
	if mm == nil || mm.Output != "s3" {
		t.Fatalf("unexpected mismatch report: %v", mm)
	}
	// Replay the counterexample on both simulators: outputs must differ.
	simG, _ := NewSimulator(g)
	simB, _ := NewSimulator(bg)
	in := make([]bool, 8)
	for i := 0; i < 4; i++ {
		in[i] = mm.Inputs[g.NameOf(g.Inputs[i])]
		in[4+i] = mm.Inputs[g.NameOf(g.Inputs[4+i])]
	}
	og := simG.Step(in)
	ob := simB.Step(in)
	if og[3] == ob[3] {
		t.Fatal("counterexample does not distinguish the circuits")
	}
}

func TestEquivalentErrors(t *testing.T) {
	// Mismatched inputs.
	x := NewBuilder("x")
	x.Output("y", x.Not(x.Input("a")))
	nx := x.MustBuild()
	y := NewBuilder("x")
	y.Output("y", y.Not(y.Input("different")))
	ny := y.MustBuild()
	if _, _, err := Equivalent(nx, ny); err == nil {
		t.Fatal("mismatched input sets not rejected")
	}
	// Latches rejected.
	z := NewBuilder("z")
	q := z.Latch("q", false)
	z.SetNext(q, q)
	z.Output("y", q)
	nz := z.MustBuild()
	if _, _, err := Equivalent(nz, nz); err == nil {
		t.Fatal("sequential circuit not rejected")
	}
}
