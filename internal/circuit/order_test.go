package circuit

import (
	"math/rand"
	"testing"
)

// TestStaticOrderCorrectness: compilation under the static order computes
// the same functions as the default order.
func TestStaticOrderCorrectness(t *testing.T) {
	nl := buildCounter(5)
	def, err := Compile(nl, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer def.Release()
	sta, err := Compile(nl, CompileOptions{StaticOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sta.Release()
	rng := rand.New(rand.NewSource(31))
	state := make([]bool, len(nl.Latches))
	for iter := 0; iter < 100; iter++ {
		for i := range state {
			state[i] = rng.Intn(2) == 1
		}
		in := []bool{rng.Intn(2) == 1}
		a := def.EvalNext(state, in)
		b := sta.EvalNext(state, in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("static order changed next-state %d", i)
			}
		}
	}
}

// TestStaticOrderShrinksPairedAnds: the classic demonstration — for
// f = a0·b0 + a1·b1 + ... the bus-by-bus declaration order is exponential
// while the DFS order interleaves the pairs and is linear.
func TestStaticOrderShrinksPairedAnds(t *testing.T) {
	const k = 10
	b := NewBuilder("pairs")
	a := b.InputBus("a", k)
	bb := b.InputBus("b", k)
	terms := make([]Sig, k)
	for i := 0; i < k; i++ {
		terms[i] = b.And(a[i], bb[i])
	}
	b.Output("f", b.Or(terms...))
	nl := b.MustBuild()

	def, err := Compile(nl, CompileOptions{SkipNextVars: true})
	if err != nil {
		t.Fatal(err)
	}
	sta, err := Compile(nl, CompileOptions{SkipNextVars: true, StaticOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	defSize := def.M.DagSize(def.Outputs[0])
	staSize := sta.M.DagSize(sta.Outputs[0])
	// Interleaved: 2k internal nodes + constant. Bus-by-bus: ~3·2^k.
	if staSize > 3*k {
		t.Fatalf("static order not linear: %d nodes", staSize)
	}
	if defSize < 1<<k {
		t.Fatalf("default order unexpectedly small: %d nodes", defSize)
	}
	t.Logf("paired-ands size: default %d, static %d", defSize, staSize)
	def.Release()
	sta.Release()
}

// TestStaticSourceOrderCoversAll: every latch and input appears exactly
// once, including dangling ones.
func TestStaticSourceOrderCoversAll(t *testing.T) {
	b := NewBuilder("dangling")
	used := b.Input("used")
	_ = b.Input("unused")
	q := b.Latch("q", false)
	b.SetNext(q, b.And(q, used))
	b.Output("y", q)
	nl := b.MustBuild()
	order := StaticSourceOrder(nl)
	if len(order) != 3 {
		t.Fatalf("order has %d sources, want 3", len(order))
	}
	seen := map[Sig]bool{}
	for _, s := range order {
		if seen[s] {
			t.Fatal("duplicate source in order")
		}
		seen[s] = true
	}
}
