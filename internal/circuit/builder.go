package circuit

import "fmt"

// Builder constructs netlists programmatically. It deduplicates named
// signals and offers word-level helpers (buses, adders, multiplexers,
// registers) used by the synthetic benchmark models.
type Builder struct {
	nl   *Netlist
	anon int
}

// NewBuilder starts an empty netlist with the given model name.
func NewBuilder(name string) *Builder {
	return &Builder{nl: &Netlist{Name: name, byName: make(map[string]Sig)}}
}

func (b *Builder) add(n Node) Sig {
	s := Sig(len(b.nl.Nodes))
	if n.Name != "" {
		if _, dup := b.nl.byName[n.Name]; dup {
			panic(fmt.Sprintf("circuit: duplicate signal name %q", n.Name))
		}
		b.nl.byName[n.Name] = s
	}
	b.nl.Nodes = append(b.nl.Nodes, n)
	return s
}

// Input declares a primary input.
func (b *Builder) Input(name string) Sig {
	s := b.add(Node{Op: OpInput, Name: name})
	b.nl.Inputs = append(b.nl.Inputs, s)
	return s
}

// InputBus declares width primary inputs name0..name{width-1} (LSB first).
func (b *Builder) InputBus(name string, width int) []Sig {
	out := make([]Sig, width)
	for i := range out {
		out[i] = b.Input(fmt.Sprintf("%s%d", name, i))
	}
	return out
}

// Latch declares a state element with the given reset value; its
// next-state input is connected later with SetNext.
func (b *Builder) Latch(name string, init bool) Sig {
	s := b.add(Node{Op: OpLatch, Name: name})
	b.nl.Latches = append(b.nl.Latches, Latch{Q: s, Next: -1, Init: init})
	return s
}

// LatchBus declares a register of the given width with reset value init
// (LSB first).
func (b *Builder) LatchBus(name string, width int, init uint64) []Sig {
	out := make([]Sig, width)
	for i := range out {
		out[i] = b.Latch(fmt.Sprintf("%s%d", name, i), init>>uint(i)&1 == 1)
	}
	return out
}

// SetNext wires the next-state input of latch q.
func (b *Builder) SetNext(q, next Sig) {
	for i := range b.nl.Latches {
		if b.nl.Latches[i].Q == q {
			b.nl.Latches[i].Next = next
			return
		}
	}
	panic("circuit: SetNext on a non-latch signal")
}

// SetNextBus wires a whole register.
func (b *Builder) SetNextBus(q, next []Sig) {
	if len(q) != len(next) {
		panic("circuit: SetNextBus width mismatch")
	}
	for i := range q {
		b.SetNext(q[i], next[i])
	}
}

// Output marks a signal as a primary output under the given name.
func (b *Builder) Output(name string, s Sig) {
	b.nl.Outputs = append(b.nl.Outputs, s)
	b.nl.OutName = append(b.nl.OutName, name)
}

// OutputBus marks a bus of outputs name0.. (LSB first).
func (b *Builder) OutputBus(name string, sigs []Sig) {
	for i, s := range sigs {
		b.Output(fmt.Sprintf("%s%d", name, i), s)
	}
}

// Const returns the constant signal.
func (b *Builder) Const(v bool) Sig {
	if v {
		return b.add(Node{Op: OpConst1})
	}
	return b.add(Node{Op: OpConst0})
}

// ConstBus returns width constant signals encoding value (LSB first).
func (b *Builder) ConstBus(value uint64, width int) []Sig {
	out := make([]Sig, width)
	for i := range out {
		out[i] = b.Const(value>>uint(i)&1 == 1)
	}
	return out
}

// gate creates an anonymous logic gate.
func (b *Builder) gate(op Op, in ...Sig) Sig {
	b.anon++
	return b.add(Node{Op: op, In: in})
}

// Not returns ¬a.
func (b *Builder) Not(a Sig) Sig { return b.gate(OpNot, a) }

// And returns the conjunction of its arguments (≥2).
func (b *Builder) And(in ...Sig) Sig { return b.nary(OpAnd, in) }

// Or returns the disjunction of its arguments (≥2).
func (b *Builder) Or(in ...Sig) Sig { return b.nary(OpOr, in) }

// Xor returns the parity of its arguments (≥2).
func (b *Builder) Xor(in ...Sig) Sig { return b.nary(OpXor, in) }

// Nand, Nor, Xnor mirror their positive forms.
func (b *Builder) Nand(in ...Sig) Sig { return b.nary(OpNand, in) }
func (b *Builder) Nor(in ...Sig) Sig  { return b.nary(OpNor, in) }
func (b *Builder) Xnor(in ...Sig) Sig { return b.nary(OpXnor, in) }

func (b *Builder) nary(op Op, in []Sig) Sig {
	if len(in) < 2 {
		panic(fmt.Sprintf("circuit: %v needs at least 2 operands", op))
	}
	return b.gate(op, in...)
}

// Mux returns sel ? a : b.
func (b *Builder) Mux(sel, a, bb Sig) Sig { return b.gate(OpMux, sel, a, bb) }

// MuxBus selects between two buses.
func (b *Builder) MuxBus(sel Sig, a, bb []Sig) []Sig {
	if len(a) != len(bb) {
		panic("circuit: MuxBus width mismatch")
	}
	out := make([]Sig, len(a))
	for i := range out {
		out[i] = b.Mux(sel, a[i], bb[i])
	}
	return out
}

// MuxN selects among 2^len(sel) buses with a binary-encoded selector
// (sel LSB first); the bus list must have exactly that length.
func (b *Builder) MuxN(sel []Sig, buses [][]Sig) []Sig {
	if len(buses) != 1<<uint(len(sel)) {
		panic("circuit: MuxN needs 2^|sel| buses")
	}
	if len(sel) == 0 {
		return buses[0]
	}
	hiHalf := b.MuxN(sel[:len(sel)-1], buses[len(buses)/2:])
	loHalf := b.MuxN(sel[:len(sel)-1], buses[:len(buses)/2])
	return b.MuxBus(sel[len(sel)-1], hiHalf, loHalf)
}

// Adder returns the sum bus (same width as the operands) and the carry out:
// a ripple-carry adder with optional carry in.
func (b *Builder) Adder(a, bb []Sig, cin Sig) (sum []Sig, cout Sig) {
	if len(a) != len(bb) {
		panic("circuit: Adder width mismatch")
	}
	c := cin
	sum = make([]Sig, len(a))
	for i := range a {
		sum[i] = b.Xor(a[i], bb[i], c)
		c = b.Or(b.And(a[i], bb[i]), b.And(c, b.Xor(a[i], bb[i])))
	}
	return sum, c
}

// Incrementer returns a+1 (same width) and the carry out.
func (b *Builder) Incrementer(a []Sig) (sum []Sig, cout Sig) {
	c := b.Const(true)
	sum = make([]Sig, len(a))
	for i := range a {
		sum[i] = b.Xor(a[i], c)
		c = b.And(a[i], c)
	}
	return sum, c
}

// Decrementer returns a-1 (same width).
func (b *Builder) Decrementer(a []Sig) []Sig {
	// a - 1 = a + 0xFF..F
	ones := make([]Sig, len(a))
	one := b.Const(true)
	for i := range ones {
		ones[i] = one
	}
	sum, _ := b.Adder(a, ones, b.Const(false))
	return sum
}

// Subtractor returns a-b (two's complement) and the borrow-free carry.
func (b *Builder) Subtractor(a, bb []Sig) (diff []Sig, cout Sig) {
	nb := make([]Sig, len(bb))
	for i := range bb {
		nb[i] = b.Not(bb[i])
	}
	return b.Adder(a, nb, b.Const(true))
}

// Multiplier returns the 2n-bit product of two n-bit buses (array
// multiplier; its middle product bits are classic hard functions for
// BDDs, which the Table 2–4 corpus exploits).
func (b *Builder) Multiplier(a, bb []Sig) []Sig {
	n := len(a)
	if len(bb) != n {
		panic("circuit: Multiplier width mismatch")
	}
	zero := b.Const(false)
	acc := make([]Sig, 2*n)
	for i := range acc {
		acc[i] = zero
	}
	for i := 0; i < n; i++ {
		// Partial product a·b_i shifted by i.
		pp := make([]Sig, 2*n)
		for k := range pp {
			pp[k] = zero
		}
		for j := 0; j < n; j++ {
			pp[i+j] = b.And(a[j], bb[i])
		}
		acc, _ = b.Adder(acc, pp, zero)
	}
	return acc
}

// EqConst returns a signal that is true when the bus equals value.
func (b *Builder) EqConst(a []Sig, value uint64) Sig {
	terms := make([]Sig, len(a))
	for i := range a {
		if value>>uint(i)&1 == 1 {
			terms[i] = a[i]
		} else {
			terms[i] = b.Not(a[i])
		}
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return b.And(terms...)
}

// Eq returns a signal true when the two buses are equal.
func (b *Builder) Eq(x, y []Sig) Sig {
	if len(x) != len(y) {
		panic("circuit: Eq width mismatch")
	}
	terms := make([]Sig, len(x))
	for i := range x {
		terms[i] = b.Xnor(x[i], y[i])
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return b.And(terms...)
}

// Less returns a signal true when bus x < bus y (unsigned).
func (b *Builder) Less(x, y []Sig) Sig {
	if len(x) != len(y) {
		panic("circuit: Less width mismatch")
	}
	// x < y iff x - y borrows: with two's-complement subtraction the
	// carry out is 0 exactly when x < y.
	_, cout := b.Subtractor(x, y)
	return b.Not(cout)
}

// IsZero returns a signal true when every bit of the bus is 0.
func (b *Builder) IsZero(a []Sig) Sig {
	if len(a) == 1 {
		return b.Not(a[0])
	}
	return b.Nor(a...)
}

// Build validates and returns the netlist. Latches with unconnected
// next-state inputs are an error.
func (b *Builder) Build() (*Netlist, error) {
	for i, l := range b.nl.Latches {
		if l.Next < 0 {
			return nil, fmt.Errorf("circuit %s: latch %d (%s) has no next-state",
				b.nl.Name, i, b.nl.NameOf(l.Q))
		}
	}
	if err := b.nl.Validate(); err != nil {
		return nil, err
	}
	return b.nl, nil
}

// MustBuild is Build for static model constructors that cannot fail at
// runtime once correct.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}
