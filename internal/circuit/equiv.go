package circuit

import (
	"fmt"

	"bddkit/internal/bdd"
)

// Combinational equivalence checking: two netlists are equivalent when
// every same-named output computes the same function of the same-named
// inputs. Both circuits are compiled into one BDD manager with shared
// input variables, so equivalence per output reduces to reference
// equality (canonicity) and a counterexample falls out of the XOR.

// Mismatch is an equivalence counterexample.
type Mismatch struct {
	Output string          // name of the differing output
	Inputs map[string]bool // input assignment exposing the difference
}

func (mm *Mismatch) String() string {
	return fmt.Sprintf("output %s differs (inputs %v)", mm.Output, mm.Inputs)
}

// Equivalent checks combinational equivalence of two netlists. Inputs are
// matched by name (both circuits must have the same input set); outputs
// are matched by name, and both circuits must expose the same output
// names. Latches are not supported (sequential equivalence is a
// reachability problem — see internal/reach).
func Equivalent(a, b *Netlist) (bool, *Mismatch, error) {
	if len(a.Latches) > 0 || len(b.Latches) > 0 {
		return false, nil, fmt.Errorf("circuit: Equivalent handles combinational netlists only")
	}
	if err := a.Validate(); err != nil {
		return false, nil, err
	}
	if err := b.Validate(); err != nil {
		return false, nil, err
	}
	// Shared input variables by name.
	m := bdd.New(0)
	varOf := map[string]int{}
	for _, nl := range []*Netlist{a, b} {
		for _, s := range nl.Inputs {
			name := nl.NameOf(s)
			if _, ok := varOf[name]; !ok {
				v := m.AddVar()
				varOf[name] = m.Var(v)
			}
		}
	}
	if len(varOf) != len(a.Inputs) || len(varOf) != len(b.Inputs) {
		return false, nil, fmt.Errorf("circuit: input sets differ (%d vs %d names, %d total)",
			len(a.Inputs), len(b.Inputs), len(varOf))
	}
	outputsOf := func(nl *Netlist) (map[string]bdd.Ref, []bdd.Ref, error) {
		vals, err := EvalNetlistBDD(m, nl, func(sig Sig, _ Op) bdd.Ref {
			return m.IthVar(varOf[nl.NameOf(sig)])
		})
		if err != nil {
			return nil, nil, err
		}
		outs := make(map[string]bdd.Ref, len(nl.Outputs))
		for i, s := range nl.Outputs {
			outs[nl.OutName[i]] = m.Ref(vals[s])
		}
		return outs, vals, nil
	}
	release := func(outs map[string]bdd.Ref, vals []bdd.Ref) {
		for _, r := range outs {
			m.Deref(r)
		}
		for _, r := range vals {
			m.Deref(r)
		}
	}
	aOuts, aVals, err := outputsOf(a)
	if err != nil {
		return false, nil, err
	}
	defer release(aOuts, aVals)
	bOuts, bVals, err := outputsOf(b)
	if err != nil {
		return false, nil, err
	}
	defer release(bOuts, bVals)
	if len(aOuts) != len(bOuts) {
		return false, nil, fmt.Errorf("circuit: output sets differ (%d vs %d)", len(aOuts), len(bOuts))
	}
	for name, fa := range aOuts {
		fb, ok := bOuts[name]
		if !ok {
			return false, nil, fmt.Errorf("circuit: output %q missing from %s", name, b.Name)
		}
		if fa == fb {
			continue // canonicity: identical references are equal functions
		}
		diff := m.Xor(fa, fb)
		assignment := m.PickOneMinterm(diff, m.NumVars())
		m.Deref(diff)
		inputs := make(map[string]bool, len(varOf))
		for in, v := range varOf {
			inputs[in] = assignment[v]
		}
		return false, &Mismatch{Output: name, Inputs: inputs}, nil
	}
	return true, nil, nil
}
