// Package circuit provides the gate-level substrate of the reproduction: a
// netlist representation with latches, a programmatic builder with
// word-level helpers (adders, multipliers, multiplexers, registers), a
// small text format, a cycle-accurate boolean simulator, and compilation of
// netlists into BDDs (output functions and next-state functions) for the
// reachability and approximation experiments.
package circuit

import (
	"fmt"
	"sort"
)

// Op is a gate operation.
type Op uint8

// Gate operations. Input, Const0/Const1 and Latch outputs are sources;
// the others combine fan-ins.
const (
	OpInput Op = iota
	OpConst0
	OpConst1
	OpLatch // the Q output of a latch; its next-state is a separate signal
	OpBuf
	OpNot
	OpAnd
	OpOr
	OpNand
	OpNor
	OpXor
	OpXnor
	OpMux // Mux(sel, a, b) = sel ? a : b
)

var opNames = map[Op]string{
	OpInput: "INPUT", OpConst0: "ZERO", OpConst1: "ONE", OpLatch: "LATCH",
	OpBuf: "BUF", OpNot: "NOT", OpAnd: "AND", OpOr: "OR", OpNand: "NAND",
	OpNor: "NOR", OpXor: "XOR", OpXnor: "XNOR", OpMux: "MUX",
}

func (o Op) String() string { return opNames[o] }

// opByName inverts opNames for the parser.
var opByName = func() map[string]Op {
	m := make(map[string]Op)
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// Sig identifies a signal (the output of one gate) within a netlist.
type Sig int32

// Node is one gate of the netlist.
type Node struct {
	Op   Op
	Name string // optional; auto-generated when empty
	In   []Sig
}

// Latch is a state element: Q is its output signal (an OpLatch node), Next
// the signal feeding its next-state input, and Init its reset value.
type Latch struct {
	Q    Sig
	Next Sig
	Init bool
}

// Netlist is a combinational network plus latches. Build instances with a
// Builder; direct mutation is possible but Validate should pass afterwards.
type Netlist struct {
	Name    string
	Nodes   []Node
	Inputs  []Sig
	Latches []Latch
	Outputs []Sig
	OutName []string // names aligned with Outputs

	byName map[string]Sig
}

// NumGates returns the number of logic gates (excluding sources).
func (n *Netlist) NumGates() int {
	c := 0
	for _, nd := range n.Nodes {
		switch nd.Op {
		case OpInput, OpConst0, OpConst1, OpLatch:
		default:
			c++
		}
	}
	return c
}

// SignalByName returns the signal with the given name.
func (n *Netlist) SignalByName(name string) (Sig, bool) {
	s, ok := n.byName[name]
	return s, ok
}

// NameOf returns the name of a signal, generating one if it was anonymous.
func (n *Netlist) NameOf(s Sig) string {
	if nm := n.Nodes[s].Name; nm != "" {
		return nm
	}
	return fmt.Sprintf("n%d", s)
}

// Validate checks structural sanity: fan-in arities, latch wiring, and
// acyclicity of the combinational part.
func (n *Netlist) Validate() error {
	for i, nd := range n.Nodes {
		switch nd.Op {
		case OpInput, OpConst0, OpConst1, OpLatch:
			if len(nd.In) != 0 {
				return fmt.Errorf("%s: source node %d has fan-ins", n.Name, i)
			}
		case OpBuf, OpNot:
			if len(nd.In) != 1 {
				return fmt.Errorf("%s: node %d: %v needs 1 fan-in", n.Name, i, nd.Op)
			}
		case OpMux:
			if len(nd.In) != 3 {
				return fmt.Errorf("%s: node %d: MUX needs 3 fan-ins", n.Name, i)
			}
		default:
			if len(nd.In) < 2 {
				return fmt.Errorf("%s: node %d: %v needs ≥2 fan-ins", n.Name, i, nd.Op)
			}
		}
		for _, in := range nd.In {
			if in < 0 || int(in) >= len(n.Nodes) {
				return fmt.Errorf("%s: node %d: dangling fan-in %d", n.Name, i, in)
			}
		}
	}
	for i, l := range n.Latches {
		if n.Nodes[l.Q].Op != OpLatch {
			return fmt.Errorf("%s: latch %d: Q is not a latch node", n.Name, i)
		}
		if l.Next < 0 || int(l.Next) >= len(n.Nodes) {
			return fmt.Errorf("%s: latch %d: dangling next", n.Name, i)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the node indices in a topological order of the
// combinational dependencies (latch outputs are sources). It fails on
// combinational cycles.
func (n *Netlist) TopoOrder() ([]Sig, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(n.Nodes))
	order := make([]Sig, 0, len(n.Nodes))
	var visit func(s Sig) error
	visit = func(s Sig) error {
		switch color[s] {
		case gray:
			return fmt.Errorf("%s: combinational cycle through %s", n.Name, n.NameOf(s))
		case black:
			return nil
		}
		color[s] = gray
		for _, in := range n.Nodes[s].In {
			if err := visit(in); err != nil {
				return err
			}
		}
		color[s] = black
		order = append(order, s)
		return nil
	}
	for s := range n.Nodes {
		if err := visit(Sig(s)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// evalOp applies a gate operation to boolean fan-in values.
func evalOp(op Op, in []bool) bool {
	switch op {
	case OpConst0:
		return false
	case OpConst1:
		return true
	case OpBuf:
		return in[0]
	case OpNot:
		return !in[0]
	case OpAnd, OpNand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if op == OpNand {
			return !v
		}
		return v
	case OpOr, OpNor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if op == OpNor {
			return !v
		}
		return v
	case OpXor, OpXnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if op == OpXnor {
			return !v
		}
		return v
	case OpMux:
		if in[0] {
			return in[1]
		}
		return in[2]
	}
	panic(fmt.Sprintf("circuit: evalOp on source %v", op))
}

// Simulator evaluates the netlist cycle by cycle; it is the reference
// semantics the BDD compilation is tested against.
type Simulator struct {
	nl       *Netlist
	order    []Sig
	state    []bool      // per latch
	vals     []bool      // per node, current cycle
	inIdx    map[Sig]int // input signal -> position in nl.Inputs
	latchIdx map[Sig]int // latch Q signal -> latch index
}

// NewSimulator creates a simulator with all latches at their reset values.
func NewSimulator(nl *Netlist) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		nl:       nl,
		order:    order,
		state:    make([]bool, len(nl.Latches)),
		vals:     make([]bool, len(nl.Nodes)),
		inIdx:    make(map[Sig]int, len(nl.Inputs)),
		latchIdx: make(map[Sig]int, len(nl.Latches)),
	}
	for i, sig := range nl.Inputs {
		s.inIdx[sig] = i
	}
	for i, l := range nl.Latches {
		s.latchIdx[l.Q] = i
	}
	s.Reset()
	return s, nil
}

// Reset returns every latch to its initial value.
func (s *Simulator) Reset() {
	for i, l := range s.nl.Latches {
		s.state[i] = l.Init
	}
}

// State returns a copy of the current latch values.
func (s *Simulator) State() []bool {
	out := make([]bool, len(s.state))
	copy(out, s.state)
	return out
}

// SetState overrides the current latch values.
func (s *Simulator) SetState(v []bool) {
	copy(s.state, v)
}

// Step evaluates one clock cycle under the given primary-input values
// (aligned with nl.Inputs) and returns the output values (aligned with
// nl.Outputs). Latches update after the combinational evaluation.
func (s *Simulator) Step(inputs []bool) []bool {
	nl := s.nl
	for _, sig := range s.order {
		nd := &nl.Nodes[sig]
		switch nd.Op {
		case OpInput:
			s.vals[sig] = inputs[s.inIdx[sig]]
		case OpLatch:
			s.vals[sig] = s.state[s.latchIdx[sig]]
		default:
			fanin := make([]bool, len(nd.In))
			for i, in := range nd.In {
				fanin[i] = s.vals[in]
			}
			s.vals[sig] = evalOp(nd.Op, fanin)
		}
	}
	outs := make([]bool, len(nl.Outputs))
	for i, sig := range nl.Outputs {
		outs[i] = s.vals[sig]
	}
	for i, l := range nl.Latches {
		s.state[i] = s.vals[l.Next]
	}
	return outs
}

// SortedSignalNames returns all named signals in lexicographic order
// (testing and dump helper).
func (n *Netlist) SortedSignalNames() []string {
	names := make([]string, 0, len(n.byName))
	for nm := range n.byName {
		names = append(names, nm)
	}
	sort.Strings(names)
	return names
}
