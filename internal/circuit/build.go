package circuit

import (
	"fmt"

	"bddkit/internal/bdd"
)

// CompileOptions controls netlist-to-BDD compilation.
type CompileOptions struct {
	// AutoReorder arms dynamic sifting on the manager (the paper's
	// Table 1 experiments always run with dynamic reordering on).
	AutoReorder bool
	// ReorderThreshold is the initial live-node trigger for sifting.
	ReorderThreshold int
	// SkipNextVars omits the next-state variable block (useful when only
	// output functions are wanted, e.g. for the Table 2–4 corpus).
	SkipNextVars bool
	// StaticOrder allocates BDD variables in the order a depth-first
	// traversal from the outputs (and next-state functions) first meets
	// each input or latch — the classic netlist-driven static ordering
	// heuristic. It interleaves related sources (e.g. the operand bits
	// of a multiplier), often shrinking the compiled BDDs by orders of
	// magnitude compared to bus-by-bus declaration order.
	StaticOrder bool
	// BDDConfig, when non-nil, supplies the manager configuration
	// (computed-cache sizing, GC thresholds, ...) instead of the
	// defaults, letting command-line tools tune the memory subsystem.
	BDDConfig *bdd.Config
}

// Compiled holds the BDD image of a netlist: one variable per latch
// (current state), one per latch (next state, interleaved below the
// current-state variable), one per primary input, plus the output and
// next-state functions and the initial-state predicate.
type Compiled struct {
	M  *bdd.Manager
	Nl *Netlist

	StateVars []int // variable index of x_i, per latch
	NextVars  []int // variable index of y_i, per latch (nil with SkipNextVars)
	InputVars []int // variable index per primary input

	Outputs []bdd.Ref // output functions over (x, w), aligned with Nl.Outputs
	Next    []bdd.Ref // next-state functions δ_i(x, w), per latch
	Init    bdd.Ref   // initial state predicate over x
}

// Compile builds BDDs for every output and next-state function of the
// netlist. Variable order: (x_0, y_0, x_1, y_1, ..., w_0, w_1, ...) —
// current and next state interleaved, inputs after; a standard starting
// order for reachability work.
func Compile(nl *Netlist, opts CompileOptions) (*Compiled, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	var m *bdd.Manager
	if opts.BDDConfig != nil {
		m = bdd.NewWithConfig(0, *opts.BDDConfig)
	} else {
		m = bdd.New(0)
	}
	c := &Compiled{M: m, Nl: nl}
	c.StateVars = make([]int, len(nl.Latches))
	if !opts.SkipNextVars {
		c.NextVars = make([]int, len(nl.Latches))
	}
	c.InputVars = make([]int, len(nl.Inputs))
	latchIdx0 := make(map[Sig]int, len(nl.Latches))
	for i, l := range nl.Latches {
		latchIdx0[l.Q] = i
	}
	inputIdx0 := make(map[Sig]int, len(nl.Inputs))
	for i, s := range nl.Inputs {
		inputIdx0[s] = i
	}
	sources := defaultSourceOrder(nl)
	if opts.StaticOrder {
		sources = StaticSourceOrder(nl)
	}
	for _, sig := range sources {
		if i, ok := latchIdx0[sig]; ok {
			x := m.AddVar()
			c.StateVars[i] = m.Var(x)
			if !opts.SkipNextVars {
				y := m.AddVar()
				c.NextVars[i] = m.Var(y)
			}
			continue
		}
		w := m.AddVar()
		c.InputVars[inputIdx0[sig]] = m.Var(w)
	}
	if opts.AutoReorder {
		th := opts.ReorderThreshold
		if th <= 0 {
			th = 8192
		}
		m.EnableAutoReorder(th)
	}

	inIdx := make(map[Sig]int, len(nl.Inputs))
	for i, s := range nl.Inputs {
		inIdx[s] = i
	}
	latchIdx := make(map[Sig]int, len(nl.Latches))
	for i, l := range nl.Latches {
		latchIdx[l.Q] = i
	}
	vals, err := EvalNetlistBDD(m, nl, func(sig Sig, op Op) bdd.Ref {
		if op == OpInput {
			return m.IthVar(c.InputVars[inIdx[sig]])
		}
		return m.IthVar(c.StateVars[latchIdx[sig]])
	})
	if err != nil {
		return nil, err
	}

	for _, sig := range nl.Outputs {
		c.Outputs = append(c.Outputs, m.Ref(vals[sig]))
	}
	for _, l := range nl.Latches {
		c.Next = append(c.Next, m.Ref(vals[l.Next]))
	}
	// Initial state: the conjunction of latch literals at reset values.
	init := m.Ref(bdd.One)
	for i, l := range nl.Latches {
		lit := m.IthVar(c.StateVars[i])
		if !l.Init {
			lit = lit.Complement()
		}
		ni := m.And(init, lit)
		m.Deref(init)
		init = ni
	}
	c.Init = init

	for _, r := range vals {
		m.Deref(r)
	}
	return c, nil
}

// EvalNetlistBDD evaluates every gate of a netlist as a BDD over an
// arbitrary binding of the sources: srcRef must return the function for
// each OpInput/OpLatch signal (the returned Ref is not consumed). The
// result holds one owned Ref per node; the caller releases them. This is
// the building block shared by Compile and the equivalence checker.
func EvalNetlistBDD(m *bdd.Manager, nl *Netlist, srcRef func(Sig, Op) bdd.Ref) ([]bdd.Ref, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := make([]bdd.Ref, len(nl.Nodes))
	for i := range vals {
		vals[i] = bdd.Ref(^uint32(0)) // poison: catches eval-order bugs
	}
	for _, sig := range order {
		nd := &nl.Nodes[sig]
		var r bdd.Ref
		switch nd.Op {
		case OpInput, OpLatch:
			r = m.Ref(srcRef(sig, nd.Op))
		case OpConst0:
			r = m.Ref(bdd.Zero)
		case OpConst1:
			r = m.Ref(bdd.One)
		case OpBuf:
			r = m.Ref(vals[nd.In[0]])
		case OpNot:
			r = m.Not(vals[nd.In[0]])
		case OpMux:
			r = m.ITE(vals[nd.In[0]], vals[nd.In[1]], vals[nd.In[2]])
		case OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor:
			r = compileNary(m, nd.Op, nd.In, vals)
		default:
			for _, v := range vals {
				if v != bdd.Ref(^uint32(0)) {
					m.Deref(v)
				}
			}
			return nil, fmt.Errorf("circuit: cannot compile op %v", nd.Op)
		}
		vals[sig] = r
	}
	return vals, nil
}

// defaultSourceOrder lists latches then inputs in declaration order.
func defaultSourceOrder(nl *Netlist) []Sig {
	out := make([]Sig, 0, len(nl.Latches)+len(nl.Inputs))
	for _, l := range nl.Latches {
		out = append(out, l.Q)
	}
	out = append(out, nl.Inputs...)
	return out
}

// StaticSourceOrder returns the circuit's inputs and latch outputs in the
// order a depth-first traversal from the primary outputs (then the
// next-state functions) first encounters them. Sources never reached
// (dangling) are appended in declaration order.
func StaticSourceOrder(nl *Netlist) []Sig {
	isSource := make(map[Sig]bool, len(nl.Latches)+len(nl.Inputs))
	for _, l := range nl.Latches {
		isSource[l.Q] = true
	}
	for _, s := range nl.Inputs {
		isSource[s] = true
	}
	seen := make(map[Sig]bool, len(nl.Nodes))
	var order []Sig
	var visit func(s Sig)
	visit = func(s Sig) {
		if seen[s] {
			return
		}
		seen[s] = true
		if isSource[s] {
			order = append(order, s)
			return
		}
		for _, in := range nl.Nodes[s].In {
			visit(in)
		}
	}
	for _, s := range nl.Outputs {
		visit(s)
	}
	for _, l := range nl.Latches {
		visit(l.Next)
	}
	for _, s := range defaultSourceOrder(nl) {
		if !seen[s] {
			order = append(order, s)
		}
	}
	return order
}

// compileNary folds an n-ary gate over its fan-ins.
func compileNary(m *bdd.Manager, op Op, in []Sig, vals []bdd.Ref) bdd.Ref {
	var acc bdd.Ref
	switch op {
	case OpAnd, OpNand:
		acc = m.Ref(bdd.One)
	case OpOr, OpNor:
		acc = m.Ref(bdd.Zero)
	case OpXor, OpXnor:
		acc = m.Ref(bdd.Zero)
	}
	for _, s := range in {
		var next bdd.Ref
		switch op {
		case OpAnd, OpNand:
			next = m.And(acc, vals[s])
		case OpOr, OpNor:
			next = m.Or(acc, vals[s])
		case OpXor, OpXnor:
			next = m.Xor(acc, vals[s])
		}
		m.Deref(acc)
		acc = next
	}
	switch op {
	case OpNand, OpNor, OpXnor:
		return acc.Complement()
	}
	return acc
}

// LiveRoots returns every function the compilation keeps alive — outputs,
// next-state functions, the initial-state predicate, and the projection
// function of every variable. After a GarbageCollect has dropped the dead
// compile intermediates, the union of their DAGs is exactly the manager's
// live node set, which makes this the root set for whole-manager
// structural profiles (internal/prof).
func (c *Compiled) LiveRoots() []bdd.Ref {
	roots := make([]bdd.Ref, 0, len(c.Outputs)+len(c.Next)+1+c.M.NumVars())
	roots = append(roots, c.Outputs...)
	roots = append(roots, c.Next...)
	roots = append(roots, c.Init)
	for i := 0; i < c.M.NumVars(); i++ {
		roots = append(roots, c.M.IthVar(i))
	}
	return roots
}

// Release drops every reference the compilation holds; the manager remains
// usable for functions the caller retained separately.
func (c *Compiled) Release() {
	for _, r := range c.Outputs {
		c.M.Deref(r)
	}
	for _, r := range c.Next {
		c.M.Deref(r)
	}
	c.M.Deref(c.Init)
	c.Outputs, c.Next = nil, nil
}

// EvalOutputs evaluates the compiled output functions under explicit state
// and input values (testing helper cross-checking against the Simulator).
func (c *Compiled) EvalOutputs(state, inputs []bool) []bool {
	assignment := c.assignment(state, inputs)
	out := make([]bool, len(c.Outputs))
	for i, f := range c.Outputs {
		out[i] = c.M.Eval(f, assignment)
	}
	return out
}

// EvalNext evaluates the compiled next-state functions.
func (c *Compiled) EvalNext(state, inputs []bool) []bool {
	assignment := c.assignment(state, inputs)
	out := make([]bool, len(c.Next))
	for i, f := range c.Next {
		out[i] = c.M.Eval(f, assignment)
	}
	return out
}

func (c *Compiled) assignment(state, inputs []bool) []bool {
	a := make([]bool, c.M.NumVars())
	for i, v := range c.StateVars {
		a[v] = state[i]
	}
	for i, v := range c.InputVars {
		a[v] = inputs[i]
	}
	return a
}
