package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSONL schema validation for trace files, shared by the obs tests and the
// obscheck tool behind `make obs-smoke`.

// TraceSchemaVersion is the version stamped into every emitted event's "v"
// field. History:
//
//	v1 (unversioned; "v" absent) — the original span/event record.
//	v2 — adds the "v" field itself and the parallel-engine event
//	     vocabulary: "bdd.stw" (write-lease / stop-the-world epochs with
//	     cause, wait_ns, pause_ns, workers attrs), "bdd.stall" (watchdog
//	     reports with report, stuck_ns attrs), and "bdd.contention"
//	     (end-of-run per-subsystem wait summaries).
//	v3 — adds the quality-of-result vocabulary: "quality.op", the
//	     operation-ledger record every top-level approximation,
//	     decomposition, and reach iteration emits (kind, op, op_id,
//	     input/result DAG sizes, minterm mass before/after and retained,
//	     densities, threshold, budget limit/live/headroom, attributed
//	     dur/gc/stw cost, abort cause).
//
// Readers accept any version up to their own: v1 files (v absent / 0)
// remain valid, files from a future writer are rejected.
const TraceSchemaVersion = 3

// TraceSummary reports what a validated trace contains.
type TraceSummary struct {
	Lines   int            // total event lines
	Spans   int            // kind == "span"
	Events  int            // kind == "event"
	ByName  map[string]int // per-name emission counts
	Version int            // highest schema version seen (0 = legacy v1)
}

// ValidateJSONL reads a JSONL trace and verifies the schema of every line:
// valid JSON; ts parses as RFC3339Nano; kind is "span" or "event"; name is
// non-empty; ids are positive and unique; parents refer to already-seen
// ids (spans are emitted at End, so a parent precedes its children's End
// records only when it closed first — parents may therefore also appear
// later, and only self-parenting is rejected); spans carry a non-negative
// duration. It returns a summary or the first violation, tagged with its
// line number.
func ValidateJSONL(r io.Reader) (TraceSummary, error) {
	sum := TraceSummary{ByName: make(map[string]int)}
	seen := make(map[uint64]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		sum.Lines++
		line := sc.Bytes()
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return sum, fmt.Errorf("line %d: invalid JSON: %v", sum.Lines, err)
		}
		if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
			return sum, fmt.Errorf("line %d: bad ts %q: %v", sum.Lines, ev.TS, err)
		}
		switch ev.Kind {
		case "span":
			sum.Spans++
			if ev.DurNS < 0 {
				return sum, fmt.Errorf("line %d: span %q has negative dur_ns %d", sum.Lines, ev.Name, ev.DurNS)
			}
		case "event":
			sum.Events++
		default:
			return sum, fmt.Errorf("line %d: unknown kind %q", sum.Lines, ev.Kind)
		}
		if ev.Name == "" {
			return sum, fmt.Errorf("line %d: empty name", sum.Lines)
		}
		if ev.ID == 0 {
			return sum, fmt.Errorf("line %d: missing id", sum.Lines)
		}
		if seen[ev.ID] {
			return sum, fmt.Errorf("line %d: duplicate id %d", sum.Lines, ev.ID)
		}
		if ev.Parent == ev.ID {
			return sum, fmt.Errorf("line %d: event %d is its own parent", sum.Lines, ev.ID)
		}
		if ev.V > TraceSchemaVersion {
			return sum, fmt.Errorf("line %d: schema version %d is newer than this reader (max %d)",
				sum.Lines, ev.V, TraceSchemaVersion)
		}
		if ev.V > sum.Version {
			sum.Version = ev.V
		}
		if err := validateKnownEvent(&ev); err != nil {
			return sum, fmt.Errorf("line %d: %v", sum.Lines, err)
		}
		seen[ev.ID] = true
		sum.ByName[ev.Name]++
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	return sum, nil
}

// validateKnownEvent applies per-name attribute checks to the v2 parallel-
// engine and v3 quality vocabularies. Unknown names pass — traces may
// carry domain-specific events the validator has never heard of.
func validateKnownEvent(ev *Event) error {
	num := func(key string) (float64, bool) {
		switch v := ev.Attrs[key].(type) {
		case float64:
			return v, true
		case int64:
			return float64(v), true
		case int:
			return float64(v), true
		}
		return 0, false
	}
	str := func(key string) string {
		s, _ := ev.Attrs[key].(string)
		return s
	}
	switch ev.Name {
	case "bdd.stw":
		if str("cause") == "" {
			return fmt.Errorf("bdd.stw event %d has no cause attr", ev.ID)
		}
		if v, ok := num("pause_ns"); !ok || v < 0 {
			return fmt.Errorf("bdd.stw event %d has bad pause_ns %v", ev.ID, ev.Attrs["pause_ns"])
		}
		if v, ok := num("wait_ns"); ok && v < 0 {
			return fmt.Errorf("bdd.stw event %d has negative wait_ns", ev.ID)
		}
	case "bdd.stall":
		if str("report") == "" {
			return fmt.Errorf("bdd.stall event %d has no report attr", ev.ID)
		}
		if v, ok := num("stuck_ns"); !ok || v < 0 {
			return fmt.Errorf("bdd.stall event %d has bad stuck_ns %v", ev.ID, ev.Attrs["stuck_ns"])
		}
	case "bdd.contention":
		if str("subsystem") == "" {
			return fmt.Errorf("bdd.contention event %d has no subsystem attr", ev.ID)
		}
		if v, ok := num("count"); !ok || v < 0 {
			return fmt.Errorf("bdd.contention event %d has bad count %v", ev.ID, ev.Attrs["count"])
		}
	case "quality.op":
		if str("op_kind") == "" || str("op") == "" {
			return fmt.Errorf("quality.op event %d lacks op_kind/op attrs", ev.ID)
		}
		for _, key := range []string{"size_in", "size_out", "dur_ns"} {
			if v, ok := num(key); !ok || v < 0 {
				return fmt.Errorf("quality.op event %d has bad %s %v", ev.ID, key, ev.Attrs[key])
			}
		}
		// Mass retained is a ratio: 1 = lossless, < 1 under-approximation,
		// > 1 over-approximation. Negative mass is always a bug.
		if v, ok := num("mass_retained"); !ok || v < 0 {
			return fmt.Errorf("quality.op event %d has bad mass_retained %v", ev.ID, ev.Attrs["mass_retained"])
		}
	}
	return nil
}
