package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSONL schema validation for trace files, shared by the obs tests and the
// obscheck tool behind `make obs-smoke`.

// TraceSummary reports what a validated trace contains.
type TraceSummary struct {
	Lines  int            // total event lines
	Spans  int            // kind == "span"
	Events int            // kind == "event"
	ByName map[string]int // per-name emission counts
}

// ValidateJSONL reads a JSONL trace and verifies the schema of every line:
// valid JSON; ts parses as RFC3339Nano; kind is "span" or "event"; name is
// non-empty; ids are positive and unique; parents refer to already-seen
// ids (spans are emitted at End, so a parent precedes its children's End
// records only when it closed first — parents may therefore also appear
// later, and only self-parenting is rejected); spans carry a non-negative
// duration. It returns a summary or the first violation, tagged with its
// line number.
func ValidateJSONL(r io.Reader) (TraceSummary, error) {
	sum := TraceSummary{ByName: make(map[string]int)}
	seen := make(map[uint64]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		sum.Lines++
		line := sc.Bytes()
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return sum, fmt.Errorf("line %d: invalid JSON: %v", sum.Lines, err)
		}
		if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
			return sum, fmt.Errorf("line %d: bad ts %q: %v", sum.Lines, ev.TS, err)
		}
		switch ev.Kind {
		case "span":
			sum.Spans++
			if ev.DurNS < 0 {
				return sum, fmt.Errorf("line %d: span %q has negative dur_ns %d", sum.Lines, ev.Name, ev.DurNS)
			}
		case "event":
			sum.Events++
		default:
			return sum, fmt.Errorf("line %d: unknown kind %q", sum.Lines, ev.Kind)
		}
		if ev.Name == "" {
			return sum, fmt.Errorf("line %d: empty name", sum.Lines)
		}
		if ev.ID == 0 {
			return sum, fmt.Errorf("line %d: missing id", sum.Lines)
		}
		if seen[ev.ID] {
			return sum, fmt.Errorf("line %d: duplicate id %d", sum.Lines, ev.ID)
		}
		if ev.Parent == ev.ID {
			return sum, fmt.Errorf("line %d: event %d is its own parent", sum.Lines, ev.ID)
		}
		seen[ev.ID] = true
		sum.ByName[ev.Name]++
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	return sum, nil
}
