package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops_total") != c {
		t.Fatal("re-registering a counter must return the same object")
	}
	g := r.Gauge("live")
	g.Set(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(10)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}

	h := r.Histogram("pause_ns")
	for _, v := range []int64{1, 2, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Max != 1<<20 {
		t.Fatalf("max = %d, want %d", s.Max, 1<<20)
	}
	if s.Sum != 1+2+3+100+1000+1<<20 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.P50 <= 0 || s.P99 < s.P50 {
		t.Fatalf("quantiles out of order: p50=%d p99=%d", s.P50, s.P99)
	}
}

func TestHistogramObserveExtremes(t *testing.T) {
	var h Histogram
	// Non-positive observations clamp to bucket 0 (no out-of-range index,
	// no negative mass in the sum); MaxInt64 saturates in the top bucket.
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.MinInt64)
	h.Observe(1)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 1 {
		t.Fatalf("sum = %d, want 1 (negatives must clamp to 0)", s.Sum)
	}
	if s.P50 != 0 {
		t.Fatalf("p50 = %d, want 0 (three of four observations are zero)", s.P50)
	}

	var big Histogram
	big.Observe(math.MaxInt64)
	bs := big.Snapshot()
	if bs.Max != math.MaxInt64 {
		t.Fatalf("max = %d, want MaxInt64", bs.Max)
	}
	if bs.P50 <= 0 || bs.P99 < bs.P95 || bs.P95 < bs.P90 {
		t.Fatalf("quantiles broken for MaxInt64: p50=%d p90=%d p95=%d p99=%d",
			bs.P50, bs.P90, bs.P95, bs.P99)
	}
}

func TestHistogramSnapshotExportsP95(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.P95 < s.P50 || s.P95 > s.Max*2 {
		t.Fatalf("p95 = %d out of range (p50=%d max=%d)", s.P95, s.P50, s.Max)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"p95\"") {
		t.Fatalf("snapshot JSON missing p95: %s", b)
	}
	var buf strings.Builder
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "lat_p95 ") {
		t.Fatalf("WriteText missing p95 line:\n%s", buf.String())
	}
}

func TestRegistrySnapshotSanitizesGaugeFuncs(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("bad_rate", func() float64 { return math.NaN() })
	r.GaugeFunc("good", func() float64 { return 0.5 })
	snap := r.Snapshot()
	if v := snap["bad_rate"].(float64); v != 0 {
		t.Fatalf("NaN gauge func leaked %v into the snapshot", v)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "good 0.5") {
		t.Fatalf("WriteText output missing gauge:\n%s", b.String())
	}
}

func TestTracerSpansNestAndValidate(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	nodes := 10
	tr.LiveNodes = func() int { return nodes }

	root := tr.Begin("phase.outer", Str("what", "test"))
	nodes = 15
	child := tr.Begin("phase.inner", Int("k", 3))
	tr.Event("decision", Int("size", 42))
	nodes = 30
	child.End(Int("extra", 1))
	root.End()

	sum, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v\n%s", err, buf.String())
	}
	if sum.Spans != 2 || sum.Events != 1 {
		t.Fatalf("got %d spans, %d events; want 2, 1", sum.Spans, sum.Events)
	}

	var evs []Event
	dec := json.NewDecoder(&buf)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	// Emission order: event, inner span end, outer span end.
	if evs[0].Name != "decision" || evs[1].Name != "phase.inner" || evs[2].Name != "phase.outer" {
		t.Fatalf("unexpected order: %s, %s, %s", evs[0].Name, evs[1].Name, evs[2].Name)
	}
	inner, outer := evs[1], evs[2]
	if inner.Parent != outer.ID {
		t.Fatalf("inner.parent = %d, want outer id %d", inner.Parent, outer.ID)
	}
	if evs[0].Parent != inner.ID {
		t.Fatalf("event parent = %d, want inner span id %d", evs[0].Parent, inner.ID)
	}
	if outer.Parent != 0 {
		t.Fatalf("outer span has parent %d, want 0", outer.Parent)
	}
	if inner.Nodes0 != 15 || inner.Nodes1 != 30 || inner.Delta != 15 {
		t.Fatalf("node attribution = %d/%d/%d, want 15/30/15", inner.Nodes0, inner.Nodes1, inner.Delta)
	}
	if got := inner.Attrs["k"].(float64); got != 3 {
		t.Fatalf("attr k = %v", inner.Attrs["k"])
	}
	if got := inner.Attrs["extra"].(float64); got != 1 {
		t.Fatalf("End attrs not merged: %v", inner.Attrs)
	}
}

func TestDisabledTracerIsSafeAndSilent(t *testing.T) {
	var tr *Tracer // nil tracer: the degenerate case instrumented code may hold
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("x")
	sp.End() // must not panic
	tr = &Tracer{}
	if tr.Enabled() {
		t.Fatal("zero tracer reports enabled")
	}
	tr.Event("y", Int("a", 1))
	tr.Begin("z").End()
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record([]byte(fmt.Sprintf("{\"n\":%d}\n", i)))
	}
	if fr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", fr.Len())
	}
	if fr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", fr.Total())
	}
	var buf bytes.Buffer
	fr.Dump(&buf, "test")
	out := buf.String()
	for i := 6; i < 10; i++ {
		if !strings.Contains(out, fmt.Sprintf("{\"n\":%d}", i)) {
			t.Fatalf("dump missing event %d:\n%s", i, out)
		}
	}
	if strings.Contains(out, "{\"n\":5}") {
		t.Fatalf("dump kept an overwritten event:\n%s", out)
	}
	if !strings.Contains(out, "test (4 of 10 events retained)") {
		t.Fatalf("dump header wrong:\n%s", out)
	}
}

func TestTracerFlightOnlyMode(t *testing.T) {
	fr := NewFlightRecorder(8)
	tr := &Tracer{}
	tr.SetFlight(fr)
	if !tr.Enabled() {
		t.Fatal("flight-only tracer must be enabled")
	}
	tr.Begin("a").End()
	tr.Event("b")
	if fr.Len() != 2 {
		t.Fatalf("flight recorded %d events, want 2", fr.Len())
	}
	var buf bytes.Buffer
	fr.WriteTo(&buf)
	if _, err := ValidateJSONL(&buf); err != nil {
		t.Fatalf("flight contents do not validate: %v", err)
	}
}

func TestTracerConcurrentEmissions(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.Event("worker", Int("i", i), Int("j", j))
			}
		}(i)
	}
	wg.Wait()
	sum, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent trace invalid: %v", err)
	}
	if sum.Events != 400 {
		t.Fatalf("got %d events, want 400", sum.Events)
	}
}

func TestSessionDisabledByDefault(t *testing.T) {
	var cfg Config
	s, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Tracer.Enabled() {
		t.Fatal("session with no flags armed the tracer")
	}
	if s.Flight != nil {
		t.Fatal("session with no flags armed the flight recorder")
	}
}

func TestSessionTraceAndEndpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Trace: dir + "/trace.jsonl", Addr: "127.0.0.1:0"}
	s, err := cfg.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.Registry.Counter("test_counter").Add(3)
	s.Tracer.Begin("unit.phase", Int("n", 1)).End()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + s.BoundAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "test_counter 3") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d, want 200", code)
	}
	if _, body := get("/flight"); body != "" {
		if _, err := ValidateJSONL(strings.NewReader(body)); err != nil {
			t.Fatalf("/flight not valid JSONL: %v", err)
		}
	}
	s.Close()

	data, err := os.ReadFile(cfg.Trace)
	if err != nil {
		t.Fatalf("read trace file: %v", err)
	}
	sum, err := ValidateJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if sum.ByName["unit.phase"] != 1 {
		t.Fatalf("trace missing unit.phase span: %+v", sum.ByName)
	}
}
