package obs

import (
	"fmt"
	"io"
	"sync"
)

// FlightRecorder is a fixed-size ring buffer of recent trace-event lines.
// It runs whenever any observability flag is set, even with the JSONL sink
// off, so that a crash always has the last moments of the run on record.
// Dumps are triggered by panics in the cmd mains, by DebugCheck failures,
// and by node-budget exhaustion (see the bdd.Observer wiring in Session).

// DefaultFlightSize is the default ring capacity in events.
const DefaultFlightSize = 4096

// FlightRecorder retains the most recent trace events.
type FlightRecorder struct {
	mu      sync.Mutex
	lines   [][]byte
	next    int  // slot for the next record
	wrapped bool // true once the ring has overwritten old entries
	total   int64
}

// NewFlightRecorder returns a recorder keeping the last n events
// (DefaultFlightSize if n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightSize
	}
	return &FlightRecorder{lines: make([][]byte, n)}
}

// Record stores a copy of one serialized event line.
func (fr *FlightRecorder) Record(line []byte) {
	cp := make([]byte, len(line))
	copy(cp, line)
	fr.mu.Lock()
	fr.lines[fr.next] = cp
	fr.next++
	if fr.next == len(fr.lines) {
		fr.next = 0
		fr.wrapped = true
	}
	fr.total++
	fr.mu.Unlock()
}

// Len returns the number of events currently retained.
func (fr *FlightRecorder) Len() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.wrapped {
		return len(fr.lines)
	}
	return fr.next
}

// Total returns the number of events ever recorded.
func (fr *FlightRecorder) Total() int64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// WriteTo dumps the retained events, oldest first, as JSON lines.
func (fr *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	var written int64
	emit := func(from, to int) error {
		for i := from; i < to; i++ {
			n, err := w.Write(fr.lines[i])
			written += int64(n)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if fr.wrapped {
		if err := emit(fr.next, len(fr.lines)); err != nil {
			return written, err
		}
	}
	return written, emit(0, fr.next)
}

// Dump writes a framed post-mortem dump: a header naming the reason, the
// retained events, and a trailer. Intended for stderr on crash paths.
func (fr *FlightRecorder) Dump(w io.Writer, reason string) {
	fr.mu.Lock()
	total, kept := fr.total, fr.next
	if fr.wrapped {
		kept = len(fr.lines)
	}
	fr.mu.Unlock()
	fmt.Fprintf(w, "=== obs flight recorder dump: %s (%d of %d events retained) ===\n", reason, kept, total)
	fr.WriteTo(w) //nolint:errcheck // best-effort crash dump
	fmt.Fprintf(w, "=== end flight recorder dump ===\n")
}
