package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Trace analytics: aggregate a JSONL span trace into per-name rollups, a
// per-iteration dominance summary, and an A/B diff between two runs. This
// is the engine behind cmd/traceview; the schema it consumes is the Event
// record of trace.go.

// Rollup is the aggregate of every span (or event) sharing one name.
type Rollup struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`  // "span" or "event"
	Count  int64  `json:"count"` // emissions
	Total  int64  `json:"total_ns"`
	Self   int64  `json:"self_ns"` // Total minus time spent in child spans
	P50    int64  `json:"p50_ns"`  // per-span duration quantiles
	P95    int64  `json:"p95_ns"`
	Max    int64  `json:"max_ns"`
	Nodes  int64  `json:"nodes_delta"` // summed node-delta attribution
	Events int64  `json:"-"`           // child instant events attached to these spans
}

// PhaseShare is one direct-child phase of an iteration, with its share of
// the iteration's wall time.
type PhaseShare struct {
	Name  string  `json:"name"`
	Total int64   `json:"total_ns"`
	Count int64   `json:"count"`
	Share float64 `json:"share"` // Total / iteration duration
}

// IterationSummary describes one traversal iteration span: its direct-child
// phases ranked by time, the dominant (critical-path) phase, and the size
// attributes the reach engine recorded on the span.
type IterationSummary struct {
	Iter     int          `json:"iter"`
	Mode     string       `json:"mode,omitempty"`
	Dur      int64        `json:"dur_ns"`
	SelfNS   int64        `json:"self_ns"`
	Phases   []PhaseShare `json:"phases"`
	Critical string       `json:"critical"` // dominant phase ("self" when untracked time wins)
	CritNS   int64        `json:"critical_ns"`
	Frontier int64        `json:"frontier_nodes,omitempty"`
	Fresh    int64        `json:"fresh_nodes,omitempty"`
	Reached  int64        `json:"reached_nodes,omitempty"`
}

// STWAgg is the per-cause aggregation of bdd.stw events in a trace.
type STWAgg struct {
	Cause   string `json:"cause"`
	Count   int64  `json:"count"`
	WaitNS  int64  `json:"wait_ns"`  // drain / acquisition before exclusion held
	PauseNS int64  `json:"pause_ns"` // exclusive (serial) time
}

// TraceAnalysis is the full aggregation of one trace file.
type TraceAnalysis struct {
	Lines      int                `json:"lines"`
	Spans      int                `json:"spans"`
	Events     int                `json:"events"`
	WallNS     int64              `json:"wall_ns"`              // summed duration of root spans
	EnvelopeNS int64              `json:"envelope_ns"`          // last emission minus earliest span start
	Workers    int                `json:"workers,omitempty"`    // max workers seen on bdd.stw events
	STW        []STWAgg           `json:"stw,omitempty"`        // per-cause stop-the-world totals
	Stalls     int64              `json:"stalls,omitempty"`     // bdd.stall events
	Rollups    []Rollup           `json:"rollups"`              // sorted by Total descending
	Iterations []IterationSummary `json:"iterations,omitempty"` //
}

// iterationSpan is the dotted name whose spans anchor the per-iteration
// dominance summary (emitted by internal/reach around each image step).
const iterationSpan = "reach.iteration"

// AnalyzeTrace reads a JSONL trace and aggregates it. Malformed lines are
// rejected with their 1-based line number (same contract as ValidateJSONL);
// an empty reader yields an empty analysis, not an error.
func AnalyzeTrace(r io.Reader) (*TraceAnalysis, error) {
	a := &TraceAnalysis{}
	type spanAgg struct {
		kind   string
		count  int64
		total  int64
		child  int64 // time of direct child spans
		nodes  int64
		events int64
		max    int64
		hist   Histogram
	}
	aggs := make(map[string]*spanAgg)
	get := func(name, kind string) *spanAgg {
		s, ok := aggs[name]
		if !ok {
			s = &spanAgg{kind: kind}
			aggs[name] = s
		}
		return s
	}

	// The file is one pass, but parent attribution needs every span, so
	// events are retained (span records only) for the iteration summary.
	type spanRec struct {
		ev Event
	}
	var spans []spanRec
	childNS := make(map[uint64]int64)        // span id -> summed direct-child span time
	childPhases := make(map[uint64][]uint64) // span id -> direct-child span indices in spans

	stwByCause := make(map[string]*STWAgg)
	var envStart, envEnd time.Time

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		a.Lines++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %v", a.Lines, err)
		}
		if ts, err := time.Parse(time.RFC3339Nano, ev.TS); err == nil {
			start := ts.Add(-time.Duration(ev.DurNS)) // spans are emitted at End
			if envStart.IsZero() || start.Before(envStart) {
				envStart = start
			}
			if ts.After(envEnd) {
				envEnd = ts
			}
		}
		switch ev.Kind {
		case "span":
			a.Spans++
			agg := get(ev.Name, "span")
			agg.count++
			agg.total += ev.DurNS
			agg.nodes += int64(ev.Delta)
			if ev.DurNS > agg.max {
				agg.max = ev.DurNS
			}
			agg.hist.Observe(ev.DurNS)
			if ev.Parent != 0 {
				childNS[ev.Parent] += ev.DurNS
				childPhases[ev.Parent] = append(childPhases[ev.Parent], uint64(len(spans)))
			}
			spans = append(spans, spanRec{ev: ev})
		case "event":
			a.Events++
			agg := get(ev.Name, "event")
			agg.count++
			switch ev.Name {
			case "bdd.stw":
				cause := attrStr(ev.Attrs, "cause")
				if cause == "" {
					cause = "unknown"
				}
				st, ok := stwByCause[cause]
				if !ok {
					st = &STWAgg{Cause: cause}
					stwByCause[cause] = st
				}
				st.Count++
				st.WaitNS += attrI64(ev.Attrs, "wait_ns")
				st.PauseNS += attrI64(ev.Attrs, "pause_ns")
				if w := int(attrI64(ev.Attrs, "workers")); w > a.Workers {
					a.Workers = w
				}
			case "bdd.stall":
				a.Stalls++
			}
		default:
			return nil, fmt.Errorf("line %d: unknown kind %q", a.Lines, ev.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !envStart.IsZero() {
		a.EnvelopeNS = envEnd.Sub(envStart).Nanoseconds()
	}
	for _, st := range stwByCause {
		a.STW = append(a.STW, *st)
	}
	sort.Slice(a.STW, func(i, j int) bool {
		if a.STW[i].PauseNS != a.STW[j].PauseNS {
			return a.STW[i].PauseNS > a.STW[j].PauseNS
		}
		return a.STW[i].Cause < a.STW[j].Cause
	})

	// Self time and wall time.
	for _, s := range spans {
		agg := aggs[s.ev.Name]
		self := s.ev.DurNS - childNS[s.ev.ID]
		if self < 0 {
			self = 0 // clock skew between overlapping emissions
		}
		agg.child += s.ev.DurNS - self
		if s.ev.Parent == 0 {
			a.WallNS += s.ev.DurNS
		}
	}

	for name, agg := range aggs {
		snap := agg.hist.Snapshot()
		self := agg.total - agg.child
		if self < 0 {
			self = 0
		}
		a.Rollups = append(a.Rollups, Rollup{
			Name:  name,
			Kind:  agg.kind,
			Count: agg.count,
			Total: agg.total,
			Self:  self,
			P50:   snap.P50,
			P95:   snap.P95,
			Max:   agg.max,
			Nodes: agg.nodes,
		})
	}
	sort.Slice(a.Rollups, func(i, j int) bool {
		if a.Rollups[i].Total != a.Rollups[j].Total {
			return a.Rollups[i].Total > a.Rollups[j].Total
		}
		return a.Rollups[i].Name < a.Rollups[j].Name
	})

	// Per-iteration dominance summary.
	for _, s := range spans {
		if s.ev.Name != iterationSpan {
			continue
		}
		it := IterationSummary{
			Iter:     int(attrI64(s.ev.Attrs, "iter")),
			Mode:     attrStr(s.ev.Attrs, "mode"),
			Dur:      s.ev.DurNS,
			Frontier: attrI64(s.ev.Attrs, "frontier_nodes"),
			Fresh:    attrI64(s.ev.Attrs, "fresh_nodes"),
			Reached:  attrI64(s.ev.Attrs, "reached_nodes"),
		}
		byPhase := make(map[string]*PhaseShare)
		for _, ci := range childPhases[s.ev.ID] {
			c := spans[ci].ev
			p, ok := byPhase[c.Name]
			if !ok {
				p = &PhaseShare{Name: c.Name}
				byPhase[c.Name] = p
			}
			p.Count++
			p.Total += c.DurNS
		}
		it.SelfNS = it.Dur
		for _, p := range byPhase {
			if it.Dur > 0 {
				p.Share = float64(p.Total) / float64(it.Dur)
			}
			it.SelfNS -= p.Total
			it.Phases = append(it.Phases, *p)
		}
		if it.SelfNS < 0 {
			it.SelfNS = 0
		}
		sort.Slice(it.Phases, func(i, j int) bool { return it.Phases[i].Total > it.Phases[j].Total })
		it.Critical, it.CritNS = "self", it.SelfNS
		if len(it.Phases) > 0 && it.Phases[0].Total > it.SelfNS {
			it.Critical, it.CritNS = it.Phases[0].Name, it.Phases[0].Total
		}
		a.Iterations = append(a.Iterations, it)
	}
	sort.Slice(a.Iterations, func(i, j int) bool { return a.Iterations[i].Iter < a.Iterations[j].Iter })
	return a, nil
}

func attrI64(attrs map[string]any, key string) int64 {
	switch v := attrs[key].(type) {
	case float64:
		return int64(v)
	case int64:
		return v
	case int:
		return int64(v)
	}
	return 0
}

func attrStr(attrs map[string]any, key string) string {
	s, _ := attrs[key].(string)
	return s
}

// RollupDelta is one phase's signed change between two runs (B minus A).
type RollupDelta struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	CountA int64   `json:"count_a"`
	CountB int64   `json:"count_b"`
	TotalA int64   `json:"total_a_ns"`
	TotalB int64   `json:"total_b_ns"`
	Delta  int64   `json:"delta_ns"` // TotalB - TotalA
	Ratio  float64 `json:"ratio"`    // TotalB / TotalA (0 when A is empty)
}

// DiffRollups aligns two analyses by phase name and returns signed per-phase
// deltas, ordered by absolute time delta descending. Phases present in only
// one run appear with the other side zeroed.
func DiffRollups(a, b *TraceAnalysis) []RollupDelta {
	byName := make(map[string]*RollupDelta)
	for _, r := range a.Rollups {
		byName[r.Name] = &RollupDelta{Name: r.Name, Kind: r.Kind, CountA: r.Count, TotalA: r.Total}
	}
	for _, r := range b.Rollups {
		d, ok := byName[r.Name]
		if !ok {
			d = &RollupDelta{Name: r.Name, Kind: r.Kind}
			byName[r.Name] = d
		}
		d.CountB = r.Count
		d.TotalB = r.Total
	}
	out := make([]RollupDelta, 0, len(byName))
	for _, d := range byName {
		d.Delta = d.TotalB - d.TotalA
		if d.TotalA > 0 {
			d.Ratio = float64(d.TotalB) / float64(d.TotalA)
		}
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs64(out[i].Delta), abs64(out[j].Delta)
		if di != dj {
			return di > dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteSummary renders an analysis as the traceview "summary" report:
// per-span rollups (count, total, self, p50, p95) followed by one critical-
// path line per traversal iteration.
func (a *TraceAnalysis) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "%d lines: %d spans, %d events, wall %v\n",
		a.Lines, a.Spans, a.Events, time.Duration(a.WallNS).Round(time.Microsecond))
	fmt.Fprintf(w, "%-24s %8s %12s %12s %10s %10s %10s\n",
		"name", "count", "total", "self", "p50", "p95", "nodesΔ")
	for _, r := range a.Rollups {
		if r.Kind != "span" {
			continue
		}
		fmt.Fprintf(w, "%-24s %8d %12v %12v %10v %10v %10d\n",
			r.Name, r.Count,
			time.Duration(r.Total).Round(time.Microsecond),
			time.Duration(r.Self).Round(time.Microsecond),
			time.Duration(r.P50).Round(time.Microsecond),
			time.Duration(r.P95).Round(time.Microsecond),
			r.Nodes)
	}
	var events []Rollup
	for _, r := range a.Rollups {
		if r.Kind == "event" {
			events = append(events, r)
		}
	}
	if len(events) > 0 {
		fmt.Fprintf(w, "events:")
		for _, r := range events {
			fmt.Fprintf(w, " %s×%d", r.Name, r.Count)
		}
		fmt.Fprintln(w)
	}
	if len(a.STW) > 0 {
		fmt.Fprintln(w, "stop-the-world (Amdahl breakdown):")
		a.Amdahl().Write(w)
	}
	if len(a.Iterations) > 0 {
		fmt.Fprintln(w, "iterations (critical path):")
		// Long traversals (the 16-bit counter runs 65536 iterations) would
		// drown the report; show the head and tail around an elision line.
		const maxIterLines = 40
		elideFrom, elideTo := -1, -1
		if len(a.Iterations) > maxIterLines {
			elideFrom, elideTo = maxIterLines-10, len(a.Iterations)-10
		}
		for i, it := range a.Iterations {
			if i == elideFrom {
				fmt.Fprintf(w, "  ... %d iterations elided ...\n", elideTo-elideFrom)
			}
			if i >= elideFrom && i < elideTo {
				continue
			}
			share := 0.0
			if it.Dur > 0 {
				share = 100 * float64(it.CritNS) / float64(it.Dur)
			}
			fmt.Fprintf(w, "  iter %-3d %-4s %10v  critical %-16s %10v (%4.1f%%)",
				it.Iter, it.Mode, time.Duration(it.Dur).Round(time.Microsecond),
				it.Critical, time.Duration(it.CritNS).Round(time.Microsecond), share)
			if it.Reached > 0 {
				fmt.Fprintf(w, "  fresh %d reached %d", it.Fresh, it.Reached)
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteDiff renders per-phase deltas as the traceview "diff" report. Signs
// follow B minus A: positive deltas mean run B spent more time. Phases
// present in only one trace are not an error: they diff against zero and
// the ratio column labels them "added" (B only) or "removed" (A only) —
// instrumented phases appear and disappear across PRs, and a diff that
// refuses to compare such runs is useless exactly when it matters.
func WriteDiff(w io.Writer, a, b *TraceAnalysis, deltas []RollupDelta) {
	fmt.Fprintf(w, "A: %d spans, wall %v   B: %d spans, wall %v   Δwall %+v\n",
		a.Spans, time.Duration(a.WallNS).Round(time.Microsecond),
		b.Spans, time.Duration(b.WallNS).Round(time.Microsecond),
		time.Duration(b.WallNS-a.WallNS).Round(time.Microsecond))
	fmt.Fprintf(w, "%-24s %8s %8s %12s %12s %12s %8s\n",
		"name", "countA", "countB", "totalA", "totalB", "delta", "ratio")
	for _, d := range deltas {
		ratio := "-"
		switch {
		case d.CountA == 0 && d.CountB > 0:
			ratio = "added"
		case d.CountB == 0 && d.CountA > 0:
			ratio = "removed"
		case d.Ratio > 0:
			ratio = fmt.Sprintf("%.2fx", d.Ratio)
		}
		fmt.Fprintf(w, "%-24s %8d %8d %12v %12v %+12v %8s\n",
			d.Name, d.CountA, d.CountB,
			time.Duration(d.TotalA).Round(time.Microsecond),
			time.Duration(d.TotalB).Round(time.Microsecond),
			time.Duration(d.Delta).Round(time.Microsecond),
			ratio)
	}
}

// AmdahlReport is the serial-fraction breakdown of a parallel run: the
// stop-the-world pauses recorded by bdd.stw events are exactly the serial
// sections of the engine, so their share of the trace's wall envelope is
// the s in Amdahl's law, bounding attainable speedup at 1/s.
type AmdahlReport struct {
	WallNS         int64    `json:"wall_ns"`   // envelope the fraction is measured against
	SerialNS       int64    `json:"serial_ns"` // summed STW pause time
	WaitNS         int64    `json:"wait_ns"`   // summed drain/acquisition overhead
	SerialFraction float64  `json:"serial_fraction"`
	Workers        int      `json:"workers,omitempty"`
	MaxSpeedup     float64  `json:"max_speedup"`                    // 1/s (0 = unbounded: no serial time seen)
	PredictedAtW   float64  `json:"predicted_at_workers,omitempty"` // 1/(s + (1-s)/W)
	STW            []STWAgg `json:"stw,omitempty"`
	Stalls         int64    `json:"stalls,omitempty"`
}

// Amdahl derives the serial-fraction report from the analysis. The wall
// base is the trace envelope (earliest span start to last emission), which
// covers concurrent spans exactly once; WallNS (summed root spans) is the
// fallback for traces without parseable timestamps.
func (a *TraceAnalysis) Amdahl() AmdahlReport {
	r := AmdahlReport{WallNS: a.EnvelopeNS, Workers: a.Workers, STW: a.STW, Stalls: a.Stalls}
	if r.WallNS <= 0 {
		r.WallNS = a.WallNS
	}
	for _, st := range a.STW {
		r.SerialNS += st.PauseNS
		r.WaitNS += st.WaitNS
	}
	if r.WallNS > 0 && r.SerialNS > 0 {
		s := float64(r.SerialNS) / float64(r.WallNS)
		if s > 1 {
			s = 1 // clock skew or sub-envelope wall; clamp rather than report >100%
		}
		r.SerialFraction = s
		if s > 0 {
			r.MaxSpeedup = 1 / s
			if r.Workers > 1 {
				r.PredictedAtW = 1 / (s + (1-s)/float64(r.Workers))
			}
		}
	}
	return r
}

// Write renders the Amdahl breakdown as the traceview "amdahl" report.
func (r AmdahlReport) Write(w io.Writer) {
	fmt.Fprintf(w, "wall %v, stop-the-world %v serial (%.3f%%), drain overhead %v\n",
		time.Duration(r.WallNS).Round(time.Microsecond),
		time.Duration(r.SerialNS).Round(time.Microsecond),
		100*r.SerialFraction,
		time.Duration(r.WaitNS).Round(time.Microsecond))
	if len(r.STW) == 0 {
		fmt.Fprintln(w, "no bdd.stw events in trace (serial run, or obs was armed without a parallel manager)")
		return
	}
	fmt.Fprintf(w, "%-14s %8s %12s %12s %8s\n", "cause", "count", "pause", "wait", "share")
	for _, st := range r.STW {
		share := 0.0
		if r.SerialNS > 0 {
			share = 100 * float64(st.PauseNS) / float64(r.SerialNS)
		}
		fmt.Fprintf(w, "%-14s %8d %12v %12v %7.1f%%\n",
			st.Cause, st.Count,
			time.Duration(st.PauseNS).Round(time.Microsecond),
			time.Duration(st.WaitNS).Round(time.Microsecond),
			share)
	}
	if r.MaxSpeedup > 0 {
		fmt.Fprintf(w, "implied max speedup %.1fx", r.MaxSpeedup)
		if r.PredictedAtW > 0 {
			fmt.Fprintf(w, "; Amdahl predicts %.2fx at %d workers", r.PredictedAtW, r.Workers)
		}
		fmt.Fprintln(w)
	}
	if r.Stalls > 0 {
		fmt.Fprintf(w, "WARNING: %d stall-watchdog report(s) in trace\n", r.Stalls)
	}
}
