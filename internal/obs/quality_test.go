package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bddkit/internal/bdd"
)

// freshLedger arms a private ledger against a fresh registry and a tracer
// writing into buf, and returns a disarm func. Tests use private ledgers so
// they cannot race with the process-global L.
func freshLedger(buf *bytes.Buffer) (*Ledger, *Registry, func()) {
	l := &Ledger{}
	reg := NewRegistry()
	tr := NewTracer(buf)
	l.arm(reg, tr)
	return l, reg, l.disarm
}

func TestLedgerRecordDerivesAndAggregates(t *testing.T) {
	var buf bytes.Buffer
	l, reg, disarm := freshLedger(&buf)

	// MassRetained and BudgetHeadroom left zero: Record must derive them.
	l.Record(OpRecord{
		Kind: "approx", Op: "rua",
		SizeIn: 100, SizeOut: 40,
		MassIn: 0.5, MassOut: 0.25,
		BudgetLimit: 1000, BudgetLive: 250,
		DurNS: 1500,
	})
	rec, ok := l.Last()
	if !ok {
		t.Fatal("Last() empty after Record")
	}
	if rec.OpID != 1 {
		t.Fatalf("op id = %d, want 1", rec.OpID)
	}
	if rec.MassRetained != 0.5 {
		t.Fatalf("derived mass_retained = %v, want 0.5", rec.MassRetained)
	}
	if rec.BudgetHeadroom != 0.75 {
		t.Fatalf("derived budget_headroom = %v, want 0.75", rec.BudgetHeadroom)
	}
	if rec.TS == "" {
		t.Fatal("Record did not stamp TS")
	}

	// MassIn == 0 derives retained = 1 (nothing was at stake); an explicit
	// abort reason counts toward the abort totals.
	l.Record(OpRecord{Kind: "approx", Op: "rua", SizeIn: 10, SizeOut: 10, DurNS: 10})
	l.Record(OpRecord{Kind: "reach", Op: "hd", Iter: 3, MassIn: 0.5, MassRetained: 0, Abort: "deadline"})
	if rec, _ = l.Last(); rec.MassRetained != 0 {
		// The abort record carried MassIn > 0 and MassOut 0.
		t.Fatalf("abort record mass_retained = %v, want 0", rec.MassRetained)
	}

	snap := l.Snapshot()
	if snap.Ops != 3 || snap.Aborts != 1 {
		t.Fatalf("snapshot ops/aborts = %d/%d, want 3/1", snap.Ops, snap.Aborts)
	}
	if len(snap.PerOp) != 2 || snap.PerOp[0].Key != "approx.rua" || snap.PerOp[1].Key != "reach.hd" {
		t.Fatalf("per-op keys wrong: %+v", snap.PerOp)
	}
	rua := snap.PerOp[0]
	if rua.Count != 2 || rua.NodesShed() != 60 {
		t.Fatalf("approx.rua agg = count %d, shed %d; want 2, 60", rua.Count, rua.NodesShed())
	}
	if rua.MassMin != 0.5 || rua.MassMean() != 0.75 {
		t.Fatalf("approx.rua mass min/mean = %v/%v, want 0.5/0.75", rua.MassMin, rua.MassMean())
	}

	// Registry wiring: totals plus per-key histograms.
	if v := reg.Counter("quality_ops_total").Value(); v != 3 {
		t.Fatalf("quality_ops_total = %d, want 3", v)
	}
	if v := reg.Counter("quality_op_aborts_total").Value(); v != 1 {
		t.Fatalf("quality_op_aborts_total = %d, want 1", v)
	}
	if h := reg.Histogram("quality_approx_rua_mass_permille").Snapshot(); h.Count != 2 {
		t.Fatalf("mass histogram count = %d, want 2", h.Count)
	}

	// Trace emission: every record is a validating v3 quality.op event.
	sum, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ledger trace does not validate: %v\n%s", err, buf.String())
	}
	if sum.ByName["quality.op"] != 3 {
		t.Fatalf("quality.op events = %d, want 3", sum.ByName["quality.op"])
	}

	// Snapshot and report still work after disarm (end-of-run -metrics
	// path); new records are dropped.
	disarm()
	l.Record(OpRecord{Kind: "approx", Op: "rua"})
	if snap = l.Snapshot(); snap.Ops != 3 {
		t.Fatalf("post-disarm snapshot ops = %d, want 3", snap.Ops)
	}
	var report strings.Builder
	snap.WriteReport(&report)
	if !strings.Contains(report.String(), "approx.rua") || !strings.Contains(report.String(), "reach.hd") {
		t.Fatalf("report missing per-op rows:\n%s", report.String())
	}
}

func TestLedgerLastMassGauge(t *testing.T) {
	var buf bytes.Buffer
	l, reg, disarm := freshLedger(&buf)
	defer disarm()
	if v := reg.Snapshot()["quality_last_mass_retained"].(float64); v != 1 {
		t.Fatalf("gauge before any record = %v, want 1", v)
	}
	l.Record(OpRecord{Kind: "approx", Op: "hb", MassIn: 1, MassOut: 0.125})
	if v := reg.Snapshot()["quality_last_mass_retained"].(float64); v != 0.125 {
		t.Fatalf("gauge after record = %v, want 0.125", v)
	}
	_ = l
}

// TestHistogramQuantileClampsToMax: with few samples the power-of-two
// bucket upper bound used to overshoot the real maximum (one observation
// of 1000 reported p99 = 1023). Quantile bounds must clamp to the observed
// max.
func TestHistogramQuantileClampsToMax(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	s := h.Snapshot()
	if s.P50 != 1000 || s.P99 != 1000 {
		t.Fatalf("single-sample quantiles p50=%d p99=%d, want both 1000 (clamped to max)", s.P50, s.P99)
	}
	h.Observe(5)
	s = h.Snapshot()
	if s.P99 != 1000 {
		t.Fatalf("p99 = %d, want 1000", s.P99)
	}
	if s.P50 > 1000 {
		t.Fatalf("p50 = %d exceeds max", s.P50)
	}
}

// TestHistogramSingleObservationQuantiles pins the general single-sample
// contract — P50 == P95 == the observed value — including the overflow
// bucket, whose nominal bound (2^47) is *below* a large observation, so
// the clamp-to-max must raise it rather than lower it.
func TestHistogramSingleObservationQuantiles(t *testing.T) {
	for _, v := range []int64{1, 5, 100, 1 << 20, 1 << 46, 1 << 55} {
		var h Histogram
		h.Observe(v)
		s := h.Snapshot()
		if s.P50 != v || s.P95 != v {
			t.Fatalf("Observe(%d): p50=%d p95=%d, want both %d", v, s.P50, s.P95, v)
		}
		if s.Max != v {
			t.Fatalf("Observe(%d): max=%d, want %d", v, s.Max, v)
		}
	}
}

func TestPrometheusRoundTripCleanLint(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total")
	c.Add(7)
	reg.SetHelp("test_ops_total", "operations observed")
	reg.Gauge("test_live").Set(42)
	reg.GaugeFunc("test_rate", func() float64 { return 0.25 })
	h := reg.Histogram("test_dur_ns")
	for _, v := range []int64{1, 3, 900, 1_000_000} {
		h.Observe(v)
	}

	var page bytes.Buffer
	reg.WritePrometheus(&page)
	text := page.String()
	for _, want := range []string{
		"# HELP test_ops_total operations observed",
		"# TYPE test_ops_total counter",
		"test_ops_total 7",
		"# TYPE test_live gauge",
		"test_live 42",
		"test_rate 0.25",
		"# TYPE test_dur_ns histogram",
		`test_dur_ns_bucket{le="+Inf"} 4`,
		"test_dur_ns_sum 1000904",
		"test_dur_ns_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	scrape, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, text)
	}
	if problems := LintPrometheus(scrape); len(problems) > 0 {
		t.Fatalf("lint of our own exposition: %v", problems)
	}
	if v, ok := scrape.Value("test_ops_total"); !ok || v != 7 {
		t.Fatalf("Value(test_ops_total) = %v, %v", v, ok)
	}
	if v, ok := scrape.Value("test_dur_ns_count"); !ok || v != 4 {
		t.Fatalf("Value(test_dur_ns_count) = %v, %v", v, ok)
	}
	if fam := scrape.Family("test_dur_ns"); fam == nil || fam.Type != "histogram" {
		t.Fatalf("histogram family not grouped: %+v", fam)
	}
}

func TestLintPrometheusCatchesProblems(t *testing.T) {
	cases := []struct {
		name, page, want string
	}{
		{"duplicate series",
			"# HELP a x\n# TYPE a counter\na 1\na 2\n",
			"duplicate sample"},
		{"missing TYPE",
			"# HELP a x\na 1\n",
			"missing # TYPE"},
		{"missing HELP",
			"# TYPE a counter\na 1\n",
			"missing # HELP"},
		{"unknown type",
			"# HELP a x\n# TYPE a bogus\na 1\n",
			"unknown type"},
		{"negative counter",
			"# HELP a x\n# TYPE a counter\na -3\n",
			"invalid value"},
		{"non-cumulative histogram",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
			"below previous"},
		{"missing +Inf",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n",
			`missing le="+Inf"`},
		{"count mismatch",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
			"!= _count"},
		{"declared but empty",
			"# HELP a x\n# TYPE a counter\n",
			"no samples"},
	}
	for _, tc := range cases {
		scrape, err := ParsePrometheus(strings.NewReader(tc.page))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		problems := LintPrometheus(scrape)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: lint missed %q, got %v", tc.name, tc.want, problems)
		}
	}
}

func TestCheckCounterMonotonic(t *testing.T) {
	parse := func(s string) *PromScrape {
		scrape, err := ParsePrometheus(strings.NewReader(s))
		if err != nil {
			t.Fatal(err)
		}
		return scrape
	}
	prev := parse("# HELP a x\n# TYPE a counter\na 5\n# HELP g x\n# TYPE g gauge\ng 9\n")
	cur := parse("# HELP a x\n# TYPE a counter\na 3\n# HELP g x\n# TYPE g gauge\ng 2\n# HELP b x\n# TYPE b counter\nb 1\n")
	problems := CheckCounterMonotonic(prev, cur)
	if len(problems) != 1 || !strings.Contains(problems[0], "counter a") {
		t.Fatalf("want exactly the counter regression, got %v", problems)
	}
	// Forward direction is clean; gauges may move freely; new counters are
	// not an error.
	if problems := CheckCounterMonotonic(cur, parse("# HELP a x\n# TYPE a counter\na 3\n")); len(problems) != 0 {
		t.Fatalf("vanished series flagged: %v", problems)
	}
}

func TestTimeSamplerRingAndRetarget(t *testing.T) {
	m := bdd.New(8)
	var buf bytes.Buffer
	l, _, disarm := freshLedger(&buf)
	defer disarm()
	l.Record(OpRecord{Kind: "approx", Op: "sp", MassIn: 1, MassOut: 0.5})

	ts := newTimeSampler(m, l, time.Hour) // manual sampling only
	defer ts.Stop()
	m.SetNodeLimit(100)
	f := m.And(m.IthVar(0), m.IthVar(1))
	defer m.Deref(f)

	p := ts.Sample()
	if p.LiveNodes != m.NodeCount() || p.NodeLimit != 100 {
		t.Fatalf("sample live/limit = %d/%d, want %d/100", p.LiveNodes, p.NodeLimit, m.NodeCount())
	}
	if want := 1 - float64(p.LiveNodes)/100; p.BudgetHeadroom != want {
		t.Fatalf("headroom = %v, want %v", p.BudgetHeadroom, want)
	}
	if p.QualityOps != 1 || p.MassRetained != 0.5 {
		t.Fatalf("quality fields = %d/%v, want 1/0.5", p.QualityOps, p.MassRetained)
	}
	if p.ArenaCapacity <= 0 {
		t.Fatalf("arena capacity = %d", p.ArenaCapacity)
	}

	// newTimeSampler records a t=0 point; History is oldest-first.
	if h := ts.History(); len(h) != 1 {
		t.Fatalf("history len = %d, want the t=0 sample", len(h))
	}

	// Re-pointing at a fresh manager keeps sampling without restarting.
	m2 := bdd.New(4)
	ts.SetManager(m2)
	if p := ts.Sample(); p.NodeLimit != 0 {
		t.Fatalf("retargeted sample still reads old manager (limit %d)", p.NodeLimit)
	}
}

// TestWriteDiffOneSidedPhases: a span name present in only one trace must
// diff against zero and be labeled added/removed, not dropped or fatal.
func TestWriteDiffOneSidedPhases(t *testing.T) {
	mk := func(names ...string) *TraceAnalysis {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		for _, n := range names {
			sp := tr.Begin(n)
			time.Sleep(100 * time.Microsecond)
			sp.End()
		}
		a, err := AnalyzeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := mk("reach.image", "reach.gone")
	b := mk("reach.image", "reach.new")
	deltas := DiffRollups(a, b)
	byName := make(map[string]RollupDelta)
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["reach.new"]; d.CountA != 0 || d.CountB != 1 || d.Delta <= 0 {
		t.Fatalf("added phase delta wrong: %+v", d)
	}
	if d := byName["reach.gone"]; d.CountB != 0 || d.Delta >= 0 {
		t.Fatalf("removed phase delta wrong: %+v", d)
	}
	var out strings.Builder
	WriteDiff(&out, a, b, deltas)
	text := out.String()
	if !strings.Contains(text, "added") || !strings.Contains(text, "removed") {
		t.Fatalf("diff report missing added/removed labels:\n%s", text)
	}
}
