package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeTrace builds a synthetic two-iteration traversal trace through the
// real tracer, sleeping long enough that durations are meaningfully ordered
// (image dominates iteration 1, subset dominates nothing — it is fast).
func fakeTrace(t *testing.T, imageSleep time.Duration) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	for iter := 1; iter <= 2; iter++ {
		isp := tr.Begin(iterationSpan, Str("mode", "bfs"), Int("iter", iter), Int("frontier_nodes", 10*iter))
		img := tr.Begin("reach.image")
		time.Sleep(imageSleep)
		img.End()
		tr.Event("reach.subset", Int("threshold", 100))
		isp.End(Int("fresh_nodes", 5*iter), Int("reached_nodes", 20*iter))
	}
	return buf.Bytes()
}

func TestAnalyzeTraceRollupsAndIterations(t *testing.T) {
	data := fakeTrace(t, 2*time.Millisecond)
	a, err := AnalyzeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("AnalyzeTrace: %v", err)
	}
	if a.Spans != 4 || a.Events != 2 {
		t.Fatalf("got %d spans, %d events; want 4, 2", a.Spans, a.Events)
	}
	var iterRoll, imgRoll *Rollup
	for i := range a.Rollups {
		switch a.Rollups[i].Name {
		case iterationSpan:
			iterRoll = &a.Rollups[i]
		case "reach.image":
			imgRoll = &a.Rollups[i]
		}
	}
	if iterRoll == nil || imgRoll == nil {
		t.Fatalf("missing rollups: %+v", a.Rollups)
	}
	if iterRoll.Count != 2 || imgRoll.Count != 2 {
		t.Fatalf("rollup counts: iter=%d image=%d, want 2/2", iterRoll.Count, imgRoll.Count)
	}
	// The iteration's self time must exclude the image time it contains.
	if iterRoll.Self >= iterRoll.Total {
		t.Fatalf("iteration self %d not reduced below total %d", iterRoll.Self, iterRoll.Total)
	}
	if imgRoll.Total > iterRoll.Total {
		t.Fatalf("child total %d exceeds parent total %d", imgRoll.Total, iterRoll.Total)
	}
	if iterRoll.P95 < iterRoll.P50 {
		t.Fatalf("p95 %d < p50 %d", iterRoll.P95, iterRoll.P50)
	}

	if len(a.Iterations) != 2 {
		t.Fatalf("got %d iteration summaries, want 2", len(a.Iterations))
	}
	it := a.Iterations[0]
	if it.Iter != 1 || it.Mode != "bfs" {
		t.Fatalf("iteration attrs not decoded: %+v", it)
	}
	if it.Critical != "reach.image" {
		t.Fatalf("critical phase = %q, want reach.image (phases: %+v)", it.Critical, it.Phases)
	}
	if it.Fresh != 5 || it.Reached != 20 {
		t.Fatalf("size attrs not decoded: fresh=%d reached=%d", it.Fresh, it.Reached)
	}

	var out strings.Builder
	a.WriteSummary(&out)
	for _, want := range []string{"reach.iteration", "reach.image", "critical", "p95", "reach.subset"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestAnalyzeTraceRejectsGarbage(t *testing.T) {
	_, err := AnalyzeTrace(strings.NewReader("{\"kind\":\"span\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
	a, err := AnalyzeTrace(strings.NewReader(""))
	if err != nil || a.Lines != 0 {
		t.Fatalf("empty trace: %v, %+v", err, a)
	}
}

func TestDiffRollupsSignedDeltas(t *testing.T) {
	fast, err := AnalyzeTrace(bytes.NewReader(fakeTrace(t, 1*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := AnalyzeTrace(bytes.NewReader(fakeTrace(t, 8*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	deltas := DiffRollups(fast, slow)
	byName := make(map[string]RollupDelta)
	for _, d := range deltas {
		byName[d.Name] = d
	}
	img := byName["reach.image"]
	if img.Delta <= 0 {
		t.Fatalf("slow run must show positive image delta, got %+d", img.Delta)
	}
	if img.Ratio <= 1 {
		t.Fatalf("ratio = %.2f, want > 1", img.Ratio)
	}
	// Reverse direction flips the sign.
	rev := DiffRollups(slow, fast)
	for _, d := range rev {
		if d.Name == "reach.image" && d.Delta >= 0 {
			t.Fatalf("reverse diff must be negative, got %+d", d.Delta)
		}
	}
	var out strings.Builder
	WriteDiff(&out, fast, slow, deltas)
	if !strings.Contains(out.String(), "reach.image") || !strings.Contains(out.String(), "Δwall") {
		t.Fatalf("diff output malformed:\n%s", out.String())
	}
}
