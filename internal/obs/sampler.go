package obs

import (
	"sync"
	"time"

	"bddkit/internal/bdd"
)

// Time-series core: a low-overhead periodic sampler that snapshots the
// manager gauges and quality counters into a ring buffer. The ring is the
// short-horizon history behind /timeseries (what cmd/bddtop plots as
// trajectories); the instantaneous values back the Prometheus gauges on
// /metrics, so a standard scraper gets the same series at whatever
// interval it chooses. Sampling reads the manager without synchronization
// — the values are advisory while the engines mutate, same contract as
// the registry's GaugeFuncs.

const (
	// DefaultSampleInterval is the -obs-sample default.
	DefaultSampleInterval = 250 * time.Millisecond
	// timeRingSize bounds the /timeseries history (~64 s at the default
	// interval — enough for bddtop's trajectory panes).
	timeRingSize = 256
)

// TimePoint is one timestamped sample of the manager/quality gauges.
type TimePoint struct {
	TS string `json:"ts"` // RFC3339Nano

	LiveNodes      int     `json:"live_nodes"`
	DeadNodes      int     `json:"dead_nodes"`
	ArenaCapacity  int     `json:"arena_capacity"`
	ArenaOccupancy float64 `json:"arena_occupancy"` // (live+dead)/capacity
	CacheHitRate   float64 `json:"cache_hit_rate"`
	GCTotal        int64   `json:"gc_total"`
	STWShare       float64 `json:"stw_share"` // STW time / wall time since sampling began

	NodeLimit      int     `json:"node_limit,omitempty"`
	BudgetHeadroom float64 `json:"budget_headroom"`

	QualityOps    int64   `json:"quality_ops"`
	QualityAborts int64   `json:"quality_aborts"`
	MassRetained  float64 `json:"mass_retained"` // most recent ledger record (1 when none)
}

// TimeSampler periodically snapshots a manager plus the quality ledger
// into a ring buffer.
type TimeSampler struct {
	m      *bdd.Manager
	ledger *Ledger
	start  time.Time
	ticker *time.Ticker
	done   chan struct{}
	wg     sync.WaitGroup

	mu   sync.Mutex
	ring []TimePoint // oldest first, capped at timeRingSize
}

// newTimeSampler starts sampling m every interval (0 selects the
// default).
func newTimeSampler(m *bdd.Manager, ledger *Ledger, interval time.Duration) *TimeSampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	ts := &TimeSampler{
		m:      m,
		ledger: ledger,
		start:  time.Now(),
		ticker: time.NewTicker(interval),
		done:   make(chan struct{}),
	}
	ts.sample() // a point at t=0, so short runs still have history
	ts.wg.Add(1)
	go ts.loop()
	return ts
}

func (ts *TimeSampler) loop() {
	defer ts.wg.Done()
	for {
		select {
		case <-ts.done:
			return
		case <-ts.ticker.C:
			ts.sample()
		}
	}
}

// Sample reads one TimePoint off the manager and ledger without storing
// it — the building block sample() appends and tests call directly.
func (ts *TimeSampler) Sample() TimePoint {
	m := ts.manager()
	arena := m.ArenaStats()
	stats := m.Stats()
	p := TimePoint{
		TS:             time.Now().Format(time.RFC3339Nano),
		LiveNodes:      m.NodeCount(),
		DeadNodes:      m.DeadCount(),
		ArenaCapacity:  arena.Capacity,
		ArenaOccupancy: arena.Occupancy(),
		CacheHitRate:   m.CacheStats().HitRate,
		GCTotal:        stats.GCs,
		NodeLimit:      m.NodeLimit(),
		MassRetained:   1,
	}
	p.BudgetHeadroom = headroom(p.NodeLimit, p.LiveNodes)
	if wall := time.Since(ts.start); wall > 0 {
		p.STWShare = float64(stats.STWTime) / float64(wall.Nanoseconds())
	}
	if ts.ledger.Enabled() {
		snap := ts.ledger.Snapshot()
		p.QualityOps = snap.Ops
		p.QualityAborts = snap.Aborts
		if snap.Last != nil {
			p.MassRetained = snap.Last.MassRetained
		}
	}
	return p
}

func (ts *TimeSampler) sample() {
	p := ts.Sample()
	ts.mu.Lock()
	ts.ring = append(ts.ring, p)
	if len(ts.ring) > timeRingSize {
		copy(ts.ring, ts.ring[len(ts.ring)-timeRingSize:])
		ts.ring = ts.ring[:timeRingSize]
	}
	ts.mu.Unlock()
}

// SetManager re-points the sampler at a new manager. Benchmark drivers
// create a fresh manager per run; re-pointing keeps one continuous ring
// across runs instead of restarting history.
func (ts *TimeSampler) SetManager(m *bdd.Manager) {
	ts.mu.Lock()
	ts.m = m
	ts.mu.Unlock()
}

// manager returns the current sampling target.
func (ts *TimeSampler) manager() *bdd.Manager {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.m
}

// History returns the ring contents, oldest first.
func (ts *TimeSampler) History() []TimePoint {
	ts.mu.Lock()
	out := make([]TimePoint, len(ts.ring))
	copy(out, ts.ring)
	ts.mu.Unlock()
	return out
}

// Stop halts the sampling goroutine. Safe to call twice.
func (ts *TimeSampler) Stop() {
	select {
	case <-ts.done:
		return
	default:
	}
	ts.ticker.Stop()
	close(ts.done)
	ts.wg.Wait()
}
