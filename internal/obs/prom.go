package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry, plus
// a parser and linter for it. The writer makes /metrics scrapeable by any
// standard collector; the parser/linter back `obscheck -prom`, the gate
// behind `make obs-quality-smoke`.
//
// Histograms translate exactly: the registry's power-of-two buckets count
// observations v with 2^(i-1) <= v < 2^i, so for the integer values we
// observe (nanoseconds, node counts, permille ratios) the cumulative count
// through bucket i is precisely the number of observations <= 2^i - 1.
// Those are the le bounds emitted — no approximation crosses the wire.

// PromContentType is the Content-Type of the exposition format served on
// /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered metric in exposition format,
// families sorted by name. Counters become TYPE counter; gauges and
// gauge-funcs TYPE gauge; histograms TYPE histogram with cumulative
// le-buckets, _sum, and _count. Empty buckets are elided (le="+Inf" always
// remains), keeping the page proportional to what was actually observed.
func (r *Registry) WritePrometheus(w io.Writer) {
	WritePrometheusMulti(w, []LabeledRegistry{{R: r}})
}

// LabeledRegistry pairs a registry with a raw Prometheus label set (e.g.
// `tenant="acme"`, no braces) applied to every series it contributes.
type LabeledRegistry struct {
	Labels string
	R      *Registry
}

// promFamily is one metric family contributed by one registry: the writer
// emits the samples with that registry's labels already applied.
type promFamily struct {
	name, typ string
	write     func(io.Writer)
}

// promFamilies snapshots the registry's families with the given label set.
func (r *Registry) promFamilies(labels string) ([]promFamily, map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]promFamily, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+len(r.histos))
	series := func(name string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	for name, c := range r.counters {
		name, c := name, c
		fams = append(fams, promFamily{name, "counter", func(w io.Writer) {
			fmt.Fprintf(w, "%s %d\n", series(name), c.Value())
		}})
	}
	for name, g := range r.gauges {
		name, g := name, g
		fams = append(fams, promFamily{name, "gauge", func(w io.Writer) {
			fmt.Fprintf(w, "%s %d\n", series(name), g.Value())
		}})
	}
	for name, fn := range r.funcs {
		name, fn := name, fn
		fams = append(fams, promFamily{name, "gauge", func(w io.Writer) {
			v := fn()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			fmt.Fprintf(w, "%s %s\n", series(name), formatPromValue(v))
		}})
	}
	for name, h := range r.histos {
		name, h := name, h
		fams = append(fams, promFamily{name, "histogram", func(w io.Writer) {
			writePromHistogram(w, name, labels, h)
		}})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	return fams, help
}

// WritePrometheusMulti writes several registries onto one exposition page —
// the multi-tenant /metrics surface: a server-level registry unlabeled plus
// one registry per tenant labeled tenant="id". HELP and TYPE are emitted
// once per family name even when several registries contribute samples (the
// exposition format forbids repeating them); the first registry to declare
// a family fixes its type, so homogeneous naming across registries is the
// caller's job (per-tenant registries built by the same code trivially
// satisfy this).
func WritePrometheusMulti(w io.Writer, regs []LabeledRegistry) {
	type merged struct {
		name, typ string
		help      string
		writes    []func(io.Writer)
	}
	byName := make(map[string]*merged)
	order := []string{}
	for _, lr := range regs {
		if lr.R == nil {
			continue
		}
		fams, help := lr.R.promFamilies(lr.Labels)
		for _, f := range fams {
			mf, ok := byName[f.name]
			if !ok {
				mf = &merged{name: f.name, typ: f.typ}
				byName[f.name] = mf
				order = append(order, f.name)
			}
			if mf.typ != f.typ {
				// A name collision across registries with different kinds
				// would corrupt the family; drop the late-comer's samples.
				continue
			}
			if mf.help == "" {
				mf.help = help[f.name]
			}
			mf.writes = append(mf.writes, f.write)
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := byName[name]
		text := f.help
		if text == "" {
			text = "bddkit metric " + f.name
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapePromHelp(text))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, write := range f.writes {
			write(w)
		}
	}
}

func writePromHistogram(w io.Writer, name, labels string, h *Histogram) {
	counts := h.BucketCounts()
	bucket := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", name, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", name, labels, le)
	}
	series := func(suffix string) string {
		if labels == "" {
			return name + suffix
		}
		return name + suffix + "{" + labels + "}"
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if c == 0 {
			continue
		}
		// Upper bound of bucket i, inclusive for integer observations:
		// bucket 0 holds v <= 0, bucket i holds v < 2^i.
		var le int64
		if i > 0 {
			le = int64(1)<<uint(i) - 1
		}
		fmt.Fprintf(w, "%s %d\n", bucket(strconv.FormatInt(le, 10)), cum)
	}
	fmt.Fprintf(w, "%s %d\n", bucket("+Inf"), cum)
	fmt.Fprintf(w, "%s %d\n", series("_sum"), h.sum.Load())
	fmt.Fprintf(w, "%s %d\n", series("_count"), h.count.Load())
}

// formatPromValue renders a float the way Prometheus clients expect:
// integral values without an exponent, everything else in shortest form.
func formatPromValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapePromHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// --- parsing -------------------------------------------------------------

// PromSample is one series sample: the family name, the raw label string
// (sorted as written, "" when unlabeled), and the value.
type PromSample struct {
	Name   string
	Labels string
	Value  float64
	Line   int
}

// Series returns the full series identity, name plus labels.
func (s PromSample) Series() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// PromFamily is one metric family: its declared type/help and samples in
// file order. For histograms the samples span the _bucket/_sum/_count
// suffixed series.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// PromScrape is a parsed exposition page.
type PromScrape struct {
	Families map[string]*PromFamily
	Order    []string // family names in first-appearance order
}

// Family returns the named family, nil when absent.
func (p *PromScrape) Family(name string) *PromFamily {
	if p == nil {
		return nil
	}
	return p.Families[name]
}

// Value returns the value of an unlabeled series (or the first sample with
// the given name), with ok=false when the series is absent. Histogram
// sub-series are addressed by their suffixed name (e.g. "foo_count").
func (p *PromScrape) Value(name string) (float64, bool) {
	fam := p.Family(familyOf(name))
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// familyOf strips the histogram sub-series suffixes so _bucket/_sum/_count
// samples group under their family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParsePrometheus parses text exposition format. It is strict about line
// shape (the linter depends on it) but does not validate semantics — that
// is LintPrometheus's job.
func ParsePrometheus(r io.Reader) (*PromScrape, error) {
	scrape := &PromScrape{Families: make(map[string]*PromFamily)}
	fam := func(name string) *PromFamily {
		f, ok := scrape.Families[name]
		if !ok {
			f = &PromFamily{Name: name}
			scrape.Families[name] = f
			scrape.Order = append(scrape.Order, name)
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			f := fam(fields[2])
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, f.Name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, f.Name)
				}
				f.Type = fields[3]
			} else {
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, f.Name)
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				} else {
					f.Help = " " // present but empty
				}
			}
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		sample.Line = lineNo
		f := fam(familyOf(sample.Name))
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return scrape, nil
}

func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("malformed labels in %q", line)
		}
		s.Name = rest[:i]
		s.Labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// --- linting -------------------------------------------------------------

// LintPrometheus checks one parsed scrape for exposition-format problems
// and returns them as human-readable strings (empty = clean):
//
//   - duplicate series (same name + label set appearing twice),
//   - samples whose family has no TYPE or no HELP line,
//   - unknown TYPE values,
//   - negative or non-finite counter values,
//   - histograms whose le-buckets are non-cumulative, lack le="+Inf", or
//     disagree with their _count.
func LintPrometheus(scrape *PromScrape) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	for _, name := range scrape.Order {
		f := scrape.Families[name]
		if len(f.Samples) == 0 {
			addf("family %s: HELP/TYPE declared but no samples", name)
			continue
		}
		if f.Type == "" {
			addf("family %s: missing # TYPE line", name)
		}
		if f.Help == "" {
			addf("family %s: missing # HELP line", name)
		}
		switch f.Type {
		case "", "counter", "gauge", "histogram", "summary", "untyped":
		default:
			addf("family %s: unknown type %q", name, f.Type)
		}
		seen := make(map[string]int)
		for _, s := range f.Samples {
			key := s.Series()
			if prev, dup := seen[key]; dup {
				addf("series %s: duplicate sample (lines %d and %d)", key, prev, s.Line)
			}
			seen[key] = s.Line
		}
		if f.Type == "counter" {
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
					addf("counter %s: invalid value %v (line %d)", s.Series(), s.Value, s.Line)
				}
			}
		}
		if f.Type == "histogram" {
			problems = append(problems, lintPromHistogram(f)...)
		}
	}
	return problems
}

// lintPromHistogram checks bucket monotonicity per label set: a labeled
// exposition (one histogram family, one series per tenant) restarts its
// le ladder for each label combination, so the cumulative checks group by
// the sample's labels with le stripped.
func lintPromHistogram(f *PromFamily) []string {
	var problems []string
	type histState struct {
		prevCum   float64
		prevLe    float64
		infCum    float64
		count     float64
		sawBucket bool
	}
	states := make(map[string]*histState)
	order := []string{}
	at := func(key string) *histState {
		st, ok := states[key]
		if !ok {
			st = &histState{prevLe: math.Inf(-1), infCum: math.NaN(), count: math.NaN()}
			states[key] = st
			order = append(order, key)
		}
		return st
	}
	describe := func(key string) string {
		if key == "" {
			return f.Name
		}
		return f.Name + "{" + key + "}"
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			key := stripPromLabel(s.Labels, "le")
			st := at(key)
			st.sawBucket = true
			leStr := promLabelValue(s.Labels, "le")
			if leStr == "" {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket without le label (line %d)", describe(key), s.Line))
				continue
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					problems = append(problems, fmt.Sprintf("histogram %s: bad le %q (line %d)", describe(key), leStr, s.Line))
					continue
				}
				le = v
			}
			if le <= st.prevLe {
				problems = append(problems, fmt.Sprintf("histogram %s: le %q out of order (line %d)", describe(key), leStr, s.Line))
			}
			if s.Value < st.prevCum {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket le=%q count %v below previous %v (line %d)",
					describe(key), leStr, s.Value, st.prevCum, s.Line))
			}
			st.prevLe, st.prevCum = le, s.Value
			if math.IsInf(le, 1) {
				st.infCum = s.Value
			}
		case f.Name + "_count":
			at(s.Labels).count = s.Value
		}
	}
	for _, key := range order {
		st := states[key]
		if st.sawBucket && math.IsNaN(st.infCum) {
			problems = append(problems, fmt.Sprintf("histogram %s: missing le=\"+Inf\" bucket", describe(key)))
		}
		if !math.IsNaN(st.infCum) && !math.IsNaN(st.count) && st.infCum != st.count {
			problems = append(problems, fmt.Sprintf("histogram %s: le=\"+Inf\" bucket %v != _count %v", describe(key), st.infCum, st.count))
		}
	}
	return problems
}

// stripPromLabel removes one label (and its value) from a raw label string,
// keeping the rest in written order.
func stripPromLabel(labels, key string) string {
	if labels == "" {
		return ""
	}
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, part := range parts {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) == 2 && kv[0] == key {
			continue
		}
		kept = append(kept, strings.TrimSpace(part))
	}
	return strings.Join(kept, ",")
}

// promLabelValue extracts one label's (unescaped) value from a raw label
// string like `le="255",job="x"`.
func promLabelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) == 2 && kv[0] == key {
			return strings.Trim(kv[1], `"`)
		}
	}
	return ""
}

// CheckCounterMonotonic compares two scrapes of the same process (prev
// taken before cur) and reports counter series that went backwards —
// the non-monotonicity lint `obscheck -prom A B` applies. Series present
// in only one scrape are fine (registration happens lazily).
func CheckCounterMonotonic(prev, cur *PromScrape) []string {
	var problems []string
	for _, name := range cur.Order {
		f := cur.Families[name]
		if f.Type != "counter" {
			continue
		}
		pf := prev.Family(name)
		if pf == nil {
			continue
		}
		prevVals := make(map[string]float64, len(pf.Samples))
		for _, s := range pf.Samples {
			prevVals[s.Series()] = s.Value
		}
		for _, s := range f.Samples {
			if pv, ok := prevVals[s.Series()]; ok && s.Value < pv {
				problems = append(problems, fmt.Sprintf("counter %s: went backwards %v -> %v", s.Series(), pv, s.Value))
			}
		}
	}
	return problems
}
