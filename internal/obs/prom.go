package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry, plus
// a parser and linter for it. The writer makes /metrics scrapeable by any
// standard collector; the parser/linter back `obscheck -prom`, the gate
// behind `make obs-quality-smoke`.
//
// Histograms translate exactly: the registry's power-of-two buckets count
// observations v with 2^(i-1) <= v < 2^i, so for the integer values we
// observe (nanoseconds, node counts, permille ratios) the cumulative count
// through bucket i is precisely the number of observations <= 2^i - 1.
// Those are the le bounds emitted — no approximation crosses the wire.

// PromContentType is the Content-Type of the exposition format served on
// /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered metric in exposition format,
// families sorted by name. Counters become TYPE counter; gauges and
// gauge-funcs TYPE gauge; histograms TYPE histogram with cumulative
// le-buckets, _sum, and _count. Empty buckets are elided (le="+Inf" always
// remains), keeping the page proportional to what was actually observed.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	type family struct {
		name, typ string
		write     func(io.Writer)
	}
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+len(r.histos))
	for name, c := range r.counters {
		c := c
		fams = append(fams, family{name, "counter", func(w io.Writer) {
			fmt.Fprintf(w, "%s %d\n", name, c.Value())
		}})
	}
	for name, g := range r.gauges {
		g := g
		fams = append(fams, family{name, "gauge", func(w io.Writer) {
			fmt.Fprintf(w, "%s %d\n", name, g.Value())
		}})
	}
	for name, fn := range r.funcs {
		fn := fn
		fams = append(fams, family{name, "gauge", func(w io.Writer) {
			v := fn()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			fmt.Fprintf(w, "%s %s\n", name, formatPromValue(v))
		}})
	}
	for name, h := range r.histos {
		h := h
		fams = append(fams, family{name, "histogram", func(w io.Writer) {
			writePromHistogram(w, name, h)
		}})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		text := help[f.name]
		if text == "" {
			text = "bddkit metric " + f.name
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapePromHelp(text))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.write(w)
	}
}

func writePromHistogram(w io.Writer, name string, h *Histogram) {
	counts := h.BucketCounts()
	var cum int64
	for i, c := range counts {
		cum += c
		if c == 0 {
			continue
		}
		// Upper bound of bucket i, inclusive for integer observations:
		// bucket 0 holds v <= 0, bucket i holds v < 2^i.
		var le int64
		if i > 0 {
			le = int64(1)<<uint(i) - 1
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// formatPromValue renders a float the way Prometheus clients expect:
// integral values without an exponent, everything else in shortest form.
func formatPromValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapePromHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// --- parsing -------------------------------------------------------------

// PromSample is one series sample: the family name, the raw label string
// (sorted as written, "" when unlabeled), and the value.
type PromSample struct {
	Name   string
	Labels string
	Value  float64
	Line   int
}

// Series returns the full series identity, name plus labels.
func (s PromSample) Series() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// PromFamily is one metric family: its declared type/help and samples in
// file order. For histograms the samples span the _bucket/_sum/_count
// suffixed series.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// PromScrape is a parsed exposition page.
type PromScrape struct {
	Families map[string]*PromFamily
	Order    []string // family names in first-appearance order
}

// Family returns the named family, nil when absent.
func (p *PromScrape) Family(name string) *PromFamily {
	if p == nil {
		return nil
	}
	return p.Families[name]
}

// Value returns the value of an unlabeled series (or the first sample with
// the given name), with ok=false when the series is absent. Histogram
// sub-series are addressed by their suffixed name (e.g. "foo_count").
func (p *PromScrape) Value(name string) (float64, bool) {
	fam := p.Family(familyOf(name))
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// familyOf strips the histogram sub-series suffixes so _bucket/_sum/_count
// samples group under their family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParsePrometheus parses text exposition format. It is strict about line
// shape (the linter depends on it) but does not validate semantics — that
// is LintPrometheus's job.
func ParsePrometheus(r io.Reader) (*PromScrape, error) {
	scrape := &PromScrape{Families: make(map[string]*PromFamily)}
	fam := func(name string) *PromFamily {
		f, ok := scrape.Families[name]
		if !ok {
			f = &PromFamily{Name: name}
			scrape.Families[name] = f
			scrape.Order = append(scrape.Order, name)
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			f := fam(fields[2])
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, f.Name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, f.Name)
				}
				f.Type = fields[3]
			} else {
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, f.Name)
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				} else {
					f.Help = " " // present but empty
				}
			}
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		sample.Line = lineNo
		f := fam(familyOf(sample.Name))
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return scrape, nil
}

func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("malformed labels in %q", line)
		}
		s.Name = rest[:i]
		s.Labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// --- linting -------------------------------------------------------------

// LintPrometheus checks one parsed scrape for exposition-format problems
// and returns them as human-readable strings (empty = clean):
//
//   - duplicate series (same name + label set appearing twice),
//   - samples whose family has no TYPE or no HELP line,
//   - unknown TYPE values,
//   - negative or non-finite counter values,
//   - histograms whose le-buckets are non-cumulative, lack le="+Inf", or
//     disagree with their _count.
func LintPrometheus(scrape *PromScrape) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	for _, name := range scrape.Order {
		f := scrape.Families[name]
		if len(f.Samples) == 0 {
			addf("family %s: HELP/TYPE declared but no samples", name)
			continue
		}
		if f.Type == "" {
			addf("family %s: missing # TYPE line", name)
		}
		if f.Help == "" {
			addf("family %s: missing # HELP line", name)
		}
		switch f.Type {
		case "", "counter", "gauge", "histogram", "summary", "untyped":
		default:
			addf("family %s: unknown type %q", name, f.Type)
		}
		seen := make(map[string]int)
		for _, s := range f.Samples {
			key := s.Series()
			if prev, dup := seen[key]; dup {
				addf("series %s: duplicate sample (lines %d and %d)", key, prev, s.Line)
			}
			seen[key] = s.Line
		}
		if f.Type == "counter" {
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
					addf("counter %s: invalid value %v (line %d)", s.Series(), s.Value, s.Line)
				}
			}
		}
		if f.Type == "histogram" {
			problems = append(problems, lintPromHistogram(f)...)
		}
	}
	return problems
}

func lintPromHistogram(f *PromFamily) []string {
	var problems []string
	var (
		prevCum   float64
		prevLe    = math.Inf(-1)
		infCum    = math.NaN()
		count     = math.NaN()
		sawBucket bool
	)
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			sawBucket = true
			leStr := promLabelValue(s.Labels, "le")
			if leStr == "" {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket without le label (line %d)", f.Name, s.Line))
				continue
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					problems = append(problems, fmt.Sprintf("histogram %s: bad le %q (line %d)", f.Name, leStr, s.Line))
					continue
				}
				le = v
			}
			if le <= prevLe {
				problems = append(problems, fmt.Sprintf("histogram %s: le %q out of order (line %d)", f.Name, leStr, s.Line))
			}
			if s.Value < prevCum {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket le=%q count %v below previous %v (line %d)",
					f.Name, leStr, s.Value, prevCum, s.Line))
			}
			prevLe, prevCum = le, s.Value
			if math.IsInf(le, 1) {
				infCum = s.Value
			}
		case f.Name + "_count":
			count = s.Value
		}
	}
	if sawBucket && math.IsNaN(infCum) {
		problems = append(problems, fmt.Sprintf("histogram %s: missing le=\"+Inf\" bucket", f.Name))
	}
	if !math.IsNaN(infCum) && !math.IsNaN(count) && infCum != count {
		problems = append(problems, fmt.Sprintf("histogram %s: le=\"+Inf\" bucket %v != _count %v", f.Name, infCum, count))
	}
	return problems
}

// promLabelValue extracts one label's (unescaped) value from a raw label
// string like `le="255",job="x"`.
func promLabelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) == 2 && kv[0] == key {
			return strings.Trim(kv[1], `"`)
		}
	}
	return ""
}

// CheckCounterMonotonic compares two scrapes of the same process (prev
// taken before cur) and reports counter series that went backwards —
// the non-monotonicity lint `obscheck -prom A B` applies. Series present
// in only one scrape are fine (registration happens lazily).
func CheckCounterMonotonic(prev, cur *PromScrape) []string {
	var problems []string
	for _, name := range cur.Order {
		f := cur.Families[name]
		if f.Type != "counter" {
			continue
		}
		pf := prev.Family(name)
		if pf == nil {
			continue
		}
		prevVals := make(map[string]float64, len(pf.Samples))
		for _, s := range pf.Samples {
			prevVals[s.Series()] = s.Value
		}
		for _, s := range f.Samples {
			if pv, ok := prevVals[s.Series()]; ok && s.Value < pv {
				problems = append(problems, fmt.Sprintf("counter %s: went backwards %v -> %v", s.Series(), pv, s.Value))
			}
		}
	}
	return problems
}
