package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// parFixture is a hand-built v2 trace of one parallel operation: a 100ms
// parent span whose two children ran on different workers and OVERLAP in
// wall time (80ms and 70ms — 150ms of child time inside a 100ms parent),
// plus the stop-the-world events a 4-worker run emits. Parent started at
// 12:00:00.000; children end before it.
const parFixture = `{"ts":"2026-08-08T12:00:00.080Z","v":2,"kind":"span","name":"op.child","id":2,"parent":1,"dur_ns":80000000}
{"ts":"2026-08-08T12:00:00.090Z","v":2,"kind":"span","name":"op.child","id":3,"parent":1,"dur_ns":70000000}
{"ts":"2026-08-08T12:00:00.050Z","v":2,"kind":"event","name":"bdd.stw","id":4,"parent":1,"attrs":{"cause":"gc","workers":4,"wait_ns":1000000,"pause_ns":10000000}}
{"ts":"2026-08-08T12:00:00.070Z","v":2,"kind":"event","name":"bdd.stw","id":5,"parent":1,"attrs":{"cause":"reorder","workers":4,"wait_ns":0,"pause_ns":5000000}}
{"ts":"2026-08-08T12:00:00.100Z","v":2,"kind":"span","name":"op.parent","id":1,"dur_ns":100000000}
`

// TestRollupOverlappingWorkerSpans checks self-time attribution when child
// spans from concurrent workers overlap: the parent's self time must clamp
// to zero rather than double-count (or go negative), and the wall time must
// count the parent once, not the sum of overlapping children.
func TestRollupOverlappingWorkerSpans(t *testing.T) {
	a, err := AnalyzeTrace(strings.NewReader(parFixture))
	if err != nil {
		t.Fatalf("AnalyzeTrace: %v", err)
	}
	var parent, child *Rollup
	for i := range a.Rollups {
		switch a.Rollups[i].Name {
		case "op.parent":
			parent = &a.Rollups[i]
		case "op.child":
			child = &a.Rollups[i]
		}
	}
	if parent == nil || child == nil {
		t.Fatalf("missing rollups: %+v", a.Rollups)
	}
	if parent.Total != 100000000 {
		t.Errorf("parent total = %d, want 100ms", parent.Total)
	}
	if parent.Self != 0 {
		t.Errorf("parent self = %d with overlapping children, want clamp to 0", parent.Self)
	}
	if child.Total != 150000000 || child.Count != 2 {
		t.Errorf("child rollup = total %d count %d, want 150ms over 2 spans", child.Total, child.Count)
	}
	if a.WallNS != 100000000 {
		t.Errorf("WallNS = %d, want the 100ms root span only", a.WallNS)
	}
	// Envelope: earliest start is the parent (12:00:00.000), last emission
	// the parent end (12:00:00.100).
	if a.EnvelopeNS != 100000000 {
		t.Errorf("EnvelopeNS = %d, want 100ms", a.EnvelopeNS)
	}
}

// TestAmdahlFromTrace checks the serial-fraction math on the fixture: 15ms
// of STW pause inside a 100ms envelope is s = 0.15, max speedup 1/0.15, and
// the 4-worker prediction 1/(s + (1-s)/4).
func TestAmdahlFromTrace(t *testing.T) {
	a, err := AnalyzeTrace(strings.NewReader(parFixture))
	if err != nil {
		t.Fatalf("AnalyzeTrace: %v", err)
	}
	if a.Workers != 4 {
		t.Errorf("Workers = %d, want 4 from bdd.stw attrs", a.Workers)
	}
	if len(a.STW) != 2 {
		t.Fatalf("STW causes = %+v, want gc and reorder", a.STW)
	}
	if a.STW[0].Cause != "gc" || a.STW[0].PauseNS != 10000000 {
		t.Errorf("dominant cause = %+v, want gc at 10ms", a.STW[0])
	}

	r := a.Amdahl()
	if r.SerialNS != 15000000 || r.WaitNS != 1000000 {
		t.Errorf("serial %d wait %d, want 15ms / 1ms", r.SerialNS, r.WaitNS)
	}
	if math.Abs(r.SerialFraction-0.15) > 1e-9 {
		t.Errorf("SerialFraction = %v, want 0.15", r.SerialFraction)
	}
	if math.Abs(r.MaxSpeedup-1/0.15) > 1e-6 {
		t.Errorf("MaxSpeedup = %v, want %v", r.MaxSpeedup, 1/0.15)
	}
	want := 1 / (0.15 + 0.85/4)
	if math.Abs(r.PredictedAtW-want) > 1e-6 {
		t.Errorf("PredictedAtW = %v, want %v", r.PredictedAtW, want)
	}

	var buf bytes.Buffer
	r.Write(&buf)
	out := buf.String()
	for _, want := range []string{"gc", "reorder", "implied max speedup", "at 4 workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("Amdahl report missing %q:\n%s", want, out)
		}
	}
}

// TestAmdahlEmptyTrace checks a serial trace (no STW events) degrades to a
// notice, not a division by zero.
func TestAmdahlEmptyTrace(t *testing.T) {
	a, err := AnalyzeTrace(strings.NewReader(
		`{"ts":"2026-08-08T12:00:00.010Z","kind":"span","name":"op","id":1,"dur_ns":10000000}` + "\n"))
	if err != nil {
		t.Fatalf("AnalyzeTrace: %v", err)
	}
	r := a.Amdahl()
	if r.SerialFraction != 0 || r.MaxSpeedup != 0 {
		t.Errorf("empty Amdahl = %+v, want zero serial fraction", r)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "no bdd.stw events") {
		t.Errorf("report should note the absence of STW events:\n%s", buf.String())
	}
}

// TestValidateSchemaVersions checks the v2 read path: legacy v1 lines (no
// "v") pass, v2 lines pass, future versions are rejected, and the v2 event
// vocabulary is checked attribute-by-attribute.
func TestValidateSchemaVersions(t *testing.T) {
	sum, err := ValidateJSONL(strings.NewReader(parFixture))
	if err != nil {
		t.Fatalf("v2 fixture rejected: %v", err)
	}
	if sum.Version != 2 {
		t.Errorf("Version = %d, want 2", sum.Version)
	}
	if sum.ByName["bdd.stw"] != 2 {
		t.Errorf("bdd.stw count = %d, want 2", sum.ByName["bdd.stw"])
	}

	legacy := `{"ts":"2026-08-08T12:00:00Z","kind":"span","name":"op","id":1,"dur_ns":5}` + "\n"
	if sum, err = ValidateJSONL(strings.NewReader(legacy)); err != nil {
		t.Fatalf("legacy v1 line rejected: %v", err)
	}
	if sum.Version != 0 {
		t.Errorf("legacy Version = %d, want 0", sum.Version)
	}

	future := `{"ts":"2026-08-08T12:00:00Z","v":99,"kind":"span","name":"op","id":1,"dur_ns":5}` + "\n"
	if _, err = ValidateJSONL(strings.NewReader(future)); err == nil {
		t.Fatal("future schema version accepted")
	}

	bad := []string{
		`{"ts":"2026-08-08T12:00:00Z","v":2,"kind":"event","name":"bdd.stw","id":1,"attrs":{"pause_ns":5}}`,
		`{"ts":"2026-08-08T12:00:00Z","v":2,"kind":"event","name":"bdd.stw","id":1,"attrs":{"cause":"gc"}}`,
		`{"ts":"2026-08-08T12:00:00Z","v":2,"kind":"event","name":"bdd.stall","id":1,"attrs":{"stuck_ns":5}}`,
		`{"ts":"2026-08-08T12:00:00Z","v":2,"kind":"event","name":"bdd.contention","id":1,"attrs":{"count":3}}`,
		`{"ts":"2026-08-08T12:00:00Z","v":2,"kind":"event","name":"bdd.contention","id":1,"attrs":{"subsystem":"unique","count":-1}}`,
	}
	for _, line := range bad {
		if _, err := ValidateJSONL(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("malformed v2 event accepted: %s", line)
		}
	}
}
