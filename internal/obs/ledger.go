package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Operation ledger: the quality-of-result half of the observability layer.
// Every top-level approximation, decomposition, and reachability iteration
// emits one OpRecord describing what the operation traded — DAG size in
// and out, minterm mass retained, density before and after, how close the
// run is to its node budget, and the attributed time/GC/STW cost. Records
// flow three ways:
//
//   - into the trace as schema-v3 "quality.op" events (and thereby into
//     the flight recorder, so a budget-abort dump carries the last
//     quality decision made before the run died),
//   - into per-operator aggregates (count, aborts, nodes shed, mass
//     retained and duration histograms) served by /quality and rendered
//     by cmd/bddtop, and
//   - into the metrics registry (quality_* counters/gauges/histograms),
//     so the Prometheus endpoint exposes the same numbers to scrapers.
//
// Like the tracer, the ledger is process-global (obs.L) because the
// operators live in library packages where threading a handle through
// every call would be invasive. A disarmed ledger costs one atomic load
// per Enabled() check and instrumentation sites gate all attribute
// computation (DagSize, MintermFraction sweeps) behind it.

// OpRecord is one ledger entry. Masses are minterm fractions of the
// operation's ambient space (the full variable space for combinational
// operators, the state space for reach iterations); densities are mass
// per node — proportional to the paper's minterms-per-node measure for a
// fixed variable count, and comparable before/after within one record.
type OpRecord struct {
	OpID uint64 `json:"op_id"`
	TS   string `json:"ts,omitempty"` // RFC3339Nano, stamped by Record
	Kind string `json:"kind"`         // "approx", "decomp", "reach"
	Op   string `json:"op"`           // "rua", "hb", "sp", "ua", "biased", "c1", "c2", "conj", "disj", "mcmillan", "bfs", "hd", ...
	Iter int    `json:"iter,omitempty"`

	SizeIn  int `json:"size_in"`
	SizeOut int `json:"size_out"`

	MassIn       float64 `json:"mass_in"`
	MassOut      float64 `json:"mass_out"`
	MassRetained float64 `json:"mass_retained"` // MassOut/MassIn; 1 when MassIn == 0
	DensityIn    float64 `json:"density_in"`
	DensityOut   float64 `json:"density_out"`

	Threshold int `json:"threshold,omitempty"` // node budget the operator aimed at (0 = none)

	// Budget pressure at record time: the manager's armed live-node
	// ceiling, the live count against it, and the headroom fraction
	// (1 = unconstrained or far from the limit, 0 = at the limit).
	BudgetLimit    int     `json:"budget_limit,omitempty"`
	BudgetLive     int     `json:"budget_live,omitempty"`
	BudgetHeadroom float64 `json:"budget_headroom"`

	DurNS int64 `json:"dur_ns"`
	GCNS  int64 `json:"gc_ns,omitempty"`  // GC time attributed to this operation
	STWNS int64 `json:"stw_ns,omitempty"` // stop-the-world time attributed to this operation

	Abort string `json:"abort,omitempty"` // abort/recovery cause ("" = clean)
}

// Key returns the aggregation key, "kind.op".
func (r *OpRecord) Key() string { return r.Kind + "." + r.Op }

// OpAgg is the per-operator aggregate served by /quality.
type OpAgg struct {
	Key      string            `json:"key"` // "approx.rua", "reach.hd", ...
	Count    int64             `json:"count"`
	Aborts   int64             `json:"aborts,omitempty"`
	NodesIn  int64             `json:"nodes_in"`  // summed input DAG sizes
	NodesOut int64             `json:"nodes_out"` // summed result DAG sizes
	MassSum  float64           `json:"mass_retained_sum"`
	MassMin  float64           `json:"mass_retained_min"`
	Retained HistogramSnapshot `json:"retained_permille"` // mass retained, in permille
	Dur      HistogramSnapshot `json:"dur_ns"`
}

// MassMean returns the mean mass-retained ratio.
func (a *OpAgg) MassMean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.MassSum / float64(a.Count)
}

// NodesShed returns the total nodes given up (negative when results grew).
func (a *OpAgg) NodesShed() int64 { return a.NodesIn - a.NodesOut }

type ledgerAgg struct {
	count, aborts     int64
	nodesIn, nodesOut int64
	massSum, massMin  float64
	retained          *Histogram // permille, registry-owned when armed
	dur               *Histogram // ns, registry-owned when armed
}

// Ledger accumulates OpRecords. The zero value is a valid, disarmed
// ledger; Session arms the process-global L.
type Ledger struct {
	enabled atomic.Bool

	mu      sync.Mutex
	reg     *Registry
	tracer  *Tracer
	nextID  uint64
	aggs    map[string]*ledgerAgg
	last    OpRecord
	hasLast bool
	ops     *Counter
	aborts  *Counter
}

// L is the process-global ledger, armed by obs.Config.Start alongside the
// tracer. Library instrumentation calls obs.L.Enabled() / obs.L.Record.
var L = &Ledger{}

// Enabled reports whether records are being accepted; one atomic load, so
// hot code can gate its attribute computation on it.
func (l *Ledger) Enabled() bool { return l != nil && l.enabled.Load() }

// arm points the ledger at a registry and tracer and starts accepting
// records. Counter/gauge names are registered immediately so a scrape
// before the first operation still sees the series.
func (l *Ledger) arm(reg *Registry, tracer *Tracer) {
	l.mu.Lock()
	l.reg = reg
	l.tracer = tracer
	l.aggs = make(map[string]*ledgerAgg)
	l.hasLast = false
	l.ops = reg.Counter("quality_ops_total")
	l.aborts = reg.Counter("quality_op_aborts_total")
	reg.SetHelp("quality_ops_total", "operations recorded by the quality ledger")
	reg.SetHelp("quality_op_aborts_total", "ledger operations that ended in an abort")
	reg.GaugeFunc("quality_last_mass_retained", func() float64 {
		rec, ok := l.Last()
		if !ok {
			return 1
		}
		return rec.MassRetained
	})
	reg.SetHelp("quality_last_mass_retained", "mass-retained ratio of the most recent ledger operation")
	l.mu.Unlock()
	l.enabled.Store(true)
}

// disarm stops accepting records and drops the registry/tracer wiring.
func (l *Ledger) disarm() {
	l.enabled.Store(false)
	l.mu.Lock()
	l.reg = nil
	l.tracer = nil
	l.mu.Unlock()
}

// Record files one operation. The ledger assigns OpID and TS, derives
// MassRetained and BudgetHeadroom when the caller left them zero, updates
// the per-operator aggregates and registry metrics, and emits the
// quality.op trace event. No-op when disarmed.
func (l *Ledger) Record(rec OpRecord) {
	if !l.Enabled() {
		return
	}
	if rec.MassRetained == 0 {
		if rec.MassIn > 0 {
			rec.MassRetained = rec.MassOut / rec.MassIn
		} else {
			rec.MassRetained = 1
		}
	}
	if rec.BudgetHeadroom == 0 {
		rec.BudgetHeadroom = headroom(rec.BudgetLimit, rec.BudgetLive)
	}
	rec.TS = time.Now().Format(time.RFC3339Nano)

	l.mu.Lock()
	if !l.enabled.Load() { // disarmed while we were formatting
		l.mu.Unlock()
		return
	}
	l.nextID++
	rec.OpID = l.nextID
	key := rec.Key()
	agg, ok := l.aggs[key]
	if !ok {
		agg = &ledgerAgg{massMin: rec.MassRetained}
		if l.reg != nil {
			agg.retained = l.reg.Histogram("quality_" + rec.Kind + "_" + rec.Op + "_mass_permille")
			agg.dur = l.reg.Histogram("quality_" + rec.Kind + "_" + rec.Op + "_dur_ns")
		} else {
			agg.retained, agg.dur = &Histogram{}, &Histogram{}
		}
		l.aggs[key] = agg
	}
	agg.count++
	agg.nodesIn += int64(rec.SizeIn)
	agg.nodesOut += int64(rec.SizeOut)
	agg.massSum += rec.MassRetained
	if rec.MassRetained < agg.massMin {
		agg.massMin = rec.MassRetained
	}
	agg.retained.Observe(int64(rec.MassRetained * 1000))
	agg.dur.Observe(rec.DurNS)
	if rec.Abort != "" {
		agg.aborts++
		l.aborts.Inc()
	}
	l.ops.Inc()
	l.last = rec
	l.hasLast = true
	tracer := l.tracer
	l.mu.Unlock()

	tracer.Event("quality.op",
		Str("op_kind", rec.Kind), Str("op", rec.Op),
		I64("op_id", int64(rec.OpID)),
		Int("iter", rec.Iter),
		Int("size_in", rec.SizeIn), Int("size_out", rec.SizeOut),
		F64("mass_in", rec.MassIn), F64("mass_out", rec.MassOut),
		F64("mass_retained", rec.MassRetained),
		F64("density_in", rec.DensityIn), F64("density_out", rec.DensityOut),
		Int("threshold", rec.Threshold),
		Int("budget_limit", rec.BudgetLimit), Int("budget_live", rec.BudgetLive),
		F64("budget_headroom", rec.BudgetHeadroom),
		I64("dur_ns", rec.DurNS), I64("gc_ns", rec.GCNS), I64("stw_ns", rec.STWNS),
		Str("abort", rec.Abort))
}

// headroom maps (limit, live) to the remaining budget fraction.
func headroom(limit, live int) float64 {
	if limit <= 0 {
		return 1
	}
	h := 1 - float64(live)/float64(limit)
	if h < 0 {
		return 0
	}
	return h
}

// Last returns the most recent record, if any.
func (l *Ledger) Last() (OpRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last, l.hasLast
}

// LedgerSnapshot is the /quality payload: totals, the most recent record,
// and the per-operator aggregates sorted by key.
type LedgerSnapshot struct {
	Ops    int64     `json:"ops"`
	Aborts int64     `json:"aborts"`
	Last   *OpRecord `json:"last,omitempty"`
	PerOp  []OpAgg   `json:"per_op"`
}

// Snapshot summarizes the ledger. Safe on a disarmed ledger (empty
// snapshot).
func (l *Ledger) Snapshot() LedgerSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	var snap LedgerSnapshot
	if l.hasLast {
		rec := l.last
		snap.Last = &rec
	}
	for key, agg := range l.aggs {
		snap.Ops += agg.count
		snap.Aborts += agg.aborts
		snap.PerOp = append(snap.PerOp, OpAgg{
			Key:      key,
			Count:    agg.count,
			Aborts:   agg.aborts,
			NodesIn:  agg.nodesIn,
			NodesOut: agg.nodesOut,
			MassSum:  agg.massSum,
			MassMin:  agg.massMin,
			Retained: agg.retained.Snapshot(),
			Dur:      agg.dur.Snapshot(),
		})
	}
	sort.Slice(snap.PerOp, func(i, j int) bool { return snap.PerOp[i].Key < snap.PerOp[j].Key })
	return snap
}

// WriteReport renders the per-operator quality table as text — the
// end-of-run summary the cmds print with -metrics, and the body of the
// bddtop quality panel.
func (s LedgerSnapshot) WriteReport(w io.Writer) {
	if s.Ops == 0 {
		fmt.Fprintln(w, "quality ledger: no operations recorded")
		return
	}
	fmt.Fprintf(w, "quality ledger: %d operations, %d aborted\n", s.Ops, s.Aborts)
	fmt.Fprintf(w, "%-16s %6s %6s %9s %9s %9s %12s %12s\n",
		"op", "count", "abort", "mass-mean", "mass-min", "mass-p50", "nodes-shed", "time")
	for _, a := range s.PerOp {
		fmt.Fprintf(w, "%-16s %6d %6d %9.4f %9.4f %9.3f %12d %12v\n",
			a.Key, a.Count, a.Aborts, a.MassMean(), a.MassMin,
			float64(a.Retained.P50)/1000, a.NodesShed(),
			time.Duration(a.Dur.Sum).Round(time.Microsecond))
	}
}
