// Package obs is the unified observability layer: a metrics registry
// (counters, gauges, histograms with atomic fast paths), a structured span
// tracer writing JSON lines, a flight recorder keeping the most recent
// trace events for post-mortem dumps, and a live HTTP endpoint serving
// pprof, expvar, and plaintext metric snapshots.
//
// The package is engineered so that a fully disabled configuration (no
// -trace, no -metrics, no -obs) costs essentially nothing: tracer calls
// reduce to one atomic load, metric objects are plain atomics the hot
// paths never touch, and the registry only does work when a snapshot is
// requested.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric with an atomic fast path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative only to correct over-counting; counters
// are reported as monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric with an atomic fast path.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax records n only if it exceeds the current value (high-water mark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0
// and v == 1 lands in bucket 1). 48 buckets cover nanosecond durations up
// to ~3 days and node counts up to 2^47.
const histBuckets = 48

// Histogram accumulates a distribution in power-of-two buckets with an
// atomic fast path per observation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Non-positive values clamp to zero: they land
// in bucket 0 and contribute nothing to the sum, so a caller observing a
// clock that stepped backwards cannot corrupt the distribution.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
	h.buckets[bucketOf(v)].Add(1)
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistogramSnapshot summarizes a histogram at one point in time.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot summarizes the distribution. Quantiles are bucket upper bounds,
// so they are upper estimates with power-of-two resolution, clamped to the
// maximum actually observed: with few samples the quantile bucket is often
// the max's own bucket, whose upper bound can exceed every observation
// (one sample of value 5 lands in the 4..7 bucket and would otherwise
// report P95 = 8 — an impossible latency no one ever paid).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Value(),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	var cum int64
	q50, q90, q95, q99 := false, false, false, false
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		bound := int64(1) << uint(i)
		if i == 0 {
			bound = 0
		}
		if i == histBuckets-1 {
			// The last bucket absorbs everything beyond its nominal range,
			// so its only honest upper bound is the observed maximum — a
			// single observation of 2^55 must report P50 = 2^55, not 2^47.
			bound = s.Max
		}
		if bound > s.Max {
			bound = s.Max
		}
		if !q50 && float64(cum) >= 0.50*float64(s.Count) && s.Count > 0 {
			s.P50, q50 = bound, true
		}
		if !q90 && float64(cum) >= 0.90*float64(s.Count) && s.Count > 0 {
			s.P90, q90 = bound, true
		}
		if !q95 && float64(cum) >= 0.95*float64(s.Count) && s.Count > 0 {
			s.P95, q95 = bound, true
		}
		if !q99 && float64(cum) >= 0.99*float64(s.Count) && s.Count > 0 {
			s.P99, q99 = bound, true
		}
	}
	return s
}

// BucketCounts returns the per-bucket observation counts (not cumulative):
// slot 0 counts v <= 0, slot i counts 2^(i-1) <= v < 2^i. The Prometheus
// exposition writer turns these into cumulative le-buckets.
func (h *Histogram) BucketCounts() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry names and owns a set of metrics. Registration takes a lock;
// updates through the returned metric objects are lock-free. Metric names
// use snake_case with a subsystem prefix (see DESIGN.md "Observability"
// for the catalog).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	histos   map[string]*Histogram
	funcs    map[string]func() float64
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		histos:   make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
		help:     make(map[string]string),
	}
}

// SetHelp attaches a HELP string to a metric name for the Prometheus
// exposition writer. Metrics without help text get a generic line, so
// calling this is optional.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histos[name]
	if !ok {
		h = &Histogram{}
		r.histos[name] = h
	}
	return h
}

// GaugeFunc registers a computed gauge: fn is evaluated at snapshot time
// only, so publishing derived values (hit rates, live-node counts read off
// a manager) costs nothing on the hot path. Re-registering a name replaces
// the function.
//
// fn runs on whatever goroutine requests the snapshot; functions that read
// an actively mutating structure (a live BDD manager) return advisory
// values and must tolerate torn reads.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot evaluates every metric and returns a flat name → value map.
// Histograms contribute a HistogramSnapshot; everything else a number.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histos)+len(r.funcs))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.histos {
		out[n] = h.Snapshot()
	}
	for n, fn := range r.funcs {
		v := fn()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // snapshots must stay JSON-encodable and plottable
		}
		out[n] = v
	}
	return out
}

// WriteText writes the snapshot as sorted "name value" lines, the format
// served by the live endpoint's /metrics page.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		switch v := snap[n].(type) {
		case HistogramSnapshot:
			fmt.Fprintf(w, "%s_count %d\n", n, v.Count)
			fmt.Fprintf(w, "%s_sum %d\n", n, v.Sum)
			fmt.Fprintf(w, "%s_mean %.6g\n", n, v.Mean)
			fmt.Fprintf(w, "%s_max %d\n", n, v.Max)
			fmt.Fprintf(w, "%s_p50 %d\n", n, v.P50)
			fmt.Fprintf(w, "%s_p90 %d\n", n, v.P90)
			fmt.Fprintf(w, "%s_p95 %d\n", n, v.P95)
			fmt.Fprintf(w, "%s_p99 %d\n", n, v.P99)
		case float64:
			fmt.Fprintf(w, "%s %.6g\n", n, v)
		default:
			fmt.Fprintf(w, "%s %v\n", n, v)
		}
	}
}
