package obs

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Structured span tracer. Spans nest (a span begun while another is open
// becomes its child), carry wall-time and optional node-delta attribution,
// and are emitted as one JSON line each when they end. Instant events emit
// a line immediately and attach to the innermost open span.
//
// Every emission goes to the JSONL sink (when set) and to the flight
// recorder (when set); either alone activates the tracer. A disabled
// tracer costs one atomic load per call: Begin returns nil and the nil
// *Span methods are no-ops, so instrumented code needs no guards.
//
// A Tracer serializes its emissions with a mutex, but span nesting is
// tracked in a single stack: the intended discipline is one tracer per
// logical thread of work (the BDD engines are single-goroutine, so in
// practice one per process).

// Attr is one key/value attribute on a span or event.
type Attr struct {
	Key string
	Val any
}

// Int, I64, F64, Str, and Bool build attributes.
func Int(k string, v int) Attr           { return Attr{k, int64(v)} }
func I64(k string, v int64) Attr         { return Attr{k, v} }
func F64(k string, v float64) Attr       { return Attr{k, v} }
func Str(k, v string) Attr               { return Attr{k, v} }
func Bool(k string, v bool) Attr         { return Attr{k, v} }
func Dur(k string, v time.Duration) Attr { return Attr{k, v.Nanoseconds()} }

// Event is the JSONL record written for every span end and instant event.
type Event struct {
	TS     string         `json:"ts"`                    // RFC3339Nano wall time of emission
	V      int            `json:"v,omitempty"`           // schema version; 0 = legacy v1
	Kind   string         `json:"kind"`                  // "span" or "event"
	Name   string         `json:"name"`                  // dotted phase name, e.g. "reach.iteration"
	ID     uint64         `json:"id"`                    // unique per tracer
	Parent uint64         `json:"parent"`                // enclosing span id (0 = root)
	DurNS  int64          `json:"dur_ns"`                // span wall time; 0 for events
	Nodes0 int            `json:"nodes_start,omitempty"` // live nodes at span begin
	Nodes1 int            `json:"nodes_end,omitempty"`   // live nodes at span end
	Delta  int            `json:"nodes_delta,omitempty"` // Nodes1 - Nodes0
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Tracer emits spans and events. The zero value is a valid, disabled
// tracer.
type Tracer struct {
	active atomic.Bool

	mu     sync.Mutex
	sink   io.Writer
	flight *FlightRecorder
	stack  []openSpan // open spans, innermost last
	nextID uint64
	err    error // first sink write error (reported by Err)

	// LiveNodes, when set, is sampled at span begin and end to attribute
	// node growth to phases (typically Manager.NodeCount of the active
	// BDD manager). It runs under the tracer mutex.
	LiveNodes func() int
}

// NewTracer returns a tracer writing JSON lines to w (which may be nil for
// a flight-recorder-only tracer; see SetFlight).
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{}
	t.SetSink(w)
	return t
}

// SetSink installs (or, with nil, removes) the JSONL writer.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	t.sink = w
	t.active.Store(t.sink != nil || t.flight != nil)
	t.mu.Unlock()
}

// SetFlight installs (or, with nil, removes) the flight recorder that
// receives a copy of every emitted line.
func (t *Tracer) SetFlight(fr *FlightRecorder) {
	t.mu.Lock()
	t.flight = fr
	t.active.Store(t.sink != nil || t.flight != nil)
	t.mu.Unlock()
}

// Flight returns the attached flight recorder, if any.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flight
}

// Enabled reports whether emissions currently go anywhere. It is nil-safe
// and costs one atomic load, making it cheap enough to guard attribute
// computation in hot code.
func (t *Tracer) Enabled() bool {
	return t != nil && t.active.Load()
}

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// openSpan is one frame of the tracer's open-span stack. Keeping the name
// alongside the id lets crash paths (flight-recorder dumps on budget
// aborts) report *where* the program was — the span stack — even though
// open spans have not emitted their records yet.
type openSpan struct {
	id   uint64
	name string
}

// StackString returns the open-span stack, outermost first, joined by
// ">" (e.g. "reach.iteration>reach.image"). Empty when no span is open or
// the tracer is disabled. Nil-safe.
func (t *Tracer) StackString() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, f := range t.stack {
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(f.name)
	}
	return b.String()
}

// Span is an open span. A nil *Span (returned by a disabled tracer) is
// valid and all its methods are no-ops.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	nodes0 int
	attrs  []Attr
}

// Begin opens a span as a child of the innermost open span. It returns nil
// when the tracer is disabled.
func (t *Tracer) Begin(name string, attrs ...Attr) *Span {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{t: t, id: t.nextID, name: name, start: time.Now(), attrs: attrs}
	if n := len(t.stack); n > 0 {
		s.parent = t.stack[n-1].id
	}
	if t.LiveNodes != nil {
		s.nodes0 = t.LiveNodes()
	}
	t.stack = append(t.stack, openSpan{id: s.id, name: name})
	t.mu.Unlock()
	return s
}

// End closes the span, appending attrs, and emits its JSON line. Nil-safe.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.t
	end := time.Now()
	t.mu.Lock()
	// Pop this span (and, defensively, anything opened after it that was
	// never closed — a panic unwound past those Ends).
	for n := len(t.stack); n > 0; n-- {
		if t.stack[n-1].id == s.id {
			t.stack = t.stack[:n-1]
			break
		}
	}
	ev := Event{
		TS:     end.Format(time.RFC3339Nano),
		Kind:   "span",
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		DurNS:  end.Sub(s.start).Nanoseconds(),
		Attrs:  attrMap(append(s.attrs, attrs...)),
	}
	if t.LiveNodes != nil {
		ev.Nodes0 = s.nodes0
		ev.Nodes1 = t.LiveNodes()
		ev.Delta = ev.Nodes1 - ev.Nodes0
	}
	t.emitLocked(&ev)
	t.mu.Unlock()
}

// Event emits an instant event attached to the innermost open span.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.nextID++
	ev := Event{
		TS:    time.Now().Format(time.RFC3339Nano),
		Kind:  "event",
		Name:  name,
		ID:    t.nextID,
		Attrs: attrMap(attrs),
	}
	if n := len(t.stack); n > 0 {
		ev.Parent = t.stack[n-1].id
	}
	t.emitLocked(&ev)
	t.mu.Unlock()
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

func (t *Tracer) emitLocked(ev *Event) {
	ev.V = TraceSchemaVersion
	line, err := json.Marshal(ev)
	if err != nil { // attribute values are numbers/strings/bools; should not happen
		if t.err == nil {
			t.err = err
		}
		return
	}
	line = append(line, '\n')
	if t.flight != nil {
		t.flight.Record(line)
	}
	if t.sink != nil {
		if _, err := t.sink.Write(line); err != nil && t.err == nil {
			t.err = err
		}
	}
}

// T is the process-global tracer used by library code (the bdd, approx,
// and decomp packages) where threading a tracer through every call would
// be invasive. It starts disabled; Config.Start arms it. Engines that
// support per-run tracers (reach) fall back to T when none is provided.
var T = &Tracer{}
