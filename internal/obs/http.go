package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Live profiling endpoint: -obs :6060 serves
//
//	/debug/pprof/...   net/http/pprof (CPU, heap, goroutine, trace, ...)
//	/debug/vars        expvar, including the registry under "bddkit"
//	/metrics           registry snapshot in Prometheus text exposition
//	/flight            current flight-recorder contents as JSONL
//	/quality           operation-ledger snapshot (per-operator loss) as JSON
//	/timeseries        time-sampler ring (gauge trajectories) as JSON
//	/parallel          parallel-engine telemetry as JSON
//	/                  an index of the above
//
// The endpoint is a debug surface: snapshots read live counters without
// synchronization and are advisory while the engines are running.
// /metrics is additionally a production surface — standard Prometheus
// scrapers consume it directly, and `obscheck -prom` lints it.

// expvar.Publish panics on duplicate names, and tests may start several
// sessions in one process, so the "bddkit" var is published once and
// re-pointed at the current session's registry.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("bddkit", expvar.Func(func() any {
			if reg := expvarReg.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
	})
}

// serve starts the endpoint on addr and returns a shutdown function that
// drains in-flight requests before closing (hard-close past the drain
// deadline) and reports how the teardown went.
func (s *Session) serve(addr string) (func() error, error) {
	publishExpvar(s.Registry)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		s.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if s.Flight != nil {
			s.Flight.WriteTo(w) //nolint:errcheck // client went away
		}
	})
	mux.HandleFunc("/quality", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(L.Snapshot()) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.mu.Lock()
		ts := s.timeSampler
		s.mu.Unlock()
		resp := struct {
			Interval string      `json:"interval"`
			Points   []TimePoint `json:"points"`
		}{Interval: s.sampleInterval().String()}
		if ts != nil {
			resp.Points = ts.History()
		}
		json.NewEncoder(w).Encode(resp) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/parallel", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.mu.Lock()
		mgr, sampler := s.mgr, s.sampler
		s.mu.Unlock()
		resp := struct {
			Workers int           `json:"workers"`
			Current *ParSnapshot  `json:"current,omitempty"`
			History []ParSnapshot `json:"history,omitempty"`
		}{}
		if mgr != nil {
			resp.Workers = mgr.Workers()
			cur := ParSnapshot{
				TS:        time.Now().Format(time.RFC3339Nano),
				LiveNodes: mgr.NodeCount(),
				Telemetry: mgr.ParTelemetry(),
			}
			resp.Current = &cur
		}
		if sampler != nil {
			resp.History = sampler.History()
		}
		json.NewEncoder(w).Encode(resp) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "bddkit observability endpoint\n\n"+
			"  /metrics      Prometheus text exposition (scrape me)\n"+
			"  /debug/vars   expvar JSON (registry under \"bddkit\")\n"+
			"  /debug/pprof  live profiling\n"+
			"  /flight       flight-recorder contents (JSONL)\n"+
			"  /quality      approximation-loss ledger snapshot (JSON)\n"+
			"  /timeseries   sampled gauge trajectories (JSON)\n"+
			"  /parallel     live parallel-engine telemetry (workers, contention, STW)\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: -obs %s: %w", addr, err)
	}
	s.BoundAddr = ln.Addr().String()
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // closed by the shutdown func
	drain := s.cfg.ShutdownDrain
	if drain <= 0 {
		drain = DefaultShutdownDrain
	}
	// Shutdown, not Close: a Prometheus scrape or a multi-second pprof
	// profile in flight when the workload finishes must complete intact.
	// Past the drain deadline (a wedged client, an endless profile) the
	// endpoint falls back to a hard Close so teardown cannot hang.
	return func() error {
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			closeErr := srv.Close()
			if closeErr != nil {
				return fmt.Errorf("obs: endpoint shutdown: %w (hard close: %v)", err, closeErr)
			}
			return fmt.Errorf("obs: endpoint shutdown: %w", err)
		}
		return nil
	}, nil
}
