package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestShutdownDrainsInflightScrape is the regression test for the endpoint
// teardown path: a slow request (a pprof trace runs for its full requested
// duration server-side) started before Close must complete intact. The old
// srv.Close() aborted the connection mid-body.
func TestShutdownDrainsInflightScrape(t *testing.T) {
	s, err := Config{Addr: "127.0.0.1:0"}.Start()
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.BoundAddr + "/debug/pprof/trace?seconds=1"

	type scrape struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan scrape, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			done <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- scrape{status: resp.StatusCode, body: body, err: err}
	}()

	// Let the scrape reach the server, then tear the session down while
	// the trace is still streaming.
	time.Sleep(200 * time.Millisecond)
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()

	select {
	case sc := <-done:
		if sc.err != nil {
			t.Fatalf("in-flight scrape aborted by shutdown: %v", sc.err)
		}
		if sc.status != http.StatusOK {
			t.Fatalf("in-flight scrape got status %d: %s", sc.status, sc.body)
		}
		if len(sc.body) == 0 {
			t.Fatal("in-flight scrape returned an empty trace body")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scrape never completed")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}

	// The listener must actually be down afterwards.
	if _, err := http.Get("http://" + s.BoundAddr + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after Close")
	}
}

// TestShutdownFallsBackToClose arms a tiny drain deadline and holds a
// request open past it: Close must fall back to the hard close instead of
// waiting out the full request.
func TestShutdownFallsBackToClose(t *testing.T) {
	s, err := Config{Addr: "127.0.0.1:0", ShutdownDrain: 100 * time.Millisecond}.Start()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + s.BoundAddr + "/debug/pprof/trace?seconds=30")
		if err == nil {
			_, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(200 * time.Millisecond)

	start := time.Now()
	s.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v; the drain fallback should have fired at ~100ms", d)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("30s trace request completed under a 100ms drain; expected an aborted connection")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("aborted request never returned")
	}
}

// TestConfigValidate covers the nonsense-flag rejections.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = valid
	}{
		{"zero value", Config{}, ""},
		{"all armed", Config{Trace: "-", Metrics: true, ParSample: 64, SampleInterval: time.Second}, ""},
		{"negative flight size", Config{FlightSize: -1}, "flight-recorder"},
		{"negative par sample", Config{ParSample: -2}, "par-sample"},
		{"negative sample interval", Config{SampleInterval: -time.Second}, "obs-sample"},
		{"negative stall deadline", Config{StallDeadline: -time.Minute}, "stall-deadline"},
		{"negative linger", Config{Linger: -time.Second}, "obs-linger"},
		{"negative drain", Config{ShutdownDrain: -time.Second}, "shutdown drain"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// Start must enforce Validate, not just offer it.
	if _, err := (Config{Trace: "-", ParSample: -1}).Start(); err == nil {
		t.Error("Start accepted a config Validate rejects")
	}
}
