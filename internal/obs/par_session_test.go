package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bddkit/internal/bdd"
)

// buildParWork drives enough parallel BDD work through m to populate the
// sampled telemetry and trigger at least one GC.
func buildParWork(m *bdd.Manager, bits int) {
	carry := bdd.Zero
	for i := 0; i < bits; i++ {
		a := m.IthVar(2 * i)
		b := m.IthVar(2*i + 1)
		ab := m.And(a, b)
		axb := m.Xor(a, b)
		ac := m.And(axb, carry)
		nc := m.Or(ab, ac)
		m.Deref(ab)
		m.Deref(axb)
		m.Deref(ac)
		if carry != bdd.Zero {
			m.Deref(carry)
		}
		carry = nc
	}
	m.Deref(carry)
	m.GarbageCollect()
}

// TestSessionParallelObservability is the end-to-end path of the parallel
// observability stack: a session with sampling, watchdog, and endpoint
// armed watches a 4-worker manager; a deliberately wedged write lease makes
// the watchdog fire; the /parallel endpoint serves live telemetry; and the
// trace file closes as valid schema v2 with bdd.stw, bdd.stall, and
// bdd.contention events in it.
func TestSessionParallelObservability(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Trace:         dir + "/trace.jsonl",
		Addr:          "127.0.0.1:0",
		ParSample:     1, // sample everything: the test wants populated histograms
		StallDeadline: 25 * time.Millisecond,
	}
	s, err := cfg.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if got := bdd.ParSampling(); got != 1 {
		t.Fatalf("session did not arm sampling: rate %d", got)
	}

	mcfg := bdd.DefaultConfig()
	mcfg.Workers = 4
	m := bdd.NewWithConfig(32, mcfg)
	s.ObserveManager(m)
	buildParWork(m, 16)

	// Wedge the write lease long enough for the 25ms watchdog to fire.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Quiesce(func() { <-release })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.stalls.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	if s.stalls.Value() == 0 {
		t.Fatal("watchdog never fired on a wedged write lease")
	}

	// The stall must be in the flight recorder (that is where a wedged
	// process gets debugged from).
	var flight bytes.Buffer
	if _, err := s.Flight.WriteTo(&flight); err != nil {
		t.Fatalf("flight: %v", err)
	}
	if !strings.Contains(flight.String(), "bdd.stall") {
		t.Errorf("flight recorder has no bdd.stall event:\n%s", flight.String())
	}

	// Live telemetry over HTTP.
	resp, err := http.Get("http://" + s.BoundAddr + "/parallel")
	if err != nil {
		t.Fatalf("GET /parallel: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/parallel = %d:\n%s", resp.StatusCode, body)
	}
	var par struct {
		Workers int          `json:"workers"`
		Current *ParSnapshot `json:"current"`
	}
	if err := json.Unmarshal(body, &par); err != nil {
		t.Fatalf("/parallel not JSON: %v\n%s", err, body)
	}
	if par.Workers != 4 || par.Current == nil {
		t.Fatalf("/parallel = %s", body)
	}
	if par.Current.Telemetry.UniqueWait.Count == 0 {
		t.Errorf("/parallel served empty unique-wait telemetry at sample rate 1")
	}
	if len(par.Current.Telemetry.STW) == 0 {
		t.Errorf("/parallel served no STW breakdown after a GC")
	}

	// /metrics carries the STW counters.
	resp, err = http.Get("http://" + s.BoundAddr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"bdd_stw_total", "bdd_stall_reports_total", "bdd_workers 4"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	s.Close()
	if got := bdd.ParSampling(); got != 0 {
		t.Errorf("Close did not restore sampling rate: %d", got)
	}

	// The trace file must validate as schema v2 with the full parallel
	// vocabulary in it.
	data, err := os.ReadFile(cfg.Trace)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	sum, err := ValidateJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if sum.Version != TraceSchemaVersion {
		t.Errorf("trace version = %d, want %d", sum.Version, TraceSchemaVersion)
	}
	if sum.ByName["bdd.stw"] == 0 {
		t.Errorf("trace has no bdd.stw events: %+v", sum.ByName)
	}
	if sum.ByName["bdd.stall"] == 0 {
		t.Errorf("trace has no bdd.stall event: %+v", sum.ByName)
	}
	if sum.ByName["bdd.contention"] != 6 {
		t.Errorf("trace has %d bdd.contention events, want 6 subsystems", sum.ByName["bdd.contention"])
	}

	// And the analyzer must produce a non-degenerate Amdahl report from it.
	a, err := AnalyzeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("AnalyzeTrace: %v", err)
	}
	r := a.Amdahl()
	if r.SerialNS == 0 || r.Workers != 4 {
		t.Errorf("Amdahl from live trace = %+v, want STW time at 4 workers", r)
	}
}

// TestParSamplerRing checks the background sampler ring fills and caps.
func TestParSamplerRing(t *testing.T) {
	mcfg := bdd.DefaultConfig()
	mcfg.Workers = 2
	m := bdd.NewWithConfig(8, mcfg)
	ps := newParSampler(m, time.Millisecond)
	defer ps.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for len(ps.History()) < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	h := ps.History()
	if len(h) < 3 {
		t.Fatalf("sampler collected %d snapshots, want >= 3", len(h))
	}
	if h[0].Telemetry.Workers != 2 {
		t.Errorf("snapshot workers = %d, want 2", h[0].Telemetry.Workers)
	}
	ps.Stop() // idempotent
}

// TestEnvStallDeadline checks the BDDKIT_STALL_DEADLINE default path.
func TestEnvStallDeadline(t *testing.T) {
	t.Setenv("BDDKIT_STALL_DEADLINE", "45s")
	if got := envStallDeadline(); got != 45*time.Second {
		t.Fatalf("envStallDeadline = %v, want 45s", got)
	}
	t.Setenv("BDDKIT_STALL_DEADLINE", "bogus")
	if got := envStallDeadline(); got != 0 {
		t.Fatalf("envStallDeadline = %v on bogus input, want 0", got)
	}
}
