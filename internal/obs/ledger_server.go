package obs

// ArmLedger arms the process-global quality ledger against reg without a
// full observability session. Long-running servers always want loss
// accounting — a budget-degraded response must leave a ledger record even
// when no -trace/-obs flag armed a session — so they arm the ledger
// directly against their own registry and disarm it at shutdown.
// Config.Start continues to arm/disarm the ledger for session users; a
// later arm simply re-points the ledger.
func ArmLedger(reg *Registry) { L.arm(reg, T) }

// DisarmLedger stops the process-global ledger (no-op when disarmed).
func DisarmLedger() {
	if L.Enabled() {
		L.disarm()
	}
}
