package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheusMulti exercises the multi-tenant exposition: a server
// registry plus two labeled tenant registries merged onto one page must
// produce a single HELP/TYPE block per family, carry the tenant labels on
// every tenant series, and lint clean.
func TestWritePrometheusMulti(t *testing.T) {
	server := NewRegistry()
	server.Counter("serve_requests_total").Add(7)
	server.SetHelp("serve_requests_total", "requests admitted")

	mk := func(reqs, live int64, obsv []int64) *Registry {
		r := NewRegistry()
		r.Counter("tenant_ops_total").Add(reqs)
		r.SetHelp("tenant_ops_total", "operations completed")
		r.Gauge("bdd_live_nodes").Set(live)
		h := r.Histogram("op_dur_ns")
		for _, v := range obsv {
			h.Observe(v)
		}
		return r
	}
	ta := mk(3, 100, []int64{10, 2000, 2000000})
	tb := mk(5, 250, []int64{1, 1, 50})

	var buf bytes.Buffer
	WritePrometheusMulti(&buf, []LabeledRegistry{
		{R: server},
		{Labels: `tenant="alice"`, R: ta},
		{Labels: `tenant="bob"`, R: tb},
	})
	page := buf.String()

	// One HELP/TYPE block per family even though two registries share the
	// tenant families.
	for _, fam := range []string{"tenant_ops_total", "bdd_live_nodes", "op_dur_ns"} {
		if n := strings.Count(page, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1\n%s", fam, n, page)
		}
	}
	for _, want := range []string{
		"serve_requests_total 7",
		`tenant_ops_total{tenant="alice"} 3`,
		`tenant_ops_total{tenant="bob"} 5`,
		`bdd_live_nodes{tenant="alice"} 100`,
		`bdd_live_nodes{tenant="bob"} 250`,
		`op_dur_ns_count{tenant="alice"} 3`,
		`op_dur_ns_count{tenant="bob"} 3`,
		`op_dur_ns_bucket{tenant="alice",le="+Inf"} 3`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q\n%s", want, page)
		}
	}

	scrape, err := ParsePrometheus(strings.NewReader(page))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if lint := LintPrometheus(scrape); len(lint) != 0 {
		t.Fatalf("lint problems on multi-registry page: %v", lint)
	}
}

// TestWritePrometheusMultiTypeConflict: when two registries disagree on a
// family's type, the first registry wins and the conflicting series are
// dropped rather than corrupting the page.
func TestWritePrometheusMultiTypeConflict(t *testing.T) {
	a := NewRegistry()
	a.Counter("x_total").Add(1)
	b := NewRegistry()
	b.Gauge("x_total").Set(9)

	var buf bytes.Buffer
	WritePrometheusMulti(&buf, []LabeledRegistry{
		{Labels: `tenant="a"`, R: a},
		{Labels: `tenant="b"`, R: b},
	})
	page := buf.String()
	if !strings.Contains(page, `x_total{tenant="a"} 1`) {
		t.Errorf("first registry's series missing:\n%s", page)
	}
	if strings.Contains(page, `tenant="b"`) {
		t.Errorf("type-conflicting series leaked onto the page:\n%s", page)
	}
	if _, err := ParsePrometheus(strings.NewReader(page)); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

// TestLintPromHistogramPerLabelSet: the linter must track bucket ladders
// per label set — interleaved tenants restart le from the bottom, which is
// not an ordering defect — while still catching a real regression inside
// one tenant's ladder.
func TestLintPromHistogramPerLabelSet(t *testing.T) {
	clean := `# HELP h op durations
# TYPE h histogram
h_bucket{tenant="a",le="1"} 2
h_bucket{tenant="a",le="+Inf"} 4
h_sum{tenant="a"} 9
h_count{tenant="a"} 4
h_bucket{tenant="b",le="1"} 1
h_bucket{tenant="b",le="+Inf"} 1
h_sum{tenant="b"} 0.5
h_count{tenant="b"} 1
`
	scrape, err := ParsePrometheus(strings.NewReader(clean))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if lint := LintPrometheus(scrape); len(lint) != 0 {
		t.Fatalf("false positive on per-tenant ladders: %v", lint)
	}

	broken := `# HELP h op durations
# TYPE h histogram
h_bucket{tenant="a",le="1"} 5
h_bucket{tenant="a",le="2"} 3
h_bucket{tenant="a",le="+Inf"} 5
h_count{tenant="a"} 5
h_bucket{tenant="b",le="1"} 1
h_bucket{tenant="b",le="+Inf"} 2
h_count{tenant="b"} 7
`
	scrape, _ = ParsePrometheus(strings.NewReader(broken))
	lint := LintPrometheus(scrape)
	var nonMono, countMismatch bool
	for _, p := range lint {
		if strings.Contains(p, `tenant="a"`) && strings.Contains(p, "below previous") {
			nonMono = true
		}
		if strings.Contains(p, `tenant="b"`) && strings.Contains(p, "_count") {
			countMismatch = true
		}
	}
	if !nonMono {
		t.Errorf("non-monotone bucket in tenant a not flagged: %v", lint)
	}
	if !countMismatch {
		t.Errorf("+Inf/_count mismatch in tenant b not flagged: %v", lint)
	}
}
