package obs

import (
	"sync"
	"time"

	"bddkit/internal/bdd"
)

// Live scaling dashboard support: a background sampler snapshots the
// parallel engine's telemetry (worker accounting, contention top-K, STW
// breakdown) into a small ring, and the -obs HTTP endpoint serves the ring
// as JSON from /parallel. Snapshots read the engine's atomics without
// stopping it, so they are advisory — exactly what a heatmap wants.

const (
	// defaultParSampleInterval is how often the sampler snapshots.
	defaultParSampleInterval = 500 * time.Millisecond
	// parRingSize bounds the history served by /parallel (~1 minute at the
	// default interval).
	parRingSize = 128
)

// ParSnapshot is one timestamped telemetry sample.
type ParSnapshot struct {
	TS        string           `json:"ts"` // RFC3339Nano
	LiveNodes int              `json:"live_nodes"`
	Telemetry bdd.ParTelemetry `json:"telemetry"`
}

// ParSampler periodically snapshots a manager's parallel telemetry into a
// ring buffer.
type ParSampler struct {
	m      *bdd.Manager
	ticker *time.Ticker
	done   chan struct{}
	wg     sync.WaitGroup

	mu   sync.Mutex
	ring []ParSnapshot // oldest first, capped at parRingSize
}

// newParSampler starts sampling m every interval (0 selects the default).
func newParSampler(m *bdd.Manager, interval time.Duration) *ParSampler {
	if interval <= 0 {
		interval = defaultParSampleInterval
	}
	ps := &ParSampler{
		m:      m,
		ticker: time.NewTicker(interval),
		done:   make(chan struct{}),
	}
	ps.wg.Add(1)
	go ps.loop()
	return ps
}

func (ps *ParSampler) loop() {
	defer ps.wg.Done()
	for {
		select {
		case <-ps.done:
			return
		case <-ps.ticker.C:
			ps.sample()
		}
	}
}

func (ps *ParSampler) sample() {
	snap := ParSnapshot{
		TS:        time.Now().Format(time.RFC3339Nano),
		LiveNodes: ps.m.NodeCount(),
		Telemetry: ps.m.ParTelemetry(),
	}
	ps.mu.Lock()
	ps.ring = append(ps.ring, snap)
	if len(ps.ring) > parRingSize {
		copy(ps.ring, ps.ring[len(ps.ring)-parRingSize:])
		ps.ring = ps.ring[:parRingSize]
	}
	ps.mu.Unlock()
}

// History returns the ring contents, oldest first.
func (ps *ParSampler) History() []ParSnapshot {
	ps.mu.Lock()
	out := make([]ParSnapshot, len(ps.ring))
	copy(out, ps.ring)
	ps.mu.Unlock()
	return out
}

// Stop halts the sampling goroutine. Safe to call twice.
func (ps *ParSampler) Stop() {
	select {
	case <-ps.done:
		return
	default:
	}
	ps.ticker.Stop()
	close(ps.done)
	ps.wg.Wait()
}
