package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"bddkit/internal/bdd"
)

// Config carries the observability flags shared by every cmd binary:
//
//	-trace FILE        structured JSONL span trace ("-" = stderr)
//	-metrics           print a metrics-registry snapshot to stderr on exit
//	-obs ADDR          live endpoint serving pprof, expvar, /metrics,
//	                   /flight, /parallel
//	-par-sample N      1-in-N fine-grained parallel-engine sampling
//	-obs-sample D      time-series sampler interval for /timeseries
//	-stall-deadline D  stall-watchdog deadline (also BDDKIT_STALL_DEADLINE)
//	-obs-linger D      keep the session open this long at Close
//
// Any one of the first three arms the flight recorder, so a panic or
// node-budget exhaustion dumps the recent trace events to stderr, and
// arms the quality ledger (obs.L), so approximation/decomposition/reach
// operations record their loss. The parallel knobs only take effect when
// the session is otherwise enabled and a multi-worker manager is
// observed; the time-series sampler runs only with a live -obs endpoint.
type Config struct {
	Trace      string
	Metrics    bool
	Addr       string
	FlightSize int // ring capacity in events (0 = DefaultFlightSize)

	// SampleInterval is the /timeseries ring sampling period (0 =
	// DefaultSampleInterval). Sampling starts when a manager is observed
	// and the live endpoint is up.
	SampleInterval time.Duration

	// ParSample arms bdd.SetParSampling(ParSample) for the session (0
	// leaves fine-grained sampling off; the previous rate is restored at
	// Close). The default is bdd.DefaultParSampleRate.
	ParSample int
	// StallDeadline arms the parallel stall watchdog on observed managers
	// (0 = off). The -stall-deadline flag defaults to the
	// BDDKIT_STALL_DEADLINE environment variable.
	StallDeadline time.Duration
	// Linger makes Close sleep before tearing the session down, keeping
	// the -obs endpoint scrapeable after the workload finishes (smoke
	// tests curl /parallel and /metrics in that window).
	Linger time.Duration
	// ShutdownDrain bounds how long Close waits for in-flight endpoint
	// requests (scrapes, pprof profiles) to finish before hard-closing
	// the listener (0 = DefaultShutdownDrain).
	ShutdownDrain time.Duration
}

// DefaultShutdownDrain is the default endpoint drain deadline at Close:
// long enough for a straggling scrape or a short pprof profile, short
// enough that teardown never appears hung.
const DefaultShutdownDrain = 5 * time.Second

// AddFlags registers the observability flags on fs.
func (c *Config) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Trace, "trace", "", "write a JSONL span trace to this `file` (\"-\" = stderr)")
	fs.BoolVar(&c.Metrics, "metrics", false, "print a metrics-registry snapshot to stderr on exit")
	fs.StringVar(&c.Addr, "obs", "", "serve pprof/expvar/metrics on this `address` (e.g. :6060)")
	fs.IntVar(&c.ParSample, "par-sample", bdd.DefaultParSampleRate,
		"sample 1-in-`N` parallel lock waits and steals when obs is enabled (0 = off)")
	fs.DurationVar(&c.SampleInterval, "obs-sample", DefaultSampleInterval,
		"time-series sampler `interval` for the obs endpoint's /timeseries ring")
	fs.DurationVar(&c.StallDeadline, "stall-deadline", envStallDeadline(),
		"arm the parallel stall watchdog with this `deadline` (0 = off; default $BDDKIT_STALL_DEADLINE)")
	fs.DurationVar(&c.Linger, "obs-linger", 0,
		"keep the obs endpoint up this `duration` after the workload finishes")
}

// envStallDeadline reads the BDDKIT_STALL_DEADLINE environment variable
// (a Go duration, e.g. "30s"); unset or unparsable means off.
func envStallDeadline() time.Duration {
	v := os.Getenv("BDDKIT_STALL_DEADLINE")
	if v == "" {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// Enabled reports whether any observability feature was requested.
func (c *Config) Enabled() bool {
	return c.Trace != "" || c.Metrics || c.Addr != ""
}

// Validate rejects nonsensical flag values (negative sampling rates,
// negative durations) before they silently disable or distort the
// telemetry they were meant to configure.
func (c *Config) Validate() error {
	switch {
	case c.FlightSize < 0:
		return fmt.Errorf("obs: flight-recorder size %d is negative", c.FlightSize)
	case c.ParSample < 0:
		return fmt.Errorf("obs: -par-sample %d is negative (0 disables sampling)", c.ParSample)
	case c.SampleInterval < 0:
		return fmt.Errorf("obs: -obs-sample %v is negative", c.SampleInterval)
	case c.StallDeadline < 0:
		return fmt.Errorf("obs: -stall-deadline %v is negative (0 disarms the watchdog)", c.StallDeadline)
	case c.Linger < 0:
		return fmt.Errorf("obs: -obs-linger %v is negative", c.Linger)
	case c.ShutdownDrain < 0:
		return fmt.Errorf("obs: shutdown drain %v is negative", c.ShutdownDrain)
	}
	return nil
}

// Session is a started observability configuration: the metrics registry,
// the armed global tracer, the flight recorder, and (optionally) the live
// HTTP endpoint. It also installs itself as the process-wide bdd.Observer
// so GC pauses, reorder durations, budget aborts, and invariant failures
// flow into the registry, the trace, and the flight recorder.
type Session struct {
	Registry *Registry
	Tracer   *Tracer
	Flight   *FlightRecorder
	// BoundAddr is the live endpoint's actual listen address (useful when
	// -obs requested port 0).
	BoundAddr string

	cfg       Config
	traceFile *os.File
	stopHTTP  func() error

	// dumpW receives flight-recorder dumps (budget aborts, invariant
	// failures, stalls, panics); os.Stderr unless SetDumpWriter redirects
	// it (tests capture dumps this way).
	dumpW io.Writer

	// mu guards the fields the /parallel and /timeseries handlers and
	// Close read while the workload is still installing them (mgr,
	// samplers, watchdog).
	mu           sync.Mutex
	mgr          *bdd.Manager
	sampler      *ParSampler
	timeSampler  *TimeSampler
	stopWatchdog func()
	prevSample   int
	sampleArmed  bool

	gcPause    *Histogram
	gcCount    *Counter
	gcNodes    *Counter
	reorderDur *Histogram
	reorders   *Counter
	aborts     *Counter
	debugFails *Counter
	stwPause   *Histogram
	stwCount   *Counter
	stalls     *Counter
}

// Start arms the observability layer described by c. With no flags set it
// returns a Session whose tracer stays disabled, so callers can wire it
// unconditionally. The session configures the process-global tracer T;
// call Close when done.
func (c Config) Start() (*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &Session{
		Registry: NewRegistry(),
		Tracer:   T,
		cfg:      c,
		dumpW:    os.Stderr,
	}
	if !c.Enabled() {
		return s, nil
	}
	s.Flight = NewFlightRecorder(c.FlightSize)
	T.SetFlight(s.Flight)
	switch c.Trace {
	case "":
	case "-":
		T.SetSink(os.Stderr)
	default:
		f, err := os.Create(c.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: -trace: %w", err)
		}
		s.traceFile = f
		T.SetSink(f)
	}

	s.gcPause = s.Registry.Histogram("bdd_gc_pause_ns")
	s.gcCount = s.Registry.Counter("bdd_gc_total")
	s.gcNodes = s.Registry.Counter("bdd_gc_reclaimed_nodes")
	s.reorderDur = s.Registry.Histogram("bdd_reorder_ns")
	s.reorders = s.Registry.Counter("bdd_reorder_total")
	s.aborts = s.Registry.Counter("bdd_budget_aborts_total")
	s.debugFails = s.Registry.Counter("bdd_debug_failures_total")
	s.stwPause = s.Registry.Histogram("bdd_stw_pause_ns")
	s.stwCount = s.Registry.Counter("bdd_stw_total")
	s.stalls = s.Registry.Counter("bdd_stall_reports_total")
	for name, text := range map[string]string{
		"bdd_gc_pause_ns":          "garbage-collection pause durations",
		"bdd_gc_total":             "garbage collections observed",
		"bdd_gc_reclaimed_nodes":   "nodes reclaimed by garbage collection",
		"bdd_reorder_ns":           "variable-reordering pass durations",
		"bdd_reorder_total":        "variable-reordering passes observed",
		"bdd_budget_aborts_total":  "node-budget aborts observed",
		"bdd_debug_failures_total": "DebugCheck invariant failures observed",
		"bdd_stw_pause_ns":         "write-lease stop-the-world pause durations",
		"bdd_stw_total":            "write-lease stop-the-world epochs observed",
		"bdd_stall_reports_total":  "parallel stall-watchdog reports",
	} {
		s.Registry.SetHelp(name, text)
	}
	L.arm(s.Registry, T)
	s.prevSample = bdd.ParSampling()
	if c.ParSample > 0 {
		bdd.SetParSampling(c.ParSample)
		s.sampleArmed = true
	}
	bdd.SetObserver(s)

	if c.Addr != "" {
		stop, err := s.serve(c.Addr)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.stopHTTP = stop
	}
	return s, nil
}

// MustStart is Start for cmd mains: flag errors exit(2).
func (c Config) MustStart() *Session {
	s, err := c.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return s
}

// ObserveManager registers snapshot-time gauges over a live BDD manager:
// live/dead/peak node counts, cache geometry and hit rate, unique-table
// traffic, GC and reorder totals, and the peak ITE recursion depth. The
// gauges read the manager without synchronization, so values served while
// the manager is mutating are advisory. It also points the tracer's
// node-delta attribution at this manager.
func (s *Session) ObserveManager(m *bdd.Manager) {
	RegisterManagerGauges(s.Registry, m)
	if s.Tracer != nil {
		s.Tracer.LiveNodes = m.NodeCount
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.mgr = m
	if s.cfg.Addr != "" {
		if s.timeSampler == nil {
			s.timeSampler = newTimeSampler(m, L, s.cfg.SampleInterval)
		} else {
			s.timeSampler.SetManager(m)
		}
	}
	if m.Workers() > 1 {
		if s.cfg.StallDeadline > 0 && s.stopWatchdog == nil {
			s.stopWatchdog = m.StartStallWatchdog(s.cfg.StallDeadline)
		}
		if s.cfg.Addr != "" && s.sampler == nil {
			s.sampler = newParSampler(m, 0)
		}
	}
}

// RegisterManagerGauges installs the standard per-manager gauge set on any
// registry — the session registry here, or a per-tenant registry in a
// multi-manager server. The gauges read the manager without
// synchronization, so values served while the manager is mutating are
// advisory.
func RegisterManagerGauges(r *Registry, m *bdd.Manager) {
	r.GaugeFunc("bdd_live_nodes", func() float64 { return float64(m.NodeCount()) })
	r.GaugeFunc("bdd_dead_nodes", func() float64 { return float64(m.DeadCount()) })
	r.GaugeFunc("bdd_peak_live_nodes", func() float64 { return float64(m.Stats().PeakLive) })
	r.GaugeFunc("bdd_peak_ite_depth", func() float64 { return float64(m.Stats().PeakITEDepth) })
	r.GaugeFunc("bdd_gc_time_ns", func() float64 { return float64(m.Stats().GCTime) })
	r.GaugeFunc("bdd_reorder_time_ns", func() float64 { return float64(m.Stats().ReorderTime) })
	r.GaugeFunc("bdd_reorderings", func() float64 { return float64(m.Stats().Reorderings) })
	r.GaugeFunc("bdd_cache_lookups", func() float64 { return float64(m.Stats().CacheLookups) })
	r.GaugeFunc("bdd_cache_hits", func() float64 { return float64(m.Stats().CacheHits) })
	r.GaugeFunc("bdd_cache_hit_rate", func() float64 { return m.CacheStats().HitRate })
	r.GaugeFunc("bdd_cache_entries", func() float64 { return float64(m.CacheStats().Entries) })
	r.GaugeFunc("bdd_cache_evictions", func() float64 { return float64(m.Stats().CacheEvictions) })
	r.GaugeFunc("bdd_cache_resizes", func() float64 { return float64(m.Stats().CacheResizes) })
	r.GaugeFunc("bdd_unique_lookups", func() float64 { return float64(m.Stats().UniqueLookups) })
	r.GaugeFunc("bdd_unique_hits", func() float64 { return float64(m.Stats().UniqueHits) })
	r.GaugeFunc("bdd_unique_grows", func() float64 { return float64(m.Stats().UniqueGrows) })
	r.GaugeFunc("bdd_node_limit", func() float64 { return float64(m.NodeLimit()) })
	r.GaugeFunc("bdd_budget_headroom", func() float64 { return headroom(m.NodeLimit(), m.NodeCount()) })
	r.GaugeFunc("bdd_arena_capacity", func() float64 { return float64(m.ArenaStats().Capacity) })
	r.GaugeFunc("bdd_arena_occupancy", func() float64 { return m.ArenaStats().Occupancy() })
	r.SetHelp("bdd_node_limit", "armed live-node ceiling (0 = unlimited)")
	r.SetHelp("bdd_budget_headroom", "remaining node-budget fraction (1 = unconstrained)")
	r.SetHelp("bdd_arena_capacity", "node-arena slot capacity")
	r.SetHelp("bdd_arena_occupancy", "fraction of arena slots holding live or dead nodes")
	r.GaugeFunc("bdd_workers", func() float64 { return float64(m.Workers()) })
	r.GaugeFunc("bdd_tasks_stolen", func() float64 { return float64(m.Stats().TasksStolen) })
	r.GaugeFunc("bdd_tasks_local", func() float64 { return float64(m.Stats().TasksLocal) })
	r.GaugeFunc("bdd_stw_epochs", func() float64 { return float64(m.Stats().STWCount) })
	r.GaugeFunc("bdd_stw_time_ns", func() float64 { return float64(m.Stats().STWTime) })
}

// SetDumpWriter redirects flight-recorder dumps (budget aborts, invariant
// failures, stalls, panics) away from os.Stderr — tests assert on dump
// contents this way. A nil w restores stderr.
func (s *Session) SetDumpWriter(w io.Writer) {
	if w == nil {
		w = os.Stderr
	}
	s.mu.Lock()
	s.dumpW = w
	s.mu.Unlock()
}

// dumpWriter returns the current dump destination.
func (s *Session) dumpWriter() io.Writer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dumpW == nil {
		return os.Stderr
	}
	return s.dumpW
}

// sampleInterval reports the effective /timeseries sampling period.
func (s *Session) sampleInterval() time.Duration {
	if s.cfg.SampleInterval > 0 {
		return s.cfg.SampleInterval
	}
	return DefaultSampleInterval
}

// Close flushes the trace sink, stops the HTTP endpoint, uninstalls the
// bdd observer, and prints the metrics snapshot when -metrics was given.
// With -obs-linger it first sleeps, leaving the endpoint scrapeable; it
// then stops the watchdog and sampler, emits the end-of-run per-subsystem
// bdd.contention snapshot into the trace, and tears down.
func (s *Session) Close() {
	if s == nil {
		return
	}
	if s.cfg.Linger > 0 {
		time.Sleep(s.cfg.Linger)
	}
	s.mu.Lock()
	if s.stopWatchdog != nil {
		s.stopWatchdog()
		s.stopWatchdog = nil
	}
	if s.sampler != nil {
		s.sampler.Stop()
		s.sampler = nil
	}
	if s.timeSampler != nil {
		s.timeSampler.Stop()
		s.timeSampler = nil
	}
	mgr := s.mgr
	s.mgr = nil
	s.mu.Unlock()
	if L.Enabled() {
		L.disarm()
	}
	if mgr != nil && mgr.Workers() > 1 {
		s.emitContention(mgr.ParTelemetry())
	}
	if s.sampleArmed {
		bdd.SetParSampling(s.prevSample)
		s.sampleArmed = false
	}
	if bdd.CurrentObserver() == bdd.Observer(s) {
		bdd.SetObserver(nil)
	}
	if s.stopHTTP != nil {
		if err := s.stopHTTP(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		s.stopHTTP = nil
	}
	if s.Tracer != nil {
		if err := s.Tracer.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "obs: trace write error:", err)
		}
		s.Tracer.SetSink(nil)
		s.Tracer.SetFlight(nil)
		s.Tracer.LiveNodes = nil
	}
	if s.traceFile != nil {
		s.traceFile.Close()
		s.traceFile = nil
	}
	if s.cfg.Metrics {
		fmt.Fprintln(os.Stderr, "--- metrics snapshot ---")
		s.Registry.WriteText(os.Stderr)
		if snap := L.Snapshot(); snap.Ops > 0 {
			fmt.Fprintln(os.Stderr, "--- quality ledger ---")
			snap.WriteReport(os.Stderr)
		}
	}
}

// DumpOnPanic re-raises a panic after dumping the flight recorder; defer
// it first thing in a cmd main:
//
//	defer sess.DumpOnPanic()
func (s *Session) DumpOnPanic() {
	if r := recover(); r != nil {
		if s != nil && s.Flight != nil {
			s.Flight.Dump(s.dumpWriter(), fmt.Sprintf("panic: %v", r))
		}
		panic(r)
	}
}

// bdd.Observer implementation -------------------------------------------

// GC records a garbage collection in the registry, the trace, and the
// flight recorder.
func (s *Session) GC(reclaimed, live int, pause time.Duration) {
	s.gcPause.Observe(pause.Nanoseconds())
	s.gcCount.Inc()
	s.gcNodes.Add(int64(reclaimed))
	s.Tracer.Event("bdd.gc",
		Int("reclaimed", reclaimed), Int("live", live), Dur("pause_ns", pause))
}

// Reorder records a reordering pass.
func (s *Session) Reorder(before, after int, dur time.Duration) {
	s.reorderDur.Observe(dur.Nanoseconds())
	s.reorders.Inc()
	s.Tracer.Event("bdd.reorder",
		Int("nodes_before", before), Int("nodes_after", after), Dur("dur_ns", dur))
}

// Abort dumps the flight recorder: node-budget exhaustion is exactly the
// moment the recent trace history explains what grew. The emitted
// bdd.abort event carries the open-span stack — open spans have not
// written their own records yet, so without it the dump could not say
// *where* the run died.
func (s *Session) Abort(reason string) {
	s.aborts.Inc()
	s.Tracer.Event("bdd.abort",
		Str("reason", reason), Str("stack", s.Tracer.StackString()))
	if s.Flight != nil {
		s.Flight.Dump(s.dumpWriter(), "node budget exhausted: "+reason)
	}
}

// DebugFailure dumps the flight recorder on an invariant violation.
func (s *Session) DebugFailure(err error) {
	s.debugFails.Inc()
	s.Tracer.Event("bdd.debug_failure", Str("error", err.Error()))
	if s.Flight != nil {
		s.Flight.Dump(s.dumpWriter(), "DebugCheck failure: "+err.Error())
	}
}

// bdd.ParObserver implementation -----------------------------------------

// STW records one write-lease / stop-the-world epoch: pause histogram,
// total and per-cause counters, and a bdd.stw trace event carrying the
// Amdahl attribution (cause, wait, pause, worker count).
func (s *Session) STW(cause string, workers int, wait, pause time.Duration) {
	s.stwPause.Observe(pause.Nanoseconds())
	s.stwCount.Inc()
	s.Registry.Counter("bdd_stw_" + cause + "_total").Inc()
	s.Tracer.Event("bdd.stw",
		Str("cause", cause), Int("workers", workers),
		Dur("wait_ns", wait), Dur("pause_ns", pause))
}

// Stall records a stall-watchdog firing: the report goes into the trace
// (and thereby the flight recorder), and the flight recorder dumps to
// stderr immediately — a stuck engine may never reach a clean exit.
func (s *Session) Stall(report string, stuck time.Duration) {
	s.stalls.Inc()
	s.Tracer.Event("bdd.stall", Str("report", report), Dur("stuck_ns", stuck))
	if s.Flight != nil {
		s.Flight.Dump(s.dumpWriter(), "parallel engine stalled for "+stuck.String()+":\n"+report)
	}
}

// emitContention writes one bdd.contention trace event per instrumented
// subsystem from a final telemetry snapshot, so post-hoc analysis gets the
// merged wait distributions without scraping /parallel.
func (s *Session) emitContention(t bdd.ParTelemetry) {
	emit := func(subsystem string, ws bdd.WaitStats) {
		s.Tracer.Event("bdd.contention",
			Str("subsystem", subsystem),
			I64("count", ws.Count), I64("sum_ns", ws.SumNS), I64("max_ns", ws.MaxNS),
			I64("p50_ns", ws.P50NS), I64("p95_ns", ws.P95NS), I64("p99_ns", ws.P99NS))
	}
	emit("unique", t.UniqueWait)
	emit("cache", t.CacheWait)
	emit("lease", t.LeaseWait)
	emit("steal", t.StealLatency)
	emit("join", t.JoinWait)
	emit("deque", t.DequeDepth)
}

var _ bdd.Observer = (*Session)(nil)
var _ bdd.ParObserver = (*Session)(nil)
