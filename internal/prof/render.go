package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteText renders the profile as a fixed-width table: a header line, one
// row per non-empty level, and path/sharing summary lines.
func (p *Profile) WriteText(w io.Writer) {
	fmt.Fprintf(w, "profile: %d root(s), %d nodes (%d inner), %d vars, max width %d @ level %d\n",
		p.Roots, p.Nodes, p.Inner, p.Vars, p.MaxWidth, p.MaxWidthLev)
	for i, f := range p.RootFracs {
		fmt.Fprintf(w, "  root %d minterm fraction %.6g\n", i, f)
	}
	fmt.Fprintf(w, "%6s %6s %8s %8s %8s %12s %12s\n",
		"level", "var", "nodes", "in-arcs", "shared", "mass", "density")
	for _, st := range p.Levels {
		fmt.Fprintf(w, "%6d %6d %8d %8d %8d %12.6g %12.6g\n",
			st.Level, st.Var, st.Nodes, st.InArcs, st.Shared, st.Mass, st.Density)
	}
	fmt.Fprintf(w, "total: %d nodes across %d levels, %d shared (in-degree >= 2)\n",
		p.TotalNodes(), len(p.Levels), p.SharedNodes)
	if p.PathHist != nil {
		fmt.Fprintf(w, "paths: %.6g to 1, %.6g to 0, length min %d / avg %.2f / max %d\n",
			p.PathsToOne, p.PathsToZero, p.MinPath, p.AvgPath, p.MaxPath)
	}
	if len(p.InDegree) > 0 {
		fmt.Fprintf(w, "in-degree:")
		for b, n := range p.InDegree {
			if n == 0 {
				continue
			}
			lo := 1 << uint(b-1)
			hi := 1<<uint(b) - 1
			if b <= 1 {
				lo, hi = b, b // buckets 0 and 1 are exact
			}
			if lo == hi {
				fmt.Fprintf(w, " %d:%d", lo, n)
			} else {
				fmt.Fprintf(w, " %d-%d:%d", lo, hi, n)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteJSON renders the profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// formatLevelList renders levels as a compact "lev:value" comma list.
func formatLevelList(levels []LevelStat, value func(LevelStat) int) string {
	out := ""
	for i, st := range levels {
		if i > 0 {
			out += ","
		}
		out += itoa(st.Level) + ":" + itoa(value(st))
	}
	return out
}

func itoa(v int) string { return strconv.Itoa(v) }

// signedItoa always renders a sign, so deltas read as deltas.
func signedItoa(v int) string {
	if v > 0 {
		return "+" + strconv.Itoa(v)
	}
	return strconv.Itoa(v)
}
