// Package prof computes structural profiles of BDDs: per-level node counts
// (widths), per-level minterm-mass attribution and density, root→terminal
// path-length histograms, and the sharing (in-degree) distribution of the
// shared DAG.
//
// Per-level width/density profiles are the decisive structural signal for
// BDD algorithm behaviour (Sølvsten & van de Pol, arXiv:2104.12101): the
// levels where a diagram is wide and sparse are exactly where the paper's
// approximation operators cut, and where image computation allocates. A
// Profile is computed in one sweep over the DAG (the optional path
// histogram adds an O(|f|·vars) worst-case pass) and renders as a text
// table or JSON.
//
// The minterm-mass attribution follows the analysis pass of the RUA
// machinery in internal/approx/density.go: path mass flows from each root
// (1.0 per root, split in half at every node, tracking complement parity),
// and a node's mass is the fraction of the root functions' minterms whose
// paths traverse it — mass·frac for even-parity arrivals plus
// mass·(1−frac) for odd ones.
package prof

import (
	"math"
	"math/bits"
	"sort"

	"bddkit/internal/bdd"
)

// Options tunes Compute.
type Options struct {
	// PathHist enables the root→One path-length histogram, an extra
	// O(|f|·vars) worst-case pass (the per-level sweep itself is O(|f|)).
	PathHist bool
}

// LevelStat is the profile of one variable level.
type LevelStat struct {
	Level   int     `json:"level"`   // order position
	Var     int     `json:"var"`     // variable index at that position
	Nodes   int     `json:"nodes"`   // width of the level
	InArcs  int     `json:"in_arcs"` // arcs arriving at this level's nodes (roots count 1)
	Shared  int     `json:"shared"`  // nodes with in-degree >= 2
	Mass    float64 `json:"mass"`    // minterm mass attributed to the level
	Density float64 `json:"density"` // Mass / Nodes
}

// Profile is the structural profile of a BDD forest.
type Profile struct {
	Roots       int         `json:"roots"`
	Vars        int         `json:"vars"`
	Nodes       int         `json:"nodes"` // distinct nodes incl. the terminal
	Inner       int         `json:"inner"` // Nodes - 1
	MaxWidth    int         `json:"max_width"`
	MaxWidthLev int         `json:"max_width_level"`
	RootFracs   []float64   `json:"root_minterm_fracs"` // minterm fraction per root
	Levels      []LevelStat `json:"levels"`             // non-empty levels, ascending

	// Sharing: power-of-two in-degree buckets over inner nodes; bucket i
	// counts nodes whose in-degree d satisfies 2^(i-1) <= d < 2^i.
	InDegree    []int64 `json:"in_degree_hist"`
	SharedNodes int     `json:"shared_nodes"` // inner nodes with in-degree >= 2

	// Path statistics (PathHist option): histogram of root→One path
	// lengths, indexed by length.
	PathsToOne  float64   `json:"paths_to_one,omitempty"`
	PathsToZero float64   `json:"paths_to_zero,omitempty"`
	MinPath     int       `json:"min_path,omitempty"`
	MaxPath     int       `json:"max_path,omitempty"`
	AvgPath     float64   `json:"avg_path,omitempty"`
	PathHist    []float64 `json:"path_hist,omitempty"`

	// NodeMass is the per-node minterm mass behind the level attribution,
	// keyed by node id — the signal DotColor visualizes.
	NodeMass map[uint32]float64 `json:"-"`
}

// For profiles a single function with every option enabled.
func For(m *bdd.Manager, f bdd.Ref) *Profile {
	return Compute(m, []bdd.Ref{f}, Options{PathHist: true})
}

// Compute profiles the forest rooted at roots in one sweep: collect the
// shared DAG, attribute minterm mass top-down in level order, and fold the
// per-node records into per-level statistics.
func Compute(m *bdd.Manager, roots []bdd.Ref, opts Options) *Profile {
	p := &Profile{Roots: len(roots), Vars: m.NumVars()}

	// Pass 1: collect distinct nodes, minterm fractions, and in-degrees.
	frac := make(map[uint32]float64)  // regular node id -> minterm fraction
	indeg := make(map[uint32]int)     // node id -> arcs arriving (roots count 1)
	byLevel := make(map[int][]uint32) // level -> inner node ids
	var collect func(f bdd.Ref) float64
	collect = func(f bdd.Ref) float64 {
		id := f.ID()
		if p, ok := frac[id]; ok {
			return p
		}
		if f.IsConstant() {
			frac[id] = 1 // the regular constant is One
			return 1
		}
		lev := m.Level(f)
		byLevel[lev] = append(byLevel[lev], id)
		hi, lo := m.StructHi(f), m.StructLo(f)
		ph := collect(hi)
		pl := collect(lo)
		indeg[hi.ID()]++
		indeg[lo.ID()]++
		if lo.IsComplement() {
			pl = 1 - pl
		}
		pf := 0.5*ph + 0.5*pl
		frac[id] = pf
		return pf
	}
	for _, r := range roots {
		collect(r)
		indeg[r.ID()]++
		pf := frac[r.ID()]
		if r.IsComplement() {
			pf = 1 - pf
		}
		p.RootFracs = append(p.RootFracs, pf)
	}
	p.Nodes = len(frac)
	p.Inner = p.Nodes
	if _, hasTerminal := frac[bdd.One.ID()]; hasTerminal {
		p.Inner--
	}

	// Pass 2: mass attribution, top-down in level order. Children always
	// sit at strictly larger levels, so an ascending sweep finalizes a
	// node's arriving mass before distributing it.
	weightE := make(map[uint32]float64) // mass arriving with even parity
	weightO := make(map[uint32]float64) // mass arriving through an odd number of complement arcs
	for _, r := range roots {
		if r.IsConstant() {
			continue
		}
		if r.IsComplement() {
			weightO[r.ID()]++
		} else {
			weightE[r.ID()]++
		}
	}
	levels := make([]int, 0, len(byLevel))
	for lev := range byLevel {
		levels = append(levels, lev)
	}
	sort.Ints(levels)
	deposit := func(c bdd.Ref, mass float64) {
		if c.IsConstant() || mass == 0 {
			return
		}
		if c.IsComplement() {
			weightO[c.ID()] += mass
		} else {
			weightE[c.ID()] += mass
		}
	}
	p.NodeMass = make(map[uint32]float64, p.Inner)
	for _, lev := range levels {
		for _, id := range byLevel[lev] {
			v := bdd.Ref(id << 1) // regular ref for this node
			we, wo := weightE[id], weightO[id]
			p.NodeMass[id] = we*frac[id] + wo*(1-frac[id])
			if we > 0 {
				deposit(m.Hi(v), we/2)
				deposit(m.Lo(v), we/2)
			}
			if wo > 0 {
				vc := v.Complement()
				deposit(m.Hi(vc), wo/2)
				deposit(m.Lo(vc), wo/2)
			}
		}
	}

	// Fold into per-level statistics.
	for _, lev := range levels {
		ids := byLevel[lev]
		st := LevelStat{Level: lev, Var: m.VarAtLevel(lev), Nodes: len(ids)}
		for _, id := range ids {
			st.InArcs += indeg[id]
			if indeg[id] >= 2 {
				st.Shared++
			}
			st.Mass += p.NodeMass[id]
		}
		st.Density = st.Mass / float64(st.Nodes)
		p.Levels = append(p.Levels, st)
		if st.Nodes > p.MaxWidth {
			p.MaxWidth = st.Nodes
			p.MaxWidthLev = lev
		}
		p.SharedNodes += st.Shared
	}

	// Sharing distribution over inner nodes.
	for id, d := range indeg {
		if id == bdd.One.ID() {
			continue
		}
		b := bits.Len64(uint64(d))
		for len(p.InDegree) <= b {
			p.InDegree = append(p.InDegree, 0)
		}
		p.InDegree[b]++
	}

	if opts.PathHist {
		p.computePaths(m, roots)
	}
	return p
}

// computePaths fills the root→One path-length histogram by a bottom-up DP
// on seen functions: dist(f)[k] = number of length-k paths from f to the
// One terminal, with complement parity folded into the memo key.
func (p *Profile) computePaths(m *bdd.Manager, roots []bdd.Ref) {
	memo := make(map[bdd.Ref][]float64)
	var dist func(f bdd.Ref) []float64
	dist = func(f bdd.Ref) []float64 {
		if f == bdd.One {
			return []float64{1}
		}
		if f == bdd.Zero {
			return nil
		}
		if d, ok := memo[f]; ok {
			return d
		}
		dh := dist(m.Hi(f))
		dl := dist(m.Lo(f))
		n := len(dh)
		if len(dl) > n {
			n = len(dl)
		}
		d := make([]float64, n+1)
		for i, v := range dh {
			d[i+1] += v
		}
		for i, v := range dl {
			d[i+1] += v
		}
		memo[f] = d
		return d
	}
	for _, r := range roots {
		for k, v := range dist(r) {
			for len(p.PathHist) <= k {
				p.PathHist = append(p.PathHist, 0)
			}
			p.PathHist[k] += v
		}
		p.PathsToZero += m.CountPath(r.Complement())
	}
	p.MinPath = -1
	var lenSum float64
	for k, v := range p.PathHist {
		if v == 0 {
			continue
		}
		if p.MinPath < 0 {
			p.MinPath = k
		}
		p.MaxPath = k
		p.PathsToOne += v
		lenSum += float64(k) * v
	}
	if p.MinPath < 0 {
		p.MinPath = 0
	}
	if p.PathsToOne > 0 {
		p.AvgPath = lenSum / p.PathsToOne
	}
}

// TotalNodes returns the profile's node accounting: the sum of level widths
// plus the terminal. It equals bdd.Manager.SharingSize of the roots, and —
// when the roots cover every live function of a manager — NodeCount.
func (p *Profile) TotalNodes() int {
	n := p.Nodes - p.Inner // terminal(s) covered
	for _, st := range p.Levels {
		n += st.Nodes
	}
	return n
}

// LevelNodes returns the width of the given level (0 when empty).
func (p *Profile) LevelNodes(lev int) int {
	for _, st := range p.Levels {
		if st.Level == lev {
			return st.Nodes
		}
	}
	return 0
}

// TopWidths returns the k widest levels as a compact "lev:width" list,
// widest first — the one-line shape summary attached to trace events.
func (p *Profile) TopWidths(k int) string {
	sorted := append([]LevelStat(nil), p.Levels...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Nodes != sorted[j].Nodes {
			return sorted[i].Nodes > sorted[j].Nodes
		}
		return sorted[i].Level < sorted[j].Level
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return formatLevelList(sorted[:k], func(st LevelStat) int { return st.Nodes })
}

// TopDeltas returns the k levels with the largest node-count change between
// two profiles as a signed "lev:±delta" list, largest magnitude first — the
// per-decision attribution attached to approximation spans. An empty string
// means the profiles have identical level widths.
func TopDeltas(before, after *Profile, k int) string {
	type d struct {
		lev, delta int
	}
	var ds []d
	seen := make(map[int]bool)
	for _, st := range before.Levels {
		seen[st.Level] = true
		if dd := after.LevelNodes(st.Level) - st.Nodes; dd != 0 {
			ds = append(ds, d{st.Level, dd})
		}
	}
	for _, st := range after.Levels {
		if !seen[st.Level] && st.Nodes != 0 {
			ds = append(ds, d{st.Level, st.Nodes})
		}
	}
	sort.Slice(ds, func(i, j int) bool {
		ai, aj := abs(ds[i].delta), abs(ds[j].delta)
		if ai != aj {
			return ai > aj
		}
		return ds[i].lev < ds[j].lev
	})
	if k > len(ds) {
		k = len(ds)
	}
	out := ""
	for i := 0; i < k; i++ {
		if i > 0 {
			out += ","
		}
		out += itoa(ds[i].lev) + ":" + signedItoa(ds[i].delta)
	}
	return out
}

// DotColor returns a Graphviz fillcolor for the node with the given id,
// grading the node's minterm mass on a 9-step blues scale (dark = dense,
// pale = sparse — the pale nodes are where approximation will cut). Nodes
// outside the profile return "".
func (p *Profile) DotColor(id uint32) string {
	mass, ok := p.NodeMass[id]
	if !ok {
		return ""
	}
	// Log scale: each halving of mass steps one shade down. Mass 1 (a
	// root) is the darkest; anything below 2^-8 of the root mass is the
	// palest.
	shade := 9
	if mass <= 0 {
		shade = 1
	} else {
		down := int(-math.Log2(mass))
		if down < 0 {
			down = 0
		}
		shade -= down
		if shade < 1 {
			shade = 1
		}
	}
	return "/blues9/" + itoa(shade)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
