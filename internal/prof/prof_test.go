package prof_test

import (
	"math"
	"os"
	"strings"
	"testing"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/prof"
)

// buildMajority returns a fresh manager and the 5-variable majority
// function (true when at least three inputs are true) — small, shared, and
// non-trivial at every level.
func buildMajority(t *testing.T) (*bdd.Manager, bdd.Ref) {
	t.Helper()
	m := bdd.New(5)
	f := bdd.Zero
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			for k := j + 1; k < 5; k++ {
				a := m.And(m.IthVar(i), m.IthVar(j))
				ab := m.And(a, m.IthVar(k))
				m.Deref(a)
				nf := m.Or(f, ab)
				m.Deref(ab)
				m.Deref(f)
				f = nf
			}
		}
	}
	return m, f
}

func TestProfileCountsMatchManager(t *testing.T) {
	m, f := buildMajority(t)
	p := prof.For(m, f)

	if got, want := p.TotalNodes(), m.DagSize(f); got != want {
		t.Fatalf("TotalNodes = %d, want DagSize %d", got, want)
	}
	if p.Nodes != m.DagSize(f) {
		t.Fatalf("Nodes = %d, want %d", p.Nodes, m.DagSize(f))
	}

	// Minterm fraction of majority-of-5 is 16/32.
	if math.Abs(p.RootFracs[0]-0.5) > 1e-12 {
		t.Fatalf("root fraction = %v, want 0.5", p.RootFracs[0])
	}

	// The root level carries all of the root's minterm mass.
	if len(p.Levels) == 0 || math.Abs(p.Levels[0].Mass-0.5) > 1e-12 {
		t.Fatalf("top-level mass = %+v, want 0.5", p.Levels)
	}

	// Path histogram must agree with the manager's path counter.
	if got, want := p.PathsToOne, m.CountPath(f); got != want {
		t.Fatalf("PathsToOne = %v, want CountPath %v", got, want)
	}
	if got, want := p.PathsToZero, m.CountPath(f.Complement()); got != want {
		t.Fatalf("PathsToZero = %v, want %v", got, want)
	}
	if p.MinPath < 1 || p.MaxPath > 5 || p.MinPath > p.MaxPath {
		t.Fatalf("path bounds [%d,%d] out of range", p.MinPath, p.MaxPath)
	}

	// In-degree buckets cover every inner node exactly once.
	var inDeg int64
	for _, n := range p.InDegree {
		inDeg += n
	}
	if inDeg != int64(p.Inner) {
		t.Fatalf("in-degree buckets cover %d nodes, want %d", inDeg, p.Inner)
	}
}

// TestProfileMatchesLiveNodeAccounting is the acceptance check behind
// `bddlab -profile`: profiling every live root of a compiled circuit must
// reproduce the manager's own live-node accounting, level by level.
func TestProfileMatchesLiveNodeAccounting(t *testing.T) {
	f, err := os.Open("../../testdata/counter.net")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := circuit.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: len(nl.Latches) == 0})
	if err != nil {
		t.Fatal(err)
	}
	m := c.M
	m.GarbageCollect() // drop compile intermediates so live == referenced

	roots := c.LiveRoots()
	p := prof.Compute(m, roots, prof.Options{})
	if got, want := p.TotalNodes(), m.NodeCount(); got != want {
		t.Fatalf("profile covers %d nodes, manager accounts %d live", got, want)
	}
	if got, want := p.Nodes, m.SharingSize(roots); got != want {
		t.Fatalf("profile %d nodes, SharingSize %d", got, want)
	}
	counts := m.LiveLevelCounts()
	for _, st := range p.Levels {
		if counts[st.Level] != st.Nodes {
			t.Fatalf("level %d: profile %d nodes, arena %d", st.Level, st.Nodes, counts[st.Level])
		}
		counts[st.Level] = 0
	}
	for lev, n := range counts {
		if n != 0 {
			t.Fatalf("level %d: %d live nodes missing from the profile", lev, n)
		}
	}
}

func TestTopDeltasReflectApproximationCuts(t *testing.T) {
	m, f := buildMajority(t)
	before := prof.Compute(m, []bdd.Ref{f}, prof.Options{})
	g := approx.RemapUnderApprox(m, f, 2, 0.1) // aggressive: forces real cuts
	after := prof.Compute(m, []bdd.Ref{g}, prof.Options{})
	if m.DagSize(g) >= m.DagSize(f) {
		t.Skipf("approximation did not shrink (%d -> %d)", m.DagSize(f), m.DagSize(g))
	}
	s := prof.TopDeltas(before, after, 3)
	if s == "" {
		t.Fatal("TopDeltas empty for a shrinking approximation")
	}
	if !strings.Contains(s, "-") {
		t.Fatalf("TopDeltas %q must contain a negative delta", s)
	}
	if prof.TopDeltas(before, before, 3) != "" {
		t.Fatal("TopDeltas of identical profiles must be empty")
	}
}

func TestRenderTextAndJSON(t *testing.T) {
	m, f := buildMajority(t)
	p := prof.For(m, f)
	var b strings.Builder
	p.WriteText(&b)
	out := b.String()
	for _, want := range []string{"profile:", "level", "density", "paths:", "in-degree:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q:\n%s", want, out)
		}
	}
	var jb strings.Builder
	if err := p.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"levels\"", "\"max_width\"", "\"path_hist\""} {
		if !strings.Contains(jb.String(), want) {
			t.Fatalf("JSON render missing %q", want)
		}
	}
}

func TestDotColorGradesByMass(t *testing.T) {
	m, f := buildMajority(t)
	p := prof.For(m, f)
	if c := p.DotColor(f.ID()); c != "/blues9/8" && c != "/blues9/9" {
		t.Fatalf("root color = %q, want a dark blues9 shade", c)
	}
	if c := p.DotColor(0xffffff); c != "" {
		t.Fatalf("unknown node got color %q", c)
	}
	// Every profiled inner node gets a shade in range.
	for id := range p.NodeMass {
		c := p.DotColor(id)
		if !strings.HasPrefix(c, "/blues9/") {
			t.Fatalf("node %d color %q", id, c)
		}
	}
	if got := p.TopWidths(2); got == "" || !strings.Contains(got, ":") {
		t.Fatalf("TopWidths = %q", got)
	}
}
