package count_test

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/count"
	"bddkit/internal/model/gauntlet"
)

// bruteCount enumerates all 2^nVars assignments and evaluates f on each —
// the independent oracle for small functions.
func bruteCount(m *bdd.Manager, f bdd.Ref, nVars int) *big.Int {
	total := int64(0)
	a := make([]bool, m.NumVars())
	for bits := 0; bits < 1<<uint(nVars); bits++ {
		for v := 0; v < nVars; v++ {
			a[v] = bits&(1<<uint(v)) != 0
		}
		if m.Eval(f, a) {
			total++
		}
	}
	return big.NewInt(total)
}

// randomDNF builds an OR of random AND-cubes over nVars variables; the
// caller owns the result.
func randomDNF(m *bdd.Manager, rng *rand.Rand, nVars, cubes int) bdd.Ref {
	f := m.Ref(bdd.Zero)
	for i := 0; i < cubes; i++ {
		c := m.Ref(bdd.One)
		for v := 0; v < nVars; v++ {
			switch rng.Intn(3) {
			case 0:
				c2 := m.And(c, m.IthVar(v))
				m.Deref(c)
				c = c2
			case 1:
				c2 := m.And(c, m.Nor(m.IthVar(v), m.IthVar(v)))
				m.Deref(c)
				c = c2
			}
		}
		f2 := m.Or(f, c)
		m.Deref(f)
		m.Deref(c)
		f = f2
	}
	return f
}

func TestMintermsConstants(t *testing.T) {
	m := bdd.New(5)
	if c, err := count.Minterms(m, bdd.One, 5); err != nil || c.Int64() != 32 {
		t.Fatalf("‖1‖ over 5 vars = %v (err %v), want 32", c, err)
	}
	if c, err := count.Minterms(m, bdd.Zero, 5); err != nil || c.Sign() != 0 {
		t.Fatalf("‖0‖ over 5 vars = %v (err %v), want 0", c, err)
	}
	// Extra variables beyond the manager's space are free.
	if c, err := count.Minterms(m, bdd.One, 8); err != nil || c.Int64() != 256 {
		t.Fatalf("‖1‖ over 8 vars = %v (err %v), want 256", c, err)
	}
	// Shrinking the space below a constant's (empty) support is exact.
	if c, err := count.Minterms(m, bdd.One, 0); err != nil || c.Int64() != 1 {
		t.Fatalf("‖1‖ over 0 vars = %v (err %v), want 1", c, err)
	}
}

func TestMintermsAgainstBruteForce(t *testing.T) {
	const nVars = 10
	m := bdd.New(nVars)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		f := randomDNF(m, rng, nVars, 1+rng.Intn(6))
		want := bruteCount(m, f, nVars)
		got, err := count.Minterms(m, f, nVars)
		if err != nil {
			t.Fatalf("fn %d: %v", i, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("fn %d: Minterms = %v, brute force = %v", i, got, want)
		}
		// The float64 counter in internal/bdd must agree at this size.
		if fc := m.CountMinterm(f, nVars); fc != float64(want.Int64()) {
			t.Fatalf("fn %d: CountMinterm = %v, brute force = %v", i, fc, want)
		}
		m.Deref(f)
	}
}

func TestMintermsBeyond63Vars(t *testing.T) {
	const nVars = 70
	m := bdd.New(nVars)
	// A single variable: 2^69 solutions, unrepresentable in int64.
	want := new(big.Int).Lsh(big.NewInt(1), nVars-1)
	if c, err := count.Minterms(m, m.IthVar(0), nVars); err != nil || c.Cmp(want) != 0 {
		t.Fatalf("‖x0‖ = %v (err %v), want 2^69", c, err)
	}
	// The full positive cube: exactly one solution.
	cube := m.Ref(bdd.One)
	for v := 0; v < nVars; v++ {
		c2 := m.And(cube, m.IthVar(v))
		m.Deref(cube)
		cube = c2
	}
	if c, err := count.Minterms(m, cube, nVars); err != nil || c.Int64() != 1 {
		t.Fatalf("‖cube‖ = %v (err %v), want 1", c, err)
	}
	// Its complement: 2^70 - 1, exercising exactness in the low bits.
	want = new(big.Int).Lsh(big.NewInt(1), nVars)
	want.Sub(want, big.NewInt(1))
	notCube := m.Not(cube)
	if c, err := count.Minterms(m, notCube, nVars); err != nil || c.Cmp(want) != 0 {
		t.Fatalf("‖¬cube‖ = %v (err %v), want 2^70-1", c, err)
	}
	m.Deref(cube)
	m.Deref(notCube)
}

func TestMintermsSupportChecks(t *testing.T) {
	m := bdd.New(4)
	f := m.Ref(m.IthVar(3))
	defer m.Deref(f)
	if _, err := count.Minterms(m, f, 2); err == nil {
		t.Fatal("counting x3 over a 2-variable space must fail")
	}
	if _, err := count.Minterms(m, f, -1); err == nil {
		t.Fatal("negative space must fail")
	}
	if _, err := count.MintermsOver(m, f, []int{0, 1}); err == nil {
		t.Fatal("counting x3 over {0,1} must fail")
	}
	if _, err := count.MintermsOver(m, f, []int{3, 3}); err == nil {
		t.Fatal("duplicate counting variable must fail")
	}
	if _, err := count.MintermsOver(m, f, []int{3, 7}); err == nil {
		t.Fatal("out-of-range counting variable must fail")
	}
}

func TestMintermsOver(t *testing.T) {
	m := bdd.New(4)
	f := m.And(m.IthVar(0), m.IthVar(2))
	defer m.Deref(f)
	if c, err := count.MintermsOver(m, f, []int{0, 2}); err != nil || c.Int64() != 1 {
		t.Fatalf("‖x0∧x2‖ over {0,2} = %v (err %v), want 1", c, err)
	}
	if c, err := count.MintermsOver(m, f, []int{0, 1, 2}); err != nil || c.Int64() != 2 {
		t.Fatalf("‖x0∧x2‖ over {0,1,2} = %v (err %v), want 2", c, err)
	}
	if c, err := count.MintermsOver(m, f, []int{0, 1, 2, 3}); err != nil || c.Int64() != 4 {
		t.Fatalf("‖x0∧x2‖ over all four = %v (err %v), want 4", c, err)
	}
}

func TestFractionAndWeightedHalf(t *testing.T) {
	const nVars = 8
	m := bdd.New(nVars)
	rng := rand.New(rand.NewSource(7))
	half := func(int) float64 { return 0.5 }
	for i := 0; i < 20; i++ {
		f := randomDNF(m, rng, nVars, 1+rng.Intn(5))
		want := float64(bruteCount(m, f, nVars).Int64()) / float64(int(1)<<nVars)
		if got := count.Fraction(m, f); math.Abs(got-want) > 1e-12 {
			t.Fatalf("fn %d: Fraction = %v, want %v", i, got, want)
		}
		if got := count.Weighted(m, f, half); math.Abs(got-want) > 1e-9 {
			t.Fatalf("fn %d: Weighted(1/2) = %v, want fraction %v", i, got, want)
		}
		m.Deref(f)
	}
}

func TestWeightedClosedForm(t *testing.T) {
	m := bdd.New(3)
	and := m.And(m.IthVar(0), m.IthVar(1))
	or := m.Or(m.IthVar(0), m.IthVar(1))
	defer m.Deref(and)
	defer m.Deref(or)
	w := func(v int) float64 { return []float64{0.3, 0.6, 0.9}[v] }
	if got := count.Weighted(m, and, w); math.Abs(got-0.18) > 1e-12 {
		t.Fatalf("P(x0∧x1) = %v, want 0.18", got)
	}
	if got := count.Weighted(m, or, w); math.Abs(got-0.72) > 1e-12 {
		t.Fatalf("P(x0∨x1) = %v, want 0.72", got)
	}
	// Weights are clamped to [0,1].
	wild := func(v int) float64 { return []float64{5, -3, 0.5}[v] }
	if got := count.Weighted(m, and, wild); math.Abs(got-0) > 1e-12 {
		t.Fatalf("clamped P(x0∧x1) = %v, want 0", got)
	}
}

// TestCountReorderGCInvariance: the count is a function of the Boolean
// function alone — sifting the order and collecting garbage must not
// change it.
func TestCountReorderGCInvariance(t *testing.T) {
	m, f, err := gauntlet.New(gauntlet.Params{Family: gauntlet.FamilyQueens, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Deref(f)
	n := m.NumVars()
	before, err := count.Minterms(m, f, n)
	if err != nil {
		t.Fatal(err)
	}
	if before.Int64() != 10 {
		t.Fatalf("queens5 count = %v, want 10", before)
	}
	m.Reorder(bdd.ReorderSift, bdd.SiftConfig{})
	m.GarbageCollect()
	after, err := count.Minterms(m, f, n)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cmp(before) != 0 {
		t.Fatalf("count changed across reorder+GC: %v -> %v", before, after)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}
