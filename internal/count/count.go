// Package count implements exact model counting over the shared BDD
// arena: #SAT as a big.Int (safe beyond 63 variables, where the float64
// counting in internal/bdd stops being exact), weighted counting under
// independent per-variable probabilities, and uniform satisfying-
// assignment sampling that walks the diagram drawing branch choices from
// the exact subtree counts (after Clément's iterative ROBDD counting;
// see PAPERS.md).
//
// Every entry point does one iterative post-order sweep over the DAG —
// no recursion, so chain-shaped BDDs of 10^5+ levels cannot overflow the
// goroutine stack — and holds the manager's read lease
// (bdd.Manager.ReadLocked) for the duration, so counting is safe while
// other goroutines operate on a parallel (Workers > 1) manager.
//
// Counts are functions of the Boolean function alone: they are invariant
// under variable reordering, garbage collection, Save/Load round trips,
// and the worker count that built the diagram (the ROBDD is canonical
// for a fixed order). internal/oracle pins this down against closed-form
// ground truths (N-Queens solution counts and friends).
package count

import (
	"fmt"
	"math/big"

	"bddkit/internal/bdd"
)

// levelOf returns f's level clamped to n (terminals sit below every
// variable at level n).
func levelOf(m *bdd.Manager, f bdd.Ref, n int) int {
	if l := m.Level(f); l < n {
		return l
	}
	return n
}

// sweep fills memo with the exact minterm count of every sub-function
// reachable from f, counted over the variable space strictly below the
// sub-function's own root level (so memo[One] = 1: the empty space has
// one assignment). Keys are function refs with the complement bit folded
// in; both polarities of a shared node get their own entry. Must run
// under the manager's read lease.
func sweep(m *bdd.Manager, f bdd.Ref, n int, memo map[bdd.Ref]*big.Int) {
	if memo[bdd.One] == nil {
		memo[bdd.One] = big.NewInt(1)
		memo[bdd.Zero] = big.NewInt(0)
	}
	if _, ok := memo[f]; ok {
		return
	}
	stack := []bdd.Ref{f}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		if _, ok := memo[r]; ok {
			stack = stack[:len(stack)-1]
			continue
		}
		hi, lo := m.Hi(r), m.Lo(r)
		ch, okH := memo[hi]
		cl, okL := memo[lo]
		if !okH {
			stack = append(stack, hi)
		}
		if !okL {
			stack = append(stack, lo)
		}
		if !okH || !okL {
			continue
		}
		stack = stack[:len(stack)-1]
		// Each branch's count is taken over the space strictly below this
		// node; levels skipped between the node and the child root are
		// free, contributing a factor of 2 apiece.
		l := levelOf(m, r, n)
		c := new(big.Int).Lsh(ch, uint(levelOf(m, hi, n)-l-1))
		t := new(big.Int).Lsh(cl, uint(levelOf(m, lo, n)-l-1))
		memo[r] = c.Add(c, t)
	}
}

// Minterms returns ‖f‖: the exact number of satisfying assignments of f
// over a space of nVars variables. When nVars exceeds the manager's
// variable count the extra variables are free; when it is smaller, every
// support variable of f must have index < nVars (counting over a space
// that does not cover the support is an error).
func Minterms(m *bdd.Manager, f bdd.Ref, nVars int) (*big.Int, error) {
	if nVars < 0 {
		return nil, fmt.Errorf("count: negative variable count %d", nVars)
	}
	n := m.NumVars()
	if nVars < n {
		for _, v := range m.SupportVars(f) {
			if v >= nVars {
				return nil, fmt.Errorf("count: support variable %d outside the %d-variable space", v, nVars)
			}
		}
	}
	var total *big.Int
	m.ReadLocked(func() {
		memo := make(map[bdd.Ref]*big.Int)
		sweep(m, f, n, memo)
		// Levels above the root are free.
		total = new(big.Int).Lsh(memo[f], uint(levelOf(m, f, n)))
	})
	if nVars >= n {
		total.Lsh(total, uint(nVars-n))
	} else {
		// Exact: the support check above guarantees f is independent of
		// the n-nVars dropped variables.
		total.Rsh(total, uint(n-nVars))
	}
	return total, nil
}

// MintermsOver counts f's satisfying assignments over exactly the given
// variable set (reach uses this with the present-state variables to count
// reached states exactly). The support of f must be contained in vars;
// variables in vars but not in the support are free and double the count.
func MintermsOver(m *bdd.Manager, f bdd.Ref, vars []int) (*big.Int, error) {
	n := m.NumVars()
	in := make(map[int]bool, len(vars))
	for _, v := range vars {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("count: variable %d out of range [0,%d)", v, n)
		}
		if in[v] {
			return nil, fmt.Errorf("count: duplicate variable %d", v)
		}
		in[v] = true
	}
	for _, v := range m.SupportVars(f) {
		if !in[v] {
			return nil, fmt.Errorf("count: support variable %d not in the counting set", v)
		}
	}
	c, err := Minterms(m, f, n)
	if err != nil {
		return nil, err
	}
	// f is independent of the n-len(vars) variables outside the set, so
	// the division is exact.
	return c.Rsh(c, uint(n-len(vars))), nil
}

// Fraction returns ‖f‖/2^n as a float64 computed from the exact count —
// the big.Int analogue of bdd.Manager.MintermFraction, immune to the
// float64 rounding of deep recursions.
func Fraction(m *bdd.Manager, f bdd.Ref) float64 {
	n := m.NumVars()
	c, err := Minterms(m, f, n)
	if err != nil { // unreachable: nVars == NumVars never fails
		return 0
	}
	num := new(big.Float).SetInt(c)
	den := new(big.Float).SetMantExp(big.NewFloat(1), n)
	out, _ := new(big.Float).Quo(num, den).Float64()
	return out
}

// Weighted returns the probability that f is satisfied when each variable
// v is independently true with probability weight(v). Weights are clamped
// to [0,1]. With all weights 1/2 this equals the minterm fraction.
// Variables outside f's support integrate out (w·p + (1−w)·p = p), so no
// level-skip correction is needed.
func Weighted(m *bdd.Manager, f bdd.Ref, weight func(v int) float64) float64 {
	w := func(v int) float64 {
		p := weight(v)
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	var out float64
	m.ReadLocked(func() {
		memo := map[bdd.Ref]float64{bdd.One: 1, bdd.Zero: 0}
		if _, ok := memo[f]; !ok {
			stack := []bdd.Ref{f}
			for len(stack) > 0 {
				r := stack[len(stack)-1]
				if _, ok := memo[r]; ok {
					stack = stack[:len(stack)-1]
					continue
				}
				hi, lo := m.Hi(r), m.Lo(r)
				ph, okH := memo[hi]
				pl, okL := memo[lo]
				if !okH {
					stack = append(stack, hi)
				}
				if !okL {
					stack = append(stack, lo)
				}
				if !okH || !okL {
					continue
				}
				stack = stack[:len(stack)-1]
				p := w(m.Var(r))
				memo[r] = p*ph + (1-p)*pl
			}
		}
		out = memo[f]
	})
	return out
}
