package count_test

import (
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/count"
	"bddkit/internal/model/gauntlet"
)

func TestSampleSatisfies(t *testing.T) {
	m, f, err := gauntlet.New(gauntlet.Params{Family: gauntlet.FamilyQueens, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Deref(f)
	s, err := count.NewSampler(m, f, m.NumVars(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count().Int64() != 4 {
		t.Fatalf("queens6 count = %v, want 4", s.Count())
	}
	for i := 0; i < 200; i++ {
		a := s.Sample()
		if len(a) != m.NumVars() {
			t.Fatalf("sample %d has %d bits, want %d", i, len(a), m.NumVars())
		}
		if !m.Eval(f, a) {
			t.Fatalf("sample %d does not satisfy the function: %v", i, a)
		}
	}
}

func TestSampleDeterminism(t *testing.T) {
	m, f, err := gauntlet.New(gauntlet.Params{Family: gauntlet.FamilyQueens, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Deref(f)
	s1, err := count.NewSampler(m, f, m.NumVars(), 99)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := count.NewSampler(m, f, m.NumVars(), 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a, b := s1.Sample(), s2.Sample()
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("sample %d diverges at variable %d under identical seeds", i, v)
			}
		}
	}
}

func TestSampleBeyond63Vars(t *testing.T) {
	const nVars = 70
	m := bdd.New(nVars)
	f := m.Ref(m.IthVar(0))
	defer m.Deref(f)
	s, err := count.NewSampler(m, f, nVars, 3)
	if err != nil {
		t.Fatal(err)
	}
	seenTrue, seenFalse := false, false
	for i := 0; i < 50; i++ {
		a := s.Sample()
		if len(a) != nVars {
			t.Fatalf("sample %d has %d bits, want %d", i, len(a), nVars)
		}
		if !a[0] {
			t.Fatalf("sample %d violates x0", i)
		}
		// The free variables must actually vary.
		if a[40] {
			seenTrue = true
		} else {
			seenFalse = true
		}
	}
	if !seenTrue || !seenFalse {
		t.Fatal("free variable x40 never varied across 50 samples")
	}
}

func TestSamplerRejectsUnsat(t *testing.T) {
	m := bdd.New(2)
	if _, err := count.NewSampler(m, bdd.Zero, 2, 1); err == nil {
		t.Fatal("sampling the zero function must fail")
	}
	f := m.Ref(m.IthVar(1))
	defer m.Deref(f)
	if _, err := count.NewSampler(m, f, 1, 1); err == nil {
		t.Fatal("sampling x1 over a 1-variable space must fail")
	}
}

// TestSampleFrequencies: with two equally likely solutions, a fixed-seed
// run must split close to evenly (the rigorous chi-squared uniformity
// check lives in internal/oracle; this is the cheap smoke version).
func TestSampleFrequencies(t *testing.T) {
	m := bdd.New(2)
	f := m.Xor(m.IthVar(0), m.IthVar(1))
	defer m.Deref(f)
	s, err := count.NewSampler(m, f, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 2000
	hits := 0
	for i := 0; i < draws; i++ {
		a := s.Sample()
		if !m.Eval(f, a) {
			t.Fatalf("sample %d unsatisfying", i)
		}
		if a[0] {
			hits++
		}
	}
	if hits < 900 || hits > 1100 {
		t.Fatalf("solution (1,0) drawn %d/%d times, want ~1000", hits, draws)
	}
}

// TestCountDeterminism: counts and sample streams must be bit-identical
// whether the diagram was built by the serial engine or the Workers=4
// parallel engine — canonicity makes the ROBDD, and therefore everything
// derived from it, scheduling-independent. Runs under -race in the CI
// GOMAXPROCS matrix.
func TestCountDeterminism(t *testing.T) {
	p := gauntlet.Params{Family: gauntlet.FamilyQueens, N: 6}
	m1, f1, err := gauntlet.New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Deref(f1)
	cfg := bdd.DefaultConfig()
	cfg.Workers = 4
	m4 := bdd.NewWithConfig(p.Vars(), cfg)
	f4, err := gauntlet.Build(m4, p)
	if err != nil {
		t.Fatal(err)
	}
	defer m4.Deref(f4)

	c1, err := count.Minterms(m1, f1, p.Vars())
	if err != nil {
		t.Fatal(err)
	}
	c4, err := count.Minterms(m4, f4, p.Vars())
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cmp(c4) != 0 {
		t.Fatalf("Workers=1 counts %v, Workers=4 counts %v", c1, c4)
	}
	s1, err := count.NewSampler(m1, f1, p.Vars(), 42)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := count.NewSampler(m4, f4, p.Vars(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		a, b := s1.Sample(), s4.Sample()
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("sample %d diverges at variable %d across worker counts", i, v)
			}
		}
	}
	if err := m4.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}
