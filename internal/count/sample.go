package count

import (
	"fmt"
	"math/big"
	"math/rand"

	"bddkit/internal/bdd"
)

// Sampler draws satisfying assignments of a function uniformly at random:
// every minterm has probability exactly 1/‖f‖. It precomputes the exact
// subtree counts once, then each Sample walks root-to-terminal choosing
// the then-branch with probability weight(hi)/weight(node) and filling
// skipped levels with fair coins — the tree-compaction sampling recipe of
// Clément & Genitrini (see PAPERS.md) transplanted to shared ROBDDs with
// complement arcs.
//
// The sampler borrows f (the caller keeps its reference) and snapshots
// subtree counts keyed by node identity, so it must be discarded after
// any operation that rewrites nodes (variable reordering). Garbage
// collection is harmless: live nodes are never moved or rewritten.
type Sampler struct {
	m     *bdd.Manager
	f     bdd.Ref
	n     int // manager variable count at build time
	nVars int // sample space width
	rng   *rand.Rand
	memo  map[bdd.Ref]*big.Int
	total *big.Int
}

// NewSampler prepares uniform sampling of f over nVars variables with a
// deterministic seed. f must be satisfiable, and — as with Minterms —
// when nVars is below the manager's variable count every support
// variable must have index < nVars.
func NewSampler(m *bdd.Manager, f bdd.Ref, nVars int, seed int64) (*Sampler, error) {
	if f == bdd.Zero {
		return nil, fmt.Errorf("count: cannot sample an unsatisfiable function")
	}
	total, err := Minterms(m, f, nVars)
	if err != nil {
		return nil, err
	}
	s := &Sampler{
		m:     m,
		f:     f,
		n:     m.NumVars(),
		nVars: nVars,
		rng:   rand.New(rand.NewSource(seed)),
		memo:  make(map[bdd.Ref]*big.Int),
		total: total,
	}
	m.ReadLocked(func() { sweep(m, f, s.n, s.memo) })
	return s, nil
}

// Count returns ‖f‖ over the sample space (a copy).
func (s *Sampler) Count() *big.Int { return new(big.Int).Set(s.total) }

// coin assigns a fair bit for the variable at the given level, discarding
// bits for variables outside the sample space (their draw is kept so the
// stream does not depend on the manager's total variable count relative
// to nVars in surprising ways).
func (s *Sampler) coin(a []bool, v int) {
	bit := s.rng.Intn(2) == 1
	if v < len(a) {
		a[v] = bit
	}
}

// Sample draws one satisfying assignment, indexed by variable. The
// returned slice is freshly allocated.
func (s *Sampler) Sample() []bool {
	a := make([]bool, s.nVars)
	m := s.m
	m.ReadLocked(func() {
		r := s.f
		lev := 0
		for r != bdd.One && r != bdd.Zero {
			l := levelOf(m, r, s.n)
			// Levels above/skipped-to this node are unconstrained.
			for ; lev < l; lev++ {
				s.coin(a, m.VarAtLevel(lev))
			}
			hi, lo := m.Hi(r), m.Lo(r)
			lh, ll := levelOf(m, hi, s.n), levelOf(m, lo, s.n)
			wh := new(big.Int).Lsh(s.memo[hi], uint(lh-l-1))
			wl := new(big.Int).Lsh(s.memo[lo], uint(ll-l-1))
			tot := new(big.Int).Add(wh, wl) // > 0: we never enter a 0-count branch
			u := new(big.Int).Rand(s.rng, tot)
			// Branch variables are always in f's support, which NewSampler
			// verified lies inside the sample space.
			if u.Cmp(wh) < 0 {
				a[m.VarAtLevel(l)] = true
				r = hi
			} else {
				a[m.VarAtLevel(l)] = false
				r = lo
			}
			lev = l + 1
		}
		// r == One (a Zero branch has weight 0 and is never drawn);
		// everything below the final node is unconstrained.
		for ; lev < s.n; lev++ {
			s.coin(a, m.VarAtLevel(lev))
		}
	})
	// Free variables beyond the manager's space.
	for v := s.n; v < s.nVars; v++ {
		s.coin(a, v)
	}
	return a
}
