package approx

import (
	"math/rand"
	"testing"

	"bddkit/internal/bdd"
)

// TestRemapConfigVariants: every ablation variant remains a safe
// underapproximation.
func TestRemapConfigVariants(t *testing.T) {
	const n = 11
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(77))
	variants := []RemapConfig{
		{},
		{DisableRemap: true},
		{DisableGrandchild: true},
		{DisableRemap: true, DisableGrandchild: true},
	}
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 6)
		for _, cfg := range variants {
			g := RemapUnderApproxConfig(m, f, 0, 1.0, cfg)
			if !m.Leq(g, f) {
				t.Fatalf("variant %+v not contained", cfg)
			}
			if Density(m, g) < Density(m, f)-1e-9 {
				t.Fatalf("variant %+v lost density", cfg)
			}
			m.Deref(g)
		}
		m.Deref(f)
	}
}

// TestRemapThresholdStopsEarly: a threshold close to |f| makes RUA stop
// replacing almost immediately, so the result keeps most of the nodes.
func TestRemapThresholdStopsEarly(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 10; iter++ {
		f := buildRandom(m, rng, n, 7)
		size := m.DagSize(f)
		if size < 30 {
			m.Deref(f)
			continue
		}
		free := RemapUnderApprox(m, f, 0, 1.0)
		capped := RemapUnderApprox(m, f, size-2, 1.0)
		if m.DagSize(capped) < m.DagSize(free) {
			t.Fatalf("threshold %d produced a smaller result (%d) than unrestricted (%d)",
				size-2, m.DagSize(capped), m.DagSize(free))
		}
		m.Deref(f)
		m.Deref(free)
		m.Deref(capped)
	}
}

// TestUnderApproxAlphaExtremes: a minterm-dominated cost (alpha near 1)
// replaces less than a node-dominated cost (alpha near 0).
func TestUnderApproxAlphaExtremes(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(29))
	lessLoss, moreLoss := 0, 0
	for iter := 0; iter < 20; iter++ {
		f := buildRandom(m, rng, n, 7)
		conservative := UnderApprox(m, f, 0, 0.99)
		aggressive := UnderApprox(m, f, 0, 0.01)
		mc := m.CountMinterm(conservative, n)
		ma := m.CountMinterm(aggressive, n)
		if mc >= ma {
			lessLoss++
		} else {
			moreLoss++
		}
		for _, r := range []bdd.Ref{f, conservative, aggressive} {
			m.Deref(r)
		}
	}
	if lessLoss < moreLoss {
		t.Fatalf("alpha did not trade minterms for nodes (kept more only %d/%d times)",
			lessLoss, lessLoss+moreLoss)
	}
}

// TestShortPathsMonotoneInThreshold: a larger budget never yields a
// smaller subset family member.
func TestShortPathsMonotoneInThreshold(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 15; iter++ {
		f := buildRandom(m, rng, n, 7)
		small := ShortPaths(m, f, 10)
		big := ShortPaths(m, f, 1000000)
		// With an unbounded threshold SP returns f itself.
		if big != f {
			t.Fatalf("unbounded SP changed f")
		}
		if !m.Leq(small, big) {
			t.Fatal("SP subsets not monotone in threshold")
		}
		for _, r := range []bdd.Ref{f, small, big} {
			m.Deref(r)
		}
	}
}

// TestApproxOnConstants: all methods are identities on constants.
func TestApproxOnConstants(t *testing.T) {
	m := bdd.New(4)
	for _, f := range []bdd.Ref{bdd.One, bdd.Zero} {
		for name, fn := range approxFns(m, 10) {
			g := fn(f)
			if g != f {
				t.Fatalf("%s changed a constant", name)
			}
			m.Deref(g)
		}
	}
}

// TestNoLeaksAcrossApproximations: after releasing all results the manager
// is back to its permanent population.
func TestNoLeaksAcrossApproximations(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(3))
	f := buildRandom(m, rng, n, 6)
	for _, fn := range approxFns(m, 8) {
		g := fn(f)
		m.Deref(g)
	}
	m.Deref(f)
	m.GarbageCollect()
	if got := m.ReferencedNodeCount(); got != m.PermanentNodeCount()-1 {
		t.Fatalf("leak: %d live internal nodes, want %d",
			got, m.PermanentNodeCount()-1)
	}
}
