package approx

import "bddkit/internal/bdd"

// BiasedUnderApprox is the bias-directed variant of remapUnderApprox
// (CUDD's Cudd_BiasedUnderApprox, a descendant of the paper's algorithm):
// minterms inside a bias set weigh more than minterms outside it, so the
// subset gravitates toward the states the caller cares about. The paper's
// reachability application motivates it directly: when subsetting a
// frontier, states near the unexplored region are worth more than states
// deep inside the reached set.
//
// weight > 1 is the multiplier applied to minterms of f ∧ bias when the
// density test evaluates a replacement; weight = 1 degenerates to
// RemapUnderApprox. The result is always a true underapproximation of f.
func BiasedUnderApprox(m *bdd.Manager, f, bias bdd.Ref, threshold int, quality, weight float64) bdd.Ref {
	defer m.PauseAutoReorder()()
	if f.IsConstant() {
		return m.Ref(f)
	}
	if weight < 1 {
		weight = 1
	}
	lg := beginLedger(m, "biased", f, threshold)
	in := analyze(m, f)
	// Reweigh each node's minterm fraction by how much of it lies in the
	// bias set: frac' = frac + (weight-1)·frac(f ∧ bias at the node).
	// The biased fraction of a node is computed against the node's own
	// subfunction, using the same memoized recursion as analyze but
	// cofactoring the bias alongside.
	in.biasWeight = weight
	in.biasFrac = computeBiasFractions(in, f, bias)
	markNodes(in, f, threshold, quality)
	r := buildResult(in, f)
	lg.done(r)
	return r
}

// computeBiasFractions returns, for every regular node id reachable in f,
// the minterm fraction of (node ∧ bias-cofactor) — the recursion carries
// the bias down its own cofactors so each node is weighed against the
// portion of the bias set that can still reach it.
func computeBiasFractions(in *info, f, bias bdd.Ref) map[uint32]float64 {
	m := in.m
	out := make(map[uint32]float64)
	type key struct {
		f, b bdd.Ref
	}
	memo := make(map[key]float64)
	var rec func(g, b bdd.Ref) float64
	rec = func(g, b bdd.Ref) float64 {
		if b == bdd.Zero || g == bdd.Zero {
			return 0
		}
		if g == bdd.One {
			return m.MintermFraction(b)
		}
		k := key{g, b}
		if v, ok := memo[k]; ok {
			return v
		}
		lev := int32(m.Level(g))
		if !b.IsConstant() && int32(m.Level(b)) < lev {
			lev = int32(m.Level(b))
		}
		var g1, g0, b1, b0 bdd.Ref
		if !g.IsConstant() && int32(m.Level(g)) == lev {
			g1, g0 = m.Hi(g), m.Lo(g)
		} else {
			g1, g0 = g, g
		}
		if !b.IsConstant() && int32(m.Level(b)) == lev {
			b1, b0 = m.Hi(b), m.Lo(b)
		} else {
			b1, b0 = b, b
		}
		v := 0.5*rec(g1, b1) + 0.5*rec(g0, b0)
		memo[k] = v
		// Record the best-known biased fraction for the regular node
		// (a node reached under several bias cofactors keeps the
		// largest, erring toward protecting it).
		id := g.ID()
		if v > out[id] {
			out[id] = v
		}
		return v
	}
	rec(f.Regular(), bias)
	rec(f.Regular().Complement(), bias)
	return out
}
