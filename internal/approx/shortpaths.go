package approx

import (
	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// ShortPaths (SP) is short-path subsetting (Ravi–Somenzi, ICCAD'95; Table 2
// baseline of the paper): short paths to the One terminal correspond to
// large implicants represented with few nodes, so the subset keeps exactly
// the minterms covered by paths of bounded length. The bound is chosen (by
// binary search) as the largest that keeps the result within threshold
// nodes; if even the shortest-path subset exceeds the threshold it is
// returned anyway, as the smallest member of the family.
func ShortPaths(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
	defer m.PauseAutoReorder()()
	if f.IsConstant() {
		return m.Ref(f)
	}
	if threshold < 1 {
		threshold = 1
	}
	if m.DagSize(f) <= threshold {
		return m.Ref(f)
	}
	var span *obs.Span
	if obs.T.Enabled() {
		span = obs.T.Begin("approx.sp",
			obs.Int("size_in", m.DagSize(f)),
			obs.Int("threshold", threshold))
	}
	lg := beginLedger(m, "sp", f, threshold)
	sp := &shortPaths{m: m, dist: make(map[bdd.Ref]int)}
	dmin := sp.distToOne(f)
	lo, hi := dmin, m.NumVars()
	// Invariant: subsets of length < lo fit (or lo == dmin); length > hi
	// (i.e. the whole f) does not fit. Find the largest fitting bound.
	var best bdd.Ref = bdd.Ref(0)
	haveBest := false
	for lo <= hi {
		mid := (lo + hi) / 2
		r := sp.subset(f, mid)
		if m.DagSize(r) <= threshold {
			if haveBest {
				m.Deref(best)
			}
			best = r
			haveBest = true
			lo = mid + 1
		} else {
			m.Deref(r)
			hi = mid - 1
		}
	}
	if !haveBest {
		// Even the shortest paths overflow the threshold.
		best = sp.subset(f, dmin)
	}
	lg.done(best)
	if span != nil {
		span.End(obs.Int("size_out", m.DagSize(best)),
			obs.Str("level_deltas", levelDeltas(m, f, best)))
	}
	return best
}

type shortPaths struct {
	m    *bdd.Manager
	dist map[bdd.Ref]int // seen function -> shortest #arcs to One
}

const spInf = int(^uint(0) >> 2)

// distToOne returns the length (in arcs) of the shortest path from the
// function f to the value 1, taking complement parity into account by
// memoizing on seen references.
func (sp *shortPaths) distToOne(f bdd.Ref) int {
	if f == bdd.One {
		return 0
	}
	if f == bdd.Zero {
		return spInf
	}
	if d, ok := sp.dist[f]; ok {
		return d
	}
	// Break cycles impossible: DAG. Mark in progress unnecessary.
	dh := sp.distToOne(sp.m.Hi(f))
	dl := sp.distToOne(sp.m.Lo(f))
	d := dh
	if dl < d {
		d = dl
	}
	if d < spInf {
		d++
	}
	sp.dist[f] = d
	return d
}

// subset returns the union of all paths of f to One with length ≤ budget.
func (sp *shortPaths) subset(f bdd.Ref, budget int) bdd.Ref {
	type key struct {
		f      bdd.Ref
		budget int
	}
	m := sp.m
	memo := make(map[key]bdd.Ref)
	var rec func(f bdd.Ref, budget int) bdd.Ref
	rec = func(f bdd.Ref, budget int) bdd.Ref {
		if f == bdd.One {
			return bdd.One
		}
		if f == bdd.Zero || sp.distToOne(f) > budget {
			return bdd.Zero
		}
		// Clamp the budget to the longest useful value so equivalent
		// states share memo entries.
		k := key{f, budget}
		if r, ok := memo[k]; ok {
			return r
		}
		t := rec(m.Hi(f), budget-1)
		e := rec(m.Lo(f), budget-1)
		r := m.ITE(m.IthVar(m.Var(f)), t, e)
		memo[k] = r
		return r
	}
	r := rec(f, budget)
	m.Ref(r)
	for _, v := range memo {
		m.Deref(v)
	}
	return r
}
