package approx_test

import (
	"fmt"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
)

// RemapUnderApprox extracts a dense subset: fewer nodes per minterm than
// the original, never adding minterms.
func ExampleRemapUnderApprox() {
	m := bdd.New(8)
	// A union of products with very different minterm mass.
	wide := m.And(m.IthVar(0), m.IthVar(1)) // 1/4 of the space
	var narrow bdd.Ref = m.Ref(bdd.One)     // a single minterm
	for i := 0; i < 8; i++ {
		lit := m.IthVar(i)
		if i%2 == 1 {
			lit = lit.Complement()
		}
		nn := m.And(narrow, lit)
		m.Deref(narrow)
		narrow = nn
	}
	f := m.Or(wide, narrow)

	g := approx.RemapUnderApprox(m, f, 0, 1.0)
	fmt.Println("contained:", m.Leq(g, f))
	fmt.Println("safe:", approx.Density(m, g) >= approx.Density(m, f))
	fmt.Println("smaller:", m.DagSize(g) <= m.DagSize(f))
	m.Deref(wide)
	m.Deref(narrow)
	m.Deref(f)
	m.Deref(g)
	// Output:
	// contained: true
	// safe: true
	// smaller: true
}

// Compound methods never lose to their simple counterparts.
func ExampleCompound1() {
	m := bdd.New(6)
	f := m.Xor(m.IthVar(0), m.IthVar(3))
	g := m.And(f, m.IthVar(5))
	rua := approx.RemapUnderApprox(m, g, 0, 1.0)
	c1 := approx.Compound1(m, g, 0, 1.0)
	fmt.Println("C1 nodes ≤ RUA nodes:", m.DagSize(c1) <= m.DagSize(rua))
	fmt.Println("C1 minterms ≥ RUA minterms:",
		m.CountMinterm(c1, 6) >= m.CountMinterm(rua, 6))
	m.Deref(f)
	m.Deref(g)
	m.Deref(rua)
	m.Deref(c1)
	// Output:
	// C1 nodes ≤ RUA nodes: true
	// C1 minterms ≥ RUA minterms: true
}
