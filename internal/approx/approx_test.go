package approx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bddkit/internal/bdd"
)

// buildRandom returns a random function over n variables from a seeded
// expression tree, owned by the caller.
func buildRandom(m *bdd.Manager, rng *rand.Rand, n, depth int) bdd.Ref {
	if depth == 0 {
		v := m.Ref(m.IthVar(rng.Intn(n)))
		if rng.Intn(2) == 0 {
			return v.Complement()
		}
		return v
	}
	a := buildRandom(m, rng, n, depth-1)
	b := buildRandom(m, rng, n, depth-1)
	var r bdd.Ref
	switch rng.Intn(3) {
	case 0:
		r = m.And(a, b)
	case 1:
		r = m.Or(a, b)
	default:
		r = m.Xor(a, b)
	}
	m.Deref(a)
	m.Deref(b)
	return r
}

// approxFns enumerates every simple underapproximation under test.
func approxFns(m *bdd.Manager, threshold int) map[string]func(bdd.Ref) bdd.Ref {
	return map[string]func(bdd.Ref) bdd.Ref{
		"HB":  func(f bdd.Ref) bdd.Ref { return HeavyBranch(m, f, threshold) },
		"SP":  func(f bdd.Ref) bdd.Ref { return ShortPaths(m, f, threshold) },
		"UA":  func(f bdd.Ref) bdd.Ref { return UnderApprox(m, f, threshold, 0.5) },
		"RUA": func(f bdd.Ref) bdd.Ref { return RemapUnderApprox(m, f, threshold, 1.0) },
		"C1":  func(f bdd.Ref) bdd.Ref { return Compound1(m, f, threshold, 1.0) },
		"C2":  func(f bdd.Ref) bdd.Ref { return Compound2(m, f, threshold, 1.0) },
	}
}

// TestUnderApproxContainment: every method returns a subset of f.
func TestUnderApproxContainment(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 60; iter++ {
		f := buildRandom(m, rng, n, 6)
		for _, th := range []int{0, 5, 20} {
			for name, fn := range approxFns(m, th) {
				g := fn(f)
				if !m.Leq(g, f) {
					t.Fatalf("%s(threshold=%d) is not an underapproximation", name, th)
				}
				m.Deref(g)
			}
		}
		m.Deref(f)
	}
	if err := m.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRemapSafety: Definition 1 of the paper — with quality ≥ 1 RUA never
// decreases density.
func TestRemapSafety(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(5150))
	for iter := 0; iter < 60; iter++ {
		f := buildRandom(m, rng, n, 7)
		if f.IsConstant() {
			m.Deref(f)
			continue
		}
		g := RemapUnderApprox(m, f, 0, 1.0)
		df, dg := Density(m, f), Density(m, g)
		if dg < df-1e-9 {
			t.Fatalf("RUA not safe: δ(f)=%v δ(g)=%v (|f|=%d |g|=%d)",
				df, dg, m.DagSize(f), m.DagSize(g))
		}
		m.Deref(f)
		m.Deref(g)
	}
}

// TestCompoundDominance: C1 never loses to RUA (≤ nodes, ≥ minterms), the
// property quoted in Section 4 of the paper.
func TestCompoundDominance(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 40; iter++ {
		f := buildRandom(m, rng, n, 7)
		rua := RemapUnderApprox(m, f, 0, 1.0)
		c1 := Compound1(m, f, 0, 1.0)
		if m.DagSize(c1) > m.DagSize(rua) {
			t.Fatal("C1 larger than RUA")
		}
		if m.CountMinterm(c1, n) < m.CountMinterm(rua, n)-1e-6 {
			t.Fatal("C1 retains fewer minterms than RUA")
		}
		for _, r := range []bdd.Ref{f, rua, c1} {
			m.Deref(r)
		}
	}
}

// TestOverApprox: the dual wrappers return supersets.
func TestOverApprox(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(808))
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 6)
		for name, fn := range map[string]func(bdd.Ref) bdd.Ref{
			"RemapOver": func(f bdd.Ref) bdd.Ref { return RemapOverApprox(m, f, 0, 1.0) },
			"UAOver":    func(f bdd.Ref) bdd.Ref { return OverApprox(m, f, 0, 0.5) },
		} {
			g := fn(f)
			if !m.Leq(f, g) {
				t.Fatalf("%s is not an overapproximation", name)
			}
			m.Deref(g)
		}
		m.Deref(f)
	}
}

// TestHeavyBranchThreshold: HB respects its size budget within the slack of
// its chain construction (chain length ≤ number of variables).
func TestHeavyBranchThreshold(t *testing.T) {
	const n = 14
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 20; iter++ {
		f := buildRandom(m, rng, n, 8)
		for _, th := range []int{4, 16, 64} {
			g := HeavyBranch(m, f, th)
			if got := m.DagSize(g); got > th+n {
				t.Fatalf("HB size %d far exceeds threshold %d", got, th)
			}
			m.Deref(g)
		}
		m.Deref(f)
	}
}

// TestShortPathsKeepsShortestImplicant: the SP subset always contains at
// least one shortest-path implicant of f (it is never Zero for f ≠ Zero).
func TestShortPathsKeepsShortestImplicant(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 7)
		if f == bdd.Zero {
			m.Deref(f)
			continue
		}
		g := ShortPaths(m, f, 3)
		if g == bdd.Zero {
			t.Fatal("SP produced the empty subset for a satisfiable function")
		}
		m.Deref(f)
		m.Deref(g)
	}
}

// TestApproxIdentityOnSmall: a threshold at least as large as |f| returns f
// itself for the subsetting methods that honor thresholds directly.
func TestApproxIdentityOnSmall(t *testing.T) {
	const n = 8
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		f := buildRandom(m, rng, n, 5)
		size := m.DagSize(f)
		g := ShortPaths(m, f, size)
		if g != f {
			t.Fatal("SP changed a function that already fits")
		}
		m.Deref(g)
		h := HeavyBranch(m, f, size)
		if h != f {
			t.Fatal("HB changed a function that already fits")
		}
		m.Deref(h)
		m.Deref(f)
	}
}

// TestRemapQualityMonotonicity: larger quality factors are pickier, so the
// result cannot lose density.
func TestRemapQuality(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(314))
	for iter := 0; iter < 20; iter++ {
		f := buildRandom(m, rng, n, 7)
		loose := RemapUnderApprox(m, f, 0, 0.5)
		strict := RemapUnderApprox(m, f, 0, 1.0)
		// Both are subsets; the strict one must be safe.
		if Density(m, strict) < Density(m, f)-1e-9 {
			t.Fatal("strict RUA lost density")
		}
		if !m.Leq(loose, f) || !m.Leq(strict, f) {
			t.Fatal("containment violated")
		}
		for _, r := range []bdd.Ref{f, loose, strict} {
			m.Deref(r)
		}
	}
}

// TestIteratedRemap: the compound iterated RUA remains a safe subset.
func TestIteratedRemap(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(1999))
	for iter := 0; iter < 15; iter++ {
		f := buildRandom(m, rng, n, 7)
		g := IteratedRemap(m, f, 0, 2.0, 0.5)
		if !m.Leq(g, f) {
			t.Fatal("iterated RUA not contained")
		}
		if Density(m, g) < Density(m, f)-1e-9 {
			t.Fatal("iterated RUA lost density")
		}
		m.Deref(f)
		m.Deref(g)
	}
}

// TestQuickContainmentProperty uses testing/quick over random seeds: for
// any seed, RUA and UA produce subsets and RUA with quality 1 is safe.
func TestQuickContainmentProperty(t *testing.T) {
	const n = 9
	prop := func(seed int64) bool {
		m := bdd.New(n)
		rng := rand.New(rand.NewSource(seed))
		f := buildRandom(m, rng, n, 6)
		defer m.Deref(f)
		rua := RemapUnderApprox(m, f, 0, 1.0)
		defer m.Deref(rua)
		ua := UnderApprox(m, f, 0, 0.5)
		defer m.Deref(ua)
		if !m.Leq(rua, f) || !m.Leq(ua, f) {
			return false
		}
		return Density(m, rua) >= Density(m, f)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMintermAccounting: the internal estimate of remaining minterms agrees
// with the exact count of the built result (validates the weight
// propagation of markNodes).
func TestMintermAccounting(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(606))
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 6)
		if f.IsConstant() {
			m.Deref(f)
			continue
		}
		in := analyze(m, f)
		markNodes(in, f, 0, 1.0)
		g := buildResult(in, f)
		want := in.resultFrac
		got := m.MintermFraction(g)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("estimated fraction %v, actual %v", want, got)
		}
		m.Deref(f)
		m.Deref(g)
	}
}
