package approx

import (
	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// HeavyBranch (HB) is heavy-branch subsetting (Ravi–Somenzi, ICCAD'95;
// Table 2 baseline of the paper). Starting at the root it repeatedly
// discards the "light branch" — the child with fewer minterms — replacing
// it with the constant Zero and descending into the heavy child, until the
// residual BDD fits the threshold. The result is a BDD with a string of
// nodes at the top, each with one constant child, ending in an untouched
// subgraph of f.
func HeavyBranch(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
	defer m.PauseAutoReorder()()
	if f.IsConstant() {
		return m.Ref(f)
	}
	if threshold < 1 {
		threshold = 1
	}
	var sp *obs.Span
	if obs.T.Enabled() {
		sp = obs.T.Begin("approx.hb",
			obs.Int("size_in", m.DagSize(f)),
			obs.Int("threshold", threshold))
	}
	lg := beginLedger(m, "hb", f, threshold)
	type step struct {
		v      int
		takeHi bool
	}
	var chain []step
	cur := f
	for !cur.IsConstant() && m.DagSize(cur)+len(chain) > threshold {
		hi, lo := m.Hi(cur), m.Lo(cur)
		if m.MintermFraction(hi) >= m.MintermFraction(lo) {
			chain = append(chain, step{m.Var(cur), true})
			cur = hi
		} else {
			chain = append(chain, step{m.Var(cur), false})
			cur = lo
		}
	}
	// Rebuild: cur AND the conjunction of the literals chosen on the way
	// down. Each step keeps only the heavy cofactor, so the result is
	// contained in f.
	r := m.Ref(cur)
	for i := len(chain) - 1; i >= 0; i-- {
		v := m.IthVar(chain[i].v)
		var nr bdd.Ref
		if chain[i].takeHi {
			nr = m.ITE(v, r, bdd.Zero)
		} else {
			nr = m.ITE(v, bdd.Zero, r)
		}
		m.Deref(r)
		r = nr
	}
	lg.done(r)
	if sp != nil {
		sp.End(obs.Int("size_out", m.DagSize(r)),
			obs.Str("level_deltas", levelDeltas(m, f, r)))
	}
	return r
}
