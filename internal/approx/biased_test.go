package approx

import (
	"math/rand"
	"testing"

	"bddkit/internal/bdd"
)

// TestBiasedContainmentAndSafety: the biased variant remains a true,
// density-safe underapproximation for any bias set.
func TestBiasedContainmentAndSafety(t *testing.T) {
	const n = 11
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 25; iter++ {
		f := buildRandom(m, rng, n, 6)
		bias := buildRandom(m, rng, n, 4)
		g := BiasedUnderApprox(m, f, bias, 0, 1.0, 4.0)
		if !m.Leq(g, f) {
			t.Fatal("biased result not contained in f")
		}
		if Density(m, g) < Density(m, f)-1e-9 {
			t.Fatal("biased result lost density")
		}
		for _, r := range []bdd.Ref{f, bias, g} {
			m.Deref(r)
		}
	}
}

// TestBiasWeightOneIsRUA: weight 1 must reproduce plain RUA exactly.
func TestBiasWeightOneIsRUA(t *testing.T) {
	const n = 10
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 15; iter++ {
		f := buildRandom(m, rng, n, 6)
		bias := buildRandom(m, rng, n, 4)
		a := BiasedUnderApprox(m, f, bias, 0, 1.0, 1.0)
		b := RemapUnderApprox(m, f, 0, 1.0)
		if a != b {
			t.Fatal("weight 1 diverged from RUA")
		}
		for _, r := range []bdd.Ref{f, bias, a, b} {
			m.Deref(r)
		}
	}
}

// TestBiasProtectsBiasedMinterms: across a sample, the biased variant
// retains at least as many bias-set minterms as plain RUA on average.
func TestBiasProtectsBiasedMinterms(t *testing.T) {
	const n = 12
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(4096))
	better, worse := 0, 0
	for iter := 0; iter < 30; iter++ {
		f := buildRandom(m, rng, n, 7)
		bias := buildRandom(m, rng, n, 5)
		plain := RemapUnderApprox(m, f, 0, 1.0)
		biased := BiasedUnderApprox(m, f, bias, 0, 1.0, 8.0)
		pb := m.And(plain, bias)
		bb := m.And(biased, bias)
		kp := m.CountMinterm(pb, n)
		kb := m.CountMinterm(bb, n)
		switch {
		case kb > kp:
			better++
		case kb < kp:
			worse++
		}
		for _, r := range []bdd.Ref{f, bias, plain, biased, pb, bb} {
			m.Deref(r)
		}
	}
	if better < worse {
		t.Fatalf("bias did not protect biased minterms (better %d, worse %d)", better, worse)
	}
	t.Logf("bias retained more bias-set minterms on %d cases, fewer on %d", better, worse)
}
