package approx

import (
	"math/rand"
	"testing"
	"time"

	"bddkit/internal/bdd"
)

// TestToBudgetContainmentAndSize: ToBudget must meet the node budget and
// stay containment-sound across a spread of random functions and budgets.
func TestToBudgetContainmentAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := bdd.New(14)
	for trial := 0; trial < 20; trial++ {
		f := buildRandom(m, rng, 14, 6)
		size := m.DagSize(f)
		for _, budget := range []int{size * 2, size, size / 2, size / 8, 3, 1} {
			if budget <= 0 {
				continue
			}
			r := ToBudget(m, f, budget)
			if got := m.DagSize(r); got > budget {
				t.Fatalf("trial %d: ToBudget(%d nodes, budget %d) returned %d nodes", trial, size, budget, got)
			}
			if !m.Leq(r, f) {
				t.Fatalf("trial %d budget %d: result is not contained in f", trial, budget)
			}
			m.Deref(r)
		}
		m.Deref(f)
	}
}

// TestToBudgetIdentityUnderBudget: a function already inside the budget
// comes back untouched (same canonical ref).
func TestToBudgetIdentityUnderBudget(t *testing.T) {
	m := bdd.New(8)
	rng := rand.New(rand.NewSource(9))
	f := buildRandom(m, rng, 8, 5)
	defer m.Deref(f)
	r := ToBudget(m, f, m.DagSize(f))
	defer m.Deref(r)
	if r != f {
		t.Fatalf("under-budget input was rewritten: %v -> %v", f, r)
	}
	// No budget at all behaves the same.
	r0 := ToBudget(m, f, 0)
	defer m.Deref(r0)
	if r0 != f {
		t.Fatal("maxNodes=0 must mean no budget")
	}
}

// TestToBudgetAfterAbort is the server scenario end to end: an operation
// trips an armed node limit under RunLimited, then the caller degrades the
// oversized operand to the quota with the limit disarmed.
func TestToBudgetAfterAbort(t *testing.T) {
	m := bdd.New(20)
	rng := rand.New(rand.NewSource(41))
	f := buildRandom(m, rng, 20, 8)
	defer m.Deref(f)
	quota := m.NodeCount() + 4
	var g bdd.Ref
	err := m.RunLimited(time.Time{}, quota, func() error {
		a := buildRandom(m, rng, 20, 8)
		g = m.And(f, a)
		m.Deref(a)
		return nil
	})
	if err == nil {
		// The workload fit after all; force the degrade path anyway.
		m.Deref(g)
	}
	if m.NodeLimit() != 0 {
		t.Fatal("RunLimited did not restore the disarmed node limit")
	}
	d := ToBudget(m, f, 8)
	defer m.Deref(d)
	if m.DagSize(d) > 8 {
		t.Fatalf("degrade returned %d nodes for a budget of 8", m.DagSize(d))
	}
	if !m.Leq(d, f) {
		t.Fatal("degraded answer is not containment-sound")
	}
}
