// Package approx implements the BDD approximation algorithms of Section 2
// of the DAC'98 paper "Approximation and Decomposition of Binary Decision
// Diagrams" (Ravi, McMillan, Shiple, Somenzi):
//
//   - HeavyBranch (HB): heavy-branch subsetting, Ravi–Somenzi ICCAD'95.
//   - ShortPaths (SP): short-path subsetting, Ravi–Somenzi ICCAD'95.
//   - UnderApprox (UA): Shiple's bddUnderApprox — replace-by-0 only, convex
//     cost, handles both complementation parities, not density-safe.
//   - RemapUnderApprox (RUA): the paper's new three-pass algorithm with
//     remap, replace-by-grandchild, and replace-by-0 transformations and a
//     density-based acceptance test (Figures 2–4 of the paper).
//   - Compound methods C1 and C2 (Section 2.2): compositions with the safe
//     interval minimization µ.
//
// All functions return under- (or over-) approximations in the BDD sense:
// UnderX(f) ⇒ f and f ⇒ OverX(f). Results carry one reference owned by the
// caller.
package approx

import "bddkit/internal/bdd"

// Density returns δ(f) = ‖f‖/|f| over the manager's variable count — the
// figure of merit the paper ranks approximations by.
func Density(m *bdd.Manager, f bdd.Ref) float64 {
	return m.Density(f, m.NumVars())
}

// nodeData is the per-node record of the analysis pass ("info" in Figure 2
// of the paper).
type nodeData struct {
	frac    float64 // minterm fraction of the regular node's function
	funcRef int32   // arcs within f pointing at this node (root counts 1)
	parity  uint8   // 1 = reached with even parity, 2 = odd, 3 = both
	// Fields below are used by markNodes.
	weightE float64 // fraction of assignments whose path reaches the node uncomplemented
	weightO float64 // same, through an odd number of complement arcs
	queued  bool
	status  replStatus
	sel     bdd.Ref // replacement description (meaning depends on status)
	selVar  int     // grandchild variable for statusGrandchild
	selThen bool    // grandchild direction: true = y·g, false = ¬y·g
}

type replStatus uint8

const (
	statusKeep replStatus = iota
	statusZero
	statusRemap
	statusGrandchild
)

const (
	parityEven = 1
	parityOdd  = 2
)

// info aggregates the analysis of one BDD ("info" of Figure 2): per-node
// data plus the global result estimates used by the density test.
type info struct {
	m     *bdd.Manager
	cfg   RemapConfig
	nodes map[uint32]*nodeData
	// buildOp is the per-invocation computed-table code under which the
	// rebuild pass memoizes its results in the manager's shared cache
	// (see buildResult).
	buildOp uint32
	// Estimates of the result: size in nodes and minterm fraction.
	resultSize int
	resultFrac float64
	rootFrac   float64
	rootSize   int
	// Bias fields (BiasedUnderApprox): when biasWeight > 1, minterm
	// losses at nodes overlapping the bias set are inflated by up to
	// that factor in the density test.
	biasWeight float64
	biasFrac   map[uint32]float64
}

// lossScale returns the multiplier the density test applies to minterm
// losses at the given node, according to the bias configuration.
func (in *info) lossScale(node bdd.Ref) float64 {
	if in.biasWeight <= 1 || in.biasFrac == nil {
		return 1
	}
	d := in.at(node)
	if d == nil || d.frac <= 0 {
		return 1
	}
	share := in.biasFrac[node.ID()] / d.frac
	if share > 1 {
		share = 1
	}
	return 1 + (in.biasWeight-1)*share
}

// analyze performs the first pass of remapUnderApprox (Figure 2): a
// depth-first traversal computing, for every node, the minterm fraction of
// its function, the number of arcs pointing to it, and the parities it is
// reached with.
func analyze(m *bdd.Manager, f bdd.Ref) *info {
	in := &info{m: m, nodes: make(map[uint32]*nodeData)}
	in.collect(f)
	root := in.at(f)
	root.funcRef = 1
	in.markParity(f)
	in.rootFrac = fracOf(in, f)
	in.rootSize = m.DagSize(f)
	in.resultSize = in.rootSize
	in.resultFrac = in.rootFrac
	return in
}

// at returns the record of f's node (by regular id).
func (in *info) at(f bdd.Ref) *nodeData { return in.nodes[f.ID()] }

// collect fills frac and funcRef for every node reachable from f.
func (in *info) collect(f bdd.Ref) *nodeData {
	if d, ok := in.nodes[f.ID()]; ok {
		return d
	}
	d := &nodeData{}
	in.nodes[f.ID()] = d
	if f.IsConstant() {
		d.frac = 1 // regular constant is One
		return d
	}
	hi := in.m.StructHi(f)
	lo := in.m.StructLo(f)
	dh := in.collect(hi)
	dl := in.collect(lo)
	dh.funcRef++
	dl.funcRef++
	ph := dh.frac // hi edge is regular
	pl := dl.frac
	if lo.IsComplement() {
		pl = 1 - pl
	}
	d.frac = 0.5*ph + 0.5*pl
	return d
}

// markParity records, for every node, the complementation parities of the
// paths reaching it from f.
func (in *info) markParity(f bdd.Ref) {
	bit := uint8(parityEven)
	if f.IsComplement() {
		bit = parityOdd
	}
	d := in.at(f)
	if d.parity&bit != 0 {
		return
	}
	d.parity |= bit
	if f.IsConstant() {
		return
	}
	c := bdd.Ref(0)
	if f.IsComplement() {
		c = 1
	}
	in.markParity(in.m.StructHi(f) ^ c)
	in.markParity(in.m.StructLo(f) ^ c)
}

// fracOf returns the minterm fraction of the function denoted by f (parity
// applied).
func fracOf(in *info, f bdd.Ref) float64 {
	p := in.at(f).frac
	if f.IsComplement() {
		return 1 - p
	}
	return p
}

// levelQueue is the priority queue of Figures 3 and 4: nodes are dequeued
// in increasing level order, so a node is processed only after every parent
// within f.
type levelQueue struct {
	m       *bdd.Manager
	buckets [][]bdd.Ref // level -> regular refs
	cur     int
	n       int
}

func newLevelQueue(m *bdd.Manager) *levelQueue {
	return &levelQueue{m: m, buckets: make([][]bdd.Ref, m.NumVars()+1)}
}

func (q *levelQueue) push(f bdd.Ref, lev int) {
	q.buckets[lev] = append(q.buckets[lev], f)
	if lev < q.cur {
		q.cur = lev
	}
	q.n++
}

func (q *levelQueue) pop() (bdd.Ref, bool) {
	for q.cur < len(q.buckets) {
		b := q.buckets[q.cur]
		if len(b) > 0 {
			f := b[len(b)-1]
			q.buckets[q.cur] = b[:len(b)-1]
			q.n--
			return f, true
		}
		q.cur++
	}
	return 0, false
}
