package approx

import (
	"bddkit/internal/bdd"
	"bddkit/internal/prof"
)

// levelDeltas renders the per-level width changes an approximation caused,
// as the compact signed "level:±nodes" list of prof.TopDeltas — the
// attribution attached to approx.rua/hb/sp spans so a trace explains where
// each subsetting decision cut the diagram. Only called when tracing is
// active: it costs two O(|f|) profile sweeps.
func levelDeltas(m *bdd.Manager, f, g bdd.Ref) string {
	before := prof.Compute(m, []bdd.Ref{f}, prof.Options{})
	after := prof.Compute(m, []bdd.Ref{g}, prof.Options{})
	return prof.TopDeltas(before, after, 4)
}
