package approx

import (
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// Quality-ledger instrumentation shared by every approximation operator.
// beginLedger snapshots the input side (DAG size, minterm mass, GC/STW
// time already accrued) and done files the obs.OpRecord. The nil receiver
// is the disabled path: when the ledger is disarmed beginLedger returns
// nil and neither the DagSize sweep nor the MintermFraction sweep runs,
// so un-observed workloads pay one atomic load per operator call.

type opLedger struct {
	m         *bdd.Manager
	op        string
	threshold int
	start     time.Time
	sizeIn    int
	massIn    float64
	gc0       time.Duration
	stw0      time.Duration
}

// beginLedger opens a ledger record for op applied to f. threshold is the
// operator's node target (0 = none).
func beginLedger(m *bdd.Manager, op string, f bdd.Ref, threshold int) *opLedger {
	if !obs.L.Enabled() {
		return nil
	}
	st := m.Stats()
	return &opLedger{
		m:         m,
		op:        op,
		threshold: threshold,
		start:     time.Now(),
		sizeIn:    m.DagSize(f),
		massIn:    m.MintermFraction(f),
		gc0:       st.GCTime,
		stw0:      st.STWTime,
	}
}

// done files the record for result r. Nil-safe (disabled path).
func (lg *opLedger) done(r bdd.Ref) {
	if lg == nil {
		return
	}
	m := lg.m
	st := m.Stats()
	rec := obs.OpRecord{
		Kind:        "approx",
		Op:          lg.op,
		SizeIn:      lg.sizeIn,
		SizeOut:     m.DagSize(r),
		MassIn:      lg.massIn,
		MassOut:     m.MintermFraction(r),
		Threshold:   lg.threshold,
		BudgetLimit: m.NodeLimit(),
		BudgetLive:  m.NodeCount(),
		DurNS:       time.Since(lg.start).Nanoseconds(),
		GCNS:        (st.GCTime - lg.gc0).Nanoseconds(),
		STWNS:       (st.STWTime - lg.stw0).Nanoseconds(),
	}
	if rec.SizeIn > 0 {
		rec.DensityIn = rec.MassIn / float64(rec.SizeIn)
	}
	if rec.SizeOut > 0 {
		rec.DensityOut = rec.MassOut / float64(rec.SizeOut)
	}
	obs.L.Record(rec)
}
