package approx

import "bddkit/internal/bdd"

// UnderApprox (UA) is the original bddUnderApprox of Shiple (references
// [25, 26] of the paper). It differs from RemapUnderApprox in two ways
// (Section 2.1.3):
//
//   - the cost function is a convex combination of the number of minterms
//     and the number of nodes rather than their ratio, and
//   - only replace-by-0 is used, which makes it easy to replace nodes
//     reached through both complementation parities (the node reads as the
//     constant Zero in each phase).
//
// Because replacing a both-parity node may split a node higher in the BDD,
// UA is not density-safe, but on average it produces dense subsets and it
// is always a true underapproximation: UA(f) ⇒ f.
//
// alpha ∈ (0,1) weighs minterm retention against node savings: a
// replacement is accepted when
//
//	(1-alpha)·saved/|f| ≥ alpha·lost/‖f‖.
//
// alpha = 0.5 reproduces the balanced setting used in the paper's
// experiments. threshold, as in RUA, stops replacement once the estimated
// result size drops below it (0 = no early stop).
func UnderApprox(m *bdd.Manager, f bdd.Ref, threshold int, alpha float64) bdd.Ref {
	defer m.PauseAutoReorder()()
	if f.IsConstant() {
		return m.Ref(f)
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.5
	}
	lg := beginLedger(m, "ua", f, threshold)
	in := analyze(m, f)
	uaMark(in, f, threshold, alpha)
	r := buildResult(in, f)
	lg.done(r)
	return r
}

// OverApprox is the dual of UnderApprox: f ⇒ OverApprox(f).
func OverApprox(m *bdd.Manager, f bdd.Ref, threshold int, alpha float64) bdd.Ref {
	r := UnderApprox(m, f.Complement(), threshold, alpha)
	return r.Complement()
}

// uaMark is the marking pass of UA: top-down in level order, considering
// only replace-by-0, allowing both parities.
func uaMark(in *info, f bdd.Ref, threshold int, alpha float64) {
	m := in.m
	q := newLevelQueue(m)
	root := in.at(f)
	if f.IsComplement() {
		root.weightO = 1
	} else {
		root.weightE = 1
	}
	root.queued = true
	q.push(f.Regular(), m.Level(f))
	rootSize := float64(in.rootSize)
	rootM := in.rootFrac
	for {
		v, ok := q.pop()
		if !ok {
			break
		}
		d := in.at(v)
		done := threshold > 0 && in.resultSize <= threshold
		w := d.weightE + d.weightO
		if !done && w > 0 && v != f.Regular() {
			// Minterms lost: paths reaching the node with even parity
			// lose its on-set; paths with odd parity lose the on-set
			// of the complement (each phase reads Zero).
			lost := d.weightE*d.frac + d.weightO*(1-d.frac)
			rep := replacement{status: statusZero, exclude: bdd.One, lost: lost}
			rep.saved = nodesSaved(in, v, rep)
			if rootM > 0 &&
				(1-alpha)*float64(rep.saved)/rootSize >= alpha*rep.lost/rootM {
				applyReplacement(in, v, d, rep)
			}
		}
		enqueueChildren(in, q, v, d)
	}
}
