package approx

import (
	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// RemapUnderApprox (RUA) is the paper's new safe underapproximation
// algorithm (Section 2.1, Figures 2–4). It returns g ⇒ f with, for
// quality ≥ 1, δ(g) ≥ δ(f) (Definition 1: safety).
//
// threshold is the target size: node replacement stops once the estimated
// result size drops below it (threshold 0 lets the algorithm reduce the
// BDD as much as the density test allows — the setting used for the
// paper's Tables 2 and 3).
//
// quality is the minimum acceptable ratio between the density of the
// result with and without each candidate replacement; 1.0 accepts only
// replacements that do not decrease density (safe), smaller values accept
// lossier replacements, larger values are greedier about density.
func RemapUnderApprox(m *bdd.Manager, f bdd.Ref, threshold int, quality float64) bdd.Ref {
	return RemapUnderApproxConfig(m, f, threshold, quality, RemapConfig{})
}

// RemapConfig selects which replacement types RUA may use — the knobs for
// the ablation study of the three transformations of Section 2.1.1. The
// zero value enables everything (the paper's algorithm).
type RemapConfig struct {
	// DisableRemap turns off replace-by-child (the constrain-style remap).
	DisableRemap bool
	// DisableGrandchild turns off replace-by-grandchild.
	DisableGrandchild bool
}

// RemapUnderApproxConfig is RemapUnderApprox with explicit replacement-type
// selection. With both types disabled only replace-by-0 remains, which
// makes the algorithm a density-gated variant of bddUnderApprox.
func RemapUnderApproxConfig(m *bdd.Manager, f bdd.Ref, threshold int, quality float64, cfg RemapConfig) bdd.Ref {
	defer m.PauseAutoReorder()()
	if f.IsConstant() {
		return m.Ref(f)
	}
	var sp *obs.Span
	if obs.T.Enabled() { // gate so the disabled path never pays for DagSize
		sp = obs.T.Begin("approx.rua",
			obs.Int("size_in", m.DagSize(f)),
			obs.Int("threshold", threshold),
			obs.F64("quality", quality))
	}
	lg := beginLedger(m, "rua", f, threshold)
	in := analyze(m, f)
	in.cfg = cfg
	markNodes(in, f, threshold, quality)
	r := buildResult(in, f)
	lg.done(r)
	if sp != nil {
		sp.End(obs.Int("size_out", m.DagSize(r)),
			obs.Str("level_deltas", levelDeltas(m, f, r)))
	}
	return r
}

// RemapOverApprox is the dual of RemapUnderApprox: it returns g with
// f ⇒ g, obtained by underapproximating ¬f.
func RemapOverApprox(m *bdd.Manager, f bdd.Ref, threshold int, quality float64) bdd.Ref {
	r := RemapUnderApprox(m, f.Complement(), threshold, quality)
	return r.Complement()
}

// replacement describes the outcome of findReplacement for one node.
type replacement struct {
	status  replStatus
	sel     bdd.Ref // remap: the replacing child (seen); grandchild: g (seen)
	selVar  int     // grandchild: the variable of the new node
	selThen bool    // grandchild: true for y·g, false for ¬y·g
	lost    float64 // minterm fraction lost by the replacement
	saved   int     // lower bound on nodes saved
	exclude bdd.Ref // node that gains the redirected arcs (survives), or f
}

// markNodes is the second pass (Figure 3): a top-down traversal in level
// order that decides, for each node, whether to replace it and how.
func markNodes(in *info, f bdd.Ref, threshold int, quality float64) {
	m := in.m
	q := newLevelQueue(m)
	root := in.at(f)
	if f.IsComplement() {
		root.weightO = 1
	} else {
		root.weightE = 1
	}
	root.queued = true
	q.push(f.Regular(), m.Level(f))
	for {
		v, ok := q.pop()
		if !ok {
			break
		}
		d := in.at(v)
		done := threshold > 0 && in.resultSize <= threshold
		if !done && d.parity != parityEven|parityOdd && d.weightE+d.weightO > 0 {
			// Single-parity node: try the replacements in the order
			// remap, replace-by-grandchild, replace-by-0 and accept
			// the first that passes the density test.
			odd := d.parity == parityOdd
			seen := v
			if odd {
				seen = v.Complement()
			}
			rep, found := findReplacement(in, seen, d)
			rep.lost *= in.lossScale(seen)
			if found && densityRatio(in, rep) > quality {
				applyReplacement(in, seen, d, rep)
			}
		}
		enqueueChildren(in, q, v, d)
	}
}

// findReplacement implements the three replacement types of Section 2.1.1.
// seen is the node as a function (parity applied); d is its record.
func findReplacement(in *info, seen bdd.Ref, d *nodeData) (replacement, bool) {
	m := in.m
	w := d.weightE + d.weightO // single parity: one term is zero
	pSeen := fracOf(in, seen)
	ft := m.Hi(seen)
	fe := m.Lo(seen)

	// 1. remap: the function is unate in its top variable, so one child
	// contains the other; replace the node by the contained child.
	if !in.cfg.DisableRemap && m.Leq(fe, ft) {
		rep := replacement{
			status:  statusRemap,
			sel:     fe,
			lost:    w * (fracOf(in, ft) - fracOf(in, fe)) / 2,
			exclude: fe,
		}
		rep.saved = nodesSaved(in, seen, rep)
		return rep, true
	}
	if !in.cfg.DisableRemap && m.Leq(ft, fe) {
		rep := replacement{
			status:  statusRemap,
			sel:     ft,
			lost:    w * (fracOf(in, fe) - fracOf(in, ft)) / 2,
			exclude: ft,
		}
		rep.saved = nodesSaved(in, seen, rep)
		return rep, true
	}

	// 2. replace-by-grandchild: both children labeled by the same
	// variable and sharing a grandchild g; y·g (or ¬y·g) is contained in
	// the node's function and replaces it.
	if !in.cfg.DisableGrandchild && !ft.IsConstant() && !fe.IsConstant() && m.Level(ft) == m.Level(fe) {
		y := m.Var(ft)
		ftt, fte := m.Hi(ft), m.Lo(ft)
		fet, fee := m.Hi(fe), m.Lo(fe)
		if ftt == fet {
			rep := replacement{
				status:  statusGrandchild,
				sel:     ftt,
				selVar:  y,
				selThen: true,
				lost:    w * (pSeen - fracOf(in, ftt)/2),
				exclude: ftt,
			}
			rep.saved = nodesSaved(in, seen, rep) - 1 // one new node
			return rep, true
		}
		if fte == fee {
			rep := replacement{
				status:  statusGrandchild,
				sel:     fte,
				selVar:  y,
				selThen: false,
				lost:    w * (pSeen - fracOf(in, fte)/2),
				exclude: fte,
			}
			rep.saved = nodesSaved(in, seen, rep) - 1
			return rep, true
		}
	}

	// 3. replace-by-0: always applicable.
	rep := replacement{
		status:  statusZero,
		lost:    w * pSeen,
		exclude: bdd.One, // nothing survives by redirection
	}
	rep.saved = nodesSaved(in, seen, rep)
	return rep, true
}

// nodesSaved (Figure 4) returns the number of nodes that disappear from the
// result if seen's node is eliminated: the node itself plus every node all
// of whose remaining arcs come from eliminated nodes (domination), walking
// top-down in level order. The node named by rep.exclude survives by
// definition (it inherits the eliminated node's incoming arcs).
func nodesSaved(in *info, seen bdd.Ref, rep replacement) int {
	return len(dominatedSet(in, seen, rep.exclude))
}

// dominatedSet returns the set of node ids eliminated together with seen's
// node. A node is eliminated when every arc pointing to it within the
// (current, partially reduced) BDD comes from eliminated nodes — the
// localRef = functionRef test of Figure 4. exclude survives by definition.
func dominatedSet(in *info, seen bdd.Ref, exclude bdd.Ref) map[uint32]bool {
	m := in.m
	v := seen.Regular()
	excl := exclude.Regular()
	local := map[uint32]int32{v.ID(): in.at(v).funcRef}
	dom := make(map[uint32]bool)
	q := newLevelQueue(m)
	q.push(v, m.Level(v))
	queued := map[uint32]bool{v.ID(): true}
	for {
		u, ok := q.pop()
		if !ok {
			break
		}
		if u.IsConstant() {
			continue
		}
		if local[u.ID()] != in.at(u).funcRef || (u.ID() == excl.ID() && u != v) {
			continue
		}
		dom[u.ID()] = true
		for _, c := range [2]bdd.Ref{m.StructHi(u), m.StructLo(u)} {
			if c.IsConstant() {
				continue
			}
			local[c.ID()]++
			if !queued[c.ID()] {
				queued[c.ID()] = true
				q.push(c.Regular(), m.Level(c))
			}
		}
	}
	return dom
}

// densityRatio returns the ratio between the density of the estimated
// result with the replacement applied and without it.
func densityRatio(in *info, rep replacement) float64 {
	mOld := in.resultFrac
	sOld := float64(in.resultSize)
	mNew := mOld - rep.lost
	sNew := sOld - float64(rep.saved)
	if sNew < 1 {
		sNew = 1
	}
	if mOld <= 0 {
		return 0 // nothing left to lose; only structural cleanups matter
	}
	return (mNew * sOld) / (sNew * mOld)
}

// applyReplacement is updateInfo of Figure 3: it records the replacement,
// updates the global size and minterm estimates, and maintains funcRef so
// later domination queries see the reduced BDD.
func applyReplacement(in *info, seen bdd.Ref, d *nodeData, rep replacement) {
	m := in.m
	d.status = rep.status
	d.sel = rep.sel
	d.selVar = rep.selVar
	d.selThen = rep.selThen
	in.resultFrac -= rep.lost
	in.resultSize -= rep.saved
	if in.resultSize < 1 {
		in.resultSize = 1
	}
	dom := dominatedSet(in, seen, rep.exclude)
	// Remove the arcs leaving the dominated set.
	for id := range dom {
		u := refFromID(id)
		for _, c := range [2]bdd.Ref{m.StructHi(u), m.StructLo(u)} {
			if c.IsConstant() || dom[c.ID()] {
				continue
			}
			in.at(c).funcRef--
		}
	}
	// The survivor named by the replacement inherits the incoming arcs of
	// the replaced node; a grandchild replacement also adds one arc from
	// the new node.
	switch rep.status {
	case statusRemap:
		if !rep.sel.IsConstant() {
			in.at(rep.sel).funcRef += d.funcRef
		}
	case statusGrandchild:
		if !rep.sel.IsConstant() {
			in.at(rep.sel).funcRef++
		}
	}
}

// refFromID reconstructs a regular Ref from a node id.
func refFromID(id uint32) bdd.Ref { return bdd.Ref(id << 1) }

// enqueueChildren propagates path weights to the children that remain
// reachable under the node's (possibly replaced) form and enqueues them.
// Weights are deposited per seen function: a mass arriving at a child whose
// seen reference is complemented arrives with odd parity.
func enqueueChildren(in *info, q *levelQueue, v bdd.Ref, d *nodeData) {
	m := in.m
	deposit := func(childSeen bdd.Ref, mass float64) {
		if childSeen.IsConstant() || mass == 0 {
			return
		}
		cd := in.at(childSeen)
		if childSeen.IsComplement() {
			cd.weightO += mass
		} else {
			cd.weightE += mass
		}
		if !cd.queued {
			cd.queued = true
			q.push(childSeen.Regular(), m.Level(childSeen))
		}
	}
	v = v.Regular()
	switch d.status {
	case statusKeep:
		// Children of the even-parity view and of the odd-parity view
		// (for nodes reached with both parities) each receive half of
		// the corresponding mass.
		if d.weightE > 0 {
			deposit(m.Hi(v), d.weightE/2)
			deposit(m.Lo(v), d.weightE/2)
		}
		if d.weightO > 0 {
			vc := v.Complement()
			deposit(m.Hi(vc), d.weightO/2)
			deposit(m.Lo(vc), d.weightO/2)
		}
	case statusZero:
		// No paths continue below.
	case statusRemap:
		// All paths through the node continue into the kept child,
		// recorded as a seen function for the node's single parity.
		deposit(d.sel, d.weightE+d.weightO)
	case statusGrandchild:
		// Half of the paths (those agreeing with the new literal)
		// continue into the grandchild; the rest hit the constant.
		deposit(d.sel, (d.weightE+d.weightO)/2)
	}
}

// buildResult is the third pass (Figure 2): rebuild f applying the recorded
// replacements. Memoization is on seen functions, through the manager's
// shared computed table under a fresh per-invocation operation code (so
// entries from earlier invocations, keyed by the same Refs but different
// replacement decisions, can never be confused for this one's);
// single-parity replacement guarantees consistency. The returned Ref is
// owned by the caller.
func buildResult(in *info, f bdd.Ref) bdd.Ref {
	in.buildOp = in.m.CacheOp()
	return buildRec(in, f)
}

func buildRec(in *info, seen bdd.Ref) bdd.Ref {
	if seen.IsConstant() {
		return seen
	}
	m := in.m
	if r, ok := m.CacheLookup(in.buildOp, seen, 0, 0); ok {
		// The cached result may be dead (the memo holds no references);
		// revive it before any allocation can collect it.
		return m.Ref(r)
	}
	d := in.at(seen)
	var r bdd.Ref
	switch d.status {
	case statusZero:
		r = bdd.Zero
	case statusRemap:
		// The recorded child was computed for the parity the node is
		// reached with; seen necessarily has that parity.
		r = buildRec(in, d.sel)
	case statusGrandchild:
		g := buildRec(in, d.sel)
		y := m.IthVar(d.selVar)
		if d.selThen {
			r = m.ITE(y, g, bdd.Zero)
		} else {
			r = m.ITE(y, bdd.Zero, g)
		}
		m.Deref(g)
	default:
		t := buildRec(in, m.Hi(seen))
		e := buildRec(in, m.Lo(seen))
		r = m.ITE(m.IthVar(m.Var(seen)), t, e)
		m.Deref(t)
		m.Deref(e)
	}
	m.CacheInsert(in.buildOp, seen, 0, 0, r)
	return r
}
