package approx

import "bddkit/internal/bdd"

// ToBudget shrinks f until its DAG fits within maxNodes nodes, escalating
// through the paper's under-approximation operators: remap-based
// minimization first (best density per node dropped), then ShortPaths at
// halving thresholds, and finally the constant Zero — which is always a
// sound under-approximation. The result therefore always implies f
// (containment-soundness), making it the degraded-answer path for a
// server whose tenant has blown its node budget.
//
// ToBudget allocates intermediate nodes while it shrinks, so callers must
// invoke it with the manager's node limit disarmed — typically right
// after RunLimited returned a budget abort, which restores the previous
// (unarmed) limits on exit. The operation is filed in the quality ledger
// under op "degrade" when the ledger is armed.
//
// The returned reference is owned by the caller. maxNodes <= 0 means "no
// budget" and returns f itself (re-referenced).
func ToBudget(m *bdd.Manager, f bdd.Ref, maxNodes int) bdd.Ref {
	if maxNodes <= 0 || m.DagSize(f) <= maxNodes {
		return m.Ref(f)
	}
	lg := beginLedger(m, "degrade", f, maxNodes)
	// Remap pass: iterated RUA plus safe minimization keeps the densest
	// subfunctions; often enough on its own.
	r := IteratedRemap(m, f, maxNodes, 2, 0.5)
	if r != bdd.Zero && m.DagSize(r) > maxNodes {
		min := m.Minimize(r, f)
		m.Deref(r)
		r = min
	}
	// ShortPaths passes: guaranteed to shrink toward the threshold, so
	// halving thresholds converge; each pass subsets the previous result,
	// preserving containment.
	for t := maxNodes; m.DagSize(r) > maxNodes && t >= 1; t /= 2 {
		s := ShortPaths(m, r, t)
		m.Deref(r)
		r = s
	}
	if m.DagSize(r) > maxNodes {
		m.Deref(r)
		r = bdd.Zero
	}
	lg.done(r)
	return r
}
