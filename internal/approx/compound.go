package approx

import "bddkit/internal/bdd"

// Compound approximation methods (Section 2.2 of the paper). Given an
// approximation α and the safe minimization µ(l, u) of Hong et al. [11]
// (implemented by Manager.Minimize), µ(α(f), f) is again an
// underapproximation; it is safe when α and µ are. Approximations also
// compose: α1(α2(f)) is an underapproximation.

// Compound1 is C1 of Table 3: RemapUnderApprox followed by safe
// minimization against f. It never produces a larger BDD than RUA and
// never retains fewer minterms, so it "never loses to RUA".
func Compound1(m *bdd.Manager, f bdd.Ref, threshold int, quality float64) bdd.Ref {
	lg := beginLedger(m, "c1", f, threshold)
	r := RemapUnderApprox(m, f, threshold, quality)
	if r == bdd.Zero {
		lg.done(r)
		return r
	}
	res := m.Minimize(r, f)
	m.Deref(r)
	lg.done(res)
	return res
}

// Compound2 is C2 of Table 3: ShortPaths, then RemapUnderApprox, then safe
// minimization against f. spThreshold bounds the intermediate SP subset.
func Compound2(m *bdd.Manager, f bdd.Ref, spThreshold int, quality float64) bdd.Ref {
	lg := beginLedger(m, "c2", f, spThreshold)
	s := ShortPaths(m, f, spThreshold)
	r := RemapUnderApprox(m, s, 0, quality)
	m.Deref(s)
	if r == bdd.Zero {
		lg.done(r)
		return r
	}
	res := m.Minimize(r, f)
	m.Deref(r)
	lg.done(res)
	return res
}

// IteratedRemap mitigates the greediness of RUA as suggested in Section
// 2.2: it applies RUA repeatedly, starting from a quality factor above 1
// and decreasing it by step at each iteration until it reaches 1.
func IteratedRemap(m *bdd.Manager, f bdd.Ref, threshold int, startQuality, step float64) bdd.Ref {
	if startQuality < 1 {
		startQuality = 1
	}
	if step <= 0 {
		step = 0.25
	}
	r := m.Ref(f)
	for q := startQuality; ; q -= step {
		if q < 1 {
			q = 1
		}
		nr := RemapUnderApprox(m, r, threshold, q)
		m.Deref(r)
		r = nr
		if q == 1 {
			return r
		}
	}
}
