package reach

import (
	"fmt"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
)

// Analyzer couples a compiled circuit with its transition relation and
// provides the model-checking entry points built on reachability: invariant
// checking with counterexample extraction. This is the verification
// workload that motivates the paper's approximation algorithms.
type Analyzer struct {
	C  *circuit.Compiled
	TR *TR
}

// NewAnalyzer builds the transition relation for a compiled circuit.
func NewAnalyzer(c *circuit.Compiled, opts TROptions) (*Analyzer, error) {
	tr, err := NewTR(c, opts)
	if err != nil {
		return nil, err
	}
	return &Analyzer{C: c, TR: tr}, nil
}

// Release frees the transition relation (the compiled circuit is owned by
// the caller).
func (a *Analyzer) Release() { a.TR.Release() }

// Counterexample is a concrete trace from the initial state to a state
// violating the invariant: States[0] is initial, States[len-1] is bad, and
// Inputs[i] drives the step from States[i] to States[i+1].
type Counterexample struct {
	States [][]bool
	Inputs [][]bool
}

// Len returns the number of steps in the trace.
func (c *Counterexample) Len() int { return len(c.Inputs) }

// CheckInvariant checks whether bad (a predicate over the present-state
// variables) is reachable from the circuit's initial state. It returns a
// nil counterexample when the invariant ¬bad holds on all reachable
// states; otherwise it returns a minimal-length concrete trace. The
// traversal result (reached set and statistics) is returned either way;
// the caller owns res.Reached.
//
// The search is breadth-first with onion rings so the returned trace is
// shortest; an incomplete traversal (budget) with no violation found
// returns (nil, res) with res.Completed == false, meaning "unknown".
func (a *Analyzer) CheckInvariant(bad bdd.Ref, opts Options) (cex *Counterexample, res Result, err error) {
	m := a.C.M
	tr := a.TR
	var st ImageStats
	start := time.Now()
	if opts.Budget > 0 {
		st.Deadline = start.Add(opts.Budget)
		m.SetDeadline(st.Deadline)
		defer m.SetDeadline(time.Time{})
	}

	// Onion rings: rings[i] = states first reached at distance i.
	rings := []bdd.Ref{m.Ref(a.C.Init)}
	release := func() {
		for _, r := range rings {
			m.Deref(r)
		}
	}
	reached := m.Ref(a.C.Init)

	// The budget can trip inside any allocating operation below; an
	// abort means "unknown": no counterexample, incomplete traversal.
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bdd.OpAborted); !ok {
				panic(r)
			}
			release()
			cex = nil
			err = nil
			res = Result{
				Reached:    reached,
				States:     tr.StateCount(reached),
				Nodes:      m.DagSize(reached),
				Iterations: len(rings) - 1,
				Elapsed:    time.Since(start),
				Stats:      st,
			}
		}
	}()
	hitRing := -1
	if x := m.And(a.C.Init, bad); x != bdd.Zero {
		hitRing = 0
		m.Deref(x)
	} else {
		m.Deref(x)
	}
	completed := false
	for hitRing < 0 {
		img := tr.Image(rings[len(rings)-1], nil, &st)
		if st.Aborted {
			m.Deref(img)
			break
		}
		fresh := m.Diff(img, reached)
		m.Deref(img)
		if fresh == bdd.Zero {
			m.Deref(fresh)
			completed = true
			break
		}
		nr := m.Or(reached, fresh)
		m.Deref(reached)
		reached = nr
		rings = append(rings, fresh)
		if x := m.And(fresh, bad); x != bdd.Zero {
			hitRing = len(rings) - 1
			m.Deref(x)
		} else {
			m.Deref(x)
		}
		if opts.MaxIterations > 0 && len(rings) > opts.MaxIterations {
			break
		}
	}
	res = Result{
		Reached:    reached,
		States:     tr.StateCount(reached),
		Nodes:      m.DagSize(reached),
		Iterations: len(rings) - 1,
		Completed:  completed || hitRing >= 0,
		Elapsed:    time.Since(start),
		Stats:      st,
	}
	if hitRing < 0 {
		release()
		return nil, res, nil
	}
	cex, err = a.trace(rings, hitRing, bad)
	release()
	if err != nil {
		return nil, res, err
	}
	return cex, res, nil
}

// trace extracts a concrete shortest trace ending in bad ∧ rings[k],
// stepping backwards with the next-state functions.
func (a *Analyzer) trace(rings []bdd.Ref, k int, bad bdd.Ref) (*Counterexample, error) {
	m := a.C.M
	goal := m.And(rings[k], bad)
	if goal == bdd.Zero {
		m.Deref(goal)
		return nil, fmt.Errorf("reach: internal error: empty goal ring")
	}
	states := make([][]bool, k+1)
	inputs := make([][]bool, k)
	cur := pickState(a.C, goal) // concrete bad state
	m.Deref(goal)
	states[k] = cur
	for i := k - 1; i >= 0; i-- {
		// pred(x, w) = ring_i(x) ∧ ⋀_j (δ_j(x,w) ≡ cur_j)
		pred := m.Ref(rings[i])
		for j, delta := range a.C.Next {
			lit := delta
			if !cur[j] {
				lit = delta.Complement()
			}
			np := m.And(pred, lit)
			m.Deref(pred)
			pred = np
			if pred == bdd.Zero {
				break
			}
		}
		if pred == bdd.Zero {
			m.Deref(pred)
			return nil, fmt.Errorf("reach: trace reconstruction failed at ring %d", i)
		}
		assignment := m.PickOneMinterm(pred, m.NumVars())
		m.Deref(pred)
		states[i] = make([]bool, len(a.C.StateVars))
		for j, v := range a.C.StateVars {
			states[i][j] = assignment[v]
		}
		inputs[i] = make([]bool, len(a.C.InputVars))
		for j, v := range a.C.InputVars {
			inputs[i][j] = assignment[v]
		}
		cur = states[i]
	}
	return &Counterexample{States: states, Inputs: inputs}, nil
}

// pickState extracts a concrete state from a predicate over state vars.
func pickState(c *circuit.Compiled, set bdd.Ref) []bool {
	assignment := c.M.PickOneMinterm(set, c.M.NumVars())
	out := make([]bool, len(c.StateVars))
	for j, v := range c.StateVars {
		out[j] = assignment[v]
	}
	return out
}
