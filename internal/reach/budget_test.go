package reach

import (
	"testing"
	"time"

	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

// TestBudgetAbort: a traversal with a microscopic budget must return
// quickly, flagged as incomplete, with a usable partial reached set.
func TestBudgetAbort(t *testing.T) {
	nl := model.S5378(model.S5378Config{Units: 4, UnitWidth: 4})
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res := tr.BFS(c.Init, Options{Budget: time.Microsecond})
	if res.Completed {
		t.Fatal("microsecond budget reported completion")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("budget abort took far too long")
	}
	// The partial result must at least contain the initial state.
	if !c.M.Leq(c.Init, res.Reached) {
		t.Fatal("partial reached set lost the initial state")
	}
	c.M.Deref(res.Reached)

	hd := tr.HighDensity(c.Init, Options{Budget: time.Microsecond})
	if hd.Completed {
		t.Fatal("HD microsecond budget reported completion")
	}
	c.M.Deref(hd.Reached)
	tr.Release()
	c.Release()
}

// TestNoLatchesError: building a TR over a purely combinational circuit is
// an error, not a panic.
func TestNoLatchesError(t *testing.T) {
	nl := model.MultiplierNetlist(4)
	c, err := circuit.Compile(nl, circuit.CompileOptions{SkipNextVars: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release()
	if _, err := NewTR(c, DefaultTROptions()); err == nil {
		t.Fatal("expected an error for a combinational circuit")
	}
}

// TestHDWithoutPImg: high-density traversal with exact images still
// converges to BFS's answer.
func TestHDWithoutPImg(t *testing.T) {
	nl := model.S1269(model.S1269Small())
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	bfs := tr.BFS(c.Init, Options{})
	hd := tr.HighDensity(c.Init, Options{Subset: RUASubsetter(1.0)})
	if bfs.Reached != hd.Reached {
		t.Fatalf("HD (no PImg) diverged: %v vs %v states", hd.States, bfs.States)
	}
	c.M.Deref(bfs.Reached)
	c.M.Deref(hd.Reached)
	tr.Release()
	c.Release()
}

// TestImageMonotone: the image of a subset is a subset of the image.
func TestImageMonotone(t *testing.T) {
	nl := model.Am2910(model.Am2910Small())
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	var st ImageStats
	imgInit := tr.Image(c.Init, nil, &st)
	full := tr.Image(imgInit, nil, &st)
	// init ⊆ init ∪ img, so Image(init) ⊆ Image(init ∪ img).
	union := c.M.Or(c.Init, imgInit)
	imgUnion := tr.Image(union, nil, &st)
	if !c.M.Leq(imgInit, imgUnion) {
		t.Fatal("image not monotone")
	}
	c.M.Deref(imgInit)
	c.M.Deref(full)
	c.M.Deref(union)
	c.M.Deref(imgUnion)
	tr.Release()
	c.Release()
}

// TestNodeLimitAbort: a traversal under a tiny live-node ceiling must
// return a partial — but sound — reached set, flag the abort reason, and
// leave the manager's limit disarmed for whoever runs next (the degrade
// path allocates).
func TestNodeLimitAbort(t *testing.T) {
	nl := model.S5378(model.S5378Config{Units: 4, UnitWidth: 4})
	c := compile(t, nl)
	defer c.Release()
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	limit := c.M.NodeCount() + 32
	res := tr.BFS(c.Init, Options{NodeLimit: limit})
	if res.Completed {
		t.Fatalf("traversal under a %d-node ceiling reported completion", limit)
	}
	if res.Abort == "" {
		t.Fatal("aborted traversal carries no abort reason")
	}
	if !c.M.Leq(c.Init, res.Reached) {
		t.Fatal("partial reached set lost the initial state")
	}
	if c.M.NodeLimit() != 0 {
		t.Fatalf("traversal left node limit %d armed", c.M.NodeLimit())
	}
	c.M.Deref(res.Reached)

	hd := tr.HighDensity(c.Init, Options{NodeLimit: limit})
	if hd.Completed {
		t.Fatal("HD under the ceiling reported completion")
	}
	if hd.Abort == "" {
		t.Fatal("HD abort reason missing")
	}
	c.M.Deref(hd.Reached)
}
