package reach

import (
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

// TestCheckInvariantCounterexample: on a counter, "q == K" is reachable in
// exactly K steps with enable high; the trace must replay on the simulator.
func TestCheckInvariantCounterexample(t *testing.T) {
	const k = 5
	nl := counterNetlist(k)
	c := compile(t, nl)
	a, err := NewAnalyzer(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	// bad: counter value == 11 (binary 01011).
	const target = 11
	bad := m1(c, target)
	cex, res, err := a.CheckInvariant(bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("reachable bad state not found")
	}
	if cex.Len() != target {
		t.Fatalf("trace length %d, want %d (shortest)", cex.Len(), target)
	}
	// Replay on the reference simulator.
	sim, _ := circuit.NewSimulator(nl)
	sim.SetState(cex.States[0])
	for i := 0; i < cex.Len(); i++ {
		sim.Step(cex.Inputs[i])
		got := sim.State()
		for j := range got {
			if got[j] != cex.States[i+1][j] {
				t.Fatalf("trace does not replay at step %d bit %d", i, j)
			}
		}
	}
	// Final state is the bad one.
	v := 0
	last := cex.States[len(cex.States)-1]
	for i, bit := range last {
		if bit {
			v |= 1 << uint(i)
		}
	}
	if v != target {
		t.Fatalf("trace ends at %d, want %d", v, target)
	}
	c.M.Deref(bad)
	c.M.Deref(res.Reached)
	a.Release()
	c.Release()
}

// TestCheckInvariantHolds: an unreachable bad state yields no
// counterexample and a completed traversal.
func TestCheckInvariantHolds(t *testing.T) {
	// With enable tied low by construction (never raised in the model),
	// use the s1269 model: phase == 3 (binary 11) is unreachable.
	nl := model.S1269(model.S1269Small())
	c := compile(t, nl)
	a, err := NewAnalyzer(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	// Find the phase latch variables by name.
	var ph0, ph1 bdd.Ref
	for i, l := range nl.Latches {
		switch nl.NameOf(l.Q) {
		case "ph0":
			ph0 = c.M.IthVar(c.StateVars[i])
		case "ph1":
			ph1 = c.M.IthVar(c.StateVars[i])
		}
	}
	bad := c.M.And(ph0, ph1)
	cex, res, err := a.CheckInvariant(bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatal("unreachable state reported reachable")
	}
	if !res.Completed {
		t.Fatal("traversal did not complete")
	}
	c.M.Deref(bad)
	c.M.Deref(res.Reached)
	a.Release()
	c.Release()
}

// TestCheckInvariantInitialViolation: a bad set containing the initial
// state yields a zero-length trace.
func TestCheckInvariantInitialViolation(t *testing.T) {
	nl := counterNetlist(4)
	c := compile(t, nl)
	a, err := NewAnalyzer(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := m1(c, 0) // the reset state
	cex, res, err := a.CheckInvariant(bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil || cex.Len() != 0 {
		t.Fatalf("expected zero-length counterexample, got %v", cex)
	}
	c.M.Deref(bad)
	c.M.Deref(res.Reached)
	a.Release()
	c.Release()
}

// m1 builds the predicate "state == value" over the state variables.
func m1(c *circuit.Compiled, value int) bdd.Ref {
	m := c.M
	r := m.Ref(bdd.One)
	for i, v := range c.StateVars {
		lit := m.IthVar(v)
		if value>>uint(i)&1 == 0 {
			lit = lit.Complement()
		}
		nr := m.And(r, lit)
		m.Deref(r)
		r = nr
	}
	return r
}
