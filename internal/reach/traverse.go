package reach

import (
	"math/big"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/obs"
	"bddkit/internal/prof"
)

// Options selects and parameterizes a traversal.
type Options struct {
	// Subset extracts the dense frontier subset in high-density mode
	// (nil selects BFS).
	Subset Subsetter
	// Threshold is the frontier-subset size target (the "Th" column of
	// Table 1; 0 lets a safe subsetter shrink freely).
	Threshold int
	// PImg enables partial-image subsetting (the "PImg" column; nil =
	// exact images, the paper's "NA").
	PImg *PImg
	// MaxIterations aborts runaway traversals (0 = no bound).
	MaxIterations int
	// Budget aborts the traversal after the given wall-clock time
	// (0 = unbounded). An aborted traversal reports Completed = false
	// and returns the states found so far.
	Budget time.Duration
	// NodeLimit arms a live-node ceiling on the manager for the duration
	// of the traversal (0 = none). A traversal that trips it reports
	// Completed = false with Abort describing the trip; the partial
	// reached set is still a sound under-approximation of the reachable
	// states, which is exactly what a budget-degraded server answer needs.
	NodeLimit int
	// Tracer receives structured spans and events for this run; nil falls
	// back to the process-global obs.T.
	Tracer *obs.Tracer
	// Profile emits a reach.profile trace event per iteration with a
	// structural summary (widths, widest levels) of the fresh frontier and
	// the reached set. Costs one O(nodes) profile sweep per set per
	// iteration; no effect when tracing is off.
	Profile bool
}

// Result reports a completed traversal.
type Result struct {
	Reached bdd.Ref // exact reached set (caller owns the reference)
	States  float64 // number of reachable states
	// StatesExact is the exact reached-state count (States is a float64
	// and degrades past 2^53 states); nil only if the reached set escaped
	// the present-state variables, which a healthy traversal never does.
	StatesExact *big.Int
	Nodes       int  // |Reached|
	Iterations  int  // outer image computations
	Closure     int  // exact closure checks run (HD only)
	Completed   bool // false when MaxIterations, Budget, or NodeLimit aborted the run
	// Abort carries the limit-trip reason when the traversal was cut short
	// by a node-budget or deadline abort ("" = no abort).
	Abort   string
	Elapsed time.Duration
	Stats   ImageStats
}

// BFS computes the exact reachable states from init by breadth-first
// fixpoint iteration.
func (tr *TR) BFS(init bdd.Ref, opts Options) (res Result) {
	start := time.Now()
	m := tr.M
	st := ImageStats{Tracer: opts.Tracer}
	t := st.tracer()
	if opts.Budget > 0 {
		st.Deadline = start.Add(opts.Budget)
		m.SetDeadline(st.Deadline)
		defer m.SetDeadline(time.Time{})
	}
	if opts.NodeLimit > 0 {
		prev := m.NodeLimit()
		m.SetNodeLimit(opts.NodeLimit)
		defer m.SetNodeLimit(prev)
	}
	reached := m.Ref(init)
	iters := 0
	completed := false
	// The budget can trip inside any allocating operation of the loop,
	// not only inside Image; treat an abort as "budget exhausted" and
	// report the states found so far.
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(bdd.OpAborted)
			if !ok {
				panic(r)
			}
			abortRecord(tr, "bfs", iters, ab.Reason)
			captureCacheStats(m, &st)
			res = Result{
				Reached:     reached,
				States:      tr.StateCount(reached),
				StatesExact: tr.stateCountExactOrNil(reached),
				Nodes:       m.DagSize(reached),
				Iterations:  iters,
				Abort:       ab.Reason,
				Elapsed:     time.Since(start),
				Stats:       st,
			}
		}
	}()
	frontier := m.Ref(init)
	for {
		iters++
		isp := tr.beginIteration(t, "bfs", iters, frontier)
		ilg := tr.beginIterLedger("bfs", iters, 0, frontier)
		img := tr.Image(frontier, nil, &st)
		m.Deref(frontier)
		if st.Aborted {
			m.Deref(img)
			ilg.record(bdd.Zero, bdd.Zero, "image-deadline")
			isp.End(obs.Bool("aborted", true))
			break
		}
		fresh := m.Diff(img, reached)
		m.Deref(img)
		if fresh == bdd.Zero {
			m.Deref(fresh)
			completed = true
			ilg.record(bdd.Zero, bdd.Zero, "")
			isp.End(obs.Int("fresh_nodes", 0), obs.Bool("fixpoint", true))
			break
		}
		nr := m.Or(reached, fresh)
		m.Deref(reached)
		reached = nr
		frontier = fresh
		ilg.record(fresh, frontier, "")
		tr.endIteration(isp, fresh, reached)
		if opts.Profile {
			tr.profileEvent(t, iters, fresh, reached)
		}
		if overBudget(start, iters, opts) {
			m.Deref(frontier)
			break
		}
	}
	captureCacheStats(m, &st)
	return Result{
		Reached:     reached,
		States:      tr.StateCount(reached),
		StatesExact: tr.stateCountExactOrNil(reached),
		Nodes:       m.DagSize(reached),
		Iterations:  iters,
		Completed:   completed,
		Abort:       st.AbortReason,
		Elapsed:     time.Since(start),
		Stats:       st,
	}
}

// beginIteration opens the per-iteration span (nil when tracing is off);
// the size/density attribute computation is gated on the tracer so the
// disabled path costs nothing.
func (tr *TR) beginIteration(t *obs.Tracer, mode string, iter int, frontier bdd.Ref) *obs.Span {
	if !t.Enabled() {
		return nil
	}
	fn := tr.M.DagSize(frontier)
	return t.Begin("reach.iteration",
		obs.Str("mode", mode),
		obs.Int("iter", iter),
		obs.Int("frontier_nodes", fn),
		obs.F64("frontier_density", tr.density(frontier, fn)))
}

// endIteration closes a per-iteration span with the sizes and densities of
// the new states and the accumulated reached set.
func (tr *TR) endIteration(sp *obs.Span, fresh, reached bdd.Ref) {
	if sp == nil {
		return
	}
	m := tr.M
	fn, rn := m.DagSize(fresh), m.DagSize(reached)
	sp.End(
		obs.Int("fresh_nodes", fn),
		obs.F64("fresh_density", tr.density(fresh, fn)),
		obs.Int("reached_nodes", rn),
		obs.F64("reached_density", tr.density(reached, rn)))
}

// profileEvent emits the per-iteration structural summary behind
// Options.Profile. The full per-level tables stay out of the trace to keep
// it compact; the event carries totals, the widest levels and max widths —
// enough for traceview (and a human) to see where the frontier bulges.
func (tr *TR) profileEvent(t *obs.Tracer, iter int, fresh, reached bdd.Ref) {
	if !t.Enabled() {
		return
	}
	m := tr.M
	fp := prof.Compute(m, []bdd.Ref{fresh}, prof.Options{})
	rp := prof.Compute(m, []bdd.Ref{reached}, prof.Options{})
	t.Event("reach.profile",
		obs.Int("iter", iter),
		obs.Int("frontier_nodes", fp.Nodes),
		obs.Int("frontier_max_width", fp.MaxWidth),
		obs.Str("frontier_top_widths", fp.TopWidths(3)),
		obs.Int("reached_nodes", rp.Nodes),
		obs.Int("reached_max_width", rp.MaxWidth),
		obs.Str("reached_top_widths", rp.TopWidths(3)))
}

// density is the paper's quality measure: states per node.
func (tr *TR) density(f bdd.Ref, nodes int) float64 {
	if nodes == 0 {
		return 0
	}
	return tr.StateCount(f) / float64(nodes)
}

// HighDensity computes the exact reachable states using the high-density
// traversal of Ravi–Somenzi (ICCAD'95) as configured for the paper's
// Table 1: each iteration feeds image computation a dense subset of the
// new states (extracted by opts.Subset), and intermediate image products
// may themselves be subsetted (opts.PImg). When the subset frontier stops
// producing new states, an exact image of the whole reached set checks
// closure, so the final result equals BFS's.
func (tr *TR) HighDensity(init bdd.Ref, opts Options) (res Result) {
	start := time.Now()
	m := tr.M
	if opts.Subset == nil {
		opts.Subset = RUASubsetter(1.0)
	}
	st := ImageStats{Tracer: opts.Tracer}
	t := st.tracer()
	if opts.Budget > 0 {
		st.Deadline = start.Add(opts.Budget)
		m.SetDeadline(st.Deadline)
		defer m.SetDeadline(time.Time{})
	}
	if opts.NodeLimit > 0 {
		prev := m.NodeLimit()
		m.SetNodeLimit(opts.NodeLimit)
		defer m.SetNodeLimit(prev)
	}
	closures := 0
	reached := m.Ref(init)
	iters := 0
	completed := false
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(bdd.OpAborted)
			if !ok {
				panic(r)
			}
			abortRecord(tr, "hd", iters, ab.Reason)
			captureCacheStats(m, &st)
			res = Result{
				Reached:     reached,
				States:      tr.StateCount(reached),
				StatesExact: tr.stateCountExactOrNil(reached),
				Nodes:       m.DagSize(reached),
				Iterations:  iters,
				Closure:     closures,
				Abort:       ab.Reason,
				Elapsed:     time.Since(start),
				Stats:       st,
			}
		}
	}()
	frontier := m.Ref(init) // dense subset of the unexplored states
	for {
		iters++
		isp := tr.beginIteration(t, "hd", iters, frontier)
		ilg := tr.beginIterLedger("hd", iters, opts.Threshold, frontier)
		img := tr.Image(frontier, opts.PImg, &st)
		m.Deref(frontier)
		if st.Aborted {
			m.Deref(img)
			ilg.record(bdd.Zero, bdd.Zero, "image-deadline")
			isp.End(obs.Bool("aborted", true))
			break
		}
		fresh := m.Diff(img, reached)
		m.Deref(img)
		if fresh == bdd.Zero {
			// The dense frontier is exhausted; verify global closure
			// with an exact image of the full reached set.
			m.Deref(fresh)
			closures++
			cstart := time.Now()
			var csp *obs.Span
			if t.Enabled() {
				csp = t.Begin("reach.closure",
					obs.Int("closure", closures),
					obs.Int("reached_nodes", m.DagSize(reached)))
			}
			img := tr.Image(reached, nil, &st)
			if st.Aborted {
				m.Deref(img)
				st.ClosureTime += time.Since(cstart)
				ilg.record(bdd.Zero, bdd.Zero, "closure-deadline")
				csp.End(obs.Bool("aborted", true))
				isp.End(obs.Bool("aborted", true))
				break
			}
			fresh = m.Diff(img, reached)
			m.Deref(img)
			st.ClosureTime += time.Since(cstart)
			closed := fresh == bdd.Zero
			csp.End(obs.Bool("closed", closed))
			if closed {
				m.Deref(fresh)
				completed = true
				ilg.record(bdd.Zero, bdd.Zero, "")
				isp.End(obs.Int("fresh_nodes", 0), obs.Bool("fixpoint", true))
				break
			}
		}
		nr := m.Or(reached, fresh)
		m.Deref(reached)
		reached = nr
		sstart := time.Now()
		frontier = opts.Subset(m, fresh, opts.Threshold)
		st.SubsetTime += time.Since(sstart)
		if t.Enabled() {
			t.Event("reach.subset",
				obs.Int("frontier_before", m.DagSize(fresh)),
				obs.Int("threshold", opts.Threshold),
				obs.Int("frontier_after", m.DagSize(frontier)))
		}
		ilg.record(fresh, frontier, "")
		tr.endIteration(isp, fresh, reached)
		if opts.Profile {
			tr.profileEvent(t, iters, fresh, reached)
		}
		m.Deref(fresh)
		if overBudget(start, iters, opts) {
			m.Deref(frontier)
			break
		}
	}
	captureCacheStats(m, &st)
	return Result{
		Reached:     reached,
		States:      tr.StateCount(reached),
		StatesExact: tr.stateCountExactOrNil(reached),
		Nodes:       m.DagSize(reached),
		Iterations:  iters,
		Closure:     closures,
		Completed:   completed,
		Abort:       st.AbortReason,
		Elapsed:     time.Since(start),
		Stats:       st,
	}
}

// overBudget reports whether a traversal hit its iteration or wall-clock
// bound.
func overBudget(start time.Time, iters int, opts Options) bool {
	if opts.MaxIterations > 0 && iters >= opts.MaxIterations {
		return true
	}
	return opts.Budget > 0 && time.Since(start) > opts.Budget
}

// captureCacheStats snapshots the manager's computed-table counters into
// st at the end of a traversal; each Table 1 run uses a fresh manager, so
// the totals describe that run alone.
func captureCacheStats(m *bdd.Manager, st *ImageStats) {
	s := m.Stats()
	st.CacheLookups = s.CacheLookups
	st.CacheHits = s.CacheHits
	st.STWCount = s.STWCount
	st.STWTime = s.STWTime
}
