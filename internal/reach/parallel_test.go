package reach

import (
	"runtime"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

// compilePar builds a model on a manager with the parallel engine armed.
func compilePar(t *testing.T, nl *circuit.Netlist, workers int) *circuit.Compiled {
	t.Helper()
	cfg := bdd.DefaultConfig()
	cfg.Workers = workers
	c, err := circuit.Compile(nl, circuit.CompileOptions{BDDConfig: &cfg})
	if err != nil {
		t.Fatalf("%s: %v", nl.Name, err)
	}
	return c
}

// evalStates compares two state predicates living on different managers by
// exhaustive evaluation over the state bits (inputs pinned to false; the
// sets are over present-state variables only).
func sameStateSet(ser, par *circuit.Compiled, fs, fp bdd.Ref) (bool, []bool) {
	k := len(ser.StateVars)
	for i := 0; i < 1<<uint(k); i++ {
		as := make([]bool, ser.M.NumVars())
		ap := make([]bool, par.M.NumVars())
		st := make([]bool, k)
		for j := 0; j < k; j++ {
			bit := i>>uint(j)&1 == 1
			st[j] = bit
			as[ser.StateVars[j]] = bit
			ap[par.StateVars[j]] = bit
		}
		if ser.M.Eval(fs, as) != par.M.Eval(fp, ap) {
			return false, st
		}
	}
	return true, nil
}

// TestParallelImageMatchesSerial: the concurrent reduction-tree image and
// the serial cluster chain compute the same exact image, checked state by
// state across two managers on every step of a short traversal.
func TestParallelImageMatchesSerial(t *testing.T) {
	for name, nl := range map[string]*circuit.Netlist{
		"counter": counterNetlist(6),
		"s1269":   model.S1269(model.S1269Small()),
		"s3330":   model.S3330(model.S3330Small()),
	} {
		ser := compile(t, nl)
		par := compilePar(t, nl, 4)
		trS, err := NewTR(ser, DefaultTROptions())
		if err != nil {
			t.Fatal(err)
		}
		trP, err := NewTR(par, DefaultTROptions())
		if err != nil {
			t.Fatal(err)
		}
		var stS, stP ImageStats
		fs := ser.M.Ref(ser.Init)
		fp := par.M.Ref(par.Init)
		for step := 0; step < 6; step++ {
			nextS := trS.Image(fs, nil, &stS)
			nextP := trP.Image(fp, nil, &stP)
			if ok, at := sameStateSet(ser, par, nextS, nextP); !ok {
				t.Fatalf("%s: serial and parallel image disagree at step %d, state %v",
					name, step, at)
			}
			ser.M.Deref(fs)
			par.M.Deref(fp)
			fs, fp = nextS, nextP
		}
		ser.M.Deref(fs)
		par.M.Deref(fp)
		if stP.AndExists == 0 {
			t.Fatalf("%s: parallel path performed no relational products", name)
		}
		if err := par.M.DebugCheck(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		trS.Release()
		trP.Release()
		ser.Release()
		par.Release()
	}
}

// TestParallelBFSMatchesSerial: full reachability on a Workers=GOMAXPROCS
// manager converges to the same state count and iteration count as the
// serial engine.
func TestParallelBFSMatchesSerial(t *testing.T) {
	nl := model.S5378(model.S5378Small())
	ser := compile(t, nl)
	par := compilePar(t, nl, runtime.GOMAXPROCS(0))
	trS, err := NewTR(ser, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	trP, err := NewTR(par, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	resS := trS.BFS(ser.Init, Options{})
	resP := trP.BFS(par.Init, Options{})
	if resS.States != resP.States {
		t.Fatalf("reachable states: serial %v, parallel %v", resS.States, resP.States)
	}
	if resS.Iterations != resP.Iterations {
		t.Fatalf("iterations: serial %d, parallel %d", resS.Iterations, resP.Iterations)
	}
	if ok, at := sameStateSet(ser, par, resS.Reached, resP.Reached); !ok {
		t.Fatalf("reached sets disagree at state %v", at)
	}
	ser.M.Deref(resS.Reached)
	par.M.Deref(resP.Reached)
	if err := par.M.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	trS.Release()
	trP.Release()
	ser.Release()
	par.Release()
}
