package reach

import (
	"math"
	"math/big"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// Quality-ledger instrumentation for traversal iterations. Each outer
// image step files one obs.OpRecord whose masses are state-space
// fractions: MassIn is the fresh states discovered this iteration and
// MassOut the states the outgoing frontier keeps, so mass_retained is
// exactly the fraction the frontier subsetting preserved (1 in BFS and
// on HD iterations whose subset was lossless). Budget pressure comes off
// the manager at record time; abort records carry the cause instead of a
// result side. Everything is gated on obs.L.Enabled(), so un-observed
// traversals pay one atomic load per iteration.

// stateFraction maps a state set to its fraction of the full state space.
// Computed from the exact big.Int count (internal/count) rather than the
// float64 MintermFraction recursion, so per-iteration ledger masses stay
// meaningful past 2^53 states; only armed traversals pay the sweep.
func (tr *TR) stateFraction(set bdd.Ref) float64 {
	bits := tr.NumStateBits()
	if bits == 0 {
		return 0
	}
	c, err := tr.StateCountExact(set)
	if err != nil {
		return tr.StateCount(set) / math.Exp2(float64(bits))
	}
	f, _ := new(big.Float).Quo(
		new(big.Float).SetInt(c),
		new(big.Float).SetMantExp(big.NewFloat(1), bits),
	).Float64()
	return f
}

type iterLedger struct {
	tr        *TR
	mode      string
	iter      int
	threshold int
	start     time.Time
	sizeIn    int
	massIn    float64
	gc0       time.Duration
	stw0      time.Duration
}

// beginIterLedger opens a ledger record for one iteration; frontier is the
// incoming (pre-image) frontier. Nil when the ledger is disarmed.
func (tr *TR) beginIterLedger(mode string, iter, threshold int, frontier bdd.Ref) *iterLedger {
	if !obs.L.Enabled() {
		return nil
	}
	st := tr.M.Stats()
	return &iterLedger{
		tr:        tr,
		mode:      mode,
		iter:      iter,
		threshold: threshold,
		start:     time.Now(),
		sizeIn:    tr.M.DagSize(frontier),
		massIn:    tr.stateFraction(frontier),
		gc0:       st.GCTime,
		stw0:      st.STWTime,
	}
}

// record files the iteration. fresh is the newly discovered states and
// frontierOut what survives subsetting into the next iteration (equal in
// BFS); abort names the cause when the iteration died instead. Nil-safe.
func (lg *iterLedger) record(fresh, frontierOut bdd.Ref, abort string) {
	if lg == nil {
		return
	}
	m := lg.tr.M
	st := m.Stats()
	rec := obs.OpRecord{
		Kind:        "reach",
		Op:          lg.mode,
		Iter:        lg.iter,
		SizeIn:      lg.sizeIn,
		Threshold:   lg.threshold,
		BudgetLimit: m.NodeLimit(),
		BudgetLive:  m.NodeCount(),
		DurNS:       time.Since(lg.start).Nanoseconds(),
		GCNS:        (st.GCTime - lg.gc0).Nanoseconds(),
		STWNS:       (st.STWTime - lg.stw0).Nanoseconds(),
		Abort:       abort,
	}
	if abort == "" {
		// The quality trade of the iteration is fresh -> frontierOut: the
		// in side is what the image discovered, the out side what survives
		// subsetting (identical in BFS, so mass_retained = 1 there).
		rec.SizeIn = m.DagSize(fresh)
		rec.MassIn = lg.tr.stateFraction(fresh)
		rec.SizeOut = m.DagSize(frontierOut)
		rec.MassOut = lg.tr.stateFraction(frontierOut)
		if rec.SizeIn > 0 {
			rec.DensityIn = rec.MassIn / float64(rec.SizeIn)
		}
		if rec.SizeOut > 0 {
			rec.DensityOut = rec.MassOut / float64(rec.SizeOut)
		}
	} else {
		// The iteration died mid-image: there is no result side, and the
		// inputs may already be deref'd. Report the loss as total.
		rec.MassIn = lg.massIn
		rec.MassRetained = 0
		if rec.MassIn == 0 {
			rec.MassRetained = 1 // abort before any mass was at stake
		}
	}
	obs.L.Record(rec)
}

// abortRecord files a bare abort record for a traversal that unwound via
// bdd.OpAborted outside an open iteration ledger (or whose ledger was
// already closed). Used by the recover paths.
func abortRecord(tr *TR, mode string, iter int, reason string) {
	if !obs.L.Enabled() {
		return
	}
	m := tr.M
	obs.L.Record(obs.OpRecord{
		Kind:         "reach",
		Op:           mode,
		Iter:         iter,
		MassRetained: 0,
		BudgetLimit:  m.NodeLimit(),
		BudgetLive:   m.NodeCount(),
		Abort:        reason,
	})
}
