package reach

import (
	"testing"
	"time"

	"bddkit/internal/bdd"
	"bddkit/internal/model"
)

// TestCheckInvariantBudgetUnknown: a microscopic budget yields "unknown"
// (no counterexample, not completed) without panicking, even though the
// abort fires inside BDD operations.
func TestCheckInvariantBudgetUnknown(t *testing.T) {
	nl := model.S5378(model.S5378Config{Units: 4, UnitWidth: 4})
	c := compile(t, nl)
	a, err := NewAnalyzer(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	// An unreachable bad state, so only a complete traversal could prove
	// the invariant.
	bad := m1(c, 1<<uint(len(c.StateVars)-1))
	cex, res, err := a.CheckInvariant(bad, Options{Budget: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatal("microsecond budget produced a counterexample")
	}
	if res.Completed {
		t.Fatal("microsecond budget claimed completion")
	}
	c.M.Deref(bad)
	c.M.Deref(res.Reached)
	a.Release()
	c.Release()
}

// TestOpAbortedLeavesManagerUsable: after an aborted traversal the manager
// still passes the structural check and supports new work.
func TestOpAbortedLeavesManagerUsable(t *testing.T) {
	nl := model.S5378(model.S5378Config{Units: 4, UnitWidth: 4})
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	res := tr.BFS(c.Init, Options{Budget: time.Microsecond})
	if res.Completed {
		t.Fatal("unexpected completion")
	}
	// The manager must remain structurally sound and usable.
	if err := c.M.DebugCheck(); err != nil {
		t.Fatal(err)
	}
	f := c.M.And(c.M.IthVar(0), c.M.IthVar(1))
	if f == bdd.Zero {
		t.Fatal("manager unusable after abort")
	}
	c.M.Deref(f)
	c.M.Deref(res.Reached)
	tr.Release()
	c.Release()
}
