package reach

import (
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

// compile builds a model's BDDs for reachability.
func compile(t *testing.T, nl *circuit.Netlist) *circuit.Compiled {
	t.Helper()
	c, err := circuit.Compile(nl, circuit.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: %v", nl.Name, err)
	}
	return c
}

func counterNetlist(k int) *circuit.Netlist {
	b := circuit.NewBuilder("counter")
	en := b.Input("en")
	q := b.LatchBus("q", k, 0)
	inc, _ := b.Incrementer(q)
	next := b.MuxBus(en, inc, q)
	b.SetNextBus(q, next)
	b.Output("tc", b.EqConst(q, uint64(1<<uint(k)-1)))
	return b.MustBuild()
}

func TestBFSCounter(t *testing.T) {
	const k = 6
	c := compile(t, counterNetlist(k))
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	res := tr.BFS(c.Init, Options{})
	if res.States != float64(int(1)<<k) {
		t.Fatalf("counter reachable states = %v, want %d", res.States, 1<<k)
	}
	// A k-bit counter needs 2^k image computations to converge.
	if res.Iterations != 1<<k {
		t.Fatalf("iterations = %d, want %d", res.Iterations, 1<<k)
	}
	c.M.Deref(res.Reached)
	tr.Release()
	c.Release()
	if err := c.M.DebugCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestBFSMatchesSimulation: every state visited by random simulation is in
// the BFS reached set, and the BFS set is closed under the transition
// function.
func TestBFSMatchesSimulation(t *testing.T) {
	nl := model.S5378(model.S5378Small())
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	res := tr.BFS(c.Init, Options{})
	sim, _ := circuit.NewSimulator(nl)
	assignment := func(state []bool) []bool {
		a := make([]bool, c.M.NumVars())
		for i, v := range c.StateVars {
			a[v] = state[i]
		}
		return a
	}
	steps := 0
	for i := 0; i < 500; i++ {
		in := make([]bool, len(nl.Inputs))
		for j := range in {
			in[j] = (i>>uint(j%4))&1 == 1
		}
		sim.Step(in)
		steps++
		if !c.M.Eval(res.Reached, assignment(sim.State())) {
			t.Fatalf("simulated state at step %d not in reached set", steps)
		}
	}
	c.M.Deref(res.Reached)
	tr.Release()
	c.Release()
}

// TestHighDensityEqualsBFS: the HD traversal converges to the exact
// reachable set on every small model, for every subsetter.
func TestHighDensityEqualsBFS(t *testing.T) {
	models := map[string]*circuit.Netlist{
		"counter": counterNetlist(5),
		"s5378":   model.S5378(model.S5378Small()),
		"s1269":   model.S1269(model.S1269Small()),
		"am2910":  model.Am2910(model.Am2910Config{Width: 3, StackDepth: 2}),
		"s3330":   model.S3330(model.S3330Small()),
	}
	for name, nl := range models {
		c := compile(t, nl)
		tr, err := NewTR(c, DefaultTROptions())
		if err != nil {
			t.Fatal(err)
		}
		bfs := tr.BFS(c.Init, Options{})
		for subName, sub := range map[string]Subsetter{
			"rua": RUASubsetter(1.0),
			"sp":  SPSubsetter(),
			"hb":  HBSubsetter(),
		} {
			hd := tr.HighDensity(c.Init, Options{
				Subset:    sub,
				Threshold: 20,
				PImg:      &PImg{Limit: 500, Threshold: 200, Subset: sub},
			})
			if hd.Reached != bfs.Reached {
				t.Fatalf("%s/%s: HD reached %v states, BFS %v",
					name, subName, hd.States, bfs.States)
			}
			c.M.Deref(hd.Reached)
		}
		c.M.Deref(bfs.Reached)
		tr.Release()
		c.Release()
		if err := c.M.DebugCheck(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestScheduleQuantifiesEverything: after the last cluster no present-state
// or input variable may remain in an image result.
func TestImageVarsAreStateOnly(t *testing.T) {
	nl := model.S1269(model.S1269Small())
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	var st ImageStats
	img := tr.Image(c.Init, nil, &st)
	isState := make(map[int]bool)
	for _, v := range c.StateVars {
		isState[v] = true
	}
	for _, v := range c.M.SupportVars(img) {
		if !isState[v] {
			t.Fatalf("image depends on non-state variable %d", v)
		}
	}
	c.M.Deref(img)
	tr.Release()
	c.Release()
}

// TestPartialImageIsSubset: with PImg active, a single HD image is always
// contained in the exact image.
func TestPartialImageIsSubset(t *testing.T) {
	nl := model.Am2910(model.Am2910Small())
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	var st ImageStats
	exact := tr.Image(c.Init, nil, &st)
	partial := tr.Image(c.Init, &PImg{Limit: 10, Threshold: 5, Subset: RUASubsetter(1.0)}, &st)
	if !c.M.Leq(partial, exact) {
		t.Fatal("partial image not contained in exact image")
	}
	c.M.Deref(exact)
	c.M.Deref(partial)
	tr.Release()
	c.Release()
}

// TestClusterThresholdSplits: a small cluster threshold yields more
// clusters than a huge one, and both give identical images.
func TestClusterThresholds(t *testing.T) {
	nl := model.S5378(model.S5378Small())
	c := compile(t, nl)
	trSmall, err := NewTR(c, TROptions{ClusterSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	trBig, err := NewTR(c, TROptions{ClusterSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(trSmall.Clusters) <= len(trBig.Clusters) {
		t.Fatalf("clustering had no effect: %d vs %d clusters",
			len(trSmall.Clusters), len(trBig.Clusters))
	}
	var st ImageStats
	a := trSmall.Image(c.Init, nil, &st)
	b := trBig.Image(c.Init, nil, &st)
	if a != b {
		t.Fatal("images differ across cluster thresholds")
	}
	c.M.Deref(a)
	c.M.Deref(b)
	trSmall.Release()
	trBig.Release()
	c.Release()
}

// TestInitialStateCount sanity-checks StateCount.
func TestInitialStateCount(t *testing.T) {
	nl := counterNetlist(4)
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.StateCount(c.Init); got != 1 {
		t.Fatalf("initial state count = %v", got)
	}
	if got := tr.StateCount(bdd.One); got != 16 {
		t.Fatalf("full space count = %v", got)
	}
	tr.Release()
	c.Release()
}
