// Package reach implements symbolic reachability analysis: partitioned
// transition relations with clustering and early quantification, image
// computation with optional partial-image subsetting, conventional
// breadth-first traversal, and the high-density traversal of Ravi–Somenzi
// (ICCAD'95) that the paper's Table 1 experiments accelerate with the RUA
// and SP approximation algorithms.
package reach

import (
	"fmt"
	"math/big"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/count"
	"bddkit/internal/obs"
)

// TR is a clustered conjunctive transition relation with a quantification
// schedule: cluster k is conjoined k-th during image computation and
// Schedule[k] is the cube of present-state and input variables that occur
// in no later cluster and can be abstracted immediately (early
// quantification, after Burch–Clarke–Long [3] / the IWLS'95 heuristics of
// Ranjan et al. [22]).
type TR struct {
	M        *bdd.Manager
	Clusters []bdd.Ref
	Schedule []bdd.Ref // quantification cube per cluster
	PreCube  bdd.Ref   // variables quantifiable before the first cluster

	StateVars []int
	NextVars  []int
	InputVars []int
	n2s       []int // permutation renaming next-state to state vars
	s2n       []int // inverse: state to next-state vars

	preSchedule []bdd.Ref // lazy: early-quantification cubes for PreImage
	prePre      bdd.Ref   // lazy: (y,w) vars in no cluster
}

// TROptions controls transition-relation construction.
type TROptions struct {
	// ClusterSize is the node-count threshold up to which adjacent bit
	// relations are conjoined into one cluster (the partitioned-TR
	// threshold of Burch–Clarke–Long).
	ClusterSize int
}

// DefaultTROptions returns the settings used by the Table 1 harness.
func DefaultTROptions() TROptions { return TROptions{ClusterSize: 2500} }

// NewTR builds the clustered transition relation of a compiled circuit:
// bit relations y_i ≡ δ_i(x, w), greedily conjoined while the product
// stays below the cluster threshold.
func NewTR(c *circuit.Compiled, opts TROptions) (*TR, error) {
	if len(c.NextVars) == 0 {
		return nil, fmt.Errorf("reach: compiled circuit has no next-state variables")
	}
	if opts.ClusterSize <= 0 {
		opts.ClusterSize = DefaultTROptions().ClusterSize
	}
	m := c.M
	tr := &TR{
		M:         m,
		StateVars: c.StateVars,
		NextVars:  c.NextVars,
		InputVars: c.InputVars,
	}
	csp := obs.T.Begin("reach.cluster",
		obs.Int("latches", len(c.Next)),
		obs.Int("cluster_size", opts.ClusterSize))
	// Bit relations in latch order; the interleaved variable order makes
	// neighboring latches likely to share support, which is what greedy
	// clustering exploits.
	cluster := m.Ref(bdd.One)
	flush := func() {
		if cluster != bdd.One {
			tr.Clusters = append(tr.Clusters, cluster)
			cluster = m.Ref(bdd.One)
		}
	}
	for i, delta := range c.Next {
		y := m.IthVar(c.NextVars[i])
		bit := m.Xnor(y, delta)
		merged := m.And(cluster, bit)
		if m.DagSize(merged) > opts.ClusterSize && cluster != bdd.One {
			// Keep the previous cluster; the bit relation starts a
			// new one.
			m.Deref(merged)
			flush()
			cluster2 := m.And(cluster, bit)
			m.Deref(cluster)
			cluster = cluster2
		} else {
			m.Deref(cluster)
			cluster = merged
		}
		m.Deref(bit)
	}
	flush()
	m.Deref(cluster)
	csp.End(obs.Int("clusters", len(tr.Clusters)))

	ssp := obs.T.Begin("reach.schedule", obs.Int("clusters", len(tr.Clusters)))
	tr.buildSchedule()
	ssp.End()
	tr.n2s = make([]int, m.NumVars())
	tr.s2n = make([]int, m.NumVars())
	for v := range tr.n2s {
		tr.n2s[v] = v
		tr.s2n[v] = v
	}
	for i, y := range c.NextVars {
		tr.n2s[y] = c.StateVars[i]
		tr.s2n[c.StateVars[i]] = y
	}
	return tr, nil
}

// buildSchedule computes, for every present-state and input variable, the
// last cluster whose support contains it; the variable is quantified right
// after that cluster is conjoined. Variables in no cluster at all go into
// PreCube and are abstracted from the frontier before the first
// conjunction.
func (tr *TR) buildSchedule() {
	m := tr.M
	last := make(map[int]int)
	quantifiable := make(map[int]bool)
	for _, v := range tr.StateVars {
		quantifiable[v] = true
	}
	for _, v := range tr.InputVars {
		quantifiable[v] = true
	}
	for k, c := range tr.Clusters {
		for _, v := range m.SupportVars(c) {
			if quantifiable[v] {
				last[v] = k
			}
		}
	}
	var pre []int
	for v := range quantifiable {
		if _, ok := last[v]; !ok {
			pre = append(pre, v)
		}
	}
	tr.PreCube = m.CubeFromVars(pre)
	byCluster := make([][]int, len(tr.Clusters))
	for v, k := range last {
		byCluster[k] = append(byCluster[k], v)
	}
	for _, vars := range byCluster {
		tr.Schedule = append(tr.Schedule, m.CubeFromVars(vars))
	}
}

// buildPreSchedule lazily computes the early-quantification schedule for
// backward images: next-state and input variables are abstracted right
// after the last cluster mentioning them.
func (tr *TR) buildPreSchedule() {
	if tr.preSchedule != nil {
		return
	}
	m := tr.M
	quantifiable := make(map[int]bool)
	for _, v := range tr.NextVars {
		quantifiable[v] = true
	}
	for _, v := range tr.InputVars {
		quantifiable[v] = true
	}
	last := make(map[int]int)
	for k, c := range tr.Clusters {
		for _, v := range m.SupportVars(c) {
			if quantifiable[v] {
				last[v] = k
			}
		}
	}
	var pre []int
	for v := range quantifiable {
		if _, ok := last[v]; !ok {
			pre = append(pre, v)
		}
	}
	tr.prePre = m.CubeFromVars(pre)
	byCluster := make([][]int, len(tr.Clusters))
	for v, k := range last {
		byCluster[k] = append(byCluster[k], v)
	}
	for _, vars := range byCluster {
		tr.preSchedule = append(tr.preSchedule, m.CubeFromVars(vars))
	}
}

// PreImage computes the set of predecessors of to (a predicate over the
// present-state variables), again over the present-state variables:
// Pre(T) = ∃y,w. TR(x,w,y) ∧ T(y).
func (tr *TR) PreImage(to bdd.Ref, st *ImageStats) bdd.Ref {
	m := tr.M
	tr.buildPreSchedule()
	st.Images++
	ty := m.Permute(to, tr.s2n)
	cur := m.ExistsCube(ty, tr.prePre)
	m.Deref(ty)
	for k, c := range tr.Clusters {
		next := m.AndExists(cur, c, tr.preSchedule[k])
		m.Deref(cur)
		cur = next
		st.AndExists++
	}
	if live := m.NodeCount(); live > st.PeakLiveNodes {
		st.PeakLiveNodes = live
	}
	return cur
}

// Release drops the references held by the transition relation.
func (tr *TR) Release() {
	for _, c := range tr.Clusters {
		tr.M.Deref(c)
	}
	for _, q := range tr.Schedule {
		tr.M.Deref(q)
	}
	tr.M.Deref(tr.PreCube)
	for _, q := range tr.preSchedule {
		tr.M.Deref(q)
	}
	if tr.preSchedule != nil {
		tr.M.Deref(tr.prePre)
	}
	tr.Clusters, tr.Schedule, tr.preSchedule = nil, nil, nil
}

// NumStateBits returns the number of latches.
func (tr *TR) NumStateBits() int { return len(tr.StateVars) }

// StateCount returns the number of states in a predicate over the
// present-state variables.
func (tr *TR) StateCount(set bdd.Ref) float64 {
	frac := tr.M.MintermFraction(set)
	p := 1.0
	for range tr.StateVars {
		p *= 2
	}
	return frac * p
}

// StateCountExact returns the exact number of states in a predicate over
// the present-state variables. StateCount's float64 stops being exact at
// 2^53 states (and accumulates rounding in deep recursions well before
// that); this is the big.Int-safe form, errored when set depends on
// variables outside the present-state set.
func (tr *TR) StateCountExact(set bdd.Ref) (*big.Int, error) {
	return count.MintermsOver(tr.M, set, tr.StateVars)
}

// stateCountExactOrNil is the Result-construction form of
// StateCountExact: traversal sets always range over the present-state
// variables, so the error path is vestigial.
func (tr *TR) stateCountExactOrNil(set bdd.Ref) *big.Int {
	c, err := tr.StateCountExact(set)
	if err != nil {
		return nil
	}
	return c
}
