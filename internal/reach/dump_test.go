package reach

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"bddkit/internal/approx"
	"bddkit/internal/model"
	"bddkit/internal/obs"
)

// TestBudgetAbortDumpHasStackAndLedger: when node-budget exhaustion aborts
// a traversal under an armed observability session, the flight-recorder
// dump must carry (a) the bdd.abort event with the open-span stack — that
// is the only record naming *where* the run died, since open spans have
// not written themselves yet — and (b) the most recent quality.op ledger
// record, the last quality decision made before death. Checked on the
// serial engine and on Workers=4 (the parallel allocator has its own
// limit-check path).
func TestBudgetAbortDumpHasStackAndLedger(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sess, err := obs.Config{
				Trace: filepath.Join(t.TempDir(), "trace.jsonl"),
			}.Start()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			var dump bytes.Buffer
			sess.SetDumpWriter(&dump)

			nl := model.S5378(model.S5378Config{Units: 4, UnitWidth: 4})
			var c = compilePar(t, nl, workers)
			defer c.Release()
			tr, err := NewTR(c, DefaultTROptions())
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Release()

			// File a real ledger record before the traversal so the flight
			// ring holds a quality.op to dump: approximate one output.
			r := approx.HeavyBranch(c.M, c.Outputs[0], 8)
			c.M.Deref(r)

			// A ceiling below what the first image needs trips the abort
			// inside BFS; the traversal recovers and reports incomplete.
			c.M.SetNodeLimit(c.M.NodeCount() + 16)
			defer c.M.SetNodeLimit(0)
			res := tr.BFS(c.Init, Options{})
			c.M.SetNodeLimit(0)
			defer c.M.Deref(res.Reached)
			if res.Completed {
				t.Fatal("traversal completed under a microscopic node limit")
			}

			out := dump.String()
			if !strings.Contains(out, "node budget exhausted") {
				t.Fatalf("no flight dump on budget abort:\n%s", out)
			}
			if !strings.Contains(out, `"bdd.abort"`) {
				t.Fatalf("dump missing the bdd.abort event:\n%s", out)
			}
			// The abort event's span stack must place the death inside the
			// traversal iteration.
			if !strings.Contains(out, `"stack"`) || !strings.Contains(out, "reach.iteration") {
				t.Fatalf("dump's abort event carries no span stack:\n%s", out)
			}
			// The pre-abort ledger record must be in the ring.
			if !strings.Contains(out, `"quality.op"`) || !strings.Contains(out, `"hb"`) {
				t.Fatalf("dump missing the last quality.op ledger record:\n%s", out)
			}
		})
	}
}
