package reach

import (
	"testing"

	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

// explicitReachable enumerates the exact reachable state set of a small
// netlist by brute-force breadth-first search over the simulator — the
// ground truth the symbolic engine is validated against.
func explicitReachable(t *testing.T, nl *circuit.Netlist) map[uint64]bool {
	t.Helper()
	nLatches := len(nl.Latches)
	nInputs := len(nl.Inputs)
	if nLatches > 24 || nInputs > 12 {
		t.Fatalf("model too large for explicit search: %d latches, %d inputs", nLatches, nInputs)
	}
	sim, err := circuit.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(state []bool) uint64 {
		var v uint64
		for i, b := range state {
			if b {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	decode := func(v uint64) []bool {
		out := make([]bool, nLatches)
		for i := range out {
			out[i] = v>>uint(i)&1 == 1
		}
		return out
	}
	sim.Reset()
	init := encode(sim.State())
	seen := map[uint64]bool{init: true}
	queue := []uint64{init}
	in := make([]bool, nInputs)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for w := 0; w < 1<<uint(nInputs); w++ {
			for i := range in {
				in[i] = w>>uint(i)&1 == 1
			}
			sim.SetState(decode(cur))
			sim.Step(in)
			next := encode(sim.State())
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return seen
}

// TestSymbolicMatchesExplicit: the symbolic reached set equals brute-force
// enumeration, state for state, on every small model.
func TestSymbolicMatchesExplicit(t *testing.T) {
	if testing.Short() {
		t.Skip("explicit enumeration is slow; skipped with -short")
	}
	models := map[string]*circuit.Netlist{
		"counter":     counterNetlist(4),
		"s1269-small": model.S1269(model.S1269Small()),
		"am2910-tiny": model.Am2910(model.Am2910Config{Width: 3, StackDepth: 2}),
		"s5378-small": model.S5378(model.S5378Small()),
	}
	for name, nl := range models {
		explicit := explicitReachable(t, nl)
		c := compile(t, nl)
		tr, err := NewTR(c, DefaultTROptions())
		if err != nil {
			t.Fatal(err)
		}
		res := tr.BFS(c.Init, Options{})
		if !res.Completed {
			t.Fatalf("%s: symbolic BFS did not complete", name)
		}
		if int(res.States) != len(explicit) {
			t.Fatalf("%s: symbolic %v states, explicit %d", name, res.States, len(explicit))
		}
		// Every explicit state must satisfy the symbolic predicate, and
		// the counts matching makes it a bijection.
		nLatches := len(nl.Latches)
		assignment := make([]bool, c.M.NumVars())
		for v := range explicit {
			for i := 0; i < nLatches; i++ {
				assignment[c.StateVars[i]] = v>>uint(i)&1 == 1
			}
			if !c.M.Eval(res.Reached, assignment) {
				t.Fatalf("%s: explicit state %b missing from symbolic set", name, v)
			}
		}
		c.M.Deref(res.Reached)
		tr.Release()
		c.Release()
	}
}
