package reach

import (
	"sync"
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// Subsetter extracts a dense subset of a BDD; the paper's Table 1 plugs
// RemapUnderApprox or ShortPaths into this slot both for frontier
// subsetting and partial-image subsetting.
type Subsetter func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref

// RUASubsetter adapts RemapUnderApprox with the given quality factor.
func RUASubsetter(quality float64) Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.RemapUnderApprox(m, f, threshold, quality)
	}
}

// SPSubsetter adapts ShortPaths.
func SPSubsetter() Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.ShortPaths(m, f, threshold)
	}
}

// HBSubsetter adapts HeavyBranch.
func HBSubsetter() Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.HeavyBranch(m, f, threshold)
	}
}

// PImg configures partial-image subsetting inside image computation (the
// "PImg" column of Table 1): when an intermediate product exceeds Limit
// nodes, it is replaced by a dense subset of at most Threshold nodes.
type PImg struct {
	Limit     int
	Threshold int
	Subset    Subsetter
}

// ImageStats accumulates work counters across image computations.
type ImageStats struct {
	Images        int  // image computations performed
	AndExists     int  // relational products
	PImgCuts      int  // partial-image subsettings applied
	PeakLiveNodes int  // high-water mark of the manager's live nodes
	PeakProduct   int  // largest intermediate product seen
	Aborted       bool // an image hit the traversal deadline or node limit mid-way
	// AbortReason describes what tripped when Aborted is set (the
	// bdd.OpAborted reason, or the deadline poll between conjunctions).
	AbortReason string

	// Computed-table traffic over the manager for the whole run (the
	// traversals run on a fresh manager, so these are attributable to the
	// run): the memory-subsystem story behind the timing columns.
	CacheLookups int64 // computed-table probes
	CacheHits    int64 // computed-table hits

	// Stop-the-world accounting over the run (parallel engine only; zero
	// on the serial engine): the serial sections that bound the run's
	// attainable speedup under Amdahl's law.
	STWCount int64         // write-lease / stop-the-world epochs
	STWTime  time.Duration // wait + pause summed over those epochs

	// Per-phase wall-time breakdown of the traversal, accumulated by the
	// traversal loops and Image: where a Table 1 timing column actually
	// went.
	ImageTime   time.Duration // inside Image (clusters + partial-image cuts)
	SubsetTime  time.Duration // inside frontier subsetting (HD only)
	ClosureTime time.Duration // inside exact closure checks (HD only)

	// Tracer receives structured span/event output for this run; nil falls
	// back to the process-global obs.T (which is itself disabled unless an
	// obs session armed it).
	Tracer *obs.Tracer

	// Deadline, when non-zero, aborts image computation between cluster
	// conjunctions (set by the traversals from Options.Budget; an
	// in-flight relational product cannot be interrupted, so some
	// overshoot remains possible).
	Deadline time.Time
}

// tracer returns the run's tracer, defaulting to the process-global one.
func (st *ImageStats) tracer() *obs.Tracer {
	if st.Tracer != nil {
		return st.Tracer
	}
	return obs.T
}

// Image computes the set of successors of from (a predicate over the
// present-state variables), expressed again over the present-state
// variables. With a non-nil pimg the result may be a dense subset of the
// exact image (partial image computation, Section 4 of the paper).
//
// When the traversal deadline trips inside a BDD operation (see
// bdd.OpAborted), the abort is absorbed here: the image reports Zero and
// st.Aborted is set, which the traversal loops treat as "budget over".
func (tr *TR) Image(from bdd.Ref, pimg *PImg, st *ImageStats) (res bdd.Ref) {
	m := tr.M
	t := st.tracer()
	start := time.Now()
	var sp *obs.Span
	if t.Enabled() {
		sp = t.Begin("reach.image",
			obs.Int("from_nodes", m.DagSize(from)),
			obs.Int("clusters", len(tr.Clusters)),
			obs.Bool("pimg", pimg != nil))
	}
	defer func() {
		st.ImageTime += time.Since(start)
		if r := recover(); r != nil {
			if ab, ok := r.(bdd.OpAborted); ok {
				st.Aborted = true
				st.AbortReason = ab.Reason
				res = m.Ref(bdd.Zero)
				sp.End(obs.Bool("aborted", true))
				return
			}
			panic(r)
		}
		sp.End(obs.Bool("aborted", st.Aborted),
			obs.Int("peak_product", st.PeakProduct))
	}()
	st.Images++
	cur := m.ExistsCube(from, tr.PreCube)
	if pimg == nil && len(tr.Clusters) > 1 && m.Workers() > 1 {
		// Concurrent path: the image is exact either way, so canonicity
		// makes the tree agree Ref-for-Ref with the serial chain below.
		// Partial-image cuts depend on the conjunction order, so a non-nil
		// pimg keeps the serial schedule.
		var aborted bool
		cur, aborted = tr.imageTree(cur, st)
		if aborted {
			st.Aborted = true
			if st.AbortReason == "" {
				st.AbortReason = "operation aborted in concurrent image"
			}
			return m.Ref(bdd.Zero)
		}
		res = m.Permute(cur, tr.n2s)
		m.Deref(cur)
		if live := m.NodeCount(); live > st.PeakLiveNodes {
			st.PeakLiveNodes = live
		}
		return res
	}
	for k, c := range tr.Clusters {
		if !st.Deadline.IsZero() && time.Now().After(st.Deadline) {
			st.Aborted = true
			st.AbortReason = "deadline exceeded"
			m.Deref(cur)
			return m.Ref(bdd.Zero)
		}
		next := m.AndExists(cur, c, tr.Schedule[k])
		m.Deref(cur)
		cur = next
		st.AndExists++
		if sz := m.DagSize(cur); sz > st.PeakProduct {
			st.PeakProduct = sz
		}
		if pimg != nil && pimg.Limit > 0 {
			if sz := m.DagSize(cur); sz > pimg.Limit {
				sub := pimg.Subset(m, cur, pimg.Threshold)
				m.Deref(cur)
				cur = sub
				st.PImgCuts++
				if t.Enabled() {
					t.Event("reach.pimg_cut",
						obs.Int("cluster", k),
						obs.Int("product_nodes", sz),
						obs.Int("threshold", pimg.Threshold),
						obs.Int("result_nodes", m.DagSize(cur)))
				}
			}
		}
	}
	// Rename next-state to present-state variables.
	res = m.Permute(cur, tr.n2s)
	m.Deref(cur)
	if live := m.NodeCount(); live > st.PeakLiveNodes {
		st.PeakLiveNodes = live
	}
	return res
}

// imageTree conjoins the frontier with the clusters by a balanced pairwise
// reduction tree instead of the serial left-deep chain: each level merges
// adjacent operands with AndExists in concurrent goroutines on the shared
// manager, so independent relational products overlap. The quantification
// schedule is recomputed per level from the live supports: a present-state
// or input variable is abstracted inside the pair that holds its last
// remaining occurrences (∃v.(f∧g) = (∃v.f)∧g needs v ∉ supp(g), so a
// variable may only be quantified once its support collapses into a single
// pair). Takes ownership of cur; returns the exact image frontier over the
// next-state variables, before the Permute back to present-state.
//
// A bdd.OpAborted raised inside a worker goroutine is captured and
// re-panicked on the calling goroutine after the level joins, so Image's
// recover sees it exactly as on the serial path.
func (tr *TR) imageTree(cur bdd.Ref, st *ImageStats) (res bdd.Ref, aborted bool) {
	m := tr.M
	quantifiable := make(map[int]bool, len(tr.StateVars)+len(tr.InputVars))
	for _, v := range tr.StateVars {
		quantifiable[v] = true
	}
	for _, v := range tr.InputVars {
		quantifiable[v] = true
	}
	items := make([]bdd.Ref, 0, len(tr.Clusters)+1)
	items = append(items, cur)
	for _, c := range tr.Clusters {
		items = append(items, m.Ref(c))
	}
	release := func() {
		for _, f := range items {
			m.Deref(f)
		}
	}
	for len(items) > 1 {
		if !st.Deadline.IsZero() && time.Now().After(st.Deadline) {
			release()
			return bdd.Zero, true
		}
		// Support census over the remaining operands.
		occ := make(map[int]int)
		supports := make([][]int, len(items))
		for i, f := range items {
			supports[i] = m.SupportVars(f)
			for _, v := range supports[i] {
				if quantifiable[v] {
					occ[v]++
				}
			}
		}
		pairs := len(items) / 2
		next := make([]bdd.Ref, pairs)
		panics := make([]any, pairs)
		cubes := make([]bdd.Ref, pairs)
		for p := 0; p < pairs; p++ {
			inPair := make(map[int]int)
			for _, side := range [2][]int{supports[2*p], supports[2*p+1]} {
				for _, v := range side {
					if quantifiable[v] {
						inPair[v]++
					}
				}
			}
			var qv []int
			for v, n := range inPair {
				if occ[v] == n {
					qv = append(qv, v)
				}
			}
			cubes[p] = m.CubeFromVars(qv)
		}
		var wg sync.WaitGroup
		for p := 0; p < pairs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				defer func() { panics[p] = recover() }()
				next[p] = m.AndExists(items[2*p], items[2*p+1], cubes[p])
			}(p)
		}
		wg.Wait()
		for p := 0; p < pairs; p++ {
			m.Deref(cubes[p])
		}
		for _, r := range panics {
			if r != nil {
				for p := 0; p < pairs; p++ {
					if panics[p] == nil {
						m.Deref(next[p])
					}
				}
				release()
				panic(r)
			}
		}
		merged := make([]bdd.Ref, 0, pairs+1)
		for p := 0; p < pairs; p++ {
			m.Deref(items[2*p])
			m.Deref(items[2*p+1])
			merged = append(merged, next[p])
			st.AndExists++
			if sz := m.DagSize(next[p]); sz > st.PeakProduct {
				st.PeakProduct = sz
			}
		}
		if len(items)%2 == 1 {
			merged = append(merged, items[len(items)-1])
		}
		items = merged
	}
	res = items[0]
	// The final merge quantified every remaining schedulable variable (at
	// that point its support is necessarily confined to the last pair);
	// sweep up defensively in case the loop ran zero levels.
	var left []int
	for _, v := range m.SupportVars(res) {
		if quantifiable[v] {
			left = append(left, v)
		}
	}
	if len(left) > 0 {
		cube := m.CubeFromVars(left)
		out := m.ExistsCube(res, cube)
		m.Deref(cube)
		m.Deref(res)
		res = out
	}
	return res, false
}
