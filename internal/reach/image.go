package reach

import (
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
	"bddkit/internal/obs"
)

// Subsetter extracts a dense subset of a BDD; the paper's Table 1 plugs
// RemapUnderApprox or ShortPaths into this slot both for frontier
// subsetting and partial-image subsetting.
type Subsetter func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref

// RUASubsetter adapts RemapUnderApprox with the given quality factor.
func RUASubsetter(quality float64) Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.RemapUnderApprox(m, f, threshold, quality)
	}
}

// SPSubsetter adapts ShortPaths.
func SPSubsetter() Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.ShortPaths(m, f, threshold)
	}
}

// HBSubsetter adapts HeavyBranch.
func HBSubsetter() Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.HeavyBranch(m, f, threshold)
	}
}

// PImg configures partial-image subsetting inside image computation (the
// "PImg" column of Table 1): when an intermediate product exceeds Limit
// nodes, it is replaced by a dense subset of at most Threshold nodes.
type PImg struct {
	Limit     int
	Threshold int
	Subset    Subsetter
}

// ImageStats accumulates work counters across image computations.
type ImageStats struct {
	Images        int  // image computations performed
	AndExists     int  // relational products
	PImgCuts      int  // partial-image subsettings applied
	PeakLiveNodes int  // high-water mark of the manager's live nodes
	PeakProduct   int  // largest intermediate product seen
	Aborted       bool // an image hit the traversal deadline mid-way

	// Computed-table traffic over the manager for the whole run (the
	// traversals run on a fresh manager, so these are attributable to the
	// run): the memory-subsystem story behind the timing columns.
	CacheLookups int64 // computed-table probes
	CacheHits    int64 // computed-table hits

	// Per-phase wall-time breakdown of the traversal, accumulated by the
	// traversal loops and Image: where a Table 1 timing column actually
	// went.
	ImageTime   time.Duration // inside Image (clusters + partial-image cuts)
	SubsetTime  time.Duration // inside frontier subsetting (HD only)
	ClosureTime time.Duration // inside exact closure checks (HD only)

	// Tracer receives structured span/event output for this run; nil falls
	// back to the process-global obs.T (which is itself disabled unless an
	// obs session armed it).
	Tracer *obs.Tracer

	// Deadline, when non-zero, aborts image computation between cluster
	// conjunctions (set by the traversals from Options.Budget; an
	// in-flight relational product cannot be interrupted, so some
	// overshoot remains possible).
	Deadline time.Time
}

// tracer returns the run's tracer, defaulting to the process-global one.
func (st *ImageStats) tracer() *obs.Tracer {
	if st.Tracer != nil {
		return st.Tracer
	}
	return obs.T
}

// Image computes the set of successors of from (a predicate over the
// present-state variables), expressed again over the present-state
// variables. With a non-nil pimg the result may be a dense subset of the
// exact image (partial image computation, Section 4 of the paper).
//
// When the traversal deadline trips inside a BDD operation (see
// bdd.OpAborted), the abort is absorbed here: the image reports Zero and
// st.Aborted is set, which the traversal loops treat as "budget over".
func (tr *TR) Image(from bdd.Ref, pimg *PImg, st *ImageStats) (res bdd.Ref) {
	m := tr.M
	t := st.tracer()
	start := time.Now()
	var sp *obs.Span
	if t.Enabled() {
		sp = t.Begin("reach.image",
			obs.Int("from_nodes", m.DagSize(from)),
			obs.Int("clusters", len(tr.Clusters)),
			obs.Bool("pimg", pimg != nil))
	}
	defer func() {
		st.ImageTime += time.Since(start)
		if r := recover(); r != nil {
			if _, ok := r.(bdd.OpAborted); ok {
				st.Aborted = true
				res = m.Ref(bdd.Zero)
				sp.End(obs.Bool("aborted", true))
				return
			}
			panic(r)
		}
		sp.End(obs.Bool("aborted", st.Aborted),
			obs.Int("peak_product", st.PeakProduct))
	}()
	st.Images++
	cur := m.ExistsCube(from, tr.PreCube)
	for k, c := range tr.Clusters {
		if !st.Deadline.IsZero() && time.Now().After(st.Deadline) {
			st.Aborted = true
			m.Deref(cur)
			return m.Ref(bdd.Zero)
		}
		next := m.AndExists(cur, c, tr.Schedule[k])
		m.Deref(cur)
		cur = next
		st.AndExists++
		if sz := m.DagSize(cur); sz > st.PeakProduct {
			st.PeakProduct = sz
		}
		if pimg != nil && pimg.Limit > 0 {
			if sz := m.DagSize(cur); sz > pimg.Limit {
				sub := pimg.Subset(m, cur, pimg.Threshold)
				m.Deref(cur)
				cur = sub
				st.PImgCuts++
				if t.Enabled() {
					t.Event("reach.pimg_cut",
						obs.Int("cluster", k),
						obs.Int("product_nodes", sz),
						obs.Int("threshold", pimg.Threshold),
						obs.Int("result_nodes", m.DagSize(cur)))
				}
			}
		}
	}
	// Rename next-state to present-state variables.
	res = m.Permute(cur, tr.n2s)
	m.Deref(cur)
	if live := m.NodeCount(); live > st.PeakLiveNodes {
		st.PeakLiveNodes = live
	}
	return res
}
