package reach

import (
	"time"

	"bddkit/internal/approx"
	"bddkit/internal/bdd"
)

// Subsetter extracts a dense subset of a BDD; the paper's Table 1 plugs
// RemapUnderApprox or ShortPaths into this slot both for frontier
// subsetting and partial-image subsetting.
type Subsetter func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref

// RUASubsetter adapts RemapUnderApprox with the given quality factor.
func RUASubsetter(quality float64) Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.RemapUnderApprox(m, f, threshold, quality)
	}
}

// SPSubsetter adapts ShortPaths.
func SPSubsetter() Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.ShortPaths(m, f, threshold)
	}
}

// HBSubsetter adapts HeavyBranch.
func HBSubsetter() Subsetter {
	return func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		return approx.HeavyBranch(m, f, threshold)
	}
}

// PImg configures partial-image subsetting inside image computation (the
// "PImg" column of Table 1): when an intermediate product exceeds Limit
// nodes, it is replaced by a dense subset of at most Threshold nodes.
type PImg struct {
	Limit     int
	Threshold int
	Subset    Subsetter
}

// ImageStats accumulates work counters across image computations.
type ImageStats struct {
	Images        int  // image computations performed
	AndExists     int  // relational products
	PImgCuts      int  // partial-image subsettings applied
	PeakLiveNodes int  // high-water mark of the manager's live nodes
	PeakProduct   int  // largest intermediate product seen
	Aborted       bool // an image hit the traversal deadline mid-way

	// Computed-table traffic over the manager for the whole run (the
	// traversals run on a fresh manager, so these are attributable to the
	// run): the memory-subsystem story behind the timing columns.
	CacheLookups int64 // computed-table probes
	CacheHits    int64 // computed-table hits

	// Deadline, when non-zero, aborts image computation between cluster
	// conjunctions (set by the traversals from Options.Budget; an
	// in-flight relational product cannot be interrupted, so some
	// overshoot remains possible).
	Deadline time.Time
}

// Image computes the set of successors of from (a predicate over the
// present-state variables), expressed again over the present-state
// variables. With a non-nil pimg the result may be a dense subset of the
// exact image (partial image computation, Section 4 of the paper).
//
// When the traversal deadline trips inside a BDD operation (see
// bdd.OpAborted), the abort is absorbed here: the image reports Zero and
// st.Aborted is set, which the traversal loops treat as "budget over".
func (tr *TR) Image(from bdd.Ref, pimg *PImg, st *ImageStats) (res bdd.Ref) {
	m := tr.M
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bdd.OpAborted); ok {
				st.Aborted = true
				res = m.Ref(bdd.Zero)
				return
			}
			panic(r)
		}
	}()
	st.Images++
	cur := m.ExistsCube(from, tr.PreCube)
	for k, c := range tr.Clusters {
		if !st.Deadline.IsZero() && time.Now().After(st.Deadline) {
			st.Aborted = true
			m.Deref(cur)
			return m.Ref(bdd.Zero)
		}
		next := m.AndExists(cur, c, tr.Schedule[k])
		m.Deref(cur)
		cur = next
		st.AndExists++
		if sz := m.DagSize(cur); sz > st.PeakProduct {
			st.PeakProduct = sz
		}
		if pimg != nil && pimg.Limit > 0 {
			if sz := m.DagSize(cur); sz > pimg.Limit {
				sub := pimg.Subset(m, cur, pimg.Threshold)
				m.Deref(cur)
				cur = sub
				st.PImgCuts++
			}
		}
	}
	// Rename next-state to present-state variables.
	res = m.Permute(cur, tr.n2s)
	m.Deref(cur)
	if live := m.NodeCount(); live > st.PeakLiveNodes {
		st.PeakLiveNodes = live
	}
	return res
}
