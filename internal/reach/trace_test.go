package reach

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/model"
	"bddkit/internal/obs"
)

// TestHighDensitySubsetTraceEvents drives the high-density traversal with
// a per-run tracer and checks that every subsetting decision point emits a
// reach.subset event whose frontier sizes match what the subsetter
// actually saw, and that the per-iteration spans cover every traversal
// iteration with the right frontier sizes.
func TestHighDensitySubsetTraceEvents(t *testing.T) {
	nl := model.S1269(model.S1269Small())
	c := compile(t, nl)
	defer c.Release()
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()

	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)

	// Wrap the subsetter so the test has ground truth for each call.
	type subsetCall struct{ before, threshold, after int }
	var calls []subsetCall
	base := RUASubsetter(1.0)
	sub := func(m *bdd.Manager, f bdd.Ref, threshold int) bdd.Ref {
		r := base(m, f, threshold)
		calls = append(calls, subsetCall{m.DagSize(f), threshold, m.DagSize(r)})
		return r
	}

	const threshold = 20
	res := tr.HighDensity(c.Init, Options{Subset: sub, Threshold: threshold, Tracer: tracer})
	defer c.M.Deref(res.Reached)
	if !res.Completed {
		t.Fatal("traversal did not complete")
	}
	if len(calls) == 0 {
		t.Fatal("subsetter was never invoked")
	}

	sum, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace is not valid JSONL: %v", err)
	}
	if got := sum.ByName["reach.iteration"]; got != res.Iterations {
		t.Fatalf("reach.iteration spans = %d, want one per iteration (%d)", got, res.Iterations)
	}
	if got := sum.ByName["reach.closure"]; got != res.Closure {
		t.Fatalf("reach.closure spans = %d, want %d", got, res.Closure)
	}
	if got := sum.ByName["reach.image"]; got != res.Stats.Images {
		t.Fatalf("reach.image spans = %d, want %d", got, res.Stats.Images)
	}

	// Replay the trace and pull out the subset events and iteration spans.
	attrInt := func(ev obs.Event, key string) int {
		v, ok := ev.Attrs[key].(float64) // encoding/json decodes numbers as float64
		if !ok {
			t.Fatalf("%s: attr %q missing or not a number: %v", ev.Name, key, ev.Attrs[key])
		}
		return int(v)
	}
	var subsets []subsetCall
	var iterFrontiers []int
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Name {
		case "reach.subset":
			subsets = append(subsets, subsetCall{
				before:    attrInt(ev, "frontier_before"),
				threshold: attrInt(ev, "threshold"),
				after:     attrInt(ev, "frontier_after"),
			})
		case "reach.iteration":
			iterFrontiers = append(iterFrontiers, attrInt(ev, "frontier_nodes"))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(subsets) != len(calls) {
		t.Fatalf("reach.subset events = %d, want one per subsetter call (%d)", len(subsets), len(calls))
	}
	for i, want := range calls {
		if subsets[i] != want {
			t.Fatalf("subset event %d = %+v, want %+v (sizes as the subsetter saw them)", i, subsets[i], want)
		}
		if subsets[i].threshold != threshold {
			t.Fatalf("subset event %d threshold = %d, want %d", i, subsets[i].threshold, threshold)
		}
	}

	// Iteration spans emit at End, so span k's frontier belongs to the k-th
	// iteration in order: the first frontier is the initial states, and
	// every later one is the previous subsetter's output.
	if len(iterFrontiers) != res.Iterations {
		t.Fatalf("parsed %d iteration spans, want %d", len(iterFrontiers), res.Iterations)
	}
	if want := c.M.DagSize(c.Init); iterFrontiers[0] != want {
		t.Fatalf("iteration 1 frontier_nodes = %d, want |init| = %d", iterFrontiers[0], want)
	}
	for k := 1; k < len(iterFrontiers); k++ {
		if want := calls[k-1].after; iterFrontiers[k] != want {
			t.Fatalf("iteration %d frontier_nodes = %d, want previous subset output %d",
				k+1, iterFrontiers[k], want)
		}
	}
}

// TestTraversalWithoutTracerEmitsNothing: with no per-run tracer and the
// global tracer disabled, a traversal must not allocate spans (the Options
// zero value stays zero-overhead).
func TestTraversalWithoutTracerEmitsNothing(t *testing.T) {
	if obs.T.Enabled() {
		t.Skip("global tracer armed by another test")
	}
	nl := model.S3330(model.S3330Small())
	c := compile(t, nl)
	defer c.Release()
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	res := tr.BFS(c.Init, Options{})
	defer c.M.Deref(res.Reached)
	if !res.Completed {
		t.Fatal("BFS did not complete")
	}
}
