package reach

import (
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
)

// TestPreImageCounter: on an en-gated counter, Pre({q == k}) is
// {q == k-1} ∪ {q == k} (step with enable, or hold without).
func TestPreImageCounter(t *testing.T) {
	const k = 5
	nl := counterNetlist(k)
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	eq := func(v int) bdd.Ref {
		m := c.M
		r := m.Ref(bdd.One)
		for i, sv := range c.StateVars {
			lit := m.IthVar(sv)
			if v>>uint(i)&1 == 0 {
				lit = lit.Complement()
			}
			nr := m.And(r, lit)
			m.Deref(r)
			r = nr
		}
		return r
	}
	var st ImageStats
	for _, target := range []int{1, 7, 19} {
		to := eq(target)
		pre := tr.PreImage(to, &st)
		prev := eq(target - 1)
		want := c.M.Or(prev, to)
		if pre != want {
			t.Fatalf("Pre(q==%d) wrong: %v states", target, tr.StateCount(pre))
		}
		for _, r := range []bdd.Ref{to, pre, prev, want} {
			c.M.Deref(r)
		}
	}
	tr.Release()
	c.Release()
}

// TestPreImageDuality: for the total transition relations of circuits
// (every state has a successor for every input), from ⊆ Pre(Image(from)).
func TestPreImageDuality(t *testing.T) {
	models := []*circuit.Netlist{
		counterNetlist(4),
		model.S1269(model.S1269Small()),
		model.S5378(model.S5378Small()),
	}
	for _, nl := range models {
		c := compile(t, nl)
		tr, err := NewTR(c, DefaultTROptions())
		if err != nil {
			t.Fatal(err)
		}
		var st ImageStats
		img := tr.Image(c.Init, nil, &st)
		pre := tr.PreImage(img, &st)
		if !c.M.Leq(c.Init, pre) {
			t.Fatalf("%s: init not in Pre(Image(init))", nl.Name)
		}
		// And dually, every state in the image has a predecessor in
		// init's... at least the image must intersect Image(pre).
		img2 := tr.Image(pre, nil, &st)
		if !c.M.Leq(img, img2) {
			t.Fatalf("%s: Image(Pre(Image)) lost successors", nl.Name)
		}
		for _, r := range []bdd.Ref{img, pre, img2} {
			c.M.Deref(r)
		}
		tr.Release()
		c.Release()
	}
}

// TestBackwardForwardAgreement: bad is forward-reachable from init iff
// init is backward-reachable from bad.
func TestBackwardForwardAgreement(t *testing.T) {
	nl := model.S5378(model.S5378Small())
	c := compile(t, nl)
	tr, err := NewTR(c, DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	m := c.M
	fwd := tr.BFS(c.Init, Options{})
	// Pick a reachable state and an unreachable one (if any).
	reachableTarget := m.Ref(fwd.Reached)
	var st ImageStats
	// Backward closure from the (huge) reachable set must contain init.
	back := m.Ref(reachableTarget)
	for {
		pre := tr.PreImage(back, &st)
		nb := m.Or(back, pre)
		m.Deref(pre)
		if nb == back {
			m.Deref(nb)
			break
		}
		m.Deref(back)
		back = nb
	}
	if !m.Leq(c.Init, back) {
		t.Fatal("backward closure from reachable states misses init")
	}
	m.Deref(back)
	m.Deref(reachableTarget)
	m.Deref(fwd.Reached)
	tr.Release()
	c.Release()
}
