package mc

import (
	"testing"

	"bddkit/internal/bdd"
	"bddkit/internal/circuit"
	"bddkit/internal/model"
	"bddkit/internal/reach"
)

// buildCounter returns an enable-gated k-bit counter.
func buildCounter(k int) *circuit.Netlist {
	b := circuit.NewBuilder("counter")
	en := b.Input("en")
	q := b.LatchBus("q", k, 0)
	inc, _ := b.Incrementer(q)
	b.SetNextBus(q, b.MuxBus(en, inc, q))
	b.Output("tc", b.EqConst(q, uint64(1<<uint(k)-1)))
	return b.MustBuild()
}

func newChecker(t *testing.T, nl *circuit.Netlist) (*Checker, func()) {
	t.Helper()
	c, err := circuit.Compile(nl, circuit.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := reach.NewTR(c, reach.DefaultTROptions())
	if err != nil {
		t.Fatal(err)
	}
	ck := NewChecker(c, tr, nil)
	ck.DefineLatchAtoms()
	return ck, func() {
		ck.Release()
		tr.Release()
		c.Release()
	}
}

func TestCounterProperties(t *testing.T) {
	const k = 4
	ck, done := newChecker(t, buildCounter(k))
	defer done()
	if _, err := ck.RestrictToReachable(reach.Options{}); err != nil {
		t.Fatal(err)
	}
	// tc: all bits one.
	tc := ck.C.M.Ref(bdd.One)
	for i := 0; i < k; i++ {
		n := ck.C.M.And(tc, ck.C.M.IthVar(ck.C.StateVars[i]))
		ck.C.M.Deref(tc)
		tc = n
	}
	ck.DefineAtom("tc", tc)
	ck.C.M.Deref(tc)

	cases := []struct {
		src  string
		want bool
	}{
		{"EF tc", true},              // the counter can reach all-ones
		{"AF tc", false},             // but need not (enable can stay low)
		{"AG EF tc", true},           // from everywhere it stays reachable
		{"AG (tc -> EX !tc)", true},  // from all-ones it can wrap to zero
		{"AG (tc -> AX !tc)", false}, // ...but can also hold (enable low)? no: holding keeps tc. AX !tc is false.
		{"E[!tc U tc]", true},
		{"A[true U tc]", false}, // same as AF tc
		{"EG !tc", true},        // stay below all-ones forever (enable low)
		{"!EG false", true},
		{"AG (q0 | !q0)", true}, // tautology over an atom
	}
	for _, tc := range cases {
		f, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		got, err := ck.Holds(f)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestParserRoundTrip: String() output reparses to an equal tree.
func TestParserRoundTrip(t *testing.T) {
	srcs := []string{
		"AG(req -> AF ack)",
		"E[!err U done]",
		"A[p U (q & !r)]",
		"EF (a & EX (b | !c))",
		"true",
		"!false",
		"AG EF reset",
	}
	for _, src := range srcs {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", f.String(), src, err)
		}
		if f.String() != g.String() {
			t.Fatalf("round trip changed %q -> %q", f.String(), g.String())
		}
	}
}

func TestParserErrors(t *testing.T) {
	for _, src := range []string{
		"", "AG", "(a", "E[a U", "a &", "a -> ", "E[a b]", "@bad",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

// explicitModel enumerates a small circuit's state graph for the
// cross-check: states are indices into a dense table, succ[s] lists the
// successors over all inputs.
type explicitModel struct {
	n      int // latches
	states []uint64
	index  map[uint64]int
	succ   [][]int
	init   int
}

func enumerate(t *testing.T, nl *circuit.Netlist) *explicitModel {
	t.Helper()
	sim, err := circuit.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	nL, nI := len(nl.Latches), len(nl.Inputs)
	if nL > 16 || nI > 8 {
		t.Fatalf("model too large to enumerate")
	}
	enc := func(st []bool) uint64 {
		var v uint64
		for i, b := range st {
			if b {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	dec := func(v uint64) []bool {
		out := make([]bool, nL)
		for i := range out {
			out[i] = v>>uint(i)&1 == 1
		}
		return out
	}
	em := &explicitModel{n: nL, index: map[uint64]int{}}
	sim.Reset()
	start := enc(sim.State())
	// The CTL semantics is over ALL states (reachable restriction is
	// applied separately), so enumerate the full cube.
	for v := uint64(0); v < 1<<uint(nL); v++ {
		em.index[v] = len(em.states)
		em.states = append(em.states, v)
	}
	em.init = em.index[start]
	em.succ = make([][]int, len(em.states))
	in := make([]bool, nI)
	for si, v := range em.states {
		seen := map[int]bool{}
		for w := 0; w < 1<<uint(nI); w++ {
			for i := range in {
				in[i] = w>>uint(i)&1 == 1
			}
			sim.SetState(dec(v))
			sim.Step(in)
			ni := em.index[enc(sim.State())]
			if !seen[ni] {
				seen[ni] = true
				em.succ[si] = append(em.succ[si], ni)
			}
		}
	}
	return em
}

// evalExplicit computes the satisfaction set of f by direct fixpoint
// iteration over the enumerated graph. atoms gives each atom's set.
func evalExplicit(em *explicitModel, f *Formula, atoms map[string][]bool) []bool {
	n := len(em.states)
	pre := func(z []bool) []bool {
		out := make([]bool, n)
		for s := 0; s < n; s++ {
			for _, t := range em.succ[s] {
				if z[t] {
					out[s] = true
					break
				}
			}
		}
		return out
	}
	and := func(a, b []bool) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = a[i] && b[i]
		}
		return out
	}
	or := func(a, b []bool) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = a[i] || b[i]
		}
		return out
	}
	not := func(a []bool) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = !a[i]
		}
		return out
	}
	eq := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	var rec func(g *Formula) []bool
	rec = func(g *Formula) []bool {
		switch g.op {
		case opTrue:
			out := make([]bool, n)
			for i := range out {
				out[i] = true
			}
			return out
		case opFalse:
			return make([]bool, n)
		case opAtom:
			return atoms[g.name]
		case opNot:
			return not(rec(g.left))
		case opAnd:
			return and(rec(g.left), rec(g.right))
		case opOr:
			return or(rec(g.left), rec(g.right))
		case opImplies:
			return or(not(rec(g.left)), rec(g.right))
		case opEX:
			return pre(rec(g.left))
		case opEF:
			return rec(EU(True(), g.left))
		case opAX:
			return not(pre(not(rec(g.left))))
		case opAF:
			return not(rec(EG(Not(g.left))))
		case opAG:
			return not(rec(EU(True(), Not(g.left))))
		case opAU:
			ng := Not(g.right)
			return not(or(rec(EU(ng, And(Not(g.left), ng))), rec(EG(ng))))
		case opEU:
			stay, target := rec(g.left), rec(g.right)
			z := target
			for {
				nz := or(z, and(stay, pre(z)))
				if eq(nz, z) {
					return z
				}
				z = nz
			}
		case opEG:
			stay := rec(g.left)
			z := stay
			for {
				nz := and(stay, pre(z))
				if eq(nz, z) {
					return z
				}
				z = nz
			}
		}
		panic("unreachable")
	}
	return rec(f)
}

// TestSymbolicMatchesExplicitCTL: for a battery of formulas over two small
// models, the symbolic satisfaction set equals the explicit one state for
// state (without reachability restriction).
func TestSymbolicMatchesExplicitCTL(t *testing.T) {
	if testing.Short() {
		t.Skip("explicit CTL is slow; skipped with -short")
	}
	modelsUnderTest := []*circuit.Netlist{
		buildCounter(4),
		model.S5378(model.S5378Config{Units: 2, UnitWidth: 3}),
	}
	formulas := []string{
		"EX q0",
		"EF (q0 & q1)",
		"EG !q1",
		"AF q0",
		"AG (q0 -> EF !q0)",
		"E[!q1 U q0]",
		"A[!q1 U q0]",
		"AX (q0 | q1)",
		"EF AG !q0",
	}
	for _, nl := range modelsUnderTest {
		em := enumerate(t, nl)
		c, err := circuit.Compile(nl, circuit.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := reach.NewTR(c, reach.DefaultTROptions())
		if err != nil {
			t.Fatal(err)
		}
		ck := NewChecker(c, tr, nil)
		ck.DefineLatchAtoms()

		// Explicit atom tables: latch i true.
		atoms := map[string][]bool{}
		for i, l := range nl.Latches {
			tbl := make([]bool, len(em.states))
			for si, v := range em.states {
				tbl[si] = v>>uint(i)&1 == 1
			}
			atoms[nl.NameOf(l.Q)] = tbl
		}

		assignment := make([]bool, c.M.NumVars())
		for _, src := range formulas {
			f, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			sat, err := ck.Sat(f)
			if err != nil {
				// Atom not present in this model (e.g. q1 on a
				// 1-bit unit): skip.
				continue
			}
			want := evalExplicit(em, f, atoms)
			for si, v := range em.states {
				for i := 0; i < em.n; i++ {
					assignment[c.StateVars[i]] = v>>uint(i)&1 == 1
				}
				if got := c.M.Eval(sat, assignment); got != want[si] {
					t.Fatalf("%s: %s disagrees at state %b: symbolic %v explicit %v",
						nl.Name, src, v, got, want[si])
				}
			}
			c.M.Deref(sat)
		}
		ck.Release()
		tr.Release()
		c.Release()
	}
}
